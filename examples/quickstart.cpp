// Quickstart: synthesize a program from input-output examples.
//
// This example builds a specification by hand (the kind of input a NetSyn
// user provides), then runs the genetic-algorithm synthesizer with the
// hand-crafted edit-distance fitness — no model training required, so it
// completes in well under a second. See examples/train_fitness.cpp and
// examples/compare_methods.cpp for the learned fitness functions.
//
//   $ ./quickstart [--budget=20000] [--seed=7]
#include <cstdio>
#include <exception>

#include "core/synthesizer.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/edit.hpp"
#include "util/argparse.hpp"

using namespace netsyn;

// The real body; main() wraps it so flag-parse errors (bad --lengths,
// non-numeric --budget, unknown --domain...) print their message instead of
// tearing the process down through std::terminate.
int run(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto budget =
      static_cast<std::size_t>(args.getInt("budget", 20000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 7));

  // The task: given a list, keep the positive values, double them, and
  // return them sorted in descending order (the paper's Table 1 program).
  // We describe it only through examples:
  dsl::Spec spec;
  auto addExample = [&spec](std::vector<std::int32_t> in,
                            std::vector<std::int32_t> out) {
    spec.examples.push_back(
        {{dsl::Value(std::move(in))}, dsl::Value(std::move(out))});
  };
  addExample({-2, 10, 3, -4, 5, 2}, {20, 10, 6, 4});
  addExample({1, -1, 2}, {4, 2});
  addExample({7, 0, -3, 4}, {14, 8});
  addExample({5}, {10});
  addExample({-9, -8}, {});

  std::printf("Specification (%zu examples):\n", spec.size());
  for (const auto& ex : spec.examples) {
    std::printf("  %s -> %s\n", ex.inputs[0].toString().c_str(),
                ex.output.toString().c_str());
  }

  // Configure the synthesizer: GA + neighborhood search, edit fitness.
  core::SynthesizerConfig config;
  config.ga.populationSize = 60;
  config.ga.eliteCount = 5;
  config.maxGenerations = 5000;
  config.nsWindow = 8;

  core::Synthesizer synthesizer(
      config, std::make_shared<fitness::EditDistanceFitness>());

  util::Rng rng(seed);
  std::printf("\nSearching (budget: %zu candidate programs)...\n", budget);
  const auto result = synthesizer.synthesize(spec, /*targetLength=*/4,
                                             budget, rng);

  if (!result.found) {
    std::printf("No program found within the budget (searched %zu).\n",
                result.candidatesSearched);
    return 1;
  }
  std::printf("Found after %zu candidates (%zu generations, %.2fs%s):\n",
              result.candidatesSearched, result.generations, result.seconds,
              result.foundByNs ? ", via neighborhood search" : "");
  std::printf("  %s\n", result.solution.toString().c_str());

  // Demonstrate the synthesized program on a fresh input.
  const dsl::Value fresh(std::vector<std::int32_t>{6, -5, 1});
  const auto run = dsl::run(result.solution, {fresh});
  std::printf("\nOn new input %s it produces %s; trace:\n",
              fresh.toString().c_str(), run.output().toString().c_str());
  for (std::size_t k = 0; k < run.trace.size(); ++k) {
    std::printf("  step %zu (%s): %s\n", k + 1,
                dsl::functionInfo(result.solution.at(k)).name,
                run.trace[k].toString().c_str());
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
