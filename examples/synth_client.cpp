// synth_client — drives a synthd session end to end.
//
// Spawns the daemon, holds a pipe session speaking the NDJSON protocol,
// submits N concurrent jobs (job i uses seed+i, so the jobs are distinct
// searches), waits for all of them, and prints a per-job summary including
// the cross-request plan-cache counters. Then resubmits job 0's config to
// demonstrate the warm path (a result-cache hit answered without running a
// single search).
//
// With --verify, every job's config is additionally run one-shot
// (in-process, sequential, the PR 1 experiment runner) and the daemon's
// per-(program, run) found/candidates/generations are compared
// bit-for-bit; any divergence exits nonzero. This is the service-smoke
// assertion CI runs: concurrent daemon jobs == one-shot runs.
//
// Usage:
//   synth_client --synthd=./synthd [--jobs=2] [--method=Edit]
//                [--daemon-workers=2] [--verify]
//                [experiment flags: --scale --budget --runs --lengths
//                 --programs-per-length --seed ...]
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/service.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"

namespace {

using namespace netsyn;

/// A spawned synthd with a line-oriented pipe session.
class DaemonSession {
 public:
  DaemonSession(const std::string& path, long workers) {
    int toChild[2];
    int fromChild[2];
    if (pipe(toChild) != 0 || pipe(fromChild) != 0)
      throw std::runtime_error("pipe() failed");
    pid_ = fork();
    if (pid_ < 0) throw std::runtime_error("fork() failed");
    if (pid_ == 0) {
      dup2(toChild[0], STDIN_FILENO);
      dup2(fromChild[1], STDOUT_FILENO);
      close(toChild[0]);
      close(toChild[1]);
      close(fromChild[0]);
      close(fromChild[1]);
      const std::string workersFlag = "--workers=" + std::to_string(workers);
      execl(path.c_str(), path.c_str(), workersFlag.c_str(),
            static_cast<char*>(nullptr));
      std::perror("execl synthd");
      _exit(127);
    }
    close(toChild[0]);
    close(fromChild[1]);
    writeFd_ = toChild[1];
    reader_ = fdopen(fromChild[0], "r");
    if (!reader_) throw std::runtime_error("fdopen() failed");
  }

  ~DaemonSession() {
    if (writeFd_ >= 0) close(writeFd_);
    if (reader_) fclose(reader_);
    if (pid_ > 0) waitpid(pid_, nullptr, 0);
  }

  /// Sends one request line and returns the parsed response.
  util::JsonValue request(const std::string& line) {
    const std::string framed = line + "\n";
    const char* data = framed.c_str();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = write(writeFd_, data, left);
      if (n <= 0) throw std::runtime_error("write to synthd failed");
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    char* buf = nullptr;
    std::size_t cap = 0;
    const ssize_t got = getline(&buf, &cap, reader_);
    if (got < 0) {
      free(buf);
      throw std::runtime_error("synthd closed the session");
    }
    std::string response(buf, static_cast<std::size_t>(got));
    free(buf);
    return util::parseJson(response);
  }

 private:
  pid_t pid_ = -1;
  int writeFd_ = -1;
  FILE* reader_ = nullptr;
};

std::uint64_t member(const util::JsonValue& v, const char* key) {
  const util::JsonValue* m = v.find(key);
  if (!m) throw std::runtime_error(std::string("response missing ") + key);
  return util::jsonUnsigned(*m, key);
}

bool okField(const util::JsonValue& v) {
  const util::JsonValue* ok = v.find("ok");
  return ok && ok->kind == util::JsonValue::Kind::Bool && ok->boolean;
}

struct TaskTriple {
  bool found;
  std::uint64_t candidates;
  std::uint64_t generations;
};

/// tasks array -> (program, run)-indexed triples.
std::vector<TaskTriple> tasksOf(const util::JsonValue& response,
                                std::size_t programs, std::size_t runs) {
  std::vector<TaskTriple> out(programs * runs,
                              TaskTriple{false, 0, 0});
  const util::JsonValue* tasks = response.find("tasks");
  if (!tasks || tasks->kind != util::JsonValue::Kind::Array)
    throw std::runtime_error("terminal response has no tasks array");
  for (const util::JsonValue& t : tasks->items) {
    const std::size_t p = member(t, "program");
    const std::size_t k = member(t, "run");
    bool found = false;
    util::readBool(t, "found", found);
    if (p * runs + k < out.size())
      out[p * runs + k] = TaskTriple{found, member(t, "candidates"),
                                     member(t, "generations")};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::ArgParse args(argc, argv);
    const std::string synthdPath = args.getString("synthd", "./synthd");
    const long jobs = args.getInt("jobs", 2);
    const std::string method = args.getString("method", "Edit");
    const long daemonWorkers = args.getInt("daemon-workers", 2);
    const bool verify = args.getBool("verify", false);
    if (jobs <= 0) throw std::invalid_argument("--jobs must be > 0");

    const harness::ExperimentConfig base =
        harness::ExperimentConfig::fromArgs(args);

    DaemonSession session(synthdPath, daemonWorkers);
    const util::JsonValue pong = session.request("{\"op\": \"ping\"}");
    if (!okField(pong)) throw std::runtime_error("synthd ping failed");

    // Submit every job before waiting on any: the daemon runs them
    // concurrently on its shared pool.
    std::vector<harness::ExperimentConfig> configs;
    std::vector<std::uint64_t> ids;
    for (long i = 0; i < jobs; ++i) {
      harness::ExperimentConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(i);
      configs.push_back(cfg);
      const util::JsonValue resp = session.request(
          "{\"op\": \"submit\", \"method\": \"" + method +
          "\", \"config\": " + cfg.toJson() + "}");
      if (!okField(resp)) throw std::runtime_error("submit rejected");
      ids.push_back(member(resp, "job"));
      std::printf("[client] submitted job %llu (seed=%llu)\n",
                  static_cast<unsigned long long>(ids.back()),
                  static_cast<unsigned long long>(cfg.seed));
    }

    bool allMatch = true;
    // One store for every verification run: NetSyn methods load/train their
    // models once per (modelDir, scale), not once per job.
    service::ModelStore verifyModels;
    for (long i = 0; i < jobs; ++i) {
      const util::JsonValue done = session.request(
          "{\"op\": \"wait\", \"job\": " + std::to_string(ids[i]) + "}");
      if (!okField(done)) throw std::runtime_error("wait failed");
      std::string state;
      util::readString(done, "state", state);
      const std::size_t programs = member(done, "programs");
      const std::size_t runs = member(done, "runs_per_program");
      double fraction = 0.0;
      util::readDouble(done, "synthesized_fraction", fraction);
      std::printf(
          "[client] job %llu %s: synthesized %.0f%% of %zu programs, "
          "plan compiles=%llu hits=%llu\n",
          static_cast<unsigned long long>(ids[i]), state.c_str(),
          fraction * 100.0, programs,
          static_cast<unsigned long long>(member(done, "plan_compiles")),
          static_cast<unsigned long long>(member(done, "plan_hits")));
      if (state != "done") {
        allMatch = false;
        continue;
      }

      if (verify) {
        // One-shot comparison: same config, sequential in-process run.
        const std::vector<TaskTriple> daemonTasks =
            tasksOf(done, programs, runs);
        const baselines::MethodPtr oneShot =
            service::makeOneShotMethod(method, configs[i], verifyModels);
        const auto workload = harness::makeFullWorkload(configs[i]);
        const harness::MethodReport report =
            harness::runMethod(*oneShot, workload, configs[i],
                               /*verbose=*/false);
        if (daemonTasks.size() != report.programs.size() * runs) {
          std::printf(
              "[client] MISMATCH job %llu: daemon reported %zu x %zu "
              "tasks, one-shot ran %zu programs\n",
              static_cast<unsigned long long>(ids[i]), programs, runs,
              report.programs.size());
          allMatch = false;
          continue;
        }
        for (std::size_t p = 0; p < report.programs.size(); ++p) {
          for (std::size_t k = 0; k < report.programs[p].runs.size(); ++k) {
            const harness::RunRecord& r = report.programs[p].runs[k];
            const TaskTriple& d = daemonTasks[p * runs + k];
            if (r.found != d.found || r.candidates != d.candidates ||
                r.generations != d.generations) {
              std::printf(
                  "[client] MISMATCH job %llu p=%zu k=%zu: daemon "
                  "(found=%d cand=%llu gen=%llu) vs one-shot (found=%d "
                  "cand=%zu gen=%zu)\n",
                  static_cast<unsigned long long>(ids[i]), p, k, d.found,
                  static_cast<unsigned long long>(d.candidates),
                  static_cast<unsigned long long>(d.generations), r.found,
                  r.candidates, r.generations);
              allMatch = false;
            }
          }
        }
        if (allMatch)
          std::printf("[client] job %llu verified against one-shot run\n",
                      static_cast<unsigned long long>(ids[i]));
      }
    }

    // Warm path: resubmitting job 0's exact config is answered from the
    // completed-job memo.
    const util::JsonValue warm = session.request(
        "{\"op\": \"submit\", \"method\": \"" + method +
        "\", \"config\": " + configs[0].toJson() + "}");
    bool fromCache = false;
    util::readBool(warm, "from_cache", fromCache);
    std::printf("[client] identical resubmission: from_cache=%s\n",
                fromCache ? "true" : "false");

    const util::JsonValue stats = session.request("{\"op\": \"stats\"}");
    std::printf(
        "[client] session: %llu jobs, %llu tasks, %llu result-cache hits, "
        "plan compiles=%llu hits=%llu\n",
        static_cast<unsigned long long>(member(stats, "jobs_submitted")),
        static_cast<unsigned long long>(member(stats, "tasks_executed")),
        static_cast<unsigned long long>(member(stats, "result_cache_hits")),
        static_cast<unsigned long long>(member(stats, "plan_compiles")),
        static_cast<unsigned long long>(member(stats, "plan_hits")));

    session.request("{\"op\": \"shutdown\"}");

    if (!allMatch) {
      std::printf("[client] FAILED: daemon results diverge from one-shot\n");
      return 1;
    }
    if (!fromCache) {
      std::printf("[client] FAILED: resubmission missed the result cache\n");
      return 1;
    }
    std::printf("[client] OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[client] fatal: %s\n", e.what());
    return 1;
  }
}
