// synth_client — drives a synthd session end to end.
//
// Spawns the daemon, holds a pipe session speaking the NDJSON protocol,
// submits N concurrent jobs (job i uses seed+i, so the jobs are distinct
// searches), waits for all of them, and prints a per-job summary including
// the cross-request plan-cache counters. Then resubmits job 0's config to
// demonstrate the warm path (a result-cache hit answered without running a
// single search).
//
// With --verify, every job's config is additionally run one-shot
// (in-process, sequential, the PR 1 experiment runner) and the daemon's
// per-(program, run) found/candidates/generations are compared
// bit-for-bit; any divergence exits nonzero. This is the service-smoke
// assertion CI runs: concurrent daemon jobs == one-shot runs.
//
// Resilience: SIGPIPE is ignored, so a daemon death surfaces as a
// TransportClosed error (EPIPE on write / EOF on read) instead of killing
// the client. The client then respawns synthd — after a deterministic
// seeded backoff (util::RetrySchedule: same seed, same delays) and up to
// --max-retries times — and resubmits every job idempotently by key
// ("attach": true — identical submissions are deterministic, so joining a
// recovered in-flight job is always safe). With --chaos-kill the client
// does this on purpose: it SIGKILLs the daemon mid-run, restarts it on the
// same --state-dir, reattaches, and verifies the recovered results — the
// kill-and-restart recovery pass CI runs.
//
// With --fleet=N the client runs the same job through an in-process
// FleetCoordinator driving N synthd backends instead of one daemon session
// (service/fleet.hpp); --verify then compares the merged fleet report
// against the one-shot run — the fleet determinism invariant.
//
// With --connect=HOST:PORT or --connect=unix:PATH the client dials a
// running `synthd --listen` daemon instead of spawning one; the reconnect
// loop then re-dials rather than respawning (the daemon outlives the
// connection, so --chaos-kill severs and re-attaches without needing a
// --state-dir).
//
// Usage:
//   synth_client [--synthd=./synthd | --connect=ENDPOINT]
//                [--jobs=2] [--method=Edit]
//                [--daemon-workers=2] [--verify] [--max-retries=5]
//                [--chaos-kill] [--state-dir=DIR] [--checkpoint-interval=G]
//                [--daemon-faults=SPEC] [--fleet=N]
//                [experiment flags: --scale --config-file --budget --runs
//                 --lengths --programs-per-length --seed ...]
#include <csignal>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/fleet.hpp"
#include "service/service.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"
#include "util/transport.hpp"

namespace {

using namespace netsyn;

/// One synthd session — a spawned subprocess over a pipe, or a dialed
/// `synthd --listen` daemon over a socket — that parses responses. Daemon
/// (or connection) death surfaces as util::TransportClosed.
class DaemonSession {
 public:
  DaemonSession(const std::string& path,
                const std::vector<std::string>& extraArgs)
      : transport_(std::make_unique<util::PipeTransport>(path, extraArgs)) {}

  explicit DaemonSession(const util::SocketEndpoint& endpoint)
      : transport_(std::make_unique<util::SocketTransport>(endpoint)) {}

  util::JsonValue request(const std::string& line) {
    return util::parseJson(transport_->request(line));
  }

  /// Simulated crash: SIGKILL a subprocess (no shutdown handshake — durable
  /// state is whatever already hit disk); RST-close a socket (the remote
  /// daemon keeps running, only the connection dies).
  void kill() { transport_->kill(); }

 private:
  std::unique_ptr<util::Transport> transport_;
};

std::uint64_t member(const util::JsonValue& v, const char* key) {
  const util::JsonValue* m = v.find(key);
  if (!m) throw std::runtime_error(std::string("response missing ") + key);
  return util::jsonUnsigned(*m, key);
}

bool okField(const util::JsonValue& v) {
  const util::JsonValue* ok = v.find("ok");
  return ok && ok->kind == util::JsonValue::Kind::Bool && ok->boolean;
}

bool boolField(const util::JsonValue& v, const char* key) {
  bool b = false;
  util::readBool(v, key, b);
  return b;
}

struct TaskTriple {
  bool found;
  std::uint64_t candidates;
  std::uint64_t generations;
};

/// tasks array -> (program, run)-indexed triples.
std::vector<TaskTriple> tasksOf(const util::JsonValue& response,
                                std::size_t programs, std::size_t runs) {
  std::vector<TaskTriple> out(programs * runs,
                              TaskTriple{false, 0, 0});
  const util::JsonValue* tasks = response.find("tasks");
  if (!tasks || tasks->kind != util::JsonValue::Kind::Array)
    throw std::runtime_error("terminal response has no tasks array");
  for (const util::JsonValue& t : tasks->items) {
    const std::size_t p = member(t, "program");
    const std::size_t k = member(t, "run");
    bool found = false;
    util::readBool(t, "found", found);
    if (p * runs + k < out.size())
      out[p * runs + k] = TaskTriple{found, member(t, "candidates"),
                                     member(t, "generations")};
  }
  return out;
}

/// Compares service-reported task triples against a one-shot in-process
/// run of the same config. Returns false (and prints MISMATCH lines) on
/// any divergence.
bool verifyAgainstOneShot(const std::string& label,
                          const std::vector<TaskTriple>& serviceTasks,
                          const harness::ExperimentConfig& config,
                          const std::string& method,
                          service::ModelStore& models) {
  const baselines::MethodPtr oneShot =
      service::makeOneShotMethod(method, config, models);
  const auto workload = harness::makeFullWorkload(config);
  const harness::MethodReport report =
      harness::runMethod(*oneShot, workload, config, /*verbose=*/false);
  const std::size_t runs =
      report.programs.empty() ? 0 : report.programs.front().runs.size();
  if (serviceTasks.size() != report.programs.size() * runs) {
    std::printf("[client] MISMATCH %s: service reported %zu tasks, one-shot "
                "ran %zu programs x %zu runs\n",
                label.c_str(), serviceTasks.size(), report.programs.size(),
                runs);
    return false;
  }
  bool match = true;
  for (std::size_t p = 0; p < report.programs.size(); ++p) {
    for (std::size_t k = 0; k < report.programs[p].runs.size(); ++k) {
      const harness::RunRecord& r = report.programs[p].runs[k];
      const TaskTriple& d = serviceTasks[p * runs + k];
      if (r.found != d.found || r.candidates != d.candidates ||
          r.generations != d.generations) {
        std::printf(
            "[client] MISMATCH %s p=%zu k=%zu: service (found=%d cand=%llu "
            "gen=%llu) vs one-shot (found=%d cand=%zu gen=%zu)\n",
            label.c_str(), p, k, d.found,
            static_cast<unsigned long long>(d.candidates),
            static_cast<unsigned long long>(d.generations), r.found,
            r.candidates, r.generations);
        match = false;
      }
    }
  }
  if (match)
    std::printf("[client] %s verified against one-shot run\n", label.c_str());
  return match;
}

/// --fleet=N mode: the same job, run through an in-process FleetCoordinator
/// over N synthd backends; --verify compares the merged report one-shot.
int runFleetMode(const harness::ExperimentConfig& config,
                 const std::string& method, const std::string& synthdPath,
                 std::size_t hosts, std::size_t daemonWorkers,
                 const std::string& stateDir, std::size_t ckptInterval,
                 const std::string& daemonFaults, bool chaosKill,
                 bool verify, bool verbose) {
  service::FleetConfig fc;
  fc.hosts = hosts;
  fc.chaosKill = chaosKill;
  fc.verbose = verbose;
  service::LocalBackendConfig backend;
  backend.synthdPath = synthdPath;
  backend.workers = daemonWorkers;
  backend.stateDir = stateDir;
  backend.checkpointInterval = ckptInterval;
  backend.faults = daemonFaults;

  service::FleetCoordinator fleet(fc, backend);
  const service::FleetReport report = fleet.run(config, method);
  fleet.shutdownBackends();
  const service::FleetMetrics m = fleet.metrics();
  std::printf(
      "[client] fleet(%zu hosts) done: synthesized %.0f%% of %zu programs, "
      "lost=%zu reassigned=%zu recovered=%zu\n",
      hosts, report.synthesizedFraction * 100.0, report.programs,
      m.hostsLost, m.tasksReassigned, m.recovered());
  if (chaosKill && m.recovered() == 0) {
    std::printf("[client] FAILED: chaos fleet run recovered nothing\n");
    return 1;
  }
  if (verify) {
    std::vector<TaskTriple> fleetTasks;
    fleetTasks.reserve(report.tasks.size());
    for (const service::TaskRecord& t : report.tasks)
      fleetTasks.push_back(TaskTriple{t.found, t.candidates, t.generations});
    service::ModelStore models;
    if (!verifyAgainstOneShot("fleet report", fleetTasks, config, method,
                              models)) {
      std::printf("[client] FAILED: fleet results diverge from one-shot\n");
      return 1;
    }
  }
  std::printf("[client] OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A dead daemon must surface as an EPIPE error we can handle, not kill
  // the client outright.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    const util::ArgParse args(argc, argv);
    const std::string synthdPath = args.getString("synthd", "./synthd");
    const long jobs = args.getInt("jobs", 2);
    const std::string method = args.getString("method", "Edit");
    const long daemonWorkers = args.getInt("daemon-workers", 2);
    const bool verify = args.getBool("verify", false);
    const bool chaosKill = args.getBool("chaos-kill", false);
    const std::string stateDir =
        args.getString("state-dir", chaosKill ? "synth_client_state" : "");
    const long ckptInterval = args.getInt("checkpoint-interval", 5);
    const std::string daemonFaults = args.getString("daemon-faults", "");
    const long maxRetries = args.getInt("max-retries", 5);
    const long fleetHosts = args.getInt("fleet", 0);
    const std::string connect = args.getString("connect", "");
    if (jobs <= 0) throw std::invalid_argument("--jobs must be > 0");
    if (maxRetries < 0)
      throw std::invalid_argument("--max-retries must be >= 0");
    if (fleetHosts < 0) throw std::invalid_argument("--fleet must be >= 0");
    if (!connect.empty() && fleetHosts > 0)
      throw std::invalid_argument("--connect and --fleet are exclusive");
    // A severed socket leaves the daemon (and its jobs) running, so the
    // chaos pass needs no durable state; a SIGKILLed subprocess does.
    if (chaosKill && fleetHosts == 0 && connect.empty() && stateDir.empty())
      throw std::invalid_argument("--chaos-kill needs a --state-dir");

    const harness::ExperimentConfig base =
        harness::ExperimentConfig::fromArgs(args);

    if (fleetHosts > 0)
      return runFleetMode(base, method, synthdPath,
                          static_cast<std::size_t>(fleetHosts),
                          static_cast<std::size_t>(daemonWorkers), stateDir,
                          static_cast<std::size_t>(ckptInterval),
                          daemonFaults, chaosKill, verify,
                          args.getBool("verbose", false));

    const auto spawn = [&]() {
      std::unique_ptr<DaemonSession> s;
      if (!connect.empty()) {
        s = std::make_unique<DaemonSession>(
            util::SocketEndpoint::parse(connect));
      } else {
        std::vector<std::string> extra;
        extra.push_back("--workers=" + std::to_string(daemonWorkers));
        if (!stateDir.empty()) {
          extra.push_back("--state-dir=" + stateDir);
          extra.push_back("--checkpoint-interval=" +
                          std::to_string(ckptInterval));
        }
        if (!daemonFaults.empty()) extra.push_back("--faults=" + daemonFaults);
        s = std::make_unique<DaemonSession>(synthdPath, extra);
      }
      if (!okField(s->request("{\"op\": \"ping\"}")))
        throw std::runtime_error("synthd ping failed");
      return s;
    };

    std::unique_ptr<DaemonSession> session = spawn();

    std::vector<harness::ExperimentConfig> configs;
    for (long i = 0; i < jobs; ++i) {
      harness::ExperimentConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(i);
      configs.push_back(cfg);
    }

    // Submit every job before waiting on any: the daemon runs them
    // concurrently on its shared pool. `attach` makes the submission
    // idempotent by (method, config) key, so the same call re-joins the
    // jobs after a reconnect.
    std::vector<std::uint64_t> ids(configs.size(), 0);
    const auto submitAll = [&](bool attach) {
      for (std::size_t i = 0; i < configs.size(); ++i) {
        const util::JsonValue resp = session->request(
            "{\"op\": \"submit\", \"method\": \"" + method +
            "\", \"config\": " + configs[i].toJson() +
            (attach ? ", \"attach\": true" : "") + "}");
        if (!okField(resp)) throw std::runtime_error("submit rejected");
        ids[i] = member(resp, "job");
        std::printf(
            "[client] submitted job %llu (seed=%llu%s%s)\n",
            static_cast<unsigned long long>(ids[i]),
            static_cast<unsigned long long>(configs[i].seed),
            boolField(resp, "attached") ? ", attached" : "",
            boolField(resp, "recovered") ? ", recovered" : "");
      }
    };
    submitAll(/*attach=*/false);

    // Reconnect path: back off on the deterministic seeded schedule, then
    // respawn the daemon (it recovers its durable state) and resubmit
    // everything by key. Bounded by --max-retries rather than a hardcoded
    // count, and never a tight respawn spin: each attempt waits its draw.
    long reconnects = 0;
    util::RetrySchedule backoff(200.0, 2000.0,
                                base.seed ^ 0x9e3779b97f4a7c15ull);
    const auto reconnect = [&]() {
      if (++reconnects > maxRetries)
        throw std::runtime_error(
            "synthd died repeatedly; giving up after " +
            std::to_string(maxRetries) + " reconnects");
      const double delayMs = backoff.nextDelayMs();
      std::printf(
          "[client] synthd is gone; %s in %.0f ms (attempt %ld/%ld)\n",
          connect.empty() ? "respawning" : "re-dialing", delayMs, reconnects,
          maxRetries);
      usleep(static_cast<useconds_t>(delayMs * 1000.0));
      session = spawn();
      submitAll(/*attach=*/true);
    };
    // Built per attempt: a reconnect reassigns ids, so the retried request
    // must use the fresh one.
    const auto waitJob = [&](std::size_t i) {
      for (;;) {
        try {
          return session->request("{\"op\": \"wait\", \"job\": " +
                                  std::to_string(ids[i]) + "}");
        } catch (const util::TransportClosed& e) {
          std::printf("[client] %s\n", e.what());
          reconnect();
        }
      }
    };

    if (chaosKill) {
      // Let the daemon make (and persist) some progress, then kill -9 it
      // mid-run and recover on a fresh process over the same state dir.
      for (int poll = 0; poll < 500; ++poll) {
        const util::JsonValue st = session->request(
            "{\"op\": \"status\", \"job\": " + std::to_string(ids[0]) + "}");
        std::string state;
        util::readString(st, "state", state);
        if (state == "done" || member(st, "tasks_done") > 0) break;
        usleep(20 * 1000);
      }
      std::printf("[client] chaos: %s mid-run\n",
                  connect.empty() ? "SIGKILL synthd"
                                  : "severing the daemon connection");
      session->kill();
      reconnect();
    }

    bool allMatch = true;
    // One store for every verification run: NetSyn methods load/train their
    // models once per (modelDir, scale), not once per job.
    service::ModelStore verifyModels;
    for (long i = 0; i < jobs; ++i) {
      const util::JsonValue done = waitJob(static_cast<std::size_t>(i));
      if (!okField(done)) throw std::runtime_error("wait failed");
      std::string state;
      util::readString(done, "state", state);
      const std::size_t programs = member(done, "programs");
      const std::size_t runs = member(done, "runs_per_program");
      double fraction = 0.0;
      util::readDouble(done, "synthesized_fraction", fraction);
      std::printf(
          "[client] job %llu %s: synthesized %.0f%% of %zu programs, "
          "plan compiles=%llu hits=%llu, retries=%llu%s\n",
          static_cast<unsigned long long>(ids[i]), state.c_str(),
          fraction * 100.0, programs,
          static_cast<unsigned long long>(member(done, "plan_compiles")),
          static_cast<unsigned long long>(member(done, "plan_hits")),
          static_cast<unsigned long long>(member(done, "retries")),
          boolField(done, "recovered") ? ", recovered" : "");
      if (state != "done") {
        allMatch = false;
        continue;
      }

      if (verify) {
        // One-shot comparison: same config, sequential in-process run.
        const std::string label =
            "job " + std::to_string(ids[i]);
        if (!verifyAgainstOneShot(label, tasksOf(done, programs, runs),
                                  configs[static_cast<std::size_t>(i)],
                                  method, verifyModels))
          allMatch = false;
      }
    }

    // Warm path: resubmitting job 0's exact config is answered from the
    // completed-job memo — or, when the run went through a kill/recover
    // cycle, attaches to the completed job by key (same idempotence, the
    // memo may have died with the first daemon before the job finished).
    const util::JsonValue warm = session->request(
        "{\"op\": \"submit\", \"method\": \"" + method +
        "\", \"config\": " + configs[0].toJson() +
        (chaosKill ? ", \"attach\": true" : "") + "}");
    const bool fromCache = boolField(warm, "from_cache");
    const bool attached = boolField(warm, "attached");
    std::printf("[client] identical resubmission: from_cache=%s attached=%s\n",
                fromCache ? "true" : "false", attached ? "true" : "false");
    const bool warmOk = chaosKill ? (fromCache || attached) : fromCache;

    const util::JsonValue stats = session->request("{\"op\": \"stats\"}");
    std::printf(
        "[client] session: %llu jobs, %llu tasks, %llu result-cache hits, "
        "plan compiles=%llu hits=%llu\n",
        static_cast<unsigned long long>(member(stats, "jobs_submitted")),
        static_cast<unsigned long long>(member(stats, "tasks_executed")),
        static_cast<unsigned long long>(member(stats, "result_cache_hits")),
        static_cast<unsigned long long>(member(stats, "plan_compiles")),
        static_cast<unsigned long long>(member(stats, "plan_hits")));

    const util::JsonValue metrics = session->request("{\"op\": \"metrics\"}");
    std::printf(
        "[client] metrics: queue=%llu retry-waiting=%llu recovered=%llu "
        "ckpt written=%llu loaded=%llu rejected=%llu, fault hits=%llu "
        "fires=%llu\n",
        static_cast<unsigned long long>(member(metrics, "queue_depth")),
        static_cast<unsigned long long>(member(metrics, "retry_waiting")),
        static_cast<unsigned long long>(member(metrics, "jobs_recovered")),
        static_cast<unsigned long long>(
            member(metrics, "durable_checkpoints_written")),
        static_cast<unsigned long long>(
            member(metrics, "durable_checkpoints_loaded")),
        static_cast<unsigned long long>(
            member(metrics, "checkpoints_rejected")),
        static_cast<unsigned long long>(member(metrics, "fault_hits")),
        static_cast<unsigned long long>(member(metrics, "fault_fires")));

    session->request("{\"op\": \"shutdown\"}");

    if (!allMatch) {
      std::printf("[client] FAILED: daemon results diverge from one-shot\n");
      return 1;
    }
    if (!warmOk) {
      std::printf("[client] FAILED: resubmission missed the result cache\n");
      return 1;
    }
    std::printf("[client] OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[client] fatal: %s\n", e.what());
    return 1;
  }
}
