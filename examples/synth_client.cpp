// synth_client — drives a synthd session end to end.
//
// Spawns the daemon, holds a pipe session speaking the NDJSON protocol,
// submits N concurrent jobs (job i uses seed+i, so the jobs are distinct
// searches), waits for all of them, and prints a per-job summary including
// the cross-request plan-cache counters. Then resubmits job 0's config to
// demonstrate the warm path (a result-cache hit answered without running a
// single search).
//
// With --verify, every job's config is additionally run one-shot
// (in-process, sequential, the PR 1 experiment runner) and the daemon's
// per-(program, run) found/candidates/generations are compared
// bit-for-bit; any divergence exits nonzero. This is the service-smoke
// assertion CI runs: concurrent daemon jobs == one-shot runs.
//
// Resilience: SIGPIPE is ignored, so a daemon death surfaces as an EPIPE
// write error / EOF (DaemonDied) instead of killing the client. The client
// then respawns synthd and resubmits every job idempotently by key
// ("attach": true — identical submissions are deterministic, so joining a
// recovered in-flight job is always safe). With --chaos-kill the client
// does this on purpose: it SIGKILLs the daemon mid-run, restarts it on the
// same --state-dir, reattaches, and verifies the recovered results — the
// kill-and-restart recovery pass CI runs.
//
// Usage:
//   synth_client --synthd=./synthd [--jobs=2] [--method=Edit]
//                [--daemon-workers=2] [--verify]
//                [--chaos-kill] [--state-dir=DIR] [--checkpoint-interval=G]
//                [--daemon-faults=SPEC]
//                [experiment flags: --scale --budget --runs --lengths
//                 --programs-per-length --seed ...]
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/service.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"

namespace {

using namespace netsyn;

/// The daemon end of the session is gone (EPIPE on write, EOF on read).
/// Distinct from protocol-level errors so the caller can reconnect.
class DaemonDied : public std::runtime_error {
 public:
  explicit DaemonDied(const std::string& what) : std::runtime_error(what) {}
};

/// A spawned synthd with a line-oriented pipe session.
class DaemonSession {
 public:
  DaemonSession(const std::string& path,
                const std::vector<std::string>& extraArgs) {
    int toChild[2];
    int fromChild[2];
    if (pipe(toChild) != 0 || pipe(fromChild) != 0)
      throw std::runtime_error("pipe() failed");
    pid_ = fork();
    if (pid_ < 0) throw std::runtime_error("fork() failed");
    if (pid_ == 0) {
      dup2(toChild[0], STDIN_FILENO);
      dup2(fromChild[1], STDOUT_FILENO);
      close(toChild[0]);
      close(toChild[1]);
      close(fromChild[0]);
      close(fromChild[1]);
      std::vector<std::string> argStore;
      argStore.push_back(path);
      for (const std::string& a : extraArgs) argStore.push_back(a);
      std::vector<char*> argv;
      for (std::string& a : argStore) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(path.c_str(), argv.data());
      std::perror("execv synthd");
      _exit(127);
    }
    close(toChild[0]);
    close(fromChild[1]);
    writeFd_ = toChild[1];
    reader_ = fdopen(fromChild[0], "r");
    if (!reader_) throw std::runtime_error("fdopen() failed");
  }

  ~DaemonSession() {
    closeFds();
    if (pid_ > 0) waitpid(pid_, nullptr, 0);
  }

  /// Sends one request line and returns the parsed response. Throws
  /// DaemonDied when the daemon is gone (write error or EOF) — with
  /// SIGPIPE ignored this is a clean failure, not a client death.
  util::JsonValue request(const std::string& line) {
    const std::string framed = line + "\n";
    const char* data = framed.c_str();
    std::size_t left = framed.size();
    while (left > 0) {
      const ssize_t n = write(writeFd_, data, left);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0)
        throw DaemonDied(std::string("write to synthd failed (") +
                         std::strerror(errno) + ")");
      data += n;
      left -= static_cast<std::size_t>(n);
    }
    char* buf = nullptr;
    std::size_t cap = 0;
    const ssize_t got = getline(&buf, &cap, reader_);
    if (got < 0) {
      free(buf);
      throw DaemonDied("synthd closed the session");
    }
    std::string response(buf, static_cast<std::size_t>(got));
    free(buf);
    return util::parseJson(response);
  }

  /// Simulated daemon crash: SIGKILL (no shutdown handshake, no destructor
  /// runs daemon-side — durable state is whatever already hit disk).
  void kill() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    closeFds();
  }

 private:
  void closeFds() {
    if (writeFd_ >= 0) {
      close(writeFd_);
      writeFd_ = -1;
    }
    if (reader_) {
      fclose(reader_);
      reader_ = nullptr;
    }
  }

  pid_t pid_ = -1;
  int writeFd_ = -1;
  FILE* reader_ = nullptr;
};

std::uint64_t member(const util::JsonValue& v, const char* key) {
  const util::JsonValue* m = v.find(key);
  if (!m) throw std::runtime_error(std::string("response missing ") + key);
  return util::jsonUnsigned(*m, key);
}

bool okField(const util::JsonValue& v) {
  const util::JsonValue* ok = v.find("ok");
  return ok && ok->kind == util::JsonValue::Kind::Bool && ok->boolean;
}

bool boolField(const util::JsonValue& v, const char* key) {
  bool b = false;
  util::readBool(v, key, b);
  return b;
}

struct TaskTriple {
  bool found;
  std::uint64_t candidates;
  std::uint64_t generations;
};

/// tasks array -> (program, run)-indexed triples.
std::vector<TaskTriple> tasksOf(const util::JsonValue& response,
                                std::size_t programs, std::size_t runs) {
  std::vector<TaskTriple> out(programs * runs,
                              TaskTriple{false, 0, 0});
  const util::JsonValue* tasks = response.find("tasks");
  if (!tasks || tasks->kind != util::JsonValue::Kind::Array)
    throw std::runtime_error("terminal response has no tasks array");
  for (const util::JsonValue& t : tasks->items) {
    const std::size_t p = member(t, "program");
    const std::size_t k = member(t, "run");
    bool found = false;
    util::readBool(t, "found", found);
    if (p * runs + k < out.size())
      out[p * runs + k] = TaskTriple{found, member(t, "candidates"),
                                     member(t, "generations")};
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // A dead daemon must surface as an EPIPE error we can handle, not kill
  // the client outright.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    const util::ArgParse args(argc, argv);
    const std::string synthdPath = args.getString("synthd", "./synthd");
    const long jobs = args.getInt("jobs", 2);
    const std::string method = args.getString("method", "Edit");
    const long daemonWorkers = args.getInt("daemon-workers", 2);
    const bool verify = args.getBool("verify", false);
    const bool chaosKill = args.getBool("chaos-kill", false);
    const std::string stateDir =
        args.getString("state-dir", chaosKill ? "synth_client_state" : "");
    const long ckptInterval = args.getInt("checkpoint-interval", 5);
    const std::string daemonFaults = args.getString("daemon-faults", "");
    if (jobs <= 0) throw std::invalid_argument("--jobs must be > 0");
    if (chaosKill && stateDir.empty())
      throw std::invalid_argument("--chaos-kill needs a --state-dir");

    const harness::ExperimentConfig base =
        harness::ExperimentConfig::fromArgs(args);

    const auto spawn = [&]() {
      std::vector<std::string> extra;
      extra.push_back("--workers=" + std::to_string(daemonWorkers));
      if (!stateDir.empty()) {
        extra.push_back("--state-dir=" + stateDir);
        extra.push_back("--checkpoint-interval=" +
                        std::to_string(ckptInterval));
      }
      if (!daemonFaults.empty()) extra.push_back("--faults=" + daemonFaults);
      auto s = std::make_unique<DaemonSession>(synthdPath, extra);
      if (!okField(s->request("{\"op\": \"ping\"}")))
        throw std::runtime_error("synthd ping failed");
      return s;
    };

    std::unique_ptr<DaemonSession> session = spawn();

    std::vector<harness::ExperimentConfig> configs;
    for (long i = 0; i < jobs; ++i) {
      harness::ExperimentConfig cfg = base;
      cfg.seed = base.seed + static_cast<std::uint64_t>(i);
      configs.push_back(cfg);
    }

    // Submit every job before waiting on any: the daemon runs them
    // concurrently on its shared pool. `attach` makes the submission
    // idempotent by (method, config) key, so the same call re-joins the
    // jobs after a reconnect.
    std::vector<std::uint64_t> ids(configs.size(), 0);
    const auto submitAll = [&](bool attach) {
      for (std::size_t i = 0; i < configs.size(); ++i) {
        const util::JsonValue resp = session->request(
            "{\"op\": \"submit\", \"method\": \"" + method +
            "\", \"config\": " + configs[i].toJson() +
            (attach ? ", \"attach\": true" : "") + "}");
        if (!okField(resp)) throw std::runtime_error("submit rejected");
        ids[i] = member(resp, "job");
        std::printf(
            "[client] submitted job %llu (seed=%llu%s%s)\n",
            static_cast<unsigned long long>(ids[i]),
            static_cast<unsigned long long>(configs[i].seed),
            boolField(resp, "attached") ? ", attached" : "",
            boolField(resp, "recovered") ? ", recovered" : "");
      }
    };
    submitAll(/*attach=*/false);

    // Reconnect path: respawn the daemon (it recovers its durable state)
    // and resubmit everything by key.
    int reconnects = 0;
    const auto reconnect = [&]() {
      if (++reconnects > 3)
        throw std::runtime_error("synthd died repeatedly; giving up");
      std::printf("[client] synthd is gone; respawning and reattaching\n");
      session = spawn();
      submitAll(/*attach=*/true);
    };
    // Built per attempt: a reconnect reassigns ids, so the retried request
    // must use the fresh one.
    const auto waitJob = [&](std::size_t i) {
      for (;;) {
        try {
          return session->request("{\"op\": \"wait\", \"job\": " +
                                  std::to_string(ids[i]) + "}");
        } catch (const DaemonDied& e) {
          std::printf("[client] %s\n", e.what());
          reconnect();
        }
      }
    };

    if (chaosKill) {
      // Let the daemon make (and persist) some progress, then kill -9 it
      // mid-run and recover on a fresh process over the same state dir.
      for (int poll = 0; poll < 500; ++poll) {
        const util::JsonValue st = session->request(
            "{\"op\": \"status\", \"job\": " + std::to_string(ids[0]) + "}");
        std::string state;
        util::readString(st, "state", state);
        if (state == "done" || member(st, "tasks_done") > 0) break;
        usleep(20 * 1000);
      }
      std::printf("[client] chaos: SIGKILL synthd mid-run\n");
      session->kill();
      reconnect();
    }

    bool allMatch = true;
    // One store for every verification run: NetSyn methods load/train their
    // models once per (modelDir, scale), not once per job.
    service::ModelStore verifyModels;
    for (long i = 0; i < jobs; ++i) {
      const util::JsonValue done = waitJob(static_cast<std::size_t>(i));
      if (!okField(done)) throw std::runtime_error("wait failed");
      std::string state;
      util::readString(done, "state", state);
      const std::size_t programs = member(done, "programs");
      const std::size_t runs = member(done, "runs_per_program");
      double fraction = 0.0;
      util::readDouble(done, "synthesized_fraction", fraction);
      std::printf(
          "[client] job %llu %s: synthesized %.0f%% of %zu programs, "
          "plan compiles=%llu hits=%llu, retries=%llu%s\n",
          static_cast<unsigned long long>(ids[i]), state.c_str(),
          fraction * 100.0, programs,
          static_cast<unsigned long long>(member(done, "plan_compiles")),
          static_cast<unsigned long long>(member(done, "plan_hits")),
          static_cast<unsigned long long>(member(done, "retries")),
          boolField(done, "recovered") ? ", recovered" : "");
      if (state != "done") {
        allMatch = false;
        continue;
      }

      if (verify) {
        // One-shot comparison: same config, sequential in-process run.
        const std::vector<TaskTriple> daemonTasks =
            tasksOf(done, programs, runs);
        const baselines::MethodPtr oneShot =
            service::makeOneShotMethod(method, configs[i], verifyModels);
        const auto workload = harness::makeFullWorkload(configs[i]);
        const harness::MethodReport report =
            harness::runMethod(*oneShot, workload, configs[i],
                               /*verbose=*/false);
        if (daemonTasks.size() != report.programs.size() * runs) {
          std::printf(
              "[client] MISMATCH job %llu: daemon reported %zu x %zu "
              "tasks, one-shot ran %zu programs\n",
              static_cast<unsigned long long>(ids[i]), programs, runs,
              report.programs.size());
          allMatch = false;
          continue;
        }
        for (std::size_t p = 0; p < report.programs.size(); ++p) {
          for (std::size_t k = 0; k < report.programs[p].runs.size(); ++k) {
            const harness::RunRecord& r = report.programs[p].runs[k];
            const TaskTriple& d = daemonTasks[p * runs + k];
            if (r.found != d.found || r.candidates != d.candidates ||
                r.generations != d.generations) {
              std::printf(
                  "[client] MISMATCH job %llu p=%zu k=%zu: daemon "
                  "(found=%d cand=%llu gen=%llu) vs one-shot (found=%d "
                  "cand=%zu gen=%zu)\n",
                  static_cast<unsigned long long>(ids[i]), p, k, d.found,
                  static_cast<unsigned long long>(d.candidates),
                  static_cast<unsigned long long>(d.generations), r.found,
                  r.candidates, r.generations);
              allMatch = false;
            }
          }
        }
        if (allMatch)
          std::printf("[client] job %llu verified against one-shot run\n",
                      static_cast<unsigned long long>(ids[i]));
      }
    }

    // Warm path: resubmitting job 0's exact config is answered from the
    // completed-job memo — or, when the run went through a kill/recover
    // cycle, attaches to the completed job by key (same idempotence, the
    // memo may have died with the first daemon before the job finished).
    const util::JsonValue warm = session->request(
        "{\"op\": \"submit\", \"method\": \"" + method +
        "\", \"config\": " + configs[0].toJson() +
        (chaosKill ? ", \"attach\": true" : "") + "}");
    const bool fromCache = boolField(warm, "from_cache");
    const bool attached = boolField(warm, "attached");
    std::printf("[client] identical resubmission: from_cache=%s attached=%s\n",
                fromCache ? "true" : "false", attached ? "true" : "false");
    const bool warmOk = chaosKill ? (fromCache || attached) : fromCache;

    const util::JsonValue stats = session->request("{\"op\": \"stats\"}");
    std::printf(
        "[client] session: %llu jobs, %llu tasks, %llu result-cache hits, "
        "plan compiles=%llu hits=%llu\n",
        static_cast<unsigned long long>(member(stats, "jobs_submitted")),
        static_cast<unsigned long long>(member(stats, "tasks_executed")),
        static_cast<unsigned long long>(member(stats, "result_cache_hits")),
        static_cast<unsigned long long>(member(stats, "plan_compiles")),
        static_cast<unsigned long long>(member(stats, "plan_hits")));

    const util::JsonValue metrics = session->request("{\"op\": \"metrics\"}");
    std::printf(
        "[client] metrics: queue=%llu retry-waiting=%llu recovered=%llu "
        "ckpt written=%llu loaded=%llu rejected=%llu, fault hits=%llu "
        "fires=%llu\n",
        static_cast<unsigned long long>(member(metrics, "queue_depth")),
        static_cast<unsigned long long>(member(metrics, "retry_waiting")),
        static_cast<unsigned long long>(member(metrics, "jobs_recovered")),
        static_cast<unsigned long long>(
            member(metrics, "durable_checkpoints_written")),
        static_cast<unsigned long long>(
            member(metrics, "durable_checkpoints_loaded")),
        static_cast<unsigned long long>(
            member(metrics, "checkpoints_rejected")),
        static_cast<unsigned long long>(member(metrics, "fault_hits")),
        static_cast<unsigned long long>(member(metrics, "fault_fires")));

    session->request("{\"op\": \"shutdown\"}");

    if (!allMatch) {
      std::printf("[client] FAILED: daemon results diverge from one-shot\n");
      return 1;
    }
    if (!warmOk) {
      std::printf("[client] FAILED: resubmission missed the result cache\n");
      return 1;
    }
    std::printf("[client] OK\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[client] fatal: %s\n", e.what());
    return 1;
  }
}
