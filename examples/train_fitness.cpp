// Train a neural fitness function (paper Phase 1, Figure 1 left).
//
// Generates a balanced corpus of (target program, candidate, traces, oracle
// fitness) samples, trains the Figure-2 LSTM model to predict the oracle
// metric, reports the validation confusion matrix, and saves the weights.
//
//   $ ./train_fitness [--metric=cf|lcs|fp] [--train-programs=4000]
//                     [--epochs=6] [--out=model.bin] [--scale=ci]
#include <cstdio>
#include <exception>

#include "harness/models.hpp"
#include "util/argparse.hpp"

using namespace netsyn;

// The real body; main() wraps it so flag-parse errors (bad --lengths,
// non-numeric --budget, unknown --domain...) print their message instead of
// tearing the process down through std::terminate.
int run(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Keep the no-argument run light: a few thousand programs train in about
  // a minute; pass --train-programs/--epochs to scale up.
  if (!args.has("train-programs")) config.trainingPrograms = 3000;
  if (!args.has("epochs")) config.trainConfig.epochs = 5;

  const std::string metricName = args.getString("metric", "cf");
  const std::string out = args.getString("out", "nnff_" + metricName + ".bin");

  fitness::HeadKind head = fitness::HeadKind::Classifier;
  fitness::BalanceMetric metric = fitness::BalanceMetric::CF;
  if (metricName == "lcs") {
    metric = fitness::BalanceMetric::LCS;
  } else if (metricName == "fp") {
    head = fitness::HeadKind::Multilabel;
  } else if (metricName != "cf") {
    std::fprintf(stderr, "unknown --metric=%s (cf|lcs|fp)\n",
                 metricName.c_str());
    return 1;
  }

  std::printf("Building corpus: %zu train / %zu val programs of length %zu\n",
              config.trainingPrograms, config.validationPrograms,
              config.trainingLength);
  const auto trainSet = harness::buildCorpus(config, config.trainingPrograms,
                                             metric, config.seed + 17);
  const auto valSet = harness::buildCorpus(config, config.validationPrograms,
                                           metric, config.seed + 31);

  auto model = harness::buildModel(config, head);
  std::printf("Model: %zu parameters, head=%s\n",
              model->params().totalParameters(), metricName.c_str());

  fitness::TrainConfig tc = config.trainConfig;
  tc.labelMetric = metric;
  fitness::Trainer trainer(tc);
  trainer.train(*model, trainSet, valSet, [](const fitness::EpochStats& e) {
    std::printf("epoch %zu: train loss %.4f, val loss %.4f, val acc %.3f\n",
                e.epoch, e.trainLoss, e.valLoss, e.valAccuracy);
  });

  if (head == fitness::HeadKind::Classifier) {
    std::printf("\nValidation confusion matrix (rows = true %s):\n%s",
                metricName.c_str(),
                trainer.confusion(*model, valSet).toString().c_str());
  } else {
    std::printf("\nValidation FP accuracy (p>=0.5 vs presence): %.3f\n",
                fitness::Trainer::multilabelAccuracy(*model, valSet));
  }

  model->save(out);
  std::printf("Saved weights to %s\n", out.c_str());
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
