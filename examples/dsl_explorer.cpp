// DSL explorer: parse, run, trace, and analyze programs of any registered
// domain.
//
//   $ ./dsl_explorer                                  # built-in demo
//   $ ./dsl_explorer --program="SORT | REVERSE | HEAD" --input=5,3,8
//   $ ./dsl_explorer --list-functions [--domain=str]
//   $ ./dsl_explorer --domain=str --program="STR.TITLE | STR.INITIALS" \
//                    --text="ada lovelace"
#include <cstdio>
#include <exception>
#include <sstream>

#include "dsl/dce.hpp"
#include "dsl/domain.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/argparse.hpp"

using namespace netsyn;

namespace {

std::vector<std::int32_t> parseIntList(const std::string& text) {
  std::vector<std::int32_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::int32_t>(std::stol(item)));
  }
  return out;
}

void show(const dsl::Domain& domain, const dsl::Program& program,
          const std::vector<dsl::Value>& inputs) {
  std::printf("Program: %s\n", program.toString().c_str());
  const auto sig = dsl::signatureOf(inputs);
  std::printf("Inputs :");
  for (const auto& v : inputs)
    std::printf(" %s", dsl::renderValue(domain, v).c_str());
  std::printf("\nEffective length: %zu of %zu%s\n",
              dsl::effectiveLength(program, sig), program.length(),
              dsl::isFullyLive(program, sig) ? " (fully live)" : "");

  const auto result = dsl::run(program, inputs);
  for (std::size_t k = 0; k < result.trace.size(); ++k) {
    std::printf("  %2zu. %-15s -> %s\n", k + 1,
                dsl::functionInfo(program.at(k)).name,
                dsl::renderValue(domain, result.trace[k]).c_str());
  }
  std::printf("Output : %s\n",
              dsl::renderValue(domain, result.output()).c_str());

  const auto cleaned = dsl::eliminateDeadCode(program, sig);
  if (cleaned.length() != program.length())
    std::printf("After DCE: %s\n", cleaned.toString().c_str());
}

}  // namespace

// The real body; main() wraps it so flag-parse errors (bad --lengths,
// non-numeric --budget, unknown --domain...) print their message instead of
// tearing the process down through std::terminate.
int run(int argc, char** argv) {
  const util::ArgParse args(argc, argv);

  const std::string domainName = args.getString("domain", "list");
  const dsl::Domain* domainPtr = dsl::findDomain(domainName);
  if (!domainPtr) {
    std::fprintf(stderr, "unknown --domain '%s' (expected one of: %s)\n",
                 domainName.c_str(), dsl::knownDomainNames().c_str());
    return 1;
  }
  const dsl::Domain& domain = *domainPtr;

  if (args.getBool("list-functions", false)) {
    std::printf("domain '%s': %s\n", domain.name.c_str(),
                domain.summary.c_str());
    std::printf("%-4s %-15s %-20s\n", "#", "name", "signature");
    for (std::size_t i = 0; i < domain.vocabSize(); ++i) {
      const auto& info = dsl::functionInfo(domain.vocabulary[i]);
      std::string sig;
      for (std::size_t a = 0; a < info.arity; ++a) {
        if (a) sig += ", ";
        sig += dsl::typeName(info.argTypes[a]);
      }
      sig += " -> " + dsl::typeName(info.returnType);
      // The paper's 1-based number for list ops; local index otherwise.
      std::printf("%-4d %-15s %-20s\n",
                  info.paperNumber ? int(info.paperNumber) : int(i),
                  info.name, sig.c_str());
    }
    return 0;
  }

  std::vector<dsl::Value> inputs;
  if (args.has("text")) {
    const std::string text = args.getString("text", "");
    inputs.push_back(dsl::Value(std::vector<std::int32_t>(text.begin(),
                                                          text.end())));
    if (args.has("int-input")) {
      inputs.push_back(dsl::Value(
          static_cast<std::int32_t>(args.getInt("int-input", 0))));
    }
  } else if (args.has("input")) {
    inputs.push_back(dsl::Value(parseIntList(args.getString("input", ""))));
    if (args.has("int-input")) {
      inputs.push_back(dsl::Value(
          static_cast<std::int32_t>(args.getInt("int-input", 0))));
    }
  } else if (domain.textual) {
    const std::string demo = "the quick brown fox";
    inputs.push_back(dsl::Value(std::vector<std::int32_t>(demo.begin(),
                                                          demo.end())));
  } else {
    inputs.push_back(dsl::Value(std::vector<std::int32_t>{-2, 10, 3, -4, 5, 2}));
  }

  if (args.has("program")) {
    const auto program = dsl::Program::fromString(args.getString("program", ""));
    if (!program) {
      std::fprintf(stderr,
                   "could not parse --program (try --list-functions)\n");
      return 1;
    }
    show(domain, *program, inputs);
    return 0;
  }

  // Demo: a fixed showcase program for the domain, then a random one.
  if (domain.textual) {
    std::printf("=== String-domain example ===\n");
    show(domain,
         *dsl::Program::fromString("STR.TITLE | STR.INITIALS | STR.LOWER"),
         inputs);
  } else {
    std::printf("=== Paper Table 1 example ===\n");
    show(domain,
         *dsl::Program::fromString("FILTER(>0) | MAP(*2) | SORT | REVERSE"),
         inputs);
  }

  std::printf("\n=== Random fully-live program ===\n");
  util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 42)));
  const dsl::Generator gen(domain);
  const auto random =
      gen.randomProgram(5, dsl::signatureOf(inputs), rng);
  if (random) show(domain, *random, inputs);
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
