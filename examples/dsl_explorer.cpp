// DSL explorer: parse, run, trace, and analyze list-DSL programs.
//
//   $ ./dsl_explorer                                  # built-in demo
//   $ ./dsl_explorer --program="SORT | REVERSE | HEAD" --input=5,3,8
//   $ ./dsl_explorer --list-functions
#include <cstdio>
#include <sstream>

#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/argparse.hpp"

using namespace netsyn;

namespace {

std::vector<std::int32_t> parseIntList(const std::string& text) {
  std::vector<std::int32_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(static_cast<std::int32_t>(std::stol(item)));
  }
  return out;
}

void show(const dsl::Program& program, const std::vector<dsl::Value>& inputs) {
  std::printf("Program: %s\n", program.toString().c_str());
  const auto sig = dsl::signatureOf(inputs);
  std::printf("Inputs :");
  for (const auto& v : inputs) std::printf(" %s", v.toString().c_str());
  std::printf("\nEffective length: %zu of %zu%s\n",
              dsl::effectiveLength(program, sig), program.length(),
              dsl::isFullyLive(program, sig) ? " (fully live)" : "");

  const auto result = dsl::run(program, inputs);
  for (std::size_t k = 0; k < result.trace.size(); ++k) {
    std::printf("  %2zu. %-14s -> %s\n", k + 1,
                dsl::functionInfo(program.at(k)).name,
                result.trace[k].toString().c_str());
  }
  std::printf("Output : %s\n", result.output().toString().c_str());

  const auto cleaned = dsl::eliminateDeadCode(program, sig);
  if (cleaned.length() != program.length())
    std::printf("After DCE: %s\n", cleaned.toString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);

  if (args.getBool("list-functions", false)) {
    std::printf("%-4s %-14s %-20s\n", "#", "name", "signature");
    for (std::size_t i = 0; i < dsl::kNumFunctions; ++i) {
      const auto& info = dsl::functionInfo(static_cast<dsl::FuncId>(i));
      std::string sig;
      for (std::size_t a = 0; a < info.arity; ++a) {
        if (a) sig += ", ";
        sig += dsl::typeName(info.argTypes[a]);
      }
      sig += " -> " + dsl::typeName(info.returnType);
      std::printf("%-4d %-14s %-20s\n", int(info.paperNumber), info.name,
                  sig.c_str());
    }
    return 0;
  }

  std::vector<dsl::Value> inputs;
  if (args.has("input")) {
    inputs.push_back(dsl::Value(parseIntList(args.getString("input", ""))));
    if (args.has("int-input")) {
      inputs.push_back(dsl::Value(
          static_cast<std::int32_t>(args.getInt("int-input", 0))));
    }
  } else {
    inputs.push_back(dsl::Value(std::vector<std::int32_t>{-2, 10, 3, -4, 5, 2}));
  }

  if (args.has("program")) {
    const auto program = dsl::Program::fromString(args.getString("program", ""));
    if (!program) {
      std::fprintf(stderr,
                   "could not parse --program (try --list-functions)\n");
      return 1;
    }
    show(*program, inputs);
    return 0;
  }

  // Demo: the paper's Table 1 program, then a random one.
  std::printf("=== Paper Table 1 example ===\n");
  show(*dsl::Program::fromString("FILTER(>0) | MAP(*2) | SORT | REVERSE"),
       inputs);

  std::printf("\n=== Random fully-live program ===\n");
  util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 42)));
  const dsl::Generator gen;
  const auto random =
      gen.randomProgram(5, dsl::signatureOf(inputs), rng);
  if (random) show(*random, inputs);
  return 0;
}
