// fleet_coord — deterministic multi-host synthesis coordinator.
//
// Spawns N synthd backends (one subprocess per "host", each with its own
// durable state dir), partitions a job's (program, run) tasks across them
// by rendezvous hashing, and merges their claim results into one report
// whose bytes are identical for any host count — including runs where a
// backend is killed mid-claim and its tasks fail over to the survivors
// (service/fleet.hpp).
//
// Usage:
//   fleet_coord [--hosts=N] [--synthd=PATH] [--method=NAME]
//               [--host-workers=N] [--state-dir=DIR]
//               [--checkpoint-interval=G] [--max-queue=N]
//               [--daemon-faults=SPEC] [--token=STR] [--host-timeout=S]
//               [--poll-ms=MS] [--chaos-kill-host=I|auto]
//               [--report=FILE] [--metrics-json=FILE] [--verbose]
//               [experiment flags: --scale / --config-file, --budget, ...]
//
//   --hosts=N              backend count (default 2)
//   --synthd=PATH          backend binary (default ./synthd)
//   --method=NAME          synthesis method (default Edit)
//   --host-workers=N       worker threads per backend (default 1)
//   --state-dir=DIR        fleet durability root; host i persists under
//                          DIR/host-i. Enables snapshot adoption on
//                          failover; omitted, dead hosts' tasks replay
//                          from seed (identical results, more compute)
//   --checkpoint-interval=G  backend snapshot cadence (default 5)
//   --max-queue=N          per-backend task-queue cap (overload shedding)
//   --daemon-faults=SPEC   fault-injection spec passed to every backend
//   --token=STR            fleet session token (default fleet-1)
//   --host-timeout=S       per-request receive budget before a silent
//                          backend is declared dead (default 120)
//   --chaos-kill-host=I|auto  SIGKILL backend I (or the busiest one) once
//                          it is mid-claim; the run must still complete
//   --report=FILE          write the canonical report line to FILE
//                          (default stdout)
//   --metrics-json=FILE    write the aggregated fleet metrics to FILE
//
// Experiment flags are the shared harness set (--scale=ci|paper,
// --config-file=PATH, --budget, --runs, --lengths, --seed, ...).
//
// Exit 0 on a completed run; diagnostics go to stderr.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "harness/config.hpp"
#include "service/fleet.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace netsyn;
  try {
    const util::ArgParse args(argc, argv);
    const harness::ExperimentConfig config =
        harness::ExperimentConfig::fromArgs(args);
    const std::string method = args.getString("method", "Edit");

    service::FleetConfig fc;
    const long hosts = args.getInt("hosts", 2);
    if (hosts <= 0) throw std::invalid_argument("--hosts must be > 0");
    fc.hosts = static_cast<std::size_t>(hosts);
    fc.token = args.getString("token", "fleet-1");
    fc.pollIntervalMs = args.getDouble("poll-ms", 20.0);
    fc.hostTimeoutSeconds = args.getDouble("host-timeout", 120.0);
    fc.verbose = args.getBool("verbose", false);
    if (args.has("chaos-kill-host")) {
      fc.chaosKill = true;
      const std::string victim = args.getString("chaos-kill-host", "auto");
      fc.chaosKillHost = victim == "auto" ? -1 : std::stol(victim);
    }

    service::LocalBackendConfig backend;
    backend.synthdPath = args.getString("synthd", "./synthd");
    const long workers = args.getInt("host-workers", 1);
    if (workers < 0)
      throw std::invalid_argument("--host-workers must be >= 0");
    backend.workers = static_cast<std::size_t>(workers);
    backend.stateDir = args.getString("state-dir", "");
    const long ckpt = args.getInt("checkpoint-interval", 5);
    if (ckpt < 0)
      throw std::invalid_argument("--checkpoint-interval must be >= 0");
    backend.checkpointInterval = static_cast<std::size_t>(ckpt);
    backend.faults = args.getString("daemon-faults", "");
    if (args.has("max-queue"))
      backend.extraArgs.push_back("--max-queue=" +
                                  std::to_string(args.getInt("max-queue", 0)));

    service::FleetCoordinator fleet(fc, backend);
    const service::FleetReport report = fleet.run(config, method);
    fleet.shutdownBackends();
    const service::FleetMetrics metrics = fleet.metrics();

    const std::string reportPath = args.getString("report", "");
    if (reportPath.empty()) {
      std::cout << report.render() << "\n";
    } else {
      std::ofstream out(reportPath, std::ios::trunc);
      if (!out) throw std::runtime_error("cannot write " + reportPath);
      out << report.render() << "\n";
    }
    const std::string metricsPath = args.getString("metrics-json", "");
    if (!metricsPath.empty()) {
      std::ofstream out(metricsPath, std::ios::trunc);
      if (!out) throw std::runtime_error("cannot write " + metricsPath);
      out << metrics.toJson() << "\n";
    }
    std::fprintf(stderr,
                 "[fleet_coord] done: hosts=%zu lost=%zu restarted=%zu "
                 "reassigned=%zu shed=%zu recovered=%zu "
                 "synthesized_fraction=%.3f\n",
                 metrics.hostsSpawned, metrics.hostsLost,
                 metrics.hostsRestarted, metrics.tasksReassigned,
                 metrics.claimsShed, metrics.recovered(),
                 report.synthesizedFraction);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fleet_coord] fatal: %s\n", e.what());
    return 1;
  }
}
