// fleet_coord — deterministic multi-host synthesis coordinator.
//
// Spawns N synthd backends (one subprocess per "host", each with its own
// durable state dir), partitions a job's (program, run) tasks across them
// by rendezvous hashing, and merges their claim results into one report
// whose bytes are identical for any host count — including runs where a
// backend is killed mid-claim and its tasks fail over to the survivors
// (service/fleet.hpp).
//
// With --hosts=H1:P1,H2:P2,... (or --hosts-file) the backends are remote
// synthd daemons reached over TCP/Unix sockets instead of spawned
// subprocesses: the coordinator dials each endpoint, and a dropped
// connection is re-dialed with seeded backoff + re-hello + idempotent
// claim re-attach (--reconnect-attempts) before failover kicks in. The
// merged report's bytes are identical across subprocess and socket modes.
//
// Usage:
//   fleet_coord [--hosts=N | --hosts=EP1,EP2,... | --hosts-file=PATH]
//               [--synthd=PATH] [--method=NAME]
//               [--host-workers=N] [--state-dir=DIR]
//               [--checkpoint-interval=G] [--max-queue=N]
//               [--daemon-faults=SPEC] [--token=STR] [--host-timeout=S]
//               [--poll-ms=MS] [--chaos-kill-host=I|auto]
//               [--reconnect-attempts=N]
//               [--report=FILE] [--metrics-json=FILE] [--verbose]
//               [experiment flags: --scale / --config-file, --budget, ...]
//
//   --hosts=N              backend count (default 2), spawned as local
//                          synthd subprocesses; or a comma-separated
//                          endpoint list ("HOST:PORT" / "unix:PATH"
//                          entries) of remote daemons to dial
//   --hosts-file=PATH      endpoint list from a file, one per line
//                          (# comments and blank lines ignored)
//   --reconnect-attempts=N re-dial budget per dropped socket connection
//                          before host-death failover (default 3 for
//                          socket hosts; subprocess mode has no use for
//                          it — the peer died with its pipe)
//   --synthd=PATH          backend binary (default ./synthd)
//   --method=NAME          synthesis method (default Edit)
//   --host-workers=N       worker threads per backend (default 1)
//   --state-dir=DIR        fleet durability root; host i persists under
//                          DIR/host-i. Enables snapshot adoption on
//                          failover; omitted, dead hosts' tasks replay
//                          from seed (identical results, more compute)
//   --checkpoint-interval=G  backend snapshot cadence (default 5)
//   --max-queue=N          per-backend task-queue cap (overload shedding)
//   --daemon-faults=SPEC   fault-injection spec passed to every backend
//   --token=STR            fleet session token (default fleet-1)
//   --host-timeout=S       per-request receive budget before a silent
//                          backend is declared dead (default 120)
//   --chaos-kill-host=I|auto  SIGKILL backend I (or the busiest one) once
//                          it is mid-claim; the run must still complete.
//                          On socket hosts this severs the connection
//                          (the daemon keeps running) — with reconnect
//                          attempts left the coordinator re-attaches, so
//                          it doubles as the chaos-sever switch
//   --report=FILE          write the canonical report line to FILE
//                          (default stdout)
//   --metrics-json=FILE    write the aggregated fleet metrics to FILE
//
// Experiment flags are the shared harness set (--scale=ci|paper,
// --config-file=PATH, --budget, --runs, --lengths, --seed, ...).
//
// Exit 0 on a completed run; diagnostics go to stderr.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "service/fleet.hpp"
#include "util/argparse.hpp"

namespace {

// "3" is a subprocess count; "a:5001,b:5002" or "unix:/tmp/s.sock" is an
// endpoint list. All-digits means count — every endpoint form contains a
// ':' or a non-digit.
bool looksLikeCount(const std::string& hosts) {
  return !hosts.empty() &&
         hosts.find_first_not_of("0123456789") == std::string::npos;
}

std::vector<netsyn::util::SocketEndpoint> parseEndpointList(
    const std::string& text) {
  std::vector<netsyn::util::SocketEndpoint> out;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ','))
    if (!item.empty()) out.push_back(netsyn::util::SocketEndpoint::parse(item));
  return out;
}

std::vector<netsyn::util::SocketEndpoint> readHostsFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read hosts file " + path);
  std::vector<netsyn::util::SocketEndpoint> out;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    out.push_back(
        netsyn::util::SocketEndpoint::parse(line.substr(start, end - start + 1)));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netsyn;
  try {
    const util::ArgParse args(argc, argv);
    const harness::ExperimentConfig config =
        harness::ExperimentConfig::fromArgs(args);
    const std::string method = args.getString("method", "Edit");

    service::FleetConfig fc;
    fc.token = args.getString("token", "fleet-1");
    fc.pollIntervalMs = args.getDouble("poll-ms", 20.0);
    fc.hostTimeoutSeconds = args.getDouble("host-timeout", 120.0);
    fc.verbose = args.getBool("verbose", false);
    if (args.has("chaos-kill-host")) {
      fc.chaosKill = true;
      const std::string victim = args.getString("chaos-kill-host", "auto");
      fc.chaosKillHost = victim == "auto" ? -1 : std::stol(victim);
    }

    // Socket mode: --hosts is an endpoint list, or --hosts-file names one.
    const std::string hostsArg = args.getString("hosts", "");
    const std::string hostsFile = args.getString("hosts-file", "");
    std::vector<util::SocketEndpoint> endpoints;
    if (!hostsFile.empty()) {
      if (!hostsArg.empty())
        throw std::invalid_argument("--hosts and --hosts-file are exclusive");
      endpoints = readHostsFile(hostsFile);
    } else if (!hostsArg.empty() && !looksLikeCount(hostsArg)) {
      endpoints = parseEndpointList(hostsArg);
    }

    std::unique_ptr<service::FleetCoordinator> fleet;
    if (!endpoints.empty()) {
      const long redial = args.getInt("reconnect-attempts", 3);
      if (redial < 0)
        throw std::invalid_argument("--reconnect-attempts must be >= 0");
      fc.maxReconnectAttempts = static_cast<std::size_t>(redial);
      // The daemons' state dirs are theirs to manage; adoption-on-failover
      // needs a shared filesystem, which a remote fleet cannot assume.
      fleet = std::make_unique<service::FleetCoordinator>(fc, endpoints);
    } else {
      const long hosts = hostsArg.empty() ? 2 : args.getInt("hosts", 2);
      if (hosts <= 0) throw std::invalid_argument("--hosts must be > 0");
      fc.hosts = static_cast<std::size_t>(hosts);

      service::LocalBackendConfig backend;
      backend.synthdPath = args.getString("synthd", "./synthd");
      const long workers = args.getInt("host-workers", 1);
      if (workers < 0)
        throw std::invalid_argument("--host-workers must be >= 0");
      backend.workers = static_cast<std::size_t>(workers);
      backend.stateDir = args.getString("state-dir", "");
      const long ckpt = args.getInt("checkpoint-interval", 5);
      if (ckpt < 0)
        throw std::invalid_argument("--checkpoint-interval must be >= 0");
      backend.checkpointInterval = static_cast<std::size_t>(ckpt);
      backend.faults = args.getString("daemon-faults", "");
      if (args.has("max-queue"))
        backend.extraArgs.push_back(
            "--max-queue=" + std::to_string(args.getInt("max-queue", 0)));
      fleet = std::make_unique<service::FleetCoordinator>(fc, backend);
    }

    const service::FleetReport report = fleet->run(config, method);
    fleet->shutdownBackends();
    const service::FleetMetrics metrics = fleet->metrics();

    const std::string reportPath = args.getString("report", "");
    if (reportPath.empty()) {
      std::cout << report.render() << "\n";
    } else {
      std::ofstream out(reportPath, std::ios::trunc);
      if (!out) throw std::runtime_error("cannot write " + reportPath);
      out << report.render() << "\n";
    }
    const std::string metricsPath = args.getString("metrics-json", "");
    if (!metricsPath.empty()) {
      std::ofstream out(metricsPath, std::ios::trunc);
      if (!out) throw std::runtime_error("cannot write " + metricsPath);
      out << metrics.toJson() << "\n";
    }
    std::fprintf(stderr,
                 "[fleet_coord] done: hosts=%zu lost=%zu restarted=%zu "
                 "reconnected=%zu reassigned=%zu shed=%zu recovered=%zu "
                 "synthesized_fraction=%.3f\n",
                 metrics.hostsSpawned, metrics.hostsLost,
                 metrics.hostsRestarted, metrics.hostsReconnected,
                 metrics.tasksReassigned, metrics.claimsShed,
                 metrics.recovered(), report.synthesizedFraction);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[fleet_coord] fatal: %s\n", e.what());
    return 1;
  }
}
