// Head-to-head comparison of every synthesis method on a small workload —
// a miniature of the paper's Figure 4 experiment using the public harness
// API. Trains (or loads cached) NN fitness models first.
//
//   $ ./compare_methods [--scale=ci] [--budget=10000]
//                       [--programs-per-length=4] [--lengths=4,5]
//                       [--workers=4] [--islands=4]
//
// With --workers=N the (program, run) pairs of each method are dispatched
// onto N threads, each with its own method instance; the report is identical
// to a sequential run (wall-clock aside). With --islands=K every GA-based
// method evolves K cooperating sub-populations under one candidate budget
// (see README "Search strategies"); results stay deterministic per seed.
#include <cstdio>
#include <exception>

#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "util/table.hpp"

using namespace netsyn;

// The real body; main() wraps it so flag-parse errors (bad --lengths,
// non-numeric --budget, unknown --domain...) print their message instead of
// tearing the process down through std::terminate.
int run(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Keep the no-argument demo small; flags scale it up.
  if (!args.has("programs-per-length")) config.programsPerLength = 4;
  if (!args.has("runs")) config.runsPerProgram = 1;

  std::printf("Preparing fitness models (cached in %s)...\n",
              config.modelDir.c_str());
  const auto models = harness::loadOrTrainAll(config);
  const auto workload = harness::makeFullWorkload(config);
  std::printf("Workload: %zu programs, budget %zu candidates, %zu runs\n\n",
              workload.size(), config.searchBudget, config.runsPerProgram);

  util::Table table(
      {"Method", "Synthesized", "Avg rate", "Avg candidates", "Avg secs"});
  for (const auto& factory : harness::makeAllMethodFactories(config, models)) {
    const auto report = harness::runMethod(factory, workload, config,
                                           /*verbose=*/false);
    double cands = 0, secs = 0;
    std::size_t n = 0;
    for (const auto& p : report.programs) {
      if (!p.synthesized()) continue;
      cands += p.meanCandidatesWhenFound();
      secs += p.meanSecondsWhenFound();
      ++n;
    }
    table.newRow()
        .add(report.method)
        .addPercent(report.synthesizedFraction(), 0)
        .addPercent(report.meanSynthesisRate(), 0)
        .addDouble(n ? cands / double(n) : 0.0, 0)
        .addDouble(n ? secs / double(n) : 0.0, 2);
    std::printf("%s done\n", report.method.c_str());
  }
  std::printf("\n%s", table.toString().c_str());
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
