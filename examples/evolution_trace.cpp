// Visualize a NetSyn run: per-generation best/mean fitness, budget
// consumption, and neighborhood-search triggers, rendered as an ASCII chart.
// Uses the oracle fitness so no model training is needed.
//
//   $ ./evolution_trace [--length=5] [--budget=20000] [--seed=3]
#include <algorithm>
#include <cstdio>
#include <exception>

#include "core/synthesizer.hpp"
#include "dsl/generator.hpp"
#include "fitness/metrics.hpp"
#include "util/argparse.hpp"

using namespace netsyn;

// The real body; main() wraps it so flag-parse errors (bad --lengths,
// non-numeric --budget, unknown --domain...) print their message instead of
// tearing the process down through std::terminate.
int run(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto length = static_cast<std::size_t>(args.getInt("length", 5));
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 20000));
  util::Rng rng(static_cast<std::uint64_t>(args.getInt("seed", 3)));

  const dsl::Generator gen;
  const auto tc = gen.randomTestCase(length, 5, /*singleton=*/false, rng);
  if (!tc) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }
  std::printf("Target  : %s\n", tc->program.toString().c_str());
  std::printf("Examples: %zu, budget: %zu candidates\n\n", tc->spec.size(),
              budget);

  core::SynthesizerConfig config;
  config.ga.populationSize = 50;
  config.maxGenerations = 3000;
  config.recordHistory = true;
  core::Synthesizer synthesizer(
      config, std::make_shared<fitness::OracleLCS>(tc->program));
  const auto result = synthesizer.synthesize(tc->spec, length, budget, rng);

  // ASCII chart: one row per sampled generation, bar = mean fitness,
  // '*' marks best fitness, 'N' marks an NS trigger.
  const double maxFitness = static_cast<double>(length);
  const std::size_t rows = 30;
  const std::size_t every =
      std::max<std::size_t>(1, result.history.size() / rows);
  std::printf("gen    budget  mean fitness (bar), best (*), NS trigger (N)\n");
  for (std::size_t i = 0; i < result.history.size(); i += every) {
    const auto& gs = result.history[i];
    const int barWidth = 48;
    const int bar = static_cast<int>(gs.meanFitness / maxFitness * barWidth);
    const int best = std::min(
        barWidth, static_cast<int>(gs.bestFitness / maxFitness * barWidth));
    std::string line(static_cast<std::size_t>(barWidth) + 1, ' ');
    for (int c = 0; c < bar; ++c) line[static_cast<std::size_t>(c)] = '=';
    line[static_cast<std::size_t>(best)] = '*';
    std::printf("%5zu %7zu  |%s|%s\n", gs.generation, gs.budgetUsed,
                line.c_str(), gs.nsTriggered ? " N" : "");
  }

  std::printf("\n");
  if (result.found) {
    std::printf("Found %s after %zu candidates, %zu generations%s:\n  %s\n",
                result.foundByNs ? "(by neighborhood search)" : "(by the GA)",
                result.candidatesSearched, result.generations,
                result.nsInvocations ? "" : " (NS never triggered)",
                result.solution.toString().c_str());
  } else {
    std::printf("Not found within budget (%zu candidates, %zu NS sweeps).\n",
                result.candidatesSearched, result.nsInvocations);
  }
  return 0;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
