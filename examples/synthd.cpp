// synthd — the long-lived synthesis daemon.
//
// Serves the line-delimited JSON protocol (service/protocol.hpp) on
// stdin/stdout, so any parent process — synth_client, a CI step, a shell
// pipeline — can hold a session over a pipe pair. Jobs submitted on the
// session run concurrently on one shared worker pool with cross-request
// plan/model/result caches (service/service.hpp); responses come back one
// JSON object per line, flushed.
//
// Usage:
//   synthd [--workers=N] [--no-result-cache]
//
//   --workers=N          worker threads (0 = one per hardware thread;
//                        default 2)
//   --no-result-cache    disable the completed-job memo (plan/model caches
//                        stay on)
//
// Exits when stdin closes or a {"op": "shutdown"} request arrives.
// Diagnostics go to stderr; stdout carries protocol responses only.
#include <cstdio>
#include <iostream>

#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/argparse.hpp"

int main(int argc, char** argv) {
  using namespace netsyn;
  try {
    const util::ArgParse args(argc, argv);
    service::ServiceConfig cfg;
    const long workers = args.getInt("workers", 2);
    if (workers < 0) throw std::invalid_argument("--workers must be >= 0");
    cfg.workers = static_cast<std::size_t>(workers);
    cfg.resultCache = !args.getBool("no-result-cache", false);

    service::SynthService svc(cfg);
    std::fprintf(stderr,
                 "[synthd] serving NDJSON on stdin/stdout (workers=%ld, "
                 "result-cache=%s)\n",
                 workers, cfg.resultCache ? "on" : "off");
    service::serveLines(svc, std::cin, std::cout);
    std::fprintf(stderr, "[synthd] session closed\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[synthd] fatal: %s\n", e.what());
    return 1;
  }
}
