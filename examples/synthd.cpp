// synthd — the long-lived synthesis daemon.
//
// Serves the line-delimited JSON protocol (service/protocol.hpp) on
// stdin/stdout, so any parent process — synth_client, a CI step, a shell
// pipeline — can hold a session over a pipe pair. Jobs submitted on the
// session run concurrently on one shared worker pool with cross-request
// plan/model/result caches (service/service.hpp); responses come back one
// JSON object per line, flushed.
//
// With --listen the daemon serves the same protocol over a TCP or
// Unix-domain socket instead: each accepted connection is an independent
// NDJSON session on its own thread (service::SocketServer), so one daemon
// can serve a fleet coordinator and ad-hoc synth_client sessions at once.
// A shutdown op from any session stops the daemon.
//
// Usage:
//   synthd [--workers=N] [--no-result-cache] [--state-dir=DIR]
//          [--deadline-seconds=S] [--stall-seconds=S] [--max-retries=N]
//          [--checkpoint-interval=G] [--max-queue=N]
//          [--faults=SPEC] [--fault-seed=N]
//          [--listen=HOST:PORT|unix:PATH] [--port-file=PATH]
//
//   --workers=N            worker threads (0 = one per hardware thread;
//                          default 2)
//   --listen=ENDPOINT      serve connections on a socket instead of
//                          stdin/stdout: "HOST:PORT" (TCP; PORT 0 asks the
//                          kernel for an ephemeral port) or "unix:PATH"
//   --port-file=PATH       write the bound endpoint (one line, the form
//                          --connect/--hosts accepts) to PATH once
//                          listening — how CI discovers an ephemeral port
//   --no-result-cache      disable the completed-job memo (plan/model
//                          caches stay on)
//   --state-dir=DIR        durable job state under DIR/jobs/; on startup
//                          the daemon recovers jobs found there and resumes
//                          unfinished tasks from their last checkpoint
//   --deadline-seconds=S   default per-job wall-clock deadline (0 = none)
//   --stall-seconds=S      per-task stall budget before the watchdog aborts
//                          and retries the task (0 = off)
//   --max-retries=N        task retries before the job fails (default 3)
//   --checkpoint-interval=G  snapshot running tasks every G generations
//                          (default 25; 0 = only on pause)
//   --max-queue=N          reject submissions that would push the task
//                          queue past N ("rejected": "overloaded"; 0 = off)
//   --faults=SPEC          arm deterministic fault injection, e.g.
//                          "service.task.generation=throw@40;
//                           checkpoint.write=delay:5/3" (util/faultinject.hpp)
//   --fault-seed=N         seed for probabilistic fault draws
//
// The NETSYN_FAULTS / NETSYN_FAULT_SEED environment variables arm the same
// registry (applied after the flags, so the environment wins in CI).
//
// Exits when stdin closes or a {"op": "shutdown"} request arrives (in
// socket mode: on shutdown only — individual connections may come and go).
// Diagnostics go to stderr; stdout carries protocol responses only.
#include <cstdio>
#include <fstream>
#include <iostream>

#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/argparse.hpp"
#include "util/faultinject.hpp"
#include "util/transport.hpp"

int main(int argc, char** argv) {
  using namespace netsyn;
  try {
    const util::ArgParse args(argc, argv);
    service::ServiceConfig cfg;
    const long workers = args.getInt("workers", 2);
    if (workers < 0) throw std::invalid_argument("--workers must be >= 0");
    cfg.workers = static_cast<std::size_t>(workers);
    cfg.resultCache = !args.getBool("no-result-cache", false);
    cfg.stateDir = args.getString("state-dir", "");
    cfg.defaultDeadlineSeconds = args.getDouble("deadline-seconds", 0.0);
    cfg.stallSeconds = args.getDouble("stall-seconds", 0.0);
    const long retries = args.getInt("max-retries", 3);
    if (retries < 0) throw std::invalid_argument("--max-retries must be >= 0");
    cfg.maxTaskRetries = static_cast<std::size_t>(retries);
    const long ckpt = args.getInt("checkpoint-interval", 25);
    if (ckpt < 0)
      throw std::invalid_argument("--checkpoint-interval must be >= 0");
    cfg.checkpointEveryGenerations = static_cast<std::size_t>(ckpt);
    const long maxQueue = args.getInt("max-queue", 0);
    if (maxQueue < 0) throw std::invalid_argument("--max-queue must be >= 0");
    cfg.maxQueuedTasks = static_cast<std::size_t>(maxQueue);

    if (args.has("fault-seed"))
      util::FaultRegistry::instance().setSeed(
          static_cast<std::uint64_t>(args.getInt("fault-seed", 0)));
    const std::string faults = args.getString("faults", "");
    if (!faults.empty()) util::FaultRegistry::instance().armFromText(faults);
    util::FaultRegistry::instance().armFromEnv();

    service::SynthService svc(cfg);
    const std::string listen = args.getString("listen", "");
    if (!listen.empty()) {
      service::SocketServer server(svc,
                                   util::SocketEndpoint::parse(listen));
      const std::string bound = server.boundEndpoint().str();
      const std::string portFile = args.getString("port-file", "");
      if (!portFile.empty()) {
        std::ofstream out(portFile, std::ios::trunc);
        out << bound << "\n";
        if (!out) throw std::runtime_error("cannot write " + portFile);
      }
      std::fprintf(stderr,
                   "[synthd] listening on %s (workers=%ld, "
                   "result-cache=%s%s%s)\n",
                   bound.c_str(), workers, cfg.resultCache ? "on" : "off",
                   cfg.stateDir.empty() ? "" : ", state-dir=",
                   cfg.stateDir.c_str());
      server.run();  // until a shutdown op
      std::fprintf(stderr, "[synthd] shut down\n");
      return 0;
    }
    std::fprintf(stderr,
                 "[synthd] serving NDJSON on stdin/stdout (workers=%ld, "
                 "result-cache=%s%s%s)\n",
                 workers, cfg.resultCache ? "on" : "off",
                 cfg.stateDir.empty() ? "" : ", state-dir=",
                 cfg.stateDir.c_str());
    service::serveLines(svc, std::cin, std::cout);
    std::fprintf(stderr, "[synthd] session closed\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[synthd] fatal: %s\n", e.what());
    return 1;
  }
}
