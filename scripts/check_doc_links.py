#!/usr/bin/env python3
"""Dead-link check for the repo's markdown docs (lychee-style, offline).

Walks every tracked *.md file, extracts [text](target) links, and fails when
a *relative* target (optionally with a #fragment) does not exist on disk.
External links (http/https/mailto) are skipped — CI must not depend on the
network. Run from the repository root:

    python3 scripts/check_doc_links.py
"""
import os
import re
import subprocess
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def tracked_markdown():
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         capture_output=True, text=True, check=True)
    return sorted(set(p for p in out.stdout.splitlines() if p))


def main():
    bad = []
    files = tracked_markdown()
    checked = 0
    for md in files:
        with open(md, encoding="utf-8") as f:
            text = f.read()
        base = os.path.dirname(md)
        for target in LINK.findall(text):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if resolved.startswith(".."):
                # Escapes the repo (e.g. the GitHub badge URL
                # ../../actions/...): site-relative, not checkable offline.
                continue
            checked += 1
            if not os.path.exists(resolved):
                bad.append(f"{md}: broken relative link '{target}'")
    for line in bad:
        print(line, file=sys.stderr)
    print(f"checked {checked} relative links across {len(files)} files: "
          f"{'FAIL' if bad else 'ok'}")
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
