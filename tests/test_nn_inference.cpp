// The allocation-free inference path must match the autograd graph path to
// float precision — these tests pin that equivalence for every kernel and
// for the full fitness models.
#include <gtest/gtest.h>

#include <cmath>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"
#include "nn/inference.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace nf = netsyn::fitness;
namespace nn = netsyn::nn;
using netsyn::util::Rng;

namespace {

constexpr float kTol = 1e-5f;

nn::Matrix randomRow(std::size_t n, Rng& rng) {
  nn::Matrix m(1, n);
  for (std::size_t i = 0; i < n; ++i)
    m.at(i) = static_cast<float>(rng.uniformReal(-1, 1));
  return m;
}

}  // namespace

TEST(FastInference, LstmStepMatchesGraph) {
  Rng rng(1);
  nn::ParamStore store;
  nn::Lstm lstm(5, 7, store, rng);
  const auto x = randomRow(5, rng);

  // Graph path: two steps.
  nn::InferenceModeGuard guard;
  auto state = lstm.initialState();
  state = lstm.step(nn::constant(x), state);
  state = lstm.step(nn::constant(x), state);

  // Fast path.
  std::vector<float> h(7, 0.0f), c(7, 0.0f);
  nn::InferenceScratch scratch;
  nn::lstmStepFast(lstm, x.data(), h.data(), c.data(), scratch);
  nn::lstmStepFast(lstm, x.data(), h.data(), c.data(), scratch);

  for (std::size_t j = 0; j < 7; ++j) {
    EXPECT_NEAR(h[j], state.h->value().at(j), kTol);
    EXPECT_NEAR(c[j], state.c->value().at(j), kTol);
  }
}

TEST(FastInference, TokenEncodingMatchesGraph) {
  Rng rng(2);
  nn::ParamStore store;
  nn::Embedding emb(10, 4, store, rng);
  nn::Lstm lstm(4, 6, store, rng);
  const std::vector<std::size_t> tokens = {3, 1, 7, 7, 0};

  nn::InferenceModeGuard guard;
  std::vector<nn::Var> seq;
  for (auto t : tokens) seq.push_back(emb.lookup(t));
  const auto expected = lstm.encode(seq);

  std::vector<float> h(6);
  nn::InferenceScratch scratch;
  nn::lstmEncodeTokensFast(lstm, emb, tokens, h.data(), scratch);
  for (std::size_t j = 0; j < 6; ++j)
    EXPECT_NEAR(h[j], expected->value().at(j), kTol);
}

TEST(FastInference, EmptySequenceIsZero) {
  Rng rng(3);
  nn::ParamStore store;
  nn::Embedding emb(5, 3, store, rng);
  nn::Lstm lstm(3, 4, store, rng);
  std::vector<float> h(4, 99.0f);
  nn::InferenceScratch scratch;
  nn::lstmEncodeTokensFast(lstm, emb, {}, h.data(), scratch);
  for (float v : h) EXPECT_EQ(v, 0.0f);
}

TEST(FastInference, LinearMatchesGraph) {
  Rng rng(4);
  nn::ParamStore store;
  nn::Linear lin(6, 3, store, rng);
  const auto x = randomRow(6, rng);

  nn::InferenceModeGuard guard;
  const auto expected = lin.forward(nn::constant(x));

  std::vector<float> out(3);
  nn::linearForwardFast(lin, x.data(), out.data());
  for (std::size_t j = 0; j < 3; ++j)
    EXPECT_NEAR(out[j], expected->value().at(j), kTol);
}

TEST(FastInference, ReluClampsNegatives) {
  float xs[4] = {-1.0f, 0.0f, 2.0f, -3.5f};
  nn::reluFast(xs, 4);
  EXPECT_EQ(xs[0], 0.0f);
  EXPECT_EQ(xs[1], 0.0f);
  EXPECT_EQ(xs[2], 2.0f);
  EXPECT_EQ(xs[3], 0.0f);
}

class FullModelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FullModelEquivalence, ClassifierFastMatchesGraph) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 8;
  cfg.hiddenDim = 12;
  cfg.numClasses = 5;
  cfg.maxExamples = 3;
  cfg.seed = 42 + static_cast<std::uint64_t>(GetParam());
  nf::NnffModel model(cfg);

  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 3;
  nf::DatasetBuilder builder(dc);
  Rng rng(100 + GetParam());
  for (int iter = 0; iter < 5; ++iter) {
    const auto s = builder.makeSample(static_cast<std::size_t>(iter % 5),
                                      nf::BalanceMetric::CF, rng);
    if (!s) continue;  // rare degenerate spec at this seed; not under test
    nn::InferenceModeGuard guard;
    const auto graph = model.forward(s->spec, s->candidate, s->traces);
    const auto fast = model.forwardFast(s->spec, s->candidate, s->traces);
    ASSERT_EQ(fast.size(), graph->value().cols());
    for (std::size_t j = 0; j < fast.size(); ++j)
      EXPECT_NEAR(fast[j], graph->value().at(j), kTol) << "logit " << j;
  }
}

TEST_P(FullModelEquivalence, MultilabelFastMatchesGraph) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 8;
  cfg.hiddenDim = 12;
  cfg.maxExamples = 3;
  cfg.head = nf::HeadKind::Multilabel;
  cfg.useTrace = false;
  cfg.seed = 7 + static_cast<std::uint64_t>(GetParam());
  nf::NnffModel model(cfg);

  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 3;
  nf::DatasetBuilder builder(dc);
  Rng rng(200 + GetParam());
  const auto s = builder.makeSample(2, nf::BalanceMetric::CF, rng);
  ASSERT_TRUE(s.has_value());
  nn::InferenceModeGuard guard;
  const auto graph = model.forwardIOOnly(s->spec);
  const auto fast = model.forwardIOOnlyFast(s->spec);
  for (std::size_t j = 0; j < fast.size(); ++j)
    EXPECT_NEAR(fast[j], graph->value().at(j), kTol);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullModelEquivalence, ::testing::Range(0, 4));

TEST(FastInference, IoFeaturesDetectProperties) {
  using L = std::vector<std::int32_t>;
  // sorted output, subset of input
  const auto f1 = nf::ioSummaryFeatures({netsyn::dsl::Value(L{3, 1, 2})},
                                        netsyn::dsl::Value(L{1, 2, 3}));
  EXPECT_EQ(f1[0], 1.0f);  // list output
  EXPECT_EQ(f1[2], 1.0f);  // sorted
  EXPECT_EQ(f1[4], 1.0f);  // sub-multiset
  EXPECT_EQ(f1[9], 1.0f);  // equals sort(input)
  // singleton output equal to the sum
  const auto f2 = nf::ioSummaryFeatures({netsyn::dsl::Value(L{1, 2, 3})},
                                        netsyn::dsl::Value(6));
  EXPECT_EQ(f2[0], 0.0f);
  EXPECT_EQ(f2[18], 1.0f);  // sum prototype
  // reversed
  const auto f3 = nf::ioSummaryFeatures({netsyn::dsl::Value(L{1, 2, 3})},
                                        netsyn::dsl::Value(L{3, 2, 1}));
  EXPECT_EQ(f3[10], 1.0f);
  // divisibility by 2
  const auto f4 = nf::ioSummaryFeatures({netsyn::dsl::Value(L{1, 2})},
                                        netsyn::dsl::Value(L{2, 4}));
  EXPECT_EQ(f4[11], 1.0f);
  EXPECT_EQ(f4[12], 0.0f);
}
