// Differential / fuzz harness for the DSL execution engine.
//
// A seeded fuzzer cross-checks the production pipeline — cached ExecPlans,
// in-place function bodies, statement-major executePlanMulti, pooled
// ExecResult storage — against the frozen seed interpreter embedded in
// bench/legacy_baseline.hpp (value-returning bodies, fresh allocations,
// per-call plan recomputation). Any divergence in any trace slot on any
// random program is a bug in one of the two; the legacy side is a
// do-not-touch snapshot, so in practice it pins the engine.
//
// The suite also locks down the engine's aliasing contract. Audit result
// (dsl/interpreter.cpp, dsl/functions.cpp, PR 3):
//   - applyFunctionInto's `out` must never alias an argument. The
//     interpreter upholds this structurally: a statement's destination is
//     trace[k] and its arguments resolve only to trace[j] with j < k,
//     program inputs, or the shared defaults. The fuzzed invariant test
//     below pins that property over random plans, and the engine/legacy
//     differential would catch any violation behaviorally (an aliased
//     in-place body reads its input mid-overwrite).
//   - Argument-argument aliasing (args[0] == args[1], the dup-reuse rule
//     for two-list statements with a single producer) IS allowed and must
//     stay correct: bodies only read arguments. Pinned per ZIPWITH below.
//   - Value retained-buffer reuse (setInt/makeList/copy-assign) must never
//     leak stale elements between candidates; the pooled-slot stress test
//     reruns shrinking/growing programs through one ExecResult.
// No live aliasing bug was found; these tests exist so none can creep in.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "../bench/legacy_baseline.hpp"
#include "dsl/dce.hpp"
#include "dsl/domain.hpp"
#include "dsl/functions.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "dsl/lanes.hpp"
#include "dsl/program.hpp"
#include "fitness/model.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

using List = std::vector<std::int32_t>;

/// The seed interpreter, verbatim from PR 1: argument plan recomputed per
/// call, whole-Value argument copies, a fresh Value per statement.
nd::ExecResult legacyRun(const nd::Program& program,
                         const std::vector<nd::Value>& inputs) {
  const nd::ArgPlan plan =
      nd::computeArgPlan(program, nd::signatureOf(inputs));
  nd::ExecResult result;
  result.trace.reserve(program.length());
  std::array<nd::Value, nd::kMaxArity> argbuf;
  for (std::size_t k = 0; k < program.length(); ++k) {
    const nd::StatementPlan& sp = plan[k];
    const nd::FunctionInfo& info = nd::functionInfo(program.at(k));
    for (std::size_t slot = 0; slot < sp.arity; ++slot) {
      const nd::ArgSource& src = sp.args[slot];
      switch (src.kind) {
        case nd::ArgSource::Kind::Statement:
          argbuf[slot] = result.trace[src.index];
          break;
        case nd::ArgSource::Kind::Input:
          argbuf[slot] = inputs[src.index];
          break;
        case nd::ArgSource::Kind::Default:
          argbuf[slot] = nd::Value::defaultFor(info.argTypes[slot]);
          break;
      }
    }
    result.trace.push_back(netsyn::bench::legacy::applyFunction(
        program.at(k), std::span<const nd::Value>(argbuf.data(), sp.arity)));
  }
  return result;
}

/// Uniformly random function sequence — deliberately NOT the generator's
/// fully-live programs: dead code, duplicate producers, and default-arg
/// statements are exactly the corners the differential should cover.
nd::Program randomRawProgram(std::size_t length, Rng& rng) {
  nd::Program p;
  for (std::size_t i = 0; i < length; ++i)
    p.append(static_cast<nd::FuncId>(rng.uniform(nd::kNumFunctions)));
  return p;
}

void expectSameTrace(const nd::ExecResult& engine, const nd::ExecResult& legacy,
                     const nd::Program& program, std::uint64_t caseId) {
  ASSERT_EQ(engine.trace.size(), legacy.trace.size())
      << "case " << caseId << ": " << program.toString();
  for (std::size_t k = 0; k < engine.trace.size(); ++k) {
    ASSERT_EQ(engine.trace[k], legacy.trace[k])
        << "case " << caseId << " trace slot " << k << ": "
        << program.toString();
  }
}

}  // namespace

// --------------------------------------------- engine vs legacy fuzz ------

// >= 10k random programs in CI-fast mode (the acceptance floor): one shared
// Executor so cached plans, direct-mapped slot evictions, and pooled
// ExecResult buffers are all exercised across wildly different programs.
TEST(FuzzDifferential, TenThousandRandomProgramsMatchTheLegacyInterpreter) {
  constexpr std::size_t kPrograms = 12000;
  constexpr std::size_t kExamples = 3;

  Rng rng(0xF0221);
  const nd::Generator gen;
  nd::Executor executor;
  // Persistent result slots: every program refills the same trace storage,
  // the retained-buffer path the GA's evaluator runs in steady state.
  std::vector<nd::ExecResult> engineRuns(kExamples);

  for (std::size_t n = 0; n < kPrograms; ++n) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const std::size_t length = 1 + rng.uniform(8);
    // 1-in-4 programs come from the fully-live generator (the GA's actual
    // distribution); the rest are raw uniform sequences.
    nd::Program program;
    if (rng.uniform(4) == 0) {
      auto live = gen.randomProgram(length, sig, rng);
      ASSERT_TRUE(live.has_value());
      program = std::move(*live);
    } else {
      program = randomRawProgram(length, rng);
    }

    std::vector<std::vector<nd::Value>> inputs;
    std::vector<const std::vector<nd::Value>*> inputSets;
    inputs.reserve(kExamples);
    inputSets.reserve(kExamples);
    for (std::size_t j = 0; j < kExamples; ++j) {
      inputs.push_back(gen.randomInputs(sig, rng));
      inputSets.push_back(&inputs[j]);
    }

    const nd::ExecPlan& plan = executor.planFor(program, sig);
    nd::executePlanMulti(plan, inputSets.data(), kExamples,
                         engineRuns.data());
    for (std::size_t j = 0; j < kExamples; ++j) {
      const nd::ExecResult legacy = legacyRun(program, inputs[j]);
      expectSameTrace(engineRuns[j], legacy, program, n);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// DCE is semantics-preserving: a program and its dead-code-eliminated form
// must produce identical outputs on every input (trace lengths differ, the
// output cannot). Raw random programs carry plenty of dead code.
TEST(FuzzDifferential, DceNeverChangesProgramOutputs) {
  constexpr std::size_t kPrograms = 4000;
  Rng rng(0xDCE5EED);
  const nd::Generator gen;
  nd::Executor executor;

  std::size_t programsWithDeadCode = 0;
  for (std::size_t n = 0; n < kPrograms; ++n) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const nd::Program program = randomRawProgram(1 + rng.uniform(8), rng);
    const nd::Program stripped = nd::eliminateDeadCode(program, sig);
    if (stripped.length() < program.length()) ++programsWithDeadCode;

    for (std::size_t j = 0; j < 2; ++j) {
      const std::vector<nd::Value> in = gen.randomInputs(sig, rng);
      const nd::Value& full = executor.evalInto(program, in);
      const nd::Value fullCopy = full;  // evalInto's slot is reused below
      const nd::Value& reduced = executor.evalInto(stripped, in);
      ASSERT_EQ(fullCopy, reduced)
          << "case " << n << ": " << program.toString() << "  ->  "
          << stripped.toString();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The fuzz distribution must actually exercise the transform.
  EXPECT_GT(programsWithDeadCode, kPrograms / 4);
}

// ------------------------------------ SIMD lanes vs the scalar oracle -----

namespace {

/// Fuzzes the SoA lane executor against scalar executePlanMulti — the
/// designated oracle for the SIMD path (the scalar path itself is pinned
/// against the frozen legacy interpreter above, so equality is transitive
/// back to the seed). Trace equality is checked slot by slot on every
/// example. Example counts sweep the lane-group tails: 1, one full SIMD
/// vector +/- 1, SoATrace::kMaxLanes - 1 / exact / + 1, and two groups
/// plus a ragged tail.
void fuzzLanesVsScalar(const nd::Domain& domain, std::uint64_t seed) {
  constexpr std::size_t kPrograms = 6000;
  const std::size_t laneTails[] = {1,
                                   7,
                                   8,
                                   9,
                                   nd::SoATrace::kMaxLanes - 1,
                                   nd::SoATrace::kMaxLanes,
                                   nd::SoATrace::kMaxLanes + 1,
                                   2 * nd::SoATrace::kMaxLanes + 3};
  constexpr std::size_t kMaxExamples = 2 * nd::SoATrace::kMaxLanes + 3;

  Rng rng(seed);
  const nd::Generator gen(domain);
  nd::Executor executor;
  nd::SoATrace trace;
  // Persistent slots for both paths: the retained-buffer reuse of each is
  // part of what the differential covers.
  std::vector<nd::ExecResult> scalarRuns(kMaxExamples);
  std::vector<nd::ExecResult> laneRuns(kMaxExamples);
  std::vector<nd::Value> laneOuts(kMaxExamples);

  for (std::size_t n = 0; n < kPrograms; ++n) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const std::size_t length = 1 + rng.uniform(8);
    // 1-in-4 fully-live generator programs; the rest uniform over the
    // domain's vocabulary (dead code, duplicate producers, default args).
    nd::Program program;
    if (rng.uniform(4) == 0) {
      auto live = gen.randomProgram(length, sig, rng);
      ASSERT_TRUE(live.has_value());
      program = std::move(*live);
    } else {
      for (std::size_t i = 0; i < length; ++i)
        program.append(
            domain.vocabulary[rng.uniform(domain.vocabulary.size())]);
    }
    const std::size_t examples = laneTails[n % std::size(laneTails)];

    std::vector<std::vector<nd::Value>> inputs;
    std::vector<const std::vector<nd::Value>*> inputSets;
    inputs.reserve(examples);
    inputSets.reserve(examples);
    for (std::size_t j = 0; j < examples; ++j) {
      inputs.push_back(gen.randomInputs(sig, rng));
      inputSets.push_back(&inputs[j]);
    }

    const nd::ExecPlan& plan = executor.planFor(program, sig);
    nd::executePlanMulti(plan, inputSets.data(), examples, scalarRuns.data());
    nd::executePlanMultiLanes(plan, inputSets.data(), examples,
                              laneRuns.data(), trace);
    nd::executePlanMultiLanesOutputs(plan, inputSets.data(), examples,
                                     laneOuts.data(), trace);
    for (std::size_t j = 0; j < examples; ++j) {
      ASSERT_EQ(laneRuns[j].trace.size(), scalarRuns[j].trace.size())
          << "case " << n << " example " << j << ": " << program.toString();
      for (std::size_t k = 0; k < laneRuns[j].trace.size(); ++k) {
        ASSERT_EQ(laneRuns[j].trace[k], scalarRuns[j].trace[k])
            << "case " << n << " example " << j << " (" << examples
            << " lanes) trace slot " << k << ": " << program.toString();
      }
      ASSERT_EQ(laneOuts[j], scalarRuns[j].output())
          << "case " << n << " example " << j << " (" << examples
          << " lanes) output-only path: " << program.toString();
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace

// 12k random programs total across the two registered domains, per the
// acceptance bar for the lane executor (backend under test is whatever this
// binary was compiled with — CI runs both the AVX2 and scalar builds).
TEST(FuzzDifferential, LaneExecutorMatchesScalarOracleOnListDomain) {
  fuzzLanesVsScalar(nd::listDomain(), 0x51D0A);
}

TEST(FuzzDifferential, LaneExecutorMatchesScalarOracleOnStrDomain) {
  fuzzLanesVsScalar(nd::strDomain(), 0x51D0B);
}

// The Executor-level switch: both settings of setLaneExecution must produce
// identical traces through the same executeMulti entry point (this is the
// contract SpecEvaluator and the NS scorer rely on when the config flag
// flips), and the compiled backend must report a known name.
TEST(FuzzDifferential, ExecutorBackendSwitchIsTraceInvisible) {
  const std::string backend = nd::Executor::backendName();
  EXPECT_TRUE(backend == "avx2" || backend == "scalar") << backend;

  Rng rng(0xBAC63D);
  const nd::Generator gen;
  nd::Executor executor;
  constexpr std::size_t kExamples = 10;
  std::vector<nd::ExecResult> laneRuns(kExamples), scalarRuns(kExamples);
  for (std::size_t n = 0; n < 500; ++n) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const nd::Program program = randomRawProgram(1 + rng.uniform(8), rng);
    std::vector<std::vector<nd::Value>> inputs;
    std::vector<const std::vector<nd::Value>*> inputSets;
    inputs.reserve(kExamples);
    for (std::size_t j = 0; j < kExamples; ++j) {
      inputs.push_back(gen.randomInputs(sig, rng));
      inputSets.push_back(&inputs[j]);
    }
    const nd::ExecPlan& plan = executor.planFor(program, sig);
    executor.setLaneExecution(true);
    ASSERT_TRUE(executor.laneExecution());
    executor.executeMulti(plan, inputSets.data(), kExamples, laneRuns.data());
    executor.setLaneExecution(false);
    executor.executeMulti(plan, inputSets.data(), kExamples,
                          scalarRuns.data());
    for (std::size_t j = 0; j < kExamples; ++j)
      for (std::size_t k = 0; k < laneRuns[j].trace.size(); ++k)
        ASSERT_EQ(laneRuns[j].trace[k], scalarRuns[j].trace[k])
            << "case " << n << ": " << program.toString();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// The pinned-ingest fast path in production shape: one immutable spec, many
// candidate programs through one Executor with pinExampleInputs (exactly how
// SpecEvaluator drives it). Both executeMulti and executeMultiOutputs must
// match the scalar oracle on every candidate — the ingest is only ever
// transposed once, so any lane-table corruption by a plan would poison all
// later candidates and be caught here. Then the pin lifecycle: re-pinning
// the same array after its contents changed must force a fresh ingest (the
// trace-level pin is keyed by address, so stale-ingest reuse is the failure
// mode this pins down).
TEST(FuzzDifferential, PinnedIngestMatchesScalarOracleAcrossCandidates) {
  Rng rng(0xF1A7ED);
  const nd::Generator gen;
  constexpr std::size_t kExamples = 10;

  for (std::size_t round = 0; round < 40; ++round) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    std::vector<std::vector<nd::Value>> inputs;
    std::vector<const std::vector<nd::Value>*> inputSets;
    inputs.reserve(kExamples);
    inputSets.reserve(kExamples);
    for (std::size_t j = 0; j < kExamples; ++j) {
      inputs.push_back(gen.randomInputs(sig, rng));
      inputSets.push_back(&inputs[j]);
    }
    nd::Executor executor;
    executor.pinExampleInputs(inputSets.data(), kExamples);

    std::vector<nd::ExecResult> laneRuns(kExamples), scalarRuns(kExamples);
    std::vector<nd::Value> laneOuts(kExamples);
    const auto checkCandidates = [&](std::size_t cases) {
      for (std::size_t n = 0; n < cases; ++n) {
        const nd::Program program = randomRawProgram(1 + rng.uniform(8), rng);
        const nd::ExecPlan& plan = executor.planFor(program, sig);
        executor.executeMulti(plan, inputSets.data(), kExamples,
                              laneRuns.data());
        executor.executeMultiOutputs(plan, inputSets.data(), kExamples,
                                     laneOuts.data());
        nd::executePlanMulti(plan, inputSets.data(), kExamples,
                             scalarRuns.data());
        for (std::size_t j = 0; j < kExamples; ++j) {
          for (std::size_t k = 0; k < laneRuns[j].trace.size(); ++k)
            ASSERT_EQ(laneRuns[j].trace[k], scalarRuns[j].trace[k])
                << "round " << round << " case " << n << ": "
                << program.toString();
          ASSERT_EQ(laneOuts[j], scalarRuns[j].output())
              << "round " << round << " case " << n << ": "
              << program.toString();
        }
        if (::testing::Test::HasFatalFailure()) return;
      }
    };
    checkCandidates(25);
    if (::testing::Test::HasFatalFailure()) return;

    // Mutate the example inputs in place (same addresses — the hostile case
    // for an address-keyed pin) and re-pin: results must reflect the new
    // contents, not the stale ingest.
    for (std::size_t j = 0; j < kExamples; ++j)
      inputs[j] = gen.randomInputs(sig, rng);
    executor.pinExampleInputs(inputSets.data(), kExamples);
    checkCandidates(25);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ------------------------------- lane-view NN encoding parity -------------

// The NN fitness stack reads traces two ways: scattered per-example Values
// (predictBatchRuns) and un-scattered SoA lane blocks through a
// LaneTraceView (encodeLaneTrace + predictBatchEncoded). The lane encoder
// recomputes fingerprints and token spans straight off the lane segments,
// so any mismatch with the Value-walking tokenizer — ordering, sign
// extension, empty-list defaults, the final-output edit distance — shows up
// as a score difference here. Scores must be bitwise-equal, not just close:
// both paths feed the same memos and the same batched LSTM rows.
TEST(FuzzDifferential, LaneViewEncodingMatchesScalarNnScoresBitwise) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.embedDim = 16;
  cfg.hiddenDim = 24;
  cfg.maxExamples = 4;
  cfg.head = nf::HeadKind::Classifier;
  cfg.useTrace = true;
  cfg.seed = 7;
  const nf::NnffModel model(cfg);

  Rng rng(0x1A2E51);
  const nd::Generator gen;
  constexpr std::size_t kRounds = 30;
  constexpr std::size_t kGenes = 12;

  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::size_t length = 2 + rng.uniform(4);
    const std::size_t examples = 3 + rng.uniform(4);
    const auto tc = gen.randomTestCase(length, examples, false, rng);
    ASSERT_TRUE(tc.has_value());
    const nd::Spec& spec = tc->spec;
    const nd::InputSignature sig = spec.signature();

    std::vector<const std::vector<nd::Value>*> inputSets;
    for (const auto& ex : spec.examples) inputSets.push_back(&ex.inputs);

    // Mixed population: live generator programs and raw uniform sequences,
    // lengths 1..6 (the encoder keys rows on per-candidate length).
    std::vector<nd::Program> genes;
    for (std::size_t i = 0; i < kGenes; ++i) {
      const std::size_t len = 1 + rng.uniform(6);
      nd::Program program = randomRawProgram(len, rng);
      if (rng.uniform(2) == 0) {
        if (auto live = gen.randomProgram(len, sig, rng))
          program = std::move(*live);
      }
      genes.push_back(std::move(program));
    }
    std::vector<const nd::Program*> genePtrs;
    for (const auto& g : genes) genePtrs.push_back(&g);

    // Scalar oracle: scattered traces through predictBatchRuns.
    nd::Executor scalarExec;
    scalarExec.setLaneExecution(false);
    std::vector<std::vector<nd::ExecResult>> runs(
        kGenes, std::vector<nd::ExecResult>(examples));
    std::vector<const std::vector<nd::ExecResult>*> runPtrs;
    for (std::size_t b = 0; b < kGenes; ++b) {
      const nd::ExecPlan& plan = scalarExec.planFor(genes[b], sig);
      scalarExec.executeMulti(plan, inputSets.data(), examples,
                              runs[b].data());
      runPtrs.push_back(&runs[b]);
    }
    const auto scalar = model.predictBatchRuns(spec, genePtrs, runPtrs);

    // Lane path: the view aliases the executor's scratch SoA trace, so each
    // gene is encoded before the next execution overwrites it — the same
    // consume-before-advance discipline the synthesizer uses.
    nd::Executor lanesExec;
    lanesExec.setLaneExecution(true);
    lanesExec.pinExampleInputs(inputSets.data(), examples);
    model.beginLaneCapture(spec);
    std::vector<nf::EncodedTrace> encoded(kGenes);
    std::vector<const nf::EncodedTrace*> encodedPtrs;
    nd::LaneTraceView view;
    for (std::size_t b = 0; b < kGenes; ++b) {
      const nd::ExecPlan& plan = lanesExec.planFor(genes[b], sig);
      ASSERT_TRUE(
          lanesExec.executeMultiView(plan, inputSets.data(), examples, view));
      model.encodeLaneTrace(spec, genes[b], view, encoded[b]);
      encodedPtrs.push_back(&encoded[b]);
    }
    const auto lane = model.predictBatchEncoded(spec, genePtrs, encodedPtrs);

    ASSERT_EQ(lane.size(), scalar.size());
    for (std::size_t b = 0; b < kGenes; ++b) {
      ASSERT_EQ(lane[b].size(), scalar[b].size());
      for (std::size_t j = 0; j < lane[b].size(); ++j)
        ASSERT_EQ(lane[b][j], scalar[b][j])
            << "round " << round << " gene " << b << " logit " << j << ": "
            << genes[b].toString();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ------------------------------------------------ aliasing lockdown -------

// Structural invariant behind applyFunctionInto's no-alias contract: a
// compiled statement's arguments may only reference strictly earlier trace
// slots (or inputs/defaults) — the destination trace[k] is unreachable.
TEST(FuzzDifferential, CompiledPlansNeverAliasDestinationWithArguments) {
  Rng rng(0xA11A5);
  const nd::Generator gen;
  for (std::size_t n = 0; n < 2000; ++n) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const nd::Program program = randomRawProgram(1 + rng.uniform(10), rng);
    const nd::ExecPlan plan = nd::compilePlan(program, sig);
    ASSERT_EQ(plan.steps.size(), program.length());
    for (std::size_t k = 0; k < plan.steps.size(); ++k) {
      const nd::ExecStep& step = plan.steps[k];
      for (std::size_t slot = 0; slot < step.arity; ++slot) {
        if (step.args[slot].kind == nd::ArgSource::Kind::Statement) {
          ASSERT_LT(step.args[slot].index, k)
              << program.toString() << " statement " << k;
        }
      }
    }
  }
}

// Argument-argument aliasing is legal (the interpreter's dup-reuse rule
// feeds one producer to both slots of a two-list statement) and must match
// the non-aliased evaluation exactly.
TEST(FuzzDifferential, TwoListBodiesAcceptTheSameValueInBothSlots) {
  const nd::Value list(List{3, -1, 4, 1, -5, 9});
  const nd::Value listCopy = list;
  for (std::size_t id = 0; id < nd::kNumFunctions; ++id) {
    const nd::FunctionInfo& info = nd::functionInfo(static_cast<nd::FuncId>(id));
    if (info.arity != 2 || info.argTypes[0] != nd::Type::List) continue;
    const nd::Value* aliased[2] = {&list, &list};
    nd::Value out;
    nd::applyFunctionInto(static_cast<nd::FuncId>(id),
                          std::span<const nd::Value* const>(aliased, 2), out);
    const std::array<nd::Value, 2> plain{list, listCopy};
    const nd::Value expected = nd::applyFunction(
        static_cast<nd::FuncId>(id),
        std::span<const nd::Value>(plain.data(), 2));
    EXPECT_EQ(out, expected) << info.name;
  }
}

// Retained-buffer reuse across shrinking and growing results: one pooled
// ExecResult serves programs whose trace values alternate between long
// lists, short lists, and ints. Stale elements from a previous (longer)
// occupant leaking into a refilled slot would diverge from the fresh run.
TEST(FuzzDifferential, PooledResultSlotsNeverLeakStaleElements) {
  const auto idOf = [](const char* name) {
    const auto id = nd::functionByName(name);
    EXPECT_TRUE(id.has_value()) << name;
    return *id;
  };
  // SORT (long list) -> TAKE (short prefix; int consumed from input) ->
  // SUM (int) -> INSERT (list again, rebuilt from the int producer).
  const nd::Program longThenShort(std::vector<nd::FuncId>{
      idOf("SORT"), idOf("TAKE"), idOf("SUM"), idOf("INSERT")});
  const nd::Program allLong(std::vector<nd::FuncId>{
      idOf("REVERSE"), idOf("MAP(*2)"), idOf("SCANL1(+)"), idOf("ZIPWITH(max)")});

  nd::Executor executor;
  nd::ExecResult pooled;  // shared across every execution below
  Rng rng(0xB0FFE);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List, nd::Type::Int};
  for (std::size_t n = 0; n < 500; ++n) {
    const std::vector<nd::Value> in = gen.randomInputs(sig, rng);
    for (const nd::Program* p : {&allLong, &longThenShort}) {
      nd::executePlan(executor.planFor(*p, sig), in, pooled);
      const nd::ExecResult fresh = nd::run(*p, in);
      ASSERT_EQ(pooled.trace.size(), fresh.trace.size());
      for (std::size_t k = 0; k < fresh.trace.size(); ++k)
        ASSERT_EQ(pooled.trace[k], fresh.trace[k])
            << p->toString() << " slot " << k;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// Value's self-assignment guard (assign() from its own range would be UB).
TEST(FuzzDifferential, ValueSelfAssignmentIsANoOp) {
  nd::Value v(List{1, 2, 3, 4});
  const nd::Value snapshot = v;
  nd::Value& alias = v;
  v = alias;
  EXPECT_EQ(v, snapshot);
  v.setInt(7);
  nd::Value& alias2 = v;
  v = alias2;
  EXPECT_EQ(v, nd::Value(7));
}
