// GA machinery tests: budget, evaluator, crossover/mutation invariants,
// selection, breeding (elitism + validity by construction), and
// neighborhood search.
#include <gtest/gtest.h>

#include <set>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/neighborhood.hpp"
#include "dsl/generator.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

nd::Program prog(const std::string& text) {
  auto p = nd::Program::fromString(text);
  EXPECT_TRUE(p.has_value()) << text;
  return *p;
}

}  // namespace

// ------------------------------------------------------------ budget ------

TEST(SearchBudget, ConsumesUpToLimit) {
  nc::SearchBudget b(3);
  EXPECT_TRUE(b.tryConsume());
  EXPECT_TRUE(b.tryConsume());
  EXPECT_TRUE(b.tryConsume());
  EXPECT_FALSE(b.tryConsume());
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.used(), 3u);
  EXPECT_EQ(b.remaining(), 0u);
  EXPECT_DOUBLE_EQ(b.usedFraction(), 1.0);
}

TEST(SearchBudget, ZeroLimitIsImmediatelyExhausted) {
  nc::SearchBudget b(0);
  EXPECT_TRUE(b.exhausted());
  EXPECT_FALSE(b.tryConsume());
}

// --------------------------------------------------------- evaluator ------

TEST(SpecEvaluator, DetectsEquivalence) {
  Rng rng(1);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SearchBudget budget(10);
  nc::SpecEvaluator ev(tc->spec, budget);
  const auto result = ev.evaluate(tc->program);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->satisfied);
  EXPECT_EQ(result->runs.size(), tc->spec.size());
  EXPECT_EQ(budget.used(), 1u);
}

TEST(SpecEvaluator, DedupChargesDistinctCandidatesOnce) {
  Rng rng(2);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SearchBudget budget(2);
  nc::SpecEvaluator ev(tc->spec, budget);
  EXPECT_TRUE(ev.check(tc->program).has_value());
  // Re-examining the same candidate is free under the distinct-candidates
  // metric; the budget holds at 1.
  EXPECT_TRUE(ev.evaluate(tc->program).has_value());
  EXPECT_TRUE(ev.check(tc->program).has_value());
  EXPECT_EQ(budget.used(), 1u);
}

TEST(SpecEvaluator, DedupDisabledChargesEveryExamination) {
  Rng rng(2);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SearchBudget budget(2);
  nc::SpecEvaluator ev(tc->spec, budget, /*dedup=*/false);
  EXPECT_TRUE(ev.check(tc->program).has_value());
  EXPECT_TRUE(ev.evaluate(tc->program).has_value());
  EXPECT_FALSE(ev.check(tc->program).has_value());  // budget exhausted
  EXPECT_EQ(budget.used(), 2u);
}

TEST(SpecEvaluator, DedupHitOnNonSolutionStaysNegative) {
  Rng rng(5);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SearchBudget budget(10);
  nc::SpecEvaluator ev(tc->spec, budget);
  const auto wrong = prog("SUM");
  EXPECT_FALSE(*ev.check(wrong));
  EXPECT_FALSE(*ev.check(wrong));  // cached verdict, no extra charge
  EXPECT_EQ(budget.used(), 1u);
}

TEST(SpecEvaluator, CheckRejectsNonEquivalent) {
  Rng rng(3);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SearchBudget budget(100);
  nc::SpecEvaluator ev(tc->spec, budget);
  // A singleton-output program cannot satisfy a list-output spec.
  const auto wrong = prog("SUM");
  const auto ok = ev.check(wrong);
  ASSERT_TRUE(ok.has_value());
  EXPECT_FALSE(*ok);
}

// ---------------------------------------------------------- operators -----

TEST(Crossover, ChildMixesPrefixAndSuffix) {
  Rng rng(4);
  const auto a = prog("SORT | SORT | SORT | SORT");
  const auto b = prog("REVERSE | REVERSE | REVERSE | REVERSE");
  for (int i = 0; i < 50; ++i) {
    const auto child = nc::crossover(a, b, rng);
    ASSERT_EQ(child.length(), 4u);
    // Prefix from a, suffix from b, cut in [1, 3].
    std::size_t cut = 0;
    while (cut < 4 && child.at(cut) == a.at(0)) ++cut;
    EXPECT_GE(cut, 1u);
    EXPECT_LE(cut, 3u);
    for (std::size_t j = cut; j < 4; ++j) EXPECT_EQ(child.at(j), b.at(j));
  }
}

TEST(Crossover, RequiresCompatibleParents) {
  Rng rng(5);
  EXPECT_THROW(nc::crossover(prog("SORT"), prog("SORT"), rng),
               std::invalid_argument);
  EXPECT_THROW(nc::crossover(prog("SORT | SORT"), prog("SORT"), rng),
               std::invalid_argument);
}

TEST(Mutate, ChangesExactlyOnePosition) {
  Rng rng(6);
  const auto gene = prog("SORT | REVERSE | MAP(+1) | HEAD");
  for (int i = 0; i < 50; ++i) {
    const auto mutated = nc::mutate(gene, rng);
    ASSERT_EQ(mutated.length(), gene.length());
    std::size_t diffs = 0;
    for (std::size_t j = 0; j < gene.length(); ++j)
      diffs += (mutated.at(j) != gene.at(j)) ? 1 : 0;
    EXPECT_EQ(diffs, 1u);
  }
}

TEST(Mutate, WeightedMutationFollowsProbabilityMap) {
  Rng rng(7);
  const auto gene = prog("SORT");
  nc::FunctionWeights weights(nd::kNumFunctions, 0.0);
  const auto target = *nd::functionByName("REVERSE");
  weights[target] = 1.0;  // all other functions weight 0
  for (int i = 0; i < 30; ++i) {
    const auto mutated = nc::mutate(gene, rng, &weights);
    EXPECT_EQ(mutated.at(0), target);
  }
}

TEST(Mutate, NeverProducesTheOriginalFunction) {
  Rng rng(8);
  const auto gene = prog("SORT");
  nc::FunctionWeights weights(nd::kNumFunctions, 0.0);
  weights[*nd::functionByName("SORT")] = 1.0;  // only the original is weighted
  for (int i = 0; i < 30; ++i) {
    const auto mutated = nc::mutate(gene, rng, &weights);
    EXPECT_NE(mutated.at(0), gene.at(0));  // falls back to uniform-other
  }
}

TEST(Selection, RoulettePrefersFitter) {
  Rng rng(9);
  nc::Population pop;
  pop.push_back({prog("SORT"), 0.1});
  pop.push_back({prog("REVERSE"), 10.0});
  int second = 0;
  for (int i = 0; i < 500; ++i)
    second += (nc::rouletteSelect(pop, rng) == 1) ? 1 : 0;
  EXPECT_GT(second, 450);
}

TEST(Selection, TopIndicesOrderedByFitness) {
  nc::Population pop;
  pop.push_back({prog("SORT"), 1.0});
  pop.push_back({prog("REVERSE"), 5.0});
  pop.push_back({prog("HEAD"), 3.0});
  const auto top = nc::topIndices(pop, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 2u);
  EXPECT_EQ(nc::topIndices(pop, 10).size(), 3u);
}

class BreedProperties : public ::testing::TestWithParam<int> {};

TEST_P(BreedProperties, OffspringAreFullyLiveAtPoolSize) {
  Rng rng(100 + GetParam());
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  nc::GaConfig config;
  config.populationSize = 30;
  config.eliteCount = 3;

  nc::Population pop;
  for (std::size_t i = 0; i < config.populationSize; ++i) {
    auto p = gen.randomProgram(5, sig, rng);
    ASSERT_TRUE(p.has_value());
    pop.push_back({*p, rng.uniformReal()});
  }
  const auto next = nc::breed(pop, config, sig, gen, rng, nullptr);
  EXPECT_EQ(next.size(), config.populationSize);
  for (const auto& child : next) {
    EXPECT_EQ(child.length(), 5u);
    EXPECT_TRUE(nd::isFullyLive(child, sig)) << child.toString();
  }
  // Elites are preserved verbatim.
  const auto top = nc::topIndices(pop, config.eliteCount);
  for (std::size_t k = 0; k < top.size(); ++k)
    EXPECT_EQ(next[k], pop[top[k]].program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BreedProperties, ::testing::Range(0, 5));

// --------------------------------------------------- neighborhood ---------

TEST(NeighborhoodBfs, FindsSolutionOneSubstitutionAway) {
  Rng rng(11);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  // Corrupt one position; BFS-NS must recover the target (or an equivalent).
  auto corrupted = tc->program;
  corrupted.set(2, static_cast<nd::FuncId>((corrupted.at(2) + 1) %
                                           nd::kNumFunctions));
  nc::SearchBudget budget(100000);
  nc::SpecEvaluator ev(tc->spec, budget);
  const auto result = nc::neighborhoodSearchBfs({corrupted}, ev);
  ASSERT_TRUE(result.solution.has_value());
  EXPECT_TRUE(nd::satisfiesSpec(*result.solution, tc->spec));
  EXPECT_FALSE(result.budgetExhausted);
  EXPECT_GT(result.candidatesChecked, 0u);
}

TEST(NeighborhoodBfs, ChecksAtMostLenTimesSigmaMinusOne) {
  Rng rng(12);
  const nd::Generator gen;
  // Unsatisfiable spec: expect output no program produces (len-1 list vs
  // incompatible). Build a gene far from any solution.
  nd::Spec spec;
  spec.examples.push_back(
      {{nd::Value(std::vector<std::int32_t>{1, 2, 3})},
       nd::Value(std::vector<std::int32_t>{99, 98, 97, 96, 95, 94, 93})});
  const auto gene = prog("SORT | REVERSE | MAP(+1)");
  nc::SearchBudget budget(100000);
  nc::SpecEvaluator ev(spec, budget);
  const auto result = nc::neighborhoodSearchBfs({gene}, ev);
  EXPECT_FALSE(result.solution.has_value());
  // Exactly len * (|Sigma|-1) candidates (Algorithm 1's complexity bound).
  EXPECT_EQ(result.candidatesChecked, 3u * (nd::kNumFunctions - 1));
}

TEST(NeighborhoodBfs, StopsWhenBudgetExhausted) {
  Rng rng(13);
  nd::Spec spec;
  spec.examples.push_back(
      {{nd::Value(std::vector<std::int32_t>{1, 2})},
       nd::Value(std::vector<std::int32_t>{42, 41, 40})});
  const auto gene = prog("SORT | REVERSE");
  nc::SearchBudget budget(10);
  nc::SpecEvaluator ev(spec, budget);
  const auto result = nc::neighborhoodSearchBfs({gene}, ev);
  EXPECT_FALSE(result.solution.has_value());
  EXPECT_TRUE(result.budgetExhausted);
  EXPECT_EQ(budget.used(), 10u);
}

TEST(NeighborhoodDfs, FindsSolutionAndUsesScorerForDescent) {
  Rng rng(14);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  auto corrupted = tc->program;
  corrupted.set(1, static_cast<nd::FuncId>((corrupted.at(1) + 3) %
                                           nd::kNumFunctions));
  nc::SearchBudget budget(100000);
  nc::SpecEvaluator ev(tc->spec, budget);
  // Oracle-CF scorer steers the greedy descent.
  nf::OracleCF oracle(tc->program);
  nd::Spec emptySpec;
  std::vector<nd::ExecResult> noRuns;
  const auto scorer = [&](const nd::Program& p) {
    return oracle.score(p, {emptySpec, noRuns});
  };
  const auto result = nc::neighborhoodSearchDfs({corrupted}, ev, scorer);
  ASSERT_TRUE(result.solution.has_value());
  EXPECT_TRUE(nd::satisfiesSpec(*result.solution, tc->spec));
}
