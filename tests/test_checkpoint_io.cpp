// Durable-checkpoint codec tests: the on-disk snapshot format must be
// byte-stable, resume onto the exact trajectory of the in-memory snapshot
// it froze, and reject every corruption — truncations, bit flips anywhere
// in the frame, and the chaos registry's injected byte flips — loudly via
// the checksum layer rather than resuming a wrong search.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstddef>
#include <optional>
#include <string>

#include "core/search_state.hpp"
#include "fitness/edit.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/checkpoint.hpp"
#include "util/faultinject.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace nc = netsyn::core;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
namespace ns = netsyn::service;
namespace nu = netsyn::util;

namespace {

nh::ExperimentConfig tinyConfig(std::uint64_t seed = 3,
                                std::size_t budget = 2000) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {3};
  cfg.programsPerLength = 2;
  cfg.examplesPerProgram = 3;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = budget;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.ga.eliteCount = 2;
  cfg.synthesizer.maxGenerations = 150;
  cfg.seed = seed;
  return cfg;
}

/// A real mid-search state frozen after a few generations, plus the result
/// the same search reaches when left alone.
struct Frozen {
  nc::SearchState::Snapshot snap;
  nu::Rng rng{0};
  nc::SynthesisResult expected;
  nc::SynthesizerConfig sc;
  nh::TestProgram tp;
};

Frozen freeze(std::size_t steps = 3) {
  const auto cfg = tinyConfig();
  const auto workload = nh::makeFullWorkload(cfg);
  Frozen f;
  f.tp = workload[1];
  f.sc = nh::methodSearchConfig(cfg, "Edit");
  const auto fit = std::make_shared<nf::EditDistanceFitness>();

  // Uninterrupted reference run.
  nu::Rng rngA = nh::runSeedRng(cfg, 1, 0);
  nc::SearchBudget budgetA(cfg.searchBudget);
  nc::SearchState stateA(f.sc, fit, nullptr, f.tp.spec, f.tp.length, budgetA,
                         rngA);
  auto statusA = stateA.seed();
  while (statusA == nc::SearchState::Status::Running) statusA = stateA.step();
  f.expected = stateA.finish();

  // Same search frozen mid-flight.
  nu::Rng rngB = nh::runSeedRng(cfg, 1, 0);
  nc::SearchBudget budgetB(cfg.searchBudget);
  nc::SearchState stateB(f.sc, fit, nullptr, f.tp.spec, f.tp.length, budgetB,
                         rngB);
  auto statusB = stateB.seed();
  std::size_t taken = 0;
  while (statusB == nc::SearchState::Status::Running && taken < steps) {
    statusB = stateB.step();
    ++taken;
  }
  EXPECT_EQ(statusB, nc::SearchState::Status::Running)
      << "config too easy: search finished before the snapshot point";
  f.snap = stateB.snapshot();
  f.rng = rngB;
  return f;
}

std::string tmpPath(const std::string& name) {
  return "checkpoint_io_" + name + "." + std::to_string(::getpid());
}

}  // namespace

// ------------------------------------------------- codec ------------------

TEST(CheckpointCodec, RoundTripRestoresEveryFieldAndIsByteStable) {
  const Frozen f = freeze();
  const std::string bytes = ns::encodeTaskCheckpoint(f.snap, f.rng);

  nc::SearchState::Snapshot back;
  nu::Rng backRng{0};
  std::string error;
  ASSERT_TRUE(ns::decodeTaskCheckpoint(bytes, back, backRng, error)) << error;

  EXPECT_EQ(back.targetLength, f.snap.targetLength);
  ASSERT_EQ(back.pop.size(), f.snap.pop.size());
  for (std::size_t i = 0; i < back.pop.size(); ++i) {
    EXPECT_EQ(back.pop[i].program.functions(),
              f.snap.pop[i].program.functions());
    EXPECT_DOUBLE_EQ(back.pop[i].fitness, f.snap.pop[i].fitness);
  }
  EXPECT_EQ(back.result.candidatesSearched, f.snap.result.candidatesSearched);
  EXPECT_EQ(back.result.generations, f.snap.result.generations);
  EXPECT_EQ(back.result.history.size(), f.snap.result.history.size());
  EXPECT_EQ(back.cache, f.snap.cache);
  EXPECT_EQ(back.seen, f.snap.seen);
  EXPECT_EQ(back.window.count(), f.snap.window.count());
  EXPECT_DOUBLE_EQ(back.window.windowMean(), f.snap.window.windowMean());
  EXPECT_DOUBLE_EQ(back.window.priorMean(), f.snap.window.priorMean());
  EXPECT_EQ(back.budgetLimit, f.snap.budgetLimit);
  EXPECT_EQ(back.budgetUsed, f.snap.budgetUsed);
  EXPECT_EQ(backRng.state(), f.rng.state());

  // Byte stability: unordered containers are serialized in sorted order, so
  // re-encoding the decoded snapshot reproduces the identical frame.
  EXPECT_EQ(ns::encodeTaskCheckpoint(back, backRng), bytes);
}

TEST(CheckpointCodec, DecodedSnapshotResumesPinnedEqualToInMemoryResume) {
  const Frozen f = freeze();
  const std::string bytes = ns::encodeTaskCheckpoint(f.snap, f.rng);

  nc::SearchState::Snapshot back;
  nu::Rng backRng{0};
  std::string error;
  ASSERT_TRUE(ns::decodeTaskCheckpoint(bytes, back, backRng, error)) << error;
  // config is deliberately not serialized; the caller rederives it.
  back.config = f.sc;

  const auto fit = std::make_shared<nf::EditDistanceFitness>();
  nc::SearchBudget budget =
      nc::SearchBudget::resumed(back.budgetLimit, back.budgetUsed);
  nc::SearchState state(back, fit, nullptr, f.tp.spec, budget, backRng);
  auto status = nc::SearchState::Status::Running;
  while (status == nc::SearchState::Status::Running) status = state.step();
  const nc::SynthesisResult resumed = state.finish();

  EXPECT_EQ(resumed.found, f.expected.found);
  EXPECT_EQ(resumed.candidatesSearched, f.expected.candidatesSearched);
  EXPECT_EQ(resumed.generations, f.expected.generations);
  EXPECT_EQ(resumed.nsInvocations, f.expected.nsInvocations);
  EXPECT_DOUBLE_EQ(resumed.bestFitness, f.expected.bestFitness);
  if (f.expected.found) {
    EXPECT_EQ(resumed.solution.functions(), f.expected.solution.functions());
  }
}

TEST(CheckpointCodec, EncodeRefusesIslandSnapshots) {
  Frozen f = freeze();
  f.snap.result.islandStats.emplace_back();
  EXPECT_THROW(ns::encodeTaskCheckpoint(f.snap, f.rng), std::logic_error);
}

// ------------------------------------------------- corruption -------------

TEST(CheckpointCodec, EveryTruncationIsRejected) {
  const Frozen f = freeze();
  const std::string bytes = ns::encodeTaskCheckpoint(f.snap, f.rng);
  // Cuts through the header, through the payload, and just one byte short.
  const std::size_t cuts[] = {0,  4,  8,  12, 20, 27, 28,
                              bytes.size() / 2, bytes.size() - 1};
  for (std::size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    nc::SearchState::Snapshot sink;
    nu::Rng sinkRng{0};
    std::string error;
    EXPECT_FALSE(ns::decodeTaskCheckpoint(bytes.substr(0, cut), sink, sinkRng,
                                          error))
        << "truncation to " << cut << " bytes was accepted";
    EXPECT_FALSE(error.empty());
  }
}

TEST(CheckpointCodec, EveryBitFlipIsRejected) {
  const Frozen f = freeze();
  const std::string bytes = ns::encodeTaskCheckpoint(f.snap, f.rng);
  // A flip in the magic/version/length/checksum header fails frame checks;
  // a flip anywhere in the payload fails the FNV checksum (single-byte
  // changes always alter it: xor-then-odd-multiply is injective).
  for (std::size_t i = 0; i < bytes.size(); i += 3) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ (1 << (i % 8)));
    nc::SearchState::Snapshot sink;
    nu::Rng sinkRng{0};
    std::string error;
    EXPECT_FALSE(ns::decodeTaskCheckpoint(bad, sink, sinkRng, error))
        << "bit flip at byte " << i << " was accepted";
  }
}

TEST(CheckpointCodec, InjectedCorruptionIsAlwaysDetected) {
  // The corrupt-and-detect contract: a chaos-armed byte flip in the write
  // path must never produce a frame that decodes successfully.
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  reg.setSeed(0xc0ffee);
  reg.armFromText("checkpoint.corrupt=corrupt@1/1x0");
  const Frozen f = freeze();
  for (int i = 0; i < 16; ++i) {
    const std::string bytes = ns::encodeTaskCheckpoint(f.snap, f.rng);
    nc::SearchState::Snapshot sink;
    nu::Rng sinkRng{0};
    std::string error;
    EXPECT_FALSE(ns::decodeTaskCheckpoint(bytes, sink, sinkRng, error))
        << "injected corruption " << i << " went undetected";
  }
  EXPECT_EQ(reg.stats("checkpoint.corrupt").fires, 16u);
  reg.disarmAll();

  // Disarmed again: the same encode is clean.
  const std::string clean = ns::encodeTaskCheckpoint(f.snap, f.rng);
  nc::SearchState::Snapshot sink;
  nu::Rng sinkRng{0};
  std::string error;
  EXPECT_TRUE(ns::decodeTaskCheckpoint(clean, sink, sinkRng, error)) << error;
}

// ------------------------------------------------- file helpers -----------

TEST(CheckpointFiles, AtomicWriteThenReadRoundTrips) {
  const std::string path = tmpPath("atomic");
  std::string error;
  ASSERT_TRUE(ns::atomicWriteFile(path, "first contents", error)) << error;
  std::string back;
  ASSERT_TRUE(ns::readFileBytes(path, back, error)) << error;
  EXPECT_EQ(back, "first contents");
  // Overwrite is atomic too (rename over the old file).
  ASSERT_TRUE(ns::atomicWriteFile(path, "second", error)) << error;
  ASSERT_TRUE(ns::readFileBytes(path, back, error)) << error;
  EXPECT_EQ(back, "second");
  // No stray tmp file left behind.
  EXPECT_FALSE(ns::readFileBytes(path + ".tmp", back, error));
  ::unlink(path.c_str());
}

TEST(CheckpointFiles, KillBetweenRenameAndDirsyncKeepsThePublishedFile) {
  // The write protocol is write-tmp, fsync-tmp, rename, fsync-dir. A death
  // in the window between rename and the directory fsync must leave the
  // *new* contents at the path: the file's data was flushed before the
  // rename published it, so the entry the parent observes after the child's
  // hard exit is complete — the dir fsync only defends against the entry
  // itself rolling back on power loss, not against torn contents.
  const std::string path = tmpPath("dirsync-crash");
  std::string error;
  ASSERT_TRUE(ns::atomicWriteFile(path, "old contents", error)) << error;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: die at the dirsync fault point (std::_Exit — no flushes, the
    // closest an in-process test gets to kill -9 at that instant).
    auto& reg = nu::FaultRegistry::instance();
    reg.disarmAll();
    reg.armFromText("checkpoint.dirsync=crash:7");
    std::string childError;
    ns::atomicWriteFile(path, "new contents", childError);
    ::_exit(1);  // fault did not fire — report failure
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 7) << "child survived the dirsync crash";

  std::string back;
  ASSERT_TRUE(ns::readFileBytes(path, back, error)) << error;
  EXPECT_EQ(back, "new contents");
  // The tmp file was consumed by the rename before the crash.
  EXPECT_FALSE(ns::readFileBytes(path + ".tmp", back, error));
  ::unlink(path.c_str());
}

TEST(CheckpointFiles, DirsyncFailureIsSurfacedNotSwallowed) {
  // An fsync error on the parent directory means the rename may not be
  // durable: atomicWriteFile must report failure (so the watchdog retries)
  // even though the in-memory rename already succeeded and readers see the
  // new contents.
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  reg.armFromText("checkpoint.dirsync=throw");
  const std::string path = tmpPath("dirsync-throw");
  std::string error;
  EXPECT_FALSE(ns::atomicWriteFile(path, "published", error));
  EXPECT_NE(error.find("injected fault"), std::string::npos) << error;
  reg.disarmAll();

  std::string back;
  ASSERT_TRUE(ns::readFileBytes(path, back, error)) << error;
  EXPECT_EQ(back, "published");
  ::unlink(path.c_str());
}

TEST(CheckpointFiles, MissingFileReadsFalseNotThrow) {
  std::string out;
  std::string error;
  EXPECT_FALSE(ns::readFileBytes(tmpPath("never-written"), out, error));
  EXPECT_FALSE(error.empty());
}

TEST(CheckpointFiles, AppendLogLineAppends) {
  const std::string path = tmpPath("log");
  std::string error;
  ASSERT_TRUE(ns::appendLogLine(path, "{\"a\": 1}", error)) << error;
  ASSERT_TRUE(ns::appendLogLine(path, "{\"b\": 2}", error)) << error;
  std::string back;
  ASSERT_TRUE(ns::readFileBytes(path, back, error)) << error;
  EXPECT_EQ(back, "{\"a\": 1}\n{\"b\": 2}\n");
  ::unlink(path.c_str());
}

// ------------------------------------------------- restored state ---------

TEST(CheckpointState, SlidingWindowRestoredBehavesIdentically) {
  nu::SlidingWindowMean live(4);
  for (int i = 0; i < 10; ++i) live.push(1.0 + 0.25 * i);
  nu::SlidingWindowMean back = nu::SlidingWindowMean::restored(
      live.window(), live.recentValues(), live.priorSum(), live.priorCount(),
      live.count());
  EXPECT_EQ(back.count(), live.count());
  EXPECT_DOUBLE_EQ(back.windowMean(), live.windowMean());
  EXPECT_DOUBLE_EQ(back.priorMean(), live.priorMean());
  EXPECT_EQ(back.saturated(), live.saturated());
  // And the restored window keeps evolving exactly like the live one.
  live.push(0.5);
  back.push(0.5);
  EXPECT_DOUBLE_EQ(back.windowMean(), live.windowMean());
  EXPECT_DOUBLE_EQ(back.priorMean(), live.priorMean());
}

TEST(CheckpointState, RngStateRoundTripContinuesTheStream) {
  nu::Rng a(42);
  for (int i = 0; i < 5; ++i) a();
  nu::Rng b(0);
  b.setState(a.state());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(b(), a());
}
