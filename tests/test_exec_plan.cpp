// Parity tests for the zero-allocation execution engine: cached-plan
// execution must be indistinguishable from a fresh interpreter run, pooled
// storage must never leak state between candidates, the evaluator's
// fingerprint dedup must preserve budget semantics, and the blocked NN
// matmul must stay bitwise identical to the scalar kernel.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "dsl/functions.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "dsl/lanes.hpp"
#include "nn/inference.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nc = netsyn::core;
namespace nn = netsyn::nn;
using netsyn::util::Rng;

namespace {

using List = std::vector<std::int32_t>;

/// Structural equality of two ExecResults (output view + full trace).
void expectSameResult(const nd::ExecResult& a, const nd::ExecResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.output(), b.output());
  for (std::size_t k = 0; k < a.trace.size(); ++k)
    EXPECT_EQ(a.trace[k], b.trace[k]) << "trace slot " << k;
}

}  // namespace

// ------------------------------------------------------------ Value -------

TEST(ValueInPlace, SetIntKeepsListBufferAlive) {
  nd::Value v(List{1, 2, 3, 4, 5, 6, 7, 8});
  const std::int32_t* data = v.asList().data();
  v.setInt(42);
  EXPECT_EQ(v, nd::Value(42));
  // Retargeting back to a list of no larger size must reuse the retained
  // heap buffer — this is the arena property the executor relies on.
  List& list = v.makeList();
  list.assign({9, 8, 7});
  EXPECT_EQ(v, nd::Value(List{9, 8, 7}));
  EXPECT_EQ(v.asList().data(), data);
}

TEST(ValueInPlace, CopyAssignRefillsInPlace) {
  nd::Value dst(List{1, 2, 3, 4, 5, 6, 7, 8});
  const std::int32_t* data = dst.asList().data();
  const nd::Value smaller(List{4, 5});
  dst = smaller;  // copy-assign (a temporary would move and steal storage)
  EXPECT_EQ(dst, smaller);
  EXPECT_EQ(dst.asList().data(), data);  // capacity reused, no realloc
  const nd::Value seven(7);
  dst = seven;
  EXPECT_EQ(dst, nd::Value(7));
  EXPECT_TRUE(dst.isInt());
}

TEST(ValueInPlace, EqualityIgnoresDeadStorage) {
  nd::Value a(List{1, 2, 3});
  a.setInt(5);  // list storage retained but dead
  EXPECT_EQ(a, nd::Value(5));
  EXPECT_NE(a, nd::Value(List{1, 2, 3}));
}

// ------------------------------------------------- applyFunctionInto ------

TEST(ApplyFunctionInto, MatchesApplyFunctionForEveryFunction) {
  const nd::Value intArg(3);
  const nd::Value listA(List{5, -2, 0, 7, -9, 2});
  const nd::Value listB(List{1, 4, -3});
  for (std::size_t id = 0; id < nd::kNumFunctions; ++id) {
    const auto f = static_cast<nd::FuncId>(id);
    const auto& info = nd::functionInfo(f);
    std::vector<nd::Value> args;
    std::vector<const nd::Value*> ptrs;
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      if (info.argTypes[slot] == nd::Type::Int) {
        args.push_back(intArg);
      } else {
        args.push_back(slot == 0 ? listA : listB);
      }
    }
    for (const auto& a : args) ptrs.push_back(&a);

    const nd::Value expected = nd::applyFunction(
        f, std::span<const nd::Value>(args.data(), args.size()));
    // Dirty destination: the in-place path must fully overwrite retained
    // state from a previous (larger) result.
    nd::Value out(List{99, 99, 99, 99, 99, 99, 99, 99, 99, 99});
    nd::applyFunctionInto(
        f, std::span<const nd::Value* const>(ptrs.data(), ptrs.size()), out);
    EXPECT_EQ(out, expected) << info.name;
  }
}

// ------------------------------------------------------- plan cache -------

TEST(Executor, CachedPlanMatchesFreshRunOnRandomPrograms) {
  Rng rng(7);
  const nd::Generator gen;
  nd::Executor executor;
  nd::ExecResult pooled;  // reused across every iteration: the arena path
  for (int iter = 0; iter < 300; ++iter) {
    const bool withInt = iter % 2 == 0;
    nd::InputSignature sig = {nd::Type::List};
    if (withInt) sig.push_back(nd::Type::Int);
    const std::size_t length = 1 + static_cast<std::size_t>(rng.uniform(8));
    const auto prog = gen.randomProgram(length, sig, rng);
    ASSERT_TRUE(prog.has_value());
    const auto inputs = gen.randomInputs(sig, rng);

    const nd::ExecResult fresh = nd::run(*prog, inputs);
    executor.runInto(*prog, inputs, pooled);
    expectSameResult(pooled, fresh);
    EXPECT_EQ(executor.evalInto(*prog, inputs), fresh.output());
  }
}

TEST(Executor, PlanIsCompiledOncePerProgramAndSignature) {
  Rng rng(11);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  const auto prog = gen.randomProgram(5, sig, rng);
  ASSERT_TRUE(prog.has_value());

  nd::Executor executor;
  nd::ExecResult out;
  for (int i = 0; i < 10; ++i) {
    const auto inputs = gen.randomInputs(sig, rng);
    executor.runInto(*prog, inputs, out);
  }
  EXPECT_EQ(executor.planCompiles(), 1u);
  EXPECT_EQ(executor.planCacheSize(), 1u);

  // Same program under a different signature is a different plan.
  const nd::InputSignature sig2 = {nd::Type::List, nd::Type::Int};
  std::vector<nd::Value> inputs2 = {nd::Value(List{1, 2, 3}), nd::Value(2)};
  executor.runInto(*prog, inputs2, out);
  EXPECT_EQ(executor.planCompiles(), 2u);
}

TEST(Executor, PooledStorageNeverLeaksBetweenPrograms) {
  // A long list-heavy program followed by a short int-producing one: the
  // pooled trace must shrink exactly and dead list storage must not bleed
  // into results.
  const auto big = nd::Program::fromString("MAP(*2) | SORT | REVERSE");
  const auto small = nd::Program::fromString("SUM");
  ASSERT_TRUE(big && small);
  const std::vector<nd::Value> inputs = {nd::Value(List{3, 1, 2})};

  nd::Executor executor;
  nd::ExecResult pooled;
  executor.runInto(*big, inputs, pooled);
  ASSERT_EQ(pooled.trace.size(), 3u);
  executor.runInto(*small, inputs, pooled);
  ASSERT_EQ(pooled.trace.size(), 1u);
  EXPECT_EQ(pooled.output(), nd::Value(6));
  expectSameResult(pooled, nd::run(*small, inputs));
}

// --------------------------------------------------------- evaluator ------

TEST(SpecEvaluator, RecycledEvaluationsMatchFreshOnes) {
  Rng rng(13);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());

  nc::SearchBudget budgetA(100000), budgetB(100000);
  nc::SpecEvaluator pooledEval(tc->spec, budgetA);
  nc::SpecEvaluator freshEval(tc->spec, budgetB);

  const nd::InputSignature sig = tc->spec.signature();
  for (int round = 0; round < 20; ++round) {
    const auto prog = gen.randomProgram(4, sig, rng);
    ASSERT_TRUE(prog.has_value());
    auto a = pooledEval.evaluate(*prog);
    auto b = freshEval.evaluate(*prog);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->satisfied, b->satisfied);
    ASSERT_EQ(a->runs.size(), b->runs.size());
    for (std::size_t j = 0; j < a->runs.size(); ++j) {
      expectSameResult(a->runs[j], b->runs[j]);
      // Ground truth: a fresh interpreter run.
      expectSameResult(a->runs[j],
                       nd::run(*prog, tc->spec.examples[j].inputs));
    }
    // Only the pooled evaluator recycles; parity must hold regardless.
    pooledEval.recycle(std::move(*a));
  }
  EXPECT_EQ(budgetA.used(), budgetB.used());
}

TEST(SpecEvaluator, FingerprintDedupPreservesBudgetSemantics) {
  Rng rng(17);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 4, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();

  std::vector<nd::Program> progs;
  for (int i = 0; i < 5; ++i) progs.push_back(*gen.randomProgram(3, sig, rng));

  nc::SearchBudget budget(100000);
  nc::SpecEvaluator evaluator(tc->spec, budget);
  for (const auto& p : progs) ASSERT_TRUE(evaluator.evaluate(p).has_value());
  EXPECT_EQ(budget.used(), progs.size());
  // Re-examinations are free, in any API.
  for (const auto& p : progs) ASSERT_TRUE(evaluator.evaluate(p).has_value());
  for (const auto& p : progs) ASSERT_TRUE(evaluator.check(p).has_value());
  EXPECT_EQ(budget.used(), progs.size());
}

TEST(SpecEvaluator, CheckAgreesWithSatisfiesSpec) {
  Rng rng(19);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();

  nc::SearchBudget budget(100000);
  nc::SpecEvaluator evaluator(tc->spec, budget, /*dedup=*/false);
  // The target program itself must check out; random ones must agree with
  // the reference satisfiesSpec.
  EXPECT_TRUE(evaluator.check(tc->program).value());
  for (int i = 0; i < 50; ++i) {
    const auto p = gen.randomProgram(3, sig, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(evaluator.check(*p).value(),
              nd::satisfiesSpec(*p, tc->spec));
  }
}

// ----------------------------------------------------- lane executor ------

namespace {

/// Runs `program` over `examples` random input sets through both the lane
/// executor and the scalar statement-major path, and asserts trace-for-trace
/// equality. Shared workhorse for the tail-count sweep below.
void expectLanesMatchScalar(const nd::Program& program,
                            const nd::InputSignature& sig,
                            std::size_t examples, Rng& rng) {
  const nd::Generator gen;
  nd::Executor executor;
  nd::SoATrace trace;

  std::vector<std::vector<nd::Value>> inputs;
  std::vector<const std::vector<nd::Value>*> inputSets;
  inputs.reserve(examples);
  for (std::size_t j = 0; j < examples; ++j) {
    inputs.push_back(gen.randomInputs(sig, rng));
    inputSets.push_back(&inputs[j]);
  }

  const nd::ExecPlan& plan = executor.planFor(program, sig);
  std::vector<nd::ExecResult> scalar(examples), lanes(examples);
  std::vector<nd::Value> outs(examples);
  nd::executePlanMulti(plan, inputSets.data(), examples, scalar.data());
  nd::executePlanMultiLanes(plan, inputSets.data(), examples, lanes.data(),
                            trace);
  nd::executePlanMultiLanesOutputs(plan, inputSets.data(), examples,
                                   outs.data(), trace);
  for (std::size_t j = 0; j < examples; ++j) {
    ASSERT_EQ(lanes[j].trace.size(), scalar[j].trace.size());
    for (std::size_t k = 0; k < lanes[j].trace.size(); ++k)
      ASSERT_EQ(lanes[j].trace[k], scalar[j].trace[k])
          << "example " << j << " of " << examples << ", trace slot " << k
          << ": " << program.toString();
    ASSERT_EQ(outs[j], scalar[j].output())
        << "example " << j << " of " << examples
        << ", output-only path: " << program.toString();
  }
}

}  // namespace

TEST(LaneExecutor, TailCountsMatchScalar) {
  // Example counts straddling both batching boundaries: the SIMD vector
  // width (8 int32 per AVX2 register) and the lane-group size
  // (SoATrace::kMaxLanes = 32): 1, lane-1, lane, lane+1, 2*lane+3 for each.
  constexpr std::size_t kVec = 8;
  constexpr std::size_t kGroup = nd::SoATrace::kMaxLanes;
  const std::size_t counts[] = {1,          kVec - 1,   kVec,
                                kVec + 1,   2 * kVec + 3, kGroup - 1,
                                kGroup,     kGroup + 1, 2 * kGroup + 3};

  Rng rng(29);
  const nd::Generator gen;
  for (const std::size_t examples : counts) {
    for (int rep = 0; rep < 8; ++rep) {
      const nd::InputSignature sig = gen.randomSignature(rng);
      const auto prog =
          gen.randomProgram(1 + rng.uniform(6), sig, rng);
      ASSERT_TRUE(prog.has_value());
      expectLanesMatchScalar(*prog, sig, examples, rng);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(LaneExecutor, MixedIntAndListOutputsUnderSoA) {
  // A fixed pipeline that interleaves list- and int-producing statements,
  // so the SoA trace carries both payload kinds side by side and the
  // scatter step must pick the right one per statement: list, int, list
  // (TAKE consumes the int), int, list (again via default/int args), int.
  const auto prog = nd::Program::fromString(
      "MAP(*2) | MAXIMUM | TAKE | COUNT(>0) | SCANL1(+) | SUM");
  ASSERT_TRUE(prog.has_value());
  const nd::InputSignature sig = {nd::Type::List, nd::Type::Int};
  Rng rng(31);
  for (const std::size_t examples : {1u, 7u, 9u, 33u, 67u}) {
    expectLanesMatchScalar(*prog, sig, examples, rng);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LaneExecutor, OutputOnlyPathHandlesEmptyPlanOnBothBackends) {
  // An empty program's output is the default list on every path
  // (ExecResult::output() on an empty trace); the output-only entry point
  // has no trace to fall back on, so the n == 0 case is its own branch.
  nd::Executor executor;
  const nd::InputSignature sig = {nd::Type::List};
  const nd::Program empty;
  const nd::ExecPlan& plan = executor.planFor(empty, sig);

  const std::vector<nd::Value> inputs = {nd::Value{std::vector<std::int32_t>{1, 2}}};
  const std::vector<nd::Value>* sets[] = {&inputs};
  const nd::Value emptyList{std::vector<std::int32_t>{}};

  std::vector<nd::Value> outs(1, nd::Value{7});  // refilled in place
  executor.setLaneExecution(true);
  executor.executeMultiOutputs(plan, sets, 1, outs.data());
  EXPECT_EQ(outs[0], emptyList);

  outs[0] = nd::Value{7};
  executor.setLaneExecution(false);
  executor.executeMultiOutputs(plan, sets, 1, outs.data());
  EXPECT_EQ(outs[0], emptyList);
}

TEST(LaneTraceView, ViewMatchesScalarTraceCellByCell) {
  // The no-scatter view path must expose exactly the cells the scalar
  // engine scatters: statement k, lane j reads back the same int or the
  // same list segment, and outputEquals agrees with the scalar output.
  Rng rng(37);
  const nd::Generator gen;
  nd::Executor executor;
  executor.setLaneExecution(true);
  for (int rep = 0; rep < 20; ++rep) {
    const nd::InputSignature sig = gen.randomSignature(rng);
    const auto prog = gen.randomProgram(1 + rng.uniform(6), sig, rng);
    ASSERT_TRUE(prog.has_value());
    const std::size_t examples = 1 + rng.uniform(nd::SoATrace::kMaxLanes);
    std::vector<std::vector<nd::Value>> inputs;
    std::vector<const std::vector<nd::Value>*> inputSets;
    inputs.reserve(examples);
    for (std::size_t j = 0; j < examples; ++j) {
      inputs.push_back(gen.randomInputs(sig, rng));
      inputSets.push_back(&inputs[j]);
    }
    const nd::ExecPlan& plan = executor.planFor(*prog, sig);
    std::vector<nd::ExecResult> scalar(examples);
    nd::executePlanMulti(plan, inputSets.data(), examples, scalar.data());

    nd::LaneTraceView view;
    ASSERT_TRUE(
        executor.executeMultiView(plan, inputSets.data(), examples, view));
    ASSERT_EQ(view.steps, prog->length());
    ASSERT_EQ(view.lanes, examples);
    for (std::size_t k = 0; k < view.steps; ++k) {
      for (std::size_t j = 0; j < examples; ++j) {
        const nd::Value& v = scalar[j].trace[k];
        if (view.stepType(k) == nd::Type::Int) {
          ASSERT_TRUE(v.isInt());
          EXPECT_EQ(view.intAt(k, j), v.asInt());
        } else {
          ASSERT_FALSE(v.isInt());
          std::size_t len = 0;
          const std::int32_t* seg = view.listAt(k, j, &len);
          ASSERT_EQ(len, v.asList().size());
          for (std::size_t t = 0; t < len; ++t)
            EXPECT_EQ(seg[t], v.asList()[t]) << "slot " << k << " lane " << j;
        }
      }
    }
    for (std::size_t j = 0; j < examples; ++j) {
      const nd::Value& out = scalar[j].output();
      EXPECT_TRUE(view.outputEquals(j, out));
      // A value guaranteed different — same type, perturbed contents — and
      // a cross-type probe must both miss.
      if (out.isInt()) {
        EXPECT_FALSE(view.outputEquals(
            j, nd::Value{static_cast<std::int32_t>(out.asInt() + 1)}));
        EXPECT_FALSE(view.outputEquals(j, nd::Value{List{}}));
      } else {
        List longer = out.asList();
        longer.push_back(1);
        EXPECT_FALSE(view.outputEquals(j, nd::Value{longer}));
        EXPECT_FALSE(view.outputEquals(j, nd::Value{0}));
      }
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(LaneTraceView, EmptyProgramAndLaneLimits) {
  nd::Executor executor;
  executor.setLaneExecution(true);
  const nd::InputSignature sig = {nd::Type::List};
  const nd::Program empty;
  const nd::ExecPlan& plan = executor.planFor(empty, sig);
  const std::vector<nd::Value> in = {nd::Value{List{1, 2, 3}}};
  const std::vector<nd::Value>* sets[] = {&in};

  // An empty plan yields an empty view whose output is the default list,
  // matching ExecResult::output() on an empty trace.
  nd::LaneTraceView view;
  ASSERT_TRUE(executor.executeMultiView(plan, sets, 1, view));
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(view.steps, 0u);
  EXPECT_TRUE(view.outputEquals(0, nd::Value{List{}}));
  EXPECT_FALSE(view.outputEquals(0, nd::Value{List{1}}));
  EXPECT_FALSE(view.outputEquals(0, nd::Value{0}));

  // The view path is single-group only: counts beyond kMaxLanes (and the
  // degenerate zero) are refused so callers fall back to the scatter path.
  std::vector<std::vector<nd::Value>> many(nd::SoATrace::kMaxLanes + 1, in);
  std::vector<const std::vector<nd::Value>*> manySets;
  for (auto& m : many) manySets.push_back(&m);
  EXPECT_FALSE(executor.executeMultiView(plan, manySets.data(),
                                         manySets.size(), view));
  EXPECT_FALSE(executor.executeMultiView(plan, sets, 0, view));

  // And it requires lane execution to be on.
  executor.setLaneExecution(false);
  EXPECT_FALSE(executor.executeMultiView(plan, sets, 1, view));
}

TEST(Executor, ResetCountersClearsDeltasButKeepsPlanCache) {
  Rng rng(37);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  const auto prog = gen.randomProgram(5, sig, rng);
  ASSERT_TRUE(prog.has_value());

  nd::Executor executor;
  nd::ExecResult out;
  for (int i = 0; i < 4; ++i)
    executor.runInto(*prog, gen.randomInputs(sig, rng), out);
  EXPECT_EQ(executor.planCompiles(), 1u);
  EXPECT_EQ(executor.planLookups(), 4u);
  EXPECT_EQ(executor.planCacheSize(), 1u);

  // The per-job delta reset: counters go to zero, the cache stays warm.
  executor.resetCounters();
  EXPECT_EQ(executor.planCompiles(), 0u);
  EXPECT_EQ(executor.planLookups(), 0u);
  EXPECT_EQ(executor.planCacheSize(), 1u);

  // Re-running the same program is a pure cache hit: lookups advance from
  // zero, compiles stay zero — exactly the delta a service worker reports.
  executor.runInto(*prog, gen.randomInputs(sig, rng), out);
  EXPECT_EQ(executor.planCompiles(), 0u);
  EXPECT_EQ(executor.planLookups(), 1u);

  // A genuinely new signature after the reset counts one compile.
  const nd::InputSignature sig2 = {nd::Type::List, nd::Type::Int};
  std::vector<nd::Value> inputs2 = {nd::Value(List{1, 2, 3}), nd::Value(2)};
  executor.runInto(*prog, inputs2, out);
  EXPECT_EQ(executor.planCompiles(), 1u);
  EXPECT_EQ(executor.planCacheSize(), 2u);
}

// ------------------------------------------------- blocked NN matmul ------

TEST(BlockedMatmul, BitwiseIdenticalToScalarAccumulation) {
  Rng rng(23);
  const std::size_t in = 13, out = 17;
  nn::Matrix w(in, out);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at(i) = static_cast<float>(rng.uniformReal(-1, 1));

  for (std::size_t batch = 1; batch <= 9; ++batch) {
    std::vector<float> x(batch * in), zBlocked(batch * out),
        zScalar(batch * out);
    std::vector<std::uint8_t> active(batch, 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
      // Sprinkle exact zeros: the scalar kernel's skip-on-zero must be
      // reproduced exactly by the blocked path.
      x[i] = (i % 5 == 0) ? 0.0f
                          : static_cast<float>(rng.uniformReal(-2, 2));
    }
    for (std::size_t i = 0; i < batch * out; ++i)
      zBlocked[i] = zScalar[i] = static_cast<float>(rng.uniformReal(-1, 1));
    if (batch > 2) active[batch / 2] = 0;  // one masked lane

    nn::addVecMatBatch(x.data(), in, batch, in, w, zBlocked.data(), out,
                       active.data());
    // Scalar reference: per-row accumulation in row order via the public
    // single-row building block (batch of one).
    for (std::size_t b = 0; b < batch; ++b) {
      if (active[b] == 0) continue;
      nn::addVecMatBatch(x.data() + b * in, in, 1, in, w,
                         zScalar.data() + b * out, out);
    }
    // Masked lanes must be untouched; all lanes bitwise equal.
    EXPECT_EQ(0, std::memcmp(zBlocked.data(), zScalar.data(),
                             batch * out * sizeof(float)))
        << "batch " << batch;
  }
}
