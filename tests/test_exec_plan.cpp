// Parity tests for the zero-allocation execution engine: cached-plan
// execution must be indistinguishable from a fresh interpreter run, pooled
// storage must never leak state between candidates, the evaluator's
// fingerprint dedup must preserve budget semantics, and the blocked NN
// matmul must stay bitwise identical to the scalar kernel.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "dsl/functions.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "nn/inference.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nc = netsyn::core;
namespace nn = netsyn::nn;
using netsyn::util::Rng;

namespace {

using List = std::vector<std::int32_t>;

/// Structural equality of two ExecResults (output view + full trace).
void expectSameResult(const nd::ExecResult& a, const nd::ExecResult& b) {
  ASSERT_EQ(a.trace.size(), b.trace.size());
  EXPECT_EQ(a.output(), b.output());
  for (std::size_t k = 0; k < a.trace.size(); ++k)
    EXPECT_EQ(a.trace[k], b.trace[k]) << "trace slot " << k;
}

}  // namespace

// ------------------------------------------------------------ Value -------

TEST(ValueInPlace, SetIntKeepsListBufferAlive) {
  nd::Value v(List{1, 2, 3, 4, 5, 6, 7, 8});
  const std::int32_t* data = v.asList().data();
  v.setInt(42);
  EXPECT_EQ(v, nd::Value(42));
  // Retargeting back to a list of no larger size must reuse the retained
  // heap buffer — this is the arena property the executor relies on.
  List& list = v.makeList();
  list.assign({9, 8, 7});
  EXPECT_EQ(v, nd::Value(List{9, 8, 7}));
  EXPECT_EQ(v.asList().data(), data);
}

TEST(ValueInPlace, CopyAssignRefillsInPlace) {
  nd::Value dst(List{1, 2, 3, 4, 5, 6, 7, 8});
  const std::int32_t* data = dst.asList().data();
  const nd::Value smaller(List{4, 5});
  dst = smaller;  // copy-assign (a temporary would move and steal storage)
  EXPECT_EQ(dst, smaller);
  EXPECT_EQ(dst.asList().data(), data);  // capacity reused, no realloc
  const nd::Value seven(7);
  dst = seven;
  EXPECT_EQ(dst, nd::Value(7));
  EXPECT_TRUE(dst.isInt());
}

TEST(ValueInPlace, EqualityIgnoresDeadStorage) {
  nd::Value a(List{1, 2, 3});
  a.setInt(5);  // list storage retained but dead
  EXPECT_EQ(a, nd::Value(5));
  EXPECT_NE(a, nd::Value(List{1, 2, 3}));
}

// ------------------------------------------------- applyFunctionInto ------

TEST(ApplyFunctionInto, MatchesApplyFunctionForEveryFunction) {
  const nd::Value intArg(3);
  const nd::Value listA(List{5, -2, 0, 7, -9, 2});
  const nd::Value listB(List{1, 4, -3});
  for (std::size_t id = 0; id < nd::kNumFunctions; ++id) {
    const auto f = static_cast<nd::FuncId>(id);
    const auto& info = nd::functionInfo(f);
    std::vector<nd::Value> args;
    std::vector<const nd::Value*> ptrs;
    for (std::size_t slot = 0; slot < info.arity; ++slot) {
      if (info.argTypes[slot] == nd::Type::Int) {
        args.push_back(intArg);
      } else {
        args.push_back(slot == 0 ? listA : listB);
      }
    }
    for (const auto& a : args) ptrs.push_back(&a);

    const nd::Value expected = nd::applyFunction(
        f, std::span<const nd::Value>(args.data(), args.size()));
    // Dirty destination: the in-place path must fully overwrite retained
    // state from a previous (larger) result.
    nd::Value out(List{99, 99, 99, 99, 99, 99, 99, 99, 99, 99});
    nd::applyFunctionInto(
        f, std::span<const nd::Value* const>(ptrs.data(), ptrs.size()), out);
    EXPECT_EQ(out, expected) << info.name;
  }
}

// ------------------------------------------------------- plan cache -------

TEST(Executor, CachedPlanMatchesFreshRunOnRandomPrograms) {
  Rng rng(7);
  const nd::Generator gen;
  nd::Executor executor;
  nd::ExecResult pooled;  // reused across every iteration: the arena path
  for (int iter = 0; iter < 300; ++iter) {
    const bool withInt = iter % 2 == 0;
    nd::InputSignature sig = {nd::Type::List};
    if (withInt) sig.push_back(nd::Type::Int);
    const std::size_t length = 1 + static_cast<std::size_t>(rng.uniform(8));
    const auto prog = gen.randomProgram(length, sig, rng);
    ASSERT_TRUE(prog.has_value());
    const auto inputs = gen.randomInputs(sig, rng);

    const nd::ExecResult fresh = nd::run(*prog, inputs);
    executor.runInto(*prog, inputs, pooled);
    expectSameResult(pooled, fresh);
    EXPECT_EQ(executor.evalInto(*prog, inputs), fresh.output());
  }
}

TEST(Executor, PlanIsCompiledOncePerProgramAndSignature) {
  Rng rng(11);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  const auto prog = gen.randomProgram(5, sig, rng);
  ASSERT_TRUE(prog.has_value());

  nd::Executor executor;
  nd::ExecResult out;
  for (int i = 0; i < 10; ++i) {
    const auto inputs = gen.randomInputs(sig, rng);
    executor.runInto(*prog, inputs, out);
  }
  EXPECT_EQ(executor.planCompiles(), 1u);
  EXPECT_EQ(executor.planCacheSize(), 1u);

  // Same program under a different signature is a different plan.
  const nd::InputSignature sig2 = {nd::Type::List, nd::Type::Int};
  std::vector<nd::Value> inputs2 = {nd::Value(List{1, 2, 3}), nd::Value(2)};
  executor.runInto(*prog, inputs2, out);
  EXPECT_EQ(executor.planCompiles(), 2u);
}

TEST(Executor, PooledStorageNeverLeaksBetweenPrograms) {
  // A long list-heavy program followed by a short int-producing one: the
  // pooled trace must shrink exactly and dead list storage must not bleed
  // into results.
  const auto big = nd::Program::fromString("MAP(*2) | SORT | REVERSE");
  const auto small = nd::Program::fromString("SUM");
  ASSERT_TRUE(big && small);
  const std::vector<nd::Value> inputs = {nd::Value(List{3, 1, 2})};

  nd::Executor executor;
  nd::ExecResult pooled;
  executor.runInto(*big, inputs, pooled);
  ASSERT_EQ(pooled.trace.size(), 3u);
  executor.runInto(*small, inputs, pooled);
  ASSERT_EQ(pooled.trace.size(), 1u);
  EXPECT_EQ(pooled.output(), nd::Value(6));
  expectSameResult(pooled, nd::run(*small, inputs));
}

// --------------------------------------------------------- evaluator ------

TEST(SpecEvaluator, RecycledEvaluationsMatchFreshOnes) {
  Rng rng(13);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());

  nc::SearchBudget budgetA(100000), budgetB(100000);
  nc::SpecEvaluator pooledEval(tc->spec, budgetA);
  nc::SpecEvaluator freshEval(tc->spec, budgetB);

  const nd::InputSignature sig = tc->spec.signature();
  for (int round = 0; round < 20; ++round) {
    const auto prog = gen.randomProgram(4, sig, rng);
    ASSERT_TRUE(prog.has_value());
    auto a = pooledEval.evaluate(*prog);
    auto b = freshEval.evaluate(*prog);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_EQ(a->satisfied, b->satisfied);
    ASSERT_EQ(a->runs.size(), b->runs.size());
    for (std::size_t j = 0; j < a->runs.size(); ++j) {
      expectSameResult(a->runs[j], b->runs[j]);
      // Ground truth: a fresh interpreter run.
      expectSameResult(a->runs[j],
                       nd::run(*prog, tc->spec.examples[j].inputs));
    }
    // Only the pooled evaluator recycles; parity must hold regardless.
    pooledEval.recycle(std::move(*a));
  }
  EXPECT_EQ(budgetA.used(), budgetB.used());
}

TEST(SpecEvaluator, FingerprintDedupPreservesBudgetSemantics) {
  Rng rng(17);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 4, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();

  std::vector<nd::Program> progs;
  for (int i = 0; i < 5; ++i) progs.push_back(*gen.randomProgram(3, sig, rng));

  nc::SearchBudget budget(100000);
  nc::SpecEvaluator evaluator(tc->spec, budget);
  for (const auto& p : progs) ASSERT_TRUE(evaluator.evaluate(p).has_value());
  EXPECT_EQ(budget.used(), progs.size());
  // Re-examinations are free, in any API.
  for (const auto& p : progs) ASSERT_TRUE(evaluator.evaluate(p).has_value());
  for (const auto& p : progs) ASSERT_TRUE(evaluator.check(p).has_value());
  EXPECT_EQ(budget.used(), progs.size());
}

TEST(SpecEvaluator, CheckAgreesWithSatisfiesSpec) {
  Rng rng(19);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();

  nc::SearchBudget budget(100000);
  nc::SpecEvaluator evaluator(tc->spec, budget, /*dedup=*/false);
  // The target program itself must check out; random ones must agree with
  // the reference satisfiesSpec.
  EXPECT_TRUE(evaluator.check(tc->program).value());
  for (int i = 0; i < 50; ++i) {
    const auto p = gen.randomProgram(3, sig, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(evaluator.check(*p).value(),
              nd::satisfiesSpec(*p, tc->spec));
  }
}

// ------------------------------------------------- blocked NN matmul ------

TEST(BlockedMatmul, BitwiseIdenticalToScalarAccumulation) {
  Rng rng(23);
  const std::size_t in = 13, out = 17;
  nn::Matrix w(in, out);
  for (std::size_t i = 0; i < w.size(); ++i)
    w.at(i) = static_cast<float>(rng.uniformReal(-1, 1));

  for (std::size_t batch = 1; batch <= 9; ++batch) {
    std::vector<float> x(batch * in), zBlocked(batch * out),
        zScalar(batch * out);
    std::vector<std::uint8_t> active(batch, 1);
    for (std::size_t i = 0; i < x.size(); ++i) {
      // Sprinkle exact zeros: the scalar kernel's skip-on-zero must be
      // reproduced exactly by the blocked path.
      x[i] = (i % 5 == 0) ? 0.0f
                          : static_cast<float>(rng.uniformReal(-2, 2));
    }
    for (std::size_t i = 0; i < batch * out; ++i)
      zBlocked[i] = zScalar[i] = static_cast<float>(rng.uniformReal(-1, 1));
    if (batch > 2) active[batch / 2] = 0;  // one masked lane

    nn::addVecMatBatch(x.data(), in, batch, in, w, zBlocked.data(), out,
                       active.data());
    // Scalar reference: per-row accumulation in row order via the public
    // single-row building block (batch of one).
    for (std::size_t b = 0; b < batch; ++b) {
      if (active[b] == 0) continue;
      nn::addVecMatBatch(x.data() + b * in, in, 1, in, w,
                         zScalar.data() + b * out, out);
    }
    // Masked lanes must be untouched; all lanes bitwise equal.
    EXPECT_EQ(0, std::memcmp(zBlocked.data(), zScalar.data(),
                             batch * out * sizeof(float)))
        << "batch " << batch;
  }
}
