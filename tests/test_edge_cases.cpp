// Edge cases across modules: exotic input signatures, empty-output scoring,
// dead-code-free enumeration, target-aware method rewiring, and report
// corner cases.
#include <gtest/gtest.h>

#include "baselines/deepcoder.hpp"
#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "fitness/edit.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "util/rng.hpp"

namespace nb = netsyn::baselines;
namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
using netsyn::util::Rng;

namespace {

nd::Program prog(const std::string& text) {
  auto p = nd::Program::fromString(text);
  EXPECT_TRUE(p.has_value()) << text;
  return *p;
}

using L = std::vector<std::int32_t>;

}  // namespace

// ------------------------------------------- exotic input signatures ------

TEST(MultiInput, ZipWithConsumesTwoListInputs) {
  // Signature (list, list): ZIPWITH as the first statement must combine the
  // two program inputs, most recent (second) first.
  const auto p = prog("ZIPWITH(-)");
  const auto out = nd::eval(p, {nd::Value(L{10, 20}), nd::Value(L{1, 2})});
  // slot0 = input 1 (most recent), slot1 = input 0: (1-10, 2-20).
  EXPECT_EQ(out, nd::Value(L{-9, -18}));
}

TEST(MultiInput, TwoIntInputsMostRecentWins) {
  const auto p = prog("TAKE");
  const auto out = nd::eval(
      p, {nd::Value(L{7, 8, 9}), nd::Value(1), nd::Value(2)});
  EXPECT_EQ(out, nd::Value(L{7, 8}));  // uses the last int input (2)
}

TEST(MultiInput, DceUnderTwoListSignature) {
  // With two list inputs, ZIPWITH's slots both bind to inputs, so a prior
  // list statement shadows only one of them.
  const nd::InputSignature sig = {nd::Type::List, nd::Type::List};
  const auto p = prog("SORT | ZIPWITH(+)");
  // ZIPWITH: slot0 = SORT output, slot1 = input 1 -> SORT is live.
  EXPECT_TRUE(nd::isFullyLive(p, sig));
}

TEST(MultiInput, GeneratorCanTargetCustomSignatures) {
  Rng rng(1);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List, nd::Type::List};
  const auto p = gen.randomProgram(5, sig, rng);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(nd::isFullyLive(*p, sig));
  const auto inputs = gen.randomInputs(sig, rng);
  EXPECT_EQ(inputs.size(), 2u);
  EXPECT_EQ(nd::run(*p, inputs).trace.size(), 5u);
}

// --------------------------------------------------- scoring corners ------

TEST(EditFitness, EmptySpecScoresPerfect) {
  nf::EditDistanceFitness fit;
  nd::Spec spec;
  std::vector<nd::ExecResult> runs;
  EXPECT_DOUBLE_EQ(fit.score(nd::Program{}, {spec, runs}), 1.0);
}

TEST(EditFitness, IntOutputSpecs) {
  nd::Spec spec;
  spec.examples.push_back({{nd::Value(L{1, 2, 3})}, nd::Value(6)});
  std::vector<nd::ExecResult> exact(1), near(1), far(1);
  exact[0].trace.push_back(nd::Value(6));
  near[0].trace.push_back(nd::Value(7));
  far[0].trace.push_back(nd::Value(L{1, 2, 3, 4, 5}));
  nf::EditDistanceFitness fit;
  const double e = fit.score(nd::Program{}, {spec, exact});
  const double n = fit.score(nd::Program{}, {spec, near});
  const double f = fit.score(nd::Program{}, {spec, far});
  EXPECT_DOUBLE_EQ(e, 1.0);
  EXPECT_GT(n, f);
}

// ----------------------------------------- DeepCoder dead-code skips ------

TEST(DeepCoder, DeadCodeProgramsAreSkippedFree) {
  // Unsatisfiable spec, targetLength 2: the enumerator visits all length-1
  // programs (41) plus only the *fully-live* length-2 programs. The total
  // charged must therefore be strictly below 41 + 41^2.
  nd::Spec spec;
  spec.examples.push_back(
      {{nd::Value(L{1, 2})}, nd::Value(L{9, 9, 9, 9, 9, 9, 9, 9, 9})});
  struct Uniform final : nf::ProbMapProvider {
    std::vector<double> probMap(const nd::Spec&) override {
      return std::vector<double>(nd::kNumFunctions, 0.5);
    }
  };
  nb::DeepCoderMethod method(std::make_shared<Uniform>());
  Rng rng(2);
  const auto result = method.synthesize(spec, 2, 1u << 20, rng);
  EXPECT_FALSE(result.found);
  EXPECT_LT(result.candidatesSearched,
            nd::kNumFunctions + nd::kNumFunctions * nd::kNumFunctions);
  EXPECT_GT(result.candidatesSearched, nd::kNumFunctions);
}

// ------------------------------------------------- target-aware oracle ----

TEST(OracleMethod, SetTargetRewiresTheFitness) {
  Rng rng(3);
  const nd::Generator gen;
  const auto tcA = gen.randomTestCase(3, 5, false, rng);
  const auto tcB = gen.randomTestCase(3, 5, false, rng);
  ASSERT_TRUE(tcA && tcB);
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.synthesizer.ga.populationSize = 25;
  auto oracle = nh::makeOracle(cfg, nf::BalanceMetric::CF);
  auto* ta = dynamic_cast<nh::TargetAware*>(oracle.get());
  ASSERT_NE(ta, nullptr);

  ta->setTarget(tcA->program);
  Rng r1(4);
  const auto ra = oracle->synthesize(tcA->spec, 3, 30000, r1);
  ta->setTarget(tcB->program);
  Rng r2(5);
  const auto rb = oracle->synthesize(tcB->spec, 3, 30000, r2);
  // Each run solves its own spec (oracle guidance matches the spec's target).
  if (ra.found) {
    EXPECT_TRUE(nd::satisfiesSpec(ra.solution, tcA->spec));
  }
  if (rb.found) {
    EXPECT_TRUE(nd::satisfiesSpec(rb.solution, tcB->spec));
  }
  EXPECT_TRUE(ra.found || rb.found);
}

// ---------------------------------------------------- report corners ------

TEST(MethodReport, NoProgramsYieldsZeroes) {
  nh::MethodReport report;
  EXPECT_DOUBLE_EQ(report.synthesizedFraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.meanSynthesisRate(), 0.0);
  EXPECT_DOUBLE_EQ(report.meanGenerations(), 0.0);
}

TEST(MethodReport, MeanGenerationsIgnoresUnsolved) {
  nh::MethodReport report;
  nh::ProgramResult solved;
  solved.runs.push_back({true, 10, 0.1, 100, {}});
  nh::ProgramResult unsolved;
  unsolved.runs.push_back({false, 999, 9.9, 5000, {}});
  report.programs = {solved, unsolved};
  EXPECT_DOUBLE_EQ(report.meanGenerations(), 100.0);
}

TEST(ProgramResult, NoRunsMeansUnsynthesized) {
  nh::ProgramResult pr;
  EXPECT_FALSE(pr.synthesized());
  EXPECT_DOUBLE_EQ(pr.synthesisRate(), 0.0);
  EXPECT_DOUBLE_EQ(pr.meanCandidatesWhenFound(), 0.0);
}
