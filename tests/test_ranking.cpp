// Tests for the §5.3.1 relative-ordering (ranking) ablation: pair-sample
// construction and RankNet-style training.
#include <gtest/gtest.h>

#include "fitness/metrics.hpp"
#include "fitness/ranking.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

nf::DatasetConfig tinyDc() {
  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 2;
  return dc;
}

nf::NnffConfig tinyModelCfg() {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 8;
  cfg.hiddenDim = 12;
  cfg.maxExamples = 2;
  cfg.head = nf::HeadKind::Regression;
  cfg.seed = 42;
  return cfg;
}

}  // namespace

TEST(PairSamples, ShareTargetAndSpecWithExactLabels) {
  Rng rng(1);
  for (int iter = 0; iter < 10; ++iter) {
    const auto p =
        nf::makePairSample(tinyDc(), 1, 3, nf::BalanceMetric::CF, rng);
    if (!p) continue;
    EXPECT_EQ(p->metricA, 1u);
    EXPECT_EQ(p->metricB, 3u);
    EXPECT_EQ(p->metricA, nf::commonFunctions(p->a, p->target));
    EXPECT_EQ(p->metricB, nf::commonFunctions(p->b, p->target));
    EXPECT_EQ(p->tracesA.size(), p->spec.size());
    EXPECT_EQ(p->tracesB.size(), p->spec.size());
    for (std::size_t i = 0; i < p->spec.size(); ++i) {
      EXPECT_EQ(nd::run(p->a, p->spec.examples[i].inputs).trace,
                p->tracesA[i]);
    }
  }
}

TEST(PairSamples, BuildPairsCoversDistinctLabels) {
  Rng rng(2);
  const auto pairs = nf::buildPairs(tinyDc(), 25, nf::BalanceMetric::CF, rng);
  ASSERT_EQ(pairs.size(), 25u);
  for (const auto& p : pairs) EXPECT_NE(p.metricA, p.metricB);
  // Both orderings occur (a>b and a<b).
  bool aFirst = false, bFirst = false;
  for (const auto& p : pairs) {
    aFirst |= p.metricA > p.metricB;
    bFirst |= p.metricA < p.metricB;
  }
  EXPECT_TRUE(aFirst);
  EXPECT_TRUE(bFirst);
}

TEST(RankTrainer, RequiresRegressionHead) {
  auto cfg = tinyModelCfg();
  cfg.head = nf::HeadKind::Classifier;
  nf::NnffModel classifier(cfg);
  Rng rng(3);
  const auto pairs = nf::buildPairs(tinyDc(), 4, nf::BalanceMetric::CF, rng);
  nf::RankTrainer trainer;
  EXPECT_THROW(trainer.train(classifier, pairs, {}), std::invalid_argument);
  nf::NnffModel reg(tinyModelCfg());
  EXPECT_THROW(trainer.train(reg, {}, {}), std::invalid_argument);
}

TEST(RankTrainer, LossDecreasesAndAccuracyBeatsCoin) {
  nf::NnffModel model(tinyModelCfg());
  Rng rng(4);
  const auto trainSet =
      nf::buildPairs(tinyDc(), 80, nf::BalanceMetric::CF, rng);
  const auto valSet = nf::buildPairs(tinyDc(), 30, nf::BalanceMetric::CF, rng);
  nf::RankTrainConfig rc;
  rc.epochs = 3;
  rc.learningRate = 1e-2f;
  nf::RankTrainer trainer(rc);
  const auto history = trainer.train(model, trainSet, valSet);
  ASSERT_EQ(history.size(), 3u);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
  // Extreme-margin pairs (0 vs 4) give a learnable ordering signal; overall
  // accuracy must at least reach coin-flip on this tiny budget.
  EXPECT_GE(history.back().valPairAccuracy, 0.5);
}

TEST(RankTrainer, PairAccuracyOfUntrainedModelIsAroundChance) {
  nf::NnffModel model(tinyModelCfg());
  Rng rng(5);
  const auto pairs = nf::buildPairs(tinyDc(), 40, nf::BalanceMetric::CF, rng);
  const double acc = nf::RankTrainer::pairAccuracy(model, pairs);
  EXPECT_GE(acc, 0.2);
  EXPECT_LE(acc, 0.8);
}
