// Unit tests for the util library: RNG determinism and distribution sanity,
// argument parsing, statistics, sliding-window saturation, confusion
// matrices, and table rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace nu = netsyn::util;

// ---------------------------------------------------------------- Rng -----

TEST(Rng, SameSeedSameStream) {
  nu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  nu::Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) differences += (a() != b()) ? 1 : 0;
  EXPECT_GT(differences, 0);
}

TEST(Rng, UniformRespectsBound) {
  nu::Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformCoversAllResidues) {
  nu::Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveRange) {
  nu::Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInUnitInterval) {
  nu::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRealMeanIsCentered) {
  nu::Rng rng(9);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniformReal();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  nu::Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, RouletteProportionalSelection) {
  nu::Rng rng(17);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::array<int, 4> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.roulette(weights)];
  EXPECT_EQ(counts[2], 0);  // zero weight never selected
  EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[3] / double(n), 0.6, 0.02);
}

TEST(Rng, RouletteAllZeroFallsBackToUniform) {
  nu::Rng rng(19);
  const std::vector<double> weights = {0.0, 0.0, 0.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 3000; ++i) ++counts[rng.roulette(weights)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, RouletteNegativeWeightsTreatedAsZero) {
  nu::Rng rng(23);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.roulette(weights), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  nu::Rng rng(29);
  std::vector<int> xs = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = xs;
  rng.shuffle(xs);
  std::sort(xs.begin(), xs.end());
  EXPECT_EQ(xs, sorted);
}

TEST(Rng, ForkProducesIndependentStream) {
  nu::Rng parent(31);
  nu::Rng child = parent.fork();
  // The child stream should not just replay the parent's.
  int equal = 0;
  for (int i = 0; i < 16; ++i) equal += (parent() == child()) ? 1 : 0;
  EXPECT_LT(equal, 4);
}

// ----------------------------------------------------------- ArgParse -----

TEST(ArgParse, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--flag"};
  nu::ArgParse args(5, argv);
  EXPECT_EQ(args.getInt("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.getDouble("beta", 0.0), 4.5);
  EXPECT_TRUE(args.getBool("flag", false));
}

TEST(ArgParse, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  nu::ArgParse args(1, argv);
  EXPECT_EQ(args.getInt("missing", 7), 7);
  EXPECT_EQ(args.getString("missing", "x"), "x");
  EXPECT_FALSE(args.getBool("missing", false));
}

TEST(ArgParse, LaterOccurrenceWins) {
  const char* argv[] = {"prog", "--k=1", "--k=2"};
  nu::ArgParse args(3, argv);
  EXPECT_EQ(args.getInt("k", 0), 2);
}

TEST(ArgParse, RejectsPositional) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW(nu::ArgParse(2, argv), std::invalid_argument);
}

TEST(ArgParse, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=abc"};
  nu::ArgParse args(2, argv);
  EXPECT_THROW(args.getInt("n", 0), std::invalid_argument);
  EXPECT_THROW(args.getDouble("n", 0.0), std::invalid_argument);
  EXPECT_THROW(args.getBool("n", false), std::invalid_argument);
}

TEST(ArgParse, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1", "--d=false"};
  nu::ArgParse args(5, argv);
  EXPECT_TRUE(args.getBool("a", false));
  EXPECT_FALSE(args.getBool("b", true));
  EXPECT_TRUE(args.getBool("c", false));
  EXPECT_FALSE(args.getBool("d", true));
}

// -------------------------------------------------------------- stats -----

TEST(Stats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(nu::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(nu::mean({2, 4, 6}), 4.0);
  EXPECT_DOUBLE_EQ(nu::stddev({5}), 0.0);
  EXPECT_NEAR(nu::stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0, 1e-12);
}

TEST(Stats, MedianAndPercentiles) {
  EXPECT_DOUBLE_EQ(nu::median({1, 2, 3}), 2.0);
  EXPECT_DOUBLE_EQ(nu::median({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(nu::percentile({10, 20, 30, 40}, 0), 10.0);
  EXPECT_DOUBLE_EQ(nu::percentile({10, 20, 30, 40}, 100), 40.0);
  EXPECT_DOUBLE_EQ(nu::percentile({10, 20, 30, 40}, 50), 25.0);
  EXPECT_DOUBLE_EQ(nu::percentile({}, 50), 0.0);
}

TEST(SlidingWindowMean, TracksWindowAndPrior) {
  nu::SlidingWindowMean w(3);
  for (double v : {1.0, 2.0, 3.0}) w.push(v);
  EXPECT_DOUBLE_EQ(w.windowMean(), 2.0);
  EXPECT_DOUBLE_EQ(w.priorMean(), 0.0);
  EXPECT_FALSE(w.saturated());  // nothing precedes the window yet
  w.push(4.0);                  // window {2,3,4}, prior {1}
  EXPECT_DOUBLE_EQ(w.windowMean(), 3.0);
  EXPECT_DOUBLE_EQ(w.priorMean(), 1.0);
  EXPECT_FALSE(w.saturated());  // still improving
}

TEST(SlidingWindowMean, DetectsSaturation) {
  nu::SlidingWindowMean w(2);
  // Fitness rises then flat-lines: 5, 5, 5 -> window {5,5}, prior {5}.
  w.push(5.0);
  w.push(5.0);
  w.push(5.0);
  EXPECT_TRUE(w.saturated());
}

TEST(SlidingWindowMean, DecayCountsAsSaturated) {
  nu::SlidingWindowMean w(2);
  w.push(10.0);
  w.push(3.0);
  w.push(2.0);  // window mean 2.5 <= prior mean 10
  EXPECT_TRUE(w.saturated());
}

TEST(SlidingWindowMean, ResetClearsEverything) {
  nu::SlidingWindowMean w(2);
  w.push(1.0);
  w.push(2.0);
  w.push(3.0);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_FALSE(w.saturated());
  EXPECT_DOUBLE_EQ(w.windowMean(), 0.0);
}

TEST(SlidingWindowMean, RejectsZeroWindow) {
  EXPECT_THROW(nu::SlidingWindowMean(0), std::invalid_argument);
}

// --------------------------------------------------- ConfusionMatrix -----

TEST(ConfusionMatrix, CountsAndNormalization) {
  nu::ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(0, 1);
  cm.add(1, 1);
  cm.add(2, 2);
  EXPECT_EQ(cm.total(), 4u);
  EXPECT_EQ(cm.count(0, 1), 1u);
  EXPECT_DOUBLE_EQ(cm.rowNormalized(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(cm.rowNormalized(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.75);
}

TEST(ConfusionMatrix, WithinK) {
  nu::ConfusionMatrix cm(4);
  cm.add(0, 1);  // off by 1
  cm.add(3, 0);  // off by 3
  cm.add(2, 2);  // exact
  EXPECT_DOUBLE_EQ(cm.withinK(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.withinK(1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(cm.withinK(3), 1.0);
}

TEST(ConfusionMatrix, EmptyRowNormalizesToZero) {
  nu::ConfusionMatrix cm(2);
  EXPECT_DOUBLE_EQ(cm.rowNormalized(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(ConfusionMatrix, RejectsOutOfRange) {
  nu::ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, 5), std::out_of_range);
}

// -------------------------------------------------------------- Table -----

TEST(Table, RendersAlignedText) {
  nu::Table t({"method", "rate"});
  t.newRow().add("NetSyn").addPercent(0.94);
  t.newRow().add("DeepCoder").addPercent(0.40);
  const std::string s = t.toString();
  EXPECT_NE(s.find("method"), std::string::npos);
  EXPECT_NE(s.find("94.0%"), std::string::npos);
  EXPECT_NE(s.find("DeepCoder"), std::string::npos);
}

TEST(Table, NanRendersAsDash) {
  nu::Table t({"x"});
  t.newRow().addDouble(std::nan(""));
  EXPECT_NE(t.toString().find("-"), std::string::npos);
}

TEST(Table, CsvEscapesSpecials) {
  nu::Table t({"a", "b"});
  t.newRow().add("x,y").add("he said \"hi\"");
  const std::string csv = t.toCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RowWiderThanHeaderThrows) {
  nu::Table t({"only"});
  t.newRow().add("one");
  EXPECT_THROW(t.add("two"), std::out_of_range);
}

TEST(Table, IntFormatting) {
  nu::Table t({"n"});
  t.newRow().addInt(-42);
  EXPECT_NE(t.toString().find("-42"), std::string::npos);
}
