// Interpreter tests: type-driven argument resolution (Appendix A rules),
// default values, trace capture, and the paper's Table 1 example.
#include <gtest/gtest.h>

#include "dsl/interpreter.hpp"
#include "dsl/program.hpp"
#include "dsl/value.hpp"

namespace nd = netsyn::dsl;

namespace {

using List = std::vector<std::int32_t>;

nd::Program prog(const std::vector<std::string>& names) {
  std::vector<nd::FuncId> fns;
  for (const auto& n : names) {
    const auto id = nd::functionByName(n);
    EXPECT_TRUE(id.has_value()) << n;
    fns.push_back(*id);
  }
  return nd::Program(std::move(fns));
}

}  // namespace

TEST(Interpreter, PaperTable1Example) {
  // FILTER(>0) | MAP(*2) | SORT | REVERSE on [-2, 10, 3, -4, 5, 2]
  // must produce [20, 10, 6, 4] (paper Table 1).
  const auto p = prog({"FILTER(>0)", "MAP(*2)", "SORT", "REVERSE"});
  const auto result = nd::run(p, {nd::Value(List{-2, 10, 3, -4, 5, 2})});
  EXPECT_EQ(result.output(), nd::Value(List{20, 10, 6, 4}));
  ASSERT_EQ(result.trace.size(), 4u);
  EXPECT_EQ(result.trace[0], nd::Value(List{10, 3, 5, 2}));
  EXPECT_EQ(result.trace[1], nd::Value(List{20, 6, 10, 4}));
  EXPECT_EQ(result.trace[2], nd::Value(List{4, 6, 10, 20}));
  EXPECT_EQ(result.trace[3], nd::Value(List{20, 10, 6, 4}));
}

TEST(Interpreter, ChainsListOutputsThroughStatements) {
  const auto p = prog({"MAP(+1)", "MAP(*2)"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2})}), nd::Value(List{4, 6}));
}

TEST(Interpreter, IntArgumentComesFromMostRecentIntStatement) {
  // HEAD produces an int which TAKE must consume; TAKE's list argument is
  // the program input (most recent list producer).
  const auto p = prog({"HEAD", "TAKE"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{2, 9, 8, 7})}), nd::Value(List{2, 9}));
}

TEST(Interpreter, IntArgumentFallsBackToProgramInput) {
  const auto p = prog({"TAKE"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{5, 6, 7}), nd::Value(2)}),
            nd::Value(List{5, 6}));
}

TEST(Interpreter, MissingIntYieldsDefaultZero) {
  // No int statement and no int input: DROP receives the default 0 and the
  // list passes through unchanged (Appendix A's fourth-call example).
  const auto p = prog({"DROP"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2, 3})}), nd::Value(List{1, 2, 3}));
}

TEST(Interpreter, MissingListYieldsDefaultEmpty) {
  // Program whose only input is an int: HEAD gets the default empty list.
  const auto p = prog({"HEAD"});
  EXPECT_EQ(nd::eval(p, {nd::Value(7)}), nd::Value(0));
}

TEST(Interpreter, NoInputsAtAllUsesDefaults) {
  const auto p = prog({"SUM"});
  EXPECT_EQ(nd::eval(p, {}), nd::Value(0));
}

TEST(Interpreter, ZipWithTakesTwoMostRecentDistinctLists) {
  // MAP(+1) output zipped with the program input: (v+1) + v = 2v+1.
  const auto p = prog({"MAP(+1)", "ZIPWITH(+)"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2, 3})}), nd::Value(List{3, 5, 7}));
}

TEST(Interpreter, ZipWithReusesSoleProducerForBothSlots) {
  // First statement: the program input is the only list, so it is zipped
  // with itself (doubling).
  const auto p = prog({"ZIPWITH(+)"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2, 3})}), nd::Value(List{2, 4, 6}));
}

TEST(Interpreter, ZipWithSubtractDistinguishesSlotOrder) {
  // slot0 = most recent producer (MAP(*3) output), slot1 = program input:
  // 3v - v = 2v.
  const auto p = prog({"MAP(*3)", "ZIPWITH(-)"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2})}), nd::Value(List{2, 4}));
}

TEST(Interpreter, InputsScannedMostRecentFirst) {
  // Two inputs (list, int): SEARCH takes the int input even though the list
  // comes first positionally.
  const auto p = prog({"SEARCH"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{4, 5, 6}), nd::Value(6)}),
            nd::Value(2));
}

TEST(Interpreter, StatementOutputShadowsProgramInput) {
  // FILTER(<0) of [1,2] -> []; REVERSE must use that (empty) list, not the
  // program input.
  const auto p = prog({"FILTER(<0)", "REVERSE"});
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2})}), nd::Value(List{}));
}

TEST(Interpreter, IntStatementDoesNotShadowListResolution) {
  // SUM produces an int between the input list and REVERSE; REVERSE must
  // skip it and find the list input.
  const auto p = prog({"SUM", "INSERT"});
  // SUM([1,2,3]) = 6; INSERT(6, [1,2,3]) = [1,2,3,6].
  EXPECT_EQ(nd::eval(p, {nd::Value(List{1, 2, 3})}),
            nd::Value(List{1, 2, 3, 6}));
}

TEST(Interpreter, TraceHasOneEntryPerStatement) {
  const auto p = prog({"SORT", "REVERSE", "HEAD"});
  const auto result = nd::run(p, {nd::Value(List{3, 1, 2})});
  ASSERT_EQ(result.trace.size(), 3u);
  EXPECT_EQ(result.trace[0], nd::Value(List{1, 2, 3}));
  EXPECT_EQ(result.trace[1], nd::Value(List{3, 2, 1}));
  EXPECT_EQ(result.trace[2], nd::Value(3));
  EXPECT_EQ(result.output(), nd::Value(3));
}

TEST(Interpreter, EmptyProgramYieldsDefaultListOutput) {
  const auto result = nd::run(nd::Program{}, {nd::Value(List{1})});
  EXPECT_TRUE(result.trace.empty());
  EXPECT_EQ(result.output(), nd::Value(List{}));
}

TEST(Interpreter, SignatureOfExtractsTypes) {
  const auto sig = nd::signatureOf({nd::Value(List{1}), nd::Value(3)});
  ASSERT_EQ(sig.size(), 2u);
  EXPECT_EQ(sig[0], nd::Type::List);
  EXPECT_EQ(sig[1], nd::Type::Int);
}

TEST(ArgPlan, ResolvesSourcesStatically) {
  const auto p = prog({"HEAD", "TAKE"});
  const auto plan = nd::computeArgPlan(p, {nd::Type::List});
  ASSERT_EQ(plan.size(), 2u);
  // HEAD: one list arg <- program input 0.
  EXPECT_EQ(plan[0].arity, 1);
  EXPECT_EQ(plan[0].args[0].kind, nd::ArgSource::Kind::Input);
  EXPECT_EQ(plan[0].args[0].index, 0);
  // TAKE: int <- statement 0, list <- input 0.
  EXPECT_EQ(plan[1].arity, 2);
  EXPECT_EQ(plan[1].args[0].kind, nd::ArgSource::Kind::Statement);
  EXPECT_EQ(plan[1].args[0].index, 0);
  EXPECT_EQ(plan[1].args[1].kind, nd::ArgSource::Kind::Input);
  EXPECT_EQ(plan[1].args[1].index, 0);
}

TEST(ArgPlan, DefaultsWhenNothingMatches) {
  const auto p = prog({"DROP"});
  const auto plan = nd::computeArgPlan(p, {nd::Type::List});
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].args[0].kind, nd::ArgSource::Kind::Default);  // int arg
  EXPECT_EQ(plan[0].args[1].kind, nd::ArgSource::Kind::Input);
}

TEST(ArgPlan, ZipWithConsumesDistinctSources) {
  const auto p = prog({"MAP(+1)", "MAP(*2)", "ZIPWITH(+)"});
  const auto plan = nd::computeArgPlan(p, {nd::Type::List});
  const auto& zip = plan[2];
  EXPECT_EQ(zip.args[0].kind, nd::ArgSource::Kind::Statement);
  EXPECT_EQ(zip.args[0].index, 1);  // most recent list
  EXPECT_EQ(zip.args[1].kind, nd::ArgSource::Kind::Statement);
  EXPECT_EQ(zip.args[1].index, 0);  // second most recent
}

// Paper §4.2.1 worked example: the candidate P_r = FILTER(>0) | MAP(*2) |
// REVERSE | DROP run on [-2, 10, 3, -4, 5, 2]. With no int producer in
// scope, DROP receives the default 0 under Appendix A's rules; the first
// three trace entries match the paper's published trace exactly.
TEST(Interpreter, PaperSection421CandidateTracePrefix) {
  const auto p = prog({"FILTER(>0)", "MAP(*2)", "REVERSE", "DROP"});
  const auto result = nd::run(p, {nd::Value(List{-2, 10, 3, -4, 5, 2})});
  ASSERT_EQ(result.trace.size(), 4u);
  EXPECT_EQ(result.trace[0], nd::Value(List{10, 3, 5, 2}));
  EXPECT_EQ(result.trace[1], nd::Value(List{20, 6, 10, 4}));
  EXPECT_EQ(result.trace[2], nd::Value(List{4, 10, 6, 20}));
  // DROP(default 0) keeps the whole list; the paper's figure assumed a
  // literal 2, which the DSL grammar itself cannot express.
  EXPECT_EQ(result.trace[3], nd::Value(List{4, 10, 6, 20}));
}
