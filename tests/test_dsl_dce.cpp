// Dead-code-elimination tests: liveness analysis, effective length, and the
// semantics-preservation property DCE relies on (paper §4.2).
#include <gtest/gtest.h>

#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;

namespace {

using List = std::vector<std::int32_t>;

nd::Program prog(const std::vector<std::string>& names) {
  std::vector<nd::FuncId> fns;
  for (const auto& n : names) {
    const auto id = nd::functionByName(n);
    EXPECT_TRUE(id.has_value()) << n;
    fns.push_back(*id);
  }
  return nd::Program(std::move(fns));
}

const nd::InputSignature kListSig = {nd::Type::List};
const nd::InputSignature kListIntSig = {nd::Type::List, nd::Type::Int};

}  // namespace

TEST(Dce, StraightListChainIsFullyLive) {
  const auto p = prog({"FILTER(>0)", "MAP(*2)", "SORT", "REVERSE"});
  EXPECT_TRUE(nd::isFullyLive(p, kListSig));
  EXPECT_EQ(nd::effectiveLength(p, kListSig), 4u);
}

TEST(Dce, UnusedIntProducerIsDead) {
  // HEAD's int output is never consumed; REVERSE reads the program input.
  const auto p = prog({"HEAD", "REVERSE"});
  const auto live = nd::liveMask(p, kListSig);
  EXPECT_FALSE(live[0]);
  EXPECT_TRUE(live[1]);
  EXPECT_EQ(nd::effectiveLength(p, kListSig), 1u);
  EXPECT_FALSE(nd::isFullyLive(p, kListSig));
}

TEST(Dce, IntProducerConsumedLaterIsLive) {
  const auto p = prog({"HEAD", "TAKE"});
  EXPECT_TRUE(nd::isFullyLive(p, kListSig));
}

TEST(Dce, LastStatementIsAlwaysLive) {
  const auto p = prog({"SUM"});
  EXPECT_TRUE(nd::liveMask(p, kListSig)[0]);
}

TEST(Dce, ShadowedListProducerIsDead) {
  // SORT's output is immediately replaced by FILTER which reads it, so SORT
  // is live; but a list producer whose output is recomputed from the input
  // and never read is dead:
  //   MAP(+1) ; REVERSE reads MAP's output -> both live.
  //   With ZIPWITH in between both of the two most recent lists are read.
  // Construct actual dead case: three list producers feeding a unary
  // consumer - only the most recent is read, the two older ones feed
  // nothing... except the chain: MAP(+1) reads input, MAP(*2) reads MAP(+1),
  // SORT reads MAP(*2). A truly dead list producer needs a *branch*, which
  // needs an int in between:
  //   SORT ; SUM ; REVERSE
  // REVERSE reads SORT's output? No: most recent list before REVERSE is
  // SORT (SUM produced an int). SUM reads SORT too. SUM's int is unused and
  // not last -> SUM dead; SORT and REVERSE live.
  const auto p = prog({"SORT", "SUM", "REVERSE"});
  const auto live = nd::liveMask(p, kListSig);
  EXPECT_TRUE(live[0]);
  EXPECT_FALSE(live[1]);
  EXPECT_TRUE(live[2]);
}

TEST(Dce, TransitivelyDeadChain) {
  // MAXIMUM produces an int consumed only by a dead statement's chain:
  // MAXIMUM ; INSERT ; ... where INSERT's list is never used afterwards and
  // is not last. Final REVERSE reads INSERT's output though (most recent
  // list), so to kill the chain the final statement must produce from
  // something else... an int-returning final: MAXIMUM ; INSERT ; SUM.
  // SUM reads INSERT's list -> INSERT live -> MAXIMUM live. All live.
  const auto p1 = prog({"MAXIMUM", "INSERT", "SUM"});
  EXPECT_TRUE(nd::isFullyLive(p1, kListSig));

  // Whereas: MAXIMUM ; SUM -> SUM (last, live) reads the *input* list;
  // MAXIMUM's int is unused -> dead.
  const auto p2 = prog({"MAXIMUM", "SUM"});
  const auto live = nd::liveMask(p2, kListSig);
  EXPECT_FALSE(live[0]);
  EXPECT_TRUE(live[1]);
}

TEST(Dce, EliminationRemovesExactlyDeadStatements) {
  const auto p = prog({"HEAD", "REVERSE"});
  const auto cleaned = nd::eliminateDeadCode(p, kListSig);
  EXPECT_EQ(cleaned, prog({"REVERSE"}));
}

TEST(Dce, EliminationOnFullyLiveProgramIsIdentity) {
  const auto p = prog({"FILTER(>0)", "MAP(*2)", "SORT"});
  EXPECT_EQ(nd::eliminateDeadCode(p, kListSig), p);
}

TEST(Dce, EmptyProgramHasNoLiveStatements) {
  EXPECT_EQ(nd::effectiveLength(nd::Program{}, kListSig), 0u);
  EXPECT_TRUE(nd::isFullyLive(nd::Program{}, kListSig));
}

TEST(Dce, SignatureChangesLiveness) {
  // With a (list,int) signature TAKE's int comes from the input; a preceding
  // int-producing statement is still preferred (more recent), so HEAD stays
  // live. But with DELETE after SUM and an int input, SUM is the most
  // recent int producer -> live either way. Liveness must be computed under
  // the same signature the GA evaluates with.
  const auto p = prog({"MAXIMUM", "SUM"});
  EXPECT_FALSE(nd::liveMask(p, kListSig)[0]);
  EXPECT_FALSE(nd::liveMask(p, kListIntSig)[0]);
}

// Property: eliminating dead code never changes program semantics.
class DcePreservesSemantics : public ::testing::TestWithParam<int> {};

TEST_P(DcePreservesSemantics, OnRandomPrograms) {
  netsyn::util::Rng rng(1000 + GetParam());
  const nd::Generator gen;
  for (int iter = 0; iter < 60; ++iter) {
    const auto sig = gen.randomSignature(rng);
    // Unconstrained random function sequences (may contain dead code).
    std::vector<nd::FuncId> fns;
    const auto len = 1 + rng.uniform(8);
    for (std::uint64_t i = 0; i < len; ++i)
      fns.push_back(static_cast<nd::FuncId>(rng.uniform(nd::kNumFunctions)));
    const nd::Program p(std::move(fns));
    const auto cleaned = nd::eliminateDeadCode(p, sig);
    EXPECT_LE(cleaned.length(), p.length());
    EXPECT_TRUE(nd::isFullyLive(cleaned, sig));
    for (int rep = 0; rep < 5; ++rep) {
      const auto inputs = gen.randomInputs(sig, rng);
      EXPECT_EQ(nd::eval(p, inputs), nd::eval(cleaned, inputs))
          << "program: " << p.toString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcePreservesSemantics, ::testing::Range(0, 8));
