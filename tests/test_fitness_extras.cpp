// Tests for the §5.3.1 additional fitness designs: two-tier gate/value and
// the bigram pair model.
#include <gtest/gtest.h>

#include "fitness/dataset.hpp"
#include "fitness/extras.hpp"
#include "fitness/trainer.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

nf::NnffConfig tinyConfig(nf::HeadKind head, std::size_t numClasses = 5,
                          bool useTrace = true,
                          std::size_t multilabelDim = 0) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 8;
  cfg.hiddenDim = 12;
  cfg.numClasses = numClasses;
  cfg.maxExamples = 3;
  cfg.head = head;
  cfg.useTrace = useTrace;
  cfg.multilabelDim = multilabelDim;
  cfg.seed = 42;
  return cfg;
}

std::vector<nf::Sample> tinyDataset(std::size_t n, std::uint64_t seed) {
  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 3;
  nf::DatasetBuilder builder(dc);
  Rng rng(seed);
  return builder.build(n, nf::BalanceMetric::CF, rng);
}

nf::EvalContext contextFor(const nf::Sample& s,
                           std::vector<nd::ExecResult>& runs) {
  runs.clear();
  for (const auto& ex : s.spec.examples)
    runs.push_back(nd::run(s.candidate, ex.inputs));
  return nf::EvalContext{s.spec, runs};
}

}  // namespace

// ----------------------------------------------------------- bigram -------

TEST(BigramTargets, MarksAdjacentPairs) {
  const auto p = nd::Program::fromString("SORT | REVERSE | SORT");
  ASSERT_TRUE(p.has_value());
  const auto targets = nf::bigramTargets(*p);
  ASSERT_EQ(targets.size(), nf::kBigramDim);
  const auto sortId = std::size_t(*nd::functionByName("SORT"));
  const auto revId = std::size_t(*nd::functionByName("REVERSE"));
  EXPECT_EQ(targets[sortId * nd::kNumFunctions + revId], 1.0f);
  EXPECT_EQ(targets[revId * nd::kNumFunctions + sortId], 1.0f);
  EXPECT_EQ(targets[sortId * nd::kNumFunctions + sortId], 0.0f);
  float total = 0;
  for (float t : targets) total += t;
  EXPECT_EQ(total, 2.0f);  // two distinct adjacent pairs
}

TEST(BigramTargets, EmptyAndSingletonProgramsHaveNoPairs) {
  const auto empty = nf::bigramTargets(nd::Program{});
  for (float t : empty) EXPECT_EQ(t, 0.0f);
  const auto single =
      nf::bigramTargets(*nd::Program::fromString("SORT"));
  for (float t : single) EXPECT_EQ(t, 0.0f);
}

TEST(BigramFitness, ScoresSumOfPairProbabilities) {
  auto model = std::make_shared<nf::NnffModel>(tinyConfig(
      nf::HeadKind::Multilabel, 5, false, nf::kBigramDim));
  nf::BigramFitness fit(model);
  const auto set = tinyDataset(2, 1);
  const auto& s = set.front();
  std::vector<nd::ExecResult> runs;
  const auto ctx = contextFor(s, runs);
  const auto& map = fit.pairMap(s.spec);
  ASSERT_EQ(map.size(), nf::kBigramDim);
  double expected = 0.0;
  for (std::size_t k = 0; k + 1 < s.candidate.length(); ++k) {
    expected += map[std::size_t(s.candidate.at(k)) * nd::kNumFunctions +
                    std::size_t(s.candidate.at(k + 1))];
  }
  EXPECT_NEAR(fit.score(s.candidate, ctx), expected, 1e-9);
  EXPECT_DOUBLE_EQ(fit.maxScore(5), 4.0);
  EXPECT_DOUBLE_EQ(fit.maxScore(0), 0.0);
}

TEST(BigramFitness, RejectsWrongModels) {
  auto fp = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Multilabel, 5, false, 0));
  EXPECT_THROW(nf::BigramFitness{fp}, std::invalid_argument);
  auto cls = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier));
  EXPECT_THROW(nf::BigramFitness{cls}, std::invalid_argument);
}

TEST(BigramFitness, PairMapCachedPerSpec) {
  auto model = std::make_shared<nf::NnffModel>(tinyConfig(
      nf::HeadKind::Multilabel, 5, false, nf::kBigramDim));
  nf::BigramFitness fit(model);
  const auto set = tinyDataset(2, 2);
  const auto& a = fit.pairMap(set[0].spec);
  const auto* ptr = &a;
  const auto& b = fit.pairMap(set[0].spec);
  EXPECT_EQ(ptr, &b);  // same cached vector
}

TEST(BigramTraining, LossDecreases) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Multilabel, 5, false,
                                 nf::kBigramDim));
  const auto trainSet = tinyDataset(60, 3);
  nf::TrainConfig tc;
  tc.epochs = 2;
  tc.learningRate = 5e-3f;
  nf::Trainer trainer(tc);
  const auto history = trainer.train(model, trainSet, trainSet);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
  // >99% of pair labels are zero, so accuracy starts very high; it must at
  // least not degrade.
  EXPECT_GT(history.back().valAccuracy, 0.95);
}

// ---------------------------------------------------------- two-tier ------

TEST(TwoTier, RequiresProperHeads) {
  auto gate2 = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier, 2));
  auto value = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier, 5));
  EXPECT_NO_THROW(nf::TwoTierFitness(gate2, value));
  // Gate with the wrong class count:
  EXPECT_THROW(nf::TwoTierFitness(value, value), std::invalid_argument);
  auto reg = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Regression));
  EXPECT_THROW(nf::TwoTierFitness(gate2, reg), std::invalid_argument);
}

TEST(TwoTier, ScoreIsZeroWhenGateSaysZero) {
  auto gate = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier, 2));
  auto value = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier, 5));
  nf::TwoTierFitness fit(gate, value);
  const auto set = tinyDataset(4, 4);
  for (const auto& s : set) {
    std::vector<nd::ExecResult> runs;
    const auto ctx = contextFor(s, runs);
    const double p = fit.gateProbability(s.candidate, ctx);
    const double score = fit.score(s.candidate, ctx);
    if (p < 0.5) {
      EXPECT_DOUBLE_EQ(score, 0.0);
    } else {
      EXPECT_GE(score, 0.0);
      EXPECT_LE(score, 4.0);
    }
  }
}

TEST(TwoTier, GateTrainingUsesBinaryLabels) {
  nf::NnffModel gate(tinyConfig(nf::HeadKind::Classifier, 2));
  nf::TrainConfig tc;
  tc.labelTransform = nf::LabelTransform::ZeroVsNonzero;
  nf::Trainer trainer(tc);
  const auto set = tinyDataset(10, 5);
  for (const auto& s : set) {
    const auto label = trainer.classLabel(gate, s);
    EXPECT_EQ(label, s.cf == 0 ? 0u : 1u);
  }
}

TEST(TwoTier, GateLearnsZeroVsNonzero) {
  nf::NnffModel gate(tinyConfig(nf::HeadKind::Classifier, 2));
  const auto trainSet = tinyDataset(150, 6);
  const auto valSet = tinyDataset(40, 7);
  nf::TrainConfig tc;
  tc.epochs = 3;
  tc.learningRate = 1e-2f;
  tc.labelTransform = nf::LabelTransform::ZeroVsNonzero;
  nf::Trainer trainer(tc);
  const auto history = trainer.train(gate, trainSet, valSet);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
}
