// Additional NN tests: stacked-LSTM encodeAll, inference-mode guard
// semantics, and trainer determinism.
#include <gtest/gtest.h>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"
#include "fitness/trainer.hpp"
#include "nn/layers.hpp"
#include "util/rng.hpp"

namespace nf = netsyn::fitness;
namespace nn = netsyn::nn;
using netsyn::util::Rng;

TEST(LstmEncodeAll, EmitsOneHiddenPerStepAndLastMatchesEncode) {
  Rng rng(1);
  nn::ParamStore store;
  nn::Lstm lstm(3, 5, store, rng);
  std::vector<nn::Var> seq;
  for (int i = 0; i < 4; ++i)
    seq.push_back(nn::constant(nn::Matrix(1, 3, 0.2f * float(i + 1))));
  nn::InferenceModeGuard guard;
  const auto all = lstm.encodeAll(seq);
  ASSERT_EQ(all.size(), 4u);
  const auto last = lstm.encode(seq);
  EXPECT_EQ(all.back()->value(), last->value());
  // Hidden states evolve step to step.
  EXPECT_NE(all[0]->value(), all[1]->value());
}

TEST(LstmEncodeAll, EmptySequenceGivesNoOutputs) {
  Rng rng(2);
  nn::ParamStore store;
  nn::Lstm lstm(3, 5, store, rng);
  EXPECT_TRUE(lstm.encodeAll({}).empty());
}

TEST(InferenceMode, GuardIsScopedAndNests) {
  EXPECT_FALSE(nn::inferenceModeEnabled());
  {
    nn::InferenceModeGuard g1;
    EXPECT_TRUE(nn::inferenceModeEnabled());
    {
      nn::InferenceModeGuard g2;
      EXPECT_TRUE(nn::inferenceModeEnabled());
    }
    EXPECT_TRUE(nn::inferenceModeEnabled());
  }
  EXPECT_FALSE(nn::inferenceModeEnabled());
}

TEST(InferenceMode, NodesCarryNoParents) {
  auto a = nn::parameter(nn::Matrix(1, 2, 1.0f));
  auto b = nn::parameter(nn::Matrix(1, 2, 2.0f));
  {
    nn::InferenceModeGuard guard;
    const auto sum = nn::add(a, b);
    EXPECT_TRUE(sum->parents().empty());
    EXPECT_FALSE(sum->requiresGrad());
    EXPECT_EQ(sum->value().at(0), 3.0f);
  }
  const auto sum = nn::add(a, b);
  EXPECT_EQ(sum->parents().size(), 2u);
}

TEST(InferenceMode, ValuesIdenticalWithAndWithoutGraph) {
  Rng rng(3);
  nn::ParamStore store;
  nn::Lstm lstm(4, 6, store, rng);
  std::vector<nn::Var> seq = {nn::constant(nn::Matrix(1, 4, 0.3f)),
                              nn::constant(nn::Matrix(1, 4, -0.1f))};
  const auto graph = lstm.encode(seq);
  nn::Matrix inferred;
  {
    nn::InferenceModeGuard guard;
    inferred = lstm.encode(seq)->value();
  }
  EXPECT_EQ(graph->value(), inferred);
}

TEST(Trainer, SameSeedSameTrainingTrajectory) {
  auto makeModel = [] {
    nf::NnffConfig cfg;
    cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
    cfg.embedDim = 6;
    cfg.hiddenDim = 8;
    cfg.numClasses = 5;
    cfg.maxExamples = 2;
    cfg.seed = 11;
    return std::make_unique<nf::NnffModel>(cfg);
  };
  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 2;
  nf::DatasetBuilder builder(dc);
  Rng rng(21);
  const auto set = builder.build(24, nf::BalanceMetric::CF, rng);

  nf::TrainConfig tc;
  tc.epochs = 2;
  tc.shuffleSeed = 5;
  nf::Trainer trainer(tc);
  auto m1 = makeModel();
  auto m2 = makeModel();
  const auto h1 = trainer.train(*m1, set, {});
  const auto h2 = trainer.train(*m2, set, {});
  ASSERT_EQ(h1.size(), h2.size());
  for (std::size_t i = 0; i < h1.size(); ++i)
    EXPECT_DOUBLE_EQ(h1[i].trainLoss, h2[i].trainLoss);
  // Resulting weights are bitwise identical.
  for (std::size_t p = 0; p < m1->params().params().size(); ++p)
    EXPECT_EQ(m1->params().params()[p]->value(),
              m2->params().params()[p]->value());
}

TEST(Trainer, EmptyTrainingSetThrows) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 6;
  cfg.hiddenDim = 8;
  nf::NnffModel model(cfg);
  nf::Trainer trainer;
  EXPECT_THROW(trainer.train(model, {}, {}), std::invalid_argument);
}
