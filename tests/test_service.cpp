// Synthesis-service tests: the daemon's jobs must be bit-identical to
// one-shot runs (that is the whole point of serving from warm caches —
// latency changes, results must not), cancellation must not bleed into
// other jobs, checkpoints must resume onto the exact trajectory, and the
// cross-request caches must demonstrably warm up.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <thread>

#include "core/search_state.hpp"
#include "fitness/edit.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/json.hpp"

namespace nc = netsyn::core;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
namespace ns = netsyn::service;
namespace nu = netsyn::util;

namespace {

/// Small but non-trivial workload: a couple of length-3 searches finish in
/// well under a second while still running enough generations to exercise
/// caches, NS, and checkpoints.
nh::ExperimentConfig tinyConfig(std::uint64_t seed = 7,
                                std::size_t budget = 600) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {3};
  cfg.programsPerLength = 2;
  cfg.examplesPerProgram = 3;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = budget;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.ga.eliteCount = 2;
  cfg.synthesizer.maxGenerations = 150;
  cfg.seed = seed;
  return cfg;
}

/// A job that runs long enough to be cancelled/paused mid-search.
nh::ExperimentConfig longConfig(std::uint64_t seed = 11) {
  auto cfg = tinyConfig(seed, 100000);
  cfg.programLengths = {5};
  cfg.synthesizer.maxGenerations = 100000;
  return cfg;
}

/// One-shot reference: the PR 1 sequential runner over the same config.
nh::MethodReport oneShot(const nh::ExperimentConfig& cfg,
                         const std::string& method) {
  ns::ModelStore store;
  const auto m = ns::makeOneShotMethod(method, cfg, store);
  return nh::runMethod(*m, nh::makeFullWorkload(cfg), cfg, /*verbose=*/false);
}

void expectMatchesOneShot(const ns::JobStatus& job,
                          const nh::MethodReport& report) {
  ASSERT_EQ(job.state, ns::JobState::Done);
  ASSERT_EQ(job.tasks.size(), job.tasksTotal);
  // Report dimensions must survive the terminal-job storage trim.
  EXPECT_EQ(job.programs, report.programs.size());
  EXPECT_GT(job.runsPerProgram, 0u);
  for (const ns::TaskRecord& t : job.tasks) {
    ASSERT_LT(t.program, report.programs.size());
    ASSERT_LT(t.run, report.programs[t.program].runs.size());
    const nh::RunRecord& r = report.programs[t.program].runs[t.run];
    EXPECT_EQ(t.found, r.found) << "p=" << t.program << " k=" << t.run;
    EXPECT_EQ(t.candidates, r.candidates)
        << "p=" << t.program << " k=" << t.run;
    EXPECT_EQ(t.generations, r.generations)
        << "p=" << t.program << " k=" << t.run;
  }
}

}  // namespace

// ------------------------------------------------- determinism ------------

TEST(Service, ConcurrentJobsBitIdenticalToOneShotRuns) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 3, .resultCache = true});
  const std::uint64_t seeds[] = {7, 8, 9};
  std::vector<std::uint64_t> ids;
  for (std::uint64_t s : seeds) ids.push_back(svc.submit(tinyConfig(s), "Edit"));
  // All three jobs in flight at once on the shared pool; each must still
  // report exactly what a lone sequential run reports.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ns::JobStatus done = svc.wait(ids[i]);
    expectMatchesOneShot(done, oneShot(tinyConfig(seeds[i]), "Edit"));
  }
}

TEST(Service, OracleJobMatchesOneShot) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 2});
  const auto cfg = tinyConfig(21);
  const ns::JobStatus done = svc.wait(svc.submit(cfg, "Oracle_LCS"));
  expectMatchesOneShot(done, oneShot(cfg, "Oracle_LCS"));
}

TEST(Service, IslandsStrategyJobMatchesOneShot) {
  auto cfg = tinyConfig(31, 1200);
  cfg.synthesizer.strategy = nc::SearchStrategy::Islands;
  cfg.synthesizer.islands.count = 2;
  cfg.synthesizer.islands.migrationInterval = 3;
  ns::SynthService svc(ns::ServiceConfig{.workers = 2});
  const ns::JobStatus done = svc.wait(svc.submit(cfg, "Edit"));
  expectMatchesOneShot(done, oneShot(cfg, "Edit"));
}

// ------------------------------------------------- cancellation -----------

TEST(Service, CancelFreesTheWorkerWithoutCorruptingOtherJobs) {
  // One worker: the long job occupies it, the tiny job queues behind.
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  const std::uint64_t big = svc.submit(longConfig(), "Edit");
  const auto smallCfg = tinyConfig(5);
  const std::uint64_t small = svc.submit(smallCfg, "Edit");

  EXPECT_TRUE(svc.cancel(big));
  const ns::JobStatus cancelled = svc.wait(big);
  EXPECT_EQ(cancelled.state, ns::JobState::Cancelled);
  EXPECT_LT(cancelled.tasksDone, cancelled.tasksTotal);
  EXPECT_FALSE(svc.cancel(big));  // already terminal

  // The queued job proceeds and is unaffected by its neighbour's death.
  expectMatchesOneShot(svc.wait(small), oneShot(smallCfg, "Edit"));
}

// ------------------------------------------------- checkpoint/resume ------

TEST(SearchStateSnapshot, ResumedCheckpointFinishesWithTheSameWinner) {
  const auto cfg = tinyConfig(3, 2000);
  const auto workload = nh::makeFullWorkload(cfg);
  const nh::TestProgram& tp = workload[1];
  const auto sc = nh::methodSearchConfig(cfg, "Edit");
  const auto fit = std::make_shared<nf::EditDistanceFitness>();

  // Uninterrupted reference run.
  netsyn::util::Rng rngA = nh::runSeedRng(cfg, 1, 0);
  nc::SearchBudget budgetA(cfg.searchBudget);
  nc::SearchState stateA(sc, fit, nullptr, tp.spec, tp.length, budgetA, rngA);
  auto statusA = stateA.seed();
  while (statusA == nc::SearchState::Status::Running) statusA = stateA.step();
  const nc::SynthesisResult expected = stateA.finish();

  // Same search, frozen after three generations and rebuilt from the
  // snapshot (fresh budget, copied rng, fresh executor).
  netsyn::util::Rng rngB = nh::runSeedRng(cfg, 1, 0);
  std::optional<nc::SynthesisResult> resumedResult;
  {
    nc::SearchBudget budgetB(cfg.searchBudget);
    nc::SearchState stateB(sc, fit, nullptr, tp.spec, tp.length, budgetB,
                           rngB);
    auto statusB = stateB.seed();
    std::size_t steps = 0;
    while (statusB == nc::SearchState::Status::Running && steps < 3) {
      statusB = stateB.step();
      ++steps;
    }
    if (statusB != nc::SearchState::Status::Running) {
      // Degenerate seed (solved in < 3 generations): the snapshot pin is
      // vacuous, but equality must still hold.
      resumedResult = stateB.finish();
    } else {
      ASSERT_GE(steps, 3u) << "config too easy to pin checkpointing";
      const nc::SearchState::Snapshot snap = stateB.snapshot();
      netsyn::util::Rng rngC = rngB;  // the checkpointed generator copy
      nc::SearchBudget budgetC =
          nc::SearchBudget::resumed(snap.budgetLimit, snap.budgetUsed);
      nc::SearchState stateC(snap, fit, nullptr, tp.spec, budgetC, rngC);
      auto statusC = nc::SearchState::Status::Running;
      while (statusC == nc::SearchState::Status::Running)
        statusC = stateC.step();
      resumedResult = stateC.finish();
    }
  }

  EXPECT_EQ(resumedResult->found, expected.found);
  EXPECT_EQ(resumedResult->candidatesSearched, expected.candidatesSearched);
  EXPECT_EQ(resumedResult->generations, expected.generations);
  EXPECT_EQ(resumedResult->nsInvocations, expected.nsInvocations);
  EXPECT_DOUBLE_EQ(resumedResult->bestFitness, expected.bestFitness);
  if (expected.found)
    EXPECT_EQ(resumedResult->solution.functions(),
              expected.solution.functions());
}

TEST(Service, PauseResumeJobMatchesOneShot) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 2});
  const auto cfg = tinyConfig(13, 4000);
  const std::uint64_t id = svc.submit(cfg, "Edit");
  // Pause may land before, during, or after the tasks — every interleaving
  // must end in the same report.
  if (svc.pause(id)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(svc.resume(id));
  }
  expectMatchesOneShot(svc.wait(id), oneShot(cfg, "Edit"));
}

TEST(Service, PausedLongJobCheckpointsAndResumes) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  const std::uint64_t id = svc.submit(longConfig(17), "Edit");
  // Pause only once a worker is actually mid-search — pausing a still-
  // queued job parks its tasks without a checkpoint, which is legal but
  // not the path this test pins.
  for (int i = 0; i < 200 && svc.status(id).state == ns::JobState::Queued;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(svc.status(id).state, ns::JobState::Running);
  ASSERT_TRUE(svc.pause(id));
  // The in-flight task parks at its next generation boundary.
  for (int i = 0; i < 200 && svc.stats().checkpointsTaken == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(svc.stats().checkpointsTaken, 0u);
  EXPECT_EQ(svc.status(id).state, ns::JobState::Paused);
  EXPECT_TRUE(svc.resume(id));
  EXPECT_TRUE(svc.cancel(id));  // don't wait out the 100k budget
  EXPECT_EQ(svc.wait(id).state, ns::JobState::Cancelled);
}

// ------------------------------------------------- cross-request caches ---

TEST(Service, IdenticalResubmissionHitsTheResultCache) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 1, .resultCache = true});
  const auto cfg = tinyConfig(19);
  const ns::JobStatus first = svc.wait(svc.submit(cfg, "Edit"));
  const ns::JobStatus second = svc.wait(svc.submit(cfg, "Edit"));
  EXPECT_FALSE(first.fromCache);
  EXPECT_TRUE(second.fromCache);
  EXPECT_EQ(svc.stats().resultCacheHits, 1u);
  ASSERT_EQ(second.tasks.size(), first.tasks.size());
  for (std::size_t i = 0; i < first.tasks.size(); ++i) {
    EXPECT_EQ(second.tasks[i].found, first.tasks[i].found);
    EXPECT_EQ(second.tasks[i].candidates, first.tasks[i].candidates);
  }
}

TEST(Service, SecondSubmissionOfIdenticalSpecReportsWarmPlanCache) {
  // Result memo off: the second job really searches — through the worker's
  // persistent executor, whose plan cache the first job already filled.
  ns::SynthService svc(ns::ServiceConfig{.workers = 1, .resultCache = false});
  const auto cfg = tinyConfig(23, 400);
  const ns::JobStatus first = svc.wait(svc.submit(cfg, "Edit"));
  const ns::JobStatus second = svc.wait(svc.submit(cfg, "Edit"));
  EXPECT_FALSE(second.fromCache);
  ASSERT_GT(first.planCompiles, 0u);
  // Identical trajectory, warm cache: the rerun compiles (almost) nothing.
  EXPECT_LT(second.planCompiles * 2, first.planCompiles);
  EXPECT_GT(second.planHits(), 0u);
  // And the results are still bit-identical to the cold run.
  ASSERT_EQ(second.tasks.size(), first.tasks.size());
  for (std::size_t i = 0; i < first.tasks.size(); ++i) {
    EXPECT_EQ(second.tasks[i].found, first.tasks[i].found);
    EXPECT_EQ(second.tasks[i].candidates, first.tasks[i].candidates);
    EXPECT_EQ(second.tasks[i].generations, first.tasks[i].generations);
  }
}

// ------------------------------------------------- API edges --------------

TEST(Service, UnknownJobAndMethodAreLoud) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  EXPECT_THROW(svc.status(999), std::out_of_range);
  EXPECT_THROW(svc.wait(999), std::out_of_range);
  EXPECT_THROW(svc.submit(tinyConfig(), "PushGP"), std::invalid_argument);
  EXPECT_THROW(svc.submit(tinyConfig(), "edit"), std::invalid_argument);
}

TEST(Service, ShutdownCancelsOutstandingJobs) {
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  const std::uint64_t id = svc.submit(longConfig(29), "Edit");
  svc.shutdown();
  EXPECT_EQ(svc.status(id).state, ns::JobState::Cancelled);
  EXPECT_THROW(svc.submit(tinyConfig(), "Edit"), std::runtime_error);
  svc.shutdown();  // idempotent
}

// ------------------------------------------------- protocol ---------------

namespace {

std::vector<nu::JsonValue> runSession(const std::string& requests,
                                      std::size_t workers = 2) {
  ns::SynthService svc(ns::ServiceConfig{.workers = workers});
  std::istringstream in(requests);
  std::ostringstream out;
  ns::serveLines(svc, in, out);
  std::vector<nu::JsonValue> responses;
  std::istringstream lines(out.str());
  std::string line;
  while (std::getline(lines, line))
    if (!line.empty()) responses.push_back(nu::parseJson(line));
  return responses;
}

bool okOf(const nu::JsonValue& v) {
  const nu::JsonValue* ok = v.find("ok");
  return ok && ok->kind == nu::JsonValue::Kind::Bool && ok->boolean;
}

}  // namespace

TEST(ServiceProtocol, FullSessionOverLines) {
  const auto cfg = tinyConfig(37);
  std::ostringstream script;
  script << "{\"op\": \"ping\"}\n"
         << "not json at all\n"
         << "{\"op\": \"status\", \"job\": 42}\n"
         << "{\"op\": \"submit\", \"method\": \"Edit\", \"config\": "
         << cfg.toJson() << "}\n"
         << "{\"op\": \"wait\", \"job\": 1}\n"
         << "{\"op\": \"stats\"}\n"
         << "{\"op\": \"nonsense\"}\n"
         << "{\"op\": \"shutdown\"}\n";
  const auto responses = runSession(script.str());
  ASSERT_EQ(responses.size(), 8u);

  EXPECT_TRUE(okOf(responses[0]));   // ping
  EXPECT_FALSE(okOf(responses[1]));  // garbage line -> error, session lives
  EXPECT_FALSE(okOf(responses[2]));  // unknown job
  ASSERT_TRUE(okOf(responses[3]));   // submit echoes the job status
  EXPECT_EQ(nu::jsonUnsigned(*responses[3].find("job"), "job"), 1u);

  const nu::JsonValue& done = responses[4];
  ASSERT_TRUE(okOf(done));
  std::string state;
  nu::readString(done, "state", state);
  EXPECT_EQ(state, "done");
  const nu::JsonValue* tasks = done.find("tasks");
  ASSERT_NE(tasks, nullptr);
  EXPECT_EQ(tasks->items.size(),
            cfg.programsPerLength * cfg.runsPerProgram);
  // The terminal response carries the derived report aggregates.
  EXPECT_NE(done.find("synthesized_fraction"), nullptr);
  EXPECT_NE(done.find("plan_hits"), nullptr);

  ASSERT_TRUE(okOf(responses[5]));  // stats
  EXPECT_EQ(nu::jsonUnsigned(*responses[5].find("jobs_submitted"), "n"), 1u);
  EXPECT_FALSE(okOf(responses[6]));  // unknown op
  EXPECT_TRUE(okOf(responses[7]));   // shutdown
}

TEST(ServiceProtocol, WaitOnAPausedJobReturnsInsteadOfDeadlocking) {
  // serveLines handles requests strictly sequentially, so the resume that
  // would finish a paused job can only come from this same session: a
  // blocking wait here would hang the daemon forever.
  std::ostringstream script;
  script << "{\"op\": \"submit\", \"method\": \"Edit\", \"config\": "
         << longConfig(41).toJson() << "}\n"
         << "{\"op\": \"pause\", \"job\": 1}\n"
         << "{\"op\": \"wait\", \"job\": 1}\n"
         << "{\"op\": \"cancel\", \"job\": 1}\n"
         << "{\"op\": \"wait\", \"job\": 1}\n"
         << "{\"op\": \"shutdown\"}\n";
  const auto responses = runSession(script.str(), 1);
  ASSERT_EQ(responses.size(), 6u);
  ASSERT_TRUE(okOf(responses[2]));  // wait returned — no deadlock
  std::string state;
  nu::readString(responses[2], "state", state);
  EXPECT_EQ(state, "paused");
  nu::readString(responses[4], "state", state);
  EXPECT_EQ(state, "cancelled");
}

TEST(ServiceProtocol, SubmitValidatesConfigAndMethod) {
  const auto responses = runSession(
      "{\"op\": \"submit\", \"method\": \"Edit\"}\n"
      "{\"op\": \"submit\", \"method\": \"Nope\", \"config\": {}}\n"
      "{\"op\": \"submit\", \"method\": \"Edit\", \"config\": "
      "{\"synthesizer\": {\"population_size\": 0}}}\n"
      "{\"op\": \"shutdown\"}\n",
      1);
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_FALSE(okOf(responses[0]));  // missing config
  EXPECT_FALSE(okOf(responses[1]));  // unknown method
  EXPECT_FALSE(okOf(responses[2]));  // invalid config value
  EXPECT_TRUE(okOf(responses[3]));
}
