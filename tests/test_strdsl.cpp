// The string-manipulation domain: op semantics, vocabulary structure,
// generation, NN encodings, and an end-to-end synthesis solve. Strings are
// char-code lists, so everything runs through the shared Value/ExecPlan
// machinery — these tests also pin that the shared interpreter treats the
// extended function table correctly (plan cache, DCE, totality).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "dsl/dce.hpp"
#include "dsl/domain.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/edit.hpp"
#include "fitness/neural_fitness.hpp"
#include "harness/config.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
using netsyn::util::Rng;

namespace {

nd::Value str(const std::string& s) {
  std::vector<std::int32_t> xs(s.begin(), s.end());
  return nd::Value(std::move(xs));
}

std::string text(const nd::Value& v) {
  std::string out;
  for (std::int32_t c : v.asList()) out += static_cast<char>(c);
  return out;
}

/// applyFunction by display name on string-ish arguments.
nd::Value apply(const std::string& name, std::vector<nd::Value> args) {
  const auto id = nd::functionByName(name);
  EXPECT_TRUE(id.has_value()) << name;
  return nd::applyFunction(*id, args);
}

}  // namespace

// ---- op semantics -----------------------------------------------------------

TEST(StrOps, CaseAndShapeOps) {
  EXPECT_EQ(text(apply("STR.UPPER", {str("a b-C3!")})), "A B-C3!");
  EXPECT_EQ(text(apply("STR.LOWER", {str("Ab CD")})), "ab cd");
  EXPECT_EQ(text(apply("STR.TITLE", {str("heLLo  woRLD x")})),
            "Hello  World X");
  EXPECT_EQ(text(apply("STR.CAPITALIZE", {str("hELLO wORLD")})),
            "Hello world");
  EXPECT_EQ(text(apply("STR.TRIM", {str("  pad ded  ")})), "pad ded");
  EXPECT_EQ(text(apply("STR.REVERSE", {str("abc")})), "cba");
  EXPECT_EQ(text(apply("STR.SQUEEZE", {str("a   b  c")})), "a b c");
  EXPECT_EQ(text(apply("STR.HYPHENATE", {str("a b  c")})), "a-b--c");
}

TEST(StrOps, WordOps) {
  EXPECT_EQ(text(apply("STR.FIRSTWORD", {str("  one two three ")})), "one");
  EXPECT_EQ(text(apply("STR.LASTWORD", {str("one two three  ")})), "three");
  EXPECT_EQ(text(apply("STR.INITIALS", {str("John Ronald Reuel")})), "JRR");
  EXPECT_EQ(apply("STR.WORDS", {str(" a  bb ccc ")}).asInt(), 3);
  EXPECT_EQ(apply("STR.WORDS", {str("   ")}).asInt(), 0);
  EXPECT_EQ(text(apply("STR.WORD", {nd::Value(1), str("aa bb cc")})), "bb");
  EXPECT_EQ(text(apply("STR.WORD", {nd::Value(7), str("aa bb")})), "");
  EXPECT_EQ(text(apply("STR.WORD", {nd::Value(-1), str("aa bb")})), "");
  EXPECT_EQ(text(apply("STR.FIRSTWORD", {str("")})), "");
  EXPECT_EQ(text(apply("STR.LASTWORD", {str("  ")})), "");
}

TEST(StrOps, FilterAndIndexOps) {
  EXPECT_EQ(text(apply("STR.ALPHA", {str("a1b2 c!")})), "abc");
  EXPECT_EQ(text(apply("STR.DIGITS", {str("a1b2 c3")})), "123");
  EXPECT_EQ(apply("STR.LEN", {str("hello")}).asInt(), 5);
  EXPECT_EQ(apply("STR.LEN", {str("")}).asInt(), 0);
  EXPECT_EQ(text(apply("STR.TAKE", {nd::Value(3), str("abcdef")})), "abc");
  EXPECT_EQ(text(apply("STR.TAKE", {nd::Value(99), str("ab")})), "ab");
  EXPECT_EQ(text(apply("STR.DROP", {nd::Value(2), str("abcdef")})), "cdef");
  EXPECT_EQ(text(apply("STR.DROP", {nd::Value(-5), str("ab")})), "ab");
  EXPECT_EQ(apply("STR.CHARAT", {nd::Value(1), str("abc")}).asInt(), 'b');
  EXPECT_EQ(apply("STR.CHARAT", {nd::Value(9), str("abc")}).asInt(), 0);
  EXPECT_EQ(text(apply("STR.CONCAT", {str("foo"), str("bar")})), "foobar");
}

TEST(StrOps, TotalOnArbitraryInt32Content) {
  // Ops must be total on *any* list content, not just printable ASCII —
  // crossover can route any list-typed value into any op.
  const nd::Value weird(std::vector<std::int32_t>{-7, 0, 1 << 30, 'x', 32});
  for (std::size_t id = nd::kNumFunctions; id < nd::kTotalFunctions; ++id) {
    const auto& info = nd::functionInfo(id);
    std::vector<nd::Value> args;
    for (std::size_t a = 0; a < info.arity; ++a)
      args.push_back(info.argTypes[a] == nd::Type::Int ? nd::Value(3) : weird);
    EXPECT_NO_THROW(nd::applyFunction(static_cast<nd::FuncId>(id), args))
        << info.name;
  }
}

TEST(StrOps, NamesRoundTripThroughProgramParser) {
  std::vector<nd::FuncId> fns;
  for (std::size_t id = nd::kNumFunctions; id < nd::kTotalFunctions; ++id)
    fns.push_back(static_cast<nd::FuncId>(id));
  const nd::Program p(fns);
  const auto parsed = nd::Program::fromString(p.toString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

// ---- domain structure -------------------------------------------------------

TEST(StrDomain, VocabularyCoversExactlyTheStrOps) {
  const nd::Domain& d = nd::strDomain();
  ASSERT_EQ(d.vocabSize(), nd::kNumStrFunctions);
  for (std::size_t i = 0; i < d.vocabSize(); ++i) {
    const nd::FuncId id = d.vocabulary[i];
    EXPECT_GE(id, nd::kNumFunctions);
    EXPECT_EQ(d.localIndex(id), i);
    EXPECT_EQ(std::string(nd::functionInfo(id).name).substr(0, 4), "STR.");
  }
  for (std::size_t id = 0; id < nd::kNumFunctions; ++id)
    EXPECT_FALSE(d.contains(static_cast<nd::FuncId>(id)));
  EXPECT_FALSE(d.returning(nd::Type::Int).empty());
  EXPECT_FALSE(d.returning(nd::Type::List).empty());
}

TEST(StrDomain, RegistryResolvesNames) {
  EXPECT_EQ(nd::findDomain("list"), &nd::listDomain());
  EXPECT_EQ(nd::findDomain("str"), &nd::strDomain());
  EXPECT_EQ(nd::findDomain("bogus"), nullptr);
  EXPECT_EQ(nd::knownDomainNames(), "list, str");
  EXPECT_EQ(nd::allDomains().size(), 2u);
}

TEST(StrDomain, RenderValueQuotesText) {
  EXPECT_EQ(nd::renderValue(nd::strDomain(), str("hi there")), "\"hi there\"");
  EXPECT_EQ(nd::renderValue(nd::strDomain(), str("a\"b\\c")),
            "\"a\\\"b\\\\c\"");
  EXPECT_EQ(nd::renderValue(nd::strDomain(),
                            nd::Value(std::vector<std::int32_t>{7})),
            "\"\\x07\"");
  EXPECT_EQ(nd::renderValue(nd::strDomain(), nd::Value(42)), "42");
  // Non-textual domains keep the list rendering.
  EXPECT_EQ(nd::renderValue(nd::listDomain(), str("hi")), "[104, 105]");
}

// ---- generation -------------------------------------------------------------

TEST(StrDomain, GeneratorStaysInsideVocabularyAndCharRanges) {
  const nd::Domain& d = nd::strDomain();
  nd::Generator gen(d);
  Rng rng(5);
  for (int it = 0; it < 30; ++it) {
    const auto sig = gen.randomSignature(rng);
    const auto p = gen.randomProgram(4, sig, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(nd::isFullyLive(*p, sig));
    for (nd::FuncId f : p->functions()) EXPECT_TRUE(d.contains(f));
    const auto inputs = gen.randomInputs(sig, rng);
    for (const auto& v : inputs) {
      if (v.isInt()) {
        EXPECT_GE(v.asInt(), 0);
        EXPECT_LE(v.asInt(), 9);
      } else {
        for (std::int32_t c : v.asList()) {
          EXPECT_GE(c, 0x20);
          EXPECT_LE(c, 0x7e);
        }
      }
    }
  }
}

TEST(StrDomain, RandomProgramsExecuteTotally) {
  // Fuzz the shared interpreter over the str table: cached plans must agree
  // with fresh runs, and nothing may throw.
  const nd::Domain& d = nd::strDomain();
  nd::Generator gen(d);
  nd::Executor exec;
  Rng rng(17);
  for (int it = 0; it < 300; ++it) {
    const auto sig = gen.randomSignature(rng);
    std::vector<nd::FuncId> fns;
    const std::size_t len = 1 + rng.uniform(5);
    for (std::size_t k = 0; k < len; ++k)
      fns.push_back(d.vocabulary[rng.uniform(d.vocabSize())]);
    const nd::Program p(std::move(fns));
    const auto inputs = gen.randomInputs(sig, rng);
    const auto fresh = nd::run(p, inputs);
    nd::ExecResult pooled;
    exec.runInto(p, inputs, pooled);
    ASSERT_EQ(fresh.trace.size(), pooled.trace.size());
    for (std::size_t k = 0; k < fresh.trace.size(); ++k)
      EXPECT_TRUE(fresh.trace[k] == pooled.trace[k]);
  }
}

TEST(StrDomain, SpecsAreNonDegenerate) {
  nd::Generator gen(nd::strDomain());
  Rng rng(23);
  for (int it = 0; it < 10; ++it) {
    const auto tc = gen.randomTestCase(3, 5, /*singleton=*/it % 2 == 0, rng);
    ASSERT_TRUE(tc.has_value());
    bool anyNonDefault = false;
    for (const auto& ex : tc->spec.examples) {
      if (!(ex.output == nd::Value::defaultFor(ex.output.type())))
        anyNonDefault = true;
    }
    EXPECT_TRUE(anyNonDefault);
  }
}

// ---- search + fitness end-to-end --------------------------------------------

TEST(StrDomain, EditGaSolvesEndToEnd) {
  nd::Generator gen(nd::strDomain());
  Rng rng(99);
  const auto tc = gen.randomTestCase(3, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  nc::SynthesizerConfig sc;
  sc.ga.populationSize = 40;
  sc.ga.eliteCount = 4;
  sc.maxGenerations = 500;
  sc.nsTopN = 3;
  sc.nsWindow = 6;
  sc.generator = nd::strDomain().makeGeneratorConfig();
  nc::Synthesizer syn(
      sc, std::make_shared<nf::EditDistanceFitness>(&nd::strDomain()));
  Rng srng(1234);
  const auto r = syn.synthesize(tc->spec, 3, 20000, srng);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(nd::satisfiesSpec(r.solution, tc->spec));
  for (nd::FuncId f : r.solution.functions())
    EXPECT_TRUE(nd::strDomain().contains(f));
}

TEST(StrDomain, EditDistanceIsStringLevenshtein) {
  EXPECT_EQ(nf::valueEditDistance(str("kitten"), str("sitting")), 3u);
  EXPECT_EQ(nf::valueEditDistance(str(""), str("abc")), 3u);
  EXPECT_EQ(nf::valueEditDistance(str("same"), str("same")), 0u);
}

TEST(StrDomain, FpModelAndProbMapUseVocabularyWidth) {
  nf::NnffConfig mc;
  mc.encoder = {.vmax = 128, .maxValueTokens = 16};
  mc.embedDim = 4;
  mc.hiddenDim = 6;
  mc.head = nf::HeadKind::Multilabel;
  mc.useTrace = false;
  mc.domain = &nd::strDomain();
  auto model = std::make_shared<nf::NnffModel>(mc);
  EXPECT_EQ(model->outDim(), nd::kNumStrFunctions);

  nf::ProbMapFitness fp(model);
  EXPECT_EQ(&fp.domain(), &nd::strDomain());

  nd::Generator gen(nd::strDomain());
  Rng rng(3);
  const auto tc = gen.randomTestCase(3, 4, false, rng);
  ASSERT_TRUE(tc.has_value());
  const auto map = fp.probMap(tc->spec);
  ASSERT_EQ(map.size(), nd::kNumStrFunctions);
  for (double p : map) {
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
  }
  // score = sum of the gene's per-function probabilities (local-indexed).
  const auto runs = std::vector<nd::ExecResult>(tc->spec.size());
  const nf::EvalContext ctx{tc->spec, runs};
  double expected = 0.0;
  for (nd::FuncId f : tc->program.functions())
    expected += map[nd::strDomain().localIndex(f)];
  EXPECT_DOUBLE_EQ(fp.score(tc->program, ctx), expected);
}

TEST(StrDomain, ClassifierModelScoresStrGenes) {
  nf::NnffConfig mc;
  mc.encoder = {.vmax = 128, .maxValueTokens = 16};
  mc.embedDim = 4;
  mc.hiddenDim = 6;
  mc.numClasses = 4;
  mc.domain = &nd::strDomain();
  auto model = std::make_shared<nf::NnffModel>(mc);

  nd::Generator gen(nd::strDomain());
  Rng rng(7);
  const auto tc = gen.randomTestCase(3, 3, false, rng);
  ASSERT_TRUE(tc.has_value());
  std::vector<std::vector<nd::Value>> traces;
  for (const auto& ex : tc->spec.examples)
    traces.push_back(nd::run(tc->program, ex.inputs).trace);
  const auto slow = model->forward(tc->spec, tc->program, traces);
  const auto fast = model->forwardFast(tc->spec, tc->program, traces);
  ASSERT_EQ(fast.size(), 4u);
  for (std::size_t j = 0; j < fast.size(); ++j)
    EXPECT_NEAR(slow->value().at(j), fast[j], 1e-5f);
}

// ---- config plumbing --------------------------------------------------------

TEST(StrDomainConfig, FromArgsAppliesDomainDefaults) {
  const char* argv[] = {"prog", "--domain=str"};
  const netsyn::util::ArgParse args(2, argv);
  const auto cfg = nh::ExperimentConfig::fromArgs(args);
  EXPECT_EQ(cfg.domainName, "str");
  EXPECT_EQ(cfg.synthesizer.generator.domain, &nd::strDomain());
  EXPECT_EQ(cfg.modelConfig.domain, &nd::strDomain());
  EXPECT_EQ(cfg.modelConfig.encoder.vmax, 128);
  EXPECT_TRUE(cfg.synthesizer.generator.useIntRange);
}

TEST(StrDomainConfig, JsonRoundTripsDomain) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.domainName = "str";
  cfg.applyDomain();
  const auto back = nh::ExperimentConfig::fromJson(cfg.toJson());
  EXPECT_EQ(back.domainName, "str");
  EXPECT_EQ(back.synthesizer.generator.domain, &nd::strDomain());
  EXPECT_EQ(back.modelConfig.domain, &nd::strDomain());

  const auto list = nh::ExperimentConfig::fromJson(
      nh::ExperimentConfig::forScale("ci").toJson());
  EXPECT_EQ(list.domainName, "list");
  EXPECT_EQ(list.synthesizer.generator.domain, nullptr);
}

TEST(StrDomainConfig, UnknownDomainFailsLoudly) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.domainName = "flashfill";
  try {
    cfg.applyDomain();
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("flashfill"), std::string::npos);
    EXPECT_NE(msg.find("list, str"), std::string::npos);
  }
}
