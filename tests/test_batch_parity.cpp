// Batched-evaluation parity: the population-batched NN forward, the
// scoreBatch overrides, the batched synthesizer grading, and the batch-aware
// evaluator must all agree with their per-gene counterparts.
#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>

#include "core/evaluator.hpp"
#include "core/synthesizer.hpp"
#include "dsl/generator.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "fitness/model.hpp"
#include "fitness/neural_fitness.hpp"
#include "nn/inference.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

constexpr double kTol = 1e-9;

nf::NnffConfig smallConfig(nf::HeadKind head) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.embedDim = 16;
  cfg.hiddenDim = 24;
  cfg.maxExamples = 3;
  cfg.head = head;
  cfg.useTrace = head != nf::HeadKind::Multilabel;
  cfg.seed = 7;
  return cfg;
}

/// A spec plus a random population with per-gene, per-example traces.
struct PopulationFixture {
  nd::Spec spec;
  std::vector<nd::Program> genes;
  std::vector<std::vector<nd::ExecResult>> runs;  // per gene, per example

  std::vector<std::vector<std::vector<nd::Value>>> traces() const {
    std::vector<std::vector<std::vector<nd::Value>>> out(runs.size());
    for (std::size_t b = 0; b < runs.size(); ++b)
      for (const auto& r : runs[b]) out[b].push_back(r.trace);
    return out;
  }
};

PopulationFixture makePopulation(std::size_t count, std::uint64_t seed,
                                 bool mixedLengths = false) {
  Rng rng(seed);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(5, 4, false, rng);
  EXPECT_TRUE(tc.has_value());
  PopulationFixture fx;
  fx.spec = tc->spec;
  const nd::InputSignature sig = fx.spec.signature();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t length = mixedLengths ? 3 + (i % 4) : 5;
    auto prog = gen.randomProgram(length, sig, rng);
    EXPECT_TRUE(prog.has_value());
    std::vector<nd::ExecResult> runs;
    for (const auto& ex : fx.spec.examples)
      runs.push_back(nd::run(*prog, ex.inputs));
    fx.genes.push_back(std::move(*prog));
    fx.runs.push_back(std::move(runs));
  }
  return fx;
}

std::vector<const nd::Program*> genePtrs(const PopulationFixture& fx) {
  std::vector<const nd::Program*> out;
  for (const auto& g : fx.genes) out.push_back(&g);
  return out;
}

}  // namespace

// ------------------------------------------------ kernel-level parity ------

TEST(BatchKernels, TokenEncodingMatchesScalarPerRow) {
  Rng rng(5);
  netsyn::nn::ParamStore store;
  const netsyn::nn::Embedding emb(12, 6, store, rng);
  const netsyn::nn::Lstm lstm(6, 10, store, rng);
  netsyn::nn::InferenceScratch scratch;

  // Variable-length rows, including an empty one (encodes to zero).
  std::vector<std::vector<std::size_t>> tokens;
  for (std::size_t b = 0; b < 9; ++b) {
    std::vector<std::size_t> seq;
    for (std::size_t t = 0; t < b; ++t)
      seq.push_back(rng.uniform(emb.vocab()));
    tokens.push_back(std::move(seq));
  }

  std::vector<float> batched(tokens.size() * lstm.hiddenDim());
  netsyn::nn::lstmEncodeTokensBatchFast(lstm, emb, tokens, batched.data(),
                                        scratch);
  for (std::size_t b = 0; b < tokens.size(); ++b) {
    std::vector<float> single(lstm.hiddenDim());
    netsyn::nn::lstmEncodeTokensFast(lstm, emb, tokens[b], single.data(),
                                     scratch);
    for (std::size_t j = 0; j < single.size(); ++j)
      EXPECT_EQ(batched[b * lstm.hiddenDim() + j], single[j])
          << "row " << b << " unit " << j;
  }
}

// ------------------------------------------------- model-level parity ------

TEST(PredictBatch, MatchesForwardFastPerGene) {
  const nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto fx = makePopulation(32, 11);
  const auto traces = fx.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrs;
  for (const auto& t : traces) tracePtrs.push_back(&t);

  const auto batched = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  ASSERT_EQ(batched.size(), fx.genes.size());
  for (std::size_t b = 0; b < fx.genes.size(); ++b) {
    const auto single = model.forwardFast(fx.spec, fx.genes[b], traces[b]);
    ASSERT_EQ(batched[b].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j)
      EXPECT_NEAR(batched[b][j], single[j], kTol)
          << "gene " << b << " logit " << j;
  }
}

TEST(PredictBatch, HandlesMixedLengthPopulations) {
  const nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto fx = makePopulation(17, 12, /*mixedLengths=*/true);
  const auto traces = fx.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrs;
  for (const auto& t : traces) tracePtrs.push_back(&t);

  const auto batched = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  for (std::size_t b = 0; b < fx.genes.size(); ++b) {
    const auto single = model.forwardFast(fx.spec, fx.genes[b], traces[b]);
    for (std::size_t j = 0; j < single.size(); ++j)
      EXPECT_NEAR(batched[b][j], single[j], kTol);
  }
}

TEST(PredictBatch, RepeatedCallsHitTraceMemoConsistently) {
  const nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto fx = makePopulation(8, 13);
  const auto traces = fx.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrs;
  for (const auto& t : traces) tracePtrs.push_back(&t);
  const auto first = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const auto second = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  for (std::size_t b = 0; b < first.size(); ++b)
    for (std::size_t j = 0; j < first[b].size(); ++j)
      EXPECT_EQ(first[b][j], second[b][j]);
}

TEST(ModelClone, ProducesIdenticalPredictions) {
  const nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto copy = model.clone();
  const auto fx = makePopulation(4, 14);
  const auto traces = fx.traces();
  for (std::size_t b = 0; b < fx.genes.size(); ++b) {
    const auto a = model.forwardFast(fx.spec, fx.genes[b], traces[b]);
    const auto c = copy->forwardFast(fx.spec, fx.genes[b], traces[b]);
    ASSERT_EQ(a.size(), c.size());
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], c[j]);
  }
}

// ----------------------------------------------- fitness-level parity ------

namespace {

/// scoreBatch-vs-score parity over a fixture for any fitness function.
void expectScoreBatchParity(nf::FitnessFunction& fit,
                            const PopulationFixture& fx) {
  std::vector<const nf::EvalContext*> contexts;
  std::deque<nf::EvalContext> store;
  for (const auto& runs : fx.runs) {
    store.push_back(nf::EvalContext{fx.spec, runs});
    contexts.push_back(&store.back());
  }
  const auto batched = fit.scoreBatch(genePtrs(fx), contexts);
  ASSERT_EQ(batched.size(), fx.genes.size());
  for (std::size_t b = 0; b < fx.genes.size(); ++b) {
    const double single = fit.score(fx.genes[b], *contexts[b]);
    EXPECT_NEAR(batched[b], single, kTol) << "gene " << b;
  }
}

}  // namespace

TEST(ScoreBatch, NeuralClassifierParity) {
  auto model =
      std::make_shared<nf::NnffModel>(smallConfig(nf::HeadKind::Classifier));
  nf::NeuralFitness fit(model, "NN_CF");
  expectScoreBatchParity(fit, makePopulation(100, 21));
}

TEST(ScoreBatch, RegressionParity) {
  auto model =
      std::make_shared<nf::NnffModel>(smallConfig(nf::HeadKind::Regression));
  nf::RegressionFitness fit(model);
  expectScoreBatchParity(fit, makePopulation(50, 22));
}

TEST(ScoreBatch, ProbMapParity) {
  auto model =
      std::make_shared<nf::NnffModel>(smallConfig(nf::HeadKind::Multilabel));
  nf::ProbMapFitness fit(model);
  expectScoreBatchParity(fit, makePopulation(30, 23));
}

TEST(ScoreBatch, DefaultLoopCoversOracleAndEditFitness) {
  const auto fx = makePopulation(20, 24);
  nf::EditDistanceFitness edit;
  expectScoreBatchParity(edit, fx);
  nf::OracleCF oracle(fx.genes.front());
  expectScoreBatchParity(oracle, fx);
}

// ------------------------------------------------ memo eviction ------------

TEST(TraceMemo, SecondPassIsAllHitsAtDefaultCapacity) {
  nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto fx = makePopulation(12, 61);
  const auto traces = fx.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrs;
  for (const auto& t : traces) tracePtrs.push_back(&t);

  EXPECT_EQ(model.memoStats().traceHits, 0u);
  EXPECT_EQ(model.memoStats().traceMisses, 0u);
  (void)model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const auto first = model.memoStats();
  EXPECT_GT(first.traceMisses, 0u);
  EXPECT_GT(first.editMisses, 0u);
  (void)model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const auto second = model.memoStats();
  EXPECT_EQ(second.traceMisses, first.traceMisses)
      << "re-encoded an already-memoized trace span";
  EXPECT_EQ(second.editMisses, first.editMisses)
      << "re-computed an already-memoized edit distance";
  EXPECT_GT(second.traceHits, first.traceHits);
}

TEST(TraceMemo, CapacityBoundaryKeepsTheWorkingSetWarm) {
  // The memos used to evict by wholesale clear() at capacity: the first
  // insert past the limit threw away every live entry, so the next pass
  // over an already-encoded population started cold. Two-generation
  // eviction demotes the full map to "previous" instead, and hits there
  // promote back — a working set that fits in one generation survives the
  // boundary.
  nf::NnffModel model(smallConfig(nf::HeadKind::Classifier));
  const auto fx = makePopulation(12, 62);
  const auto traces = fx.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrs;
  for (const auto& t : traces) tracePtrs.push_back(&t);

  // Measure the unique-span working set at the default (ample) capacity...
  (void)model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const std::size_t unique = model.memoStats().traceMisses;
  ASSERT_GT(unique, 4u) << "fixture too small to exercise rotation";

  // ...then make the capacity exactly that working set, so the cold pass
  // fills the current generation to the brim without rotating.
  // setMemoCapacity clears the memos and stats.
  model.setMemoCapacity(unique);
  const auto cold = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const auto first = model.memoStats();
  EXPECT_EQ(first.traceMisses, unique) << "capacity changed the key space";

  // A second, smaller population pushes the memo over capacity: its first
  // novel span rotates generations, demoting everything the first pass
  // encoded.
  const auto fxB = makePopulation(2, 63);
  const auto tracesB = fxB.traces();
  std::vector<const std::vector<std::vector<nd::Value>>*> tracePtrsB;
  for (const auto& t : tracesB) tracePtrsB.push_back(&t);
  (void)model.predictBatch(fxB.spec, genePtrs(fxB), tracePtrsB);
  const auto mid = model.memoStats();
  ASSERT_GT(mid.traceMisses, first.traceMisses) << "no rotation was forced";

  // Crossing back is where clear() used to start cold: with two
  // generations the whole first working set is still readable, so the
  // repeat pass adds no misses.
  const auto warm = model.predictBatch(fx.spec, genePtrs(fx), tracePtrs);
  const auto second = model.memoStats();
  EXPECT_EQ(second.traceMisses, mid.traceMisses)
      << "the rotation evicted part of the live working set";
  EXPECT_GT(second.traceHits, mid.traceHits);

  // Eviction policy must never change scores — only recompute them.
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t b = 0; b < cold.size(); ++b)
    for (std::size_t j = 0; j < cold[b].size(); ++j)
      EXPECT_EQ(cold[b][j], warm[b][j]) << "gene " << b << " logit " << j;
}

// ------------------------------------------------ ProbMap cache fix --------

TEST(ProbMapCache, InvalidatesWhenSpecContentsChangeAtSameAddress) {
  auto model =
      std::make_shared<nf::NnffModel>(smallConfig(nf::HeadKind::Multilabel));
  nf::ProbMapFitness fit(model);
  nf::ProbMapFitness fresh(model);

  Rng rng(31);
  const nd::Generator gen;
  const auto tcA = gen.randomTestCase(5, 4, false, rng);
  const auto tcB = gen.randomTestCase(5, 4, true, rng);
  ASSERT_TRUE(tcA.has_value() && tcB.has_value());

  // One spec object whose contents are replaced in place: the address stays
  // the same, so an address-keyed cache would serve map A for spec B.
  nd::Spec spec = tcA->spec;
  const auto mapA = fit.probMap(spec);
  spec = tcB->spec;
  const auto mapB = fit.probMap(spec);
  const auto mapBFresh = fresh.probMap(spec);
  for (std::size_t j = 0; j < mapB.size(); ++j)
    EXPECT_EQ(mapB[j], mapBFresh[j]) << "stale cached map at op " << j;
  // And the two specs genuinely disagree somewhere (guards the test).
  bool anyDiff = false;
  for (std::size_t j = 0; j < mapA.size(); ++j)
    if (mapA[j] != mapB[j]) anyDiff = true;
  EXPECT_TRUE(anyDiff);
}

TEST(SpecFingerprint, DistinguishesContentsAndIgnoresAddress) {
  Rng rng(32);
  const nd::Generator gen;
  const auto tcA = gen.randomTestCase(4, 3, false, rng);
  const auto tcB = gen.randomTestCase(4, 3, false, rng);
  ASSERT_TRUE(tcA.has_value() && tcB.has_value());
  const nd::Spec copy = tcA->spec;  // different address, same contents
  EXPECT_EQ(tcA->spec.fingerprint(), copy.fingerprint());
  EXPECT_NE(tcA->spec.fingerprint(), tcB->spec.fingerprint());
}

// ------------------------------------------------ evaluator batching -------

TEST(EvaluateBatch, ChargesDistinctCandidatesOnce) {
  Rng rng(41);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 3, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();

  std::vector<nd::Program> genes;
  for (std::size_t i = 0; i < 3; ++i)
    genes.push_back(*gen.randomProgram(4, sig, rng));

  nc::SearchBudget budget(100);
  nc::SpecEvaluator ev(tc->spec, budget);
  // a, b, a, c, b: three distinct candidates -> three budget units.
  const std::vector<const nd::Program*> batch = {&genes[0], &genes[1],
                                                 &genes[0], &genes[2],
                                                 &genes[1]};
  const auto evs = ev.evaluateBatch(batch, /*stopOnSatisfied=*/false);
  ASSERT_EQ(evs.size(), 5u);
  for (const auto& e : evs) EXPECT_TRUE(e.has_value());
  EXPECT_EQ(budget.used(), 3u);
}

TEST(EvaluateBatch, StopsAtFirstSatisfyingCandidate) {
  Rng rng(42);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 3, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();
  const nd::Program decoy = *gen.randomProgram(4, sig, rng);

  nc::SearchBudget budget(100);
  nc::SpecEvaluator ev(tc->spec, budget);
  const std::vector<const nd::Program*> batch = {&decoy, &tc->program,
                                                 &decoy};
  const auto evs = ev.evaluateBatch(batch);
  ASSERT_TRUE(evs[1].has_value());
  EXPECT_TRUE(evs[1]->satisfied);
  EXPECT_FALSE(evs[2].has_value());  // after the solution: not examined
  EXPECT_EQ(budget.used(), 2u);
}

TEST(EvaluateBatch, ExhaustionLeavesRemainingUnexamined) {
  Rng rng(43);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 3, false, rng);
  ASSERT_TRUE(tc.has_value());
  const nd::InputSignature sig = tc->spec.signature();
  std::vector<nd::Program> genes;
  for (std::size_t i = 0; i < 4; ++i)
    genes.push_back(*gen.randomProgram(4, sig, rng));

  nc::SearchBudget budget(2);
  nc::SpecEvaluator ev(tc->spec, budget);
  std::vector<const nd::Program*> batch;
  for (const auto& g : genes) batch.push_back(&g);
  const auto evs = ev.evaluateBatch(batch, /*stopOnSatisfied=*/false);
  EXPECT_TRUE(evs[0].has_value());
  EXPECT_TRUE(evs[1].has_value());
  EXPECT_FALSE(evs[2].has_value());
  EXPECT_FALSE(evs[3].has_value());
  EXPECT_EQ(budget.used(), 2u);
}

TEST(ProgramIdKey, IsExactAndWidthSafe) {
  const nd::Program a(std::vector<nd::FuncId>{1, 2});
  const nd::Program b(std::vector<nd::FuncId>{2, 1});
  const nd::Program c(std::vector<nd::FuncId>{1});
  const nd::Program d(std::vector<nd::FuncId>{1, 2});
  EXPECT_NE(a.idKey(), b.idKey());
  EXPECT_NE(a.idKey(), c.idKey());
  EXPECT_EQ(a.idKey(), d.idKey());
  EXPECT_EQ(a.idKey().size(), 2 * sizeof(nd::FuncId));
}

// ------------------------------------------- whole-synthesizer parity ------

namespace {

void expectSameResult(const nc::SynthesisResult& a,
                      const nc::SynthesisResult& b) {
  EXPECT_EQ(a.found, b.found);
  if (a.found && b.found) {
    EXPECT_EQ(a.solution, b.solution);
  }
  EXPECT_EQ(a.candidatesSearched, b.candidatesSearched);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.nsInvocations, b.nsInvocations);
  EXPECT_EQ(a.foundByNs, b.foundByNs);
  EXPECT_DOUBLE_EQ(a.bestFitness, b.bestFitness);
}

nc::SynthesisResult runOnce(const nd::Spec& spec, nf::FitnessPtr fit,
                            bool batched, nc::NsKind nsKind,
                            std::uint64_t seed) {
  nc::SynthesizerConfig sc;
  sc.ga.populationSize = 20;
  sc.ga.eliteCount = 3;
  sc.maxGenerations = 60;
  sc.nsWindow = 5;
  sc.nsTopN = 2;
  sc.nsKind = nsKind;
  sc.batchedEvaluation = batched;
  const nc::Synthesizer syn(sc, std::move(fit));
  Rng rng(seed);
  return syn.synthesize(spec, 5, 1500, rng);
}

}  // namespace

TEST(SynthesizerParity, BatchedAndScalarGradingSearchIdentically) {
  auto model =
      std::make_shared<nf::NnffModel>(smallConfig(nf::HeadKind::Classifier));
  Rng rng(51);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(5, 4, false, rng);
  ASSERT_TRUE(tc.has_value());
  for (const auto nsKind : {nc::NsKind::BFS, nc::NsKind::DFS}) {
    const auto batched =
        runOnce(tc->spec, std::make_shared<nf::NeuralFitness>(model, "NN_CF"),
                true, nsKind, 99);
    const auto scalar =
        runOnce(tc->spec, std::make_shared<nf::NeuralFitness>(model, "NN_CF"),
                false, nsKind, 99);
    expectSameResult(batched, scalar);
  }
}

TEST(SynthesizerParity, EditFitnessUnaffectedByBatchFlag) {
  Rng rng(52);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 4, false, rng);
  ASSERT_TRUE(tc.has_value());
  const auto batched = runOnce(
      tc->spec, std::make_shared<nf::EditDistanceFitness>(), true,
      nc::NsKind::BFS, 7);
  const auto scalar = runOnce(
      tc->spec, std::make_shared<nf::EditDistanceFitness>(), false,
      nc::NsKind::BFS, 7);
  expectSameResult(batched, scalar);
}
