// Parallel experiment runner: workers=N must produce the same MethodReport
// as the sequential runner (wall-clock seconds aside), independent of
// scheduling, and the factory path must agree with the legacy single-method
// path.
#include <gtest/gtest.h>

#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace nb = netsyn::baselines;
namespace nh = netsyn::harness;

namespace {

nh::ExperimentConfig tinyConfig() {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {4};
  cfg.programsPerLength = 4;
  cfg.examplesPerProgram = 3;
  cfg.runsPerProgram = 3;
  cfg.searchBudget = 800;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.maxGenerations = 200;
  return cfg;
}

/// Everything except the wall-clock seconds fields.
void expectSameDeterministicFields(const nh::MethodReport& a,
                                   const nh::MethodReport& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.budget, b.budget);
  ASSERT_EQ(a.programs.size(), b.programs.size());
  for (std::size_t p = 0; p < a.programs.size(); ++p) {
    const auto& pa = a.programs[p];
    const auto& pb = b.programs[p];
    EXPECT_EQ(pa.programId, pb.programId);
    EXPECT_EQ(pa.length, pb.length);
    EXPECT_EQ(pa.singleton, pb.singleton);
    EXPECT_EQ(pa.target, pb.target);
    ASSERT_EQ(pa.runs.size(), pb.runs.size());
    for (std::size_t k = 0; k < pa.runs.size(); ++k) {
      EXPECT_EQ(pa.runs[k].found, pb.runs[k].found)
          << "program " << p << " run " << k;
      EXPECT_EQ(pa.runs[k].candidates, pb.runs[k].candidates)
          << "program " << p << " run " << k;
      EXPECT_EQ(pa.runs[k].generations, pb.runs[k].generations)
          << "program " << p << " run " << k;
    }
  }
}

}  // namespace

TEST(ParallelRunner, MatchesSequentialReport) {
  auto cfg = tinyConfig();
  const auto workload = nh::makeFullWorkload(cfg);
  const auto factory = nh::makeEditFactory(cfg);

  cfg.workers = 1;
  const auto sequential = nh::runMethod(factory, workload, cfg, false);
  cfg.workers = 4;
  const auto parallel = nh::runMethod(factory, workload, cfg, false);
  expectSameDeterministicFields(sequential, parallel);
}

TEST(ParallelRunner, FactoryPathMatchesLegacySingleInstancePath) {
  auto cfg = tinyConfig();
  const auto workload = nh::makeFullWorkload(cfg);
  const auto factory = nh::makeEditFactory(cfg);

  const auto method = factory();
  const auto legacy = nh::runMethod(*method, workload, cfg, false);
  cfg.workers = 3;
  const auto pooled = nh::runMethod(factory, workload, cfg, false);
  expectSameDeterministicFields(legacy, pooled);
}

TEST(ParallelRunner, SchedulingIsIrrelevantAcrossRepeats) {
  auto cfg = tinyConfig();
  cfg.workers = 4;
  const auto workload = nh::makeFullWorkload(cfg);
  const auto factory = nh::makeEditFactory(cfg);
  const auto first = nh::runMethod(factory, workload, cfg, false);
  const auto second = nh::runMethod(factory, workload, cfg, false);
  expectSameDeterministicFields(first, second);
}

TEST(ParallelRunner, TargetAwareOracleWorksOnThePool) {
  auto cfg = tinyConfig();
  cfg.programsPerLength = 2;
  cfg.runsPerProgram = 2;
  const auto workload = nh::makeFullWorkload(cfg);
  const auto factory =
      nh::makeOracleFactory(cfg, netsyn::fitness::BalanceMetric::CF);

  cfg.workers = 1;
  const auto sequential = nh::runMethod(factory, workload, cfg, false);
  cfg.workers = 4;
  const auto parallel = nh::runMethod(factory, workload, cfg, false);
  expectSameDeterministicFields(sequential, parallel);
  // The oracle should actually synthesize something on this easy workload;
  // guards against a pool that never sets the target.
  EXPECT_GT(parallel.synthesizedFraction(), 0.0);
}

TEST(ParallelRunner, WorkersFlagParsesAndDefaults) {
  EXPECT_EQ(tinyConfig().workers, 1u);
  const char* argv[] = {"prog", "--workers=6"};
  const netsyn::util::ArgParse args(2, argv);
  const auto cfg = nh::ExperimentConfig::fromArgs(args);
  EXPECT_EQ(cfg.workers, 6u);
}
