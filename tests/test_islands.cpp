// Island-model search engine: K=1 must be pinned identical to the classic
// single-population search, fixed-seed results must be bit-identical for
// every thread count, migration must follow the elite-replaces-worst
// (dedup'd) contract, and the global budget ledger must keep the ensemble's
// candidate count within the single-population budget semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "core/budget.hpp"
#include "core/islands.hpp"
#include "core/search_state.hpp"
#include "core/synthesizer.hpp"
#include "dsl/generator.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

/// A small but non-trivial test case (fixed seed, so every test sees the
/// same spec/target).
nd::Generator::TestCase makeCase(std::uint64_t seed, std::size_t length = 4) {
  Rng rng(seed);
  const nd::Generator gen;
  auto tc = gen.randomTestCase(length, 3, false, rng);
  EXPECT_TRUE(tc.has_value());
  return *tc;
}

nc::SynthesizerConfig tinyConfig() {
  nc::SynthesizerConfig cfg;
  cfg.ga.populationSize = 16;
  cfg.ga.eliteCount = 2;
  cfg.maxGenerations = 120;
  cfg.nsTopN = 2;
  cfg.nsWindow = 6;
  return cfg;
}

nc::IslandFitnessFactory editFactory() {
  return [](std::size_t) {
    return nc::IslandFitness{std::make_shared<nf::EditDistanceFitness>(),
                             nullptr};
  };
}

/// Every schedule-independent field of two synthesis results, including the
/// per-island ledger accounting.
void expectSameResult(const nc::SynthesisResult& a,
                      const nc::SynthesisResult& b) {
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.solution, b.solution);
  EXPECT_EQ(a.candidatesSearched, b.candidatesSearched);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.nsInvocations, b.nsInvocations);
  EXPECT_EQ(a.foundByNs, b.foundByNs);
  EXPECT_EQ(a.bestFitness, b.bestFitness);  // bitwise: same op order
  ASSERT_EQ(a.islandStats.size(), b.islandStats.size());
  for (std::size_t i = 0; i < a.islandStats.size(); ++i) {
    const auto& sa = a.islandStats[i];
    const auto& sb = b.islandStats[i];
    EXPECT_EQ(sa.island, sb.island);
    EXPECT_EQ(sa.bestFitness, sb.bestFitness) << "island " << i;
    EXPECT_EQ(sa.evals, sb.evals) << "island " << i;
    EXPECT_EQ(sa.generations, sb.generations) << "island " << i;
    EXPECT_EQ(sa.emigrants, sb.emigrants) << "island " << i;
    EXPECT_EQ(sa.immigrants, sb.immigrants) << "island " << i;
    EXPECT_EQ(sa.nsInvocations, sb.nsInvocations) << "island " << i;
    EXPECT_EQ(sa.solved, sb.solved) << "island " << i;
  }
}

}  // namespace

// ------------------------------------------------------- BudgetLedger -----

TEST(BudgetLedger, CommitsInOrderAndTruncatesAtTheLimit) {
  nc::BudgetLedger ledger(100);
  EXPECT_EQ(ledger.remaining(), 100u);
  EXPECT_EQ(ledger.commit(40), 40u);   // island 0
  EXPECT_EQ(ledger.commit(50), 50u);   // island 1
  EXPECT_EQ(ledger.commit(30), 10u);   // island 2: truncated
  EXPECT_EQ(ledger.commit(5), 0u);     // island 3: nothing left
  EXPECT_EQ(ledger.committed(), 100u);
  EXPECT_TRUE(ledger.exhausted());
}

TEST(BudgetLedger, OpenRoundGrantsTheGlobalRemainder) {
  nc::BudgetLedger ledger(100);
  nc::SearchBudget local(0);
  ledger.openRound(local);
  EXPECT_EQ(local.limit(), 100u);
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(local.tryConsume());
  EXPECT_EQ(ledger.commit(30), 30u);
  ledger.openRound(local);  // used 30, may spend the remaining 70
  EXPECT_EQ(local.limit(), 100u);
  EXPECT_EQ(local.remaining(), 70u);
}

TEST(BudgetLedger, KEqualsOneNeverTruncates) {
  // With one island the ledger degenerates to the plain SearchBudget: the
  // opened limit is always the global limit and every commit is granted.
  nc::BudgetLedger ledger(50);
  nc::SearchBudget local(0);
  std::size_t granted = 0;
  while (!ledger.exhausted()) {
    ledger.openRound(local);
    EXPECT_EQ(local.limit(), 50u);
    std::size_t used = 0;
    for (int i = 0; i < 7 && local.tryConsume(); ++i) ++used;
    granted += ledger.commit(used);
    if (used == 0) break;
  }
  EXPECT_EQ(granted, 50u);
  EXPECT_EQ(local.used(), 50u);
}

// ------------------------------------------------ K=1 pinned identical ----

TEST(Islands, KOneIsExactlyTheSinglePopulationSearch) {
  const auto tc = makeCase(77);
  for (const std::size_t budget : {250u, 2500u}) {  // exhausted and solved
    nc::SynthesizerConfig single = tinyConfig();
    nc::SynthesizerConfig island = tinyConfig();
    island.strategy = nc::SearchStrategy::Islands;
    island.islands.count = 1;
    island.islands.migrationInterval = 3;  // must be a no-op with K=1

    // Oracle fitness solves quickly at the larger budget, so both terminal
    // paths (budget exhaustion, solution) are exercised.
    Rng rngA(123), rngB(123);
    nc::Synthesizer a(single, std::make_shared<nf::OracleCF>(tc.program));
    nc::Synthesizer b(island, std::make_shared<nf::OracleCF>(tc.program));
    const auto ra = a.synthesize(tc.spec, tc.program.length(), budget, rngA);
    const auto rb = b.synthesize(tc.spec, tc.program.length(), budget, rngB);

    EXPECT_EQ(ra.found, rb.found) << "budget " << budget;
    EXPECT_EQ(ra.solution, rb.solution);
    EXPECT_EQ(ra.candidatesSearched, rb.candidatesSearched);
    EXPECT_EQ(ra.generations, rb.generations);
    EXPECT_EQ(ra.nsInvocations, rb.nsInvocations);
    EXPECT_EQ(ra.foundByNs, rb.foundByNs);
    EXPECT_EQ(ra.bestFitness, rb.bestFitness);
    // The island run additionally reports its one island's ledger stats.
    EXPECT_TRUE(ra.islandStats.empty());
    ASSERT_EQ(rb.islandStats.size(), 1u);
    EXPECT_EQ(rb.islandStats[0].evals, rb.candidatesSearched);
    EXPECT_EQ(rb.islandStats[0].immigrants, 0u);
  }
}

TEST(Islands, KOneConsumesTheCallersRngStream) {
  // After a K=1 island search the caller's RNG must be in the exact state
  // the single-population search leaves it in (no hidden forks).
  const auto tc = makeCase(31);
  nc::SynthesizerConfig island = tinyConfig();
  island.strategy = nc::SearchStrategy::Islands;
  island.islands.count = 1;

  Rng rngA(9), rngB(9);
  nc::Synthesizer single(tinyConfig(),
                         std::make_shared<nf::EditDistanceFitness>());
  nc::Synthesizer islands(island,
                          std::make_shared<nf::EditDistanceFitness>());
  (void)single.synthesize(tc.spec, tc.program.length(), 300, rngA);
  (void)islands.synthesize(tc.spec, tc.program.length(), 300, rngB);
  EXPECT_EQ(rngA(), rngB());
}

// ------------------------------------------- thread-count determinism -----

TEST(Islands, FixedSeedResultsAreIdenticalAcrossThreadCounts) {
  const auto tc = makeCase(5);
  for (const std::size_t k : {2u, 4u}) {
    nc::SynthesizerConfig cfg = tinyConfig();
    cfg.strategy = nc::SearchStrategy::Islands;
    cfg.islands.count = k;
    cfg.islands.migrationInterval = 4;
    cfg.islands.migrationSize = 2;

    std::vector<nc::SynthesisResult> results;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      cfg.islands.threads = threads;
      Rng rng(2024);
      nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>(),
                          nullptr, editFactory());
      results.push_back(
          syn.synthesize(tc.spec, tc.program.length(), 1500, rng));
    }
    expectSameResult(results[0], results[1]);
    expectSameResult(results[0], results[2]);
  }
}

TEST(Islands, TopologiesAndTweaksStayDeterministic) {
  const auto tc = makeCase(11);
  for (const nc::Topology topo :
       {nc::Topology::Ring, nc::Topology::FullyConnected}) {
    nc::SynthesizerConfig cfg = tinyConfig();
    cfg.strategy = nc::SearchStrategy::Islands;
    cfg.islands.count = 3;
    cfg.islands.migrationInterval = 2;
    cfg.islands.topology = topo;
    cfg.islands.heterogeneous = true;  // per-island operator tweaks

    cfg.islands.threads = 1;
    Rng rngA(7);
    nc::Synthesizer a(cfg, std::make_shared<nf::EditDistanceFitness>(),
                      nullptr, editFactory());
    const auto ra = a.synthesize(tc.spec, tc.program.length(), 900, rngA);

    cfg.islands.threads = 3;
    Rng rngB(7);
    nc::Synthesizer b(cfg, std::make_shared<nf::EditDistanceFitness>(),
                      nullptr, editFactory());
    const auto rb = b.synthesize(tc.spec, tc.program.length(), 900, rngB);
    expectSameResult(ra, rb);
  }
}

TEST(Islands, SharedFitnessWithoutFactoryMatchesFactoryRun) {
  // Without per-island instances the engine must fall back to sequential
  // stepping and still produce the factory run's exact result (the fitness
  // itself is deterministic and spec-keyed, so sharing cannot leak state
  // across islands).
  const auto tc = makeCase(42);
  nc::SynthesizerConfig cfg = tinyConfig();
  cfg.strategy = nc::SearchStrategy::Islands;
  cfg.islands.count = 3;
  cfg.islands.migrationInterval = 5;
  cfg.islands.threads = 4;  // ignored without a factory

  Rng rngA(1), rngB(1);
  nc::Synthesizer shared(cfg, std::make_shared<nf::EditDistanceFitness>());
  nc::Synthesizer isolated(cfg, std::make_shared<nf::EditDistanceFitness>(),
                           nullptr, editFactory());
  expectSameResult(
      shared.synthesize(tc.spec, tc.program.length(), 800, rngA),
      isolated.synthesize(tc.spec, tc.program.length(), 800, rngB));
}

// ------------------------------------------------------- migration --------

TEST(Islands, InjectMigrantsReplacesWorstAndDedupsByHash) {
  const auto tc = makeCase(3);
  nc::SynthesizerConfig cfg = tinyConfig();
  cfg.ga.populationSize = 8;
  nc::SearchBudget budget(10000);
  Rng rng(55);
  nc::SearchState state(cfg, std::make_shared<nf::EditDistanceFitness>(),
                        nullptr, tc.spec, tc.program.length(), budget, rng);
  ASSERT_EQ(state.seed(), nc::SearchState::Status::Running);

  const nc::Population before = state.population();
  // Worst resident, as injectMigrants ranks them.
  std::size_t worstIdx = 0;
  for (std::size_t i = 1; i < before.size(); ++i)
    if (before[i].fitness < before[worstIdx].fitness) worstIdx = i;

  // Three migrants: one duplicate of a resident (must be skipped), two
  // fresh programs with recognizable fitness.
  const nd::Generator gen;
  Rng mrng(99);
  std::vector<nc::SearchState::Migrant> migrants;
  migrants.push_back({before[0].program, before[0].fitness});
  for (int i = 0; i < 2; ++i) {
    auto prog = gen.randomProgram(tc.program.length(), tc.signature, mrng);
    ASSERT_TRUE(prog.has_value());
    migrants.push_back({*prog, 10.0 + i});
  }
  // One of the fresh migrants repeated: the batch itself must dedup.
  migrants.push_back(migrants[1]);

  const std::size_t accepted = state.injectMigrants(migrants);
  EXPECT_EQ(accepted, 2u);

  const nc::Population& after = state.population();
  ASSERT_EQ(after.size(), before.size());
  // The two worst residents were evicted; the migrants sit in their slots.
  std::size_t migrantsFound = 0;
  for (const auto& ind : after)
    if (ind.fitness >= 10.0) ++migrantsFound;
  EXPECT_EQ(migrantsFound, 2u);
  EXPECT_NE(after[worstIdx].program, before[worstIdx].program);
  // No duplicate programs were introduced.
  for (std::size_t i = 0; i < after.size(); ++i)
    for (std::size_t j = i + 1; j < after.size(); ++j)
      EXPECT_FALSE(after[i].program == after[j].program &&
                   after[i].fitness >= 10.0);
}

TEST(Islands, OversizedMigrantBatchNeverEvictsTheIslandsElites) {
  const auto tc = makeCase(19);
  nc::SynthesizerConfig cfg = tinyConfig();
  cfg.ga.populationSize = 8;
  cfg.ga.eliteCount = 2;
  nc::SearchBudget budget(10000);
  Rng rng(7);
  nc::SearchState state(cfg, std::make_shared<nf::EditDistanceFitness>(),
                        nullptr, tc.spec, tc.program.length(), budget, rng);
  ASSERT_EQ(state.seed(), nc::SearchState::Status::Running);
  const auto elites = state.emigrants(2);  // the island's own top-2

  // A fully-connected storm: more migrants than population slots.
  const nd::Generator gen;
  Rng mrng(1234);
  std::vector<nc::SearchState::Migrant> migrants;
  for (int i = 0; i < 12; ++i) {
    auto prog = gen.randomProgram(tc.program.length(), tc.signature, mrng);
    ASSERT_TRUE(prog.has_value());
    migrants.push_back({*prog, 100.0 + i});
  }
  const std::size_t accepted = state.injectMigrants(migrants);
  EXPECT_LE(accepted, 6u);  // populationSize - eliteCount

  // Both original elites survived the storm.
  for (const auto& elite : elites) {
    bool found = false;
    for (const auto& ind : state.population())
      if (ind.program == elite.program) found = true;
    EXPECT_TRUE(found);
  }
}

TEST(Islands, EmigrantsAreTheTopElitesInDescendingOrder) {
  const auto tc = makeCase(8);
  nc::SynthesizerConfig cfg = tinyConfig();
  nc::SearchBudget budget(10000);
  Rng rng(21);
  nc::SearchState state(cfg, std::make_shared<nf::EditDistanceFitness>(),
                        nullptr, tc.spec, tc.program.length(), budget, rng);
  ASSERT_EQ(state.seed(), nc::SearchState::Status::Running);

  const auto top = state.emigrants(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_GE(top[0].fitness, top[1].fitness);
  EXPECT_GE(top[1].fitness, top[2].fitness);
  double maxFitness = 0.0;
  for (const auto& ind : state.population())
    maxFitness = std::max(maxFitness, ind.fitness);
  EXPECT_EQ(top[0].fitness, maxFitness);
}

TEST(Islands, MigrationActuallyHappensOnTheRing) {
  const auto tc = makeCase(13);
  nc::SynthesizerConfig cfg = tinyConfig();
  cfg.strategy = nc::SearchStrategy::Islands;
  cfg.useNeighborhoodSearch = false;  // keep generations cheap
  cfg.islands.count = 3;
  cfg.islands.migrationInterval = 2;
  cfg.islands.migrationSize = 2;
  cfg.maxGenerations = 20;

  Rng rng(17);
  nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>(),
                      nullptr, editFactory());
  const auto r = syn.synthesize(tc.spec, tc.program.length(), 100000, rng);
  ASSERT_EQ(r.islandStats.size(), 3u);
  std::size_t emigrants = 0, immigrants = 0;
  for (const auto& s : r.islandStats) {
    emigrants += s.emigrants;
    immigrants += s.immigrants;
  }
  EXPECT_GT(emigrants, 0u);
  EXPECT_GT(immigrants, 0u);
  EXPECT_LE(immigrants, emigrants);  // dedup can only drop migrants
}

// ------------------------------------------------- ledger exhaustion ------

TEST(Islands, RacingIslandsNeverExceedTheGlobalBudget) {
  const auto tc = makeCase(23);
  for (const std::size_t budget : {40u, 120u, 350u}) {
    nc::SynthesizerConfig cfg = tinyConfig();
    cfg.strategy = nc::SearchStrategy::Islands;
    cfg.islands.count = 4;
    cfg.islands.migrationInterval = 3;
    cfg.islands.threads = 4;

    Rng rng(100 + budget);
    nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>(),
                        nullptr, editFactory());
    const auto r = syn.synthesize(tc.spec, tc.program.length(), budget, rng);
    EXPECT_LE(r.candidatesSearched, budget);
    // The report's total is exactly the sum of the per-island grants.
    std::size_t total = 0;
    for (const auto& s : r.islandStats) total += s.evals;
    EXPECT_EQ(total, r.candidatesSearched);
    // Small budgets must be fully consumed by the racing islands (nothing
    // is lost at the barrier).
    if (!r.found) {
      EXPECT_EQ(r.candidatesSearched, budget);
    }
  }
}

TEST(Islands, SolvedRunsChargeOnlyGrantedCandidates) {
  // Oracle fitness drives all islands toward the target; whoever wins, the
  // accounting must stay within the global limit and deterministic.
  const auto tc = makeCase(61);
  nc::SynthesizerConfig cfg = tinyConfig();
  cfg.strategy = nc::SearchStrategy::Islands;
  cfg.islands.count = 3;
  cfg.islands.migrationInterval = 4;

  const auto oracleFactory = [&tc](std::size_t) {
    return nc::IslandFitness{std::make_shared<nf::OracleCF>(tc.program),
                             nullptr};
  };
  Rng rngA(3), rngB(3);
  nc::Synthesizer a(cfg, std::make_shared<nf::OracleCF>(tc.program), nullptr,
                    oracleFactory);
  const auto ra = a.synthesize(tc.spec, tc.program.length(), 4000, rngA);
  cfg.islands.threads = 3;
  nc::Synthesizer b(cfg, std::make_shared<nf::OracleCF>(tc.program), nullptr,
                    oracleFactory);
  const auto rb = b.synthesize(tc.spec, tc.program.length(), 4000, rngB);

  expectSameResult(ra, rb);
  EXPECT_LE(ra.candidatesSearched, 4000u);
  if (ra.found) {
    ASSERT_EQ(ra.islandStats.size(), 3u);
    std::size_t solvedIslands = 0;
    for (const auto& s : ra.islandStats) solvedIslands += s.solved ? 1 : 0;
    EXPECT_EQ(solvedIslands, 1u);  // exactly one deterministic winner
    EXPECT_TRUE(netsyn::dsl::satisfiesSpec(ra.solution, tc.spec));
  }
}
