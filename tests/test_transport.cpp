// Transport conformance battery: every Transport implementation — pipe
// subprocess, TCP socket, Unix-domain socket, in-process loopback — must
// honor the same contract (util/transport.hpp): lines round trip in order,
// a silent peer times out as TransportTimeout within the stated budget, a
// dead peer surfaces as TransportClosed (never a crash or a hang), kill()
// and close() leave the transport permanently dead, oversized frames trip
// the framing cap, and byte-level chunking cannot corrupt framing.
//
// Also pins the EINTR budget fix: recvLine's deadline is fixed when the
// call starts, so a signal storm delays the timeout by at most one
// delivery instead of restarting the budget each wakeup. Under the old
// restart-on-EINTR behavior the regression tests below never time out and
// hit the ctest wall-clock cap instead of passing.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/fleet.hpp"
#include "service/service.hpp"
#include "util/faultinject.hpp"
#include "util/transport.hpp"

namespace ns = netsyn::service;
namespace nu = netsyn::util;

namespace {

// A SIGKILLed pipe peer turns the next write into SIGPIPE unless it is
// ignored — synth_client and the coordinator both run with it ignored, so
// the conformance process does too.
struct IgnoreSigpipe {
  IgnoreSigpipe() { signal(SIGPIPE, SIG_IGN); }
} ignoreSigpipe;

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string uniqueSockPath(const char* tag) {
  static std::atomic<int> counter{0};
  return "/tmp/netsyn_tconf_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// One-connection-at-a-time echo peer over a real listening socket: every
/// received line is sent straight back. dropPeer() severs the current
/// connection from the server side — the conformance battery's network
/// partition.
class EchoServer {
 public:
  explicit EchoServer(const nu::SocketEndpoint& ep) : listener_(ep) {
    thread_ = std::thread([this] { serve(); });
  }

  ~EchoServer() {
    stopping_.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn_) conn_->sever();
    }
    thread_.join();
    listener_.close();
  }

  const nu::SocketEndpoint& endpoint() const {
    return listener_.boundEndpoint();
  }

  /// Severs the live connection (waiting out the accept race first).
  void dropPeer() {
    for (int i = 0; i < 1000; ++i) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conn_) {
          conn_->sever();
          return;
        }
      }
      usleep(2 * 1000);
    }
    ADD_FAILURE() << "echo server never saw a connection to drop";
  }

 private:
  void serve() {
    while (!stopping_.load(std::memory_order_acquire)) {
      std::unique_ptr<nu::SocketTransport> accepted;
      try {
        accepted = listener_.accept(0.05);
      } catch (const nu::TransportClosed&) {
        break;
      }
      if (!accepted) continue;
      {
        std::lock_guard<std::mutex> lock(mu_);
        conn_ = std::move(accepted);
      }
      try {
        for (;;) {
          const std::string line = conn_->recvLine();
          if (line == "__flood__") {
            // The framing-cap probe: more bytes than the client's cap,
            // deliberately without a newline.
            const std::string blob(4096, 'x');
            conn_->sendBytes(blob.data(), blob.size());
            continue;
          }
          conn_->sendLine(line);
        }
      } catch (const nu::TransportClosed&) {
      }
      std::lock_guard<std::mutex> lock(mu_);
      conn_->close();
      conn_.reset();
    }
  }

  nu::SocketListener listener_;
  std::thread thread_;
  std::mutex mu_;
  std::unique_ptr<nu::SocketTransport> conn_;  ///< severed cross-thread only
  std::atomic<bool> stopping_{false};
};

/// One transport implementation under test, with its capability flags.
class Rig {
 public:
  virtual ~Rig() = default;

  virtual std::unique_ptr<nu::Transport> dial(double recvTimeoutSeconds) = 0;

  /// Makes the peer die out from under the transport.
  virtual void killPeer(nu::Transport& t) = 0;

  /// True when the peer echoes lines byte-for-byte (pipe-to-cat, socket
  /// echo server); the loopback peer answers protocol requests instead.
  virtual bool echoes() const { return true; }

  /// True when a finite receive budget is honored (the loopback executes
  /// requests synchronously and cannot be silent).
  virtual bool canTimeout() const { return true; }

  /// A request line the peer will answer.
  virtual std::string probeLine() const { return "conformance probe line"; }

  virtual bool replyOk(const std::string& sent,
                       const std::string& reply) const {
    return reply == sent;
  }

  /// A transport whose next recvLine must trip the framing cap (the peer
  /// floods bytes without a newline); nullptr when the rig cannot arrange
  /// that.
  virtual std::unique_ptr<nu::Transport> dialFlood() { return nullptr; }
};

class PipeRig : public Rig {
 public:
  std::unique_ptr<nu::Transport> dial(double recvTimeoutSeconds) override {
    return std::make_unique<nu::PipeTransport>("/bin/cat",
                                               std::vector<std::string>{},
                                               recvTimeoutSeconds);
  }

  void killPeer(nu::Transport& t) override {
    ::kill(static_cast<nu::PipeTransport&>(t).pid(), SIGKILL);
  }

  std::unique_ptr<nu::Transport> dialFlood() override {
    // A peer that streams 9 MiB with no newline — past kMaxLineBytes.
    return std::make_unique<nu::PipeTransport>(
        "/bin/sh",
        std::vector<std::string>{
            "-c", "head -c 9437184 /dev/zero | tr '\\0' 'x'"},
        60.0);
  }
};

class SocketRig : public Rig {
 public:
  explicit SocketRig(const nu::SocketEndpoint& listenAt) : server_(listenAt) {}

  std::unique_ptr<nu::Transport> dial(double recvTimeoutSeconds) override {
    return std::make_unique<nu::SocketTransport>(server_.endpoint(),
                                                 recvTimeoutSeconds);
  }

  void killPeer(nu::Transport&) override { server_.dropPeer(); }

  std::unique_ptr<nu::Transport> dialFlood() override {
    // Client-side cap far below the server's flood blob.
    auto t = std::make_unique<nu::SocketTransport>(server_.endpoint(), 30.0,
                                                   /*maxLineBytes=*/512);
    t->sendLine("__flood__");
    return t;
  }

 private:
  EchoServer server_;
};

class LoopbackRig : public Rig {
 public:
  std::unique_ptr<nu::Transport> dial(double) override {
    ns::ServiceConfig cfg;
    cfg.workers = 1;
    return std::make_unique<ns::LoopbackTransport>(
        std::make_shared<ns::SynthService>(cfg));
  }

  void killPeer(nu::Transport& t) override { t.kill(); }

  bool echoes() const override { return false; }
  bool canTimeout() const override { return false; }

  std::string probeLine() const override {
    return "{\"op\": \"hello\", \"token\": \"conformance\"}";
  }

  bool replyOk(const std::string&, const std::string& reply) const override {
    return reply.find("\"ok\": true") != std::string::npos;
  }
};

enum class RigKind { kPipe, kTcp, kUnixDomain, kLoopback };

std::unique_ptr<Rig> makeRig(RigKind kind) {
  switch (kind) {
    case RigKind::kPipe:
      return std::make_unique<PipeRig>();
    case RigKind::kTcp:
      return std::make_unique<SocketRig>(
          nu::SocketEndpoint::parse("127.0.0.1:0"));
    case RigKind::kUnixDomain:
      return std::make_unique<SocketRig>(
          nu::SocketEndpoint::parse("unix:" + uniqueSockPath("rig")));
    case RigKind::kLoopback:
      return std::make_unique<LoopbackRig>();
  }
  return nullptr;
}

class TransportConformance : public ::testing::TestWithParam<RigKind> {
 protected:
  void SetUp() override { rig_ = makeRig(GetParam()); }
  std::unique_ptr<Rig> rig_;
};

}  // namespace

TEST_P(TransportConformance, RoundTripsLines) {
  auto t = rig_->dial(30.0);
  ASSERT_TRUE(t->alive());
  const std::string sent = rig_->probeLine();
  for (int i = 0; i < 3; ++i) {
    const std::string reply = t->request(sent);
    EXPECT_TRUE(rig_->replyOk(sent, reply)) << "reply: " << reply;
  }
  if (rig_->echoes()) {
    // Content survives JSON-ish punctuation, spaces, and length changes.
    for (const std::string& line :
         {std::string("{\"op\": \"claim\", \"tasks\": [0, 1, 2]}"),
          std::string(2000, 'y'), std::string("")})
      EXPECT_EQ(t->request(line), line);
  }
  t->close();
  EXPECT_FALSE(t->alive());
}

TEST_P(TransportConformance, PipelinedLinesComeBackInOrder) {
  auto t = rig_->dial(30.0);
  const std::string probe = rig_->probeLine();
  std::vector<std::string> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(rig_->echoes() ? "line-" + std::to_string(i) : probe);
    t->sendLine(sent.back());
  }
  for (int i = 0; i < 5; ++i) {
    const std::string reply = t->recvLine();
    EXPECT_TRUE(rig_->replyOk(sent[static_cast<std::size_t>(i)], reply))
        << "reply " << i << ": " << reply;
  }
}

TEST_P(TransportConformance, SilentPeerTimesOutWithinBudget) {
  if (!rig_->canTimeout())
    GTEST_SKIP() << "rig executes requests synchronously";
  auto t = rig_->dial(0.35);
  const double start = nowSeconds();
  EXPECT_THROW(t->recvLine(), nu::TransportTimeout);
  const double elapsed = nowSeconds() - start;
  EXPECT_GE(elapsed, 0.3);
  EXPECT_LT(elapsed, 5.0);
  // A timed-out transport is dead: the protocol cannot resynchronize.
  EXPECT_FALSE(t->alive());
  EXPECT_THROW(t->recvLine(), nu::TransportClosed);
}

TEST_P(TransportConformance, PeerDeathSurfacesAsTransportClosed) {
  auto t = rig_->dial(30.0);
  if (rig_->echoes()) {
    // A completed round trip first: death mid-session, not mid-dial.
    ASSERT_EQ(t->request("warmup"), "warmup");
  }
  rig_->killPeer(*t);
  EXPECT_THROW(t->recvLine(), nu::TransportClosed);
  EXPECT_FALSE(t->alive());
  // Dead for good — no operation revives the session.
  EXPECT_THROW(t->sendLine("after death"), nu::TransportClosed);
  EXPECT_THROW(t->recvLine(), nu::TransportClosed);
}

TEST_P(TransportConformance, KillAndCloseAreTerminalAndIdempotent) {
  auto t = rig_->dial(30.0);
  t->kill();
  EXPECT_FALSE(t->alive());
  EXPECT_THROW(t->sendLine("x"), nu::TransportClosed);
  t->kill();   // idempotent
  t->close();  // and interchangeable once dead
  EXPECT_FALSE(t->alive());

  auto u = rig_->dial(30.0);
  u->close();
  EXPECT_FALSE(u->alive());
  EXPECT_THROW(u->recvLine(), nu::TransportClosed);
  u->close();
}

TEST_P(TransportConformance, OversizedLineTripsFramingCap) {
  auto t = rig_->dialFlood();
  if (!t) GTEST_SKIP() << "rig has no framing layer to flood";
  try {
    (void)t->recvLine();
    FAIL() << "a line past the framing cap must sever the transport";
  } catch (const nu::TransportTimeout&) {
    FAIL() << "framing cap must trip before the receive timeout";
  } catch (const nu::TransportClosed&) {
    // The contract: severed, not resized.
  }
  EXPECT_FALSE(t->alive());
}

TEST_P(TransportConformance, EmbeddedNulBytesRoundTrip) {
  if (!rig_->echoes()) GTEST_SKIP() << "peer parses requests as JSON";
  auto t = rig_->dial(30.0);
  const std::string payload("nul\0inside", 10);
  ASSERT_EQ(payload.size(), 10u);
  const std::string reply = t->request(payload);
  EXPECT_EQ(reply, payload);
}

TEST_P(TransportConformance, ChunkedFramesReassembleExactly) {
  auto t = rig_->dial(30.0);
  auto* sock = dynamic_cast<nu::SocketTransport*>(t.get());
  if (!sock) GTEST_SKIP() << "rig has no byte-level write handle";
  // One line dripped a byte at a time across write (and so TCP segment)
  // boundaries: framing must reassemble it bit-exact.
  const std::string line = "{\"op\": \"claim\", \"config\": {\"seed\": 7}}";
  const std::string framed = line + "\n";
  for (char c : framed) sock->sendBytes(&c, 1);
  EXPECT_EQ(t->recvLine(), line);
  // A burst of several lines in one write drains one recvLine at a time.
  const std::string burst = "alpha\nbeta\ngamma\n";
  sock->sendBytes(burst.data(), burst.size());
  EXPECT_EQ(t->recvLine(), "alpha");
  EXPECT_EQ(t->recvLine(), "beta");
  EXPECT_EQ(t->recvLine(), "gamma");
}

INSTANTIATE_TEST_SUITE_P(AllTransports, TransportConformance,
                         ::testing::Values(RigKind::kPipe, RigKind::kTcp,
                                           RigKind::kUnixDomain,
                                           RigKind::kLoopback),
                         [](const ::testing::TestParamInfo<RigKind>& info) {
                           switch (info.param) {
                             case RigKind::kPipe:
                               return "Pipe";
                             case RigKind::kTcp:
                               return "Tcp";
                             case RigKind::kUnixDomain:
                               return "UnixDomain";
                             case RigKind::kLoopback:
                               return "Loopback";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------ EINTR budget regression --

namespace {

extern "C" void onConformanceAlarm(int) {}  // delivery is the point

/// Fires SIGALRM every 30 ms with SA_RESTART off, so every blocking poll
/// in scope keeps waking with EINTR. Restores the previous disposition.
class SignalStorm {
 public:
  SignalStorm() {
    struct sigaction sa {};
    sa.sa_handler = onConformanceAlarm;
    sa.sa_flags = 0;  // deliberately no SA_RESTART: poll must see EINTR
    sigaction(SIGALRM, &sa, &prev_);
    struct itimerval iv {};
    iv.it_interval.tv_usec = 30 * 1000;
    iv.it_value.tv_usec = 30 * 1000;
    setitimer(ITIMER_REAL, &iv, nullptr);
  }

  ~SignalStorm() {
    struct itimerval off {};
    setitimer(ITIMER_REAL, &off, nullptr);
    sigaction(SIGALRM, &prev_, nullptr);
  }

 private:
  struct sigaction prev_ {};
};

}  // namespace

// The pinned bugfix: an EINTR wakeup must resume the *remaining* receive
// budget, not restart it. With restart-on-EINTR semantics a 30 ms signal
// cadence against a 0.4 s budget never expires — this test would hang into
// the ctest timeout instead of passing.
TEST(TransportEintr, PipeRecvBudgetSurvivesSignalStorm) {
  nu::PipeTransport t("/bin/cat", {}, 0.4);
  SignalStorm storm;
  const double start = nowSeconds();
  EXPECT_THROW(t.recvLine(), nu::TransportTimeout);
  const double elapsed = nowSeconds() - start;
  EXPECT_GE(elapsed, 0.35);
  EXPECT_LT(elapsed, 5.0) << "EINTR restarted the budget";
}

TEST(TransportEintr, SocketRecvBudgetSurvivesSignalStorm) {
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  nu::SocketTransport t(fds[0], "storm-peer", 0.4);
  SignalStorm storm;
  const double start = nowSeconds();
  EXPECT_THROW(t.recvLine(), nu::TransportTimeout);
  const double elapsed = nowSeconds() - start;
  EXPECT_GE(elapsed, 0.35);
  EXPECT_LT(elapsed, 5.0) << "EINTR restarted the budget";
  ::close(fds[1]);
}

// --------------------------------------------------- endpoints & listener --

TEST(SocketEndpoint, ParsesAndRoundTripsBothForms) {
  const nu::SocketEndpoint tcp = nu::SocketEndpoint::parse("127.0.0.1:5001");
  EXPECT_FALSE(tcp.isUnix);
  EXPECT_EQ(tcp.host, "127.0.0.1");
  EXPECT_EQ(tcp.port, 5001);
  EXPECT_EQ(tcp.str(), "127.0.0.1:5001");

  const nu::SocketEndpoint named = nu::SocketEndpoint::parse("localhost:0");
  EXPECT_EQ(named.host, "localhost");
  EXPECT_EQ(named.port, 0);

  const nu::SocketEndpoint un = nu::SocketEndpoint::parse("unix:/tmp/s.sock");
  EXPECT_TRUE(un.isUnix);
  EXPECT_EQ(un.host, "/tmp/s.sock");
  EXPECT_EQ(un.str(), "unix:/tmp/s.sock");
  EXPECT_EQ(nu::SocketEndpoint::parse(un.str()).host, un.host);
}

TEST(SocketEndpoint, RejectsMalformedForms) {
  EXPECT_THROW(nu::SocketEndpoint::parse(""), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("noport"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("host:"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse(":5001"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("host:abc"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("host:70000"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("unix:"), std::invalid_argument);
  EXPECT_THROW(nu::SocketEndpoint::parse("unix:" + std::string(200, 'p')),
               std::invalid_argument);
}

TEST(SocketListener, EphemeralPortResolvesAndAcceptTimesOutClean) {
  nu::SocketListener l(nu::SocketEndpoint::parse("127.0.0.1:0"));
  EXPECT_NE(l.boundEndpoint().port, 0) << "port 0 must resolve at bind";
  EXPECT_EQ(l.accept(0.05), nullptr) << "no dialer: accept times out";
}

TEST(SocketListener, UnixSocketPathIsUnlinkedOnClose) {
  const std::string path = uniqueSockPath("unlink");
  {
    nu::SocketListener l(nu::SocketEndpoint::parse("unix:" + path));
    struct stat st {};
    ASSERT_EQ(stat(path.c_str(), &st), 0);
    EXPECT_TRUE(S_ISSOCK(st.st_mode));
  }
  struct stat st {};
  EXPECT_NE(stat(path.c_str(), &st), 0) << "listener must unlink its path";
}

TEST(SocketTransport, DialToDeadEndpointThrowsTransportClosed) {
  // Grab an ephemeral port, then close the listener: the dial must fail as
  // TransportClosed (the reconnect loop's retryable signal), not crash.
  nu::SocketEndpoint ep;
  {
    nu::SocketListener l(nu::SocketEndpoint::parse("127.0.0.1:0"));
    ep = l.boundEndpoint();
  }
  EXPECT_THROW(nu::SocketTransport t(ep), nu::TransportClosed);
  EXPECT_THROW(
      nu::SocketTransport u(nu::SocketEndpoint::parse(
          "unix:" + uniqueSockPath("gone"))),
      nu::TransportClosed);
}

// ------------------------------------------------------------ fault sites --

TEST(TransportFaults, ArmedSitesSeverLikeAPartition) {
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();

  reg.armFromText("transport.dial=throw@1");
  EXPECT_THROW(
      nu::SocketTransport t(nu::SocketEndpoint::parse("127.0.0.1:1")),
      nu::TransportClosed);
  reg.disarmAll();

  // A recv fault severs an otherwise healthy connection.
  int fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    nu::SocketTransport t(fds[0], "fault-peer", 1.0);
    reg.armFromText("transport.recv=throw@1");
    EXPECT_THROW(t.recvLine(), nu::TransportClosed);
    EXPECT_FALSE(t.alive());
    reg.disarmAll();
  }
  ::close(fds[1]);

  // An accept fault drops that one connection; the listener survives.
  nu::SocketListener l(nu::SocketEndpoint::parse("127.0.0.1:0"));
  reg.armFromText("transport.accept=throw@1");
  nu::SocketTransport dialer(l.boundEndpoint(), 1.0);
  EXPECT_THROW((void)l.accept(2.0), nu::TransportClosed);
  reg.disarmAll();
  EXPECT_TRUE(l.listening());
  nu::SocketTransport dialer2(l.boundEndpoint(), 5.0);
  auto accepted = l.accept(2.0);
  ASSERT_NE(accepted, nullptr);
  accepted->sendLine("still serving");
  EXPECT_EQ(dialer2.recvLine(), "still serving");
}
