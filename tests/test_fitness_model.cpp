// Tests for the NN-FF model (Figure 2), trainer, and learned-fitness
// wrappers: shapes, determinism, head validation, learnability on a small
// corpus, and probability-map caching.
#include <gtest/gtest.h>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"
#include "fitness/neural_fitness.hpp"
#include "fitness/trainer.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
namespace nn = netsyn::nn;
using netsyn::util::Rng;

namespace {

/// Tiny model dimensions so unit tests stay fast.
nf::NnffConfig tinyConfig(nf::HeadKind head, bool useTrace = true) {
  nf::NnffConfig cfg;
  cfg.encoder = {.vmax = 16, .maxValueTokens = 6};
  cfg.embedDim = 8;
  cfg.hiddenDim = 12;
  cfg.numClasses = 5;  // length-4 targets -> labels 0..4
  cfg.maxExamples = 3;
  cfg.head = head;
  cfg.useTrace = useTrace;
  cfg.seed = 42;
  return cfg;
}

std::vector<nf::Sample> tinyDataset(std::size_t n, nf::BalanceMetric metric,
                                    std::uint64_t seed) {
  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 3;
  nf::DatasetBuilder builder(dc);
  Rng rng(seed);
  return builder.build(n, metric, rng);
}

}  // namespace

TEST(NnffModel, OutDimFollowsHead) {
  EXPECT_EQ(nf::NnffModel(tinyConfig(nf::HeadKind::Classifier)).outDim(), 5u);
  EXPECT_EQ(
      nf::NnffModel(tinyConfig(nf::HeadKind::Multilabel, false)).outDim(),
      nd::kNumFunctions);
  EXPECT_EQ(nf::NnffModel(tinyConfig(nf::HeadKind::Regression)).outDim(), 1u);
}

TEST(NnffModel, ForwardShapeAndDeterminism) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Classifier));
  const auto set = tinyDataset(2, nf::BalanceMetric::CF, 1);
  const auto& s = set.front();
  nn::InferenceModeGuard guard;
  const auto a = model.forward(s.spec, s.candidate, s.traces);
  const auto b = model.forward(s.spec, s.candidate, s.traces);
  EXPECT_EQ(a->value().rows(), 1u);
  EXPECT_EQ(a->value().cols(), 5u);
  EXPECT_EQ(a->value(), b->value());
}

TEST(NnffModel, DifferentCandidatesProduceDifferentLogits) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Classifier));
  const auto set = tinyDataset(4, nf::BalanceMetric::CF, 2);
  nn::InferenceModeGuard guard;
  const auto a =
      model.forward(set[0].spec, set[0].candidate, set[0].traces);
  // Same spec, different candidate/trace.
  const auto other = nf::tracesFor(set[1].candidate, set[0].spec);
  const auto b = model.forward(set[0].spec, set[1].candidate, other);
  EXPECT_NE(a->value(), b->value());
}

TEST(NnffModel, TraceLengthMismatchThrows) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Classifier));
  auto set = tinyDataset(1, nf::BalanceMetric::CF, 3);
  auto& s = set.front();
  s.traces[0].pop_back();
  nn::InferenceModeGuard guard;
  EXPECT_THROW(model.forward(s.spec, s.candidate, s.traces),
               std::invalid_argument);
}

TEST(NnffModel, IOOnlyForwardRequiresNoTraceModel) {
  nf::NnffModel withTrace(tinyConfig(nf::HeadKind::Classifier, true));
  const auto set = tinyDataset(1, nf::BalanceMetric::CF, 4);
  nn::InferenceModeGuard guard;
  EXPECT_THROW(withTrace.forwardIOOnly(set[0].spec), std::logic_error);
  nf::NnffModel ioOnly(tinyConfig(nf::HeadKind::Multilabel, false));
  const auto logits = ioOnly.forwardIOOnly(set[0].spec);
  EXPECT_EQ(logits->value().cols(), nd::kNumFunctions);
}

TEST(NnffModel, SaveLoadRoundTrip) {
  nf::NnffModel a(tinyConfig(nf::HeadKind::Classifier));
  const std::string path = "/tmp/netsyn_nnff_test.bin";
  a.save(path);
  auto cfg = tinyConfig(nf::HeadKind::Classifier);
  cfg.seed = 777;  // different init
  nf::NnffModel b(cfg);
  b.load(path);
  const auto set = tinyDataset(1, nf::BalanceMetric::CF, 5);
  nn::InferenceModeGuard guard;
  const auto& s = set.front();
  EXPECT_EQ(a.forward(s.spec, s.candidate, s.traces)->value(),
            b.forward(s.spec, s.candidate, s.traces)->value());
  std::remove(path.c_str());
}

// ----------------------------------------------------------- training -----

TEST(Trainer, ClassifierLossDecreasesAndLearnsRanking) {
  auto cfg = tinyConfig(nf::HeadKind::Classifier);
  cfg.embedDim = 12;
  cfg.hiddenDim = 16;
  nf::NnffModel model(cfg);
  const auto trainSet = tinyDataset(400, nf::BalanceMetric::CF, 6);
  const auto valSet = tinyDataset(60, nf::BalanceMetric::CF, 7);
  nf::TrainConfig tc;
  tc.epochs = 6;
  tc.batchSize = 8;
  tc.learningRate = 1e-2f;
  tc.labelMetric = nf::BalanceMetric::CF;
  nf::Trainer trainer(tc);
  const auto history = trainer.train(model, trainSet, valSet);
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);

  // What the GA needs is a *ranking* signal: the mean predicted fitness of
  // close candidates (cf >= 3) must exceed that of far ones (cf <= 1).
  nf::NeuralFitness fit(
      std::shared_ptr<nf::NnffModel>(&model, [](nf::NnffModel*) {}), "NN_CF");
  double closeSum = 0, farSum = 0;
  int closeN = 0, farN = 0;
  for (const auto& s : valSet) {
    std::vector<nd::ExecResult> runs;
    for (const auto& ex : s.spec.examples)
      runs.push_back(nd::run(s.candidate, ex.inputs));
    const double score = fit.score(s.candidate, {s.spec, runs});
    if (s.cf >= 3) {
      closeSum += score;
      ++closeN;
    } else if (s.cf <= 1) {
      farSum += score;
      ++farN;
    }
  }
  ASSERT_GT(closeN, 0);
  ASSERT_GT(farN, 0);
  EXPECT_GT(closeSum / closeN, farSum / farN);
}

TEST(Trainer, ConfusionMatrixRowsSumToRowTotals) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Classifier));
  const auto valSet = tinyDataset(40, nf::BalanceMetric::CF, 8);
  nf::Trainer trainer;
  const auto cm = trainer.confusion(model, valSet);
  EXPECT_EQ(cm.total(), 40u);
  std::size_t rows = 0;
  for (std::size_t i = 0; i < cm.numClasses(); ++i) rows += cm.rowTotal(i);
  EXPECT_EQ(rows, 40u);
}

TEST(Trainer, MultilabelFpModelLearnsPresence) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Multilabel, false));
  const auto trainSet = tinyDataset(120, nf::BalanceMetric::CF, 9);
  const auto valSet = tinyDataset(40, nf::BalanceMetric::CF, 10);
  nf::TrainConfig tc;
  tc.epochs = 3;
  tc.learningRate = 3e-3f;
  nf::Trainer trainer(tc);
  const auto history = trainer.train(model, trainSet, valSet);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
  // 4 of 41 functions present: predicting "all absent" already gives ~0.90,
  // so require the trained model to be at least in that regime.
  EXPECT_GT(nf::Trainer::multilabelAccuracy(model, valSet), 0.85);
}

TEST(Trainer, RegressionHeadTrainsAndReportsMae) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Regression));
  const auto trainSet = tinyDataset(100, nf::BalanceMetric::CF, 11);
  const auto valSet = tinyDataset(30, nf::BalanceMetric::CF, 12);
  nf::TrainConfig tc;
  tc.epochs = 3;
  tc.learningRate = 3e-3f;
  nf::Trainer trainer(tc);
  const auto history = trainer.train(model, trainSet, valSet);
  EXPECT_LT(history.back().trainLoss, history.front().trainLoss);
  const double mae = trainer.regressionMae(model, valSet);
  EXPECT_GE(mae, 0.0);
  EXPECT_LT(mae, 4.0);  // labels span 0..4; must beat the worst case
}

TEST(Trainer, EpochCallbackObservesEveryEpoch) {
  nf::NnffModel model(tinyConfig(nf::HeadKind::Classifier));
  const auto trainSet = tinyDataset(20, nf::BalanceMetric::CF, 13);
  nf::TrainConfig tc;
  tc.epochs = 2;
  nf::Trainer trainer(tc);
  std::vector<std::size_t> seen;
  trainer.train(model, trainSet, {}, [&](const nf::EpochStats& e) {
    seen.push_back(e.epoch);
  });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1}));
}

TEST(Trainer, WrongHeadThrowsOnSpecializedEvals) {
  nf::NnffModel classifier(tinyConfig(nf::HeadKind::Classifier));
  nf::NnffModel multilabel(tinyConfig(nf::HeadKind::Multilabel, false));
  const auto set = tinyDataset(2, nf::BalanceMetric::CF, 14);
  nf::Trainer trainer;
  EXPECT_THROW(trainer.confusion(multilabel, set), std::logic_error);
  EXPECT_THROW(nf::Trainer::multilabelAccuracy(classifier, set),
               std::logic_error);
  EXPECT_THROW(trainer.regressionMae(classifier, set), std::logic_error);
}

// ------------------------------------------------- fitness wrappers -------

TEST(NeuralFitness, ScoreIsClassExpectationWithinRange) {
  auto model = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Classifier));
  nf::NeuralFitness fit(model, "NN_CF");
  const auto set = tinyDataset(3, nf::BalanceMetric::CF, 15);
  for (const auto& s : set) {
    std::vector<nd::ExecResult> runs;
    for (std::size_t i = 0; i < s.spec.size(); ++i)
      runs.push_back(nd::run(s.candidate, s.spec.examples[i].inputs));
    const nf::EvalContext ctx{s.spec, runs};
    const double score = fit.score(s.candidate, ctx);
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 4.0);
    const auto probs = fit.classProbabilities(s.candidate, ctx);
    double sum = 0;
    for (double p : probs) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-4);
  }
  EXPECT_EQ(fit.name(), "NN_CF");
  EXPECT_DOUBLE_EQ(fit.maxScore(5), 4.0);
}

TEST(NeuralFitness, RejectsWrongHead) {
  auto fp = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Multilabel, false));
  EXPECT_THROW(nf::NeuralFitness(fp, "x"), std::invalid_argument);
}

TEST(ProbMapFitness, MapCachedPerSpecAndScoresSum) {
  auto model = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Multilabel, false));
  nf::ProbMapFitness fit(model);
  const auto set = tinyDataset(2, nf::BalanceMetric::CF, 16);
  const auto& s = set.front();
  const auto map1 = fit.probMap(s.spec);
  const auto map2 = fit.probMap(s.spec);
  EXPECT_EQ(map1, map2);
  for (double p : map1) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  std::vector<nd::ExecResult> runs;
  for (const auto& ex : s.spec.examples)
    runs.push_back(nd::run(s.candidate, ex.inputs));
  const nf::EvalContext ctx{s.spec, runs};
  double expected = 0.0;
  for (auto f : s.candidate.functions()) expected += map1[f];
  EXPECT_NEAR(fit.score(s.candidate, ctx), expected, 1e-9);
}

TEST(ProbMapFitness, RejectsTraceModel) {
  auto traced = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Multilabel, true));
  EXPECT_THROW(nf::ProbMapFitness{traced}, std::invalid_argument);
}

TEST(RegressionFitness, NonNegativeScores) {
  auto model = std::make_shared<nf::NnffModel>(
      tinyConfig(nf::HeadKind::Regression));
  nf::RegressionFitness fit(model);
  const auto set = tinyDataset(3, nf::BalanceMetric::CF, 17);
  for (const auto& s : set) {
    std::vector<nd::ExecResult> runs;
    for (const auto& ex : s.spec.examples)
      runs.push_back(nd::run(s.candidate, ex.inputs));
    EXPECT_GE(fit.score(s.candidate, {s.spec, runs}), 0.0);
  }
}
