// Domain-refactor parity: the list domain routed through the Domain
// interface must be BIT-IDENTICAL to the pre-refactor engine. Every
// constant below (winner program, candidate counts, generations, best
// fitness, post-run RNG probe, workload targets, spec fingerprints) was
// captured by running the exact same seeds against the pre-domain library
// (PR 4 head) before the Domain abstraction was introduced. A mismatch
// means the refactor changed the search trajectory — an RNG draw, a
// vocabulary ordering, or a weights indexing — and must be fixed, not
// re-pinned.
//
// Each scenario runs twice: once with the implicit domain (GeneratorConfig
// defaults, domain == nullptr — the legacy call shape every old caller
// still uses) and once with an explicit &listDomain() pointer threaded
// through SynthesizerConfig. Both must reproduce the pinned values.
#include <gtest/gtest.h>

#include <memory>

#include "core/synthesizer.hpp"
#include "dsl/domain.hpp"
#include "fitness/edit.hpp"
#include "harness/config.hpp"
#include "harness/workload.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
using netsyn::util::Rng;

namespace {

// ---- pinned pre-refactor values (see header comment) ------------------------

constexpr char kTarget[] = "DROP | ZIPWITH(min) | FILTER(odd) | MAP(^2)";
constexpr std::uint64_t kSpecFp = 2111853876781834111ULL;

constexpr char kSingleSolution[] =
    "FILTER(odd) | INSERT | MAP(^2) | FILTER(odd)";
constexpr std::size_t kSingleCands = 1380;
constexpr std::size_t kSingleGens = 73;
constexpr std::size_t kSingleNs = 2;
constexpr double kSingleBest = 0.7142857142857143;
constexpr std::uint64_t kSingleRngNext = 26759686;

constexpr char kIslandsSolution[] = "INSERT | FILTER(odd) | MAP(^2) | DELETE";
constexpr std::size_t kIslandsCands = 553;
constexpr std::size_t kIslandsGens = 7;
constexpr std::size_t kIslandsEvalsSum = 553;
constexpr std::size_t kIslandsImmigrants = 7;
constexpr double kIslandsBest = 0.625;
constexpr std::uint64_t kIslandsRngNext = 1051942587;

constexpr char kWorkload0[] = "DROP | MAP(/4) | SORT | COUNT(even)";
constexpr std::uint64_t kWorkload0Fp = 17061368034953412628ULL;
constexpr char kWorkload3[] = "SCANL1(+) | ZIPWITH(*) | MAP(/3) | ZIPWITH(max)";
constexpr std::uint64_t kWorkload3Fp = 18349756513069241585ULL;

constexpr char kGenProg[] = "ZIPWITH(*) | TAKE | MAP(/4) | MAP(+1) | MAP(/3)";
constexpr std::uint64_t kGenRngNext = 695360485;

// ---- scenario plumbing ------------------------------------------------------

nc::SynthesizerConfig probeConfig(bool explicitDomain) {
  nc::SynthesizerConfig sc;
  sc.ga.populationSize = 30;
  sc.ga.eliteCount = 3;
  sc.maxGenerations = 400;
  sc.nsTopN = 3;
  sc.nsWindow = 5;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = nc::NsKind::BFS;
  if (explicitDomain) sc.generator = nd::listDomain().makeGeneratorConfig();
  return sc;
}

nd::Generator::TestCase probeCase(bool explicitDomain) {
  const nd::Generator gen = explicitDomain
                                ? nd::Generator(nd::listDomain())
                                : nd::Generator();
  Rng rng(12345);
  auto tc = gen.randomTestCase(4, 5, false, rng);
  EXPECT_TRUE(tc.has_value());
  return *tc;
}

class DomainParity : public ::testing::TestWithParam<bool> {};

}  // namespace

TEST_P(DomainParity, TestCaseGenerationMatchesPin) {
  const auto tc = probeCase(GetParam());
  EXPECT_EQ(tc.program.toString(), kTarget);
  EXPECT_EQ(tc.spec.fingerprint(), kSpecFp);
}

TEST_P(DomainParity, SinglePopulationMatchesPin) {
  const auto tc = probeCase(GetParam());
  nc::Synthesizer syn(probeConfig(GetParam()),
                      std::make_shared<nf::EditDistanceFitness>(
                          GetParam() ? &nd::listDomain() : nullptr));
  Rng rng(777);
  const auto r = syn.synthesize(tc.spec, 4, 6000, rng);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.solution.toString(), kSingleSolution);
  EXPECT_EQ(r.candidatesSearched, kSingleCands);
  EXPECT_EQ(r.generations, kSingleGens);
  EXPECT_EQ(r.nsInvocations, kSingleNs);
  EXPECT_DOUBLE_EQ(r.bestFitness, kSingleBest);
  // The strongest pin: the search consumed *exactly* the same RNG draws.
  EXPECT_EQ(rng.uniform(1u << 30), kSingleRngNext);
}

TEST_P(DomainParity, IslandsK4MatchesPin) {
  const auto tc = probeCase(GetParam());
  auto sc = probeConfig(GetParam());
  sc.strategy = nc::SearchStrategy::Islands;
  sc.islands.count = 4;
  sc.islands.migrationInterval = 5;
  sc.islands.migrationSize = 2;
  sc.islands.threads = 2;
  const bool explicitDomain = GetParam();
  auto makeFit = [explicitDomain]() {
    return std::make_shared<nf::EditDistanceFitness>(
        explicitDomain ? &nd::listDomain() : nullptr);
  };
  nc::Synthesizer syn(sc, makeFit(), nullptr, [makeFit](std::size_t) {
    return nc::IslandFitness{makeFit(), nullptr};
  });
  Rng rng(777);
  const auto r = syn.synthesize(tc.spec, 4, 6000, rng);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.solution.toString(), kIslandsSolution);
  EXPECT_EQ(r.candidatesSearched, kIslandsCands);
  EXPECT_EQ(r.generations, kIslandsGens);
  std::size_t evals = 0, immigrants = 0;
  for (const auto& is : r.islandStats) {
    evals += is.evals;
    immigrants += is.immigrants;
  }
  EXPECT_EQ(evals, kIslandsEvalsSum);
  EXPECT_EQ(immigrants, kIslandsImmigrants);
  EXPECT_DOUBLE_EQ(r.bestFitness, kIslandsBest);
  EXPECT_EQ(rng.uniform(1u << 30), kIslandsRngNext);
}

TEST_P(DomainParity, GeneratorRngStreamMatchesPin) {
  const nd::Generator gen = GetParam() ? nd::Generator(nd::listDomain())
                                       : nd::Generator();
  Rng rng(424242);
  const auto p =
      gen.randomProgram(5, {nd::Type::List, nd::Type::Int}, rng);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->toString(), kGenProg);
  EXPECT_EQ(rng.uniform(1u << 30), kGenRngNext);
}

INSTANTIATE_TEST_SUITE_P(ImplicitAndExplicitDomain, DomainParity,
                         ::testing::Values(false, true),
                         [](const auto& info) {
                           return info.param ? "ExplicitListDomain"
                                             : "ImplicitDefault";
                         });

// ---- harness-level pins -----------------------------------------------------

TEST(DomainParityHarness, WorkloadMatchesPin) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 4;
  const auto wl = nh::makeWorkload(cfg, 4);
  ASSERT_EQ(wl.size(), 4u);
  EXPECT_EQ(wl[0].target.toString(), kWorkload0);
  EXPECT_EQ(wl[0].spec.fingerprint(), kWorkload0Fp);
  EXPECT_EQ(wl[3].target.toString(), kWorkload3);
  EXPECT_EQ(wl[3].spec.fingerprint(), kWorkload3Fp);
}

TEST(DomainParityHarness, ExplicitListDomainFlagChangesNothing) {
  // --domain=list through the config layer must leave the workload
  // untouched (applyDomain is a no-op for the list domain).
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 4;
  cfg.domainName = "list";
  cfg.applyDomain();
  const auto wl = nh::makeWorkload(cfg, 4);
  ASSERT_EQ(wl.size(), 4u);
  EXPECT_EQ(wl[0].target.toString(), kWorkload0);
  EXPECT_EQ(wl[3].spec.fingerprint(), kWorkload3Fp);
}

TEST(DomainParityHarness, ListDomainVocabularyIsIdentity) {
  // The bit-identity argument rests on local index == global FuncId for the
  // list domain; pin it structurally, not just behaviourally.
  const nd::Domain& d = nd::listDomain();
  ASSERT_EQ(d.vocabSize(), nd::kNumFunctions);
  for (std::size_t i = 0; i < d.vocabSize(); ++i) {
    EXPECT_EQ(d.vocabulary[i], static_cast<nd::FuncId>(i));
    EXPECT_EQ(d.localIndex(static_cast<nd::FuncId>(i)), i);
  }
  EXPECT_EQ(d.returning(nd::Type::Int), nd::functionsReturning(nd::Type::Int));
  EXPECT_EQ(d.returning(nd::Type::List),
            nd::functionsReturning(nd::Type::List));
}
