// Generator tests: fully-live random programs, spec construction, test-case
// generation (singleton vs list programs), determinism, and Program
// serialization round-trips.
#include <gtest/gtest.h>

#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
using netsyn::util::Rng;

TEST(Generator, RandomSignatureStartsWithList) {
  nd::Generator gen;
  Rng rng(1);
  bool saw_int = false, saw_list_only = false;
  for (int i = 0; i < 200; ++i) {
    const auto sig = gen.randomSignature(rng);
    ASSERT_GE(sig.size(), 1u);
    ASSERT_LE(sig.size(), 2u);
    EXPECT_EQ(sig[0], nd::Type::List);
    if (sig.size() == 2) {
      EXPECT_EQ(sig[1], nd::Type::Int);
      saw_int = true;
    } else {
      saw_list_only = true;
    }
  }
  EXPECT_TRUE(saw_int);
  EXPECT_TRUE(saw_list_only);
}

TEST(Generator, RandomValuesRespectConfiguredRanges) {
  nd::GeneratorConfig cfg;
  cfg.minValue = -5;
  cfg.maxValue = 5;
  cfg.minListLength = 2;
  cfg.maxListLength = 4;
  nd::Generator gen(cfg);
  Rng rng(2);
  for (int i = 0; i < 300; ++i) {
    const auto v = gen.randomValue(nd::Type::Int, rng);
    EXPECT_GE(v.asInt(), -5);
    EXPECT_LE(v.asInt(), 5);
    const auto l = gen.randomValue(nd::Type::List, rng);
    EXPECT_GE(l.asList().size(), 2u);
    EXPECT_LE(l.asList().size(), 4u);
    for (auto x : l.asList()) {
      EXPECT_GE(x, -5);
      EXPECT_LE(x, 5);
    }
  }
}

class RandomProgramLengths : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramLengths, FullyLiveAtExactLength) {
  const auto length = static_cast<std::size_t>(GetParam());
  nd::Generator gen;
  Rng rng(100 + GetParam());
  for (int i = 0; i < 30; ++i) {
    const auto sig = gen.randomSignature(rng);
    const auto p = gen.randomProgram(length, sig, rng);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->length(), length);
    EXPECT_TRUE(nd::isFullyLive(*p, sig)) << p->toString();
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, RandomProgramLengths,
                         ::testing::Values(1, 2, 3, 5, 7, 10, 12));

TEST(Generator, RandomProgramHonorsOutputTypeConstraint) {
  nd::Generator gen;
  Rng rng(7);
  const nd::InputSignature sig = {nd::Type::List};
  for (int i = 0; i < 20; ++i) {
    const auto pInt = gen.randomProgram(5, sig, rng, nd::Type::Int);
    ASSERT_TRUE(pInt.has_value());
    EXPECT_EQ(pInt->outputType(), nd::Type::Int);
    const auto pList = gen.randomProgram(5, sig, rng, nd::Type::List);
    ASSERT_TRUE(pList.has_value());
    EXPECT_EQ(pList->outputType(), nd::Type::List);
  }
}

TEST(Generator, MakeSpecOutputsMatchProgramExecution) {
  nd::Generator gen;
  Rng rng(11);
  const nd::InputSignature sig = {nd::Type::List};
  const auto p = gen.randomProgram(4, sig, rng);
  ASSERT_TRUE(p.has_value());
  const auto spec = gen.makeSpec(*p, sig, 5, rng);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->size(), 5u);
  for (const auto& ex : spec->examples) {
    EXPECT_EQ(nd::eval(*p, ex.inputs), ex.output);
  }
  EXPECT_TRUE(nd::satisfiesSpec(*p, *spec));
}

TEST(Generator, MakeSpecRejectsAllDefaultOutputs) {
  nd::Generator gen;
  Rng rng(13);
  const nd::InputSignature sig = {nd::Type::List};
  for (int i = 0; i < 20; ++i) {
    const auto p = gen.randomProgram(3, sig, rng);
    ASSERT_TRUE(p.has_value());
    const auto spec = gen.makeSpec(*p, sig, 5, rng);
    if (!spec) continue;  // genuinely degenerate program; acceptable
    bool any_nondefault = false;
    for (const auto& ex : spec->examples) {
      any_nondefault |=
          !(ex.output == nd::Value::defaultFor(ex.output.type()));
    }
    EXPECT_TRUE(any_nondefault);
  }
}

TEST(Generator, TestCaseSingletonFlagControlsOutputType) {
  nd::Generator gen;
  Rng rng(17);
  for (int i = 0; i < 10; ++i) {
    const auto tcInt = gen.randomTestCase(5, 5, /*singleton=*/true, rng);
    ASSERT_TRUE(tcInt.has_value());
    EXPECT_EQ(tcInt->program.outputType(), nd::Type::Int);
    EXPECT_TRUE(nd::isFullyLive(tcInt->program, tcInt->signature));
    EXPECT_EQ(tcInt->spec.size(), 5u);

    const auto tcList = gen.randomTestCase(5, 5, /*singleton=*/false, rng);
    ASSERT_TRUE(tcList.has_value());
    EXPECT_EQ(tcList->program.outputType(), nd::Type::List);
  }
}

TEST(Generator, DeterministicUnderSeed) {
  nd::Generator gen;
  Rng a(42), b(42);
  const nd::InputSignature sig = {nd::Type::List};
  for (int i = 0; i < 10; ++i) {
    const auto pa = gen.randomProgram(6, sig, a);
    const auto pb = gen.randomProgram(6, sig, b);
    ASSERT_TRUE(pa && pb);
    EXPECT_EQ(*pa, *pb);
  }
}

TEST(Generator, SpecSignatureMatchesGeneratedInputs) {
  nd::Generator gen;
  Rng rng(23);
  const auto tc = gen.randomTestCase(5, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  EXPECT_EQ(tc->spec.signature(), tc->signature);
}

// ------------------------------------------ Program serialization ---------

TEST(Program, ToStringUsesBarSeparators) {
  const auto p = nd::Program::fromString("FILTER(>0) | MAP(*2) | SORT");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->length(), 3u);
  EXPECT_EQ(p->toString(), "FILTER(>0) | MAP(*2) | SORT");
}

TEST(Program, FromStringRejectsUnknownNames) {
  EXPECT_FALSE(nd::Program::fromString("FILTER(>0) | FROB").has_value());
  EXPECT_FALSE(nd::Program::fromString("|").has_value());
}

TEST(Program, EmptyStringParsesToEmptyProgram) {
  const auto p = nd::Program::fromString("");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

class ProgramRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ProgramRoundTrip, RandomProgramsSurviveToStringFromString) {
  nd::Generator gen;
  Rng rng(3000 + GetParam());
  const nd::InputSignature sig = {nd::Type::List};
  for (int i = 0; i < 25; ++i) {
    const auto p = gen.randomProgram(1 + rng.uniform(9), sig, rng);
    ASSERT_TRUE(p.has_value());
    const auto back = nd::Program::fromString(p->toString());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, *p);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProgramRoundTrip, ::testing::Range(0, 4));

TEST(Program, HashDistinguishesDifferentPrograms) {
  const auto a = nd::Program::fromString("SORT | REVERSE");
  const auto b = nd::Program::fromString("REVERSE | SORT");
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->hash(), b->hash());
  EXPECT_EQ(a->hash(), nd::Program::fromString("SORT | REVERSE")->hash());
}

TEST(Program, OutputTypeFollowsLastFunction) {
  EXPECT_EQ(nd::Program::fromString("SORT | HEAD")->outputType(),
            nd::Type::Int);
  EXPECT_EQ(nd::Program::fromString("HEAD | TAKE")->outputType(),
            nd::Type::List);
  EXPECT_THROW(nd::Program{}.outputType(), std::logic_error);
}
