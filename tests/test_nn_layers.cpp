// Layer tests: shapes, gradient flow through LSTM, end-to-end learning on
// toy problems, optimizer behaviour, and serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "nn/layers.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace nn = netsyn::nn;
using netsyn::util::Rng;

TEST(Layers, XavierBoundsScaleWithFanInOut) {
  Rng rng(1);
  const auto m = nn::xavierUniform(10, 10, rng);
  const float bound = std::sqrt(6.0f / 20.0f);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.at(i)), bound);
  }
}

TEST(Embedding, LookupReturnsTableRow) {
  Rng rng(2);
  nn::ParamStore store;
  nn::Embedding emb(5, 3, store, rng);
  const auto v = emb.lookup(2);
  EXPECT_EQ(v->value().rows(), 1u);
  EXPECT_EQ(v->value().cols(), 3u);
  EXPECT_EQ(emb.vocab(), 5u);
  EXPECT_EQ(emb.dim(), 3u);
}

TEST(Embedding, GradientFlowsOnlyToLookedUpRows) {
  Rng rng(3);
  nn::ParamStore store;
  nn::Embedding emb(4, 2, store, rng);
  auto loss = nn::meanAll(emb.lookup(1));
  store.zeroGrad();
  nn::backward(loss);
  const auto& table = store.params()[0];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      if (r == 1) EXPECT_NE(table->grad()(r, c), 0.0f);
      else EXPECT_EQ(table->grad()(r, c), 0.0f);
    }
  }
}

TEST(Linear, OutputShapeAndAffine) {
  Rng rng(4);
  nn::ParamStore store;
  nn::Linear lin(3, 2, store, rng);
  auto y = lin.forward(nn::constant(nn::Matrix(1, 3, 1.0f)));
  EXPECT_EQ(y->value().rows(), 1u);
  EXPECT_EQ(y->value().cols(), 2u);
}

TEST(Lstm, StepAndEncodeShapes) {
  Rng rng(5);
  nn::ParamStore store;
  nn::Lstm lstm(4, 6, store, rng);
  auto st = lstm.initialState();
  EXPECT_EQ(st.h->value().cols(), 6u);
  st = lstm.step(nn::constant(nn::Matrix(1, 4, 0.5f)), st);
  EXPECT_EQ(st.h->value().cols(), 6u);
  EXPECT_EQ(st.c->value().cols(), 6u);

  std::vector<nn::Var> seq;
  for (int i = 0; i < 5; ++i) seq.push_back(nn::constant(nn::Matrix(1, 4, 0.1f * float(i))));
  auto h = lstm.encode(seq);
  EXPECT_EQ(h->value().cols(), 6u);
}

TEST(Lstm, EmptySequenceEncodesToZero) {
  Rng rng(6);
  nn::ParamStore store;
  nn::Lstm lstm(4, 3, store, rng);
  const auto h = lstm.encode({});
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(h->value().at(i), 0.0f);
}

TEST(Lstm, HiddenStateIsBounded) {
  // h = o * tanh(c): |h| <= 1 elementwise regardless of inputs.
  Rng rng(7);
  nn::ParamStore store;
  nn::Lstm lstm(2, 4, store, rng);
  std::vector<nn::Var> seq;
  for (int i = 0; i < 20; ++i)
    seq.push_back(nn::constant(nn::Matrix(1, 2, 100.0f)));
  const auto h = lstm.encode(seq);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LE(std::fabs(h->value().at(i)), 1.0f);
}

TEST(Lstm, ForgetBiasInitializedToOne) {
  Rng rng(8);
  nn::ParamStore store;
  nn::Lstm lstm(2, 3, store, rng);
  // Parameter order: wx, wh, b. Forget slice of b is [H, 2H).
  const auto& b = store.params()[2];
  for (std::size_t j = 3; j < 6; ++j) EXPECT_EQ(b->value().at(j), 1.0f);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(b->value().at(j), 0.0f);
}

TEST(Lstm, GradientsReachAllParameters) {
  Rng rng(9);
  nn::ParamStore store;
  nn::Lstm lstm(3, 4, store, rng);
  std::vector<nn::Var> seq = {nn::constant(nn::Matrix(1, 3, 0.7f)),
                              nn::constant(nn::Matrix(1, 3, -0.2f))};
  store.zeroGrad();
  nn::backward(nn::meanAll(lstm.encode(seq)));
  for (const auto& p : store.params()) {
    float absum = 0.0f;
    for (std::size_t i = 0; i < p->grad().size(); ++i)
      absum += std::fabs(p->grad().at(i));
    EXPECT_GT(absum, 0.0f);
  }
}

// ------------------------------------------------------- learning ---------

TEST(Learning, LinearRegressionConvergesWithSgd) {
  // Fit y = 2x - 1 with a 1->1 linear layer.
  Rng rng(10);
  nn::ParamStore store;
  nn::Linear lin(1, 1, store, rng);
  nn::Sgd opt(store, 0.05f);
  float loss_val = 0;
  for (int step = 0; step < 400; ++step) {
    store.zeroGrad();
    const float x = static_cast<float>(rng.uniformReal(-1, 1));
    nn::Matrix target(1, 1, 2.0f * x - 1.0f);
    auto loss = nn::mseLoss(lin.forward(nn::constant(nn::Matrix(1, 1, x))),
                            target);
    nn::backward(loss);
    opt.step();
    loss_val = loss->scalar();
  }
  EXPECT_LT(loss_val, 1e-2f);
}

TEST(Learning, XorWithAdamAndHiddenLayer) {
  Rng rng(11);
  nn::ParamStore store;
  nn::Linear l1(2, 8, store, rng);
  nn::Linear l2(8, 2, store, rng);
  nn::Adam opt(store, 0.02f);
  const float xs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::size_t ys[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 300; ++epoch) {
    store.zeroGrad();
    nn::Var total = nn::constant(nn::Matrix(1, 1, 0.0f));
    for (int k = 0; k < 4; ++k) {
      nn::Matrix in(1, 2);
      in.at(0) = xs[k][0];
      in.at(1) = xs[k][1];
      auto h = nn::tanhOp(l1.forward(nn::constant(in)));
      total = nn::add(total, nn::softmaxCrossEntropy(l2.forward(h), ys[k]));
    }
    nn::backward(total);
    opt.step();
  }
  int correct = 0;
  for (int k = 0; k < 4; ++k) {
    nn::Matrix in(1, 2);
    in.at(0) = xs[k][0];
    in.at(1) = xs[k][1];
    auto h = nn::tanhOp(l1.forward(nn::constant(in)));
    const auto probs = nn::softmaxValue(l2.forward(h)->value());
    const std::size_t pred = probs.at(0) > probs.at(1) ? 0 : 1;
    correct += (pred == ys[k]) ? 1 : 0;
  }
  EXPECT_EQ(correct, 4);
}

TEST(Learning, LstmLearnsLastTokenClass) {
  // Sequence of 2-dim one-hots; label = class of the last token. An LSTM
  // plus linear head should learn this quickly.
  Rng rng(12);
  nn::ParamStore store;
  nn::Lstm lstm(2, 8, store, rng);
  nn::Linear head(8, 2, store, rng);
  nn::Adam opt(store, 0.02f);
  Rng data(13);
  for (int step = 0; step < 250; ++step) {
    store.zeroGrad();
    std::vector<nn::Var> seq;
    std::size_t label = 0;
    const int len = 2 + int(data.uniform(4));
    for (int t = 0; t < len; ++t) {
      const std::size_t cls = data.uniform(2);
      nn::Matrix x(1, 2, 0.0f);
      x.at(cls) = 1.0f;
      seq.push_back(nn::constant(x));
      label = cls;
    }
    auto loss = nn::softmaxCrossEntropy(head.forward(lstm.encode(seq)), label);
    nn::backward(loss);
    opt.step();
  }
  int correct = 0;
  const int trials = 50;
  for (int k = 0; k < trials; ++k) {
    std::vector<nn::Var> seq;
    std::size_t label = 0;
    const int len = 2 + int(data.uniform(4));
    for (int t = 0; t < len; ++t) {
      const std::size_t cls = data.uniform(2);
      nn::Matrix x(1, 2, 0.0f);
      x.at(cls) = 1.0f;
      seq.push_back(nn::constant(x));
      label = cls;
    }
    const auto probs =
        nn::softmaxValue(head.forward(lstm.encode(seq))->value());
    const std::size_t pred = probs.at(0) > probs.at(1) ? 0 : 1;
    correct += (pred == label) ? 1 : 0;
  }
  EXPECT_GE(correct, 45);
}

// ------------------------------------------------------ optimizers --------

TEST(Optim, SgdMovesAgainstGradient) {
  nn::ParamStore store;
  auto p = store.make(nn::Matrix(1, 1, 5.0f));
  p->grad().at(0) = 2.0f;
  nn::Sgd opt(store, 0.1f);
  opt.step();
  EXPECT_NEAR(p->value().at(0), 4.8f, 1e-6f);
}

TEST(Optim, SgdMomentumAccumulates) {
  nn::ParamStore store;
  auto p = store.make(nn::Matrix(1, 1, 0.0f));
  nn::Sgd opt(store, 1.0f, 0.9f);
  p->grad().at(0) = 1.0f;
  opt.step();  // v=1, x=-1
  opt.step();  // v=1.9, x=-2.9
  EXPECT_NEAR(p->value().at(0), -2.9f, 1e-5f);
}

TEST(Optim, AdamFirstStepIsLearningRateSized) {
  nn::ParamStore store;
  auto p = store.make(nn::Matrix(1, 1, 1.0f));
  p->grad().at(0) = 123.0f;  // bias correction makes step ~lr regardless
  nn::Adam opt(store, 0.01f);
  opt.step();
  EXPECT_NEAR(p->value().at(0), 1.0f - 0.01f, 1e-4f);
}

TEST(Optim, AdamMinimizesQuadratic) {
  nn::ParamStore store;
  auto p = store.make(nn::Matrix(1, 1, 4.0f));
  nn::Adam opt(store, 0.1f);
  for (int i = 0; i < 300; ++i) {
    store.zeroGrad();
    auto loss = nn::mseLoss(p, nn::Matrix(1, 1, 1.5f));
    nn::backward(loss);
    opt.step();
  }
  EXPECT_NEAR(p->value().at(0), 1.5f, 1e-2f);
}

// ---------------------------------------------------- serialization -------

TEST(Serialize, RoundTripRestoresExactValues) {
  Rng rng(14);
  nn::ParamStore a;
  nn::Lstm lstmA(3, 4, a, rng);
  nn::Linear headA(4, 2, a, rng);

  const std::string path =
      (std::filesystem::temp_directory_path() / "netsyn_params_test.bin")
          .string();
  nn::saveParams(a, path);

  Rng rng2(99);  // different init
  nn::ParamStore b;
  nn::Lstm lstmB(3, 4, b, rng2);
  nn::Linear headB(4, 2, b, rng2);
  nn::loadParams(b, path);

  ASSERT_EQ(a.params().size(), b.params().size());
  for (std::size_t i = 0; i < a.params().size(); ++i)
    EXPECT_EQ(a.params()[i]->value(), b.params()[i]->value());
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchThrows) {
  Rng rng(15);
  nn::ParamStore a;
  nn::Linear lin(3, 4, a, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "netsyn_params_shape.bin")
          .string();
  nn::saveParams(a, path);

  nn::ParamStore b;
  nn::Linear lin2(4, 3, b, rng);
  EXPECT_THROW(nn::loadParams(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  nn::ParamStore s;
  EXPECT_THROW(nn::loadParams(s, "/nonexistent/netsyn.bin"),
               std::runtime_error);
}

TEST(Serialize, CorruptMagicThrows) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "netsyn_bad_magic.bin")
          .string();
  {
    std::ofstream f(path, std::ios::binary);
    f << "JUNKJUNKJUNK";
  }
  nn::ParamStore s;
  EXPECT_THROW(nn::loadParams(s, path), std::runtime_error);
  std::remove(path.c_str());
}
