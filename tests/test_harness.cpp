// Harness tests: configuration presets and overrides, workload generation,
// percentile-row math, the runner, and the method registry.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "harness/config.hpp"
#include "harness/models.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace nb = netsyn::baselines;
namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
namespace nh = netsyn::harness;
namespace nu = netsyn::util;

// ------------------------------------------------------------ config ------

TEST(Config, CiAndPaperPresets) {
  const auto ci = nh::ExperimentConfig::forScale("ci");
  EXPECT_EQ(ci.scaleName, "ci");
  EXPECT_LT(ci.searchBudget, 100000u);

  const auto paper = nh::ExperimentConfig::forScale("paper");
  EXPECT_EQ(paper.searchBudget, 3000000u);          // §5
  EXPECT_EQ(paper.runsPerProgram, 10u);             // K = 10
  EXPECT_EQ(paper.programsPerLength, 100u);         // §5
  EXPECT_EQ(paper.trainingPrograms, 4200000u);      // §5
  EXPECT_EQ(paper.synthesizer.ga.populationSize, 100u);  // Appendix B
  EXPECT_EQ(paper.synthesizer.ga.eliteCount, 5u);
  EXPECT_EQ(paper.synthesizer.maxGenerations, 30000u);
  EXPECT_EQ(paper.programLengths,
            (std::vector<std::size_t>{5, 7, 10}));

  EXPECT_THROW(nh::ExperimentConfig::forScale("huge"),
               std::invalid_argument);
}

TEST(Config, FlagOverrides) {
  const char* argv[] = {"prog",           "--scale=ci",
                        "--budget=1234",  "--runs=7",
                        "--lengths=3,6",  "--programs-per-length=2",
                        "--seed=99",      "--model-dir=/tmp/zz"};
  nu::ArgParse args(8, argv);
  const auto cfg = nh::ExperimentConfig::fromArgs(args);
  EXPECT_EQ(cfg.searchBudget, 1234u);
  EXPECT_EQ(cfg.runsPerProgram, 7u);
  EXPECT_EQ(cfg.programLengths, (std::vector<std::size_t>{3, 6}));
  EXPECT_EQ(cfg.programsPerLength, 2u);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.modelDir, "/tmp/zz");
}

TEST(Config, BadLengthsThrow) {
  const char* argv[] = {"prog", "--lengths=0"};
  nu::ArgParse args(2, argv);
  EXPECT_THROW(nh::ExperimentConfig::fromArgs(args), std::invalid_argument);
}

TEST(Config, IslandFlagsSelectTheIslandStrategy) {
  const char* argv[] = {"prog",
                        "--islands=4",
                        "--migration-interval=7",
                        "--migration-size=3",
                        "--topology=full",
                        "--island-threads=2",
                        "--island-hetero"};
  nu::ArgParse args(7, argv);
  const auto cfg = nh::ExperimentConfig::fromArgs(args);
  EXPECT_EQ(cfg.synthesizer.strategy, nc::SearchStrategy::Islands);
  EXPECT_EQ(cfg.synthesizer.islands.count, 4u);
  EXPECT_EQ(cfg.synthesizer.islands.migrationInterval, 7u);
  EXPECT_EQ(cfg.synthesizer.islands.migrationSize, 3u);
  EXPECT_EQ(cfg.synthesizer.islands.topology, nc::Topology::FullyConnected);
  EXPECT_EQ(cfg.synthesizer.islands.threads, 2u);
  EXPECT_TRUE(cfg.synthesizer.islands.heterogeneous);

  // Without --islands the strategy stays single-population.
  const char* argvNone[] = {"prog"};
  nu::ArgParse none(1, argvNone);
  EXPECT_EQ(nh::ExperimentConfig::fromArgs(none).synthesizer.strategy,
            nc::SearchStrategy::SinglePopulation);

  const char* argvBad[] = {"prog", "--islands=2", "--topology=mesh"};
  nu::ArgParse bad(3, argvBad);
  EXPECT_THROW(nh::ExperimentConfig::fromArgs(bad), std::invalid_argument);

  // Negative values must be rejected, not wrapped through size_t into
  // "never migrate"-sized numbers.
  const char* argvNeg[] = {"prog", "--islands=2", "--migration-interval=-5"};
  nu::ArgParse neg(3, argvNeg);
  EXPECT_THROW(nh::ExperimentConfig::fromArgs(neg), std::invalid_argument);
  const char* argvNegT[] = {"prog", "--island-threads=-1"};
  nu::ArgParse negT(2, argvNegT);
  EXPECT_THROW(nh::ExperimentConfig::fromArgs(negT), std::invalid_argument);
}

TEST(Config, JsonRoundTripPreservesEveryIslandField) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {3, 6, 9};
  cfg.programsPerLength = 12;
  cfg.searchBudget = 4321;
  cfg.runsPerProgram = 5;
  cfg.workers = 6;
  cfg.seed = 987654321;
  cfg.modelDir = "some/model \"dir\"";
  cfg.trainConfig.epochs = 50;
  cfg.trainConfig.batchSize = 13;
  cfg.trainConfig.learningRate = 2.5e-3f;
  cfg.synthesizer.ga.populationSize = 64;
  cfg.synthesizer.ga.crossoverRate = 0.55;
  cfg.synthesizer.ga.mutationRate = 0.15;
  cfg.synthesizer.maxGenerations = 777;
  cfg.synthesizer.nsKind = nc::NsKind::DFS;
  cfg.synthesizer.strategy = nc::SearchStrategy::Islands;
  cfg.synthesizer.islands.count = 8;
  cfg.synthesizer.islands.migrationInterval = 12;
  cfg.synthesizer.islands.migrationSize = 4;
  cfg.synthesizer.islands.topology = nc::Topology::FullyConnected;
  cfg.synthesizer.islands.threads = 3;
  cfg.synthesizer.islands.heterogeneous = true;
  nc::IslandTweak tweakA;  // explicit portfolio must survive the trip
  tweakA.mutationRateScale = 1.5;
  tweakA.nsKind = nc::NsKind::DFS;
  nc::IslandTweak tweakB;
  tweakB.crossoverRateScale = 0.75;
  tweakB.fpGuidedMutation = false;
  cfg.synthesizer.islands.tweaks = {tweakA, tweakB};

  const auto back = nh::ExperimentConfig::fromJson(cfg.toJson());
  EXPECT_EQ(back.scaleName, cfg.scaleName);
  EXPECT_EQ(back.programLengths, cfg.programLengths);
  EXPECT_EQ(back.programsPerLength, cfg.programsPerLength);
  EXPECT_EQ(back.examplesPerProgram, cfg.examplesPerProgram);
  EXPECT_EQ(back.runsPerProgram, cfg.runsPerProgram);
  EXPECT_EQ(back.searchBudget, cfg.searchBudget);
  EXPECT_EQ(back.trainingPrograms, cfg.trainingPrograms);
  EXPECT_EQ(back.validationPrograms, cfg.validationPrograms);
  EXPECT_EQ(back.trainingLength, cfg.trainingLength);
  EXPECT_EQ(back.trainConfig.epochs, cfg.trainConfig.epochs);
  EXPECT_EQ(back.trainConfig.batchSize, cfg.trainConfig.batchSize);
  EXPECT_FLOAT_EQ(back.trainConfig.learningRate, cfg.trainConfig.learningRate);
  EXPECT_EQ(back.workers, cfg.workers);
  EXPECT_EQ(back.seed, cfg.seed);
  EXPECT_EQ(back.modelDir, cfg.modelDir);
  EXPECT_EQ(back.synthesizer.ga.populationSize,
            cfg.synthesizer.ga.populationSize);
  EXPECT_EQ(back.synthesizer.ga.eliteCount, cfg.synthesizer.ga.eliteCount);
  EXPECT_DOUBLE_EQ(back.synthesizer.ga.crossoverRate,
                   cfg.synthesizer.ga.crossoverRate);
  EXPECT_DOUBLE_EQ(back.synthesizer.ga.mutationRate,
                   cfg.synthesizer.ga.mutationRate);
  EXPECT_EQ(back.synthesizer.maxGenerations, cfg.synthesizer.maxGenerations);
  EXPECT_EQ(back.synthesizer.nsKind, cfg.synthesizer.nsKind);
  EXPECT_EQ(back.synthesizer.strategy, cfg.synthesizer.strategy);
  EXPECT_EQ(back.synthesizer.islands.count, cfg.synthesizer.islands.count);
  EXPECT_EQ(back.synthesizer.islands.migrationInterval,
            cfg.synthesizer.islands.migrationInterval);
  EXPECT_EQ(back.synthesizer.islands.migrationSize,
            cfg.synthesizer.islands.migrationSize);
  EXPECT_EQ(back.synthesizer.islands.topology,
            cfg.synthesizer.islands.topology);
  EXPECT_EQ(back.synthesizer.islands.threads, cfg.synthesizer.islands.threads);
  EXPECT_EQ(back.synthesizer.islands.heterogeneous,
            cfg.synthesizer.islands.heterogeneous);
  ASSERT_EQ(back.synthesizer.islands.tweaks.size(), 2u);
  const auto& ta = back.synthesizer.islands.tweaks[0];
  EXPECT_DOUBLE_EQ(ta.mutationRateScale, 1.5);
  EXPECT_DOUBLE_EQ(ta.crossoverRateScale, 1.0);
  ASSERT_TRUE(ta.nsKind.has_value());
  EXPECT_EQ(*ta.nsKind, nc::NsKind::DFS);
  EXPECT_FALSE(ta.fpGuidedMutation.has_value());
  const auto& tb = back.synthesizer.islands.tweaks[1];
  EXPECT_DOUBLE_EQ(tb.crossoverRateScale, 0.75);
  EXPECT_FALSE(tb.nsKind.has_value());
  ASSERT_TRUE(tb.fpGuidedMutation.has_value());
  EXPECT_FALSE(*tb.fpGuidedMutation);
}

TEST(Config, FromJsonRejectsMalformedInput) {
  EXPECT_THROW(nh::ExperimentConfig::fromJson("not json"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"seed\": }"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"seed\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"workers\": \"six\"}"),
               std::invalid_argument);
  EXPECT_THROW(
      nh::ExperimentConfig::fromJson(
          "{\"synthesizer\": {\"islands\": {\"topology\": \"mesh\"}}}"),
      std::invalid_argument);
  // Integer fields must be plain digit runs — no exponents (stoull would
  // silently read "1e4" as 1), no signs (no wrap-around), no overflow.
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"search_budget\": 1e4}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"workers\": -4}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"seed\": 99999999999999999999999999}"),
               std::invalid_argument);
  EXPECT_THROW(
      nh::ExperimentConfig::fromJson(
          "{\"synthesizer\": {\"mutation_rate\": 1e999}}"),
      std::invalid_argument);
  // Range sanity must fail at load time, not deep inside the search.
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"synthesizer\": {\"population_size\": 0}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"synthesizer\": {\"islands\": {\"count\": 0}}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"program_lengths\": [4, 0]}"),
               std::invalid_argument);
}

TEST(Config, JsonEscapesControlCharactersPerRfc8259) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.modelDir = "models\nrun\t2\x01" "end";
  const std::string json = cfg.toJson();
  // No raw control characters may appear inside the document.
  for (char c : json) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_EQ(nh::ExperimentConfig::fromJson(json).modelDir, cfg.modelDir);
}

// ---------------------------------------------------------- workload ------

TEST(Workload, HalfSingletonHalfListAndDeterministic) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 6;
  const auto a = nh::makeWorkload(cfg, 4);
  const auto b = nh::makeWorkload(cfg, 4);
  ASSERT_EQ(a.size(), 6u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);  // deterministic under the seed
    EXPECT_EQ(a[i].length, 4u);
    EXPECT_EQ(a[i].singleton, i < 3);
    EXPECT_EQ(a[i].target.outputType(),
              a[i].singleton ? nd::Type::Int : nd::Type::List);
    EXPECT_EQ(a[i].spec.size(), cfg.examplesPerProgram);
    EXPECT_TRUE(nd::satisfiesSpec(a[i].target, a[i].spec));
  }
}

TEST(Workload, FullWorkloadCoversAllLengths) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 2;
  cfg.programLengths = {3, 4, 5};
  const auto w = nh::makeFullWorkload(cfg);
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w[0].length, 3u);
  EXPECT_EQ(w[5].length, 5u);
}

// ----------------------------------------------------- percentile math ----

namespace {

nh::MethodReport syntheticReport(std::vector<double> costs,
                                 std::size_t unsolved,
                                 std::size_t budget) {
  nh::MethodReport report;
  report.method = "stub";
  report.budget = budget;
  for (double c : costs) {
    nh::ProgramResult pr;
    pr.runs.push_back(
        {true, static_cast<std::size_t>(c), c, 1, {}});
    report.programs.push_back(pr);
  }
  for (std::size_t i = 0; i < unsolved; ++i) {
    nh::ProgramResult pr;
    pr.runs.push_back({false, budget, 1.0, 1, {}});
    report.programs.push_back(pr);
  }
  return report;
}

}  // namespace

TEST(PercentileRow, ComputesBudgetFractions) {
  // 10 programs: 5 solved at 100,200,300,400,500 candidates; 5 unsolved.
  const auto report =
      syntheticReport({100, 200, 300, 400, 500}, 5, 1000);
  const auto row = nh::percentileRow(report, /*useTime=*/false);
  EXPECT_NEAR(row[0], 0.1, 1e-9);  // 10% of programs -> cheapest (100/1000)
  EXPECT_NEAR(row[4], 0.5, 1e-9);  // 50% -> 500/1000
  for (std::size_t i = 5; i < 10; ++i) EXPECT_TRUE(std::isnan(row[i]));
}

TEST(PercentileRow, TimeVariantUsesSeconds) {
  const auto report = syntheticReport({1.0, 2.0}, 0, 100);
  const auto row = nh::percentileRow(report, /*useTime=*/true);
  EXPECT_NEAR(row[4], 1.0, 1e-9);   // 50% of 2 programs -> 1st cheapest
  EXPECT_NEAR(row[9], 2.0, 1e-9);   // 100% -> 2nd
}

TEST(PercentileRow, AllUnsolvedIsAllNaN) {
  const auto report = syntheticReport({}, 4, 100);
  const auto row = nh::percentileRow(report, false);
  for (double v : row) EXPECT_TRUE(std::isnan(v));
}

TEST(ProgramResult, RateAndMeansOverFoundRuns) {
  nh::ProgramResult pr;
  pr.runs.push_back({true, 100, 1.0, 10, {}});
  pr.runs.push_back({false, 500, 5.0, 50, {}});
  pr.runs.push_back({true, 300, 3.0, 30, {}});
  EXPECT_NEAR(pr.synthesisRate(), 2.0 / 3.0, 1e-9);
  EXPECT_TRUE(pr.synthesized());
  EXPECT_NEAR(pr.meanCandidatesWhenFound(), 200.0, 1e-9);
  EXPECT_NEAR(pr.meanSecondsWhenFound(), 2.0, 1e-9);
  EXPECT_NEAR(pr.meanGenerationsWhenFound(), 20.0, 1e-9);
}

// -------------------------------------------------------------- runner ----

namespace {

/// Stub method: succeeds iff the target ends with a list function, spending
/// a fixed candidate count.
class StubMethod final : public nb::Method {
 public:
  std::string name() const override { return "Stub"; }
  nc::SynthesisResult synthesize(const nd::Spec& spec, std::size_t,
                                 std::size_t budget,
                                 netsyn::util::Rng&) override {
    nc::SynthesisResult r;
    r.found = spec.examples.front().output.isList();
    r.candidatesSearched = r.found ? 42 : budget;
    r.generations = 3;
    ++calls;
    return r;
  }
  int calls = 0;
};

}  // namespace

TEST(Runner, RunsKTimesPerProgramAndAggregates) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 4;  // 2 singleton + 2 list
  cfg.runsPerProgram = 3;
  const auto workload = nh::makeWorkload(cfg, 4);
  StubMethod method;
  const auto report = nh::runMethod(method, workload, cfg, false);
  EXPECT_EQ(method.calls, 12);
  EXPECT_EQ(report.programs.size(), 4u);
  // Stub solves exactly the list programs -> 50%.
  EXPECT_NEAR(report.synthesizedFraction(), 0.5, 1e-9);
  EXPECT_NEAR(report.meanSynthesisRate(), 0.5, 1e-9);
  EXPECT_NEAR(report.meanGenerations(), 3.0, 1e-9);
}

TEST(Runner, OracleMethodReceivesTarget) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 2;
  cfg.runsPerProgram = 1;
  cfg.searchBudget = 20000;
  cfg.synthesizer.ga.populationSize = 30;
  const auto workload = nh::makeWorkload(cfg, 3);
  auto oracle = nh::makeOracle(cfg, nf::BalanceMetric::LCS);
  const auto report = nh::runMethod(*oracle, workload, cfg, false);
  // Oracle fitness on length-3 targets should solve essentially everything.
  EXPECT_GE(report.synthesizedFraction(), 0.5);
}

TEST(Runner, IslandMethodsReportPerIslandStatsDeterministically) {
  // Registry-built oracle methods running the island strategy across the
  // parallel experiment runner: per-island stats must land in the report
  // and, like every other deterministic field, be identical for any worker
  // count.
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programsPerLength = 2;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = 4000;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.maxGenerations = 200;
  cfg.synthesizer.strategy = nc::SearchStrategy::Islands;
  cfg.synthesizer.islands.count = 2;
  cfg.synthesizer.islands.migrationInterval = 3;
  const auto workload = nh::makeWorkload(cfg, 3);
  const auto factory = nh::makeOracleFactory(cfg, nf::BalanceMetric::CF);

  cfg.workers = 1;
  const auto sequential = nh::runMethod(factory, workload, cfg, false);
  cfg.workers = 3;
  const auto parallel = nh::runMethod(factory, workload, cfg, false);

  ASSERT_EQ(sequential.programs.size(), parallel.programs.size());
  for (std::size_t p = 0; p < sequential.programs.size(); ++p) {
    const auto& runsA = sequential.programs[p].runs;
    const auto& runsB = parallel.programs[p].runs;
    ASSERT_EQ(runsA.size(), runsB.size());
    for (std::size_t k = 0; k < runsA.size(); ++k) {
      EXPECT_EQ(runsA[k].found, runsB[k].found);
      EXPECT_EQ(runsA[k].candidates, runsB[k].candidates);
      ASSERT_EQ(runsA[k].islands.size(), 2u);
      ASSERT_EQ(runsB[k].islands.size(), 2u);
      std::size_t evals = 0;
      for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(runsA[k].islands[i].evals, runsB[k].islands[i].evals);
        EXPECT_EQ(runsA[k].islands[i].immigrants,
                  runsB[k].islands[i].immigrants);
        EXPECT_EQ(runsA[k].islands[i].bestFitness,
                  runsB[k].islands[i].bestFitness);
        evals += runsA[k].islands[i].evals;
      }
      EXPECT_EQ(evals, runsA[k].candidates);
      EXPECT_EQ(runsA[k].migrationsAccepted(), runsB[k].migrationsAccepted());
    }
  }
  EXPECT_GE(sequential.synthesizedFraction(), 0.5);  // oracle still solves
}

// ------------------------------------------------------------- models -----

TEST(Models, BuildModelHeadsAndFpExampleWidth) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.modelConfig.embedDim = 8;
  cfg.modelConfig.hiddenDim = 10;
  const auto cls = nh::buildModel(cfg, nf::HeadKind::Classifier);
  EXPECT_TRUE(cls->config().useTrace);
  EXPECT_EQ(cls->config().maxExamples, cfg.modelConfig.maxExamples);
  const auto fp = nh::buildModel(cfg, nf::HeadKind::Multilabel);
  EXPECT_FALSE(fp->config().useTrace);
  EXPECT_EQ(fp->config().maxExamples, cfg.examplesPerProgram);
}

TEST(Models, LoadOrTrainCachesToDisk) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.trainingPrograms = 30;
  cfg.validationPrograms = 10;
  cfg.trainConfig.epochs = 1;
  cfg.modelConfig.embedDim = 6;
  cfg.modelConfig.hiddenDim = 8;
  cfg.modelDir =
      (std::filesystem::temp_directory_path() / "netsyn_cache_test").string();
  std::filesystem::remove_all(cfg.modelDir);

  auto model = nh::buildModel(cfg, nf::HeadKind::Classifier);
  const bool fromCache1 =
      nh::loadOrTrain(cfg, *model, nf::BalanceMetric::CF, "cf", true);
  EXPECT_FALSE(fromCache1);
  EXPECT_TRUE(std::filesystem::exists(nh::modelCachePath(cfg, "cf")));

  auto model2 = nh::buildModel(cfg, nf::HeadKind::Classifier);
  const bool fromCache2 =
      nh::loadOrTrain(cfg, *model2, nf::BalanceMetric::CF, "cf", true);
  EXPECT_TRUE(fromCache2);
  std::filesystem::remove_all(cfg.modelDir);
}

// ------------------------------------------------------------ registry ----

TEST(Registry, AllMethodsHaveUniqueNames) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.modelConfig.embedDim = 6;
  cfg.modelConfig.hiddenDim = 8;
  nh::TrainedModels models;
  models.cf = nh::buildModel(cfg, nf::HeadKind::Classifier);
  models.lcs = nh::buildModel(cfg, nf::HeadKind::Classifier);
  models.fp = nh::buildModel(cfg, nf::HeadKind::Multilabel);
  const auto methods = nh::makeAllMethods(cfg, models);
  EXPECT_GE(methods.size(), 9u);
  std::set<std::string> names;
  for (const auto& m : methods) names.insert(m->name());
  EXPECT_EQ(names.size(), methods.size());
  EXPECT_TRUE(names.count("NetSyn_CF"));
  EXPECT_TRUE(names.count("DeepCoder"));
  EXPECT_TRUE(names.count("Oracle_LCS"));
}

TEST(Registry, NetSynVariantsUseNsAndFpMutation) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.modelConfig.embedDim = 6;
  cfg.modelConfig.hiddenDim = 8;
  nh::TrainedModels models;
  models.cf = nh::buildModel(cfg, nf::HeadKind::Classifier);
  models.lcs = nh::buildModel(cfg, nf::HeadKind::Classifier);
  models.fp = nh::buildModel(cfg, nf::HeadKind::Multilabel);
  // Construction itself validates the wiring (fpGuidedMutation requires a
  // ProbMapProvider; NeuralFitness requires a classifier head).
  for (auto variant : {nh::NetSynVariant::CF, nh::NetSynVariant::LCS,
                       nh::NetSynVariant::FP}) {
    EXPECT_NO_THROW(nh::makeNetSyn(cfg, models, variant));
  }
}
