// Bench-gate comparison tests: the CI perf gate must trip on a 20%
// regression of any gated metric (the acceptance demonstration), tolerate
// noise inside the tolerance, ignore informational rows, and be loud about
// malformed or mismatched records.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/benchcmp.hpp"

namespace nu = netsyn::util;

namespace {

const char* kInterp =
    "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
    "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0}";

const char* kNn =
    "{\"bench\": \"nn_scoring\", \"scalar_genes_per_sec\": 2000.0, "
    "\"batched_genes_per_sec\": 10000.0, \"speedup\": 5.0}";

const char* kIslands =
    "{\"bench\": \"islands\", \"sweep\": ["
    "{\"islands\": 1, \"solved\": 3, \"solved_per_sec\": 120.0}, "
    "{\"islands\": 4, \"solved\": 4, \"solved_per_sec\": 90.0}]}";

const char* kFleet =
    "{\"bench\": \"fleet\", \"sweep\": ["
    "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 2.5, "
    "\"scaling_vs_1host\": 1.0}, "
    "{\"hosts\": 4, \"solved\": 5, \"solved_per_sec\": 8.0, "
    "\"scaling_vs_1host\": 3.2}]}";

}  // namespace

TEST(BenchCmp, IdentityPassesEveryGate) {
  for (const char* record : {kInterp, kNn, kIslands, kFleet}) {
    const auto cmp = nu::compareBenchRecords(record, record);
    EXPECT_FALSE(cmp.anyRegression(0.15)) << record;
    EXPECT_FALSE(cmp.anyRegression(0.0)) << record;
  }
}

TEST(BenchCmp, TwentyPercentThroughputRegressionTripsTheGate) {
  // The acceptance demonstration: the engine path losing 20% genes/sec
  // against the frozen legacy reference (same machine, same run) must fail
  // the 15% gate — and still pass a hypothetical 25% gate.
  const std::string fresh =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 320000.0, \"speedup\": 3.2}";
  const auto cmp = nu::compareBenchRecords(kInterp, fresh);
  EXPECT_TRUE(cmp.anyRegression(0.15));
  EXPECT_FALSE(cmp.anyRegression(0.25));
  EXPECT_NE(nu::renderMarkdown(cmp, 0.15).find("REGRESSED"),
            std::string::npos);
}

TEST(BenchCmp, UniformMachineSlowdownDoesNotTrip) {
  // The committed baseline and the CI runner are different machines: when
  // both the engine and its frozen reference halve together (slower host,
  // noisy neighbor), the speedup ratio is unchanged and the gate must not
  // fire — only relative regressions are build-breaking.
  const std::string slowHost =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 50000.0, "
      "\"engine_genes_per_sec\": 200000.0, \"speedup\": 4.0}";
  EXPECT_FALSE(nu::compareBenchRecords(kInterp, slowHost).anyRegression(0.15));

  const std::string slowNn =
      "{\"bench\": \"nn_scoring\", \"scalar_genes_per_sec\": 1000.0, "
      "\"batched_genes_per_sec\": 5000.0, \"speedup\": 5.0}";
  EXPECT_FALSE(nu::compareBenchRecords(kNn, slowNn).anyRegression(0.15));
}

TEST(BenchCmp, TenPercentNoiseStaysInsideTheGate) {
  const std::string fresh =
      "{\"bench\": \"nn_scoring\", \"scalar_genes_per_sec\": 1800.0, "
      "\"batched_genes_per_sec\": 9000.0, \"speedup\": 5.0}";
  EXPECT_FALSE(nu::compareBenchRecords(kNn, fresh).anyRegression(0.15));
}

TEST(BenchCmp, ImprovementsNeverTrip) {
  const std::string fresh =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 800000.0, \"speedup\": 8.0}";
  EXPECT_FALSE(nu::compareBenchRecords(kInterp, fresh).anyRegression(0.15));
}

TEST(BenchCmp, InformationalRowsNeverTrip) {
  // Absolute genes/sec rows are informational: the batched NN path
  // halving *together with* its scalar reference (pure host effect) keeps
  // the gated ratio intact even though every absolute row dropped.
  const std::string fresh =
      "{\"bench\": \"nn_scoring\", \"scalar_genes_per_sec\": 900.0, "
      "\"batched_genes_per_sec\": 4600.0, \"speedup\": 5.1}";
  const auto cmp = nu::compareBenchRecords(kNn, fresh);
  EXPECT_FALSE(cmp.anyRegression(0.15));
}

TEST(BenchCmp, SolveRateDropTripsTheIslandsGate) {
  // 4 -> 2 solved at K=4 is a 50% solve-rate regression; solve counts are
  // deterministic, so this is algorithmic, not noise.
  const std::string fresh =
      "{\"bench\": \"islands\", \"sweep\": ["
      "{\"islands\": 1, \"solved\": 3, \"solved_per_sec\": 120.0}, "
      "{\"islands\": 4, \"solved\": 2, \"solved_per_sec\": 95.0}]}";
  EXPECT_TRUE(nu::compareBenchRecords(kIslands, fresh).anyRegression(0.15));

  // Wall-clock solved/sec halving alone: informational only.
  const std::string slow =
      "{\"bench\": \"islands\", \"sweep\": ["
      "{\"islands\": 1, \"solved\": 3, \"solved_per_sec\": 60.0}, "
      "{\"islands\": 4, \"solved\": 4, \"solved_per_sec\": 45.0}]}";
  EXPECT_FALSE(nu::compareBenchRecords(kIslands, slow).anyRegression(0.15));
}

TEST(BenchCmp, SweepEntriesMatchByIslandCountNotPosition) {
  const std::string reordered =
      "{\"bench\": \"islands\", \"sweep\": ["
      "{\"islands\": 4, \"solved\": 4, \"solved_per_sec\": 90.0}, "
      "{\"islands\": 1, \"solved\": 3, \"solved_per_sec\": 120.0}]}";
  EXPECT_FALSE(
      nu::compareBenchRecords(kIslands, reordered).anyRegression(0.0));
}

TEST(BenchCmp, MalformedRecordsAreLoud) {
  EXPECT_THROW(nu::compareBenchRecords(kInterp, kNn), std::invalid_argument);
  EXPECT_THROW(nu::compareBenchRecords("{}", "{}"), std::invalid_argument);
  EXPECT_THROW(nu::compareBenchRecords("not json", kInterp),
               std::invalid_argument);
  EXPECT_THROW(
      nu::compareBenchRecords("{\"bench\": \"mystery\"}",
                              "{\"bench\": \"mystery\"}"),
      std::invalid_argument);
  // A fresh record that lost a sweep entry must not silently pass.
  const std::string lost =
      "{\"bench\": \"islands\", \"sweep\": ["
      "{\"islands\": 1, \"solved\": 3, \"solved_per_sec\": 120.0}]}";
  EXPECT_THROW(nu::compareBenchRecords(kIslands, lost),
               std::invalid_argument);
  // Missing metric keys are loud too.
  EXPECT_THROW(
      nu::compareBenchRecords(kInterp, "{\"bench\": \"interpreter\"}"),
      std::invalid_argument);
}

TEST(BenchCmp, LaneRowsAreGatedWithAFloorOnMatchingBackends) {
  const std::string base =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 1200000.0, \"lanes_speedup\": 3.0, "
      "\"simd_backend\": \"avx2\"}";
  // Identity passes; within-tolerance drift passes.
  EXPECT_FALSE(nu::compareBenchRecords(base, base).anyRegression(0.15));

  // A 20% lanes-ratio drop (3.0 -> 2.4) trips the 15% gate even though the
  // floor (2.0) is still met.
  const std::string dropped =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 960000.0, \"lanes_speedup\": 2.4, "
      "\"simd_backend\": \"avx2\"}";
  EXPECT_TRUE(nu::compareBenchRecords(base, dropped).anyRegression(0.15));

  // The >= 2x floor is absolute: a fresh ratio below it fails even against
  // a baseline that had already drifted to the same low value (committing a
  // weak baseline must not lower the acceptance bar).
  const std::string weak =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 760000.0, \"lanes_speedup\": 1.9, "
      "\"simd_backend\": \"avx2\"}";
  EXPECT_TRUE(nu::compareBenchRecords(weak, weak).anyRegression(0.15));
}

TEST(BenchCmp, TraceLaneRowGatesAtItsOwnFloor) {
  const std::string base =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 720000.0, \"lanes_speedup\": 3.0, "
      "\"trace_lanes_speedup\": 1.8, \"simd_backend\": \"avx2\"}";
  EXPECT_FALSE(nu::compareBenchRecords(base, base).anyRegression(0.15));

  // 1.8 -> 1.4 is a 22% drop AND below the 1.5 floor: trips.
  const std::string dropped =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 560000.0, \"lanes_speedup\": 3.0, "
      "\"trace_lanes_speedup\": 1.4, \"simd_backend\": \"avx2\"}";
  EXPECT_TRUE(nu::compareBenchRecords(base, dropped).anyRegression(0.15));

  // The >= 1.5x floor is absolute: a weak committed baseline cannot lower
  // the bar for itself.
  const std::string weak =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 560000.0, \"lanes_speedup\": 3.0, "
      "\"trace_lanes_speedup\": 1.4, \"simd_backend\": \"avx2\"}";
  EXPECT_TRUE(nu::compareBenchRecords(weak, weak).anyRegression(0.15));

  // A baseline written by the older bench (no trace key) still compares —
  // the trace row is simply absent.
  const std::string old =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 720000.0, \"lanes_speedup\": 3.0, "
      "\"simd_backend\": \"avx2\"}";
  EXPECT_FALSE(nu::compareBenchRecords(old, base).anyRegression(0.15));

  // Cross-backend comparisons demote the trace row to info like the check
  // row: a scalar host's 1.0x against an avx2 baseline is not a regression.
  const std::string scalarHost =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 400000.0, \"lanes_speedup\": 1.1, "
      "\"trace_lanes_speedup\": 1.0, \"simd_backend\": \"scalar\"}";
  EXPECT_FALSE(nu::compareBenchRecords(base, scalarHost).anyRegression(0.15));
}

TEST(BenchCmp, LaneRowsDemoteToInfoAcrossBackendsAndOldBaselines) {
  const std::string avx2 =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 1200000.0, \"lanes_speedup\": 3.0, "
      "\"simd_backend\": \"avx2\"}";
  // A scalar-fallback host comparing against an avx2 baseline says nothing
  // about the code: the lanes rows must not gate (ratio 1.1 would fail both
  // the tolerance and the floor if they did).
  const std::string scalarHost =
      "{\"bench\": \"interpreter\", \"legacy_genes_per_sec\": 100000.0, "
      "\"engine_genes_per_sec\": 400000.0, \"speedup\": 4.0, "
      "\"lanes_genes_per_sec\": 440000.0, \"lanes_speedup\": 1.1, "
      "\"simd_backend\": \"scalar\"}";
  EXPECT_FALSE(nu::compareBenchRecords(avx2, scalarHost).anyRegression(0.15));

  // Records predating the lane executor have no lanes keys: comparison
  // still works and simply has no lane rows.
  const auto cmp = nu::compareBenchRecords(kInterp, kInterp);
  for (const auto& row : cmp.rows)
    EXPECT_EQ(row.metric.find("lane"), std::string::npos) << row.metric;
}

TEST(BenchCmp, FleetSolveCountsGateButRatesAndScalingDoNot) {
  // The fleet determinism contract: solved is host-count-independent, so a
  // drop at any host count is an algorithmic regression — gated.
  const std::string lostSolve =
      "{\"bench\": \"fleet\", \"sweep\": ["
      "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 2.5, "
      "\"scaling_vs_1host\": 1.0}, "
      "{\"hosts\": 4, \"solved\": 3, \"solved_per_sec\": 8.0, "
      "\"scaling_vs_1host\": 3.2}]}";
  EXPECT_TRUE(nu::compareBenchRecords(kFleet, lostSolve).anyRegression(0.15));

  // Wall-clock rate and scaling ratio halving: host effect, info only.
  const std::string slowHost =
      "{\"bench\": \"fleet\", \"sweep\": ["
      "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 1.2, "
      "\"scaling_vs_1host\": 1.0}, "
      "{\"hosts\": 4, \"solved\": 5, \"solved_per_sec\": 2.0, "
      "\"scaling_vs_1host\": 1.6}]}";
  EXPECT_FALSE(nu::compareBenchRecords(kFleet, slowHost).anyRegression(0.15));

  // Entries match by host count, not position.
  const std::string reordered =
      "{\"bench\": \"fleet\", \"sweep\": ["
      "{\"hosts\": 4, \"solved\": 5, \"solved_per_sec\": 8.0, "
      "\"scaling_vs_1host\": 3.2}, "
      "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 2.5, "
      "\"scaling_vs_1host\": 1.0}]}";
  EXPECT_FALSE(nu::compareBenchRecords(kFleet, reordered).anyRegression(0.0));

  // A fresh record that lost a host-count entry is loud; a record without
  // the scaling ratio (older bench binary) still compares on what's there.
  const std::string lostEntry =
      "{\"bench\": \"fleet\", \"sweep\": ["
      "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 2.5}]}";
  EXPECT_THROW(nu::compareBenchRecords(kFleet, lostEntry),
               std::invalid_argument);
  const std::string noScaling =
      "{\"bench\": \"fleet\", \"sweep\": ["
      "{\"hosts\": 1, \"solved\": 5, \"solved_per_sec\": 2.5}, "
      "{\"hosts\": 4, \"solved\": 5, \"solved_per_sec\": 8.0}]}";
  const auto cmp = nu::compareBenchRecords(kFleet, noScaling);
  EXPECT_FALSE(cmp.anyRegression(0.15));
  for (const auto& row : cmp.rows)
    EXPECT_EQ(row.metric.find("scaling"), std::string::npos) << row.metric;
}

TEST(BenchCmp, ZeroBaselineCannotRegress) {
  const std::string zero =
      "{\"bench\": \"islands\", \"sweep\": ["
      "{\"islands\": 1, \"solved\": 0, \"solved_per_sec\": 0.0}]}";
  EXPECT_FALSE(nu::compareBenchRecords(zero, zero).anyRegression(0.15));
}
