// Fleet suite: the distributed coordinator's determinism invariant and its
// failure handling, exercised subprocess-free over LoopbackTransport
// backends (each "host" is an in-process SynthService driven through
// handleRequestLine — sanitizer-friendly and fast).
//
// The invariant under test everywhere: the merged fleet report renders
// byte-identical for any host count and any failure history — one host,
// three hosts, a host killed mid-claim, an overloaded host shedding its
// claim — because task placement is rendezvous-hashed on host-independent
// keys and every task's search is seeded by (config, program, run).
//
// Also here: the protocol's fleet surface (hello token rotation, claim
// validation, stale-token rejection) including a truncated-frame fuzz pass
// in the test_config_fuzz.cpp style — no prefix of a valid claim line may
// crash the session or create a job.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/fleet.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/hashing.hpp"
#include "util/json.hpp"
#include "util/transport.hpp"

namespace nh = netsyn::harness;
namespace ns = netsyn::service;
namespace nu = netsyn::util;

namespace {

nh::ExperimentConfig tinyConfig(std::uint64_t seed = 7,
                                std::size_t budget = 600) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {3};
  cfg.programsPerLength = 2;
  cfg.examplesPerProgram = 3;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = budget;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.ga.eliteCount = 2;
  cfg.synthesizer.maxGenerations = 150;
  cfg.seed = seed;
  return cfg;
}

/// Tasks long enough that killing a host mid-claim is the common case
/// (mostly-unsolvable searches that burn their budget), while a full fleet
/// run still finishes in test time.
nh::ExperimentConfig mediumConfig(std::uint64_t seed = 41) {
  auto cfg = tinyConfig(seed, 6000);
  cfg.programLengths = {4};
  cfg.programsPerLength = 3;
  cfg.synthesizer.maxGenerations = 1500;
  return cfg;
}

/// Scratch state-dir root unique to this test process.
class FleetEnv {
 public:
  explicit FleetEnv(const std::string& tag) {
    root_ = "fleet_state_" + tag + "_" +
            std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(root_);
  }
  ~FleetEnv() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  std::string hostDir(std::size_t i) const {
    return root_ + "/host-" + std::to_string(i);
  }
  std::vector<std::string> hostDirs(std::size_t n) const {
    std::vector<std::string> dirs;
    for (std::size_t i = 0; i < n; ++i) dirs.push_back(hostDir(i));
    return dirs;
  }

 private:
  std::string root_;
};

/// Loopback backend factory: host i is a fresh in-process SynthService
/// (re-invokable for the same index — the coordinator's restart path).
ns::FleetCoordinator::TransportFactory loopbackFactory(
    std::vector<std::string> stateDirs = {},
    std::vector<std::size_t> maxQueuedPerHost = {}) {
  return [stateDirs = std::move(stateDirs),
          maxQueuedPerHost = std::move(maxQueuedPerHost)](std::size_t i)
             -> std::unique_ptr<nu::Transport> {
    ns::ServiceConfig cfg;
    cfg.workers = 1;
    cfg.checkpointEveryGenerations = 1;
    if (i < stateDirs.size()) cfg.stateDir = stateDirs[i];
    if (i < maxQueuedPerHost.size()) cfg.maxQueuedTasks = maxQueuedPerHost[i];
    return std::make_unique<ns::LoopbackTransport>(
        std::make_shared<ns::SynthService>(cfg));
  };
}

ns::FleetConfig fastPoll(std::size_t hosts) {
  ns::FleetConfig fc;
  fc.hosts = hosts;
  fc.pollIntervalMs = 1.0;
  return fc;
}

std::string runFleetReport(ns::FleetConfig fc,
                           ns::FleetCoordinator::TransportFactory factory,
                           std::vector<std::string> stateDirs,
                           const nh::ExperimentConfig& cfg,
                           ns::FleetMetrics* metricsOut = nullptr) {
  ns::FleetCoordinator fleet(fc, std::move(factory), std::move(stateDirs));
  const ns::FleetReport report = fleet.run(cfg, "Edit");
  if (metricsOut) *metricsOut = fleet.metrics();
  return report.render();
}

/// One-shot reference: the sequential runner over the same config.
nh::MethodReport oneShot(const nh::ExperimentConfig& cfg) {
  ns::ModelStore store;
  const auto m = ns::makeOneShotMethod("Edit", cfg, store);
  return nh::runMethod(*m, nh::makeFullWorkload(cfg), cfg, /*verbose=*/false);
}

nu::JsonValue handled(ns::SynthService& svc, const std::string& line) {
  bool shutdownRequested = false;
  return nu::parseJson(ns::handleRequestLine(svc, line, shutdownRequested));
}

bool okOf(const nu::JsonValue& v) {
  bool ok = false;
  nu::readBool(v, "ok", ok);
  return ok;
}

std::string rejectedOf(const nu::JsonValue& v) {
  std::string r;
  nu::readString(v, "rejected", r);
  return r;
}

}  // namespace

// ------------------------------------------------ rendezvous hashing ------

TEST(RendezvousHashing, OwnerIsRankHeadWithDeterministicTieBreak) {
  std::vector<std::uint64_t> hosts;
  for (std::size_t i = 0; i < 5; ++i)
    hosts.push_back(ns::fleetHostId("host-" + std::to_string(i)));
  for (std::uint64_t key = 1; key <= 200; ++key) {
    const std::size_t owner = nu::rendezvousOwner(key, hosts);
    const std::vector<std::size_t> rank = nu::rendezvousRank(key, hosts);
    ASSERT_EQ(rank.size(), hosts.size());
    EXPECT_EQ(rank.front(), owner);
    // Rank is a permutation.
    std::set<std::size_t> seen(rank.begin(), rank.end());
    EXPECT_EQ(seen.size(), hosts.size());
  }
  EXPECT_THROW(nu::rendezvousOwner(1, {}), std::invalid_argument);
}

TEST(RendezvousHashing, RemovingAHostMovesOnlyItsKeys) {
  std::vector<std::uint64_t> hosts;
  for (std::size_t i = 0; i < 5; ++i)
    hosts.push_back(ns::fleetHostId("host-" + std::to_string(i)));
  const std::size_t removed = 2;
  std::vector<std::uint64_t> survivors;
  for (std::size_t i = 0; i < hosts.size(); ++i)
    if (i != removed) survivors.push_back(hosts[i]);

  std::size_t moved = 0;
  for (std::uint64_t key = 1; key <= 1000; ++key) {
    const std::size_t before = nu::rendezvousOwner(key, hosts);
    const std::size_t after = nu::rendezvousOwner(key, survivors);
    const std::uint64_t afterId = survivors[after];
    if (before == removed) {
      ++moved;
      // Orphaned keys land on their second-choice host.
      const std::vector<std::size_t> rank = nu::rendezvousRank(key, hosts);
      EXPECT_EQ(afterId, hosts[rank[1]]) << "key " << key;
    } else {
      EXPECT_EQ(afterId, hosts[before]) << "key " << key << " moved "
                                        << "despite its owner surviving";
    }
  }
  // The removed host owned a nontrivial share (sanity on the hash spread).
  EXPECT_GT(moved, 100u);
  EXPECT_LT(moved, 350u);
}

TEST(FleetTaskKey, DistinctAcrossTasksAndSeeds) {
  std::set<std::uint64_t> keys;
  for (std::size_t p = 0; p < 16; ++p)
    for (std::size_t k = 0; k < 8; ++k)
      keys.insert(ns::fleetTaskKey(2021, p, k));
  EXPECT_EQ(keys.size(), 16u * 8u);
  EXPECT_NE(ns::fleetTaskKey(2021, 0, 0), ns::fleetTaskKey(2022, 0, 0));
}

// ------------------------------------------------ retry schedule ----------

TEST(RetrySchedule, SameSeedSameScheduleWithCapAndJitterBounds) {
  nu::RetrySchedule a(100.0, 1000.0, 42);
  nu::RetrySchedule b(100.0, 1000.0, 42);
  nu::RetrySchedule c(100.0, 1000.0, 43);
  bool anyDiffers = false;
  for (int i = 0; i < 12; ++i) {
    const double da = a.nextDelayMs();
    EXPECT_EQ(da, b.nextDelayMs());  // bit-identical replay
    if (da != c.nextDelayMs()) anyDiffers = true;
    // Jitter keeps attempt n within [cap/2, cap) of its exponential step.
    const double cap = std::min(100.0 * static_cast<double>(1 << std::min(i, 20)),
                                1000.0);
    EXPECT_GE(da, cap * 0.5);
    EXPECT_LT(da, cap);
  }
  EXPECT_TRUE(anyDiffers);
  EXPECT_EQ(a.attempts(), 12u);
  a.reset(42);
  b.reset(42);
  EXPECT_EQ(a.nextDelayMs(), b.nextDelayMs());
}

// ------------------------------------------------ determinism -------------

TEST(FleetCoordinator, OneHostAndThreeHostsRenderIdenticalReports) {
  const nh::ExperimentConfig cfg = tinyConfig();
  const std::string one =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);
  const std::string three =
      runFleetReport(fastPoll(3), loopbackFactory(), {}, cfg);
  EXPECT_EQ(one, three);
}

TEST(FleetCoordinator, ReportMatchesOneShotRunner) {
  const nh::ExperimentConfig cfg = tinyConfig(9);
  ns::FleetCoordinator fleet(fastPoll(2), loopbackFactory());
  const ns::FleetReport report = fleet.run(cfg, "Edit");
  const nh::MethodReport ref = oneShot(cfg);
  ASSERT_EQ(report.programs, ref.programs.size());
  ASSERT_EQ(report.tasks.size(), report.programs * report.runsPerProgram);
  for (const ns::TaskRecord& t : report.tasks) {
    ASSERT_LT(t.program, ref.programs.size());
    ASSERT_LT(t.run, ref.programs[t.program].runs.size());
    const nh::RunRecord& r = ref.programs[t.program].runs[t.run];
    EXPECT_EQ(t.found, r.found) << "p=" << t.program << " k=" << t.run;
    EXPECT_EQ(t.candidates, r.candidates) << "p=" << t.program;
    EXPECT_EQ(t.generations, r.generations) << "p=" << t.program;
  }
}

// ------------------------------------------------ overload shedding -------

TEST(FleetCoordinator, OverloadedHostShedsItsClaimToSiblings) {
  const nh::ExperimentConfig cfg = tinyConfig(13);
  // Host 0 rejects any claim of more than one task; host 1 is unbounded.
  ns::FleetConfig fc = fastPoll(2);
  fc.shedBackoffMs = 1.0;
  fc.shedBackoffCapMs = 4.0;
  ns::FleetMetrics metrics;
  const std::string shedRun = runFleetReport(
      fc, loopbackFactory({}, {1, 0}), {}, cfg, &metrics);
  EXPECT_GE(metrics.claimsShed, 1u);
  EXPECT_EQ(metrics.hostsLost, 0u);
  const std::string plain =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);
  EXPECT_EQ(shedRun, plain);
}

// ------------------------------------------------ failover ----------------

TEST(FleetCoordinator, DeadHostTasksFailOverToSurvivorsWithAdoption) {
  const nh::ExperimentConfig cfg = mediumConfig();
  const std::string undisturbed =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);

  FleetEnv env("failover");
  ns::FleetConfig fc = fastPoll(3);
  fc.chaosKill = true;  // auto-pick the busiest host, kill it mid-claim
  ns::FleetMetrics metrics;
  const std::string chaosRun =
      runFleetReport(fc, loopbackFactory(env.hostDirs(3)), env.hostDirs(3),
                     cfg, &metrics);

  EXPECT_EQ(chaosRun, undisturbed);
  EXPECT_EQ(metrics.hostsLost, 1u);
  EXPECT_GE(metrics.tasksReassigned, 1u);
  EXPECT_GE(metrics.recovered(), 1u);
  EXPECT_EQ(metrics.hostsRestarted, 0u);  // survivors absorbed the work
}

TEST(FleetCoordinator, LastHostDeathRespawnsAndResumesFromDurableState) {
  const nh::ExperimentConfig cfg = mediumConfig(43);
  const std::string undisturbed =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);

  FleetEnv env("respawn");
  ns::FleetConfig fc = fastPoll(1);
  fc.chaosKill = true;
  fc.chaosKillHost = 0;  // the only host: forces the restart path
  ns::FleetMetrics metrics;
  const std::string chaosRun =
      runFleetReport(fc, loopbackFactory(env.hostDirs(1)), env.hostDirs(1),
                     cfg, &metrics);

  EXPECT_EQ(chaosRun, undisturbed);
  EXPECT_EQ(metrics.hostsLost, 1u);
  EXPECT_EQ(metrics.hostsRestarted, 1u);
  // The respawned backend recovered the claim from its state dir.
  EXPECT_GE(metrics.jobsRecovered, 1u);
  EXPECT_GE(metrics.recovered(), 1u);
}

// ------------------------------------------------ protocol: hello/claim ---

TEST(FleetProtocol, HelloEstablishesRotatesAndRetiresTokens) {
  ns::ServiceConfig sc;
  sc.workers = 1;
  ns::SynthService svc(sc);
  const std::string cfgJson = tinyConfig(3, 300).toJson();

  // Claim before any hello: rejected loudly, not accepted silently.
  const nu::JsonValue early = handled(
      svc, "{\"op\": \"claim\", \"token\": \"tokA\", \"config\": " + cfgJson +
               ", \"tasks\": [0]}");
  EXPECT_FALSE(okOf(early));
  EXPECT_EQ(rejectedOf(early), "stale_token");

  const nu::JsonValue h1 =
      handled(svc, "{\"op\": \"hello\", \"token\": \"tokA\"}");
  ASSERT_TRUE(okOf(h1));
  std::uint64_t epoch1 = 0;
  nu::readU64(h1, "epoch", epoch1);
  EXPECT_EQ(epoch1, 1u);

  // Idempotent re-hello: same token, same epoch (a coordinator reconnect).
  const nu::JsonValue h1again =
      handled(svc, "{\"op\": \"hello\", \"token\": \"tokA\"}");
  ASSERT_TRUE(okOf(h1again));
  std::uint64_t epochAgain = 0;
  nu::readU64(h1again, "epoch", epochAgain);
  EXPECT_EQ(epochAgain, epoch1);

  const nu::JsonValue claimed = handled(
      svc, "{\"op\": \"claim\", \"token\": \"tokA\", \"config\": " + cfgJson +
               ", \"tasks\": [0, 2]}");
  ASSERT_TRUE(okOf(claimed)) << "claim with a fresh token must be accepted";
  std::uint64_t claimedTotal = 0;
  nu::readU64(claimed, "tasks_total", claimedTotal);
  EXPECT_EQ(claimedTotal, 2u) << "job scope is the claim, not the workload";

  // Rotation: a new token supersedes, bumping the epoch.
  const nu::JsonValue h2 =
      handled(svc, "{\"op\": \"hello\", \"token\": \"tokB\"}");
  ASSERT_TRUE(okOf(h2));
  std::uint64_t epoch2 = 0;
  nu::readU64(h2, "epoch", epoch2);
  EXPECT_EQ(epoch2, 2u);

  // The zombie coordinator's replays are rejected loudly...
  const nu::JsonValue stale = handled(
      svc, "{\"op\": \"claim\", \"token\": \"tokA\", \"config\": " + cfgJson +
               ", \"tasks\": [1]}");
  EXPECT_FALSE(okOf(stale));
  EXPECT_EQ(rejectedOf(stale), "stale_token");
  // ...and a retired token cannot re-hello its way back in.
  const nu::JsonValue rehello =
      handled(svc, "{\"op\": \"hello\", \"token\": \"tokA\"}");
  EXPECT_FALSE(okOf(rehello));
  EXPECT_EQ(rejectedOf(rehello), "stale_token");

  // Empty tokens are invalid for both ops.
  EXPECT_FALSE(okOf(handled(svc, "{\"op\": \"hello\", \"token\": \"\"}")));
  EXPECT_FALSE(okOf(handled(
      svc, "{\"op\": \"claim\", \"token\": \"\", \"config\": " + cfgJson +
               "}")));

  const ns::SessionStats stats = svc.stats();
  EXPECT_EQ(stats.hellosAccepted, 2u);
  EXPECT_GE(stats.staleTokensRejected, 3u);
}

TEST(FleetProtocol, ClaimValidatesTaskIndices) {
  ns::ServiceConfig sc;
  sc.workers = 1;
  ns::SynthService svc(sc);
  const nh::ExperimentConfig cfg = tinyConfig(5, 300);
  const std::string cfgJson = cfg.toJson();
  ASSERT_TRUE(okOf(handled(svc, "{\"op\": \"hello\", \"token\": \"t\"}")));

  // Duplicates normalize away: [1, 1, 2] claims two tasks.
  const nu::JsonValue dup = handled(
      svc, "{\"op\": \"claim\", \"token\": \"t\", \"config\": " + cfgJson +
               ", \"tasks\": [1, 1, 2]}");
  ASSERT_TRUE(okOf(dup));
  std::uint64_t total = 0;
  nu::readU64(dup, "tasks_total", total);
  EXPECT_EQ(total, 2u);

  // Out-of-range indices are a loud error, not a silent truncation.
  EXPECT_FALSE(okOf(handled(
      svc, "{\"op\": \"claim\", \"token\": \"t\", \"config\": " + cfgJson +
               ", \"tasks\": [999]}")));
  // Malformed shapes: "tasks" must be an array of indices.
  EXPECT_FALSE(okOf(handled(
      svc, "{\"op\": \"claim\", \"token\": \"t\", \"config\": " + cfgJson +
               ", \"tasks\": 3}")));
  EXPECT_FALSE(okOf(handled(
      svc, "{\"op\": \"claim\", \"token\": \"t\", \"config\": " + cfgJson +
               ", \"tasks\": [-1]}")));
  // Missing config.
  EXPECT_FALSE(okOf(handled(svc, "{\"op\": \"claim\", \"token\": \"t\"}")));
}

TEST(FleetProtocol, TruncatedClaimFramesNeverCrashOrCreateJobs) {
  ns::ServiceConfig sc;
  sc.workers = 1;
  ns::SynthService svc(sc);
  const std::string cfgJson = tinyConfig(11, 300).toJson();
  ASSERT_TRUE(okOf(handled(svc, "{\"op\": \"hello\", \"token\": \"t\"}")));
  const std::string full = "{\"op\": \"claim\", \"token\": \"t\", \"config\": " +
                           cfgJson + ", \"tasks\": [0, 1]}";
  const std::size_t jobsBefore = svc.stats().jobsSubmitted;
  // Every proper prefix is an unterminated JSON document: each must come
  // back as a clean ok:false error on the same session.
  for (std::size_t len = 1; len < full.size(); ++len) {
    const nu::JsonValue resp = handled(svc, full.substr(0, len));
    EXPECT_FALSE(okOf(resp)) << "prefix length " << len;
  }
  EXPECT_EQ(svc.stats().jobsSubmitted, jobsBefore);
  // The intact line still works afterwards: the session survived the fuzz.
  EXPECT_TRUE(okOf(handled(svc, full)));
}

TEST(FleetProtocol, HelloReportsDurableResumption) {
  FleetEnv env("hello_resume");
  const nh::ExperimentConfig cfg = tinyConfig(17, 300);
  {
    ns::ServiceConfig sc;
    sc.workers = 1;
    sc.stateDir = env.hostDir(0);
    ns::SynthService svc(sc);
    ASSERT_TRUE(okOf(handled(svc, "{\"op\": \"hello\", \"token\": \"t\"}")));
    const nu::JsonValue claimed = handled(
        svc, "{\"op\": \"claim\", \"token\": \"t\", \"config\": " +
                 cfg.toJson() + ", \"tasks\": [0, 1]}");
    ASSERT_TRUE(okOf(claimed));
    std::uint64_t id = 0;
    nu::readU64(claimed, "job", id);
    svc.wait(id);
  }  // dies with durable state on disk
  ns::ServiceConfig sc;
  sc.workers = 1;
  sc.stateDir = env.hostDir(0);
  ns::SynthService revived(sc);
  const nu::JsonValue h =
      handled(revived, "{\"op\": \"hello\", \"token\": \"t\"}");
  ASSERT_TRUE(okOf(h));
  bool resumed = false;
  nu::readBool(h, "resumed", resumed);
  EXPECT_TRUE(resumed) << "hello must flag recovered durable jobs so the "
                          "coordinator re-claims with attach";
}

// ------------------------------------------------ socket backends ---------

namespace {

/// A real daemon in miniature: a SynthService served over a Unix-domain
/// SocketServer, the same stack `synthd --listen` runs. Returns endpoints
/// the coordinator's socket constructor dials.
class SocketFleetEnv {
 public:
  explicit SocketFleetEnv(std::size_t hosts) {
    for (std::size_t i = 0; i < hosts; ++i) {
      ns::ServiceConfig sc;
      sc.workers = 1;
      services_.push_back(std::make_unique<ns::SynthService>(sc));
      const std::string path = "/tmp/netsyn_fleet_" +
                               std::to_string(::getpid()) + "_" +
                               std::to_string(counter_++) + ".sock";
      servers_.push_back(std::make_unique<ns::SocketServer>(
          *services_.back(), nu::SocketEndpoint::parse("unix:" + path)));
      servers_.back()->start();
      endpoints_.push_back(servers_.back()->boundEndpoint());
    }
  }

  const std::vector<nu::SocketEndpoint>& endpoints() const {
    return endpoints_;
  }
  ns::SynthService& service(std::size_t i) { return *services_.at(i); }

 private:
  static inline int counter_ = 0;
  std::vector<std::unique_ptr<ns::SynthService>> services_;
  std::vector<std::unique_ptr<ns::SocketServer>> servers_;
  std::vector<nu::SocketEndpoint> endpoints_;
};

}  // namespace

// The tentpole invariant crossing the wire: the same workload merged over
// socket backends renders the same bytes as the loopback (and, by the
// existing tests, pipe) fleets — for one host and three.
TEST(FleetSocket, SocketBackendsRenderSameReportBytesAsLoopback) {
  const nh::ExperimentConfig cfg = tinyConfig();
  const std::string reference =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);
  for (const std::size_t hosts : {std::size_t{1}, std::size_t{3}}) {
    SocketFleetEnv env(hosts);
    ns::FleetCoordinator fleet(fastPoll(hosts), env.endpoints());
    EXPECT_EQ(fleet.run(cfg, "Edit").render(), reference)
        << hosts << "-host socket fleet diverged";
  }
}

// A connection severed mid-claim is not a host death: the coordinator
// re-dials, re-hellos the same token (idempotent epoch), and re-attaches
// its still-running claims — and the merged bytes never notice.
TEST(FleetSocket, MidClaimSeverReconnectsAndKeepsReportBytes) {
  const nh::ExperimentConfig cfg = mediumConfig();
  const std::string undisturbed =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);

  SocketFleetEnv env(3);
  ns::FleetConfig fc = fastPoll(3);
  fc.chaosKill = true;  // on a socket host: severs the connection only
  fc.maxReconnectAttempts = 3;
  fc.reconnectBaseMs = 1.0;
  fc.reconnectCapMs = 4.0;
  ns::FleetCoordinator fleet(fc, env.endpoints());
  const std::string chaosRun = fleet.run(cfg, "Edit").render();
  const ns::FleetMetrics metrics = fleet.metrics();

  EXPECT_EQ(chaosRun, undisturbed);
  EXPECT_EQ(metrics.hostsReconnected, 1u);
  EXPECT_EQ(metrics.hostsLost, 0u) << "a sever with redial budget left must "
                                      "not escalate to host death";
  EXPECT_GE(metrics.recovered(), 1u);
}

// With the redial budget exhausted the sever degrades to the pipe-era
// behavior: host death, failover to survivors, same bytes.
TEST(FleetSocket, SeverPastRedialBudgetFailsOverToSurvivors) {
  const nh::ExperimentConfig cfg = mediumConfig();
  const std::string undisturbed =
      runFleetReport(fastPoll(1), loopbackFactory(), {}, cfg);

  SocketFleetEnv env(3);
  ns::FleetConfig fc = fastPoll(3);
  fc.chaosKill = true;
  fc.maxReconnectAttempts = 0;  // legacy mode: a drop is a death
  ns::FleetCoordinator fleet(fc, env.endpoints());
  const std::string chaosRun = fleet.run(cfg, "Edit").render();
  const ns::FleetMetrics metrics = fleet.metrics();

  EXPECT_EQ(chaosRun, undisturbed);
  EXPECT_EQ(metrics.hostsLost, 1u);
  EXPECT_EQ(metrics.hostsReconnected, 0u);
  EXPECT_GE(metrics.tasksReassigned, 1u);
}

// Epoch fencing across the wire: once a successor coordinator hellos a new
// token, a zombie predecessor's dial is rejected stale_token — loudly, not
// as a silent split brain.
TEST(FleetSocket, ZombieCoordinatorDialIsFencedByStaleToken) {
  SocketFleetEnv env(1);
  {
    nu::SocketTransport old(env.endpoints()[0], 5.0);
    ASSERT_TRUE(okOf(nu::parseJson(
        old.request("{\"op\": \"hello\", \"token\": \"epoch-old\"}"))));
    nu::SocketTransport successor(env.endpoints()[0], 5.0);
    ASSERT_TRUE(okOf(nu::parseJson(successor.request(
        "{\"op\": \"hello\", \"token\": \"epoch-new\"}"))));
  }
  // The zombie comes back with its retired token: connect must throw, and
  // the daemon must stay healthy for the live epoch.
  ns::FleetConfig fc = fastPoll(1);
  fc.token = "epoch-old";
  ns::FleetCoordinator zombie(fc, env.endpoints());
  EXPECT_THROW(zombie.run(tinyConfig(), "Edit"), std::runtime_error);

  nu::SocketTransport live(env.endpoints()[0], 5.0);
  EXPECT_TRUE(okOf(nu::parseJson(
      live.request("{\"op\": \"hello\", \"token\": \"epoch-new\"}"))));
}

// ------------------------------------------------ socket framing fuzz -----

// Satellite of the tentpole's fault layer: protocol frames mangled at the
// byte level on a real socket. Every strict prefix terminated by a newline
// must come back as a clean ok:false on a surviving session; prefixes cut
// by a disconnect must leave no phantom job; and no split of a valid frame
// across write boundaries may change what the daemon parses. ASan CI runs
// this test, so a buffer overrun in the reassembly path fails loudly.
TEST(FleetSocket, FramingFuzzNeverCrashesOrCreatesPhantomJobs) {
  SocketFleetEnv env(1);
  const std::string cfgJson = tinyConfig(11, 300).toJson();
  const std::string hello = "{\"op\": \"hello\", \"token\": \"fuzz\"}";
  const std::string full = "{\"op\": \"claim\", \"token\": \"fuzz\", "
                           "\"config\": " +
                           cfgJson + ", \"tasks\": [0, 1]}";

  // Newline-terminated strict prefixes, all on one session: each is an
  // unterminated JSON document the daemon must answer ok:false without
  // dropping the connection.
  {
    nu::SocketTransport t(env.endpoints()[0], 30.0);
    ASSERT_TRUE(okOf(nu::parseJson(t.request(hello))));
    for (std::size_t len = 1; len < full.size(); len += 7) {
      const std::string framed = full.substr(0, len) + "\n";
      t.sendBytes(framed.data(), framed.size());
      EXPECT_FALSE(okOf(nu::parseJson(t.recvLine())))
          << "prefix length " << len;
    }
    EXPECT_EQ(env.service(0).stats().jobsSubmitted, 0u)
        << "a truncated claim line must never submit";
    // The session survived the whole battery: the intact frame still works.
    EXPECT_TRUE(okOf(nu::parseJson(t.request(full))));
    EXPECT_EQ(env.service(0).stats().jobsSubmitted, 1u);
  }

  // Prefixes cut by disconnect (no newline, then EOF): the daemon reads a
  // partial line, sees the close, and discards it — no response, no job.
  const std::size_t jobsAfterIntact = env.service(0).stats().jobsSubmitted;
  for (std::size_t len = 1; len < full.size(); len += 29) {
    nu::SocketTransport t(env.endpoints()[0], 30.0);
    ASSERT_TRUE(okOf(nu::parseJson(t.request(hello))));
    t.sendBytes(full.data(), len);
    t.close();
  }
  // Give the last session thread a beat to observe the EOF.
  for (int i = 0; i < 200; ++i) {
    if (env.service(0).stats().jobsSubmitted == jobsAfterIntact) break;
    usleep(5 * 1000);
  }
  EXPECT_EQ(env.service(0).stats().jobsSubmitted, jobsAfterIntact)
      << "a frame cut by disconnect must never submit";

  // Valid frame split at seeded-random write boundaries: TCP segmentation
  // must be invisible to the parser — every round parses the same claim.
  std::uint64_t state = 0x5eedf00dULL;
  auto nextSplit = [&state](std::size_t bound) {
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>((z ^ (z >> 31)) % bound);
  };
  for (int round = 0; round < 16; ++round) {
    nu::SocketTransport t(env.endpoints()[0], 30.0);
    ASSERT_TRUE(okOf(nu::parseJson(t.request(hello))));
    const std::string framed = full + "\n";
    std::size_t at = 0;
    while (at < framed.size()) {
      const std::size_t n =
          std::min(framed.size() - at, 1 + nextSplit(64));
      t.sendBytes(framed.data() + at, n);
      at += n;
    }
    EXPECT_TRUE(okOf(nu::parseJson(t.recvLine()))) << "round " << round;
  }
}
