// Reporting-layer tests: percentile table assembly and CSV output — the
// code paths every bench binary relies on to print the paper's tables.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "harness/runner.hpp"
#include "util/table.hpp"

namespace nh = netsyn::harness;
namespace nu = netsyn::util;

namespace {

nh::MethodReport reportWith(std::vector<double> costs, std::size_t unsolved,
                            std::size_t budget) {
  nh::MethodReport report;
  report.method = "M";
  report.budget = budget;
  for (double c : costs) {
    nh::ProgramResult pr;
    pr.runs.push_back({true, static_cast<std::size_t>(c), c / 10.0, 1, {}});
    report.programs.push_back(pr);
  }
  for (std::size_t i = 0; i < unsolved; ++i) {
    nh::ProgramResult pr;
    pr.runs.push_back({false, budget, 1.0, 1, {}});
    report.programs.push_back(pr);
  }
  return report;
}

}  // namespace

TEST(Reporting, PercentileHeaderHasTwelveColumns) {
  const auto header = nh::percentileHeader("space");
  ASSERT_EQ(header.size(), 12u);
  EXPECT_EQ(header[0], "Method");
  EXPECT_EQ(header[1], "Synth%");
  EXPECT_EQ(header[2], "10% space");
  EXPECT_EQ(header.back(), "100% space");
}

TEST(Reporting, AppendPercentileRowSpaceVariant) {
  const auto report = reportWith({100, 500}, 2, 1000);  // 50% synthesized
  nu::Table table(nh::percentileHeader("space"));
  nh::appendPercentileRow(table, report, /*useTime=*/false);
  const std::string text = table.toString();
  EXPECT_NE(text.find("M"), std::string::npos);
  EXPECT_NE(text.find("50%"), std::string::npos);    // synth fraction
  EXPECT_NE(text.find("10.00%"), std::string::npos);  // 100/1000 budget
  EXPECT_NE(text.find("-"), std::string::npos);      // unreachable pctiles
}

TEST(Reporting, AppendPercentileRowTimeVariant) {
  const auto report = reportWith({100, 500}, 0, 1000);
  nu::Table table(nh::percentileHeader("secs"));
  nh::appendPercentileRow(table, report, /*useTime=*/true);
  const std::string text = table.toString();
  EXPECT_NE(text.find("10.00"), std::string::npos);  // seconds = cost/10
  EXPECT_NE(text.find("50.00"), std::string::npos);
}

TEST(Reporting, CsvRoundTripThroughFile) {
  nu::Table table({"a", "b"});
  table.newRow().addInt(1).add("x");
  table.newRow().addInt(2).add("y,z");
  const auto path =
      (std::filesystem::temp_directory_path() / "netsyn_table.csv").string();
  table.writeCsv(path);
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,x");
  std::getline(f, line);
  EXPECT_EQ(line, "2,\"y,z\"");
  std::remove(path.c_str());
}

TEST(Reporting, WriteCsvToBadPathThrows) {
  nu::Table table({"a"});
  EXPECT_THROW(table.writeCsv("/nonexistent/dir/x.csv"), std::runtime_error);
}

TEST(Reporting, PercentileRowMatchesTableTwoSemantics) {
  // 10 programs, 9 solved: the 90% column is defined, the 100% is not.
  std::vector<double> costs;
  for (int i = 1; i <= 9; ++i) costs.push_back(i * 100.0);
  const auto report = reportWith(costs, 1, 1000);
  const auto row = nh::percentileRow(report, false);
  EXPECT_FALSE(std::isnan(row[8]));
  EXPECT_NEAR(row[8], 0.9, 1e-9);  // 900/1000
  EXPECT_TRUE(std::isnan(row[9]));
}
