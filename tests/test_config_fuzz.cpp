// Adversarial inputs for ExperimentConfig::fromJson and the shared JSON
// parser: truncations, duplicate keys, huge numbers, deep nesting, random
// byte corruption. The contract under attack is simple — reject cleanly
// with std::invalid_argument, never crash, never hang — and the CI
// asan-ubsan job runs this suite to make "never crash" mean something.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "harness/config.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace nh = netsyn::harness;
namespace nu = netsyn::util;

namespace {

/// A maximal valid document: every optional section present (islands,
/// tweaks, strings with escapes), so truncation cuts through all of them.
std::string richConfigJson() {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.modelDir = "dir with \"quotes\"\nand\tcontrols";
  cfg.synthesizer.strategy = netsyn::core::SearchStrategy::Islands;
  cfg.synthesizer.islands.count = 4;
  cfg.synthesizer.islands.heterogeneous = true;
  cfg.synthesizer.islands.tweaks.resize(2);
  cfg.synthesizer.islands.tweaks[0].nsKind = netsyn::core::NsKind::DFS;
  cfg.synthesizer.islands.tweaks[1].fpGuidedMutation = true;
  return cfg.toJson();
}

}  // namespace

TEST(ConfigFuzz, EveryTruncationIsRejectedCleanly) {
  const std::string full = richConfigJson();
  ASSERT_NO_THROW(nh::ExperimentConfig::fromJson(full));
  for (std::size_t len = 0; len < full.size(); ++len) {
    EXPECT_THROW(nh::ExperimentConfig::fromJson(full.substr(0, len)),
                 std::invalid_argument)
        << "prefix of length " << len << " parsed";
  }
}

TEST(ConfigFuzz, DuplicateKeysAreFirstWins) {
  // RFC 8259 leaves duplicate-key behavior open; ours is pinned: first
  // occurrence wins, later ones are ignored, nothing crashes.
  const auto cfg = nh::ExperimentConfig::fromJson(
      "{\"scale\": \"ci\", \"search_budget\": 111, \"search_budget\": 222}");
  EXPECT_EQ(cfg.searchBudget, 111u);
}

TEST(ConfigFuzz, HugeAndMalformedNumbersAreRejected) {
  // Exponent floats where integers are required: stoull would truncate
  // "1e4" to 1 — the reader must refuse instead.
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"search_budget\": 1e4}"),
               std::invalid_argument);
  // Out-of-range integers must not wrap.
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"search_budget\": 99999999999999999999999999}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"search_budget\": -4}"),
               std::invalid_argument);
  // Out-of-range doubles (1e999 overflows) and number-shaped garbage.
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"training\": {\"learning_rate\": 1e999}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"training\": {\"learning_rate\": 1.2.3}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"seed\": 1-2}"),
               std::invalid_argument);
}

TEST(ConfigFuzz, SemanticZeroesAreRejectedAtLoadTime) {
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"synthesizer\": {\"population_size\": 0}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"program_lengths\": [0]}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"synthesizer\": {\"islands\": {\"count\": 0}}}"),
               std::invalid_argument);
}

TEST(ConfigFuzz, WrongShapesAreRejected) {
  EXPECT_THROW(nh::ExperimentConfig::fromJson("[]"), std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("42"), std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"program_lengths\": 5}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"synthesizer\": \"x\"}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"training\": [1, 2]}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\": \"huge\"}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(
                   "{\"synthesizer\": {\"ns_kind\": \"ids\"}}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{} trailing"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(""), std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("   "), std::invalid_argument);
}

TEST(ConfigFuzz, UnknownOrMalformedDomainIsRejected) {
  // Unknown names fail with a message naming the valid domains — a typo'd
  // --domain in a service request must not silently search the wrong DSL.
  try {
    nh::ExperimentConfig::fromJson("{\"domain\": \"flashfil\"}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("flashfil"), std::string::npos);
    EXPECT_NE(msg.find("list, str"), std::string::npos);
  }
  // Wrong JSON types for the key are shape errors, not crashes.
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"domain\": 12}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"domain\": [\"str\"]}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"domain\": \"\"}"),
               std::invalid_argument);
  // Valid names load, round-trip, and resolve their Domain pointers.
  EXPECT_EQ(nh::ExperimentConfig::fromJson("{\"domain\": \"str\"}").domainName,
            "str");
  EXPECT_EQ(nh::ExperimentConfig::fromJson("{\"domain\": \"list\"}")
                .synthesizer.generator.domain,
            nullptr);
}

TEST(ConfigFuzz, MalformedLengthsFlagIsRejectedNamingTheFlag) {
  // --lengths used to go through bare std::stol: junk like "5x" silently
  // parsed its prefix, and overflow threw an unnamed std::out_of_range that
  // surfaced as terminate in tools without a top-level handler. The parse
  // must reject whole-item, range-check, and name the flag in the message.
  const auto parse = [](const char* lengths) {
    const char* argv[] = {"prog", "--scale=ci", lengths};
    const nu::ArgParse args(3, argv);
    return nh::ExperimentConfig::fromArgs(args);
  };
  EXPECT_EQ(parse("--lengths=3,5,7").programLengths,
            (std::vector<std::size_t>{3, 5, 7}));
  for (const char* bad :
       {"--lengths=5x", "--lengths=99999999999999999999999", "--lengths=-3",
        "--lengths=0", "--lengths=", "--lengths=1,two,3",
        "--lengths=4294967295x7", "--lengths=nan"}) {
    try {
      parse(bad);
      FAIL() << bad << " was accepted";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--lengths"), std::string::npos)
          << "message for '" << bad << "' does not name the flag: "
          << e.what();
    }
  }
}

TEST(ConfigFuzz, DeepNestingHitsTheDepthCapNotTheStack) {
  // Without the parser's depth cap these are a stack overflow (the
  // recursive-descent parser recurses per '['/'{').
  const std::string arrays(100000, '[');
  EXPECT_THROW(nu::parseJson(arrays), std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson(arrays),
               std::invalid_argument);
  std::string objects;
  for (int i = 0; i < 100000; ++i) objects += "{\"a\":";
  EXPECT_THROW(nu::parseJson(objects), std::invalid_argument);

  // The cap is a boundary, not a cliff: comfortably-nested documents parse.
  std::string shallow;
  for (int i = 0; i < 40; ++i) shallow += '[';
  shallow += "1";
  for (int i = 0; i < 40; ++i) shallow += ']';
  EXPECT_NO_THROW(nu::parseJson(shallow));
  std::string deep;
  for (int i = 0; i < 80; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 80; ++i) deep += ']';
  EXPECT_THROW(nu::parseJson(deep), std::invalid_argument);
}

TEST(ConfigFuzz, BrokenStringsAndEscapesAreRejected) {
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\": \"unterminated"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\": \"bad\\q\"}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\": \"\\u12\"}"),
               std::invalid_argument);
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\": \"\\u1234\"}"),
               std::invalid_argument);  // only \u00XX is in the subset
  EXPECT_THROW(nh::ExperimentConfig::fromJson("{\"scale\" \"ci\"}"),
               std::invalid_argument);
}

TEST(ConfigFuzz, RandomByteCorruptionNeverCrashes) {
  // 4000 corrupted variants of a valid document: every one must either
  // still parse (a benign mutation) or throw std::invalid_argument. Any
  // other escape — a crash, a sanitizer report, a different exception —
  // fails the test. Deterministic, so failures replay.
  const std::string base = richConfigJson();
  nu::Rng rng(0xF00DF00D);
  std::size_t parsed = 0;
  std::size_t rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string doc = base;
    const std::size_t edits = 1 + rng.uniform(3);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.uniform(doc.size());
      switch (rng.uniform(3)) {
        case 0: doc[pos] = static_cast<char>(rng.uniform(256)); break;
        case 1: doc.erase(pos, 1 + rng.uniform(4)); break;
        default:
          doc.insert(pos, 1, static_cast<char>(rng.uniform(256)));
          break;
      }
      if (doc.empty()) doc = "{";
    }
    try {
      (void)nh::ExperimentConfig::fromJson(doc);
      ++parsed;
    } catch (const std::invalid_argument&) {
      ++rejected;
    }
  }
  // Sanity on the distribution: corruption mostly breaks documents.
  EXPECT_GT(rejected, parsed);
  EXPECT_EQ(parsed + rejected, 4000u);
}

TEST(ConfigFuzz, RoundTripSurvivesTheRichConfig) {
  // The adversarial suite should not cost the honest path anything: a
  // maximal config still round-trips exactly.
  const std::string json = richConfigJson();
  const auto cfg = nh::ExperimentConfig::fromJson(json);
  EXPECT_EQ(cfg.toJson(), json);
}
