// Semantics tests for all 41 DSL functions (paper Appendix A), including the
// edge cases the appendix calls out: empty lists, out-of-range indices,
// negative counts, and saturating arithmetic.
#include <gtest/gtest.h>

#include <limits>

#include "dsl/functions.hpp"
#include "dsl/value.hpp"

namespace nd = netsyn::dsl;

namespace {

using List = std::vector<std::int32_t>;

nd::Value call(const std::string& name, const std::vector<nd::Value>& args) {
  const auto id = nd::functionByName(name);
  EXPECT_TRUE(id.has_value()) << "unknown function " << name;
  return nd::applyFunction(*id, std::span<const nd::Value>(args));
}

nd::Value callL(const std::string& name, List xs) {
  return call(name, {nd::Value(std::move(xs))});
}

nd::Value callIL(const std::string& name, std::int32_t n, List xs) {
  return call(name, {nd::Value(n), nd::Value(std::move(xs))});
}

nd::Value callLL(const std::string& name, List a, List b) {
  return call(name, {nd::Value(std::move(a)), nd::Value(std::move(b))});
}

constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();
constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();

}  // namespace

// ------------------------------------------------------------- Value -----

TEST(Value, DefaultsAndTypes) {
  EXPECT_TRUE(nd::Value().isInt());
  EXPECT_EQ(nd::Value().asInt(), 0);
  EXPECT_EQ(nd::Value::defaultFor(nd::Type::Int), nd::Value(0));
  EXPECT_EQ(nd::Value::defaultFor(nd::Type::List), nd::Value(List{}));
  EXPECT_TRUE(nd::Value(List{1}).isList());
}

TEST(Value, ToString) {
  EXPECT_EQ(nd::Value(7).toString(), "7");
  EXPECT_EQ(nd::Value(List{1, -2, 3}).toString(), "[1, -2, 3]");
  EXPECT_EQ(nd::Value(List{}).toString(), "[]");
}

TEST(Value, SaturateClampsToInt32) {
  EXPECT_EQ(nd::saturate(std::int64_t{kMax} + 1), kMax);
  EXPECT_EQ(nd::saturate(std::int64_t{kMin} - 1), kMin);
  EXPECT_EQ(nd::saturate(42), 42);
  EXPECT_EQ(nd::saturate(-42), -42);
}

// ---------------------------------------------------------- metadata -----

TEST(Functions, TableHas41Functions) {
  EXPECT_EQ(nd::kNumFunctions, 41u);
}

TEST(Functions, PaperNumbersAreAPermutationOf1To41) {
  std::vector<bool> seen(nd::kNumFunctions + 1, false);
  for (std::size_t i = 0; i < nd::kNumFunctions; ++i) {
    const auto n = nd::functionInfo(static_cast<nd::FuncId>(i)).paperNumber;
    ASSERT_GE(n, 1);
    ASSERT_LE(n, 41);
    EXPECT_FALSE(seen[n]) << "duplicate paper number " << int(n);
    seen[n] = true;
  }
}

TEST(Functions, NamesAreUniqueAndRoundTrip) {
  for (std::size_t i = 0; i < nd::kNumFunctions; ++i) {
    const auto id = static_cast<nd::FuncId>(i);
    const auto back = nd::functionByName(nd::functionInfo(id).name);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(nd::functionByName("NOPE").has_value());
}

TEST(Functions, SignatureCountsMatchAppendix) {
  // Appendix A: 9 functions [int]->int, 21 [int]->[int], 4 int,[int]->[int],
  // 1 family (5 fns) [int],[int]->[int], 2 int,[int]->int.
  int l_to_i = 0, l_to_l = 0, il_to_l = 0, ll_to_l = 0, il_to_i = 0;
  for (std::size_t i = 0; i < nd::kNumFunctions; ++i) {
    const auto& info = nd::functionInfo(static_cast<nd::FuncId>(i));
    if (info.arity == 1 && info.returnType == nd::Type::Int) ++l_to_i;
    if (info.arity == 1 && info.returnType == nd::Type::List) ++l_to_l;
    if (info.arity == 2 && info.argTypes[0] == nd::Type::Int &&
        info.returnType == nd::Type::List)
      ++il_to_l;
    if (info.arity == 2 && info.argTypes[0] == nd::Type::List &&
        info.argTypes[1] == nd::Type::List)
      ++ll_to_l;
    if (info.arity == 2 && info.argTypes[0] == nd::Type::Int &&
        info.returnType == nd::Type::Int)
      ++il_to_i;
  }
  EXPECT_EQ(l_to_i, 9);
  EXPECT_EQ(l_to_l, 21);
  EXPECT_EQ(il_to_l, 4);
  EXPECT_EQ(ll_to_l, 5);
  EXPECT_EQ(il_to_i, 2);
}

TEST(Functions, FunctionsReturningPartitionsTheDsl) {
  const auto ints = nd::functionsReturning(nd::Type::Int);
  const auto lists = nd::functionsReturning(nd::Type::List);
  EXPECT_EQ(ints.size() + lists.size(), nd::kNumFunctions);
  EXPECT_EQ(ints.size(), 11u);  // ACCESS, COUNTx4, HEAD, LAST, MIN, MAX,
                                // SEARCH, SUM
  for (nd::FuncId f : ints) EXPECT_TRUE(nd::returnsInt(f));
  for (nd::FuncId f : lists) EXPECT_FALSE(nd::returnsInt(f));
}

TEST(Functions, ApplyRejectsWrongArityOrTypes) {
  const auto head = *nd::functionByName("HEAD");
  std::vector<nd::Value> none;
  EXPECT_THROW(nd::applyFunction(head, std::span<const nd::Value>(none)),
               std::invalid_argument);
  std::vector<nd::Value> wrong = {nd::Value(3)};
  EXPECT_THROW(nd::applyFunction(head, std::span<const nd::Value>(wrong)),
               std::invalid_argument);
}

// ----------------------------------------------------- [int] -> int -------

TEST(DslHead, FirstElementOrZero) {
  EXPECT_EQ(callL("HEAD", {5, 6, 7}), nd::Value(5));
  EXPECT_EQ(callL("HEAD", {}), nd::Value(0));
}

TEST(DslLast, LastElementOrZero) {
  EXPECT_EQ(callL("LAST", {5, 6, 7}), nd::Value(7));
  EXPECT_EQ(callL("LAST", {}), nd::Value(0));
}

TEST(DslMinimum, SmallestOrZero) {
  EXPECT_EQ(callL("MINIMUM", {3, -1, 2}), nd::Value(-1));
  EXPECT_EQ(callL("MINIMUM", {}), nd::Value(0));
}

TEST(DslMaximum, LargestOrZero) {
  EXPECT_EQ(callL("MAXIMUM", {3, -1, 2}), nd::Value(3));
  EXPECT_EQ(callL("MAXIMUM", {}), nd::Value(0));
}

TEST(DslSum, SumsAndSaturates) {
  EXPECT_EQ(callL("SUM", {1, 2, 3}), nd::Value(6));
  EXPECT_EQ(callL("SUM", {}), nd::Value(0));
  EXPECT_EQ(callL("SUM", {kMax, kMax}), nd::Value(kMax));
  EXPECT_EQ(callL("SUM", {kMin, kMin}), nd::Value(kMin));
}

TEST(DslCount, AllFourPredicates) {
  const List xs = {-2, -1, 0, 1, 2, 3};
  EXPECT_EQ(callL("COUNT(>0)", xs), nd::Value(3));
  EXPECT_EQ(callL("COUNT(<0)", xs), nd::Value(2));
  EXPECT_EQ(callL("COUNT(odd)", xs), nd::Value(3));   // -1, 1, 3
  EXPECT_EQ(callL("COUNT(even)", xs), nd::Value(3));  // -2, 0, 2
}

TEST(DslCount, EmptyListCountsZero) {
  for (const char* f :
       {"COUNT(>0)", "COUNT(<0)", "COUNT(odd)", "COUNT(even)"}) {
    EXPECT_EQ(callL(f, {}), nd::Value(0)) << f;
  }
}

TEST(DslCount, NegativeOddness) {
  // -3 is odd: C++ remainder is -1, which must still register as odd.
  EXPECT_EQ(callL("COUNT(odd)", {-3}), nd::Value(1));
  EXPECT_EQ(callL("COUNT(even)", {-4}), nd::Value(1));
}

// ------------------------------------------------- int,[int] -> int -------

TEST(DslAccess, ZeroBasedIndexWithDefaults) {
  EXPECT_EQ(callIL("ACCESS", 0, {10, 20, 30}), nd::Value(10));
  EXPECT_EQ(callIL("ACCESS", 2, {10, 20, 30}), nd::Value(30));
  EXPECT_EQ(callIL("ACCESS", 3, {10, 20, 30}), nd::Value(0));   // past end
  EXPECT_EQ(callIL("ACCESS", -1, {10, 20, 30}), nd::Value(0));  // negative
  EXPECT_EQ(callIL("ACCESS", 0, {}), nd::Value(0));
}

TEST(DslSearch, FirstPositionOrMinusOne) {
  EXPECT_EQ(callIL("SEARCH", 20, {10, 20, 30, 20}), nd::Value(1));
  EXPECT_EQ(callIL("SEARCH", 99, {10, 20, 30}), nd::Value(-1));
  EXPECT_EQ(callIL("SEARCH", 0, {}), nd::Value(-1));
}

// ---------------------------------------------------- [int] -> [int] ------

TEST(DslReverse, ReversesAndHandlesEmpty) {
  EXPECT_EQ(callL("REVERSE", {1, 2, 3}), nd::Value(List{3, 2, 1}));
  EXPECT_EQ(callL("REVERSE", {}), nd::Value(List{}));
}

TEST(DslSort, AscendingStableForDuplicates) {
  EXPECT_EQ(callL("SORT", {3, 1, 2, 1}), nd::Value(List{1, 1, 2, 3}));
  EXPECT_EQ(callL("SORT", {}), nd::Value(List{}));
}

TEST(DslMap, ArithmeticLambdas) {
  const List xs = {-4, -1, 0, 3};
  EXPECT_EQ(callL("MAP(+1)", xs), nd::Value(List{-3, 0, 1, 4}));
  EXPECT_EQ(callL("MAP(-1)", xs), nd::Value(List{-5, -2, -1, 2}));
  EXPECT_EQ(callL("MAP(*2)", xs), nd::Value(List{-8, -2, 0, 6}));
  EXPECT_EQ(callL("MAP(*3)", xs), nd::Value(List{-12, -3, 0, 9}));
  EXPECT_EQ(callL("MAP(*4)", xs), nd::Value(List{-16, -4, 0, 12}));
  EXPECT_EQ(callL("MAP(*(-1))", xs), nd::Value(List{4, 1, 0, -3}));
  EXPECT_EQ(callL("MAP(^2)", xs), nd::Value(List{16, 1, 0, 9}));
}

TEST(DslMap, IntegerDivisionTruncatesTowardZero) {
  EXPECT_EQ(callL("MAP(/2)", {-3, 3, 5}), nd::Value(List{-1, 1, 2}));
  EXPECT_EQ(callL("MAP(/3)", {-7, 7}), nd::Value(List{-2, 2}));
  EXPECT_EQ(callL("MAP(/4)", {-9, 9}), nd::Value(List{-2, 2}));
}

TEST(DslMap, SquareSaturates) {
  EXPECT_EQ(callL("MAP(^2)", {kMax}), nd::Value(List{kMax}));
  EXPECT_EQ(callL("MAP(*2)", {kMax}), nd::Value(List{kMax}));
  EXPECT_EQ(callL("MAP(*2)", {kMin}), nd::Value(List{kMin}));
}

TEST(DslMap, EmptyListsPassThrough) {
  for (const char* f : {"MAP(+1)", "MAP(/2)", "MAP(^2)", "MAP(*(-1))"}) {
    EXPECT_EQ(callL(f, {}), nd::Value(List{})) << f;
  }
}

TEST(DslFilter, AllFourPredicates) {
  const List xs = {-2, -1, 0, 1, 2, 3};
  EXPECT_EQ(callL("FILTER(>0)", xs), nd::Value(List{1, 2, 3}));
  EXPECT_EQ(callL("FILTER(<0)", xs), nd::Value(List{-2, -1}));
  EXPECT_EQ(callL("FILTER(odd)", xs), nd::Value(List{-1, 1, 3}));
  EXPECT_EQ(callL("FILTER(even)", xs), nd::Value(List{-2, 0, 2}));
}

TEST(DslFilter, PreservesOrderOfSurvivors) {
  EXPECT_EQ(callL("FILTER(>0)", {3, -5, 1, -2, 2}), nd::Value(List{3, 1, 2}));
}

TEST(DslScanl1, PaperExampleSemantics) {
  // O_0 = I_0; O_n = lambda(I_n, O_{n-1}).
  EXPECT_EQ(callL("SCANL1(+)", {1, 2, 3, 4}), nd::Value(List{1, 3, 6, 10}));
  // SCANL1(-): O_1 = I_1 - O_0 = 2-1 = 1; O_2 = 3-1 = 2.
  EXPECT_EQ(callL("SCANL1(-)", {1, 2, 3}), nd::Value(List{1, 1, 2}));
  EXPECT_EQ(callL("SCANL1(*)", {2, 3, 4}), nd::Value(List{2, 6, 24}));
  EXPECT_EQ(callL("SCANL1(min)", {3, 1, 2, 0}), nd::Value(List{3, 1, 1, 0}));
  EXPECT_EQ(callL("SCANL1(max)", {1, 3, 2, 5}), nd::Value(List{1, 3, 3, 5}));
}

TEST(DslScanl1, SingletonAndEmpty) {
  EXPECT_EQ(callL("SCANL1(+)", {7}), nd::Value(List{7}));
  EXPECT_EQ(callL("SCANL1(*)", {}), nd::Value(List{}));
}

TEST(DslScanl1, ProductSaturates) {
  EXPECT_EQ(callL("SCANL1(*)", {kMax, kMax, kMax}),
            nd::Value(List{kMax, kMax, kMax}));
}

// ------------------------------------------------ int,[int] -> [int] ------

TEST(DslTake, ClampsCount) {
  EXPECT_EQ(callIL("TAKE", 2, {1, 2, 3}), nd::Value(List{1, 2}));
  EXPECT_EQ(callIL("TAKE", 5, {1, 2, 3}), nd::Value(List{1, 2, 3}));
  EXPECT_EQ(callIL("TAKE", 0, {1, 2, 3}), nd::Value(List{}));
  EXPECT_EQ(callIL("TAKE", -2, {1, 2, 3}), nd::Value(List{}));
}

TEST(DslDrop, ClampsCount) {
  EXPECT_EQ(callIL("DROP", 2, {1, 2, 3}), nd::Value(List{3}));
  EXPECT_EQ(callIL("DROP", 0, {1, 2, 3}), nd::Value(List{1, 2, 3}));
  EXPECT_EQ(callIL("DROP", 5, {1, 2, 3}), nd::Value(List{}));
  EXPECT_EQ(callIL("DROP", -1, {1, 2, 3}), nd::Value(List{1, 2, 3}));
}

TEST(DslDelete, RemovesAllOccurrences) {
  EXPECT_EQ(callIL("DELETE", 2, {2, 1, 2, 3, 2}), nd::Value(List{1, 3}));
  EXPECT_EQ(callIL("DELETE", 9, {1, 2}), nd::Value(List{1, 2}));
  EXPECT_EQ(callIL("DELETE", 0, {}), nd::Value(List{}));
}

TEST(DslInsert, AppendsToEnd) {
  EXPECT_EQ(callIL("INSERT", 9, {1, 2}), nd::Value(List{1, 2, 9}));
  EXPECT_EQ(callIL("INSERT", -1, {}), nd::Value(List{-1}));
}

// ---------------------------------------------- [int],[int] -> [int] ------

TEST(DslZipWith, TruncatesToShorterList) {
  EXPECT_EQ(callLL("ZIPWITH(+)", {1, 2, 3}, {10, 20}),
            nd::Value(List{11, 22}));
  EXPECT_EQ(callLL("ZIPWITH(+)", {}, {1, 2}), nd::Value(List{}));
}

TEST(DslZipWith, AllFiveLambdas) {
  const List a = {4, 1, 6};
  const List b = {2, 5, 6};
  EXPECT_EQ(callLL("ZIPWITH(+)", a, b), nd::Value(List{6, 6, 12}));
  EXPECT_EQ(callLL("ZIPWITH(-)", a, b), nd::Value(List{2, -4, 0}));
  EXPECT_EQ(callLL("ZIPWITH(*)", a, b), nd::Value(List{8, 5, 36}));
  EXPECT_EQ(callLL("ZIPWITH(min)", a, b), nd::Value(List{2, 1, 6}));
  EXPECT_EQ(callLL("ZIPWITH(max)", a, b), nd::Value(List{4, 5, 6}));
}

TEST(DslZipWith, ProductSaturates) {
  EXPECT_EQ(callLL("ZIPWITH(*)", {kMax}, {2}), nd::Value(List{kMax}));
  EXPECT_EQ(callLL("ZIPWITH(*)", {kMin}, {2}), nd::Value(List{kMin}));
}

// ------------------------------------------------- totality sweep ---------

class AllFunctionsTotal : public ::testing::TestWithParam<int> {};

TEST_P(AllFunctionsTotal, NeverThrowsOnEdgeInputs) {
  const auto id = static_cast<nd::FuncId>(GetParam());
  const auto& info = nd::functionInfo(id);
  const std::vector<List> lists = {
      {}, {0}, {kMax, kMin}, {-1, -2, -3}, {5, 5, 5, 5, 5, 5, 5, 5}};
  const std::vector<std::int32_t> ints = {0, -1, 1, kMax, kMin};

  auto check = [&](const std::vector<nd::Value>& args) {
    const nd::Value out =
        nd::applyFunction(id, std::span<const nd::Value>(args));
    EXPECT_EQ(out.type(), info.returnType);
  };

  if (info.arity == 1) {
    for (const auto& l : lists) check({nd::Value(l)});
  } else if (info.argTypes[0] == nd::Type::Int) {
    for (const auto& n : ints)
      for (const auto& l : lists) check({nd::Value(n), nd::Value(l)});
  } else {
    for (const auto& a : lists)
      for (const auto& b : lists) check({nd::Value(a), nd::Value(b)});
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AllFunctionsTotal,
                         ::testing::Range(0, int(nd::kNumFunctions)),
                         [](const auto& info) {
                           return std::string(
                                      nd::functionInfo(
                                          static_cast<nd::FuncId>(info.param))
                                          .name)
                                      .substr(0, 3) +
                                  std::to_string(info.param);
                         });
