// End-to-end synthesizer tests with oracle and hand-crafted fitness
// functions: solution correctness, budget accounting, NS integration, and
// configuration validation.
#include <gtest/gtest.h>

#include "core/synthesizer.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

nc::SynthesizerConfig smallConfig() {
  nc::SynthesizerConfig cfg;
  cfg.ga.populationSize = 40;
  cfg.ga.eliteCount = 4;
  cfg.maxGenerations = 2000;
  cfg.nsTopN = 3;
  cfg.nsWindow = 6;
  return cfg;
}

nd::Generator::TestCase makeCase(std::size_t length, std::uint64_t seed,
                                 bool singleton = false) {
  Rng rng(seed);
  const nd::Generator gen;
  auto tc = gen.randomTestCase(length, 5, singleton, rng);
  EXPECT_TRUE(tc.has_value());
  return *tc;
}

}  // namespace

TEST(Synthesizer, OracleCfSolvesShortPrograms) {
  int solved = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto tc = makeCase(3, seed);
    nc::Synthesizer syn(smallConfig(),
                        std::make_shared<nf::OracleCF>(tc.program));
    Rng rng(seed * 10);
    const auto result = syn.synthesize(tc.spec, 3, 50000, rng);
    if (result.found) {
      ++solved;
      EXPECT_TRUE(nd::satisfiesSpec(result.solution, tc.spec));
      EXPECT_LE(result.candidatesSearched, 50000u);
      EXPECT_GT(result.candidatesSearched, 0u);
    }
  }
  EXPECT_GE(solved, 4);  // oracle fitness should nearly always succeed
}

TEST(Synthesizer, OracleLcsSolvesLength4) {
  const auto tc = makeCase(4, 21);
  nc::Synthesizer syn(smallConfig(),
                      std::make_shared<nf::OracleLCS>(tc.program));
  Rng rng(22);
  const auto result = syn.synthesize(tc.spec, 4, 80000, rng);
  EXPECT_TRUE(result.found);
  if (result.found) {
    EXPECT_TRUE(nd::satisfiesSpec(result.solution, tc.spec));
  }
}

TEST(Synthesizer, RespectsBudgetWhenUnsatisfiable) {
  // Spec no length-2 program can satisfy (output longer than any transform
  // of the input can produce while also being arbitrary).
  nd::Spec spec;
  spec.examples.push_back(
      {{nd::Value(std::vector<std::int32_t>{1, 2})},
       nd::Value(std::vector<std::int32_t>{7, -3, 12, 9, 0, 5, 5, 1})});
  nc::Synthesizer syn(smallConfig(),
                      std::make_shared<nf::EditDistanceFitness>());
  Rng rng(33);
  const auto result = syn.synthesize(spec, 2, 500, rng);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.candidatesSearched, 500u);
  EXPECT_GT(result.generations, 0u);
}

TEST(Synthesizer, CandidatesSearchedNeverExceedsBudget) {
  for (std::uint64_t seed : {41, 42, 43}) {
    const auto tc = makeCase(4, seed);
    nc::Synthesizer syn(smallConfig(),
                        std::make_shared<nf::OracleCF>(tc.program));
    Rng rng(seed);
    const auto result = syn.synthesize(tc.spec, 4, 2000, rng);
    EXPECT_LE(result.candidatesSearched, 2000u);
  }
}

TEST(Synthesizer, DuplicateGenesAreNotRecharged) {
  // With a tiny population and many generations the number of *distinct*
  // genes is far below generations * population; the budget must reflect
  // distinct candidates only.
  const auto tc = makeCase(3, 55);
  auto cfg = smallConfig();
  cfg.ga.populationSize = 10;
  cfg.ga.eliteCount = 2;
  cfg.maxGenerations = 50;
  cfg.useNeighborhoodSearch = false;
  nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>());
  Rng rng(56);
  const auto result = syn.synthesize(tc.spec, 3, 1000000, rng);
  if (!result.found) {
    EXPECT_LT(result.candidatesSearched,
              50u * 10u);  // strictly fewer than gross evaluations
  }
}

TEST(Synthesizer, NsBfsFindsSaturatedSolutions) {
  // Force a fitness function that cannot distinguish genes (constant): the
  // GA saturates immediately and only NS can find the target, planted one
  // substitution from a population seed. We emulate by running with a
  // constant fitness and checking NS is invoked.
  class ConstantFitness final : public nf::FitnessFunction {
   public:
    double score(const nd::Program&, const nf::EvalContext&) override {
      return 1.0;
    }
    double maxScore(std::size_t) const override { return 1.0; }
    std::string name() const override { return "Const"; }
  };
  const auto tc = makeCase(3, 66);
  auto cfg = smallConfig();
  cfg.nsWindow = 2;
  cfg.maxGenerations = 60;
  nc::Synthesizer syn(cfg, std::make_shared<ConstantFitness>());
  Rng rng(67);
  const auto result = syn.synthesize(tc.spec, 3, 200000, rng);
  // With a constant fitness the window saturates quickly; NS must have run.
  EXPECT_GT(result.nsInvocations + (result.found ? 1u : 0u), 0u);
}

TEST(Synthesizer, DisabledNsNeverInvokesIt) {
  const auto tc = makeCase(3, 77);
  auto cfg = smallConfig();
  cfg.useNeighborhoodSearch = false;
  cfg.maxGenerations = 30;
  nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>());
  Rng rng(78);
  const auto result = syn.synthesize(tc.spec, 3, 5000, rng);
  EXPECT_EQ(result.nsInvocations, 0u);
}

TEST(Synthesizer, FpMutationWithoutProviderThrows) {
  auto cfg = smallConfig();
  cfg.fpGuidedMutation = true;
  EXPECT_THROW(
      nc::Synthesizer(cfg, std::make_shared<nf::EditDistanceFitness>()),
      std::invalid_argument);
}

TEST(Synthesizer, NullFitnessThrows) {
  EXPECT_THROW(nc::Synthesizer(smallConfig(), nullptr),
               std::invalid_argument);
}

TEST(Synthesizer, ResultTracksGenerationsAndTime) {
  const auto tc = makeCase(3, 88);
  nc::Synthesizer syn(smallConfig(),
                      std::make_shared<nf::OracleCF>(tc.program));
  Rng rng(89);
  const auto result = syn.synthesize(tc.spec, 3, 30000, rng);
  EXPECT_GE(result.seconds, 0.0);
  if (result.found) {
    EXPECT_GE(result.bestFitness, 0.0);
  }
}

TEST(Synthesizer, SingletonTargetsSolvableWithOracle) {
  const auto tc = makeCase(3, 99, /*singleton=*/true);
  nc::Synthesizer syn(smallConfig(),
                      std::make_shared<nf::OracleCF>(tc.program));
  Rng rng(100);
  const auto result = syn.synthesize(tc.spec, 3, 80000, rng);
  if (result.found) {
    EXPECT_TRUE(nd::satisfiesSpec(result.solution, tc.spec));
    EXPECT_EQ(result.solution.outputType(), nd::Type::Int);
  }
}

TEST(Synthesizer, DfsNsVariantRuns) {
  const auto tc = makeCase(3, 111);
  auto cfg = smallConfig();
  cfg.nsKind = nc::NsKind::DFS;
  cfg.nsWindow = 3;
  cfg.maxGenerations = 100;
  nc::Synthesizer syn(cfg, std::make_shared<nf::OracleCF>(tc.program));
  Rng rng(112);
  const auto result = syn.synthesize(tc.spec, 3, 60000, rng);
  EXPECT_TRUE(result.found || result.candidatesSearched > 0);
}
