// Tests for program-closeness metrics (CF / LCS / substring), edit-distance
// fitness, token encoding, and the balanced training-candidate construction.
#include <gtest/gtest.h>

#include "dsl/generator.hpp"
#include "fitness/dataset.hpp"
#include "fitness/edit.hpp"
#include "fitness/encoding.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

nd::Program prog(const std::string& text) {
  auto p = nd::Program::fromString(text);
  EXPECT_TRUE(p.has_value()) << text;
  return *p;
}

}  // namespace

// ------------------------------------------------------------ CF ----------

TEST(CommonFunctions, PaperWorkedExample) {
  // P_t = FILTER(>0) MAP(*2) SORT REVERSE; P_r = FILTER(>0) MAP(*2) REVERSE
  // DROP. The paper reports f_CF = 3.
  const auto pt = prog("FILTER(>0) | MAP(*2) | SORT | REVERSE");
  const auto pr = prog("FILTER(>0) | MAP(*2) | REVERSE | DROP");
  EXPECT_EQ(nf::commonFunctions(pt, pr), 3u);
}

TEST(CommonFunctions, MultisetSemantics) {
  // Duplicates intersect by minimum count.
  const auto a = prog("SORT | SORT | REVERSE");
  const auto b = prog("SORT | REVERSE | REVERSE");
  EXPECT_EQ(nf::commonFunctions(a, b), 2u);  // one SORT + one REVERSE
}

TEST(CommonFunctions, DisjointAndIdentical) {
  const auto a = prog("SORT | REVERSE");
  const auto b = prog("HEAD | TAKE");
  EXPECT_EQ(nf::commonFunctions(a, b), 0u);
  EXPECT_EQ(nf::commonFunctions(a, a), 2u);
}

TEST(CommonFunctions, EmptyPrograms) {
  EXPECT_EQ(nf::commonFunctions(nd::Program{}, prog("SORT")), 0u);
  EXPECT_EQ(nf::commonFunctions(nd::Program{}, nd::Program{}), 0u);
}

// ------------------------------------------------------------ LCS ---------

TEST(Lcs, StandardSubsequence) {
  const auto pt = prog("FILTER(>0) | MAP(*2) | SORT | REVERSE");
  const auto pr = prog("FILTER(>0) | MAP(*2) | REVERSE | DROP");
  // Standard LCS is FILTER, MAP, REVERSE = 3. (The paper's prose says 2,
  // which matches the longest common *substring*; see EXPERIMENTS.md.)
  EXPECT_EQ(nf::longestCommonSubsequence(pt, pr), 3u);
  EXPECT_EQ(nf::longestCommonSubstring(pt, pr), 2u);
}

TEST(Lcs, OrderMatters) {
  const auto a = prog("SORT | REVERSE | HEAD");
  const auto b = prog("HEAD | REVERSE | SORT");
  EXPECT_EQ(nf::longestCommonSubsequence(a, b), 1u);
  EXPECT_EQ(nf::commonFunctions(a, b), 3u);
}

TEST(Lcs, EmptyAndIdentical) {
  const auto a = prog("SORT | REVERSE | HEAD");
  EXPECT_EQ(nf::longestCommonSubsequence(a, nd::Program{}), 0u);
  EXPECT_EQ(nf::longestCommonSubsequence(a, a), 3u);
  EXPECT_EQ(nf::longestCommonSubstring(a, a), 3u);
}

class MetricProperties : public ::testing::TestWithParam<int> {};

TEST_P(MetricProperties, BoundsSymmetryAndDominance) {
  Rng rng(500 + GetParam());
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  for (int iter = 0; iter < 40; ++iter) {
    const auto a = gen.randomProgram(1 + rng.uniform(8), sig, rng);
    const auto b = gen.randomProgram(1 + rng.uniform(8), sig, rng);
    ASSERT_TRUE(a && b);
    const auto cf = nf::commonFunctions(*a, *b);
    const auto lcs = nf::longestCommonSubsequence(*a, *b);
    const auto sub = nf::longestCommonSubstring(*a, *b);
    // Symmetry.
    EXPECT_EQ(cf, nf::commonFunctions(*b, *a));
    EXPECT_EQ(lcs, nf::longestCommonSubsequence(*b, *a));
    // Bounds: substring <= subsequence <= CF <= min length.
    EXPECT_LE(sub, lcs);
    EXPECT_LE(lcs, cf);
    EXPECT_LE(cf, std::min(a->length(), b->length()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricProperties, ::testing::Range(0, 6));

// ----------------------------------------------------- oracle fitness -----

TEST(OracleFitness, ScoresAgainstTarget) {
  const auto target = prog("FILTER(>0) | MAP(*2) | SORT | REVERSE");
  nf::OracleCF cf(target);
  nf::OracleLCS lcs(target);
  nd::Spec spec;  // oracle ignores the spec
  std::vector<nd::ExecResult> runs;
  const nf::EvalContext ctx{spec, runs};
  const auto gene = prog("FILTER(>0) | MAP(*2) | REVERSE | DROP");
  EXPECT_DOUBLE_EQ(cf.score(gene, ctx), 3.0);
  EXPECT_DOUBLE_EQ(lcs.score(gene, ctx), 3.0);
  EXPECT_DOUBLE_EQ(cf.score(target, ctx), 4.0);
  EXPECT_DOUBLE_EQ(cf.maxScore(4), 4.0);
  EXPECT_EQ(cf.name(), "Oracle_CF");
  EXPECT_EQ(lcs.name(), "Oracle_LCS");
}

// ------------------------------------------------------ edit distance -----

TEST(EditDistance, ListTokenLevenshtein) {
  using L = std::vector<std::int32_t>;
  EXPECT_EQ(nf::valueEditDistance(nd::Value(L{1, 2, 3}), nd::Value(L{1, 2, 3})),
            0u);
  EXPECT_EQ(nf::valueEditDistance(nd::Value(L{1, 2, 3}), nd::Value(L{1, 3})),
            1u);
  EXPECT_EQ(nf::valueEditDistance(nd::Value(L{}), nd::Value(L{1, 2})), 2u);
  EXPECT_EQ(nf::valueEditDistance(nd::Value(L{1, 2}), nd::Value(L{2, 1})), 2u);
}

TEST(EditDistance, IntVersusList) {
  using L = std::vector<std::int32_t>;
  EXPECT_EQ(nf::valueEditDistance(nd::Value(5), nd::Value(5)), 0u);
  EXPECT_EQ(nf::valueEditDistance(nd::Value(5), nd::Value(6)), 1u);
  EXPECT_EQ(nf::valueEditDistance(nd::Value(5), nd::Value(L{5, 6})), 1u);
}

TEST(EditFitness, PerfectOutputsScoreOne) {
  Rng rng(3);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  std::vector<nd::ExecResult> runs;
  for (const auto& ex : tc->spec.examples)
    runs.push_back(nd::run(tc->program, ex.inputs));
  nf::EditDistanceFitness fit;
  const nf::EvalContext ctx{tc->spec, runs};
  EXPECT_DOUBLE_EQ(fit.score(tc->program, ctx), 1.0);
}

TEST(EditFitness, FartherOutputsScoreLower) {
  // Spec expects [1,2,3]; candidate A outputs [1,2,3,4] (dist 1), candidate
  // B outputs [9,9,9,9,9] (dist 5). Build contexts by hand.
  using L = std::vector<std::int32_t>;
  nd::Spec spec;
  spec.examples.push_back({{nd::Value(L{1, 2, 3})}, nd::Value(L{1, 2, 3})});
  nf::EditDistanceFitness fit;
  std::vector<nd::ExecResult> runsA(1), runsB(1);
  runsA[0].trace.push_back(nd::Value(L{1, 2, 3, 4}));
  runsB[0].trace.push_back(nd::Value(L{9, 9, 9, 9, 9}));
  const double a = fit.score(nd::Program{}, {spec, runsA});
  const double b = fit.score(nd::Program{}, {spec, runsB});
  EXPECT_GT(a, b);
  EXPECT_DOUBLE_EQ(a, 0.5);
}

// ----------------------------------------------------------- encoder ------

TEST(TokenEncoder, IntAndListMarkers) {
  nf::TokenEncoder enc({.vmax = 8, .maxValueTokens = 4});
  EXPECT_EQ(enc.vocabSize(), 18u);
  const auto ints = enc.encodeValue(nd::Value(3));
  ASSERT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints[0], enc.intMarker());
  EXPECT_EQ(ints[1], enc.tokenOf(3));
  const auto lists =
      enc.encodeValue(nd::Value(std::vector<std::int32_t>{1, -2}));
  ASSERT_EQ(lists.size(), 3u);
  EXPECT_EQ(lists[0], enc.listMarker());
}

TEST(TokenEncoder, ClampsOutOfRangeValues) {
  nf::TokenEncoder enc({.vmax = 8, .maxValueTokens = 4});
  EXPECT_EQ(enc.tokenOf(1000), enc.tokenOf(7));    // clamps to vmax-1
  EXPECT_EQ(enc.tokenOf(-1000), enc.tokenOf(-8));  // clamps to -vmax
  EXPECT_LT(enc.tokenOf(1000), enc.vocabSize());
}

TEST(TokenEncoder, TruncatesLongLists) {
  nf::TokenEncoder enc({.vmax = 8, .maxValueTokens = 3});
  const auto toks = enc.encodeValue(
      nd::Value(std::vector<std::int32_t>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(toks.size(), 4u);  // marker + 3
}

TEST(TokenEncoder, EncodeInputsConcatenates) {
  nf::TokenEncoder enc({.vmax = 8, .maxValueTokens = 4});
  const auto toks = enc.encodeInputs(
      {nd::Value(std::vector<std::int32_t>{1, 2}), nd::Value(7)});
  EXPECT_EQ(toks.size(), 3u + 2u);
}

TEST(TokenEncoder, AllTokensBelowVocabSize) {
  nf::TokenEncoder enc({.vmax = 16, .maxValueTokens = 8});
  Rng rng(9);
  const nd::Generator gen;
  for (int i = 0; i < 50; ++i) {
    const auto v = gen.randomValue(nd::Type::List, rng);
    for (auto t : enc.encodeValue(v)) EXPECT_LT(t, enc.vocabSize());
  }
}

// ------------------------------------------------- balanced dataset -------

class BalancedCandidates : public ::testing::TestWithParam<int> {};

TEST_P(BalancedCandidates, ExactCfLabel) {
  const auto label = static_cast<std::size_t>(GetParam());
  Rng rng(700 + GetParam());
  const nf::DatasetBuilder builder;
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  for (int iter = 0; iter < 20; ++iter) {
    const auto target = gen.randomProgram(5, sig, rng);
    ASSERT_TRUE(target.has_value());
    const auto cand = builder.makeCandidateWithLabel(
        *target, label, nf::BalanceMetric::CF, rng);
    EXPECT_EQ(cand.length(), 5u);
    EXPECT_EQ(nf::commonFunctions(cand, *target), label);
  }
}

TEST_P(BalancedCandidates, ExactLcsLabel) {
  const auto label = static_cast<std::size_t>(GetParam());
  Rng rng(800 + GetParam());
  const nf::DatasetBuilder builder;
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  for (int iter = 0; iter < 20; ++iter) {
    const auto target = gen.randomProgram(5, sig, rng);
    ASSERT_TRUE(target.has_value());
    const auto cand = builder.makeCandidateWithLabel(
        *target, label, nf::BalanceMetric::LCS, rng);
    EXPECT_EQ(cand.length(), 5u);
    EXPECT_EQ(nf::longestCommonSubsequence(cand, *target), label);
  }
}

INSTANTIATE_TEST_SUITE_P(Labels, BalancedCandidates,
                         ::testing::Range(0, 6));  // labels 0..5

TEST(DatasetBuilder, BuildBalancesLabels) {
  Rng rng(11);
  const nf::DatasetBuilder builder(
      {.programLength = 4, .numExamples = 3, .generator = {}});
  const auto set = builder.build(20, nf::BalanceMetric::CF, rng);
  ASSERT_EQ(set.size(), 20u);
  std::vector<int> counts(5, 0);
  for (const auto& s : set) {
    ASSERT_LE(s.cf, 4u);
    ++counts[s.cf];
    // Structural invariants.
    EXPECT_EQ(s.traces.size(), s.spec.size());
    for (const auto& t : s.traces) EXPECT_EQ(t.size(), s.candidate.length());
    EXPECT_EQ(s.funcPresence.size(), nd::kNumFunctions);
    EXPECT_EQ(s.cf, nf::commonFunctions(s.candidate, s.target));
    EXPECT_EQ(s.lcs, nf::longestCommonSubsequence(s.candidate, s.target));
  }
  // 20 samples over 5 labels -> exactly 4 each (labels cycle).
  for (int c : counts) EXPECT_EQ(c, 4);
}

TEST(DatasetBuilder, TracesMatchInterpreterOutput) {
  Rng rng(13);
  const nf::DatasetBuilder builder;
  const auto s = builder.makeSample(3, nf::BalanceMetric::CF, rng);
  ASSERT_TRUE(s.has_value());
  for (std::size_t i = 0; i < s->spec.size(); ++i) {
    const auto result = nd::run(s->candidate, s->spec.examples[i].inputs);
    EXPECT_EQ(result.trace, s->traces[i]);
  }
}

TEST(DatasetBuilder, LabelAboveLengthThrows) {
  Rng rng(17);
  const nf::DatasetBuilder builder;
  const nd::Generator gen;
  const auto target = gen.randomProgram(4, {nd::Type::List}, rng);
  ASSERT_TRUE(target.has_value());
  EXPECT_THROW(builder.makeCandidateWithLabel(*target, 5,
                                              nf::BalanceMetric::CF, rng),
               std::invalid_argument);
}
