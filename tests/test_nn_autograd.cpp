// Autograd correctness: finite-difference gradient checks for every op,
// graph traversal (diamond sharing, deep chains), and loss values.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.hpp"
#include "util/rng.hpp"

namespace nn = netsyn::nn;
using netsyn::util::Rng;

namespace {

nn::Matrix randomMatrix(std::size_t r, std::size_t c, Rng& rng,
                        float scale = 1.0f) {
  nn::Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i)
    m.at(i) = static_cast<float>(rng.uniformReal(-scale, scale));
  return m;
}

/// Checks analytic gradients of `lossOf(inputs)` against central finite
/// differences for every entry of every input.
void checkGradients(
    std::vector<nn::Matrix> inputs,
    const std::function<nn::Var(const std::vector<nn::Var>&)>& lossOf,
    float eps = 1e-3f, float tol = 2e-2f) {
  // Analytic gradients.
  std::vector<nn::Var> vars;
  for (const auto& m : inputs) vars.push_back(nn::parameter(m));
  nn::Var loss = lossOf(vars);
  nn::backward(loss);

  for (std::size_t v = 0; v < inputs.size(); ++v) {
    for (std::size_t i = 0; i < inputs[v].size(); ++i) {
      auto evalAt = [&](float delta) {
        std::vector<nn::Var> shifted;
        for (std::size_t w = 0; w < inputs.size(); ++w) {
          nn::Matrix m = inputs[w];
          if (w == v) m.at(i) += delta;
          shifted.push_back(nn::parameter(m));
        }
        return lossOf(shifted)->scalar();
      };
      const float numeric = (evalAt(eps) - evalAt(-eps)) / (2.0f * eps);
      const float analytic = vars[v]->grad().at(i);
      const float denom = std::max({1.0f, std::fabs(numeric),
                                    std::fabs(analytic)});
      EXPECT_NEAR(analytic / denom, numeric / denom, tol)
          << "input " << v << " entry " << i;
    }
  }
}

}  // namespace

TEST(Autograd, AddGradient) {
  Rng rng(1);
  checkGradients({randomMatrix(1, 4, rng), randomMatrix(1, 4, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::add(v[0], v[1]));
                 });
}

TEST(Autograd, SubGradient) {
  Rng rng(2);
  checkGradients({randomMatrix(1, 4, rng), randomMatrix(1, 4, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::sub(v[0], v[1]));
                 });
}

TEST(Autograd, MulElemGradient) {
  Rng rng(3);
  checkGradients({randomMatrix(1, 5, rng), randomMatrix(1, 5, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::mulElem(v[0], v[1]));
                 });
}

TEST(Autograd, ScaleGradient) {
  Rng rng(4);
  checkGradients({randomMatrix(2, 3, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::scale(v[0], -2.5f));
                 });
}

TEST(Autograd, MatmulGradient) {
  Rng rng(5);
  checkGradients({randomMatrix(2, 3, rng), randomMatrix(3, 4, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::matmul(v[0], v[1]));
                 });
}

TEST(Autograd, MatmulChainGradient) {
  Rng rng(6);
  checkGradients(
      {randomMatrix(1, 3, rng), randomMatrix(3, 3, rng),
       randomMatrix(3, 2, rng)},
      [](const std::vector<nn::Var>& v) {
        return nn::meanAll(nn::matmul(nn::matmul(v[0], v[1]), v[2]));
      });
}

TEST(Autograd, TanhGradient) {
  Rng rng(7);
  checkGradients({randomMatrix(1, 6, rng, 2.0f)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::tanhOp(v[0]));
                 });
}

TEST(Autograd, SigmoidGradient) {
  Rng rng(8);
  checkGradients({randomMatrix(1, 6, rng, 3.0f)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::sigmoidOp(v[0]));
                 });
}

TEST(Autograd, ReluGradient) {
  Rng rng(9);
  // Keep entries away from the kink at 0 for finite differences.
  nn::Matrix m = randomMatrix(1, 8, rng, 2.0f);
  for (std::size_t i = 0; i < m.size(); ++i)
    if (std::fabs(m.at(i)) < 0.05f) m.at(i) = 0.5f;
  checkGradients({m}, [](const std::vector<nn::Var>& v) {
    return nn::meanAll(nn::reluOp(v[0]));
  });
}

TEST(Autograd, ConcatColsGradient) {
  Rng rng(10);
  checkGradients({randomMatrix(1, 3, rng), randomMatrix(1, 4, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(
                       nn::mulElem(nn::concatCols(v[0], v[1]),
                                   nn::concatCols(v[0], v[1])));
                 });
}

TEST(Autograd, SliceColsGradient) {
  Rng rng(11);
  checkGradients({randomMatrix(1, 6, rng)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::meanAll(nn::mulElem(nn::sliceCols(v[0], 1, 3),
                                                  nn::sliceCols(v[0], 2, 3)));
                 });
}

TEST(Autograd, SelectRowGradient) {
  Rng rng(12);
  checkGradients({randomMatrix(4, 3, rng)},
                 [](const std::vector<nn::Var>& v) {
                   const auto r1 = nn::selectRow(v[0], 1);
                   const auto r3 = nn::selectRow(v[0], 3);
                   return nn::meanAll(nn::mulElem(r1, r3));
                 });
}

TEST(Autograd, SoftmaxCrossEntropyGradient) {
  Rng rng(13);
  checkGradients({randomMatrix(1, 5, rng, 2.0f)},
                 [](const std::vector<nn::Var>& v) {
                   return nn::softmaxCrossEntropy(v[0], 2);
                 });
}

TEST(Autograd, BceWithLogitsGradient) {
  Rng rng(14);
  nn::Matrix targets(1, 5);
  for (std::size_t i = 0; i < 5; ++i) targets.at(i) = (i % 2) ? 1.0f : 0.0f;
  checkGradients({randomMatrix(1, 5, rng, 2.0f)},
                 [targets](const std::vector<nn::Var>& v) {
                   return nn::bceWithLogits(v[0], targets);
                 });
}

TEST(Autograd, MseLossGradient) {
  Rng rng(15);
  nn::Matrix target(1, 3);
  target.at(0) = 1.0f;
  target.at(1) = -2.0f;
  target.at(2) = 0.5f;
  checkGradients({randomMatrix(1, 3, rng)},
                 [target](const std::vector<nn::Var>& v) {
                   return nn::mseLoss(v[0], target);
                 });
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // y = mean(x + x): dy/dx = 2/n through two paths sharing one node.
  nn::Matrix m(1, 4, 1.0f);
  auto x = nn::parameter(m);
  auto loss = nn::meanAll(nn::add(x, x));
  nn::backward(loss);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(x->grad().at(i), 2.0f / 4.0f, 1e-6f);
}

TEST(Autograd, SharedSubgraphVisitedOnce) {
  // If the shared node's backfn ran twice the gradient would be doubled.
  nn::Matrix m(1, 2, 2.0f);
  auto x = nn::parameter(m);
  auto t = nn::tanhOp(x);
  auto loss = nn::meanAll(nn::mulElem(t, t));
  nn::backward(loss);
  // d/dx mean(tanh(x)^2) = 2*tanh(x)*(1-tanh(x)^2)/n.
  const float th = std::tanh(2.0f);
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(x->grad().at(i), 2.0f * th * (1 - th * th) / 2.0f, 1e-5f);
}

TEST(Autograd, DeepChainDoesNotOverflowStack) {
  // 20k-node chain exercises the iterative topological sort.
  auto x = nn::parameter(nn::Matrix(1, 1, 0.01f));
  nn::Var y = x;
  for (int i = 0; i < 20000; ++i) y = nn::scale(y, 1.0f);
  nn::backward(nn::meanAll(y));
  EXPECT_NEAR(x->grad().at(0), 1.0f, 1e-4f);
}

TEST(Autograd, BackwardRequiresScalarRoot) {
  auto x = nn::parameter(nn::Matrix(1, 3, 1.0f));
  EXPECT_THROW(nn::backward(x), std::invalid_argument);
}

TEST(Autograd, ShapeMismatchesThrow) {
  auto a = nn::parameter(nn::Matrix(1, 3, 1.0f));
  auto b = nn::parameter(nn::Matrix(1, 4, 1.0f));
  EXPECT_THROW(nn::add(a, b), std::invalid_argument);
  EXPECT_THROW(nn::mulElem(a, b), std::invalid_argument);
  EXPECT_THROW(nn::matmul(a, b), std::invalid_argument);
  EXPECT_THROW(nn::sliceCols(a, 2, 5), std::invalid_argument);
  EXPECT_THROW(nn::selectRow(a, 1), std::invalid_argument);
  EXPECT_THROW(nn::softmaxCrossEntropy(a, 3), std::invalid_argument);
}

TEST(Autograd, SoftmaxCrossEntropyValue) {
  // Uniform logits over C classes -> loss = log(C).
  auto logits = nn::constant(nn::Matrix(1, 4, 0.0f));
  auto loss = nn::softmaxCrossEntropy(logits, 1);
  EXPECT_NEAR(loss->scalar(), std::log(4.0f), 1e-5f);
}

TEST(Autograd, BceWithLogitsValueAtZeroLogits) {
  nn::Matrix targets(1, 2);
  targets.at(0) = 0.0f;
  targets.at(1) = 1.0f;
  auto logits = nn::constant(nn::Matrix(1, 2, 0.0f));
  // sigmoid(0)=0.5 -> BCE = -log(0.5) for both entries.
  EXPECT_NEAR(nn::bceWithLogits(logits, targets)->scalar(), std::log(2.0f),
              1e-5f);
}

TEST(Autograd, BceWithLogitsStableForLargeLogits) {
  nn::Matrix targets(1, 2, 1.0f);
  nn::Matrix big(1, 2);
  big.at(0) = 80.0f;
  big.at(1) = -80.0f;
  auto loss = nn::bceWithLogits(nn::constant(big), targets);
  EXPECT_TRUE(std::isfinite(loss->scalar()));
  EXPECT_NEAR(loss->scalar(), 40.0f, 1.0f);  // (0 + 80)/2
}

TEST(Autograd, SoftmaxValueSumsToOne) {
  nn::Matrix logits(1, 5);
  for (std::size_t i = 0; i < 5; ++i) logits.at(i) = float(i) * 10.0f;
  const auto p = nn::softmaxValue(logits);
  float sum = 0;
  for (std::size_t i = 0; i < 5; ++i) sum += p.at(i);
  EXPECT_NEAR(sum, 1.0f, 1e-5f);
  EXPECT_GT(p.at(4), 0.99f);
}

TEST(ParamStore, ZeroGradAndNorms) {
  nn::ParamStore store;
  auto p = store.make(nn::Matrix(2, 2, 1.0f));
  p->grad().fill(3.0f);
  EXPECT_NEAR(store.gradNorm(), 6.0f, 1e-5f);  // sqrt(4*9)
  store.clipGradNorm(3.0f);
  EXPECT_NEAR(store.gradNorm(), 3.0f, 1e-4f);
  store.zeroGrad();
  EXPECT_NEAR(store.gradNorm(), 0.0f, 1e-6f);
  EXPECT_EQ(store.totalParameters(), 4u);
}
