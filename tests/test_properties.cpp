// Cross-module property tests: totality of the DSL under adversarial
// inputs, determinism of the synthesizer and generators under fixed seeds,
// invariants linking DCE / interpreter / metrics, and GA statistical
// behaviour.
#include <gtest/gtest.h>

#include "core/synthesizer.hpp"
#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "fitness/dataset.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

// ---------------------------------------------------------- totality ------

class DslTotality : public ::testing::TestWithParam<int> {};

TEST_P(DslTotality, ArbitraryProgramsNeverCrashOnArbitraryInputs) {
  Rng rng(9000 + GetParam());
  // Adversarial input menagerie: empty lists, extreme values, int-only,
  // no inputs at all, multiple inputs of each type.
  const std::vector<std::vector<nd::Value>> inputSets = {
      {},
      {nd::Value(0)},
      {nd::Value(std::vector<std::int32_t>{})},
      {nd::Value(std::vector<std::int32_t>{std::numeric_limits<std::int32_t>::max(),
                                           std::numeric_limits<std::int32_t>::min()})},
      {nd::Value(std::vector<std::int32_t>{1, 2, 3}), nd::Value(-7)},
      {nd::Value(5), nd::Value(std::vector<std::int32_t>{0, 0, 0})},
  };
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<nd::FuncId> fns;
    const auto len = 1 + rng.uniform(10);
    for (std::uint64_t i = 0; i < len; ++i)
      fns.push_back(static_cast<nd::FuncId>(rng.uniform(nd::kNumFunctions)));
    const nd::Program p(std::move(fns));
    for (const auto& inputs : inputSets) {
      const auto result = nd::run(p, inputs);
      EXPECT_EQ(result.trace.size(), p.length());
      // The output type always matches the final function's return type.
      EXPECT_EQ(result.output().type(),
                nd::functionInfo(p.at(p.length() - 1)).returnType);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DslTotality, ::testing::Range(0, 6));

TEST(DslTotality, TraceValuesStayWithinInt32) {
  // Saturation caps every intermediate: squaring the max must not wrap.
  const auto p = nd::Program::fromString("MAP(^2) | MAP(^2) | SCANL1(*)");
  ASSERT_TRUE(p.has_value());
  const auto result = nd::run(
      *p, {nd::Value(std::vector<std::int32_t>{46341, -46341, 100000})});
  for (const auto& v : result.trace) {
    for (auto x : v.asList()) {
      EXPECT_LE(x, std::numeric_limits<std::int32_t>::max());
      EXPECT_GE(x, std::numeric_limits<std::int32_t>::min());
    }
  }
}

// -------------------------------------------------------- determinism -----

TEST(Determinism, SynthesizerIsBitwiseRepeatable) {
  Rng wr(77);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, wr);
  ASSERT_TRUE(tc.has_value());
  nc::SynthesizerConfig cfg;
  cfg.ga.populationSize = 30;
  cfg.maxGenerations = 200;
  nc::Synthesizer syn(cfg, std::make_shared<nf::EditDistanceFitness>());
  Rng r1(123), r2(123);
  const auto a = syn.synthesize(tc->spec, 4, 3000, r1);
  const auto b = syn.synthesize(tc->spec, 4, 3000, r2);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.candidatesSearched, b.candidatesSearched);
  EXPECT_EQ(a.generations, b.generations);
  if (a.found) {
    EXPECT_EQ(a.solution, b.solution);
  }
}

TEST(Determinism, DatasetBuilderRepeatable) {
  nf::DatasetBuilder builder;
  Rng r1(5), r2(5);
  const auto a = builder.build(10, nf::BalanceMetric::LCS, r1);
  const auto b = builder.build(10, nf::BalanceMetric::LCS, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].candidate, b[i].candidate);
    EXPECT_EQ(a[i].cf, b[i].cf);
  }
}

// -------------------------------------------------- invariants ------------

class MetricInterplay : public ::testing::TestWithParam<int> {};

TEST_P(MetricInterplay, DceNeverIncreasesMetricsAgainstThirdPrograms) {
  // Removing dead statements can only remove functions, so CF/LCS against
  // any other program can only decrease or stay equal.
  Rng rng(4000 + GetParam());
  const nd::Generator gen;
  for (int iter = 0; iter < 30; ++iter) {
    const auto sig = gen.randomSignature(rng);
    std::vector<nd::FuncId> fns;
    const auto len = 2 + rng.uniform(7);
    for (std::uint64_t i = 0; i < len; ++i)
      fns.push_back(static_cast<nd::FuncId>(rng.uniform(nd::kNumFunctions)));
    const nd::Program p(std::move(fns));
    const auto cleaned = nd::eliminateDeadCode(p, sig);
    const auto other = gen.randomProgram(5, sig, rng);
    ASSERT_TRUE(other.has_value());
    EXPECT_LE(nf::commonFunctions(cleaned, *other),
              nf::commonFunctions(p, *other));
    EXPECT_LE(nf::longestCommonSubsequence(cleaned, *other),
              nf::longestCommonSubsequence(p, *other));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInterplay, ::testing::Range(0, 4));

TEST(Invariants, SatisfiedSpecImpliesZeroEditDistance) {
  Rng rng(88);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, rng);
  ASSERT_TRUE(tc.has_value());
  std::vector<nd::ExecResult> runs;
  for (const auto& ex : tc->spec.examples)
    runs.push_back(nd::run(tc->program, ex.inputs));
  nf::EditDistanceFitness fit;
  EXPECT_DOUBLE_EQ(fit.score(tc->program, {tc->spec, runs}), 1.0);
}

TEST(Invariants, EditDistanceIsAMetricOnValues) {
  Rng rng(99);
  const nd::Generator gen;
  std::vector<nd::Value> values;
  for (int i = 0; i < 8; ++i)
    values.push_back(gen.randomValue(
        rng.bernoulli(0.5) ? nd::Type::List : nd::Type::Int, rng));
  for (const auto& a : values) {
    EXPECT_EQ(nf::valueEditDistance(a, a), 0u);  // identity
    for (const auto& b : values) {
      EXPECT_EQ(nf::valueEditDistance(a, b), nf::valueEditDistance(b, a));
      for (const auto& c : values) {  // triangle inequality
        EXPECT_LE(nf::valueEditDistance(a, c),
                  nf::valueEditDistance(a, b) + nf::valueEditDistance(b, c));
      }
    }
  }
}

// -------------------------------------------------------- GA statistics ---

TEST(GaStatistics, EliteAlwaysSurvives) {
  Rng rng(111);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  nc::GaConfig cfg;
  cfg.populationSize = 20;
  cfg.eliteCount = 1;
  nc::Population pop;
  for (std::size_t i = 0; i < cfg.populationSize; ++i) {
    pop.push_back({*gen.randomProgram(4, sig, rng), 0.0});
  }
  pop[7].fitness = 100.0;  // the champion
  for (int round = 0; round < 10; ++round) {
    const auto next = nc::breed(pop, cfg, sig, gen, rng, nullptr);
    EXPECT_EQ(next.front(), pop[7].program);
  }
}

TEST(GaStatistics, MutationWeightsBiasOffspring) {
  Rng rng(222);
  const nd::Generator gen;
  const nd::InputSignature sig = {nd::Type::List};
  nc::GaConfig cfg;
  cfg.populationSize = 50;
  cfg.eliteCount = 0;
  cfg.crossoverRate = 0.0;   // mutation only
  cfg.mutationRate = 1.0;
  nc::Population pop;
  for (std::size_t i = 0; i < cfg.populationSize; ++i)
    pop.push_back({*gen.randomProgram(4, sig, rng), 1.0});

  nc::FunctionWeights weights(nd::kNumFunctions, 0.0);
  const auto sortId = *nd::functionByName("SORT");
  weights[sortId] = 1.0;  // every mutation that fires should insert SORT
  const auto next = nc::breed(pop, cfg, sig, gen, rng, &weights);
  std::size_t sortCount = 0, total = 0;
  for (const auto& child : next) {
    for (auto f : child.functions()) {
      sortCount += (f == sortId) ? 1 : 0;
      ++total;
    }
  }
  // Random length-4 programs contain SORT at rate ~1/41; with the spiked
  // map the offspring population must contain far more.
  EXPECT_GT(static_cast<double>(sortCount) / static_cast<double>(total),
            2.0 / 41.0);
}

TEST(GaStatistics, SynthesizerBudgetMonotoneInDifficulty) {
  // A target of length 2 should on average need (far) fewer candidates than
  // length 4 under the same oracle-driven search.
  double cands2 = 0, cands4 = 0;
  int n2 = 0, n4 = 0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng wr(seed);
    const nd::Generator gen;
    for (std::size_t len : {std::size_t{2}, std::size_t{4}}) {
      const auto tc = gen.randomTestCase(len, 5, false, wr);
      if (!tc) continue;
      nc::SynthesizerConfig cfg;
      cfg.ga.populationSize = 30;
      cfg.maxGenerations = 2000;
      nc::Synthesizer syn(cfg,
                          std::make_shared<nf::OracleCF>(tc->program));
      Rng rng(seed * 31);
      const auto r = syn.synthesize(tc->spec, len, 30000, rng);
      if (!r.found) continue;
      if (len == 2) {
        cands2 += double(r.candidatesSearched);
        ++n2;
      } else {
        cands4 += double(r.candidatesSearched);
        ++n4;
      }
    }
  }
  ASSERT_GT(n2, 0);
  ASSERT_GT(n4, 0);
  EXPECT_LT(cands2 / n2, cands4 / n4);
}
