// Chaos suite: with deterministic faults armed at every injection site —
// task starts and generation steps throwing, checkpoint writes failing,
// durable frames corrupted, dependencies stalling — every job must still
// complete through the watchdog's retries, and every result must be
// bit-identical to a fault-free run. Same for durability: a service torn
// down mid-run (or whose on-disk checkpoints were tampered with) must
// recover its job table on restart and finish with the same winners.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/checkpoint.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"

namespace nc = netsyn::core;
namespace nh = netsyn::harness;
namespace ns = netsyn::service;
namespace nu = netsyn::util;

namespace {

nh::ExperimentConfig tinyConfig(std::uint64_t seed = 7,
                                std::size_t budget = 600) {
  auto cfg = nh::ExperimentConfig::forScale("ci");
  cfg.programLengths = {3};
  cfg.programsPerLength = 2;
  cfg.examplesPerProgram = 3;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = budget;
  cfg.synthesizer.ga.populationSize = 16;
  cfg.synthesizer.ga.eliteCount = 2;
  cfg.synthesizer.maxGenerations = 150;
  cfg.seed = seed;
  return cfg;
}

/// Longer searches: enough generations that mid-run interruption (shutdown,
/// stall, kill) is the common case, while a full run still finishes in
/// test time.
nh::ExperimentConfig mediumConfig(std::uint64_t seed = 41) {
  auto cfg = tinyConfig(seed, 8000);
  cfg.programLengths = {4};
  cfg.synthesizer.maxGenerations = 2000;
  return cfg;
}

/// A job that effectively never finishes on its own (deadline tests).
nh::ExperimentConfig longConfig(std::uint64_t seed = 11) {
  auto cfg = tinyConfig(seed, 100000);
  cfg.programLengths = {5};
  cfg.synthesizer.maxGenerations = 100000;
  return cfg;
}

/// One-shot reference: the sequential runner over the same config.
nh::MethodReport oneShot(const nh::ExperimentConfig& cfg,
                         const std::string& method) {
  ns::ModelStore store;
  const auto m = ns::makeOneShotMethod(method, cfg, store);
  return nh::runMethod(*m, nh::makeFullWorkload(cfg), cfg, /*verbose=*/false);
}

void expectMatchesOneShot(const ns::JobStatus& job,
                          const nh::MethodReport& report) {
  ASSERT_EQ(job.state, ns::JobState::Done) << job.error;
  ASSERT_EQ(job.tasks.size(), job.tasksTotal);
  EXPECT_EQ(job.programs, report.programs.size());
  for (const ns::TaskRecord& t : job.tasks) {
    ASSERT_LT(t.program, report.programs.size());
    ASSERT_LT(t.run, report.programs[t.program].runs.size());
    const nh::RunRecord& r = report.programs[t.program].runs[t.run];
    EXPECT_EQ(t.found, r.found) << "p=" << t.program << " k=" << t.run;
    EXPECT_EQ(t.candidates, r.candidates)
        << "p=" << t.program << " k=" << t.run;
    EXPECT_EQ(t.generations, r.generations)
        << "p=" << t.program << " k=" << t.run;
  }
}

/// Disarms the registry on entry and exit so tests cannot leak faults into
/// each other, and owns a unique scratch state dir.
class ChaosEnv {
 public:
  explicit ChaosEnv(const std::string& tag) {
    nu::FaultRegistry::instance().disarmAll();
    dir_ = "chaos_state_" + tag + "_" +
           std::to_string(static_cast<unsigned>(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  ~ChaosEnv() {
    nu::FaultRegistry::instance().disarmAll();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  const std::string& stateDir() const { return dir_; }

 private:
  std::string dir_;
};

}  // namespace

// ------------------------------------------------- fault registry ---------

TEST(FaultRegistry, FiresDeterministicallyAtConfiguredHits) {
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  // Fire at hit 3, then every 2nd hit after, at most twice: hits 3 and 5.
  reg.armFromText("unit.site=throw@3/2x2");
  std::vector<int> fired;
  for (int hit = 1; hit <= 8; ++hit) {
    try {
      reg.onHit("unit.site");
    } catch (const nu::FaultInjected&) {
      fired.push_back(hit);
    }
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 5}));
  EXPECT_EQ(reg.stats("unit.site").hits, 8u);
  EXPECT_EQ(reg.stats("unit.site").fires, 2u);
  reg.disarmAll();
  EXPECT_FALSE(nu::FaultRegistry::armed());
}

TEST(FaultRegistry, ProbabilisticScheduleReplaysUnderTheSameSeed) {
  auto& reg = nu::FaultRegistry::instance();
  const auto schedule = [&](std::uint64_t seed) {
    reg.disarmAll();
    reg.setSeed(seed);
    reg.armFromText("unit.prob=throw@1/1x0~0.5");
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      bool fired = false;
      try {
        reg.onHit("unit.prob");
      } catch (const nu::FaultInjected&) {
        fired = true;
      }
      pattern.push_back(fired);
    }
    reg.disarmAll();
    return pattern;
  };
  const auto a = schedule(123);
  EXPECT_EQ(a, schedule(123));  // replayable: the whole chaos contract
  std::size_t fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);  // ~0.5 coin actually discriminates
}

TEST(FaultRegistry, DelayFaultSleeps) {
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  reg.armFromText("unit.delay=delay:60@1");
  const auto t0 = std::chrono::steady_clock::now();
  reg.onHit("unit.delay");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 50);
  reg.disarmAll();
}

TEST(FaultRegistry, MalformedSpecsAreLoud) {
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  EXPECT_THROW(reg.armFromText("nonsense"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=explode"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=delay"), std::invalid_argument);  // no ms
  EXPECT_THROW(reg.armFromText("a=throw@0"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw~2"), std::invalid_argument);
  reg.disarmAll();
}

TEST(FaultRegistry, NumericEdgeCasesInSpecsAreLoud) {
  auto& reg = nu::FaultRegistry::instance();
  reg.disarmAll();
  // "x-1" used to slip through std::stoull by wrapping to 2^64-1: a typo'd
  // count silently meant "fire forever". Signs, whitespace, and overflow
  // must all be rejected as whole items.
  EXPECT_THROW(reg.armFromText("a=throwx-1"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw@+1"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw@ 1"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw@99999999999999999999999"),
               std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=delay:99999999999999999999999"),
               std::invalid_argument);
  // NaN compares false to every bound, so it used to pass the probability
  // range check and poison the fire decision; infinities likewise.
  EXPECT_THROW(reg.armFromText("a=throw~nan"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw~inf"), std::invalid_argument);
  EXPECT_THROW(reg.armFromText("a=throw~1e999"), std::invalid_argument);
  EXPECT_FALSE(nu::FaultRegistry::armed()) << "a rejected clause was armed";
  // The boundary itself is legal: x0 means uncapped, ~1 always fires.
  EXPECT_NO_THROW(reg.armFromText("a=throw@1/1x0~1.0"));
  reg.disarmAll();
}

// ------------------------------------------------- watchdog retries -------

TEST(Chaos, ThrownTaskFaultsAreRetriedToBitIdenticalResults) {
  ChaosEnv env("throw");
  auto& reg = nu::FaultRegistry::instance();
  // The first two task starts die, and three mid-search generations die.
  // Every retry must land back on the exact trajectory.
  reg.armFromText(
      "service.task.start=throw@1/1x2;service.task.generation=throw@20/37x3");
  ns::SynthService svc(ns::ServiceConfig{.workers = 2,
                                         .maxTaskRetries = 10,
                                         .retryBackoffMs = 2.0,
                                         .checkpointEveryGenerations = 4});
  const std::uint64_t seeds[] = {7, 8};
  std::vector<std::uint64_t> ids;
  for (std::uint64_t s : seeds)
    ids.push_back(svc.submit(tinyConfig(s), "Edit"));
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const ns::JobStatus done = svc.wait(ids[i]);
    expectMatchesOneShot(done, oneShot(tinyConfig(seeds[i]), "Edit"));
  }
  EXPECT_GE(svc.stats().tasksRetried, 2u);  // the armed faults really hit
  EXPECT_GE(reg.totalFires(), 2u);
}

TEST(Chaos, StalledTaskIsAbandonedAndRetriedToBitIdenticalResults) {
  ChaosEnv env("stall");
  auto& reg = nu::FaultRegistry::instance();
  // One generation blocks for 1.2s; the watchdog's 0.2s stall budget aborts
  // it at the next boundary and the retry resumes from the last snapshot.
  reg.armFromText("service.task.generation=delay:1200@5x1");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1,
                                         .stallSeconds = 0.2,
                                         .maxTaskRetries = 5,
                                         .retryBackoffMs = 2.0,
                                         .checkpointEveryGenerations = 2});
  const auto cfg = tinyConfig(9);
  const ns::JobStatus done = svc.wait(svc.submit(cfg, "Edit"));
  expectMatchesOneShot(done, oneShot(cfg, "Edit"));
  EXPECT_GE(svc.stats().tasksAbandoned, 1u);
  EXPECT_GE(svc.stats().tasksRetried, 1u);
}

TEST(Chaos, ExhaustedRetriesFailTheJobWithStructuredReason) {
  ChaosEnv env("exhaust");
  auto& reg = nu::FaultRegistry::instance();
  reg.armFromText("service.task.start=throw@1/1x0");  // every start dies
  ns::SynthService svc(ns::ServiceConfig{.workers = 1,
                                         .maxTaskRetries = 2,
                                         .retryBackoffMs = 1.0});
  const ns::JobStatus failed = svc.wait(svc.submit(tinyConfig(7), "Edit"));
  EXPECT_EQ(failed.state, ns::JobState::Failed);
  EXPECT_EQ(failed.errorKind, "task");
  EXPECT_NE(failed.error.find("after 2 retries"), std::string::npos)
      << failed.error;
  EXPECT_GE(failed.retries, 2u);
  EXPECT_EQ(svc.stats().jobsFailed, 1u);

  // Graceful degradation: one poisoned job never takes the service down.
  reg.disarmAll();
  const auto cfg = tinyConfig(8);
  expectMatchesOneShot(svc.wait(svc.submit(cfg, "Edit")), oneShot(cfg, "Edit"));
}

TEST(Chaos, DeadlineFailsTheJobWithStructuredReason) {
  ChaosEnv env("deadline");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  ns::SubmitOptions opts;
  opts.deadlineSeconds = 0.15;
  const ns::SubmitResult res = svc.submit(longConfig(), "Edit", opts);
  EXPECT_FALSE(res.attached);
  const ns::JobStatus failed = svc.wait(res.id);
  EXPECT_EQ(failed.state, ns::JobState::Failed);
  EXPECT_EQ(failed.errorKind, "deadline");
  EXPECT_EQ(svc.stats().jobsDeadlineFailed, 1u);
}

// ------------------------------------------------- backpressure -----------

TEST(Chaos, OverloadedQueueRejectsThenRecovers) {
  ChaosEnv env("overload");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1, .maxQueuedTasks = 4});
  const std::uint64_t big = svc.submit(longConfig(), "Edit");  // 4 tasks
  const auto cfg = tinyConfig(5);
  EXPECT_THROW(svc.submit(cfg, "Edit"), ns::OverloadedError);
  EXPECT_EQ(svc.stats().submitsRejected, 1u);

  // Clear the load; the same submission must then be accepted and correct.
  EXPECT_TRUE(svc.cancel(big));
  svc.wait(big);
  for (int i = 0; i < 500 && svc.metrics().queueDepth > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(svc.metrics().queueDepth, 0u);
  expectMatchesOneShot(svc.wait(svc.submit(cfg, "Edit")), oneShot(cfg, "Edit"));
}

// ------------------------------------------------- attach ------------------

TEST(Chaos, AttachJoinsTheExistingJobByKey) {
  ChaosEnv env("attach");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1, .resultCache = false});
  const auto cfg = tinyConfig(19);
  ns::SubmitOptions attach;
  attach.attach = true;
  const ns::SubmitResult first = svc.submit(cfg, "Edit", attach);
  EXPECT_FALSE(first.attached);
  const ns::SubmitResult again = svc.submit(cfg, "Edit", attach);
  EXPECT_TRUE(again.attached);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(svc.stats().attachHits, 1u);
  EXPECT_EQ(svc.stats().jobsSubmitted, 1u);  // no duplicate run
  expectMatchesOneShot(svc.wait(again.id), oneShot(cfg, "Edit"));
}

// ------------------------------------------------- durable recovery -------

TEST(Chaos, RestartRecoversInterruptedJobsToBitIdenticalResults) {
  ChaosEnv env("recover");
  const auto cfg = mediumConfig(41);
  ns::ServiceConfig sc{.workers = 1,
                       .stateDir = env.stateDir(),
                       .checkpointEveryGenerations = 3};
  std::uint64_t firstId = 0;
  {
    ns::SynthService svc(sc);
    firstId = svc.submit(cfg, "Edit");
    // Give durability a chance to land some snapshots, then tear the
    // service down mid-run. shutdown() leaves no terminal marker, exactly
    // like a crash would.
    for (int i = 0; i < 2000; ++i) {
      const auto m = svc.metrics();
      if (m.stats.durableCheckpointsWritten >= 3 || m.jobsActive == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    svc.shutdown();
  }

  ns::SynthService svc2(sc);
  EXPECT_GE(svc2.stats().jobsRecovered, 1u);
  // Reattach by key (the id may differ in the new incarnation) and let the
  // recovered job finish: same winner as an undisturbed run.
  ns::SubmitOptions attach;
  attach.attach = true;
  const ns::SubmitResult res = svc2.submit(cfg, "Edit", attach);
  EXPECT_TRUE(res.attached);
  const ns::JobStatus done = svc2.wait(res.id);
  EXPECT_TRUE(done.recovered);
  expectMatchesOneShot(done, oneShot(cfg, "Edit"));
  (void)firstId;
}

TEST(Chaos, TamperedDurableCheckpointsAreRejectedAndRecomputed) {
  ChaosEnv env("tamper");
  const auto cfg = mediumConfig(43);
  ns::ServiceConfig sc{.workers = 1,
                       .stateDir = env.stateDir(),
                       .checkpointEveryGenerations = 3};
  {
    ns::SynthService svc(sc);
    svc.submit(cfg, "Edit");
    for (int i = 0; i < 2000; ++i) {
      const auto m = svc.metrics();
      if (m.stats.durableCheckpointsWritten >= 2 || m.jobsActive == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    svc.shutdown();
  }

  // Flip one byte in every snapshot on disk: the checksum layer must reject
  // them all and restart those tasks from their seeds instead.
  std::size_t tampered = 0;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(env.stateDir())) {
    if (entry.path().extension() != ".ckpt") continue;
    std::string bytes;
    std::string err;
    ASSERT_TRUE(ns::readFileBytes(entry.path().string(), bytes, err));
    ASSERT_FALSE(bytes.empty());
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    ASSERT_TRUE(ns::atomicWriteFile(entry.path().string(), bytes, err));
    ++tampered;
  }

  ns::SynthService svc2(sc);
  if (tampered > 0) {
    EXPECT_GE(svc2.stats().checkpointsRejected, tampered);
    EXPECT_EQ(svc2.stats().durableCheckpointsLoaded, 0u);
  }
  ns::SubmitOptions attach;
  attach.attach = true;
  const ns::SubmitResult res = svc2.submit(cfg, "Edit", attach);
  const ns::JobStatus done = svc2.wait(res.id);
  expectMatchesOneShot(done, oneShot(cfg, "Edit"));
}

TEST(Chaos, CompletedJobsRecoverAsTerminalHistoryAndReseedTheMemo) {
  ChaosEnv env("terminal");
  const auto cfg = tinyConfig(23);
  ns::ServiceConfig sc{.workers = 1,
                       .stateDir = env.stateDir(),
                       .checkpointEveryGenerations = 2};
  {
    ns::SynthService svc(sc);
    const ns::JobStatus done = svc.wait(svc.submit(cfg, "Edit"));
    ASSERT_EQ(done.state, ns::JobState::Done);
  }
  ns::SynthService svc2(sc);
  EXPECT_GE(svc2.stats().jobsRecovered, 1u);
  // The finished job is queryable history in the new incarnation...
  ns::SubmitOptions attach;
  attach.attach = true;
  const ns::SubmitResult res = svc2.submit(cfg, "Edit", attach);
  EXPECT_TRUE(res.attached);
  expectMatchesOneShot(svc2.wait(res.id), oneShot(cfg, "Edit"));
  // ...and it re-seeded the result memo: a plain resubmission is a hit.
  const ns::JobStatus warm = svc2.wait(svc2.submit(cfg, "Edit"));
  EXPECT_TRUE(warm.fromCache);
}

// ------------------------------------------------- everything at once -----

TEST(Chaos, EverySiteArmedPlusRestartStillBitIdentical) {
  ChaosEnv env("all");
  auto& reg = nu::FaultRegistry::instance();
  reg.setSeed(0xdeadbeef);
  // Every site at once: task starts and generations throw, durable writes
  // fail outright half the time, and written frames get a byte flipped a
  // third of the time (which recovery must then reject by checksum).
  reg.armFromText(
      "service.task.start=throw@2/5x3;"
      "service.task.generation=throw@30/61x4;"
      "checkpoint.write=throw@2/2x0~0.5;"
      "checkpoint.corrupt=corrupt@1/1x0~0.34");
  ns::ServiceConfig sc{.workers = 2,
                       .stateDir = env.stateDir(),
                       .maxTaskRetries = 12,
                       .retryBackoffMs = 2.0,
                       .checkpointEveryGenerations = 3};
  const std::uint64_t seeds[] = {41, 42};
  {
    ns::SynthService svc(sc);
    for (std::uint64_t s : seeds) svc.submit(mediumConfig(s), "Edit");
    for (int i = 0; i < 2000; ++i) {
      const auto m = svc.metrics();
      if (m.stats.durableCheckpointsWritten >= 2 || m.jobsActive == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    svc.shutdown();  // crash-equivalent for durable state
  }
  ns::SynthService svc2(sc);
  ns::SubmitOptions attach;
  attach.attach = true;
  for (std::uint64_t s : seeds) {
    const auto cfg = mediumConfig(s);
    const ns::SubmitResult res = svc2.submit(cfg, "Edit", attach);
    const ns::JobStatus done = svc2.wait(res.id);
    expectMatchesOneShot(done, oneShot(cfg, "Edit"));
  }
  EXPECT_GT(reg.totalFires(), 0u);
}

// ------------------------------------------------- protocol surface -------

TEST(ChaosProtocol, OverloadedSubmissionIsStructurallyRejected) {
  ChaosEnv env("proto-overload");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1, .maxQueuedTasks = 1});
  bool shutdownRequested = false;
  const std::string resp = ns::handleRequestLine(
      svc,
      "{\"op\": \"submit\", \"method\": \"Edit\", \"config\": " +
          tinyConfig(7).toJson() + "}",
      shutdownRequested);
  const nu::JsonValue v = nu::parseJson(resp);
  const nu::JsonValue* ok = v.find("ok");
  ASSERT_TRUE(ok != nullptr);
  EXPECT_FALSE(ok->boolean);
  std::string rejected;
  nu::readString(v, "rejected", rejected);
  EXPECT_EQ(rejected, "overloaded");

  // The daemon keeps serving: ping works, metrics reports the rejection.
  const std::string pong =
      ns::handleRequestLine(svc, "{\"op\": \"ping\"}", shutdownRequested);
  EXPECT_NE(pong.find("\"ok\": true"), std::string::npos);
  const std::string metrics =
      ns::handleRequestLine(svc, "{\"op\": \"metrics\"}", shutdownRequested);
  EXPECT_NE(metrics.find("\"submits_rejected\": 1"), std::string::npos);
  EXPECT_NE(metrics.find("\"queue_depth\": "), std::string::npos);
}

TEST(ChaosProtocol, RequestFaultBecomesAnErrorResponseNotADeadSession) {
  ChaosEnv env("proto-fault");
  auto& reg = nu::FaultRegistry::instance();
  reg.armFromText("protocol.request=throw@2x1");
  ns::SynthService svc(ns::ServiceConfig{.workers = 1});
  bool shutdownRequested = false;
  EXPECT_NE(ns::handleRequestLine(svc, "{\"op\": \"ping\"}", shutdownRequested)
                .find("\"ok\": true"),
            std::string::npos);
  const std::string faulted =
      ns::handleRequestLine(svc, "{\"op\": \"ping\"}", shutdownRequested);
  EXPECT_NE(faulted.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(faulted.find("protocol.request"), std::string::npos);
  EXPECT_NE(ns::handleRequestLine(svc, "{\"op\": \"ping\"}", shutdownRequested)
                .find("\"ok\": true"),
            std::string::npos);
}
