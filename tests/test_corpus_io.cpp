// Corpus serialization tests: lossless round trips, format validation, and
// the synthesizer's opt-in history recorder.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/synthesizer.hpp"
#include "fitness/corpus_io.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "util/rng.hpp"

namespace nc = netsyn::core;
namespace nd = netsyn::dsl;
namespace nf = netsyn::fitness;
using netsyn::util::Rng;

namespace {

std::string tmpPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::vector<nf::Sample> makeCorpus(std::size_t n, std::uint64_t seed) {
  nf::DatasetConfig dc;
  dc.programLength = 4;
  dc.numExamples = 3;
  nf::DatasetBuilder builder(dc);
  Rng rng(seed);
  return builder.build(n, nf::BalanceMetric::CF, rng);
}

}  // namespace

TEST(CorpusIo, RoundTripIsLossless) {
  const auto samples = makeCorpus(12, 1);
  const auto path = tmpPath("netsyn_corpus_rt.bin");
  nf::saveSamples(samples, path);
  const auto loaded = nf::loadSamples(path);
  ASSERT_EQ(loaded.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(loaded[i].target, samples[i].target);
    EXPECT_EQ(loaded[i].candidate, samples[i].candidate);
    EXPECT_EQ(loaded[i].cf, samples[i].cf);
    EXPECT_EQ(loaded[i].lcs, samples[i].lcs);
    EXPECT_EQ(loaded[i].funcPresence, samples[i].funcPresence);
    ASSERT_EQ(loaded[i].spec.size(), samples[i].spec.size());
    for (std::size_t j = 0; j < samples[i].spec.size(); ++j) {
      EXPECT_EQ(loaded[i].spec.examples[j].inputs,
                samples[i].spec.examples[j].inputs);
      EXPECT_EQ(loaded[i].spec.examples[j].output,
                samples[i].spec.examples[j].output);
    }
    EXPECT_EQ(loaded[i].traces, samples[i].traces);
  }
  std::remove(path.c_str());
}

TEST(CorpusIo, EmptyCorpusRoundTrips) {
  const auto path = tmpPath("netsyn_corpus_empty.bin");
  nf::saveSamples({}, path);
  EXPECT_TRUE(nf::loadSamples(path).empty());
  std::remove(path.c_str());
}

TEST(CorpusIo, MissingFileThrows) {
  EXPECT_THROW(nf::loadSamples("/nonexistent/corpus.bin"),
               std::runtime_error);
}

TEST(CorpusIo, BadMagicThrows) {
  const auto path = tmpPath("netsyn_corpus_bad.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "GARBAGEGARBAGE";
  }
  EXPECT_THROW(nf::loadSamples(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CorpusIo, TruncatedFileThrows) {
  const auto samples = makeCorpus(4, 2);
  const auto path = tmpPath("netsyn_corpus_trunc.bin");
  nf::saveSamples(samples, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_THROW(nf::loadSamples(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CorpusIo, LoadedCorpusTrainsIdentically) {
  // The loaded samples must be usable exactly like fresh ones (labels and
  // traces consistent with the programs).
  const auto samples = makeCorpus(6, 3);
  const auto path = tmpPath("netsyn_corpus_train.bin");
  nf::saveSamples(samples, path);
  const auto loaded = nf::loadSamples(path);
  for (const auto& s : loaded) {
    EXPECT_EQ(s.cf, nf::commonFunctions(s.candidate, s.target));
    EXPECT_EQ(s.lcs, nf::longestCommonSubsequence(s.candidate, s.target));
    for (std::size_t i = 0; i < s.spec.size(); ++i) {
      EXPECT_EQ(nd::run(s.candidate, s.spec.examples[i].inputs).trace,
                s.traces[i]);
    }
  }
  std::remove(path.c_str());
}

// ------------------------------------------------- history recorder -------

TEST(EvolutionHistory, RecordedOnlyWhenRequested) {
  Rng wr(5);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(3, 5, false, wr);
  ASSERT_TRUE(tc.has_value());

  nc::SynthesizerConfig off;
  off.ga.populationSize = 20;
  off.maxGenerations = 30;
  nc::Synthesizer synOff(off, std::make_shared<nf::EditDistanceFitness>());
  Rng r1(9);
  EXPECT_TRUE(synOff.synthesize(tc->spec, 3, 2000, r1).history.empty());

  nc::SynthesizerConfig on = off;
  on.recordHistory = true;
  nc::Synthesizer synOn(on, std::make_shared<nf::EditDistanceFitness>());
  Rng r2(9);
  const auto result = synOn.synthesize(tc->spec, 3, 2000, r2);
  if (result.generations > 0) {
    ASSERT_FALSE(result.history.empty());
    EXPECT_LE(result.history.size(), result.generations);
    for (const auto& gs : result.history) {
      EXPECT_GE(gs.bestFitness, gs.meanFitness - 1e-9);
      EXPECT_LE(gs.budgetUsed, 2000u);
    }
    // Budget consumption is monotone across generations.
    for (std::size_t i = 1; i < result.history.size(); ++i)
      EXPECT_GE(result.history[i].budgetUsed,
                result.history[i - 1].budgetUsed);
  }
}

TEST(EvolutionHistory, RecordingDoesNotChangeTheSearch) {
  Rng wr(6);
  const nd::Generator gen;
  const auto tc = gen.randomTestCase(4, 5, false, wr);
  ASSERT_TRUE(tc.has_value());
  nc::SynthesizerConfig base;
  base.ga.populationSize = 25;
  base.maxGenerations = 100;
  auto run = [&](bool record) {
    nc::SynthesizerConfig cfg = base;
    cfg.recordHistory = record;
    nc::Synthesizer syn(cfg, std::make_shared<nf::OracleCF>(tc->program));
    Rng rng(77);
    return syn.synthesize(tc->spec, 4, 5000, rng);
  };
  const auto a = run(false);
  const auto b = run(true);
  EXPECT_EQ(a.found, b.found);
  EXPECT_EQ(a.candidatesSearched, b.candidatesSearched);
  EXPECT_EQ(a.generations, b.generations);
}
