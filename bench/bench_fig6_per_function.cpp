// Reproduces Figure 6: synthesis percentage across the 41 DSL functions for
// the f_CF and f_FP variants — the mean synthesis rate of the test programs
// that contain each function, indexed by the paper's 1..41 numbering.
//
// Paper shape to verify: the singleton-producing functions (low paper
// numbers: ACCESS, COUNT*, HEAD, LAST, MIN, MAX, SEARCH, SUM) have the
// lowest synthesis percentages, and f_CF's per-function floor is higher
// than f_FP's (which drops to zero on several functions).
#include <array>

#include "bench_common.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  if (!args.has("programs-per-length")) config.programsPerLength = 16;
  if (!args.has("lengths")) config.programLengths = {5};
  if (!args.has("runs")) config.runsPerProgram = 1;
  bench::banner("Figure 6: synthesis percentage per DSL function", config);

  const auto models = harness::loadOrTrainAll(config);
  const auto workload =
      harness::makeWorkload(config, config.programLengths.front());

  struct PerFunction {
    double rateSum = 0;
    std::size_t programs = 0;
  };

  util::Table table({"#", "Function", "CF synth%", "FP synth%", "programs"});
  std::array<PerFunction, dsl::kNumFunctions> cfStats{}, fpStats{};
  for (const auto variant :
       {harness::NetSynVariant::CF, harness::NetSynVariant::FP}) {
    auto method = harness::makeNetSyn(config, models, variant);
    const auto report =
        harness::runMethod(*method, workload, config, /*verbose=*/false);
    auto& stats =
        variant == harness::NetSynVariant::CF ? cfStats : fpStats;
    for (const auto& p : report.programs) {
      // Attribute the program's rate to every distinct function it uses.
      std::array<bool, dsl::kNumFunctions> used{};
      for (dsl::FuncId f : p.target.functions()) used[f] = true;
      for (std::size_t f = 0; f < dsl::kNumFunctions; ++f) {
        if (!used[f]) continue;
        stats[f].rateSum += p.synthesisRate();
        ++stats[f].programs;
      }
    }
    std::fprintf(stderr, "[fig6] %s done\n", method->name().c_str());
  }

  // Order rows by the paper's function numbering.
  std::array<dsl::FuncId, dsl::kNumFunctions> byPaper{};
  for (std::size_t i = 0; i < dsl::kNumFunctions; ++i) {
    const auto& info = dsl::functionInfo(static_cast<dsl::FuncId>(i));
    byPaper[info.paperNumber - 1] = static_cast<dsl::FuncId>(i);
  }
  for (std::size_t n = 0; n < dsl::kNumFunctions; ++n) {
    const dsl::FuncId f = byPaper[n];
    const auto& info = dsl::functionInfo(f);
    const auto pct = [](const PerFunction& s) {
      return s.programs ? s.rateSum / double(s.programs) : 0.0;
    };
    table.newRow()
        .addInt(info.paperNumber)
        .add(info.name)
        .addPercent(pct(cfStats[f]), 0)
        .addPercent(pct(fpStats[f]), 0)
        .addInt(static_cast<long>(cfStats[f].programs));
  }
  bench::emit(table, args, "fig6_per_function.csv");
  return 0;
}
