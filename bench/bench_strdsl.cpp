// String-domain synthesis smoke: solve counts and throughput of the search
// engine on the str DSL, in the search modes that need no trained models
// (edit-distance fitness, which on char-code lists is classic string edit
// distance).
//
// Modes: the single-population NetSyn GA and the K=4 island ensemble, both
// over the same workload with the same per-run seeds — solve counts are
// deterministic and gated in CI via bench_gate against
// bench/baselines/BENCH_strdsl.json; wall-clock rates are info-only.
//
//   $ ./bench_strdsl [--programs=10] [--length=6] [--examples=4]
//                    [--budget=3000] [--seed=2021]
//                    [--json=BENCH_strdsl.json]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "dsl/domain.hpp"
#include "dsl/generator.hpp"
#include "fitness/edit.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto programs = static_cast<std::size_t>(args.getInt("programs", 10));
  const auto length = static_cast<std::size_t>(args.getInt("length", 6));
  const auto examples = static_cast<std::size_t>(args.getInt("examples", 4));
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 3000));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2021));
  if (programs == 0 || length == 0 || examples == 0 || budget == 0) {
    std::fprintf(stderr,
                 "--programs/--length/--examples/--budget must be > 0\n");
    return 1;
  }

  const dsl::Domain& domain = dsl::strDomain();
  util::Rng wlRng(seed);
  const dsl::Generator gen(domain);
  std::vector<dsl::Generator::TestCase> cases;
  for (std::size_t p = 0; p < programs; ++p) {
    auto tc = gen.randomTestCase(length, examples, p < programs / 2, wlRng);
    if (!tc) {
      std::fprintf(stderr, "could not generate test case %zu\n", p);
      return 1;
    }
    cases.push_back(std::move(*tc));
  }

  std::printf("=== bench_strdsl ===\n");
  std::printf("programs=%zu length=%zu examples=%zu budget=%zu\n", programs,
              length, examples, budget);
  std::printf("sample target: %s\n\n",
              cases.front().program.toString().c_str());

  struct Row {
    std::string mode;
    std::size_t solved = 0;
    double seconds = 0.0;
    std::size_t evals = 0;
  };
  std::vector<Row> rows;

  const auto makeFit = [&domain]() {
    return std::make_shared<fitness::EditDistanceFitness>(&domain);
  };
  const auto runMode = [&](const std::string& mode, std::size_t islands) {
    core::SynthesizerConfig sc;
    sc.ga.populationSize = 30;
    sc.ga.eliteCount = 3;
    sc.maxGenerations = 2000;
    sc.nsTopN = 3;
    sc.nsWindow = 6;
    sc.generator = domain.makeGeneratorConfig();
    if (islands > 1) {
      sc.strategy = core::SearchStrategy::Islands;
      sc.islands.count = islands;
      sc.islands.migrationInterval = 5;
      sc.islands.migrationSize = 2;
    }
    const core::Synthesizer syn(sc, makeFit(), nullptr, [&](std::size_t) {
      return core::IslandFitness{makeFit(), nullptr};
    });
    Row row;
    row.mode = mode;
    util::Timer timer;
    for (std::size_t p = 0; p < cases.size(); ++p) {
      util::Rng rng(seed ^ (p * 0x9e3779b97f4a7c15ULL) ^ 0x57d);
      const auto result = syn.synthesize(cases[p].spec, length, budget, rng);
      row.solved += result.found ? 1 : 0;
      row.evals += result.candidatesSearched;
    }
    row.seconds = timer.seconds();
    rows.push_back(row);
    std::printf("%-10s solved=%2zu/%zu  %7.3fs  %8.2f solved/sec  evals=%8zu\n",
                mode.c_str(), row.solved, cases.size(), row.seconds,
                row.seconds > 0
                    ? static_cast<double>(row.solved) / row.seconds
                    : 0.0,
                row.evals);
  };

  runMode("single", 1);
  runMode("islands4", 4);

  const std::string jsonPath = args.getString("json", "BENCH_strdsl.json");
  if (!jsonPath.empty()) {
    if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\": \"strdsl\", \"programs\": %zu, "
                   "\"length\": %zu, \"examples\": %zu, \"budget\": %zu, "
                   "\"modes\": [",
                   programs, length, examples, budget);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "%s{\"mode\": \"%s\", \"solved\": %zu, "
                     "\"seconds\": %.4f, \"solved_per_sec\": %.3f, "
                     "\"evals\": %zu}",
                     i ? ", " : "", r.mode.c_str(), r.solved, r.seconds,
                     r.seconds > 0
                         ? static_cast<double>(r.solved) / r.seconds
                         : 0.0,
                     r.evals);
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("\n[json written to %s]\n", jsonPath.c_str());
    }
  }
  return 0;
}
