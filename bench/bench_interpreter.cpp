// GA-style candidate-execution throughput: legacy interpreter vs the
// zero-allocation execution engine.
//
// Reproduces the synthesizer's execution hot loop: every generation a
// population is bred and every gene is executed on every spec example with
// its trace kept. The same populations are timed twice —
//
//   legacy: the seed interpreter (recompute the argument plan per call,
//           copy argument Values into a buffer per statement, allocate a
//           fresh Value per statement and a fresh trace per example),
//           reproduced verbatim from the PR 1 code in legacy_baseline.hpp;
//   engine: dsl::Executor with a cached ExecPlan per (program, signature),
//           pointer-passed arguments, and pooled trace storage refilled in
//           place (the path SpecEvaluator uses in production).
//
//   $ ./bench_interpreter [--population=100] [--examples=10] [--length=5]
//                         [--generations=20] [--seed=2021]
//                         [--json=BENCH_interpreter.json]
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "legacy_baseline.hpp"
#include "core/ga.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsyn;

namespace {

/// The seed interpreter, kept as the measurement baseline: plan recomputed
/// on every call, whole-Value argument copies, fresh trace allocation.
dsl::ExecResult legacyRun(const dsl::Program& program,
                          const std::vector<dsl::Value>& inputs) {
  const dsl::ArgPlan plan =
      dsl::computeArgPlan(program, dsl::signatureOf(inputs));
  dsl::ExecResult result;
  result.trace.reserve(program.length());
  std::array<dsl::Value, dsl::kMaxArity> argbuf;
  for (std::size_t k = 0; k < program.length(); ++k) {
    const dsl::StatementPlan& sp = plan[k];
    const dsl::FunctionInfo& info = dsl::functionInfo(program.at(k));
    for (std::size_t slot = 0; slot < sp.arity; ++slot) {
      const dsl::ArgSource& src = sp.args[slot];
      switch (src.kind) {
        case dsl::ArgSource::Kind::Statement:
          argbuf[slot] = result.trace[src.index];
          break;
        case dsl::ArgSource::Kind::Input:
          argbuf[slot] = inputs[src.index];
          break;
        case dsl::ArgSource::Kind::Default:
          argbuf[slot] = dsl::Value::defaultFor(info.argTypes[slot]);
          break;
      }
    }
    result.trace.push_back(netsyn::bench::legacy::applyFunction(
        program.at(k), std::span<const dsl::Value>(argbuf.data(), sp.arity)));
  }
  return result;
}

/// Folds a run into a checksum so the compiler cannot elide the work, and
/// so both paths can be asserted to agree.
std::uint64_t checksum(const dsl::ExecResult& r) {
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::int64_t v) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ULL;
  };
  for (const auto& v : r.trace) {
    if (v.isInt()) {
      mix(v.asInt());
    } else {
      mix(static_cast<std::int64_t>(v.asList().size()));
      for (std::int32_t x : v.asList()) mix(x);
    }
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto population =
      static_cast<std::size_t>(args.getInt("population", 100));
  const auto examples = static_cast<std::size_t>(args.getInt("examples", 10));
  const auto length = static_cast<std::size_t>(args.getInt("length", 5));
  const auto generations =
      static_cast<std::size_t>(args.getInt("generations", 20));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2021));
  if (population == 0 || generations == 0 || examples == 0) {
    std::fprintf(stderr,
                 "--population, --examples, --generations must be > 0\n");
    return 1;
  }

  const auto repeats = static_cast<std::size_t>(args.getInt("repeat", 3));

  util::Rng tcRng(seed);
  const dsl::Generator gen;
  const auto tc = gen.randomTestCase(length, examples, false, tcRng);
  if (!tc) {
    std::fprintf(stderr, "could not generate a test case\n");
    return 1;
  }
  const dsl::InputSignature sig = tc->spec.signature();

  std::printf("=== bench_interpreter ===\n");
  std::printf(
      "population=%zu examples=%zu length=%zu generations=%zu repeat=%zu\n\n",
      population, examples, length, generations, repeats);

  std::size_t planCompiles = 0;

  // One full GA-shaped pass: breed `generations` populations from the same
  // deterministic RNG stream (so every pass executes identical programs)
  // and time gene execution only. `engine` selects the measured path; the
  // checksum (computed outside the timed regions) pins both paths to the
  // same results and keeps the compiler honest.
  const auto runPass = [&](bool engine, std::uint64_t* sum) -> double {
    util::Rng rng(seed + 1);
    std::vector<dsl::Program> genes;
    genes.reserve(population);
    for (std::size_t i = 0; i < population; ++i)
      genes.push_back(*gen.randomProgram(length, sig, rng));

    dsl::Executor executor;
    // Pooled per-gene run storage, refilled in place every generation — the
    // evaluator's recycle() arena, inlined. The legacy pass uses the same
    // container but each result is a fresh allocation moved in, exactly as
    // the seed pipeline materialized a generation's runs.
    std::vector<std::vector<dsl::ExecResult>> results(
        population, std::vector<dsl::ExecResult>(examples));

    double seconds = 0.0;
    core::GaConfig gaConfig;
    gaConfig.populationSize = population;
    for (std::size_t g = 0; g < generations; ++g) {
      util::Timer timer;
      if (engine) {
        std::vector<const std::vector<dsl::Value>*> inputSets;
        inputSets.reserve(examples);
        for (const auto& ex : tc->spec.examples)
          inputSets.push_back(&ex.inputs);
        for (std::size_t b = 0; b < genes.size(); ++b) {
          // One cached-plan lookup per gene, then all examples statement-
          // major — exactly SpecEvaluator::evaluate's path.
          const dsl::ExecPlan& plan = executor.planFor(genes[b], sig);
          dsl::executePlanMulti(plan, inputSets.data(), examples,
                                results[b].data());
        }
      } else {
        for (std::size_t b = 0; b < genes.size(); ++b) {
          for (std::size_t j = 0; j < examples; ++j)
            results[b][j] = legacyRun(genes[b], tc->spec.examples[j].inputs);
        }
      }
      seconds += timer.seconds();
      for (const auto& perGene : results)
        for (const auto& r : perGene) *sum ^= checksum(r);

      // Evolve so later generations look like the GA's real workload:
      // shared ancestry, duplicate subsequences, recurring values.
      core::Population scored;
      for (std::size_t b = 0; b < genes.size(); ++b)
        scored.push_back(core::Individual{genes[b], 1.0 + rng.uniformReal()});
      genes = core::breed(scored, gaConfig, sig, gen, rng, nullptr);
    }
    if (engine) planCompiles = executor.planCompiles();
    return seconds;
  };

  const std::size_t executed = population * generations;
  double legacySeconds = 1e300;
  double engineSeconds = 1e300;
  std::uint64_t legacySum = 0;
  std::uint64_t engineSum = 0;
  // Best-of-N passes: robust against scheduler noise on shared hardware.
  for (std::size_t r = 0; r < repeats; ++r) {
    legacySum = 0;
    legacySeconds = std::min(legacySeconds, runPass(false, &legacySum));
    engineSum = 0;
    engineSeconds = std::min(engineSeconds, runPass(true, &engineSum));
  }

  if (legacySum != engineSum) {
    std::fprintf(stderr, "FATAL: engine results diverge from legacy\n");
    return 1;
  }

  const double legacyRate = static_cast<double>(executed) / legacySeconds;
  const double engineRate = static_cast<double>(executed) / engineSeconds;
  std::printf("legacy interpreter:  %9.0f genes/sec (%.3fs for %zu)\n",
              legacyRate, legacySeconds, executed);
  std::printf("exec engine:         %9.0f genes/sec (%.3fs for %zu)\n",
              engineRate, engineSeconds, executed);
  std::printf("speedup:             %9.2fx\n", engineRate / legacyRate);
  std::printf("plan compiles:       %9zu (for %zu gene executions)\n",
              planCompiles, executed);

  const std::string jsonPath = args.getString("json", "BENCH_interpreter.json");
  if (!jsonPath.empty()) {
    if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\": \"interpreter\", \"population\": %zu, "
                   "\"examples\": %zu, \"length\": %zu, \"generations\": %zu, "
                   "\"executed\": %zu, \"legacy_genes_per_sec\": %.1f, "
                   "\"engine_genes_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"plan_compiles\": %zu}\n",
                   population, examples, length, generations, executed,
                   legacyRate, engineRate, engineRate / legacyRate,
                   planCompiles);
      std::fclose(f);
      std::printf("[json written to %s]\n", jsonPath.c_str());
    }
  }
  return 0;
}
