// GA-style candidate-execution throughput: legacy interpreter vs the
// zero-allocation execution engine.
//
// Reproduces the synthesizer's execution hot loop: every generation a
// population is bred and every gene is executed on every spec example with
// its trace kept. The same populations are timed twice —
//
//   legacy: the seed interpreter (recompute the argument plan per call,
//           copy argument Values into a buffer per statement, allocate a
//           fresh Value per statement and a fresh trace per example),
//           reproduced verbatim from the PR 1 code in legacy_baseline.hpp;
//   engine: dsl::Executor with a cached ExecPlan per (program, signature),
//           pointer-passed arguments, and pooled trace storage refilled in
//           place (the scalar statement-major executePlanMulti);
//   lanes:  the SIMD example-lane executor (executePlanMultiLanes):
//           structure-of-arrays traces, vectorized function bodies where the
//           build enables them (Executor::backendName()), per-lane fallback
//           elsewhere — the path SpecEvaluator::evaluate uses in production
//           when simd_executor is on (the default).
//
// Two further passes time Definition 3.1 equivalence checking (the
// SpecEvaluator::check hot path, which never reads traces): the scalar
// check loop (executePlan per example into one reused scratch) vs the
// output-only lane path (executePlanMultiLanesOutputs — same kernels,
// pinned ingest, only the final statement's outputs materialized).
//
// The check ratio (`lanes_speedup`) is the machine-independent gate for the
// SIMD executor: both paths run in the same process, interleaved per
// generation on the same populations, so host-speed drift cancels out of
// the ratio. The full-trace ratio (`trace_lanes_speedup`) is gated the same
// way: the lanes slice runs the production trace path — executeMultiView
// binding a LaneTraceView over the un-scattered SoA blocks, consumed in
// place — while legacy/engine scatter per-Value traces and then walk them.
// Every slice folds its trace into the checksum *inside* its timed region,
// so each path pays exactly the consumption cost the synthesizer pays, and
// the old near-parity-by-construction (both sides timing the same scatter)
// is gone.
//
//   $ ./bench_interpreter [--population=100] [--examples=10] [--length=5]
//                         [--generations=20] [--seed=2021]
//                         [--json=BENCH_interpreter.json]
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "legacy_baseline.hpp"
#include "core/ga.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsyn;

namespace {

/// The seed interpreter, kept as the measurement baseline: plan recomputed
/// on every call, whole-Value argument copies, fresh trace allocation.
dsl::ExecResult legacyRun(const dsl::Program& program,
                          const std::vector<dsl::Value>& inputs) {
  const dsl::ArgPlan plan =
      dsl::computeArgPlan(program, dsl::signatureOf(inputs));
  dsl::ExecResult result;
  result.trace.reserve(program.length());
  std::array<dsl::Value, dsl::kMaxArity> argbuf;
  for (std::size_t k = 0; k < program.length(); ++k) {
    const dsl::StatementPlan& sp = plan[k];
    const dsl::FunctionInfo& info = dsl::functionInfo(program.at(k));
    for (std::size_t slot = 0; slot < sp.arity; ++slot) {
      const dsl::ArgSource& src = sp.args[slot];
      switch (src.kind) {
        case dsl::ArgSource::Kind::Statement:
          argbuf[slot] = result.trace[src.index];
          break;
        case dsl::ArgSource::Kind::Input:
          argbuf[slot] = inputs[src.index];
          break;
        case dsl::ArgSource::Kind::Default:
          argbuf[slot] = dsl::Value::defaultFor(info.argTypes[slot]);
          break;
      }
    }
    result.trace.push_back(netsyn::bench::legacy::applyFunction(
        program.at(k), std::span<const dsl::Value>(argbuf.data(), sp.arity)));
  }
  return result;
}

/// Folds one value into a checksum so the compiler cannot elide the work,
/// and so different paths can be asserted to agree.
std::uint64_t mixValue(const dsl::Value& v, std::uint64_t h) {
  const auto mix = [&h](std::int64_t x) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 1099511628211ULL;
  };
  if (v.isInt()) {
    mix(v.asInt());
  } else {
    mix(static_cast<std::int64_t>(v.asList().size()));
    for (std::int32_t x : v.asList()) mix(x);
  }
  return h;
}

/// Per-statement hash seed: position-salted so reordered traces cannot
/// collide, and independent per statement so consumers can hash statements
/// in any order (the sums XOR-combine) — one long serial multiply chain per
/// trace would make the fold latency-bound and drown the execution cost the
/// bench is trying to compare.
std::uint64_t statementSalt(std::size_t k) {
  return 1469598103934665603ULL ^
         (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(k + 1));
}

std::uint64_t checksum(const dsl::ExecResult& r) {
  std::uint64_t h = 0;
  for (std::size_t k = 0; k < r.trace.size(); ++k)
    h ^= mixValue(r.trace[k], statementSalt(k));
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto population =
      static_cast<std::size_t>(args.getInt("population", 100));
  const auto examples = static_cast<std::size_t>(args.getInt("examples", 10));
  const auto length = static_cast<std::size_t>(args.getInt("length", 5));
  const auto generations =
      static_cast<std::size_t>(args.getInt("generations", 20));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2021));
  if (population == 0 || generations == 0 || examples == 0) {
    std::fprintf(stderr,
                 "--population, --examples, --generations must be > 0\n");
    return 1;
  }

  const auto repeats = static_cast<std::size_t>(args.getInt("repeat", 3));

  util::Rng tcRng(seed);
  const dsl::Generator gen;
  const auto tc = gen.randomTestCase(length, examples, false, tcRng);
  if (!tc) {
    std::fprintf(stderr, "could not generate a test case\n");
    return 1;
  }
  const dsl::InputSignature sig = tc->spec.signature();

  std::printf("=== bench_interpreter ===\n");
  std::printf(
      "population=%zu examples=%zu length=%zu generations=%zu repeat=%zu\n\n",
      population, examples, length, generations, repeats);

  std::size_t planCompiles = 0;

  // One full GA-shaped pass: breed `generations` populations from one
  // deterministic RNG stream and execute every generation through all three
  // paths back to back, timing each. Interleaving per generation (instead
  // of one full pass per path) keeps the measured slices of the three paths
  // within microseconds of each other, so host-speed drift on shared
  // hardware — which can swing absolute rates several-fold between passes —
  // cancels out of the speedup ratios. Each slice folds its own traces into
  // a checksum inside its timed region — execute + consume is the unit the
  // synthesizer actually runs — and the sums pin all paths to the same
  // results while keeping the compiler honest.
  const auto runPass = [&](double* secs, std::uint64_t* sums) {
    util::Rng rng(seed + 1);
    std::vector<dsl::Program> genes;
    genes.reserve(population);
    for (std::size_t i = 0; i < population; ++i)
      genes.push_back(*gen.randomProgram(length, sig, rng));

    dsl::Executor engineExec;
    engineExec.setLaneExecution(false);
    dsl::Executor lanesExec;
    lanesExec.setLaneExecution(true);
    // The spec is fixed for the whole pass, so pin its inputs exactly as
    // SpecEvaluator does on construction — the lane pass then ingests the
    // examples once per lifetime instead of once per gene.
    std::vector<const std::vector<dsl::Value>*> inputSets;
    inputSets.reserve(examples);
    for (const auto& ex : tc->spec.examples) inputSets.push_back(&ex.inputs);
    lanesExec.pinExampleInputs(inputSets.data(), examples);
    // Pooled per-gene run storage, refilled in place every generation — the
    // evaluator's recycle() arena, inlined. The legacy path uses the same
    // container but each result is a fresh allocation moved in, exactly as
    // the seed pipeline materialized a generation's runs.
    std::vector<std::vector<dsl::ExecResult>> results(
        population, std::vector<dsl::ExecResult>(examples));
    dsl::ExecResult checkScratch;
    std::vector<dsl::Value> outVals(examples);
    const auto engineGeneration = [&](dsl::Executor& executor) {
      for (std::size_t b = 0; b < genes.size(); ++b) {
        // One cached-plan lookup per gene, then all examples through the
        // executor's multi-example body — exactly SpecEvaluator::evaluate's
        // path with the simd_executor flag off (engineExec) or on
        // (lanesExec).
        const dsl::ExecPlan& plan = executor.planFor(genes[b], sig);
        executor.executeMulti(plan, inputSets.data(), examples,
                              results[b].data());
      }
    };
    const auto fold = [&](std::uint64_t* sum) {
      for (const auto& perGene : results)
        for (const auto& r : perGene) *sum ^= checksum(r);
    };
    // The lane trace slice runs the production path: executeMultiView keeps
    // the SoA lane blocks un-scattered and binds a view, and the fold walks
    // the blocks in place. The walk below is checksum() transliterated onto
    // the view layout, so lanesSum stays bitwise-comparable to the scalar
    // sums. executeMultiView only refuses when examples exceed the lane
    // block width; fall back to the scattered path there so the bench still
    // runs (the slice then measures scatter + fold, same as the engine).
    dsl::LaneTraceView view;
    const auto laneViewGeneration = [&](std::uint64_t* sum) {
      for (std::size_t b = 0; b < genes.size(); ++b) {
        const dsl::ExecPlan& plan = lanesExec.planFor(genes[b], sig);
        if (!lanesExec.executeMultiView(plan, inputSets.data(), examples,
                                        view)) {
          lanesExec.executeMulti(plan, inputSets.data(), examples,
                                 results[b].data());
          for (const auto& r : results[b]) *sum ^= checksum(r);
          continue;
        }
        // Statement-major: each statement's lane block is contiguous in the
        // SoA store, so this walk streams where the per-example walk over
        // scattered Values pointer-chases.
        for (std::size_t k = 0; k < view.steps; ++k) {
          const std::uint64_t salt = statementSalt(k);
          if (view.stepType(k) == dsl::Type::Int) {
            const std::int32_t* lanesBlock = view.intLanes(k);
            for (std::size_t j = 0; j < examples; ++j) {
              std::uint64_t h = salt;
              h ^= static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(lanesBlock[j]));
              h *= 1099511628211ULL;
              *sum ^= h;
            }
          } else {
            for (std::size_t j = 0; j < examples; ++j) {
              std::uint64_t h = salt;
              const auto mix = [&h](std::int64_t x) {
                h ^= static_cast<std::uint64_t>(x);
                h *= 1099511628211ULL;
              };
              std::size_t len = 0;
              const std::int32_t* seg = view.listAt(k, j, &len);
              mix(static_cast<std::int64_t>(len));
              for (std::size_t t = 0; t < len; ++t)
                mix(static_cast<std::int64_t>(seg[t]));
              *sum ^= h;
            }
          }
        }
      }
    };

    core::GaConfig gaConfig;
    gaConfig.populationSize = population;
    for (std::size_t g = 0; g < generations; ++g) {
      {
        util::Timer timer;
        for (std::size_t b = 0; b < genes.size(); ++b) {
          for (std::size_t j = 0; j < examples; ++j)
            results[b][j] = legacyRun(genes[b], tc->spec.examples[j].inputs);
        }
        fold(&sums[0]);
        secs[0] += timer.seconds();
      }
      {
        util::Timer timer;
        engineGeneration(engineExec);
        fold(&sums[1]);
        secs[1] += timer.seconds();
      }
      {
        util::Timer timer;
        laneViewGeneration(&sums[2]);
        secs[2] += timer.seconds();
      }
      // Equivalence-check passes: the scalar production check loop
      // (executePlan per example into one reused scratch, output read) vs
      // the output-only lane path. Each reads every example's output into
      // the checksum inside the timed region — the analogue of check()'s
      // output comparison — so the work is symmetric and the sums pin the
      // two paths equal.
      {
        util::Timer timer;
        for (std::size_t b = 0; b < genes.size(); ++b) {
          const dsl::ExecPlan& plan = engineExec.planFor(genes[b], sig);
          for (std::size_t j = 0; j < examples; ++j) {
            dsl::executePlan(plan, *inputSets[j], checkScratch);
            sums[3] = mixValue(checkScratch.output(), sums[3]);
          }
        }
        secs[3] += timer.seconds();
      }
      {
        util::Timer timer;
        for (std::size_t b = 0; b < genes.size(); ++b) {
          const dsl::ExecPlan& plan = lanesExec.planFor(genes[b], sig);
          lanesExec.executeMultiOutputs(plan, inputSets.data(), examples,
                                        outVals.data());
          for (std::size_t j = 0; j < examples; ++j)
            sums[4] = mixValue(outVals[j], sums[4]);
        }
        secs[4] += timer.seconds();
      }

      // Evolve so later generations look like the GA's real workload:
      // shared ancestry, duplicate subsequences, recurring values.
      core::Population scored;
      for (std::size_t b = 0; b < genes.size(); ++b)
        scored.push_back(core::Individual{genes[b], 1.0 + rng.uniformReal()});
      genes = core::breed(scored, gaConfig, sig, gen, rng, nullptr);
    }
    planCompiles = engineExec.planCompiles();
  };

  const std::size_t executed = population * generations;
  double legacySeconds = 1e300;
  double engineSeconds = 1e300;
  double lanesSeconds = 1e300;
  double checkScalarSeconds = 1e300;
  double checkLanesSeconds = 1e300;
  std::uint64_t legacySum = 0;
  std::uint64_t engineSum = 0;
  std::uint64_t lanesSum = 0;
  std::uint64_t checkScalarSum = 0;
  std::uint64_t checkLanesSum = 0;
  // Best-of-N passes: robust against scheduler noise on shared hardware.
  for (std::size_t r = 0; r < repeats; ++r) {
    double secs[5] = {0.0, 0.0, 0.0, 0.0, 0.0};
    std::uint64_t sums[5] = {0, 0, 0, 0, 0};
    runPass(secs, sums);
    legacySeconds = std::min(legacySeconds, secs[0]);
    engineSeconds = std::min(engineSeconds, secs[1]);
    lanesSeconds = std::min(lanesSeconds, secs[2]);
    checkScalarSeconds = std::min(checkScalarSeconds, secs[3]);
    checkLanesSeconds = std::min(checkLanesSeconds, secs[4]);
    legacySum = sums[0];
    engineSum = sums[1];
    lanesSum = sums[2];
    checkScalarSum = sums[3];
    checkLanesSum = sums[4];
  }

  if (legacySum != engineSum) {
    std::fprintf(stderr, "FATAL: engine results diverge from legacy\n");
    return 1;
  }
  if (lanesSum != engineSum) {
    std::fprintf(stderr, "FATAL: lane executor diverges from scalar engine\n");
    return 1;
  }
  if (checkLanesSum != checkScalarSum) {
    std::fprintf(stderr,
                 "FATAL: output-only lane path diverges from scalar check\n");
    return 1;
  }

  const double legacyRate = static_cast<double>(executed) / legacySeconds;
  const double engineRate = static_cast<double>(executed) / engineSeconds;
  const double lanesRate = static_cast<double>(executed) / lanesSeconds;
  const double checkScalarRate =
      static_cast<double>(executed) / checkScalarSeconds;
  const double checkLanesRate =
      static_cast<double>(executed) / checkLanesSeconds;
  std::printf("legacy interpreter:  %9.0f genes/sec (%.3fs for %zu)\n",
              legacyRate, legacySeconds, executed);
  std::printf("exec engine:         %9.0f genes/sec (%.3fs for %zu)\n",
              engineRate, engineSeconds, executed);
  std::printf("lane executor (%s): %9.0f genes/sec (%.3fs for %zu)\n",
              dsl::Executor::backendName(), lanesRate, lanesSeconds, executed);
  std::printf("scalar check:        %9.0f genes/sec (%.3fs for %zu)\n",
              checkScalarRate, checkScalarSeconds, executed);
  std::printf("lane check (%s):   %9.0f genes/sec (%.3fs for %zu)\n",
              dsl::Executor::backendName(), checkLanesRate, checkLanesSeconds,
              executed);
  std::printf("speedup:             %9.2fx (engine vs legacy)\n",
              engineRate / legacyRate);
  std::printf("trace lanes speedup: %9.2fx (lane trace path vs scalar engine)\n",
              lanesRate / engineRate);
  std::printf("lanes speedup:       %9.2fx (lane check vs scalar check)\n",
              checkLanesRate / checkScalarRate);
  std::printf("plan compiles:       %9zu (for %zu gene executions)\n",
              planCompiles, executed);

  const std::string jsonPath = args.getString("json", "BENCH_interpreter.json");
  if (!jsonPath.empty()) {
    if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\": \"interpreter\", \"population\": %zu, "
                   "\"examples\": %zu, \"length\": %zu, \"generations\": %zu, "
                   "\"executed\": %zu, \"legacy_genes_per_sec\": %.1f, "
                   "\"engine_genes_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"lanes_genes_per_sec\": %.1f, "
                   "\"trace_lanes_speedup\": %.3f, "
                   "\"check_scalar_genes_per_sec\": %.1f, "
                   "\"check_lanes_genes_per_sec\": %.1f, "
                   "\"lanes_speedup\": %.3f, "
                   "\"simd_backend\": \"%s\", \"plan_compiles\": %zu}\n",
                   population, examples, length, generations, executed,
                   legacyRate, engineRate, engineRate / legacyRate, lanesRate,
                   lanesRate / engineRate, checkScalarRate, checkLanesRate,
                   checkLanesRate / checkScalarRate,
                   dsl::Executor::backendName(), planCompiles);
      std::fclose(f);
      std::printf("[json written to %s]\n", jsonPath.c_str());
    }
  }
  return 0;
}
