// Reproduces Figure 4(d)-(f): the distribution of per-program synthesis
// rates (the percentage of the K repeated runs that synthesize each
// program), rendered as the five-number summary + histogram that the
// paper's violin plots visualize.
//
// Paper shape to verify: NetSyn's distribution is concentrated near 100% at
// short lengths and becomes bimodal at longer lengths with the larger mass
// still at the top; the baselines are bimodal with the larger mass at 0%.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Rate distributions need several repetitions per program.
  if (!args.has("runs")) config.runsPerProgram = 4;
  if (!args.has("programs-per-length")) config.programsPerLength = 6;
  bench::banner("Figure 4(d-f): synthesis-rate distributions", config);

  const auto models = harness::loadOrTrainAll(config);
  const auto factories = harness::makeAllMethodFactories(config, models);

  for (const std::size_t length : config.programLengths) {
    const auto workload = harness::makeWorkload(config, length);
    std::printf("-- program length %zu (%zu programs, K=%zu) --\n", length,
                workload.size(), config.runsPerProgram);
    util::Table table({"Method", "min", "q1", "median", "q3", "max",
                       "rate=0", "0<rate<100", "rate=100"});
    for (const auto& factory : factories) {
      const auto report =
          harness::runMethod(factory, workload, config, /*verbose=*/false);
      std::vector<double> rates;
      int zero = 0, partial = 0, full = 0;
      for (const auto& p : report.programs) {
        const double r = p.synthesisRate();
        rates.push_back(r * 100.0);
        if (r <= 0.0) ++zero;
        else if (r >= 1.0) ++full;
        else ++partial;
      }
      table.newRow()
          .add(report.method)
          .addDouble(util::percentile(rates, 0), 0)
          .addDouble(util::percentile(rates, 25), 0)
          .addDouble(util::percentile(rates, 50), 0)
          .addDouble(util::percentile(rates, 75), 0)
          .addDouble(util::percentile(rates, 100), 0)
          .addInt(zero)
          .addInt(partial)
          .addInt(full);
      std::fprintf(stderr, "[fig4-rate] len %zu: %s done\n", length,
                   report.method.c_str());
    }
    bench::emit(table, args, "fig4_synthesis_rate.csv");
  }
  return 0;
}
