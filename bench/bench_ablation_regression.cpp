// Reproduces the §5.3.1 ablation: treating the fitness score as a
// regression target instead of a classification problem.
//
// Paper shape to verify: the regression model "predicts values close to the
// median of the training set", giving a higher prediction error than the
// classifier, and the GA driven by it degrades relative to the classifier
// fitness.
#include "bench_common.hpp"
#include "fitness/neural_fitness.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Both heads train on the full configured corpus: comparing an
  // undertrained classifier against the regression head's predict-the-median
  // shortcut would invert the paper's conclusion for the wrong reason.
  if (!args.has("programs-per-length")) config.programsPerLength = 6;
  if (!args.has("lengths")) config.programLengths = {5};
  bench::banner("§5.3.1 ablation: classification vs regression NN-FF",
                config);

  // Train both heads on the identical corpus.
  const auto trainSet = harness::buildCorpus(
      config, config.trainingPrograms, fitness::BalanceMetric::CF,
      config.seed + 17);
  const auto valSet = harness::buildCorpus(config, config.validationPrograms,
                                           fitness::BalanceMetric::CF,
                                           config.seed + 31);

  fitness::TrainConfig tc = config.trainConfig;
  tc.labelMetric = fitness::BalanceMetric::CF;
  fitness::Trainer trainer(tc);

  auto classifier = harness::buildModel(config, fitness::HeadKind::Classifier);
  std::fprintf(stderr, "[regression] training classifier head...\n");
  trainer.train(*classifier, trainSet, valSet);
  auto regressor = harness::buildModel(config, fitness::HeadKind::Regression);
  std::fprintf(stderr, "[regression] training regression head...\n");
  trainer.train(*regressor, trainSet, valSet);

  // Prediction error: expected class error for the classifier versus MAE of
  // the regressor (same units: fitness classes).
  double clsMae = 0.0;
  {
    fitness::NeuralFitness fit(classifier, "NN_CF");
    for (const auto& s : valSet) {
      std::vector<dsl::ExecResult> runs;
      for (const auto& ex : s.spec.examples)
        runs.push_back(dsl::run(s.candidate, ex.inputs));
      clsMae += std::abs(fit.score(s.candidate, {s.spec, runs}) -
                         static_cast<double>(s.cf));
    }
    clsMae /= static_cast<double>(valSet.size());
  }
  const double regMae = trainer.regressionMae(*regressor, valSet);

  // GA impact on a shared workload.
  const auto workload =
      harness::makeWorkload(config, config.programLengths.front());
  core::SynthesizerConfig sc = config.synthesizer;
  auto runWith = [&](fitness::FitnessPtr fit, const char* label) {
    baselines::SynthesizerMethod method(label, sc, std::move(fit));
    return harness::runMethod(method, workload, config, /*verbose=*/false);
  };
  const auto clsReport = runWith(
      std::make_shared<fitness::NeuralFitness>(classifier, "NN_CF"),
      "GA+classifier");
  const auto regReport = runWith(
      std::make_shared<fitness::RegressionFitness>(regressor),
      "GA+regression");

  util::Table table({"Head", "Val MAE (classes)", "Synthesized%",
                     "Avg rate%"});
  table.newRow()
      .add("Classification")
      .addDouble(clsMae, 3)
      .addPercent(clsReport.synthesizedFraction(), 0)
      .addPercent(clsReport.meanSynthesisRate(), 0);
  table.newRow()
      .add("Regression")
      .addDouble(regMae, 3)
      .addPercent(regReport.synthesizedFraction(), 0)
      .addPercent(regReport.meanSynthesisRate(), 0);
  bench::emit(table, args, "ablation_regression.csv");
  return 0;
}
