// Reproduces Figure 5(a)-(c): synthesis percentage of singleton-output
// versus list-output programs for each NetSyn fitness variant.
//
// Paper shape to verify: singleton programs (final function returns a
// single integer) are harder to synthesize for all three variants, and the
// f_FP variant is weakest on singletons.
#include "bench_common.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  if (!args.has("programs-per-length")) config.programsPerLength = 8;
  if (!args.has("lengths")) config.programLengths = {5};
  bench::banner("Figure 5: singleton vs list programs", config);

  const auto models = harness::loadOrTrainAll(config);
  const harness::NetSynVariant variants[] = {harness::NetSynVariant::CF,
                                             harness::NetSynVariant::LCS,
                                             harness::NetSynVariant::FP};

  util::Table table({"Variant", "Singleton synth%", "Singleton rate%",
                     "List synth%", "List rate%"});
  for (const auto variant : variants) {
    auto method = harness::makeNetSyn(config, models, variant);
    double singletonFound = 0, singletonRate = 0, listFound = 0,
           listRate = 0;
    std::size_t singletonN = 0, listN = 0;
    for (const std::size_t length : config.programLengths) {
      const auto workload = harness::makeWorkload(config, length);
      const auto report =
          harness::runMethod(*method, workload, config, /*verbose=*/false);
      for (const auto& p : report.programs) {
        if (p.singleton) {
          singletonFound += p.synthesized() ? 1 : 0;
          singletonRate += p.synthesisRate();
          ++singletonN;
        } else {
          listFound += p.synthesized() ? 1 : 0;
          listRate += p.synthesisRate();
          ++listN;
        }
      }
    }
    table.newRow()
        .add(method->name())
        .addPercent(singletonN ? singletonFound / double(singletonN) : 0, 0)
        .addPercent(singletonN ? singletonRate / double(singletonN) : 0, 0)
        .addPercent(listN ? listFound / double(listN) : 0, 0)
        .addPercent(listN ? listRate / double(listN) : 0, 0);
    std::fprintf(stderr, "[fig5] %s done\n", method->name().c_str());
  }
  bench::emit(table, args, "fig5_singleton_vs_list.csv");
  return 0;
}
