// The seed interpreter's function layer (commit 10c11e0), embedded verbatim
// as the measurement baseline for bench_interpreter: value-returning bodies,
// a fresh Value allocated per statement, branchy FILTER/DELETE loops, and
// per-call validation — exactly the code path PR 1 executed. Keeping the
// PR 1 implementation frozen here makes the reported speedup an honest
// before/after comparison even as the live src/dsl code keeps improving.
//
// Do not "fix" or modernize this file; it is a snapshot, not live code.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "dsl/functions.hpp"
#include "dsl/value.hpp"

namespace netsyn::bench::legacy {

using dsl::FuncId;
using dsl::FunctionInfo;
using dsl::kMaxArity;
using dsl::kNumFunctions;
using dsl::saturate;
using dsl::Type;
using dsl::Value;

namespace {

using List = std::vector<std::int32_t>;
using I64 = std::int64_t;

// ---- element-level lambdas -------------------------------------------------

bool isPositive(std::int32_t v) { return v > 0; }
bool isNegative(std::int32_t v) { return v < 0; }
bool isOdd(std::int32_t v) { return v % 2 != 0; }
bool isEven(std::int32_t v) { return v % 2 == 0; }

// ---- function bodies (paper Appendix A) -------------------------------------

Value head(const List& xs) { return xs.empty() ? 0 : xs.front(); }
Value last(const List& xs) { return xs.empty() ? 0 : xs.back(); }

Value minimum(const List& xs) {
  return xs.empty() ? 0 : *std::min_element(xs.begin(), xs.end());
}
Value maximum(const List& xs) {
  return xs.empty() ? 0 : *std::max_element(xs.begin(), xs.end());
}

Value sum(const List& xs) {
  I64 s = 0;
  for (std::int32_t v : xs) s += v;  // no overflow: |xs| * 2^31 << 2^63
  return saturate(s);
}

template <bool (*Pred)(std::int32_t)>
Value count(const List& xs) {
  std::int32_t c = 0;
  for (std::int32_t v : xs)
    if (Pred(v)) ++c;
  return c;
}

template <bool (*Pred)(std::int32_t)>
Value filter(const List& xs) {
  List out;
  out.reserve(xs.size());
  for (std::int32_t v : xs)
    if (Pred(v)) out.push_back(v);
  return out;
}

template <I64 (*Op)(I64)>
Value map(const List& xs) {
  List out;
  out.reserve(xs.size());
  for (std::int32_t v : xs) out.push_back(saturate(Op(v)));
  return out;
}

I64 mapAdd1(I64 v) { return v + 1; }
I64 mapSub1(I64 v) { return v - 1; }
I64 mapMul2(I64 v) { return v * 2; }
I64 mapMul3(I64 v) { return v * 3; }
I64 mapMul4(I64 v) { return v * 4; }
I64 mapDiv2(I64 v) { return v / 2; }
I64 mapDiv3(I64 v) { return v / 3; }
I64 mapDiv4(I64 v) { return v / 4; }
I64 mapNeg(I64 v) { return -v; }
I64 mapSquare(I64 v) { return v * v; }

Value reverse(const List& xs) { return List(xs.rbegin(), xs.rend()); }

Value sortAsc(const List& xs) {
  List out = xs;
  std::sort(out.begin(), out.end());
  return out;
}

// SCANL1 per the paper: O_0 = I_0, O_n = lambda(I_n, O_{n-1}) for n > 0.
template <I64 (*Op)(I64, I64)>
Value scanl1(const List& xs) {
  List out;
  out.reserve(xs.size());
  for (std::size_t n = 0; n < xs.size(); ++n) {
    if (n == 0) out.push_back(xs[0]);
    else out.push_back(saturate(Op(xs[n], out[n - 1])));
  }
  return out;
}

I64 opAdd(I64 a, I64 b) { return a + b; }
I64 opSub(I64 a, I64 b) { return a - b; }
I64 opMul(I64 a, I64 b) { return a * b; }
I64 opMin(I64 a, I64 b) { return a < b ? a : b; }
I64 opMax(I64 a, I64 b) { return a > b ? a : b; }

Value take(std::int32_t n, const List& xs) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  return List(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(k));
}

Value drop(std::int32_t n, const List& xs) {
  const auto k = static_cast<std::size_t>(
      std::clamp<I64>(n, 0, static_cast<I64>(xs.size())));
  return List(xs.begin() + static_cast<std::ptrdiff_t>(k), xs.end());
}

Value deleteAll(std::int32_t x, const List& xs) {
  List out;
  out.reserve(xs.size());
  for (std::int32_t v : xs)
    if (v != x) out.push_back(v);
  return out;
}

Value insert(std::int32_t x, const List& xs) {
  List out = xs;
  out.push_back(x);
  return out;
}

template <I64 (*Op)(I64, I64)>
Value zipWith(const List& a, const List& b) {
  const std::size_t n = std::min(a.size(), b.size());
  List out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(saturate(Op(a[i], b[i])));
  return out;
}

Value access(std::int32_t n, const List& xs) {
  if (n < 0 || static_cast<std::size_t>(n) >= xs.size()) return 0;
  return xs[static_cast<std::size_t>(n)];
}

Value search(std::int32_t x, const List& xs) {
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (xs[i] == x) return static_cast<std::int32_t>(i);
  return -1;
}

// ---- dispatch table ---------------------------------------------------------

using Body1 = Value (*)(const List&);
using BodyIntList = Value (*)(std::int32_t, const List&);
using BodyListList = Value (*)(const List&, const List&);

struct Entry {
  FunctionInfo info;
  Body1 unary = nullptr;          // [int] -> *
  BodyIntList intList = nullptr;  // int,[int] -> *
  BodyListList listList = nullptr;  // [int],[int] -> [int]
};

constexpr Type kInt = Type::Int;
constexpr Type kList = Type::List;

// Order defines FuncId; paperNumber preserves the paper's 1..41 numbering.
const std::array<Entry, kNumFunctions> kTable = {{
    {{"ACCESS", 1, 2, {kInt, kList}, kInt}, nullptr, access, nullptr},
    {{"COUNT(>0)", 2, 1, {kList, kList}, kInt}, count<isPositive>},
    {{"COUNT(<0)", 3, 1, {kList, kList}, kInt}, count<isNegative>},
    {{"COUNT(odd)", 4, 1, {kList, kList}, kInt}, count<isOdd>},
    {{"COUNT(even)", 5, 1, {kList, kList}, kInt}, count<isEven>},
    {{"HEAD", 6, 1, {kList, kList}, kInt}, head},
    {{"LAST", 7, 1, {kList, kList}, kInt}, last},
    {{"MINIMUM", 8, 1, {kList, kList}, kInt}, minimum},
    {{"MAXIMUM", 9, 1, {kList, kList}, kInt}, maximum},
    {{"SEARCH", 10, 2, {kInt, kList}, kInt}, nullptr, search, nullptr},
    {{"SUM", 11, 1, {kList, kList}, kInt}, sum},
    {{"DELETE", 12, 2, {kInt, kList}, kList}, nullptr, deleteAll, nullptr},
    {{"DROP", 13, 2, {kInt, kList}, kList}, nullptr, drop, nullptr},
    {{"FILTER(>0)", 14, 1, {kList, kList}, kList}, filter<isPositive>},
    {{"FILTER(<0)", 15, 1, {kList, kList}, kList}, filter<isNegative>},
    {{"FILTER(odd)", 16, 1, {kList, kList}, kList}, filter<isOdd>},
    {{"FILTER(even)", 17, 1, {kList, kList}, kList}, filter<isEven>},
    {{"INSERT", 18, 2, {kInt, kList}, kList}, nullptr, insert, nullptr},
    {{"MAP(+1)", 19, 1, {kList, kList}, kList}, map<mapAdd1>},
    {{"MAP(-1)", 20, 1, {kList, kList}, kList}, map<mapSub1>},
    {{"MAP(*2)", 21, 1, {kList, kList}, kList}, map<mapMul2>},
    {{"MAP(*3)", 22, 1, {kList, kList}, kList}, map<mapMul3>},
    {{"MAP(*4)", 23, 1, {kList, kList}, kList}, map<mapMul4>},
    {{"MAP(/2)", 24, 1, {kList, kList}, kList}, map<mapDiv2>},
    {{"MAP(/3)", 25, 1, {kList, kList}, kList}, map<mapDiv3>},
    {{"MAP(/4)", 26, 1, {kList, kList}, kList}, map<mapDiv4>},
    {{"MAP(*(-1))", 27, 1, {kList, kList}, kList}, map<mapNeg>},
    {{"MAP(^2)", 28, 1, {kList, kList}, kList}, map<mapSquare>},
    {{"REVERSE", 29, 1, {kList, kList}, kList}, reverse},
    {{"SCANL1(+)", 30, 1, {kList, kList}, kList}, scanl1<opAdd>},
    {{"SCANL1(-)", 31, 1, {kList, kList}, kList}, scanl1<opSub>},
    {{"SCANL1(*)", 32, 1, {kList, kList}, kList}, scanl1<opMul>},
    {{"SCANL1(min)", 33, 1, {kList, kList}, kList}, scanl1<opMin>},
    {{"SCANL1(max)", 34, 1, {kList, kList}, kList}, scanl1<opMax>},
    {{"SORT", 35, 1, {kList, kList}, kList}, sortAsc},
    {{"TAKE", 36, 2, {kInt, kList}, kList}, nullptr, take, nullptr},
    {{"ZIPWITH(+)", 37, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opAdd>},
    {{"ZIPWITH(-)", 38, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opSub>},
    {{"ZIPWITH(*)", 39, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMul>},
    {{"ZIPWITH(min)", 40, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMin>},
    {{"ZIPWITH(max)", 41, 2, {kList, kList}, kList}, nullptr, nullptr,
     zipWith<opMax>},
}};

}  // namespace

const FunctionInfo& functionInfo(FuncId id) {
  assert(id < kNumFunctions);
  return kTable[id].info;
}

Value applyFunction(FuncId id, std::span<const Value> args) {
  assert(id < kNumFunctions);
  const Entry& e = kTable[id];
  if (args.size() != e.info.arity)
    throw std::invalid_argument("wrong arity for " + std::string(e.info.name));
  for (std::size_t i = 0; i < e.info.arity; ++i) {
    if (args[i].type() != e.info.argTypes[i])
      throw std::invalid_argument("wrong argument type for " +
                                  std::string(e.info.name));
  }
  if (e.unary) return e.unary(args[0].asList());
  if (e.intList) return e.intList(args[0].asInt(), args[1].asList());
  return e.listList(args[0].asList(), args[1].asList());
}
}  // namespace netsyn::bench::legacy
