// Fleet scaling smoke: one synthesis job spread over N synthd backend
// subprocesses, N in {1, 2, 4}.
//
// Every host count runs the SAME workload with the SAME per-(seed,
// program, run) task seeds, so the solve count must be identical across
// the sweep (the coordinator's determinism contract — the gated metric);
// what varies is wall-clock, which isolates the fleet's process-level
// parallelism against its coordination overhead (hello/claim/poll round
// trips and subprocess spawn). Uses the Edit method so the bench needs no
// trained models.
//
//   $ ./bench_fleet [--synthd=./synthd] [--budget=2000] [--lengths=4]
//                   [--programs-per-length=3] [--runs=2] [--seed=2021]
//                   [--host-workers=1] [--json=BENCH_fleet.json]
#include <cstdio>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "service/fleet.hpp"
#include "util/argparse.hpp"
#include "util/timer.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  try {
    const util::ArgParse args(argc, argv);
    harness::ExperimentConfig config = harness::ExperimentConfig::fromArgs(args);
    // Bench-sized defaults unless the caller overrode them explicitly.
    if (!args.has("lengths")) config.programLengths = {4};
    if (!args.has("programs-per-length")) config.programsPerLength = 3;
    if (!args.has("runs")) config.runsPerProgram = 2;
    if (!args.has("budget")) config.searchBudget = 2000;

    service::LocalBackendConfig backend;
    backend.synthdPath = args.getString("synthd", "./synthd");
    backend.workers =
        static_cast<std::size_t>(args.getInt("host-workers", 1));

    std::printf("=== bench_fleet ===\n");
    std::printf("budget=%zu lengths=%zu programs/len=%zu runs=%zu\n\n",
                config.searchBudget, config.programLengths.size(),
                config.programsPerLength, config.runsPerProgram);

    struct Row {
      std::size_t hosts = 0;
      std::size_t solved = 0;
      std::size_t tasks = 0;
      double seconds = 0.0;
      double solvedPerSec() const {
        return seconds > 0.0 ? static_cast<double>(solved) / seconds : 0.0;
      }
    };
    std::vector<Row> rows;

    for (const std::size_t hosts : {1u, 2u, 4u}) {
      service::FleetConfig fc;
      fc.hosts = hosts;
      fc.pollIntervalMs = 5.0;

      Row row;
      row.hosts = hosts;
      util::Timer timer;
      service::FleetCoordinator fleet(fc, backend);
      const service::FleetReport report = fleet.run(config, "Edit");
      fleet.shutdownBackends();
      row.seconds = timer.seconds();
      row.tasks = report.tasks.size();
      for (const service::TaskRecord& t : report.tasks)
        row.solved += t.found ? 1 : 0;
      rows.push_back(row);

      std::printf("hosts=%zu  solved=%2zu/%zu  %7.3fs  %6.2f solved/sec\n",
                  hosts, row.solved, row.tasks, row.seconds,
                  row.solvedPerSec());
      if (row.solved != rows.front().solved) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: hosts=%zu solved %zu but "
                     "hosts=%zu solved %zu\n",
                     hosts, row.solved, rows.front().hosts,
                     rows.front().solved);
        return 1;
      }
    }

    const std::string jsonPath = args.getString("json", "BENCH_fleet.json");
    if (!jsonPath.empty()) {
      if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
        std::fprintf(f,
                     "{\"bench\": \"fleet\", \"budget\": %zu, "
                     "\"tasks\": %zu, \"sweep\": [",
                     config.searchBudget, rows.front().tasks);
        const double base = rows.front().solvedPerSec();
        for (std::size_t i = 0; i < rows.size(); ++i) {
          const Row& r = rows[i];
          std::fprintf(f,
                       "%s{\"hosts\": %zu, \"solved\": %zu, "
                       "\"seconds\": %.4f, \"solved_per_sec\": %.3f, "
                       "\"scaling_vs_1host\": %.3f}",
                       i ? ", " : "", r.hosts, r.solved, r.seconds,
                       r.solvedPerSec(),
                       base > 0.0 ? r.solvedPerSec() / base : 0.0);
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("\n[json written to %s]\n", jsonPath.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench_fleet] fatal: %s\n", e.what());
    return 1;
  }
}
