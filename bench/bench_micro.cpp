// Micro-benchmarks (google-benchmark) for the performance-critical
// components: DSL interpretation, dead-code analysis, program generation,
// oracle metrics, NN forward passes (autograd graph vs the allocation-free
// inference path), fitness scoring, GA breeding, and neighborhood search.
#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/neighborhood.hpp"
#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "fitness/dataset.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "fitness/model.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/rng.hpp"

using namespace netsyn;

namespace {

dsl::Generator::TestCase makeCase(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  const dsl::Generator gen;
  return *gen.randomTestCase(length, 5, false, rng);
}

fitness::NnffConfig benchModelConfig(fitness::HeadKind head) {
  fitness::NnffConfig cfg;
  cfg.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.embedDim = 16;
  cfg.hiddenDim = 24;
  cfg.maxExamples = 3;
  cfg.head = head;
  cfg.useTrace = head != fitness::HeadKind::Multilabel;
  return cfg;
}

void BM_InterpreterRun(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 1);
  const auto& inputs = tc.spec.examples[0].inputs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::run(tc.program, inputs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterRun)->Arg(5)->Arg(10);

void BM_InterpreterEvalNoTrace(benchmark::State& state) {
  const auto tc = makeCase(5, 2);
  const auto& inputs = tc.spec.examples[0].inputs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::eval(tc.program, inputs));
  }
}
BENCHMARK(BM_InterpreterEvalNoTrace);

void BM_ExecutorRunInto(benchmark::State& state) {
  // The zero-allocation engine on the same workload as BM_InterpreterRun:
  // cached plan, pooled result storage refilled in place.
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 1);
  const auto& inputs = tc.spec.examples[0].inputs;
  dsl::Executor executor;
  dsl::ExecResult pooled;
  for (auto _ : state) {
    executor.runInto(tc.program, inputs, pooled);
    benchmark::DoNotOptimize(pooled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorRunInto)->Arg(5)->Arg(10);

void BM_ExecutorPlanCompile(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 4);
  const dsl::InputSignature sig = tc.spec.signature();
  dsl::ExecPlan plan;
  for (auto _ : state) {
    dsl::compilePlanInto(tc.program, sig, plan);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExecutorPlanCompile)->Arg(5)->Arg(10);

void BM_EvaluatorEvaluate(benchmark::State& state) {
  // Full evaluator path (plan cache + executePlanMulti + recycle pool) on a
  // 10-example spec — the GA's per-candidate execution cost.
  util::Rng rng(14);
  const dsl::Generator gen;
  const auto tc = *gen.randomTestCase(5, 10, false, rng);
  const dsl::InputSignature sig = tc.spec.signature();
  core::SearchBudget budget(1u << 30);
  core::SpecEvaluator evaluator(tc.spec, budget, /*dedup=*/false);
  const auto candidate = *gen.randomProgram(5, sig, rng);
  for (auto _ : state) {
    auto ev = evaluator.evaluate(candidate);
    benchmark::DoNotOptimize(ev);
    evaluator.recycle(std::move(*ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluatorEvaluate);

void BM_DeadCodeAnalysis(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 3);
  const dsl::InputSignature sig = tc.spec.signature();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::liveMask(tc.program, sig));
  }
}
BENCHMARK(BM_DeadCodeAnalysis)->Arg(5)->Arg(10);

void BM_RandomFullyLiveProgram(benchmark::State& state) {
  util::Rng rng(4);
  const dsl::Generator gen;
  const dsl::InputSignature sig = {dsl::Type::List};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen.randomProgram(static_cast<std::size_t>(state.range(0)), sig, rng));
  }
}
BENCHMARK(BM_RandomFullyLiveProgram)->Arg(5)->Arg(10);

void BM_OracleMetrics(benchmark::State& state) {
  const auto a = makeCase(10, 5).program;
  const auto b = makeCase(10, 6).program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitness::commonFunctions(a, b));
    benchmark::DoNotOptimize(fitness::longestCommonSubsequence(a, b));
  }
}
BENCHMARK(BM_OracleMetrics);

void BM_EditDistanceFitness(benchmark::State& state) {
  const auto tc = makeCase(5, 7);
  const auto candidate = makeCase(5, 8).program;
  std::vector<dsl::ExecResult> runs;
  for (const auto& ex : tc.spec.examples)
    runs.push_back(dsl::run(candidate, ex.inputs));
  fitness::EditDistanceFitness fit;
  const fitness::EvalContext ctx{tc.spec, runs};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit.score(candidate, ctx));
  }
}
BENCHMARK(BM_EditDistanceFitness);

void BM_NnffForwardGraph(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  nn::InferenceModeGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(s.spec, s.candidate, s.traces));
  }
}
BENCHMARK(BM_NnffForwardGraph);

void BM_NnffForwardFast(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forwardFast(s.spec, s.candidate, s.traces));
  }
}
BENCHMARK(BM_NnffForwardFast);

void BM_NnffPredictBatch(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  // A population of copies of the sample's candidate: the per-gene work is
  // identical to BM_NnffForwardFast, so genes/sec are directly comparable.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<const dsl::Program*> genes(batch, &s.candidate);
  std::vector<const std::vector<std::vector<dsl::Value>>*> traces(batch,
                                                                  &s.traces);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predictBatch(s.spec, genes, traces));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NnffPredictBatch)->Arg(10)->Arg(100);

void BM_ProbMapInference(benchmark::State& state) {
  auto model = std::make_shared<fitness::NnffModel>(
      benchModelConfig(fitness::HeadKind::Multilabel));
  fitness::DatasetBuilder builder;
  util::Rng rng(10);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forwardIOOnlyFast(s.spec));
  }
}
BENCHMARK(BM_ProbMapInference);

void BM_GaBreedGeneration(benchmark::State& state) {
  util::Rng rng(11);
  const dsl::Generator gen;
  const dsl::InputSignature sig = {dsl::Type::List};
  core::GaConfig config;
  config.populationSize = 100;
  core::Population pop;
  for (std::size_t i = 0; i < config.populationSize; ++i)
    pop.push_back({*gen.randomProgram(5, sig, rng), rng.uniformReal()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::breed(pop, config, sig, gen, rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * config.populationSize);
}
BENCHMARK(BM_GaBreedGeneration);

void BM_NeighborhoodSearchBfs(benchmark::State& state) {
  const auto tc = makeCase(5, 12);
  // A gene far from the target: the full neighborhood is swept every time.
  const auto gene = makeCase(5, 13).program;
  for (auto _ : state) {
    state.PauseTiming();
    core::SearchBudget budget(1u << 30);
    core::SpecEvaluator ev(tc.spec, budget, /*dedup=*/false);
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::neighborhoodSearchBfs({gene}, ev));
  }
  state.SetItemsProcessed(state.iterations() * 5 * (dsl::kNumFunctions - 1));
}
BENCHMARK(BM_NeighborhoodSearchBfs);

}  // namespace

BENCHMARK_MAIN();
