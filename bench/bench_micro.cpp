// Micro-benchmarks (google-benchmark) for the performance-critical
// components: DSL interpretation, dead-code analysis, program generation,
// oracle metrics, NN forward passes (autograd graph vs the allocation-free
// inference path), fitness scoring, GA breeding, and neighborhood search.
#include <benchmark/benchmark.h>

#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/neighborhood.hpp"
#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "dsl/interpreter.hpp"
#include "dsl/lanes.hpp"
#include "fitness/dataset.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "fitness/model.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/rng.hpp"

using namespace netsyn;

namespace {

dsl::Generator::TestCase makeCase(std::size_t length, std::uint64_t seed) {
  util::Rng rng(seed);
  const dsl::Generator gen;
  return *gen.randomTestCase(length, 5, false, rng);
}

fitness::NnffConfig benchModelConfig(fitness::HeadKind head) {
  fitness::NnffConfig cfg;
  cfg.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.embedDim = 16;
  cfg.hiddenDim = 24;
  cfg.maxExamples = 3;
  cfg.head = head;
  cfg.useTrace = head != fitness::HeadKind::Multilabel;
  return cfg;
}

void BM_InterpreterRun(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 1);
  const auto& inputs = tc.spec.examples[0].inputs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::run(tc.program, inputs));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterRun)->Arg(5)->Arg(10);

void BM_InterpreterEvalNoTrace(benchmark::State& state) {
  const auto tc = makeCase(5, 2);
  const auto& inputs = tc.spec.examples[0].inputs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::eval(tc.program, inputs));
  }
}
BENCHMARK(BM_InterpreterEvalNoTrace);

void BM_ExecutorRunInto(benchmark::State& state) {
  // The zero-allocation engine on the same workload as BM_InterpreterRun:
  // cached plan, pooled result storage refilled in place.
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 1);
  const auto& inputs = tc.spec.examples[0].inputs;
  dsl::Executor executor;
  dsl::ExecResult pooled;
  for (auto _ : state) {
    executor.runInto(tc.program, inputs, pooled);
    benchmark::DoNotOptimize(pooled);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecutorRunInto)->Arg(5)->Arg(10);

void BM_ExecutorPlanCompile(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 4);
  const dsl::InputSignature sig = tc.spec.signature();
  dsl::ExecPlan plan;
  for (auto _ : state) {
    dsl::compilePlanInto(tc.program, sig, plan);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExecutorPlanCompile)->Arg(5)->Arg(10);

// --------------------------------------------- lane-executor breakdown ----
//
// Per-function-family throughput, scalar statement-major executePlanMulti
// vs the SIMD lane executor, on fixed pipelines of one op family at a time.
// When the aggregate interpreter-bench ratio moves, these rows localize the
// regression to a kernel family instead of the aggregate number. Arg(n) is
// the example count per gene execution (8 = one full AVX2 vector, 32 = one
// full lane group).

/// One (program, signature, inputs) workload executed whole-spec at a time,
/// through either multi-example body.
class LaneWorkload {
 public:
  LaneWorkload(const char* source, std::size_t examples)
      : program_(*dsl::Program::fromString(source)), sig_({dsl::Type::List}) {
    util::Rng rng(21);
    const dsl::Generator gen;
    inputs_.reserve(examples);
    for (std::size_t j = 0; j < examples; ++j) {
      inputs_.push_back(gen.randomInputs(sig_, rng));
      inputSets_.push_back(&inputs_[j]);
    }
    runs_.resize(examples);
    plan_ = &executor_.planFor(program_, sig_);
  }

  void runScalar() {
    dsl::executePlanMulti(*plan_, inputSets_.data(), inputSets_.size(),
                          runs_.data());
  }
  void runLanes() {
    // inputs_ is owned and immutable, so the pinned-ingest fast path is
    // sound — this measures the executor exactly as SpecEvaluator runs it
    // (inputs pinned once per spec).
    dsl::executePlanMultiLanes(*plan_, inputSets_.data(), inputSets_.size(),
                               runs_.data(), trace_, /*reuseIngest=*/true);
  }
  std::size_t examples() const { return inputSets_.size(); }

 private:
  dsl::Program program_;
  dsl::InputSignature sig_;
  dsl::Executor executor_;
  const dsl::ExecPlan* plan_ = nullptr;
  std::vector<std::vector<dsl::Value>> inputs_;
  std::vector<const std::vector<dsl::Value>*> inputSets_;
  std::vector<dsl::ExecResult> runs_;
  dsl::SoATrace trace_;
};

const char* laneFamilySource(int family) {
  switch (family) {
    case 0:  // map: element-wise arithmetic, the widen/clamp SIMD kernels
      return "MAP(+1) | MAP(*2) | MAP(/3) | MAP(*(-1)) | MAP(^2)";
    case 1:  // zipwith: two-list element-wise kernels
      return "ZIPWITH(+) | ZIPWITH(*) | ZIPWITH(max) | ZIPWITH(-) | "
             "ZIPWITH(min)";
    case 2:  // filter/delete: per-lane branchless compaction
      return "FILTER(>0) | FILTER(even) | DELETE | FILTER(<0) | FILTER(odd)";
    case 3:  // scanl1: sequential recurrence, vector only across the copy
      return "SCANL1(+) | SCANL1(max) | SCANL1(*) | SCANL1(min) | SCANL1(-)";
    case 4:  // aggregates: list -> int reductions
      return "SUM | MAXIMUM | MINIMUM | COUNT(>0) | SEARCH";
    case 5:  // reorder/slice: memmove-bound block ops
      return "SORT | REVERSE | TAKE | DROP | INSERT";
    default:
      return "";
  }
}

const char* laneFamilyName(int family) {
  const char* names[] = {"map",    "zipwith",   "filter",
                         "scanl1", "aggregate", "reorder"};
  return names[family];
}

void BM_LaneFamilyScalar(benchmark::State& state) {
  LaneWorkload w(laneFamilySource(static_cast<int>(state.range(0))),
                 static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) w.runScalar();
  state.SetItemsProcessed(state.iterations() * w.examples());
  state.SetLabel(laneFamilyName(static_cast<int>(state.range(0))));
}

void BM_LaneFamilySimd(benchmark::State& state) {
  LaneWorkload w(laneFamilySource(static_cast<int>(state.range(0))),
                 static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) w.runLanes();
  state.SetItemsProcessed(state.iterations() * w.examples());
  state.SetLabel(std::string(laneFamilyName(static_cast<int>(state.range(0)))) +
                 "/" + dsl::Executor::backendName());
}

void laneFamilyArgs(benchmark::internal::Benchmark* b) {
  for (int family = 0; family < 6; ++family)
    for (int examples : {8, 32}) b->Args({family, examples});
}
BENCHMARK(BM_LaneFamilyScalar)->Apply(laneFamilyArgs);
BENCHMARK(BM_LaneFamilySimd)->Apply(laneFamilyArgs);

void BM_EvaluatorEvaluate(benchmark::State& state) {
  // Full evaluator path (plan cache + executePlanMulti + recycle pool) on a
  // 10-example spec — the GA's per-candidate execution cost.
  util::Rng rng(14);
  const dsl::Generator gen;
  const auto tc = *gen.randomTestCase(5, 10, false, rng);
  const dsl::InputSignature sig = tc.spec.signature();
  core::SearchBudget budget(1u << 30);
  core::SpecEvaluator evaluator(tc.spec, budget, /*dedup=*/false);
  const auto candidate = *gen.randomProgram(5, sig, rng);
  for (auto _ : state) {
    auto ev = evaluator.evaluate(candidate);
    benchmark::DoNotOptimize(ev);
    evaluator.recycle(std::move(*ev));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluatorEvaluate);

void BM_DeadCodeAnalysis(benchmark::State& state) {
  const auto tc = makeCase(static_cast<std::size_t>(state.range(0)), 3);
  const dsl::InputSignature sig = tc.spec.signature();
  for (auto _ : state) {
    benchmark::DoNotOptimize(dsl::liveMask(tc.program, sig));
  }
}
BENCHMARK(BM_DeadCodeAnalysis)->Arg(5)->Arg(10);

void BM_RandomFullyLiveProgram(benchmark::State& state) {
  util::Rng rng(4);
  const dsl::Generator gen;
  const dsl::InputSignature sig = {dsl::Type::List};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gen.randomProgram(static_cast<std::size_t>(state.range(0)), sig, rng));
  }
}
BENCHMARK(BM_RandomFullyLiveProgram)->Arg(5)->Arg(10);

void BM_OracleMetrics(benchmark::State& state) {
  const auto a = makeCase(10, 5).program;
  const auto b = makeCase(10, 6).program;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fitness::commonFunctions(a, b));
    benchmark::DoNotOptimize(fitness::longestCommonSubsequence(a, b));
  }
}
BENCHMARK(BM_OracleMetrics);

void BM_EditDistanceFitness(benchmark::State& state) {
  const auto tc = makeCase(5, 7);
  const auto candidate = makeCase(5, 8).program;
  std::vector<dsl::ExecResult> runs;
  for (const auto& ex : tc.spec.examples)
    runs.push_back(dsl::run(candidate, ex.inputs));
  fitness::EditDistanceFitness fit;
  const fitness::EvalContext ctx{tc.spec, runs};
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit.score(candidate, ctx));
  }
}
BENCHMARK(BM_EditDistanceFitness);

void BM_NnffForwardGraph(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  nn::InferenceModeGuard guard;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(s.spec, s.candidate, s.traces));
  }
}
BENCHMARK(BM_NnffForwardGraph);

void BM_NnffForwardFast(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forwardFast(s.spec, s.candidate, s.traces));
  }
}
BENCHMARK(BM_NnffForwardFast);

void BM_NnffPredictBatch(benchmark::State& state) {
  const fitness::NnffModel model(benchModelConfig(fitness::HeadKind::Classifier));
  fitness::DatasetBuilder builder;
  util::Rng rng(9);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  // A population of copies of the sample's candidate: the per-gene work is
  // identical to BM_NnffForwardFast, so genes/sec are directly comparable.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<const dsl::Program*> genes(batch, &s.candidate);
  std::vector<const std::vector<std::vector<dsl::Value>>*> traces(batch,
                                                                  &s.traces);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predictBatch(s.spec, genes, traces));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NnffPredictBatch)->Arg(10)->Arg(100);

void BM_ProbMapInference(benchmark::State& state) {
  auto model = std::make_shared<fitness::NnffModel>(
      benchModelConfig(fitness::HeadKind::Multilabel));
  fitness::DatasetBuilder builder;
  util::Rng rng(10);
  const auto s = *builder.makeSample(3, fitness::BalanceMetric::CF, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->forwardIOOnlyFast(s.spec));
  }
}
BENCHMARK(BM_ProbMapInference);

void BM_GaBreedGeneration(benchmark::State& state) {
  util::Rng rng(11);
  const dsl::Generator gen;
  const dsl::InputSignature sig = {dsl::Type::List};
  core::GaConfig config;
  config.populationSize = 100;
  core::Population pop;
  for (std::size_t i = 0; i < config.populationSize; ++i)
    pop.push_back({*gen.randomProgram(5, sig, rng), rng.uniformReal()});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::breed(pop, config, sig, gen, rng, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * config.populationSize);
}
BENCHMARK(BM_GaBreedGeneration);

void BM_NeighborhoodSearchBfs(benchmark::State& state) {
  const auto tc = makeCase(5, 12);
  // A gene far from the target: the full neighborhood is swept every time.
  const auto gene = makeCase(5, 13).program;
  for (auto _ : state) {
    state.PauseTiming();
    core::SearchBudget budget(1u << 30);
    core::SpecEvaluator ev(tc.spec, budget, /*dedup=*/false);
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::neighborhoodSearchBfs({gene}, ev));
  }
  state.SetItemsProcessed(state.iterations() * 5 * (dsl::kNumFunctions - 1));
}
BENCHMARK(BM_NeighborhoodSearchBfs);

}  // namespace

BENCHMARK_MAIN();
