// Reproduces Figure 4(a)-(c) and Table 4: search space used to synthesize
// 10%..100% of the test programs, per method and program length.
//
// Paper shape to verify: the NetSyn variants synthesize more programs than
// DeepCoder / PCCoder / RobustFill / PushGP / Edit within the same budget;
// Edit and PushGP consume the most search space; the Oracle solves nearly
// everything with a negligible fraction of the budget.
#include "bench_common.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  bench::banner("Figure 4(a-c) / Table 4: search-space use", config);

  const auto models = harness::loadOrTrainAll(config);
  const auto factories = harness::makeAllMethodFactories(config, models);

  for (const std::size_t length : config.programLengths) {
    const auto workload = harness::makeWorkload(config, length);
    std::printf("-- program length %zu (%zu programs) --\n", length,
                workload.size());
    util::Table table(harness::percentileHeader("space"));
    for (const auto& factory : factories) {
      const auto report =
          harness::runMethod(factory, workload, config, /*verbose=*/false);
      harness::appendPercentileRow(table, report, /*useTime=*/false);
      std::fprintf(stderr, "[fig4-space] len %zu: %s done\n", length,
                   report.method.c_str());
    }
    bench::emit(table, args, "fig4_search_space.csv");
  }
  return 0;
}
