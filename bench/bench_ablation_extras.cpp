// Reproduces the remaining §5.3.1 ablations: the two-tier fitness function
// and the bigram model, compared against the standard single-tier f_CF
// classifier on the same workload.
//
// Paper shape to verify: gate mispredictions make the two-tier variant
// synthesize fewer programs than the single-tier classifier, and the bigram
// model's synthesis rate collapses on singleton programs ("up to 90%
// reduction ... for singleton programs").
#include "bench_common.hpp"
#include "fitness/extras.hpp"
#include "fitness/neural_fitness.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // All tiers train on the full configured corpus so the comparison against
  // the single-tier classifier is apples-to-apples.
  if (!args.has("programs-per-length")) config.programsPerLength = 6;
  if (!args.has("lengths")) config.programLengths = {5};
  bench::banner("§5.3.1 ablations: two-tier and bigram fitness", config);

  const auto trainSet = harness::buildCorpus(
      config, config.trainingPrograms, fitness::BalanceMetric::CF,
      config.seed + 17);
  const auto valSet = harness::buildCorpus(config, config.validationPrograms,
                                           fitness::BalanceMetric::CF,
                                           config.seed + 31);

  // --- single-tier classifier (the reference NetSyn fitness) ---
  fitness::TrainConfig tc = config.trainConfig;
  tc.labelMetric = fitness::BalanceMetric::CF;
  auto classifier = harness::buildModel(config, fitness::HeadKind::Classifier);
  std::fprintf(stderr, "[extras] training single-tier classifier...\n");
  fitness::Trainer(tc).train(*classifier, trainSet, valSet);

  // --- two-tier: gate (zero vs non-zero) + value (trained on cf >= 1) ---
  auto gateCfg = config;
  gateCfg.modelConfig.numClasses = 2;
  auto gate = harness::buildModel(gateCfg, fitness::HeadKind::Classifier);
  fitness::TrainConfig gateTc = tc;
  gateTc.labelTransform = fitness::LabelTransform::ZeroVsNonzero;
  std::fprintf(stderr, "[extras] training gate tier...\n");
  fitness::Trainer(gateTc).train(*gate, trainSet, valSet);

  std::vector<fitness::Sample> nonzeroTrain, nonzeroVal;
  for (const auto& s : trainSet)
    if (s.cf > 0) nonzeroTrain.push_back(s);
  for (const auto& s : valSet)
    if (s.cf > 0) nonzeroVal.push_back(s);
  auto valueTier = harness::buildModel(config, fitness::HeadKind::Classifier);
  std::fprintf(stderr, "[extras] training value tier...\n");
  fitness::Trainer(tc).train(*valueTier, nonzeroTrain, nonzeroVal);

  // --- bigram model ---
  auto bigramCfg = config;
  bigramCfg.modelConfig.multilabelDim = fitness::kBigramDim;
  auto bigram = harness::buildModel(bigramCfg, fitness::HeadKind::Multilabel);
  std::fprintf(stderr, "[extras] training bigram model...\n");
  fitness::Trainer(tc).train(*bigram, trainSet, valSet);

  // --- GA comparison on a shared workload ---
  const auto workload =
      harness::makeWorkload(config, config.programLengths.front());
  auto runWith = [&](fitness::FitnessPtr fit, const char* label) {
    baselines::SynthesizerMethod method(label, config.synthesizer,
                                        std::move(fit));
    return harness::runMethod(method, workload, config, /*verbose=*/false);
  };

  struct Row {
    const char* label;
    harness::MethodReport report;
  };
  std::vector<Row> rows;
  rows.push_back({"Single-tier f_CF",
                  runWith(std::make_shared<fitness::NeuralFitness>(
                              classifier, "NN_CF"),
                          "single")});
  rows.push_back({"Two-tier (gate+value)",
                  runWith(std::make_shared<fitness::TwoTierFitness>(
                              gate, valueTier),
                          "twotier")});
  rows.push_back(
      {"Bigram pairs",
       runWith(std::make_shared<fitness::BigramFitness>(bigram), "bigram")});

  util::Table table({"Fitness", "Synthesized%", "Avg rate%",
                     "Singleton rate%", "List rate%"});
  for (const auto& row : rows) {
    double sRate = 0, lRate = 0;
    std::size_t sN = 0, lN = 0;
    for (const auto& p : row.report.programs) {
      if (p.singleton) {
        sRate += p.synthesisRate();
        ++sN;
      } else {
        lRate += p.synthesisRate();
        ++lN;
      }
    }
    table.newRow()
        .add(row.label)
        .addPercent(row.report.synthesizedFraction(), 0)
        .addPercent(row.report.meanSynthesisRate(), 0)
        .addPercent(sN ? sRate / double(sN) : 0, 0)
        .addPercent(lN ? lRate / double(lN) : 0, 0);
    std::fprintf(stderr, "[extras] %s done\n", row.label);
  }
  bench::emit(table, args, "ablation_extras.csv");
  return 0;
}
