// Reproduces the §5.3.1 relative-ordering ablation: a network trained to
// predict which of two genes is closer to the target (RankNet over the
// Regression head) compared against the ordering implied by the absolute
// fitness classifier.
//
// Paper shape to verify: the relative-ordering model's pair accuracy does
// not exceed the accuracy obtainable from absolute fitness scores ("we were
// not able to train a network to predict this relative ordering whose
// accuracy was higher than the one for absolute fitness scores").
#include <cmath>

#include "bench_common.hpp"
#include "fitness/ranking.hpp"

using namespace netsyn;

namespace {

/// Ordering accuracy of the absolute classifier: order each pair by the
/// class expectation of the cached f_CF model.
double classifierPairAccuracy(const fitness::NnffModel& model,
                              const std::vector<fitness::PairSample>& set) {
  auto expectation = [&](const dsl::Program& gene, const dsl::Spec& spec,
                         const std::vector<std::vector<dsl::Value>>& traces) {
    const auto logits = model.forwardFast(spec, gene, traces);
    const float mx = *std::max_element(logits.begin(), logits.end());
    double num = 0.0, den = 0.0;
    for (std::size_t j = 0; j < logits.size(); ++j) {
      const double p = std::exp(static_cast<double>(logits[j] - mx));
      num += static_cast<double>(j) * p;
      den += p;
    }
    return num / den;
  };
  std::size_t correct = 0;
  for (const auto& p : set) {
    const double sa = expectation(p.a, p.spec, p.tracesA);
    const double sb = expectation(p.b, p.spec, p.tracesB);
    correct += ((sa > sb) == (p.metricA > p.metricB)) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(set.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Pairs cost two forward passes each; a smaller corpus keeps the default
  // run to a couple of minutes.
  const auto numPairs = static_cast<std::size_t>(
      args.getInt("train-pairs", 1500));
  bench::banner("§5.3.1 ablation: relative-ordering (ranking) model", config);

  const auto models = harness::loadOrTrainAll(config);

  fitness::DatasetConfig dc;
  dc.programLength = config.trainingLength;
  dc.numExamples = config.modelConfig.maxExamples;
  util::Rng rng(config.seed + 91);
  std::fprintf(stderr, "[ranking] building %zu training pairs...\n",
               numPairs);
  const auto trainPairs =
      fitness::buildPairs(dc, numPairs, fitness::BalanceMetric::CF, rng);
  const auto valPairs =
      fitness::buildPairs(dc, 300, fitness::BalanceMetric::CF, rng);

  auto rankModel = harness::buildModel(config, fitness::HeadKind::Regression);
  fitness::RankTrainConfig rc;
  rc.epochs = config.trainConfig.epochs / 2 + 1;
  rc.learningRate = config.trainConfig.learningRate;
  fitness::RankTrainer trainer(rc);
  std::fprintf(stderr, "[ranking] training RankNet...\n");
  trainer.train(*rankModel, trainPairs, valPairs,
                [](const fitness::RankEpochStats& e) {
                  std::fprintf(stderr,
                               "[ranking]   epoch %zu: loss %.4f acc %.3f\n",
                               e.epoch, e.trainLoss, e.valPairAccuracy);
                });

  const double rankAcc =
      fitness::RankTrainer::pairAccuracy(*rankModel, valPairs);
  const double absAcc = classifierPairAccuracy(*models.cf, valPairs);

  util::Table table({"Ordering source", "Pair accuracy"});
  table.newRow().add("Absolute fitness (f_CF expectation)").addPercent(absAcc, 1);
  table.newRow().add("Relative-ordering RankNet").addPercent(rankAcc, 1);
  bench::emit(table, args, "ablation_ranking.csv");
  return 0;
}
