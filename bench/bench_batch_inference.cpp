// Scalar vs population-batched fitness scoring throughput.
//
// Reproduces the GA's actual hot loop: a population evolves by breeding for
// a number of generations, and every generation is graded twice — once with
// per-gene FitnessFunction::score calls (the old path) and once with one
// scoreBatch call (the batched pipeline). Gene execution (the interpreter)
// is excluded from both timings; this isolates NN scoring throughput.
//
//   $ ./bench_batch_inference [--population=100] [--generations=30]
//                             [--length=5] [--seed=2021]
#include <cstdio>
#include <deque>
#include <vector>

#include "core/ga.hpp"
#include "dsl/generator.hpp"
#include "fitness/model.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsyn;

namespace {

struct GradedPopulation {
  std::vector<dsl::Program> genes;
  std::vector<std::vector<dsl::ExecResult>> runs;  // per gene, per example
};

GradedPopulation execute(const std::vector<dsl::Program>& genes,
                         const dsl::Spec& spec) {
  GradedPopulation out;
  out.genes = genes;
  out.runs.reserve(genes.size());
  for (const auto& g : genes) {
    std::vector<dsl::ExecResult> runs;
    runs.reserve(spec.size());
    for (const auto& ex : spec.examples) runs.push_back(dsl::run(g, ex.inputs));
    out.runs.push_back(std::move(runs));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto population =
      static_cast<std::size_t>(args.getInt("population", 100));
  const auto generations =
      static_cast<std::size_t>(args.getInt("generations", 30));
  const auto length = static_cast<std::size_t>(args.getInt("length", 5));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2021));
  if (population == 0 || generations == 0) {
    std::fprintf(stderr, "--population and --generations must be > 0\n");
    return 1;
  }

  fitness::NnffConfig mc;
  mc.encoder = {.vmax = 64, .maxValueTokens = 8};
  mc.embedDim = 16;
  mc.hiddenDim = 24;
  mc.maxExamples = 3;
  mc.head = fitness::HeadKind::Classifier;
  auto model = std::make_shared<fitness::NnffModel>(mc);
  fitness::NeuralFitness fitness(model, "NN_CF");

  util::Rng rng(seed);
  const dsl::Generator gen;
  const auto tc = gen.randomTestCase(length, 5, false, rng);
  if (!tc) {
    std::fprintf(stderr, "could not generate a test case\n");
    return 1;
  }
  const dsl::InputSignature sig = tc->spec.signature();

  std::printf("=== bench_batch_inference ===\n");
  std::printf("population=%zu generations=%zu length=%zu hidden=%zu\n\n",
              population, generations, length, mc.hiddenDim);

  // Initial random population.
  std::vector<dsl::Program> genes;
  genes.reserve(population);
  for (std::size_t i = 0; i < population; ++i)
    genes.push_back(*gen.randomProgram(length, sig, rng));

  double scalarSeconds = 0.0;
  double batchSeconds = 0.0;
  std::size_t graded = 0;
  core::GaConfig gaConfig;
  gaConfig.populationSize = population;

  for (std::size_t g = 0; g < generations; ++g) {
    const GradedPopulation pop = execute(genes, tc->spec);
    std::deque<fitness::EvalContext> store;
    std::vector<const fitness::EvalContext*> contexts;
    std::vector<const dsl::Program*> genePtrs;
    for (std::size_t b = 0; b < pop.genes.size(); ++b) {
      store.push_back(fitness::EvalContext{tc->spec, pop.runs[b]});
      contexts.push_back(&store.back());
      genePtrs.push_back(&pop.genes[b]);
    }

    util::Timer scalarTimer;
    std::vector<double> scalarScores;
    scalarScores.reserve(pop.genes.size());
    for (std::size_t b = 0; b < pop.genes.size(); ++b)
      scalarScores.push_back(fitness.score(pop.genes[b], *contexts[b]));
    scalarSeconds += scalarTimer.seconds();

    util::Timer batchTimer;
    const auto batchScores = fitness.scoreBatch(genePtrs, contexts);
    batchSeconds += batchTimer.seconds();

    graded += pop.genes.size();

    // Evolve with the batched scores so later generations look like the
    // GA's real workload (shared ancestry, recurring trace values).
    core::Population scored;
    for (std::size_t b = 0; b < pop.genes.size(); ++b)
      scored.push_back(core::Individual{pop.genes[b], batchScores[b]});
    genes = core::breed(scored, gaConfig, sig, gen, rng, nullptr);
  }

  const double scalarRate = static_cast<double>(graded) / scalarSeconds;
  const double batchRate = static_cast<double>(graded) / batchSeconds;
  std::printf("scalar  score():     %8.0f genes/sec (%.3fs for %zu)\n",
              scalarRate, scalarSeconds, graded);
  std::printf("batched scoreBatch:  %8.0f genes/sec (%.3fs for %zu)\n",
              batchRate, batchSeconds, graded);
  std::printf("speedup:             %8.2fx\n", batchRate / scalarRate);

  // Machine-readable record so CI can track the NN-scoring perf trajectory.
  const std::string jsonPath = args.getString("json", "BENCH_nn.json");
  if (!jsonPath.empty()) {
    if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\": \"nn_scoring\", \"population\": %zu, "
                   "\"generations\": %zu, \"length\": %zu, \"graded\": %zu, "
                   "\"scalar_genes_per_sec\": %.1f, "
                   "\"batched_genes_per_sec\": %.1f, \"speedup\": %.3f}\n",
                   population, generations, length, graded, scalarRate,
                   batchRate, batchRate / scalarRate);
      std::fclose(f);
      std::printf("[json written to %s]\n", jsonPath.c_str());
    }
  }
  return 0;
}
