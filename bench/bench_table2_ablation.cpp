// Reproduces Table 2: NetSyn component ablation with the f_CF fitness.
//
//   GA + f_CF
//   GA + f_CF + NS_BFS
//   GA + f_CF + NS_DFS
//   GA + f_CF + Mutation_FP
//   GA + f_CF + NS_BFS + Mutation_FP
//
// Columns follow the paper: programs synthesized, average generations (on
// synthesized programs), and average synthesis rate over the K runs.
//
// Paper shape to verify: each component helps; BFS-based NS slightly beats
// DFS-based NS; the combined configuration synthesizes the most programs in
// the fewest generations at the highest rate.
#include "bench_common.hpp"
#include "fitness/neural_fitness.hpp"

using namespace netsyn;

namespace {

struct AblationSetting {
  const char* label;
  bool ns;
  core::NsKind nsKind;
  bool mutationFp;
};

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  if (!args.has("programs-per-length")) config.programsPerLength = 6;
  // Table 2 uses length-5 programs.
  if (!args.has("lengths")) config.programLengths = {5};
  bench::banner("Table 2: NetSyn component ablation (f_CF)", config);

  const auto models = harness::loadOrTrainAll(config);
  auto fpProvider = std::make_shared<fitness::ProbMapFitness>(models.fp);
  const auto workload =
      harness::makeWorkload(config, config.programLengths.front());

  const AblationSetting settings[] = {
      {"GA+fCF", false, core::NsKind::BFS, false},
      {"GA+fCF+NS_BFS", true, core::NsKind::BFS, false},
      {"GA+fCF+NS_DFS", true, core::NsKind::DFS, false},
      {"GA+fCF+Mutation_FP", false, core::NsKind::BFS, true},
      {"GA+fCF+NS_BFS+Mutation_FP", true, core::NsKind::BFS, true},
  };

  util::Table table({"Approach", "Programs Synthesized", "Avg Generation",
                     "Avg Syn. Rate"});
  for (const auto& s : settings) {
    core::SynthesizerConfig sc = config.synthesizer;
    sc.useNeighborhoodSearch = s.ns;
    sc.nsKind = s.nsKind;
    sc.fpGuidedMutation = s.mutationFp;
    baselines::SynthesizerMethod method(
        s.label, sc,
        std::make_shared<fitness::NeuralFitness>(models.cf, "NN_CF"),
        s.mutationFp ? fpProvider : nullptr);
    const auto report =
        harness::runMethod(method, workload, config, /*verbose=*/false);
    std::size_t synthesized = 0;
    for (const auto& p : report.programs)
      synthesized += p.synthesized() ? 1 : 0;
    table.newRow()
        .add(s.label)
        .addInt(static_cast<long>(synthesized))
        .addDouble(report.meanGenerations(), 0)
        .addPercent(report.meanSynthesisRate(), 0);
    std::fprintf(stderr, "[table2] %s done\n", s.label);
  }
  bench::emit(table, args, "table2_ablation.csv");
  return 0;
}
