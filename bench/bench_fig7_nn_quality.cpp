// Reproduces Figure 7: quality of the neural fitness functions on held-out
// validation data.
//   (a) confusion matrix of the f_CF classifier
//   (b) confusion matrix of the f_LCS classifier
//   (c) f_FP accuracy over training epochs
//
// Paper shape to verify: the classifiers are strong on the extreme classes
// (score <= 1 and score >= 4, i.e. "mostly wrong" and "close enough") and
// weak mid-range; the FP model's accuracy climbs toward ~0.9 and plateaus.
#include "bench_common.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  bench::banner("Figure 7: NN fitness-function quality", config);

  const auto models = harness::loadOrTrainAll(config);
  fitness::Trainer cfTrainer(
      [&] {
        auto tc = config.trainConfig;
        tc.labelMetric = fitness::BalanceMetric::CF;
        return tc;
      }());
  fitness::Trainer lcsTrainer(
      [&] {
        auto tc = config.trainConfig;
        tc.labelMetric = fitness::BalanceMetric::LCS;
        return tc;
      }());

  const auto valCf = harness::buildCorpus(config, config.validationPrograms,
                                          fitness::BalanceMetric::CF,
                                          config.seed + 31);
  const auto valLcs = harness::buildCorpus(config, config.validationPrograms,
                                           fitness::BalanceMetric::LCS,
                                           config.seed + 31);

  const auto cfCm = cfTrainer.confusion(*models.cf, valCf);
  std::printf("(a) f_CF confusion matrix (row-normalized, %zu samples):\n%s",
              valCf.size(), cfCm.toString().c_str());
  std::printf("    accuracy %.3f, within-1 %.3f, extremes(0-1,4-5) "
              "within-1 behaviour shown above\n\n",
              cfCm.accuracy(), cfCm.withinK(1));

  const auto lcsCm = lcsTrainer.confusion(*models.lcs, valLcs);
  std::printf("(b) f_LCS confusion matrix (row-normalized, %zu samples):\n%s",
              valLcs.size(), lcsCm.toString().c_str());
  std::printf("    accuracy %.3f, within-1 %.3f\n\n", lcsCm.accuracy(),
              lcsCm.withinK(1));

  // (c) FP accuracy per epoch: retrain a fresh FP model so the trajectory is
  // observable (the cached model only has final weights).
  auto epochsCfg = config;
  if (!args.has("train-programs"))
    epochsCfg.trainingPrograms = std::min<std::size_t>(
        config.trainingPrograms, 2000);
  auto fpModel =
      harness::buildModel(epochsCfg, fitness::HeadKind::Multilabel);
  const auto fpTrain =
      harness::buildCorpus(epochsCfg, epochsCfg.trainingPrograms,
                           fitness::BalanceMetric::CF, epochsCfg.seed + 57);
  const auto fpVal =
      harness::buildCorpus(epochsCfg, epochsCfg.validationPrograms,
                           fitness::BalanceMetric::CF, epochsCfg.seed + 71);
  util::Table epochTable({"epoch", "train loss", "val loss", "val accuracy"});
  fitness::Trainer fpTrainer(epochsCfg.trainConfig);
  fpTrainer.train(*fpModel, fpTrain, fpVal, [&](const fitness::EpochStats& e) {
    epochTable.newRow()
        .addInt(static_cast<long>(e.epoch))
        .addDouble(e.trainLoss, 4)
        .addDouble(e.valLoss, 4)
        .addDouble(e.valAccuracy, 4);
  });
  std::printf("(c) f_FP accuracy over epochs (%zu training programs):\n",
              epochsCfg.trainingPrograms);
  bench::emit(epochTable, args, "fig7_fp_epochs.csv");
  return 0;
}
