// Island-count scaling smoke: solved programs per second vs K islands at a
// fixed global candidate budget.
//
// Every K uses the same workload, the same per-run seeds, and the same
// budget-ledger semantics, so the sweep isolates exactly two effects:
// thread-level parallelism across islands (wall-clock) and the search-
// quality effect of migration + sub-population diversity (solve counts).
// Uses the edit-distance fitness so the bench needs no trained models.
//
//   $ ./bench_islands [--programs=6] [--length=4] [--examples=3]
//                     [--budget=4000] [--migration-interval=5]
//                     [--migration-size=2] [--seed=2021]
//                     [--json=BENCH_islands.json]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "dsl/generator.hpp"
#include "fitness/edit.hpp"
#include "util/argparse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  const auto programs = static_cast<std::size_t>(args.getInt("programs", 6));
  const auto length = static_cast<std::size_t>(args.getInt("length", 4));
  const auto examples = static_cast<std::size_t>(args.getInt("examples", 3));
  const auto budget = static_cast<std::size_t>(args.getInt("budget", 4000));
  const auto migInterval =
      static_cast<std::size_t>(args.getInt("migration-interval", 5));
  const auto migSize =
      static_cast<std::size_t>(args.getInt("migration-size", 2));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed", 2021));
  if (programs == 0 || length == 0 || examples == 0 || budget == 0) {
    std::fprintf(stderr, "--programs/--length/--examples/--budget must be > 0\n");
    return 1;
  }

  // Shared workload: half singleton, half list targets.
  util::Rng wlRng(seed);
  const dsl::Generator gen;
  std::vector<dsl::Generator::TestCase> cases;
  for (std::size_t p = 0; p < programs; ++p) {
    auto tc = gen.randomTestCase(length, examples, p < programs / 2, wlRng);
    if (!tc) {
      std::fprintf(stderr, "could not generate test case %zu\n", p);
      return 1;
    }
    cases.push_back(std::move(*tc));
  }

  std::printf("=== bench_islands ===\n");
  std::printf("programs=%zu length=%zu examples=%zu budget=%zu\n\n", programs,
              length, examples, budget);

  struct Row {
    std::size_t islands = 0;
    std::size_t solved = 0;
    double seconds = 0.0;
    std::size_t evals = 0;
    std::size_t migrations = 0;
  };
  std::vector<Row> rows;

  for (const std::size_t k : {1u, 2u, 4u, 8u}) {
    core::SynthesizerConfig sc;
    sc.ga.populationSize = 24;
    sc.ga.eliteCount = 2;
    sc.maxGenerations = 2000;
    sc.nsTopN = 2;
    sc.nsWindow = 6;
    sc.strategy = core::SearchStrategy::Islands;
    sc.islands.count = k;
    sc.islands.migrationInterval = migInterval;
    sc.islands.migrationSize = migSize;

    const core::IslandFitnessFactory factory = [](std::size_t) {
      return core::IslandFitness{
          std::make_shared<fitness::EditDistanceFitness>(), nullptr};
    };
    const core::Synthesizer syn(
        sc, std::make_shared<fitness::EditDistanceFitness>(), nullptr,
        factory);

    Row row;
    row.islands = k;
    util::Timer timer;
    for (std::size_t p = 0; p < cases.size(); ++p) {
      util::Rng rng(seed ^ (p * 0x9e3779b97f4a7c15ULL) ^ 0xbeef);
      const auto result =
          syn.synthesize(cases[p].spec, length, budget, rng);
      row.solved += result.found ? 1 : 0;
      row.evals += result.candidatesSearched;
      for (const auto& s : result.islandStats) row.migrations += s.immigrants;
    }
    row.seconds = timer.seconds();
    rows.push_back(row);

    std::printf(
        "K=%zu  solved=%2zu/%zu  %7.3fs  %8.2f solved/sec  evals=%8zu  "
        "migrations=%5zu\n",
        k, row.solved, cases.size(), row.seconds,
        row.seconds > 0 ? static_cast<double>(row.solved) / row.seconds : 0.0,
        row.evals, row.migrations);
  }

  const std::string jsonPath = args.getString("json", "BENCH_islands.json");
  if (!jsonPath.empty()) {
    if (std::FILE* f = std::fopen(jsonPath.c_str(), "w")) {
      std::fprintf(f,
                   "{\"bench\": \"islands\", \"programs\": %zu, "
                   "\"length\": %zu, \"examples\": %zu, \"budget\": %zu, "
                   "\"sweep\": [",
                   programs, length, examples, budget);
      for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        std::fprintf(f,
                     "%s{\"islands\": %zu, \"solved\": %zu, "
                     "\"seconds\": %.4f, \"solved_per_sec\": %.3f, "
                     "\"evals\": %zu, \"migrations\": %zu}",
                     i ? ", " : "", r.islands, r.solved, r.seconds,
                     r.seconds > 0
                         ? static_cast<double>(r.solved) / r.seconds
                         : 0.0,
                     r.evals, r.migrations);
      }
      std::fprintf(f, "]}\n");
      std::fclose(f);
      std::printf("\n[json written to %s]\n", jsonPath.c_str());
    }
  }
  return 0;
}
