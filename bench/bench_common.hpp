// Shared helpers for the paper-reproduction bench binaries.
//
// Every bench is runnable with no arguments at "ci" scale (minutes on one
// core) and accepts --scale=paper plus the individual overrides documented
// in harness/config.hpp. Results print as aligned tables; pass
// --csv=<path> to also write CSV.
#pragma once

#include <cstdio>
#include <string>

#include "harness/config.hpp"
#include "harness/models.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "util/argparse.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace netsyn::bench {

inline void banner(const char* title, const harness::ExperimentConfig& cfg) {
  std::printf("=== %s ===\n", title);
  std::printf(
      "scale=%s budget=%zu runs/program=%zu programs/length=%zu seed=%llu\n",
      cfg.scaleName.c_str(), cfg.searchBudget, cfg.runsPerProgram,
      cfg.programsPerLength,
      static_cast<unsigned long long>(cfg.seed));
  std::printf(
      "(paper constants: budget=3,000,000 K=10 programs/length=100; run "
      "with --scale=paper)\n\n");
}

inline void emit(const util::Table& table, const util::ArgParse& args,
                 const std::string& defaultCsvName) {
  std::printf("%s\n", table.toString().c_str());
  const std::string csv = args.getString("csv", "");
  if (!csv.empty()) {
    table.writeCsv(csv);
    std::printf("[csv written to %s]\n", csv.c_str());
  }
  (void)defaultCsvName;
}

}  // namespace netsyn::bench
