// bench_gate — the CI perf-regression gate over the bench JSON records.
//
// Compares a fresh bench record against its committed snapshot in
// bench/baselines/ and exits nonzero when any gated metric (genes/sec,
// solve counts) regresses past the tolerance. The comparison prints as a
// markdown table; pass --summary=$GITHUB_STEP_SUMMARY to also append it to
// the job summary.
//
// Usage:
//   bench_gate --baseline=bench/baselines/BENCH_interpreter.json \
//              --fresh=BENCH_interpreter.json [--tolerance=0.15] \
//              [--summary=path]
//   bench_gate --baseline=... --self-test [--tolerance=0.15]
//
// --self-test proves the gate can fail: it injects a synthetic 20%
// regression into every gated metric of the baseline and verifies the gate
// trips (and that the unmodified baseline passes). Exit codes: 0 pass,
// 1 regression (or self-test failure), 2 usage/IO error.
//
// Refreshing baselines intentionally (after a deliberate perf change): run
// the bench-smoke commands from .github/workflows/ci.yml and copy the fresh
// BENCH_*.json over bench/baselines/ in the same PR that changes the perf.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/argparse.hpp"
#include "util/benchcmp.hpp"

namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace netsyn;
  try {
    const util::ArgParse args(argc, argv);
    const std::string baselinePath = args.getString("baseline", "");
    const double tolerance = args.getDouble("tolerance", 0.15);
    if (baselinePath.empty()) {
      std::fprintf(stderr, "bench_gate: --baseline is required\n");
      return 2;
    }
    const std::string baseline = readFile(baselinePath);

    if (args.getBool("self-test", false)) {
      // The gate must pass on identity...
      util::BenchComparison same =
          util::compareBenchRecords(baseline, baseline);
      if (same.anyRegression(tolerance)) {
        std::fprintf(stderr, "self-test FAILED: identity comparison "
                             "reported a regression\n");
        return 1;
      }
      // ...and fail once every gated metric loses 20%.
      util::BenchComparison injected = same;
      for (util::BenchDelta& d : injected.rows)
        if (d.gated) d.fresh = d.baseline * 0.8;
      const std::string table = util::renderMarkdown(injected, tolerance);
      std::printf("%s\n", table.c_str());
      const std::string summaryPath = args.getString("summary", "");
      if (!summaryPath.empty()) {
        std::ofstream summary(summaryPath, std::ios::app);
        summary << "self-test (synthetic 20% regression, must trip):\n\n"
                << table << "\n";
      }
      if (!injected.anyRegression(tolerance)) {
        std::fprintf(stderr, "self-test FAILED: injected 20%% regression "
                             "passed the %.0f%% gate\n", tolerance * 100.0);
        return 1;
      }
      std::printf("self-test OK: injected 20%% regression trips the gate, "
                  "identity passes\n");
      return 0;
    }

    const std::string freshPath = args.getString("fresh", "");
    if (freshPath.empty()) {
      std::fprintf(stderr, "bench_gate: --fresh is required\n");
      return 2;
    }
    const util::BenchComparison cmp =
        util::compareBenchRecords(baseline, readFile(freshPath));
    const std::string table = util::renderMarkdown(cmp, tolerance);
    std::printf("%s\n", table.c_str());

    const std::string summaryPath = args.getString("summary", "");
    if (!summaryPath.empty()) {
      std::ofstream summary(summaryPath, std::ios::app);
      summary << table << "\n";
    }

    if (cmp.anyRegression(tolerance)) {
      std::fprintf(stderr,
                   "bench_gate: REGRESSION in %s beyond %.0f%% — if this "
                   "perf change is intentional, refresh "
                   "bench/baselines/ (see bench_gate.cpp header)\n",
                   cmp.bench.c_str(), tolerance * 100.0);
      return 1;
    }
    std::printf("bench_gate: %s within %.0f%% of baseline\n",
                cmp.bench.c_str(), tolerance * 100.0);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_gate: %s\n", e.what());
    return 2;
  }
}
