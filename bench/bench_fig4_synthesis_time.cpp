// Reproduces Figure 4(g)-(i) and Table 3: wall-clock time needed to
// synthesize 10%..100% of the test programs, per method and length.
//
// Paper shape to verify: the guided-enumeration baselines find their (fewer)
// solutions faster than NetSyn, whose goal is fewer candidates rather than
// wall-clock speed; the Oracle is near-instant; synthesis time grows with
// program length.
#include "bench_common.hpp"

using namespace netsyn;

int main(int argc, char** argv) {
  const util::ArgParse args(argc, argv);
  auto config = harness::ExperimentConfig::fromArgs(args);
  // Slightly smaller default workload than the search-space bench: the
  // metric here is wall-clock, so fewer repetitions suffice.
  if (!args.has("programs-per-length")) config.programsPerLength = 6;
  bench::banner("Figure 4(g-i) / Table 3: synthesis time (seconds)", config);

  const auto models = harness::loadOrTrainAll(config);
  const auto factories = harness::makeAllMethodFactories(config, models);

  for (const std::size_t length : config.programLengths) {
    const auto workload = harness::makeWorkload(config, length);
    std::printf("-- program length %zu (%zu programs) --\n", length,
                workload.size());
    util::Table table(harness::percentileHeader("secs"));
    for (const auto& factory : factories) {
      const auto report =
          harness::runMethod(factory, workload, config, /*verbose=*/false);
      harness::appendPercentileRow(table, report, /*useTime=*/true);
      std::fprintf(stderr, "[fig4-time] len %zu: %s done\n", length,
                   report.method.c_str());
    }
    bench::emit(table, args, "fig4_synthesis_time.csv");
  }
  return 0;
}
