#include "harness/config.hpp"

#include <sstream>
#include <stdexcept>

namespace netsyn::harness {
namespace {

ExperimentConfig ciScale() {
  ExperimentConfig cfg;
  cfg.scaleName = "ci";
  cfg.programLengths = {4, 5};
  cfg.programsPerLength = 8;
  cfg.examplesPerProgram = 5;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = 10000;

  cfg.trainingPrograms = 8000;
  cfg.validationPrograms = 400;
  cfg.trainingLength = 5;

  cfg.modelConfig.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.modelConfig.embedDim = 16;
  cfg.modelConfig.hiddenDim = 24;
  cfg.modelConfig.numClasses = 6;  // labels 0..5 for length-5 training
  cfg.modelConfig.maxExamples = 3;
  cfg.modelConfig.seed = 12345;

  cfg.trainConfig.epochs = 8;
  cfg.trainConfig.batchSize = 8;
  cfg.trainConfig.learningRate = 1e-2f;

  cfg.synthesizer.ga.populationSize = 40;
  cfg.synthesizer.ga.eliteCount = 4;
  cfg.synthesizer.maxGenerations = 4000;
  cfg.synthesizer.nsTopN = 3;
  cfg.synthesizer.nsWindow = 8;
  return cfg;
}

ExperimentConfig paperScale() {
  ExperimentConfig cfg = ciScale();
  cfg.scaleName = "paper";
  cfg.programLengths = {5, 7, 10};
  cfg.programsPerLength = 100;
  cfg.examplesPerProgram = 5;
  cfg.runsPerProgram = 10;       // K = 10 (§5)
  cfg.searchBudget = 3000000;    // 3M candidates (§5)

  cfg.trainingPrograms = 4200000;  // §5
  cfg.validationPrograms = 20000;

  cfg.modelConfig.encoder = {.vmax = 128, .maxValueTokens = 12};
  cfg.modelConfig.embedDim = 32;
  cfg.modelConfig.hiddenDim = 64;
  cfg.modelConfig.maxExamples = 5;

  cfg.trainConfig.epochs = 40;  // Figure 7(c) trains ~40 epochs
  cfg.trainConfig.learningRate = 1e-3f;

  cfg.synthesizer.ga.populationSize = 100;  // Appendix B
  cfg.synthesizer.ga.eliteCount = 5;
  cfg.synthesizer.maxGenerations = 30000;
  cfg.synthesizer.nsTopN = 5;
  cfg.synthesizer.nsWindow = 10;
  return cfg;
}

std::vector<std::size_t> parseLengths(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const long v = std::stol(item);
    if (v <= 0) throw std::invalid_argument("program length must be > 0");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) throw std::invalid_argument("--lengths needs a value");
  return out;
}

}  // namespace

ExperimentConfig ExperimentConfig::forScale(const std::string& scale) {
  if (scale == "ci") return ciScale();
  if (scale == "paper") return paperScale();
  throw std::invalid_argument("unknown scale '" + scale +
                              "' (expected ci or paper)");
}

ExperimentConfig ExperimentConfig::fromArgs(const util::ArgParse& args) {
  ExperimentConfig cfg = forScale(args.getString("scale", "ci"));
  cfg.searchBudget = static_cast<std::size_t>(
      args.getInt("budget", static_cast<long>(cfg.searchBudget)));
  cfg.runsPerProgram = static_cast<std::size_t>(
      args.getInt("runs", static_cast<long>(cfg.runsPerProgram)));
  cfg.programsPerLength = static_cast<std::size_t>(args.getInt(
      "programs-per-length", static_cast<long>(cfg.programsPerLength)));
  cfg.trainingPrograms = static_cast<std::size_t>(args.getInt(
      "train-programs", static_cast<long>(cfg.trainingPrograms)));
  cfg.trainConfig.epochs = static_cast<std::size_t>(
      args.getInt("epochs", static_cast<long>(cfg.trainConfig.epochs)));
  cfg.workers = static_cast<std::size_t>(
      args.getInt("workers", static_cast<long>(cfg.workers)));
  cfg.seed = static_cast<std::uint64_t>(
      args.getInt("seed", static_cast<long>(cfg.seed)));
  cfg.modelDir = args.getString("model-dir", cfg.modelDir);
  if (args.has("lengths"))
    cfg.programLengths = parseLengths(args.getString("lengths", ""));
  return cfg;
}

}  // namespace netsyn::harness
