#include "harness/config.hpp"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace netsyn::harness {
namespace {

using util::JsonValue;
using util::escapeJson;
using util::jsonUnsigned;
using util::readBool;
using util::readDouble;
using util::readSize;
using util::readString;
using util::readU64;

ExperimentConfig ciScale() {
  ExperimentConfig cfg;
  cfg.scaleName = "ci";
  cfg.programLengths = {4, 5};
  cfg.programsPerLength = 8;
  cfg.examplesPerProgram = 5;
  cfg.runsPerProgram = 2;
  cfg.searchBudget = 10000;

  cfg.trainingPrograms = 8000;
  cfg.validationPrograms = 400;
  cfg.trainingLength = 5;

  cfg.modelConfig.encoder = {.vmax = 64, .maxValueTokens = 8};
  cfg.modelConfig.embedDim = 16;
  cfg.modelConfig.hiddenDim = 24;
  cfg.modelConfig.numClasses = 6;  // labels 0..5 for length-5 training
  cfg.modelConfig.maxExamples = 3;
  cfg.modelConfig.seed = 12345;

  cfg.trainConfig.epochs = 8;
  cfg.trainConfig.batchSize = 8;
  cfg.trainConfig.learningRate = 1e-2f;

  cfg.synthesizer.ga.populationSize = 40;
  cfg.synthesizer.ga.eliteCount = 4;
  cfg.synthesizer.maxGenerations = 4000;
  cfg.synthesizer.nsTopN = 3;
  cfg.synthesizer.nsWindow = 8;
  return cfg;
}

ExperimentConfig paperScale() {
  ExperimentConfig cfg = ciScale();
  cfg.scaleName = "paper";
  cfg.programLengths = {5, 7, 10};
  cfg.programsPerLength = 100;
  cfg.examplesPerProgram = 5;
  cfg.runsPerProgram = 10;       // K = 10 (§5)
  cfg.searchBudget = 3000000;    // 3M candidates (§5)

  cfg.trainingPrograms = 4200000;  // §5
  cfg.validationPrograms = 20000;

  cfg.modelConfig.encoder = {.vmax = 128, .maxValueTokens = 12};
  cfg.modelConfig.embedDim = 32;
  cfg.modelConfig.hiddenDim = 64;
  cfg.modelConfig.maxExamples = 5;

  cfg.trainConfig.epochs = 40;  // Figure 7(c) trains ~40 epochs
  cfg.trainConfig.learningRate = 1e-3f;

  cfg.synthesizer.ga.populationSize = 100;  // Appendix B
  cfg.synthesizer.ga.eliteCount = 5;
  cfg.synthesizer.maxGenerations = 30000;
  cfg.synthesizer.nsTopN = 5;
  cfg.synthesizer.nsWindow = 10;
  return cfg;
}

std::vector<std::size_t> parseLengths(const std::string& text) {
  std::vector<std::size_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    // Range-checked parse: std::stol would throw bare std::invalid_argument
    // / std::out_of_range on junk like "5x" or "99999999999999999999999",
    // which surfaces as an unhelpful terminate in tools without a top-level
    // handler. Name the flag and the offending item instead.
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0')
      throw std::invalid_argument("--lengths: '" + item +
                                  "' is not a number");
    if (errno == ERANGE || v <= 0)
      throw std::invalid_argument(
          "--lengths: '" + item + "' is out of range (lengths must be > 0)");
    out.push_back(static_cast<std::size_t>(v));
  }
  if (out.empty()) throw std::invalid_argument("--lengths needs a value");
  return out;
}

core::Topology parseTopology(const std::string& name) {
  if (name == "ring") return core::Topology::Ring;
  if (name == "full" || name == "fully-connected")
    return core::Topology::FullyConnected;
  throw std::invalid_argument("unknown topology '" + name +
                              "' (expected ring or full)");
}

const char* topologyName(core::Topology t) {
  return t == core::Topology::Ring ? "ring" : "full";
}

// The JSON parser and typed readers live in util/json.{hpp,cpp} — shared
// with the synthesis-service protocol and the bench regression gate.
// Unknown keys are ignored by the loaders so configs stay
// forward-compatible across PRs.

}  // namespace

ExperimentConfig ExperimentConfig::forScale(const std::string& scale) {
  if (scale == "ci") return ciScale();
  if (scale == "paper") return paperScale();
  throw std::invalid_argument("unknown scale '" + scale +
                              "' (expected ci or paper)");
}

const dsl::Domain& ExperimentConfig::domain() const {
  const dsl::Domain* d = dsl::findDomain(domainName);
  if (!d)
    throw std::invalid_argument("unknown domain '" + domainName +
                                "' (expected one of: " +
                                dsl::knownDomainNames() + ")");
  return *d;
}

void ExperimentConfig::applyDomain() {
  const dsl::Domain& d = domain();  // validates the name
  if (d.name == "list") {
    // The list domain is the historical default: leave every knob exactly
    // as the scale preset set it (generator.domain stays null, which the
    // whole engine treats as "list"). test_domain_parity separately pins
    // that an *explicit* list-domain pointer changes nothing.
    return;
  }
  synthesizer.generator = d.makeGeneratorConfig();
  modelConfig.domain = &d;
  modelConfig.encoder.vmax = d.tokenVmax;
  modelConfig.encoder.maxValueTokens = d.maxValueTokens;
}

ExperimentConfig ExperimentConfig::fromArgs(const util::ArgParse& args) {
  // --config-file=PATH seeds the config from a toJson() document (the
  // fleet coordinator and synth_client hand configs around this way);
  // individual flags still override field-wise below. The file records its
  // own scale, so combining it with an explicit --scale is ambiguous.
  const bool fromFile = args.has("config-file");
  ExperimentConfig cfg;
  if (fromFile) {
    if (args.has("scale"))
      throw std::invalid_argument(
          "--config-file and --scale are mutually exclusive (the file "
          "records its scale)");
    const std::string path = args.getString("config-file", "");
    std::ifstream in(path);
    if (!in)
      throw std::invalid_argument("cannot read --config-file " + path);
    std::ostringstream text;
    text << in.rdbuf();
    cfg = fromJson(text.str());
  } else {
    cfg = forScale(args.getString("scale", "ci"));
  }
  if (!fromFile || args.has("domain")) {
    cfg.domainName = args.getString("domain", cfg.domainName);
    cfg.applyDomain();  // validates --domain and re-seeds domain knobs
  }
  cfg.searchBudget = static_cast<std::size_t>(
      args.getInt("budget", static_cast<long>(cfg.searchBudget)));
  cfg.runsPerProgram = static_cast<std::size_t>(
      args.getInt("runs", static_cast<long>(cfg.runsPerProgram)));
  cfg.programsPerLength = static_cast<std::size_t>(args.getInt(
      "programs-per-length", static_cast<long>(cfg.programsPerLength)));
  cfg.trainingPrograms = static_cast<std::size_t>(args.getInt(
      "train-programs", static_cast<long>(cfg.trainingPrograms)));
  cfg.trainConfig.epochs = static_cast<std::size_t>(
      args.getInt("epochs", static_cast<long>(cfg.trainConfig.epochs)));
  cfg.workers = static_cast<std::size_t>(
      args.getInt("workers", static_cast<long>(cfg.workers)));
  cfg.seed = static_cast<std::uint64_t>(
      args.getInt("seed", static_cast<long>(cfg.seed)));
  cfg.modelDir = args.getString("model-dir", cfg.modelDir);
  if (args.has("lengths"))
    cfg.programLengths = parseLengths(args.getString("lengths", ""));
  // --simd=false forces the scalar executor (ablation / oracle runs);
  // results are identical, only throughput changes.
  cfg.synthesizer.simdExecutor =
      args.getBool("simd", cfg.synthesizer.simdExecutor);

  // ---- island strategy ----
  // Negative values would wrap through size_t into "never migrate"-sized
  // numbers; reject them like --islands=0 instead of silently changing the
  // search.
  const auto nonNegative = [&args](const char* flag, std::size_t fallback) {
    const long v = args.getInt(flag, static_cast<long>(fallback));
    if (v < 0)
      throw std::invalid_argument(std::string("--") + flag +
                                  " must be >= 0");
    return static_cast<std::size_t>(v);
  };
  core::IslandsConfig& is = cfg.synthesizer.islands;
  if (args.has("islands")) {
    const long k = args.getInt("islands", 1);
    if (k <= 0) throw std::invalid_argument("--islands must be > 0");
    is.count = static_cast<std::size_t>(k);
    cfg.synthesizer.strategy = core::SearchStrategy::Islands;
  }
  is.migrationInterval = nonNegative("migration-interval",
                                     is.migrationInterval);
  is.migrationSize = nonNegative("migration-size", is.migrationSize);
  if (args.has("topology"))
    is.topology = parseTopology(args.getString("topology", "ring"));
  is.threads = nonNegative("island-threads", is.threads);
  is.heterogeneous = args.getBool("island-hetero", is.heterogeneous);
  // Combined parallelism: when the experiment runner already fans out over
  // worker threads, default each run's island gang to one thread so the two
  // levels do not multiply into workers x K threads on the same cores.
  // An explicit --island-threads still wins; results are identical either
  // way (thread count never affects island results).
  if (cfg.workers != 1 && !args.has("island-threads")) is.threads = 1;
  return cfg;
}

std::string ExperimentConfig::toJson() const {
  std::ostringstream os;
  os.precision(17);  // doubles survive the round trip exactly
  os << "{";
  os << "\"scale\": \"" << escapeJson(scaleName) << "\"";
  os << ", \"domain\": \"" << escapeJson(domainName) << "\"";
  os << ", \"program_lengths\": [";
  for (std::size_t i = 0; i < programLengths.size(); ++i)
    os << (i ? ", " : "") << programLengths[i];
  os << "]";
  os << ", \"programs_per_length\": " << programsPerLength;
  os << ", \"examples_per_program\": " << examplesPerProgram;
  os << ", \"runs_per_program\": " << runsPerProgram;
  os << ", \"search_budget\": " << searchBudget;
  os << ", \"training_programs\": " << trainingPrograms;
  os << ", \"validation_programs\": " << validationPrograms;
  os << ", \"training_length\": " << trainingLength;
  os << ", \"training\": {";
  os << "\"epochs\": " << trainConfig.epochs;
  os << ", \"batch_size\": " << trainConfig.batchSize;
  os << ", \"learning_rate\": " << trainConfig.learningRate;
  os << "}";
  os << ", \"workers\": " << workers;
  os << ", \"seed\": " << seed;
  os << ", \"model_dir\": \"" << escapeJson(modelDir) << "\"";
  os << ", \"synthesizer\": {";
  os << "\"population_size\": " << synthesizer.ga.populationSize;
  os << ", \"elite_count\": " << synthesizer.ga.eliteCount;
  os << ", \"crossover_rate\": " << synthesizer.ga.crossoverRate;
  os << ", \"mutation_rate\": " << synthesizer.ga.mutationRate;
  os << ", \"max_generations\": " << synthesizer.maxGenerations;
  os << ", \"neighborhood_search\": "
     << (synthesizer.useNeighborhoodSearch ? "true" : "false");
  os << ", \"ns_kind\": \""
     << (synthesizer.nsKind == core::NsKind::BFS ? "bfs" : "dfs") << "\"";
  os << ", \"ns_top_n\": " << synthesizer.nsTopN;
  os << ", \"ns_window\": " << synthesizer.nsWindow;
  os << ", \"simd_executor\": "
     << (synthesizer.simdExecutor ? "true" : "false");
  os << ", \"strategy\": \""
     << (synthesizer.strategy == core::SearchStrategy::Islands ? "islands"
                                                               : "single")
     << "\"";
  os << ", \"islands\": {";
  os << "\"count\": " << synthesizer.islands.count;
  os << ", \"migration_interval\": " << synthesizer.islands.migrationInterval;
  os << ", \"migration_size\": " << synthesizer.islands.migrationSize;
  os << ", \"topology\": \"" << topologyName(synthesizer.islands.topology)
     << "\"";
  os << ", \"threads\": " << synthesizer.islands.threads;
  os << ", \"heterogeneous\": "
     << (synthesizer.islands.heterogeneous ? "true" : "false");
  os << ", \"tweaks\": [";
  for (std::size_t i = 0; i < synthesizer.islands.tweaks.size(); ++i) {
    const core::IslandTweak& t = synthesizer.islands.tweaks[i];
    os << (i ? ", " : "") << "{\"mutation_rate_scale\": "
       << t.mutationRateScale
       << ", \"crossover_rate_scale\": " << t.crossoverRateScale;
    if (t.nsKind)
      os << ", \"ns_kind\": \""
         << (*t.nsKind == core::NsKind::BFS ? "bfs" : "dfs") << "\"";
    if (t.fpGuidedMutation)
      os << ", \"fp_guided_mutation\": "
         << (*t.fpGuidedMutation ? "true" : "false");
    os << "}";
  }
  os << "]";
  os << "}";  // islands
  os << "}";  // synthesizer
  os << "}";
  return os.str();
}

ExperimentConfig ExperimentConfig::fromJson(const std::string& json) {
  return fromJsonValue(util::parseJson(json));
}

ExperimentConfig ExperimentConfig::fromJsonValue(const util::JsonValue& root) {
  if (root.kind != JsonValue::Kind::Object)
    throw std::invalid_argument("config JSON: top level must be an object");

  std::string scale = "ci";
  readString(root, "scale", scale);
  ExperimentConfig cfg = forScale(scale);
  readString(root, "domain", cfg.domainName);
  // Validate and apply *before* the overrides below, so an explicit
  // generator/model setting in the JSON could later win over the domain
  // defaults, and an unknown name fails with the flag-style message rather
  // than deep inside a search.
  cfg.applyDomain();

  if (const JsonValue* lengths = root.find("program_lengths")) {
    if (lengths->kind != JsonValue::Kind::Array)
      throw std::invalid_argument(
          "config JSON: program_lengths must be an array");
    cfg.programLengths.clear();
    for (const JsonValue& v : lengths->items)
      cfg.programLengths.push_back(
          static_cast<std::size_t>(jsonUnsigned(v, "program_lengths")));
  }
  readSize(root, "programs_per_length", cfg.programsPerLength);
  readSize(root, "examples_per_program", cfg.examplesPerProgram);
  readSize(root, "runs_per_program", cfg.runsPerProgram);
  readSize(root, "search_budget", cfg.searchBudget);
  readSize(root, "training_programs", cfg.trainingPrograms);
  readSize(root, "validation_programs", cfg.validationPrograms);
  readSize(root, "training_length", cfg.trainingLength);
  if (const JsonValue* training = root.find("training")) {
    if (training->kind != JsonValue::Kind::Object)
      throw std::invalid_argument("config JSON: training must be an object");
    readSize(*training, "epochs", cfg.trainConfig.epochs);
    readSize(*training, "batch_size", cfg.trainConfig.batchSize);
    double lr = static_cast<double>(cfg.trainConfig.learningRate);
    readDouble(*training, "learning_rate", lr);
    cfg.trainConfig.learningRate = static_cast<float>(lr);
  }
  readSize(root, "workers", cfg.workers);
  readU64(root, "seed", cfg.seed);
  readString(root, "model_dir", cfg.modelDir);

  if (const JsonValue* syn = root.find("synthesizer")) {
    if (syn->kind != JsonValue::Kind::Object)
      throw std::invalid_argument("config JSON: synthesizer must be an object");
    readSize(*syn, "population_size", cfg.synthesizer.ga.populationSize);
    readSize(*syn, "elite_count", cfg.synthesizer.ga.eliteCount);
    readDouble(*syn, "crossover_rate", cfg.synthesizer.ga.crossoverRate);
    readDouble(*syn, "mutation_rate", cfg.synthesizer.ga.mutationRate);
    readSize(*syn, "max_generations", cfg.synthesizer.maxGenerations);
    readBool(*syn, "neighborhood_search", cfg.synthesizer.useNeighborhoodSearch);
    std::string nsKind;
    readString(*syn, "ns_kind", nsKind);
    if (!nsKind.empty()) {
      if (nsKind != "bfs" && nsKind != "dfs")
        throw std::invalid_argument("config JSON: ns_kind must be bfs or dfs");
      cfg.synthesizer.nsKind =
          nsKind == "bfs" ? core::NsKind::BFS : core::NsKind::DFS;
    }
    readSize(*syn, "ns_top_n", cfg.synthesizer.nsTopN);
    readSize(*syn, "ns_window", cfg.synthesizer.nsWindow);
    readBool(*syn, "simd_executor", cfg.synthesizer.simdExecutor);
    std::string strategy;
    readString(*syn, "strategy", strategy);
    if (!strategy.empty()) {
      if (strategy != "single" && strategy != "islands")
        throw std::invalid_argument(
            "config JSON: strategy must be single or islands");
      cfg.synthesizer.strategy = strategy == "islands"
                                     ? core::SearchStrategy::Islands
                                     : core::SearchStrategy::SinglePopulation;
    }
    if (const JsonValue* is = syn->find("islands")) {
      if (is->kind != JsonValue::Kind::Object)
        throw std::invalid_argument("config JSON: islands must be an object");
      readSize(*is, "count", cfg.synthesizer.islands.count);
      readSize(*is, "migration_interval",
               cfg.synthesizer.islands.migrationInterval);
      readSize(*is, "migration_size", cfg.synthesizer.islands.migrationSize);
      std::string topology;
      readString(*is, "topology", topology);
      if (!topology.empty())
        cfg.synthesizer.islands.topology = parseTopology(topology);
      readSize(*is, "threads", cfg.synthesizer.islands.threads);
      readBool(*is, "heterogeneous", cfg.synthesizer.islands.heterogeneous);
      if (cfg.synthesizer.islands.count == 0)
        throw std::invalid_argument(
            "config JSON: islands.count must be >= 1");
      if (const JsonValue* tweaks = is->find("tweaks")) {
        if (tweaks->kind != JsonValue::Kind::Array)
          throw std::invalid_argument(
              "config JSON: islands.tweaks must be an array");
        cfg.synthesizer.islands.tweaks.clear();
        for (const JsonValue& tv : tweaks->items) {
          if (tv.kind != JsonValue::Kind::Object)
            throw std::invalid_argument(
                "config JSON: islands.tweaks entries must be objects");
          core::IslandTweak tweak;
          readDouble(tv, "mutation_rate_scale", tweak.mutationRateScale);
          readDouble(tv, "crossover_rate_scale", tweak.crossoverRateScale);
          std::string tweakNs;
          readString(tv, "ns_kind", tweakNs);
          if (!tweakNs.empty()) {
            if (tweakNs != "bfs" && tweakNs != "dfs")
              throw std::invalid_argument(
                  "config JSON: tweak ns_kind must be bfs or dfs");
            tweak.nsKind =
                tweakNs == "bfs" ? core::NsKind::BFS : core::NsKind::DFS;
          }
          if (tv.find("fp_guided_mutation")) {
            bool fp = false;
            readBool(tv, "fp_guided_mutation", fp);
            tweak.fpGuidedMutation = fp;
          }
          cfg.synthesizer.islands.tweaks.push_back(tweak);
        }
      }
    }
  }

  // Range sanity at load time: a zero here would only surface much later as
  // an unrelated exception deep inside the search (or a trivially-empty
  // workload), long after models were trained. Fail loudly, naming the key.
  if (cfg.synthesizer.ga.populationSize == 0)
    throw std::invalid_argument(
        "config JSON: synthesizer.population_size must be >= 1");
  for (std::size_t len : cfg.programLengths)
    if (len == 0)
      throw std::invalid_argument(
          "config JSON: program_lengths entries must be >= 1");
  return cfg;
}

}  // namespace netsyn::harness
