#include "harness/models.hpp"

#include <cstdio>
#include <filesystem>

#include "util/timer.hpp"

namespace netsyn::harness {

TrainedModels TrainedModels::clone() const {
  TrainedModels copy;
  if (cf) copy.cf = cf->clone();
  if (lcs) copy.lcs = lcs->clone();
  if (fp) copy.fp = fp->clone();
  return copy;
}

std::shared_ptr<fitness::NnffModel> buildModel(const ExperimentConfig& config,
                                               fitness::HeadKind head) {
  fitness::NnffConfig mc = config.modelConfig;  // carries encoder + domain
  mc.head = head;
  mc.useTrace = (head != fitness::HeadKind::Multilabel);
  // The IO-only FP model is cheap (no per-step branch): give it every
  // example. The trace models keep the configured cap, which bounds the
  // GA's per-candidate inference cost.
  if (head == fitness::HeadKind::Multilabel)
    mc.maxExamples = config.examplesPerProgram;
  return std::make_shared<fitness::NnffModel>(mc);
}

std::vector<fitness::Sample> buildCorpus(const ExperimentConfig& config,
                                         std::size_t count,
                                         fitness::BalanceMetric metric,
                                         std::uint64_t seed) {
  fitness::DatasetConfig dc;
  dc.programLength = config.trainingLength;
  dc.numExamples = config.examplesPerProgram;
  dc.generator = config.synthesizer.generator;  // domain + value shapes
  fitness::DatasetBuilder builder(dc);
  util::Rng rng(seed);
  return builder.build(count, metric, rng);
}

std::string modelCachePath(const ExperimentConfig& config,
                           const std::string& tag) {
  // Non-list domains get their own cache namespace: the weight shapes
  // differ (vocab-sized embeddings, wider token tables), so a list cache
  // must never be loaded into a str model or vice versa. The list path is
  // unchanged so existing caches stay valid.
  const std::string domainTag =
      config.domainName == "list" ? "" : config.domainName + "_";
  return config.modelDir + "/" + config.scaleName + "_" + domainTag + tag +
         ".bin";
}

bool loadOrTrain(const ExperimentConfig& config, fitness::NnffModel& model,
                 fitness::BalanceMetric metric, const std::string& tag,
                 bool quiet) {
  const std::string path = modelCachePath(config, tag);
  if (std::filesystem::exists(path)) {
    try {
      model.load(path);
      if (!quiet) std::printf("[models] loaded %s from cache\n", path.c_str());
      return true;
    } catch (const std::exception& e) {
      if (!quiet)
        std::printf("[models] cache %s unusable (%s); retraining\n",
                    path.c_str(), e.what());
    }
  }

  util::Timer timer;
  if (!quiet)
    std::printf("[models] training %s: %zu programs, %zu epochs...\n",
                tag.c_str(), config.trainingPrograms,
                config.trainConfig.epochs);
  const auto trainSet =
      buildCorpus(config, config.trainingPrograms, metric, config.seed + 17);
  const auto valSet = buildCorpus(config, config.validationPrograms, metric,
                                  config.seed + 31);
  fitness::TrainConfig tc = config.trainConfig;
  tc.labelMetric = metric;
  fitness::Trainer trainer(tc);
  trainer.train(model, trainSet, valSet, [&](const fitness::EpochStats& e) {
    if (!quiet)
      std::printf("[models]   %s epoch %zu: train %.3f val %.3f acc %.3f\n",
                  tag.c_str(), e.epoch, e.trainLoss, e.valLoss,
                  e.valAccuracy);
  });
  if (!quiet)
    std::printf("[models] trained %s in %.1fs\n", tag.c_str(),
                timer.seconds());

  std::filesystem::create_directories(config.modelDir);
  model.save(path);
  return false;
}

TrainedModels loadOrTrainAll(const ExperimentConfig& config, bool quiet) {
  TrainedModels models;
  models.cf = buildModel(config, fitness::HeadKind::Classifier);
  loadOrTrain(config, *models.cf, fitness::BalanceMetric::CF, "cf", quiet);
  models.lcs = buildModel(config, fitness::HeadKind::Classifier);
  loadOrTrain(config, *models.lcs, fitness::BalanceMetric::LCS, "lcs", quiet);
  models.fp = buildModel(config, fitness::HeadKind::Multilabel);
  loadOrTrain(config, *models.fp, fitness::BalanceMetric::CF, "fp", quiet);
  return models;
}

}  // namespace netsyn::harness
