#include "harness/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <thread>

namespace netsyn::harness {

util::Rng runSeedRng(const ExperimentConfig& config, std::size_t p,
                     std::size_t k) {
  return util::Rng(config.seed ^ (p * 0x9e3779b97f4a7c15ULL) ^
                   (k * 0xbf58476d1ce4e5b9ULL) ^ 0x1234);
}

namespace {

/// Skeleton report with every (program, run) slot preallocated, so workers
/// can write results by index and aggregation order never depends on
/// scheduling.
MethodReport emptyReport(const std::string& methodName,
                         const std::vector<TestProgram>& workload,
                         const ExperimentConfig& config) {
  MethodReport report;
  report.method = methodName;
  report.budget = config.searchBudget;
  report.programs.resize(workload.size());
  for (std::size_t p = 0; p < workload.size(); ++p) {
    ProgramResult& pr = report.programs[p];
    pr.programId = workload[p].id;
    pr.length = workload[p].length;
    pr.singleton = workload[p].singleton;
    pr.target = workload[p].target;
    pr.runs.resize(config.runsPerProgram);
  }
  return report;
}

void reportProgress(const MethodReport& report,
                    const std::vector<TestProgram>& workload) {
  for (std::size_t p = 0; p < workload.size(); ++p) {
    std::fprintf(stderr, "  [%s] len=%zu prog=%zu rate=%.0f%%\n",
                 report.method.c_str(), workload[p].length, workload[p].id,
                 report.programs[p].synthesisRate() * 100.0);
  }
}

double meanOverFound(const std::vector<RunRecord>& runs,
                     double (*pick)(const RunRecord&)) {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& r : runs) {
    if (!r.found) continue;
    total += pick(r);
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

}  // namespace

std::size_t RunRecord::migrationsAccepted() const {
  std::size_t total = 0;
  for (const auto& s : islands) total += s.immigrants;
  return total;
}

double ProgramResult::synthesisRate() const {
  if (runs.empty()) return 0.0;
  std::size_t found = 0;
  for (const auto& r : runs) found += r.found ? 1 : 0;
  return static_cast<double>(found) / static_cast<double>(runs.size());
}

bool ProgramResult::synthesized() const { return synthesisRate() > 0.0; }

double ProgramResult::meanCandidatesWhenFound() const {
  return meanOverFound(
      runs, [](const RunRecord& r) { return static_cast<double>(r.candidates); });
}

double ProgramResult::meanSecondsWhenFound() const {
  return meanOverFound(runs, [](const RunRecord& r) { return r.seconds; });
}

double ProgramResult::meanGenerationsWhenFound() const {
  return meanOverFound(runs, [](const RunRecord& r) {
    return static_cast<double>(r.generations);
  });
}

double MethodReport::synthesizedFraction() const {
  if (programs.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& p : programs) n += p.synthesized() ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(programs.size());
}

double MethodReport::meanSynthesisRate() const {
  if (programs.empty()) return 0.0;
  double total = 0.0;
  for (const auto& p : programs) total += p.synthesisRate();
  return total / static_cast<double>(programs.size());
}

double MethodReport::meanGenerations() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& p : programs) {
    if (!p.synthesized()) continue;
    total += p.meanGenerationsWhenFound();
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

MethodReport runMethod(baselines::Method& method,
                       const std::vector<TestProgram>& workload,
                       const ExperimentConfig& config, bool verbose) {
  MethodReport report = emptyReport(method.name(), workload, config);
  auto* targetAware = dynamic_cast<TargetAware*>(&method);
  for (std::size_t p = 0; p < workload.size(); ++p) {
    const TestProgram& tp = workload[p];
    if (targetAware) targetAware->setTarget(tp.target);
    for (std::size_t k = 0; k < config.runsPerProgram; ++k) {
      util::Rng rng = runSeedRng(config, p, k);
      const auto result = method.synthesize(tp.spec, tp.length,
                                            config.searchBudget, rng);
      report.programs[p].runs[k] =
          RunRecord{result.found, result.candidatesSearched, result.seconds,
                    result.generations, result.islandStats};
    }
    if (verbose) {
      const auto& runs = report.programs[p].runs;
      if (runs.empty() || runs.front().islands.empty()) {
        std::fprintf(stderr, "  [%s] len=%zu prog=%zu rate=%.0f%%\n",
                     report.method.c_str(), tp.length, tp.id,
                     report.programs[p].synthesisRate() * 100.0);
      } else {
        std::size_t migrations = 0;  // totalled like the rate on this line
        for (const auto& r : runs) migrations += r.migrationsAccepted();
        std::fprintf(stderr,
                     "  [%s] len=%zu prog=%zu rate=%.0f%% islands=%zu "
                     "migrations=%zu\n",
                     report.method.c_str(), tp.length, tp.id,
                     report.programs[p].synthesisRate() * 100.0,
                     runs.front().islands.size(), migrations);
      }
    }
  }
  return report;
}

MethodReport runMethod(const baselines::MethodFactory& makeMethod,
                       const std::vector<TestProgram>& workload,
                       const ExperimentConfig& config, bool verbose) {
  std::size_t workers = config.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  const std::size_t totalTasks = workload.size() * config.runsPerProgram;
  workers = std::min(workers, std::max<std::size_t>(totalTasks, 1));

  if (workers <= 1) {
    auto method = makeMethod();
    return runMethod(*method, workload, config, verbose);
  }

  // Building a method can be expensive (NN model clones), so the instance
  // used for the name is handed to the first worker instead of discarded.
  baselines::MethodPtr firstInstance = makeMethod();
  MethodReport report = emptyReport(firstInstance->name(), workload, config);

  // Work queue: flat (program, run) index, claimed atomically. Each worker
  // owns one method instance for its whole lifetime; every run derives its
  // RNG from (seed, p, k) and writes to its preassigned slot, so the
  // deterministic report fields cannot depend on the schedule.
  std::atomic<std::size_t> nextTask{0};
  const std::size_t runsPer = config.runsPerProgram;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w]() {
      const baselines::MethodPtr method =
          w == 0 ? std::move(firstInstance) : makeMethod();
      auto* targetAware = dynamic_cast<TargetAware*>(method.get());
      while (true) {
        const std::size_t task = nextTask.fetch_add(1);
        if (task >= totalTasks) break;
        const std::size_t p = task / runsPer;
        const std::size_t k = task % runsPer;
        const TestProgram& tp = workload[p];
        if (targetAware) targetAware->setTarget(tp.target);
        util::Rng rng = runSeedRng(config, p, k);
        const auto result =
            method->synthesize(tp.spec, tp.length, config.searchBudget, rng);
        report.programs[p].runs[k] =
            RunRecord{result.found, result.candidatesSearched, result.seconds,
                      result.generations, result.islandStats};
      }
    });
  }
  for (auto& t : pool) t.join();

  if (verbose) reportProgress(report, workload);
  return report;
}

std::array<double, 10> percentileRow(const MethodReport& report,
                                     bool useTime) {
  std::array<double, 10> row;
  row.fill(std::numeric_limits<double>::quiet_NaN());
  if (report.programs.empty()) return row;

  std::vector<double> costs;  // per synthesized program
  for (const auto& p : report.programs) {
    if (!p.synthesized()) continue;
    costs.push_back(useTime ? p.meanSecondsWhenFound()
                            : p.meanCandidatesWhenFound() /
                                  static_cast<double>(report.budget));
  }
  std::sort(costs.begin(), costs.end());

  const auto total = static_cast<double>(report.programs.size());
  for (std::size_t i = 0; i < 10; ++i) {
    // Cost needed to synthesize (i+1)*10% of ALL programs: the k-th
    // cheapest synthesized program where k = ceil(pct * total).
    const auto k = static_cast<std::size_t>(
        std::ceil((static_cast<double>(i + 1) / 10.0) * total));
    if (k == 0 || k > costs.size()) continue;  // stays NaN -> "-"
    row[i] = costs[k - 1];
  }
  return row;
}

void appendPercentileRow(util::Table& table, const MethodReport& report,
                         bool useTime) {
  table.newRow();
  table.add(report.method);
  table.addPercent(report.synthesizedFraction(), 0);
  const auto row = percentileRow(report, useTime);
  for (double v : row) {
    if (std::isnan(v)) table.add("-");
    else if (useTime) table.addDouble(v, 2);
    else table.addPercent(v, 2);
  }
}

std::vector<std::string> percentileHeader(const std::string& metricLabel) {
  std::vector<std::string> header = {"Method", "Synth%"};
  for (int pct = 10; pct <= 100; pct += 10)
    header.push_back(std::to_string(pct) + "% " + metricLabel);
  return header;
}

}  // namespace netsyn::harness
