#include "harness/workload.hpp"

#include <stdexcept>

namespace netsyn::harness {

std::vector<TestProgram> makeWorkload(const ExperimentConfig& config,
                                      std::size_t length) {
  // The generator knobs (and with them the domain) come from the config;
  // for the list domain these are the GeneratorConfig defaults, so the
  // workload RNG stream is unchanged from the pre-domain harness.
  const dsl::Generator gen(config.synthesizer.generator);
  util::Rng rng(config.seed ^ (0x9e37u + length * 0x85ebca6bULL));
  std::vector<TestProgram> out;
  out.reserve(config.programsPerLength);
  for (std::size_t i = 0; i < config.programsPerLength; ++i) {
    const bool singleton = i < config.programsPerLength / 2;
    auto tc = gen.randomTestCase(length, config.examplesPerProgram, singleton,
                                 rng);
    if (!tc)
      throw std::runtime_error("workload generation failed for length " +
                               std::to_string(length));
    TestProgram tp;
    tp.id = i;
    tp.length = length;
    tp.singleton = singleton;
    tp.target = std::move(tc->program);
    tp.spec = std::move(tc->spec);
    out.push_back(std::move(tp));
  }
  return out;
}

std::vector<TestProgram> makeFullWorkload(const ExperimentConfig& config) {
  std::vector<TestProgram> out;
  for (std::size_t length : config.programLengths) {
    auto group = makeWorkload(config, length);
    out.insert(out.end(), std::make_move_iterator(group.begin()),
               std::make_move_iterator(group.end()));
  }
  return out;
}

}  // namespace netsyn::harness
