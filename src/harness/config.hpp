// Experiment configuration: the paper's constants and the scaled-down
// defaults this repo uses on a single-core container.
//
// `paper` scale restores the constants of §5 / Appendix B (4.2M-program
// corpus, 3,000,000-candidate budget, 100 test programs per length, K=10
// repetitions, lengths {5,7,10}); `ci` scale preserves every ratio and
// method ordering at a size that runs in minutes (see DESIGN.md §5 for why
// the paper's search-space-percentage metric is scale-relative).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/synthesizer.hpp"
#include "dsl/domain.hpp"
#include "fitness/model.hpp"
#include "fitness/trainer.hpp"
#include "util/argparse.hpp"
#include "util/json.hpp"

namespace netsyn::harness {

struct ExperimentConfig {
  std::string scaleName = "ci";

  /// Which DSL the experiment runs on ("list" or "str"; dsl::findDomain
  /// names). Selecting a non-list domain re-seeds the generator knobs and
  /// NN-encoder hints from the domain's defaults (applyDomain); the list
  /// domain keeps the historical values bit-identically.
  std::string domainName = "list";

  // ---- workload ----
  std::vector<std::size_t> programLengths = {4, 5};
  std::size_t programsPerLength = 8;  ///< half singleton, half list
  std::size_t examplesPerProgram = 5; ///< m
  std::size_t runsPerProgram = 2;     ///< K
  std::size_t searchBudget = 4000;    ///< max candidates per run

  // ---- NN-FF training ----
  std::size_t trainingPrograms = 2400;  ///< corpus size (paper: 4.2M)
  std::size_t validationPrograms = 300;
  std::size_t trainingLength = 5;  ///< corpus program length (paper: 5)
  fitness::NnffConfig modelConfig;   ///< dims shared by CF/LCS/FP models
  fitness::TrainConfig trainConfig;

  // ---- GA ----
  core::SynthesizerConfig synthesizer;

  /// Worker threads for the experiment runner: (program, run) pairs are
  /// dispatched onto a pool of this many workers, each owning its own method
  /// instance. 1 = sequential (default); 0 = one per hardware thread. The
  /// per-(seed, program, run) seeding makes the resulting MethodReport
  /// identical to a sequential run (wall-clock `seconds` aside).
  std::size_t workers = 1;

  std::uint64_t seed = 2021;
  std::string modelDir = "netsyn_models";  ///< trained-model cache

  /// The resolved domain (throws std::invalid_argument with the known
  /// names when domainName is unknown).
  const dsl::Domain& domain() const;

  /// Re-seeds the domain-dependent knobs (synthesizer.generator, NN encoder
  /// hints, modelConfig.domain) from domainName. Called by fromArgs /
  /// fromJson after the name is set; call it yourself after assigning
  /// domainName directly. Throws std::invalid_argument on unknown names.
  void applyDomain();

  /// Named presets: "ci" (default) or "paper".
  static ExperimentConfig forScale(const std::string& scale);

  /// Preset selected by --scale — or a full toJson() document loaded via
  /// --config-file=PATH (exclusive with --scale) — plus individual flag
  /// overrides
  /// (--domain=list|str, --budget, --runs, --programs-per-length,
  ///  --train-programs, --epochs, --seed, --model-dir, --lengths=5,7,10,
  ///  --workers=N, --simd=true|false, and the island strategy: --islands=K,
  ///  --migration-interval=M, --migration-size=E, --topology=ring|full,
  ///  --island-threads=T, --island-hetero).
  ///  --islands selects SearchStrategy::Islands (also for K=1, which is
  ///  pinned identical to the single-population search).
  static ExperimentConfig fromArgs(const util::ArgParse& args);

  /// Serializes the experiment-defining fields (workload, budget, GA,
  /// island strategy, seed) as one JSON object — the scenario record the
  /// bench JSONs and external sweep drivers consume.
  std::string toJson() const;

  /// Parses toJson() output (strict on structure, unknown keys ignored).
  /// Round-trip identity — fromJson(c.toJson()) equals c on every
  /// serialized field — is pinned by tests. Throws std::invalid_argument
  /// on malformed input.
  static ExperimentConfig fromJson(const std::string& json);

  /// fromJson() on an already-parsed document — the synthesis service's
  /// protocol handler carries configs as sub-objects of a request and loads
  /// them without re-serializing.
  static ExperimentConfig fromJsonValue(const util::JsonValue& root);
};

}  // namespace netsyn::harness
