// Test-workload generation (paper §5): for each program length, random
// fully-live target programs with m IO examples each, half producing a
// singleton integer ("singleton programs") and half producing a list.
#pragma once

#include <vector>

#include "dsl/generator.hpp"
#include "harness/config.hpp"

namespace netsyn::harness {

struct TestProgram {
  std::size_t id = 0;       ///< index within its length group
  std::size_t length = 0;   ///< target program length
  bool singleton = false;   ///< int-producing final function
  dsl::Program target;
  dsl::Spec spec;
};

/// Test programs for one length (first half singleton, second half list, as
/// in the paper's "program 1 to 50 are singleton programs" layout).
std::vector<TestProgram> makeWorkload(const ExperimentConfig& config,
                                      std::size_t length);

/// The full workload across all configured lengths.
std::vector<TestProgram> makeFullWorkload(const ExperimentConfig& config);

}  // namespace netsyn::harness
