#include "harness/registry.hpp"

#include "fitness/neural_fitness.hpp"

namespace netsyn::harness {

namespace {

/// Per-island grading kit for one NetSyn variant: every island gets its own
/// model clones (NnffModel inference scratch is not thread-safe), exactly
/// like the per-worker clones of the parallel experiment runner. Invoked
/// lazily — only Islands-strategy searches ever call it.
core::IslandFitnessFactory netSynIslandFactory(const TrainedModels& models,
                                               NetSynVariant variant) {
  return [models, variant](std::size_t) {
    auto fp = std::make_shared<fitness::ProbMapFitness>(models.fp->clone());
    fitness::FitnessPtr fit;
    switch (variant) {
      case NetSynVariant::CF:
        fit = std::make_shared<fitness::NeuralFitness>(models.cf->clone(),
                                                       "NN_CF");
        break;
      case NetSynVariant::LCS:
        fit = std::make_shared<fitness::NeuralFitness>(models.lcs->clone(),
                                                       "NN_LCS");
        break;
      case NetSynVariant::FP:
        fit = fp;
        break;
    }
    return core::IslandFitness{std::move(fit), fp};
  };
}

}  // namespace

core::SynthesizerConfig methodSearchConfig(const ExperimentConfig& config,
                                           const std::string& method) {
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = core::NsKind::BFS;
  // §5.1: the NetSyn variants mutate FP-guided; Edit and the Oracles keep
  // uniform mutation (they carry no probability map).
  sc.fpGuidedMutation = method.rfind("NetSyn_", 0) == 0;
  if (method != "Edit" && method != "Oracle_CF" && method != "Oracle_LCS" &&
      method != "NetSyn_CF" && method != "NetSyn_LCS" && method != "NetSyn_FP")
    throw std::invalid_argument("unknown GA method '" + method + "'");
  return sc;
}

baselines::MethodPtr makeNetSyn(const ExperimentConfig& config,
                                const TrainedModels& models,
                                NetSynVariant variant) {
  const char* name = variant == NetSynVariant::CF    ? "NetSyn_CF"
                     : variant == NetSynVariant::LCS ? "NetSyn_LCS"
                                                     : "NetSyn_FP";
  const core::SynthesizerConfig sc = methodSearchConfig(config, name);

  auto fpProvider = std::make_shared<fitness::ProbMapFitness>(models.fp);
  const auto islandFactory = netSynIslandFactory(models, variant);
  switch (variant) {
    case NetSynVariant::CF:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_CF", sc,
          std::make_shared<fitness::NeuralFitness>(models.cf, "NN_CF"),
          fpProvider, islandFactory);
    case NetSynVariant::LCS:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_LCS", sc,
          std::make_shared<fitness::NeuralFitness>(models.lcs, "NN_LCS"),
          fpProvider, islandFactory);
    case NetSynVariant::FP:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_FP", sc, fpProvider, fpProvider, islandFactory);
  }
  throw std::logic_error("unknown NetSyn variant");
}

baselines::MethodPtr makeEdit(const ExperimentConfig& config) {
  // Same framework as NetSyn, hand-crafted fitness graded with the domain's
  // output metric.
  const core::SynthesizerConfig sc = methodSearchConfig(config, "Edit");
  const dsl::Domain* domain = sc.generator.domain;
  return std::make_shared<baselines::SynthesizerMethod>(
      "Edit", sc, std::make_shared<fitness::EditDistanceFitness>(domain),
      nullptr, [domain](std::size_t) {
        // Stateless hand-crafted fitness: a fresh instance per island keeps
        // its internal memo tables thread-private.
        return core::IslandFitness{
            std::make_shared<fitness::EditDistanceFitness>(domain), nullptr};
      });
}

baselines::MethodPtr makeOracle(const ExperimentConfig& config,
                                fitness::BalanceMetric metric) {
  const core::SynthesizerConfig sc = methodSearchConfig(
      config,
      metric == fitness::BalanceMetric::CF ? "Oracle_CF" : "Oracle_LCS");
  return std::make_shared<OracleMethod>(sc, metric);
}

std::vector<baselines::MethodPtr> makeAllMethods(
    const ExperimentConfig& config, const TrainedModels& models) {
  // One instance per factory, so the method list/order lives in exactly one
  // place (makeAllMethodFactories).
  std::vector<baselines::MethodPtr> methods;
  for (const auto& factory : makeAllMethodFactories(config, models))
    methods.push_back(factory());
  return methods;
}

baselines::MethodFactory makeNetSynFactory(const ExperimentConfig& config,
                                           const TrainedModels& models,
                                           NetSynVariant variant) {
  // Capture the trained models by value (shared ownership); every factory
  // call clones the models the variant actually grades with, so each
  // instance owns its inference scratch.
  return [config, models, variant]() {
    TrainedModels own;
    own.fp = models.fp->clone();  // every variant mutates with the FP map
    if (variant == NetSynVariant::CF) own.cf = models.cf->clone();
    if (variant == NetSynVariant::LCS) own.lcs = models.lcs->clone();
    return makeNetSyn(config, own, variant);
  };
}

baselines::MethodFactory makeEditFactory(const ExperimentConfig& config) {
  return [config]() { return makeEdit(config); };
}

baselines::MethodFactory makeOracleFactory(const ExperimentConfig& config,
                                           fitness::BalanceMetric metric) {
  return [config, metric]() { return makeOracle(config, metric); };
}

std::vector<baselines::MethodFactory> makeAllMethodFactories(
    const ExperimentConfig& config, const TrainedModels& models) {
  std::vector<baselines::MethodFactory> factories;
  factories.push_back([config]() {
    return std::make_shared<baselines::PushGpMethod>(
        config.synthesizer.ga, config.synthesizer.generator);
  });
  factories.push_back(makeEditFactory(config));
  factories.push_back([models]() {
    return std::make_shared<baselines::DeepCoderMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back([models]() {
    return std::make_shared<baselines::PcCoderMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back([models]() {
    return std::make_shared<baselines::RobustFillMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::FP));
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::LCS));
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::CF));
  factories.push_back(makeOracleFactory(config, fitness::BalanceMetric::LCS));
  return factories;
}

}  // namespace netsyn::harness
