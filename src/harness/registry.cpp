#include "harness/registry.hpp"

#include "fitness/neural_fitness.hpp"

namespace netsyn::harness {

baselines::MethodPtr makeNetSyn(const ExperimentConfig& config,
                                const TrainedModels& models,
                                NetSynVariant variant) {
  // §5.1: each NetSyn variant uses NS_BFS and FP-based mutation.
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = true;

  auto fpProvider = std::make_shared<fitness::ProbMapFitness>(models.fp);
  switch (variant) {
    case NetSynVariant::CF:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_CF", sc,
          std::make_shared<fitness::NeuralFitness>(models.cf, "NN_CF"),
          fpProvider);
    case NetSynVariant::LCS:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_LCS", sc,
          std::make_shared<fitness::NeuralFitness>(models.lcs, "NN_LCS"),
          fpProvider);
    case NetSynVariant::FP:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_FP", sc, fpProvider, fpProvider);
  }
  throw std::logic_error("unknown NetSyn variant");
}

baselines::MethodPtr makeEdit(const ExperimentConfig& config) {
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;  // same framework, hand-crafted fitness
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = false;
  return std::make_shared<baselines::SynthesizerMethod>(
      "Edit", sc, std::make_shared<fitness::EditDistanceFitness>());
}

baselines::MethodPtr makeOracle(const ExperimentConfig& config,
                                fitness::BalanceMetric metric) {
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = false;
  return std::make_shared<OracleMethod>(sc, metric);
}

std::vector<baselines::MethodPtr> makeAllMethods(
    const ExperimentConfig& config, const TrainedModels& models) {
  auto fpProvider = std::make_shared<fitness::ProbMapFitness>(models.fp);
  std::vector<baselines::MethodPtr> methods;
  methods.push_back(std::make_shared<baselines::PushGpMethod>(
      config.synthesizer.ga));
  methods.push_back(makeEdit(config));
  methods.push_back(std::make_shared<baselines::DeepCoderMethod>(fpProvider));
  methods.push_back(std::make_shared<baselines::PcCoderMethod>(fpProvider));
  methods.push_back(
      std::make_shared<baselines::RobustFillMethod>(fpProvider));
  methods.push_back(makeNetSyn(config, models, NetSynVariant::FP));
  methods.push_back(makeNetSyn(config, models, NetSynVariant::LCS));
  methods.push_back(makeNetSyn(config, models, NetSynVariant::CF));
  methods.push_back(makeOracle(config, fitness::BalanceMetric::LCS));
  return methods;
}

}  // namespace netsyn::harness
