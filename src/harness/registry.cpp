#include "harness/registry.hpp"

#include "fitness/neural_fitness.hpp"

namespace netsyn::harness {

baselines::MethodPtr makeNetSyn(const ExperimentConfig& config,
                                const TrainedModels& models,
                                NetSynVariant variant) {
  // §5.1: each NetSyn variant uses NS_BFS and FP-based mutation.
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = true;

  auto fpProvider = std::make_shared<fitness::ProbMapFitness>(models.fp);
  switch (variant) {
    case NetSynVariant::CF:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_CF", sc,
          std::make_shared<fitness::NeuralFitness>(models.cf, "NN_CF"),
          fpProvider);
    case NetSynVariant::LCS:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_LCS", sc,
          std::make_shared<fitness::NeuralFitness>(models.lcs, "NN_LCS"),
          fpProvider);
    case NetSynVariant::FP:
      return std::make_shared<baselines::SynthesizerMethod>(
          "NetSyn_FP", sc, fpProvider, fpProvider);
  }
  throw std::logic_error("unknown NetSyn variant");
}

baselines::MethodPtr makeEdit(const ExperimentConfig& config) {
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;  // same framework, hand-crafted fitness
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = false;
  return std::make_shared<baselines::SynthesizerMethod>(
      "Edit", sc, std::make_shared<fitness::EditDistanceFitness>());
}

baselines::MethodPtr makeOracle(const ExperimentConfig& config,
                                fitness::BalanceMetric metric) {
  core::SynthesizerConfig sc = config.synthesizer;
  sc.useNeighborhoodSearch = true;
  sc.nsKind = core::NsKind::BFS;
  sc.fpGuidedMutation = false;
  return std::make_shared<OracleMethod>(sc, metric);
}

std::vector<baselines::MethodPtr> makeAllMethods(
    const ExperimentConfig& config, const TrainedModels& models) {
  // One instance per factory, so the method list/order lives in exactly one
  // place (makeAllMethodFactories).
  std::vector<baselines::MethodPtr> methods;
  for (const auto& factory : makeAllMethodFactories(config, models))
    methods.push_back(factory());
  return methods;
}

baselines::MethodFactory makeNetSynFactory(const ExperimentConfig& config,
                                           const TrainedModels& models,
                                           NetSynVariant variant) {
  // Capture the trained models by value (shared ownership); every factory
  // call clones the models the variant actually grades with, so each
  // instance owns its inference scratch.
  return [config, models, variant]() {
    TrainedModels own;
    own.fp = models.fp->clone();  // every variant mutates with the FP map
    if (variant == NetSynVariant::CF) own.cf = models.cf->clone();
    if (variant == NetSynVariant::LCS) own.lcs = models.lcs->clone();
    return makeNetSyn(config, own, variant);
  };
}

baselines::MethodFactory makeEditFactory(const ExperimentConfig& config) {
  return [config]() { return makeEdit(config); };
}

baselines::MethodFactory makeOracleFactory(const ExperimentConfig& config,
                                           fitness::BalanceMetric metric) {
  return [config, metric]() { return makeOracle(config, metric); };
}

std::vector<baselines::MethodFactory> makeAllMethodFactories(
    const ExperimentConfig& config, const TrainedModels& models) {
  std::vector<baselines::MethodFactory> factories;
  factories.push_back([config]() {
    return std::make_shared<baselines::PushGpMethod>(config.synthesizer.ga);
  });
  factories.push_back(makeEditFactory(config));
  factories.push_back([models]() {
    return std::make_shared<baselines::DeepCoderMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back([models]() {
    return std::make_shared<baselines::PcCoderMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back([models]() {
    return std::make_shared<baselines::RobustFillMethod>(
        std::make_shared<fitness::ProbMapFitness>(models.fp->clone()));
  });
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::FP));
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::LCS));
  factories.push_back(makeNetSynFactory(config, models, NetSynVariant::CF));
  factories.push_back(makeOracleFactory(config, fitness::BalanceMetric::LCS));
  return factories;
}

}  // namespace netsyn::harness
