// Trained NN-FF model management for the experiment harness.
//
// The three learned models (f_CF, f_LCS classifiers and the f_FP
// probability map) are trained once on the configured corpus and cached on
// disk; every bench binary that needs them loads the cache when present so
// the full bench sweep trains each model exactly once.
#pragma once

#include <memory>
#include <string>

#include "fitness/dataset.hpp"
#include "fitness/model.hpp"
#include "fitness/trainer.hpp"
#include "harness/config.hpp"

namespace netsyn::harness {

struct TrainedModels {
  std::shared_ptr<fitness::NnffModel> cf;   ///< Classifier on CF labels
  std::shared_ptr<fitness::NnffModel> lcs;  ///< Classifier on LCS labels
  std::shared_ptr<fitness::NnffModel> fp;   ///< IO-only multilabel (FP map)

  /// Independent deep copies of every model (NnffModel inference is not
  /// thread-safe; each runner worker grades with its own clones).
  TrainedModels clone() const;
};

/// Builds an untrained model of the configured dimensions for `head`
/// (Classifier uses the trace branch; Multilabel is IO-only).
std::shared_ptr<fitness::NnffModel> buildModel(const ExperimentConfig& config,
                                               fitness::HeadKind head);

/// Generates the balanced training corpus of §5 for the given label metric.
std::vector<fitness::Sample> buildCorpus(const ExperimentConfig& config,
                                         std::size_t count,
                                         fitness::BalanceMetric metric,
                                         std::uint64_t seed);

/// Loads `model` from the cache file for `tag` under config.modelDir, or
/// trains it on a freshly generated corpus and writes the cache. Returns
/// true when the model came from cache. `quiet` suppresses progress lines.
bool loadOrTrain(const ExperimentConfig& config, fitness::NnffModel& model,
                 fitness::BalanceMetric metric, const std::string& tag,
                 bool quiet = false);

/// All three models, cached/trained as needed.
TrainedModels loadOrTrainAll(const ExperimentConfig& config,
                             bool quiet = false);

/// Cache path for a tag, e.g. "<dir>/ci_cf.bin".
std::string modelCachePath(const ExperimentConfig& config,
                           const std::string& tag);

}  // namespace netsyn::harness
