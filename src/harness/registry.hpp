// Method registry: constructs every synthesis method of the paper's
// evaluation (§5.1) from the experiment configuration and trained models.
//
//   NetSyn_CF / NetSyn_LCS : GA + learned classifier fitness + NS_BFS +
//                            Mutation_FP (the §5.1 configuration)
//   NetSyn_FP              : GA + probability-map fitness + NS_BFS +
//                            Mutation_FP
//   Edit                   : the NetSyn GA with the hand-crafted output
//                            edit-distance fitness
//   Oracle_CF / Oracle_LCS : GA + oracle fitness (upper bound; needs the
//                            target program, set per test case)
//   DeepCoder / PCCoder / RobustFill / PushGP : baselines
#pragma once

#include "baselines/deepcoder.hpp"
#include "baselines/method.hpp"
#include "baselines/pccoder.hpp"
#include "baselines/pushgp.hpp"
#include "baselines/robustfill.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "harness/models.hpp"

namespace netsyn::harness {

/// Methods whose fitness needs the (normally unknown) target program; the
/// runner provides it before each test case. Only the Oracle baselines are
/// target-aware.
class TargetAware {
 public:
  virtual ~TargetAware() = default;
  virtual void setTarget(const dsl::Program& target) = 0;
};

/// Oracle upper-bound method: NetSyn GA + NS driven by the exact CF or LCS
/// against the known target (paper's Oracle_{LCS|CF} rows).
class OracleMethod final : public baselines::Method, public TargetAware {
 public:
  OracleMethod(core::SynthesizerConfig config, fitness::BalanceMetric metric)
      : config_(std::move(config)), metric_(metric) {}

  std::string name() const override {
    return metric_ == fitness::BalanceMetric::CF ? "Oracle_CF" : "Oracle_LCS";
  }

  void setTarget(const dsl::Program& target) override { target_ = target; }

  core::SynthesisResult synthesize(const dsl::Spec& spec,
                                   std::size_t targetLength,
                                   std::size_t budgetLimit,
                                   util::Rng& rng) override {
    const auto makeFit = [this]() -> fitness::FitnessPtr {
      if (metric_ == fitness::BalanceMetric::CF)
        return std::make_shared<fitness::OracleCF>(target_);
      return std::make_shared<fitness::OracleLCS>(target_);
    };
    // Oracle fitness is cheap to build, so island isolation is simply one
    // fresh instance per island (parallel-safe like the NN clones).
    core::Synthesizer syn(config_, makeFit(), nullptr,
                          [makeFit](std::size_t) {
                            return core::IslandFitness{makeFit(), nullptr};
                          });
    return syn.synthesize(spec, targetLength, budgetLimit, rng);
  }

 private:
  core::SynthesizerConfig config_;
  fitness::BalanceMetric metric_;
  dsl::Program target_;
};

/// NetSyn variant selector for makeNetSyn().
enum class NetSynVariant { CF, LCS, FP };

/// The SynthesizerConfig a registry-built GA method actually searches with:
/// config.synthesizer plus the per-method operator settings of §5.1 — the
/// NetSyn variants enable NS_BFS + Mutation_FP, Edit and the Oracles enable
/// NS_BFS with uniform mutation. `method` accepts the registry names
/// ("NetSyn_CF", "NetSyn_LCS", "NetSyn_FP", "Edit", "Oracle_CF",
/// "Oracle_LCS"). makeNetSyn/makeEdit/makeOracle and the synthesis
/// service's per-job search instantiation all derive their configuration
/// here, which is what keeps daemon jobs bit-identical to one-shot runs.
core::SynthesizerConfig methodSearchConfig(const ExperimentConfig& config,
                                           const std::string& method);

/// The §5.1 NetSyn configuration for one learned fitness function
/// (NS_BFS + Mutation_FP enabled; pass overrides for ablations).
baselines::MethodPtr makeNetSyn(const ExperimentConfig& config,
                                const TrainedModels& models,
                                NetSynVariant variant);

/// The NetSyn GA with edit-distance fitness (the paper's "Edit" rows).
baselines::MethodPtr makeEdit(const ExperimentConfig& config);

/// Oracle method (target injected by the runner per test case).
baselines::MethodPtr makeOracle(const ExperimentConfig& config,
                                fitness::BalanceMetric metric);

/// All comparison methods of Figure 4 in presentation order.
std::vector<baselines::MethodPtr> makeAllMethods(
    const ExperimentConfig& config, const TrainedModels& models);

// ---- per-worker factories ---------------------------------------------------
//
// The parallel runner (runner.hpp) builds one method instance per worker
// thread. Each factory invocation clones the NN models it uses, so instances
// never share mutable inference state.

/// Factory for one NetSyn variant (same configuration as makeNetSyn).
baselines::MethodFactory makeNetSynFactory(const ExperimentConfig& config,
                                           const TrainedModels& models,
                                           NetSynVariant variant);

/// Factory for the edit-distance GA (stateless fitness; no models).
baselines::MethodFactory makeEditFactory(const ExperimentConfig& config);

/// Factory for an oracle method.
baselines::MethodFactory makeOracleFactory(const ExperimentConfig& config,
                                           fitness::BalanceMetric metric);

/// Factories for every method of makeAllMethods, in the same order.
std::vector<baselines::MethodFactory> makeAllMethodFactories(
    const ExperimentConfig& config, const TrainedModels& models);

}  // namespace netsyn::harness
