// Experiment runner: executes a method over a workload with K repetitions
// per program and derives the paper's reporting series (search-space and
// synthesis-time percentile rows of Tables 3/4, per-program synthesis rates
// of Figure 4(d-f), per-function percentages of Figure 6).
#pragma once

#include <array>
#include <vector>

#include "baselines/method.hpp"
#include "harness/registry.hpp"
#include "harness/workload.hpp"
#include "util/table.hpp"

namespace netsyn::harness {

struct RunRecord {
  bool found = false;
  std::size_t candidates = 0;
  double seconds = 0.0;
  std::size_t generations = 0;
  /// Per-island accounting (best fitness, ledger-granted evals,
  /// migrations); empty for single-population methods. Deterministic for a
  /// fixed (seed, K) like the fields above, so parallel and sequential
  /// runners report identical stats (pinned by tests).
  std::vector<core::IslandStats> islands;

  /// Sum of migrants accepted across this run's islands.
  std::size_t migrationsAccepted() const;
};

struct ProgramResult {
  std::size_t programId = 0;
  std::size_t length = 0;
  bool singleton = false;
  dsl::Program target;
  std::vector<RunRecord> runs;  ///< K entries

  /// Fraction of the K runs that synthesized the program (Fig. 4d-f).
  double synthesisRate() const;
  /// Synthesized at least once across the K runs (the paper's "programs
  /// synthesized" count).
  bool synthesized() const;
  /// Mean candidates searched over the successful runs (0 if none).
  double meanCandidatesWhenFound() const;
  /// Mean wall-clock seconds over the successful runs (0 if none).
  double meanSecondsWhenFound() const;
  /// Mean GA generations over the successful runs (0 if none).
  double meanGenerationsWhenFound() const;
};

struct MethodReport {
  std::string method;
  std::size_t budget = 0;
  std::vector<ProgramResult> programs;

  /// Fraction of programs synthesized at least once.
  double synthesizedFraction() const;
  /// Mean per-program synthesis rate (Table 2's "Avg Syn. Rate").
  double meanSynthesisRate() const;
  /// Mean generations over synthesized programs (Table 2's "Avg
  /// Generation").
  double meanGenerations() const;
};

/// The deterministic RNG for run `k` of workload program `p`: derived from
/// (config.seed, p, k) only, never from scheduling. Every executor of
/// (program, run) tasks — the sequential runner, the parallel runner, and
/// the synthesis service's shared worker pool — seeds through this one
/// function, which is what makes their reports bit-identical.
util::Rng runSeedRng(const ExperimentConfig& config, std::size_t p,
                     std::size_t k);

/// Runs `method` over `workload` with config.runsPerProgram repetitions,
/// sequentially (a single method instance is not thread-safe, so this
/// overload ignores config.workers). Deterministic: run k of program p uses
/// a seed derived from (config.seed, p, k). Progress lines go to stderr
/// when `verbose`.
MethodReport runMethod(baselines::Method& method,
                       const std::vector<TestProgram>& workload,
                       const ExperimentConfig& config, bool verbose = true);

/// Parallel runner: dispatches every (program, run) pair onto a pool of
/// config.workers threads (0 = one per hardware thread), each worker grading
/// with its own method instance from `makeMethod`. Because run k of program
/// p is seeded from (config.seed, p, k) and every result lands in its
/// preassigned slot, the report's deterministic fields (found / candidates /
/// generations and everything derived from them) are identical to a
/// sequential run; only the wall-clock `seconds` fields vary.
MethodReport runMethod(const baselines::MethodFactory& makeMethod,
                       const std::vector<TestProgram>& workload,
                       const ExperimentConfig& config, bool verbose = true);

/// Percentile row (Tables 3 and 4): entry i is the per-program statistic
/// needed to synthesize (i+1)*10% of the workload's programs, or NaN when
/// the method never synthesizes that many. `useTime` selects seconds
/// (Table 3) versus budget fraction (Table 4).
std::array<double, 10> percentileRow(const MethodReport& report,
                                     bool useTime);

/// Appends the report as one row of a Table-3/4-style util::Table
/// ("Method | Synth% | 10% .. 100%").
void appendPercentileRow(util::Table& table, const MethodReport& report,
                         bool useTime);

/// Header for the percentile tables.
std::vector<std::string> percentileHeader(const std::string& metricLabel);

}  // namespace netsyn::harness
