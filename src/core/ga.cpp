#include "core/ga.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsl/domain.hpp"

namespace netsyn::core {

dsl::Program crossover(const dsl::Program& a, const dsl::Program& b,
                       util::Rng& rng) {
  if (a.length() != b.length() || a.length() < 2)
    throw std::invalid_argument(
        "crossover requires equal-length parents of length >= 2");
  // Cut in [1, L-1] so the child takes at least one function from each side.
  const std::size_t cut =
      1 + static_cast<std::size_t>(rng.uniform(a.length() - 1));
  std::vector<dsl::FuncId> fns;
  fns.reserve(a.length());
  for (std::size_t i = 0; i < cut; ++i) fns.push_back(a.at(i));
  for (std::size_t i = cut; i < b.length(); ++i) fns.push_back(b.at(i));
  return dsl::Program(std::move(fns));
}

dsl::Program mutate(const dsl::Program& gene, util::Rng& rng,
                    const FunctionWeights* weights,
                    const dsl::Domain* domain) {
  if (gene.empty()) throw std::invalid_argument("cannot mutate empty gene");
  // All arithmetic runs in domain-local index space; for the list domain
  // local == global FuncId, so draws and RNG consumption match the
  // pre-domain operator exactly (pinned by test_domain_parity).
  const dsl::Domain& dom = dsl::resolveDomain(domain);
  const std::size_t vocab = dom.vocabSize();
  dsl::Program out = gene;
  const std::size_t pos =
      static_cast<std::size_t>(rng.uniform(gene.length()));
  const std::size_t old = dom.localIndex(gene.at(pos));

  std::size_t next = old;
  if (weights != nullptr) {
    // Roulette over the probability map, excluding the current function
    // (z' != z_k is required by the paper).
    if (weights->size() != vocab)
      throw std::invalid_argument("mutation weights/vocabulary size mismatch");
    std::vector<double> w(*weights);
    w[old] = 0.0;
    next = rng.roulette(w);
    if (next == old) {  // all-zero map fallback chose `old` uniformly
      next = (old + 1 + rng.uniform(vocab - 1)) % vocab;
    }
  } else {
    // Uniform over the other |Sigma|-1 functions.
    next = (old + 1 + rng.uniform(vocab - 1)) % vocab;
  }
  out.set(pos, dom.vocabulary[next]);
  return out;
}

std::size_t rouletteSelect(const Population& pop, util::Rng& rng) {
  if (pop.empty()) throw std::invalid_argument("empty population");
  std::vector<double> weights;
  weights.reserve(pop.size());
  for (const auto& ind : pop) weights.push_back(ind.fitness);
  return rng.roulette(weights);
}

std::vector<std::size_t> topIndices(const Population& pop,
                                    std::size_t count) {
  std::vector<std::size_t> idx(pop.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const std::size_t k = std::min(count, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&pop](std::size_t a, std::size_t b) {
                      return pop[a].fitness > pop[b].fitness;
                    });
  idx.resize(k);
  return idx;
}

std::vector<dsl::Program> breed(const Population& pop, const GaConfig& config,
                                const dsl::InputSignature& sig,
                                const dsl::Generator& gen, util::Rng& rng,
                                const FunctionWeights* mutationWeights) {
  if (pop.empty()) throw std::invalid_argument("empty population");
  const std::size_t length = pop.front().program.length();

  std::vector<dsl::Program> next;
  next.reserve(config.populationSize);

  // Elitism: the top `eliteCount` genes survive unmodified, guaranteeing
  // forward progress (paper §4.2).
  for (std::size_t i : topIndices(pop, config.eliteCount))
    next.push_back(pop[i].program);

  while (next.size() < config.populationSize) {
    std::optional<dsl::Program> child;
    for (std::size_t attempt = 0; attempt < config.dceRetries; ++attempt) {
      const double roll = rng.uniformReal();
      dsl::Program candidate;
      if (roll < config.crossoverRate && length >= 2) {
        const auto& pa = pop[rouletteSelect(pop, rng)].program;
        const auto& pb = pop[rouletteSelect(pop, rng)].program;
        candidate = crossover(pa, pb, rng);
      } else if (roll < config.crossoverRate + config.mutationRate) {
        candidate =
            mutate(pop[rouletteSelect(pop, rng)].program, rng,
                   mutationWeights, &gen.domain());
      } else {
        candidate = pop[rouletteSelect(pop, rng)].program;  // reproduction
      }
      if (dsl::isFullyLive(candidate, sig)) {
        child = std::move(candidate);
        break;
      }
    }
    if (!child) {
      // Last resort: a fresh fully-live random gene keeps the pool at size.
      child = gen.randomProgram(length, sig, rng);
      if (!child) throw std::runtime_error("cannot generate fully-live gene");
    }
    next.push_back(std::move(*child));
  }
  return next;
}

}  // namespace netsyn::core
