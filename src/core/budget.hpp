// Search-space budget: the paper's primary metric and stopping criterion.
//
// Every method (NetSyn, baselines, neighborhood search) counts each
// *distinct candidate program examined* against a shared budget (§5: "we set
// the maximum search space size to 3,000,000 candidate programs"). A method
// that exhausts the budget without finding an equivalent program concludes
// "solution not found".
#pragma once

#include <cstddef>

namespace netsyn::core {

class SearchBudget {
 public:
  explicit SearchBudget(std::size_t limit) : limit_(limit) {}

  std::size_t limit() const { return limit_; }
  std::size_t used() const { return used_; }
  std::size_t remaining() const { return limit_ - used_; }
  bool exhausted() const { return used_ >= limit_; }

  /// Consumes one candidate; false when the budget is already exhausted
  /// (in which case nothing is consumed).
  bool tryConsume() {
    if (exhausted()) return false;
    ++used_;
    return true;
  }

  /// Fraction of the budget consumed, in [0, 1].
  double usedFraction() const {
    return limit_ == 0 ? 1.0
                       : static_cast<double>(used_) /
                             static_cast<double>(limit_);
  }

 private:
  std::size_t limit_;
  std::size_t used_ = 0;
};

}  // namespace netsyn::core
