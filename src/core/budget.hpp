// Search-space budget: the paper's primary metric and stopping criterion.
//
// Every method (NetSyn, baselines, neighborhood search) counts each
// *distinct candidate program examined* against a shared budget (§5: "we set
// the maximum search space size to 3,000,000 candidate programs"). A method
// that exhausts the budget without finding an equivalent program concludes
// "solution not found".
//
// ---- Budget-ledger semantics (island-model search) --------------------------
//
// The island engine (core/islands.cpp) runs K sub-populations, each charging
// its own SearchBudget, while the *global* candidate limit stays a single
// number with single-population semantics: across all islands, at most
// `limit` candidates count, charged in a deterministic order that does not
// depend on how islands are scheduled onto threads. BudgetLedger implements
// this with a lockstep round protocol:
//
//   1. openRound(): before every generation, each island's local budget is
//      extended to `local.used() + ledger.remaining()` — an island may
//      optimistically examine up to the whole global remainder this round.
//      Islands then run their generation in parallel, charging only their
//      local budgets (no shared mutable state, hence no races and no
//      schedule-dependent interleaving).
//   2. commit(): at the round barrier the coordinator charges each island's
//      round usage against the ledger in fixed island order 0..K-1. The
//      grant is min(used, remaining): the island whose request crosses the
//      limit is truncated at the exact candidate where a single population
//      would have stopped, and every later island's round grants 0. The
//      walk also stops at the first island whose solution fell inside its
//      grant — in the canonical sequential interleaving (round-major,
//      island-major) the search ends there, so later islands' round work is
//      neither examined nor charged.
//
// Consequences, all deterministic for a fixed (seed, K) regardless of the
// thread count:
//   - committed() never exceeds limit(), and equals the sum of per-island
//     grants — the reported "candidates searched".
//   - A solution found by island i in a round stands only if its position
//     within the island's round stream falls inside island i's grant;
//     otherwise the ledger was already exhausted when a sequential
//     interleaving would have reached it, and the search reports failure
//     (exactly like a single population running out of budget one candidate
//     short). A truncated grant always exhausts the ledger, so an
//     invalidated solution can never coexist with budget to spare.
//   - With K == 1 the protocol degenerates to the plain SearchBudget: the
//     island's limit is always the global limit, grants always equal usage,
//     and truncation never fires (pinned by tests/test_islands.cpp).
//
// Islands may transiently *execute* more candidates than they are granted in
// the final round; only granted candidates are counted or allowed to produce
// the solution, so the metric and the outcome match single-population
// semantics. Be honest about the bound on that wasted work: one round is one
// generation *including any saturation-triggered neighborhood search*, and
// an NS sweep may legitimately run until the island's opened allowance —
// the whole global remainder — is gone. In the worst case (several islands
// saturating in the same late round) up to (K-1) x remaining() evaluations
// of wall-clock work are executed and then discarded at the barrier. That
// is CPU time, never counted candidates; if it matters for a deployment,
// lower SynthesizerConfig::nsTopN or disable NS on all but one island via
// IslandsConfig::tweaks.
#pragma once

#include <cassert>
#include <cstddef>

namespace netsyn::core {

class SearchBudget {
 public:
  explicit SearchBudget(std::size_t limit) : limit_(limit) {}

  /// Rebuilds a budget mid-flight: `used` candidates already charged
  /// against `limit`. This is the checkpoint/resume handoff — the synthesis
  /// service snapshots a paused search's budget as a plain used-count and
  /// reconstructs it here, so the resumed search charges its (limit - used)
  /// remainder exactly where the original would have.
  static SearchBudget resumed(std::size_t limit, std::size_t used) {
    assert(used <= limit);
    SearchBudget b(limit);
    b.used_ = used < limit ? used : limit;
    return b;
  }

  std::size_t limit() const { return limit_; }
  std::size_t used() const { return used_; }
  std::size_t remaining() const { return limit_ - used_; }
  bool exhausted() const { return used_ >= limit_; }

  /// Consumes one candidate; false when the budget is already exhausted
  /// (in which case nothing is consumed).
  bool tryConsume() {
    if (exhausted()) return false;
    ++used_;
    return true;
  }

  /// Re-targets the limit. Used by BudgetLedger::openRound to hand an
  /// island its per-round allowance; never shrinks below used() (remaining()
  /// must stay well-defined).
  void setLimit(std::size_t limit) {
    assert(limit >= used_);
    limit_ = limit < used_ ? used_ : limit;
  }

  /// Fraction of the budget consumed, in [0, 1].
  double usedFraction() const {
    return limit_ == 0 ? 1.0
                       : static_cast<double>(used_) /
                             static_cast<double>(limit_);
  }

 private:
  std::size_t limit_;
  std::size_t used_ = 0;
};

/// Global candidate ledger for multi-population search (semantics above).
/// Mutated only by the coordinator thread at round barriers; islands never
/// touch it directly.
class BudgetLedger {
 public:
  explicit BudgetLedger(std::size_t limit) : limit_(limit) {}

  std::size_t limit() const { return limit_; }
  std::size_t committed() const { return committed_; }
  std::size_t remaining() const { return limit_ - committed_; }
  bool exhausted() const { return committed_ >= limit_; }

  /// Step 1 of the round protocol: lets `local` spend up to the global
  /// remainder on top of what it has already used.
  void openRound(SearchBudget& local) const {
    local.setLimit(local.used() + remaining());
  }

  /// Step 2, called in island order at the barrier: charges `requested`
  /// candidates, truncating at the global limit. Returns the grant.
  std::size_t commit(std::size_t requested) {
    const std::size_t grant = requested < remaining() ? requested : remaining();
    committed_ += grant;
    return grant;
  }

 private:
  std::size_t limit_;
  std::size_t committed_ = 0;
};

}  // namespace netsyn::core
