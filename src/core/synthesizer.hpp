// The NetSyn synthesizer: a genetic algorithm over DSL programs driven by a
// (learned or oracle) fitness function, with saturation-triggered local
// neighborhood search (paper Figure 1, §4.2).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/neighborhood.hpp"
#include "dsl/generator.hpp"
#include "dsl/spec.hpp"
#include "fitness/fitness.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/rng.hpp"

namespace netsyn::core {

struct SynthesizerConfig {
  GaConfig ga;
  std::size_t maxGenerations = 30000;  ///< paper Appendix B
  bool useNeighborhoodSearch = true;
  NsKind nsKind = NsKind::BFS;
  std::size_t nsTopN = 5;    ///< genes handed to NS
  std::size_t nsWindow = 10; ///< sliding window w of the saturation trigger
  bool fpGuidedMutation = false;  ///< Mutation_FP (needs a ProbMapProvider)
  /// Grade populations through FitnessFunction::scoreBatch (one batched NN
  /// forward per generation) instead of per-gene score() calls. The search
  /// trajectory is identical either way (pinned by tests); the flag exists
  /// for ablation and as a debugging fallback.
  bool batchedEvaluation = true;
  dsl::GeneratorConfig generator;
  /// Record per-generation statistics in SynthesisResult::history (off by
  /// default: the history of a 30,000-generation run is sizeable).
  bool recordHistory = false;
};

/// One generation's summary, recorded when recordHistory is set.
struct GenerationStats {
  std::size_t generation = 0;
  double bestFitness = 0.0;   ///< best in the new population
  double meanFitness = 0.0;   ///< population mean
  std::size_t budgetUsed = 0; ///< cumulative distinct candidates examined
  bool nsTriggered = false;   ///< saturation fired neighborhood search
};

struct SynthesisResult {
  bool found = false;
  dsl::Program solution;              ///< valid iff found
  std::size_t candidatesSearched = 0; ///< the paper's search-space metric
  std::size_t generations = 0;
  double seconds = 0.0;
  std::size_t nsInvocations = 0;
  bool foundByNs = false;
  double bestFitness = 0.0;
  /// Per-generation evolution trace (only when config.recordHistory).
  std::vector<GenerationStats> history;
};

/// One synthesizer instance is reusable across specs (the fitness cache is
/// per-call). Not thread-safe; create one per worker.
class Synthesizer {
 public:
  /// `fitnessFn` grades genes; `probMap` (optional) supplies Mutation_FP's
  /// per-function weights. For NetSyn_FP the same object typically serves
  /// as both.
  Synthesizer(SynthesizerConfig config, fitness::FitnessPtr fitnessFn,
              std::shared_ptr<fitness::ProbMapProvider> probMap = nullptr);

  const SynthesizerConfig& config() const { return config_; }

  /// Searches for a program of length `targetLength` equivalent to the spec
  /// within `budgetLimit` examined candidates.
  SynthesisResult synthesize(const dsl::Spec& spec, std::size_t targetLength,
                             std::size_t budgetLimit, util::Rng& rng) const;

 private:
  SynthesizerConfig config_;
  fitness::FitnessPtr fitness_;
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
};

}  // namespace netsyn::core
