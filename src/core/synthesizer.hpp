// The NetSyn synthesizer: a genetic algorithm over DSL programs driven by a
// (learned or oracle) fitness function, with saturation-triggered local
// neighborhood search (paper Figure 1, §4.2).
//
// Two search strategies share this front door:
//   SinglePopulation — the paper's search: one panmictic population
//                      (implemented as one SearchState, search_state.hpp).
//   Islands          — K sub-populations evolving in deterministic lockstep
//                      with periodic elite migration and one global
//                      candidate ledger (islands.hpp / islands.cpp).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/islands.hpp"
#include "core/neighborhood.hpp"
#include "dsl/generator.hpp"
#include "dsl/spec.hpp"
#include "fitness/fitness.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/rng.hpp"

namespace netsyn::core {

/// Population layout of the search (see header comment).
enum class SearchStrategy : std::uint8_t { SinglePopulation, Islands };

struct SynthesizerConfig {
  GaConfig ga;
  std::size_t maxGenerations = 30000;  ///< paper Appendix B
  bool useNeighborhoodSearch = true;
  NsKind nsKind = NsKind::BFS;
  std::size_t nsTopN = 5;    ///< genes handed to NS
  std::size_t nsWindow = 10; ///< sliding window w of the saturation trigger
  bool fpGuidedMutation = false;  ///< Mutation_FP (needs a ProbMapProvider)
  /// Grade populations through FitnessFunction::scoreBatch (one batched NN
  /// forward per generation) instead of per-gene score() calls. The search
  /// trajectory is identical either way (pinned by tests); the flag exists
  /// for ablation and as a debugging fallback.
  bool batchedEvaluation = true;
  /// Execute candidates through the SoA SIMD lane executor (default) or the
  /// scalar statement-major loop. Traces and the whole search trajectory
  /// are identical either way (the lane path is fuzz-pinned against the
  /// scalar oracle); the flag exists for ablation and as a debugging
  /// fallback, mirroring batchedEvaluation.
  bool simdExecutor = true;
  dsl::GeneratorConfig generator;
  /// Record per-generation statistics in SynthesisResult::history (off by
  /// default: the history of a 30,000-generation run is sizeable).
  bool recordHistory = false;

  SearchStrategy strategy = SearchStrategy::SinglePopulation;
  /// Island-model parameters; consulted only when strategy == Islands.
  IslandsConfig islands;
};

/// One generation's summary, recorded when recordHistory is set.
struct GenerationStats {
  std::size_t generation = 0;
  double bestFitness = 0.0;   ///< best in the new population
  double meanFitness = 0.0;   ///< population mean
  std::size_t budgetUsed = 0; ///< cumulative distinct candidates examined
  bool nsTriggered = false;   ///< saturation fired neighborhood search
};

struct SynthesisResult {
  bool found = false;
  dsl::Program solution;              ///< valid iff found
  std::size_t candidatesSearched = 0; ///< the paper's search-space metric
  std::size_t generations = 0;
  double seconds = 0.0;
  std::size_t nsInvocations = 0;
  bool foundByNs = false;
  double bestFitness = 0.0;
  /// Per-generation evolution trace (only when config.recordHistory).
  std::vector<GenerationStats> history;
  /// Per-island accounting (empty for SinglePopulation searches).
  std::vector<IslandStats> islandStats;
};

/// One synthesizer instance is reusable across specs (the fitness cache is
/// per-call). Not thread-safe; create one per worker.
class Synthesizer {
 public:
  /// `fitnessFn` grades genes; `probMap` (optional) supplies Mutation_FP's
  /// per-function weights. For NetSyn_FP the same object typically serves
  /// as both. `islandFitness` (optional) builds per-island fitness clones;
  /// it is consulted only by Islands-strategy searches, which fall back to
  /// sequential island stepping over the shared instances when it is
  /// absent.
  Synthesizer(SynthesizerConfig config, fitness::FitnessPtr fitnessFn,
              std::shared_ptr<fitness::ProbMapProvider> probMap = nullptr,
              IslandFitnessFactory islandFitness = nullptr);

  const SynthesizerConfig& config() const { return config_; }

  /// Searches for a program of length `targetLength` equivalent to the spec
  /// within `budgetLimit` examined candidates.
  SynthesisResult synthesize(const dsl::Spec& spec, std::size_t targetLength,
                             std::size_t budgetLimit, util::Rng& rng) const;

 private:
  SynthesizerConfig config_;
  fitness::FitnessPtr fitness_;
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
  IslandFitnessFactory islandFitness_;
};

/// Island-model search engine (islands.cpp). Evolves config.islands.count
/// sub-populations in lockstep rounds, with elite migration every
/// config.islands.migrationInterval generations and a global BudgetLedger
/// enforcing single-population budget semantics (budget.hpp). For a fixed
/// (seed, K) the outcome — solution, candidate counts, per-island stats —
/// is identical for every thread count; with K == 1 it is identical to the
/// SinglePopulation search on the same rng (both pinned by tests).
/// `sharedFitness`/`sharedProbMap` are used for every island when `factory`
/// is null (forcing sequential stepping); otherwise island i grades with
/// factory(i)'s instances and islands run on a worker pool.
SynthesisResult runIslandSearch(
    const SynthesizerConfig& config, const fitness::FitnessPtr& sharedFitness,
    const std::shared_ptr<fitness::ProbMapProvider>& sharedProbMap,
    const IslandFitnessFactory& factory, const dsl::Spec& spec,
    std::size_t targetLength, std::size_t budgetLimit, util::Rng& rng);

}  // namespace netsyn::core
