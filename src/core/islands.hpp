// Island-model configuration and reporting types.
//
// The island engine (islands.cpp, entry point declared in synthesizer.hpp)
// evolves K independent sub-populations in deterministic lockstep rounds on
// a worker pool, exchanging elites every few generations and charging one
// global BudgetLedger (budget.hpp) so the whole ensemble respects the
// paper's single-population candidate budget. This header holds the plain
// data types shared by the engine, the synthesizer configuration, and the
// experiment harness; it deliberately knows nothing about the engine itself
// so synthesizer.hpp can embed IslandsConfig without a cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/neighborhood.hpp"
#include "fitness/fitness.hpp"
#include "fitness/neural_fitness.hpp"

namespace netsyn::core {

/// Which islands exchange migrants.
enum class Topology : std::uint8_t {
  Ring,            ///< island i sends its elites to island (i+1) mod K
  FullyConnected,  ///< every island sends its elites to every other island
};

/// Optional per-island search mutations: heterogeneous ensembles explore
/// with different operator mixes (a portfolio, in the MizAR sense) while
/// staying bit-deterministic — island i applies tweaks[i % tweaks.size()].
struct IslandTweak {
  double mutationRateScale = 1.0;   ///< scales GaConfig::mutationRate
  double crossoverRateScale = 1.0;  ///< scales GaConfig::crossoverRate
  std::optional<NsKind> nsKind;     ///< override the NS flavour
  /// Override Mutation_FP on/off (enabling is honoured only when a prob-map
  /// provider exists; disabling turns the island into a uniform mutator).
  std::optional<bool> fpGuidedMutation;
};

struct IslandsConfig {
  std::size_t count = 1;              ///< K sub-populations
  std::size_t migrationInterval = 10; ///< M: migrate every M generations
  std::size_t migrationSize = 2;      ///< E: elites sent per migration
  Topology topology = Topology::Ring;
  /// Worker threads driving the islands (0 = one per island, capped by the
  /// hardware). Purely a throughput knob: results are identical for every
  /// value (pinned by tests). Islands without isolated per-island fitness
  /// instances always run on one thread.
  std::size_t threads = 0;
  /// Apply a default operator-diversity cycle when `tweaks` is empty.
  bool heterogeneous = false;
  /// Explicit per-island overrides (cyclic); takes precedence over
  /// `heterogeneous`.
  std::vector<IslandTweak> tweaks;
};

/// Per-island accounting reported in SynthesisResult::islandStats.
struct IslandStats {
  std::size_t island = 0;
  double bestFitness = 0.0;    ///< best fitness the island ever graded
  std::size_t evals = 0;       ///< candidates granted by the ledger
  std::size_t generations = 0; ///< generations the island completed
  std::size_t emigrants = 0;   ///< elites sent to neighbours
  std::size_t immigrants = 0;  ///< migrants accepted (post-dedup)
  std::size_t nsInvocations = 0;
  bool solved = false;         ///< this island produced the winning solution
};

/// One island's grading kit. NN-backed fitness functions carry mutable
/// inference scratch, so parallel islands each need their own clone — the
/// same isolation rule the parallel experiment runner applies per worker.
struct IslandFitness {
  fitness::FitnessPtr fitness;
  std::shared_ptr<fitness::ProbMapProvider> probMap;
};

/// Produces island `i`'s private fitness instances. When absent, every
/// island shares the synthesizer's single instances and the engine degrades
/// to sequential island stepping (same results, no parallel speedup).
using IslandFitnessFactory = std::function<IslandFitness(std::size_t)>;

}  // namespace netsyn::core
