// Restricted local neighborhood search (paper §4.2.2, Algorithm 1).
//
// Given the top-N genes of the current population, the BFS variant tests
// every single-function substitution of every gene against the spec
// (O(N * len * |Sigma|) candidates). The DFS variant walks positions
// left-to-right, committing at each depth to the best-scoring substitution
// before descending. The search is triggered by the synthesizer when the
// sliding-window mean fitness saturates.
#pragma once

#include <functional>
#include <optional>

#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "dsl/program.hpp"

namespace netsyn::core {

enum class NsKind : std::uint8_t { BFS, DFS };

struct NsResult {
  std::optional<dsl::Program> solution;  ///< set when equivalence was found
  std::size_t candidatesChecked = 0;
  bool budgetExhausted = false;
};

/// Scores a candidate for the DFS variant's greedy descent (the synthesizer
/// passes its budgeted fitness evaluation).
using NsScorer = std::function<double(const dsl::Program&)>;

/// Batched scorer: result[i] is the grade of *genes[i]. The synthesizer
/// backs this with FitnessFunction::scoreBatch so a whole depth level of the
/// DFS descent is graded in one batched NN forward.
using NsBatchScorer =
    std::function<std::vector<double>(const std::vector<const dsl::Program*>&)>;

/// BFS neighborhood search over `genes` (Algorithm 1): tries every
/// single-position substitution from the domain's vocabulary (nullptr =
/// list domain, the pre-domain behaviour); returns on the first equivalent
/// program or when all neighborhoods are exhausted. Stops early if the
/// budget runs out.
NsResult neighborhoodSearchBfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const dsl::Domain* domain = nullptr);

/// DFS neighborhood search: per gene, per position (depth), evaluates all
/// substitutions; if none is equivalent, replaces the gene's function at
/// that position with the best-scoring substitution and moves to the next
/// depth. `scorer` grades candidates (it must not consume budget; the NS
/// charges each examined candidate itself via `evaluator`).
NsResult neighborhoodSearchDfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const NsScorer& scorer,
                               const dsl::Domain* domain = nullptr);

/// Batch-scored DFS: identical search (same checks in the same order, same
/// greedy tie-breaking) but each depth level's surviving neighbors are
/// graded with one NsBatchScorer call instead of one scorer call per
/// neighbor.
NsResult neighborhoodSearchDfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const NsBatchScorer& scorer,
                               const dsl::Domain* domain = nullptr);

}  // namespace netsyn::core
