#include "core/synthesizer.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace netsyn::core {
namespace {

/// Cache key: the full-width function ids of a gene — exact, no collisions.
/// A stale hit here would skip the gene's execution (and with it the
/// equivalence check), so unlike the evaluator's dedup — where every
/// candidate is executed regardless and a fingerprint collision only
/// perturbs the searched-count metric — this cache must never alias two
/// genes. idKey() fits in the small-string buffer for every realistic
/// program length, so lookups stay allocation-free.
std::string cacheKey(const dsl::Program& p) { return p.idKey(); }

}  // namespace

Synthesizer::Synthesizer(SynthesizerConfig config,
                         fitness::FitnessPtr fitnessFn,
                         std::shared_ptr<fitness::ProbMapProvider> probMap)
    : config_(std::move(config)),
      fitness_(std::move(fitnessFn)),
      probMap_(std::move(probMap)) {
  if (!fitness_) throw std::invalid_argument("fitness function required");
  if (config_.fpGuidedMutation && !probMap_)
    throw std::invalid_argument(
        "fpGuidedMutation requires a ProbMapProvider");
}

SynthesisResult Synthesizer::synthesize(const dsl::Spec& spec,
                                        std::size_t targetLength,
                                        std::size_t budgetLimit,
                                        util::Rng& rng) const {
  util::Timer timer;
  SynthesisResult result;
  SearchBudget budget(budgetLimit);
  SpecEvaluator evaluator(spec, budget);
  const dsl::InputSignature sig = spec.signature();
  const dsl::Generator gen(config_.generator);

  // Fitness of already-examined genes; duplicates (elites, re-bred copies)
  // are not re-executed and not re-charged against the budget.
  std::unordered_map<std::string, double> cache;

  auto finish = [&](SynthesisResult r) {
    r.candidatesSearched = budget.used();
    r.seconds = timer.seconds();
    return r;
  };

  bool solved = false;

  // Grades a whole population. The distinct uncached genes are charged +
  // executed in order through SpecEvaluator::evaluateBatch — the same budget
  // consumption, dedup, and early-exit points as grading one gene at a time
  // — and the genes that survive (not cached, not duplicates, not the
  // solution) are scored in one FitnessFunction::scoreBatch call (or
  // per-gene when batchedEvaluation is off; the two modes produce identical
  // results).
  //
  // Returns the number of genes graded: progs.size() normally, or the index
  // the walk stopped at because the budget ran out or a gene satisfied the
  // spec (`solved` set, result filled in). scores[i] is valid for every
  // graded i either way.
  auto gradePopulation = [&](const std::vector<dsl::Program>& progs,
                             std::vector<double>& scores) -> std::size_t {
    scores.assign(progs.size(), 0.0);
    // Distinct uncached genes in first-seen order.
    std::vector<const dsl::Program*> pending;
    std::vector<std::string> pendingKeys;
    std::vector<std::size_t> pendingOrigin;  // pending slot -> gene index
    std::unordered_map<std::string, std::size_t> pendingIndex;
    std::vector<std::ptrdiff_t> aliasOf(progs.size(), -1);

    for (std::size_t i = 0; i < progs.size(); ++i) {
      std::string key = cacheKey(progs[i]);
      if (const auto it = cache.find(key); it != cache.end()) {
        scores[i] = it->second;
        continue;
      }
      if (const auto it = pendingIndex.find(key); it != pendingIndex.end()) {
        aliasOf[i] = static_cast<std::ptrdiff_t>(it->second);
        continue;
      }
      aliasOf[i] = static_cast<std::ptrdiff_t>(pending.size());
      pendingIndex.emplace(key, pending.size());
      pending.push_back(&progs[i]);
      pendingKeys.push_back(std::move(key));
      pendingOrigin.push_back(i);
    }

    auto evals = evaluator.evaluateBatch(pending);
    std::size_t graded = progs.size();
    std::size_t scored = pending.size();
    for (std::size_t j = 0; j < evals.size(); ++j) {
      if (!evals[j].has_value()) {  // budget ran out at pending gene j
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
      if (evals[j]->satisfied) {
        solved = true;
        result.found = true;
        result.solution = *pending[j];
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
    }

    // Score the pending genes examined before any cutoff.
    std::vector<double> pendingScores;
    if (scored > 0) {
      std::vector<const dsl::Program*> toScore(pending.begin(),
                                               pending.begin() + scored);
      std::deque<fitness::EvalContext> contextStore;
      std::vector<const fitness::EvalContext*> contexts;
      contexts.reserve(scored);
      for (std::size_t j = 0; j < scored; ++j) {
        contextStore.push_back(fitness::EvalContext{spec, evals[j]->runs});
        contexts.push_back(&contextStore.back());
      }
      if (config_.batchedEvaluation) {
        pendingScores = fitness_->scoreBatch(toScore, contexts);
      } else {
        pendingScores.reserve(scored);
        for (std::size_t j = 0; j < scored; ++j)
          pendingScores.push_back(fitness_->score(*toScore[j], *contexts[j]));
      }
      for (std::size_t j = 0; j < scored; ++j)
        cache.emplace(std::move(pendingKeys[j]), pendingScores[j]);
    }
    // Scoring is done with the runs; hand the trace storage back so the
    // next generation refills it instead of allocating.
    evaluator.recycle(std::move(evals));
    for (std::size_t i = 0; i < graded; ++i) {
      if (aliasOf[i] >= 0)
        scores[i] = pendingScores[static_cast<std::size_t>(aliasOf[i])];
      result.bestFitness = std::max(result.bestFitness, scores[i]);
    }
    return graded;
  };

  // Batched scorer for the DFS neighborhood search's greedy descent: grades
  // without charging the budget (the NS itself charges each examined
  // neighbor through the evaluator) and without polluting the cache. Shares
  // the evaluator's plan cache and recycles run storage across calls.
  std::vector<std::vector<dsl::ExecResult>> nsRunsPool;
  auto nsBatchScorer = [&](const std::vector<const dsl::Program*>& genes)
      -> std::vector<double> {
    std::vector<double> out(genes.size(), 0.0);
    std::vector<const dsl::Program*> pending;
    std::vector<std::size_t> pendingAt;
    std::deque<std::vector<dsl::ExecResult>> pendingRuns;
    std::deque<fitness::EvalContext> contextStore;
    std::vector<const fitness::EvalContext*> contexts;
    for (std::size_t i = 0; i < genes.size(); ++i) {
      if (const auto it = cache.find(cacheKey(*genes[i])); it != cache.end()) {
        out[i] = it->second;
        continue;
      }
      std::vector<dsl::ExecResult> runs;
      if (!nsRunsPool.empty()) {
        runs = std::move(nsRunsPool.back());
        nsRunsPool.pop_back();
      }
      runs.resize(spec.size());
      const dsl::ExecPlan& plan = evaluator.executor().planFor(*genes[i], sig);
      for (std::size_t j = 0; j < spec.size(); ++j)
        dsl::executePlan(plan, spec.examples[j].inputs, runs[j]);
      pendingRuns.push_back(std::move(runs));
      contextStore.push_back(fitness::EvalContext{spec, pendingRuns.back()});
      contexts.push_back(&contextStore.back());
      pending.push_back(genes[i]);
      pendingAt.push_back(i);
    }
    if (!pending.empty()) {
      std::vector<double> scores;
      if (config_.batchedEvaluation) {
        scores = fitness_->scoreBatch(pending, contexts);
      } else {
        scores.reserve(pending.size());
        for (std::size_t j = 0; j < pending.size(); ++j)
          scores.push_back(fitness_->score(*pending[j], *contexts[j]));
      }
      for (std::size_t j = 0; j < pending.size(); ++j)
        out[pendingAt[j]] = scores[j];
    }
    for (auto& runs : pendingRuns) nsRunsPool.push_back(std::move(runs));
    return out;
  };

  // ---- initial population (Phi_0) ----
  // Programs are generated up front (the generator is the only RNG consumer
  // here, so the stream matches gene-at-a-time seeding) and graded as one
  // batch.
  std::vector<dsl::Program> seedProgs;
  seedProgs.reserve(config_.ga.populationSize);
  for (std::size_t i = 0; i < config_.ga.populationSize; ++i) {
    auto prog = gen.randomProgram(targetLength, sig, rng);
    if (!prog) throw std::runtime_error("cannot seed initial population");
    seedProgs.push_back(std::move(*prog));
  }
  std::vector<double> scores;
  std::size_t graded = gradePopulation(seedProgs, scores);
  if (solved || graded < seedProgs.size()) return finish(result);

  Population pop;
  pop.reserve(seedProgs.size());
  for (std::size_t i = 0; i < seedProgs.size(); ++i)
    pop.push_back(Individual{std::move(seedProgs[i]), scores[i]});

  util::SlidingWindowMean window(config_.nsWindow);

  // ---- evolutionary loop ----
  for (std::size_t genIdx = 1; genIdx <= config_.maxGenerations; ++genIdx) {
    if (budget.exhausted()) break;
    result.generations = genIdx;

    FunctionWeights weights{};
    const FunctionWeights* weightsPtr = nullptr;
    if (config_.fpGuidedMutation) {
      const auto map = probMap_->probMap(spec);
      for (std::size_t i = 0; i < map.size(); ++i) weights[i] = map[i];
      weightsPtr = &weights;
    }

    const auto offspring =
        breed(pop, config_.ga, sig, gen, rng, weightsPtr);

    graded = gradePopulation(offspring, scores);
    if (solved || graded < offspring.size()) return finish(result);

    Population next;
    next.reserve(offspring.size());
    double fitnessSum = 0.0;
    for (std::size_t i = 0; i < offspring.size(); ++i) {
      next.push_back(Individual{offspring[i], scores[i]});
      fitnessSum += scores[i];
    }
    pop = std::move(next);
    window.push(fitnessSum / static_cast<double>(pop.size()));

    if (config_.recordHistory) {
      GenerationStats gs;
      gs.generation = genIdx;
      gs.meanFitness = fitnessSum / static_cast<double>(pop.size());
      for (const auto& ind : pop)
        gs.bestFitness = std::max(gs.bestFitness, ind.fitness);
      gs.budgetUsed = budget.used();
      gs.nsTriggered =
          config_.useNeighborhoodSearch && window.saturated();
      result.history.push_back(gs);
    }

    // ---- saturation-triggered neighborhood search ----
    if (config_.useNeighborhoodSearch && window.saturated()) {
      ++result.nsInvocations;
      std::vector<dsl::Program> top;
      for (std::size_t i : topIndices(pop, config_.nsTopN))
        top.push_back(pop[i].program);
      const NsResult ns =
          config_.nsKind == NsKind::BFS
              ? neighborhoodSearchBfs(top, evaluator)
              : neighborhoodSearchDfs(top, evaluator,
                                      NsBatchScorer(nsBatchScorer));
      if (ns.solution.has_value()) {
        result.found = true;
        result.foundByNs = true;
        result.solution = *ns.solution;
        return finish(result);
      }
      if (ns.budgetExhausted) break;
      window.reset();  // resume evolution with a fresh saturation window
    }
  }
  return finish(result);
}

}  // namespace netsyn::core
