#include "core/synthesizer.hpp"

#include <map>
#include <stdexcept>

#include "core/search_state.hpp"

namespace netsyn::core {

Synthesizer::Synthesizer(SynthesizerConfig config,
                         fitness::FitnessPtr fitnessFn,
                         std::shared_ptr<fitness::ProbMapProvider> probMap,
                         IslandFitnessFactory islandFitness)
    : config_(std::move(config)),
      fitness_(std::move(fitnessFn)),
      probMap_(std::move(probMap)) {
  if (!fitness_) throw std::invalid_argument("fitness function required");
  if (config_.fpGuidedMutation && !probMap_)
    throw std::invalid_argument(
        "fpGuidedMutation requires a ProbMapProvider");
  if (islandFitness) {
    // Island kits usually clone NN models — expensive. Memoize per island
    // index so a method instance clones once per island for its lifetime
    // (PR 1's one-clone-per-worker pattern), not once per synthesize()
    // call. Safe without locking: a Synthesizer is single-threaded by
    // contract, and runIslandSearch resolves all lanes on the coordinator
    // thread before any island steps.
    islandFitness_ = [inner = std::move(islandFitness),
                      kits = std::make_shared<std::map<std::size_t,
                                                       IslandFitness>>()](
                         std::size_t island) {
      if (const auto it = kits->find(island); it != kits->end())
        return it->second;
      return kits->emplace(island, inner(island)).first->second;
    };
  }
}

SynthesisResult Synthesizer::synthesize(const dsl::Spec& spec,
                                        std::size_t targetLength,
                                        std::size_t budgetLimit,
                                        util::Rng& rng) const {
  if (config_.strategy == SearchStrategy::Islands)
    return runIslandSearch(config_, fitness_, probMap_, islandFitness_, spec,
                           targetLength, budgetLimit, rng);

  // Single population: one SearchState stepped to a terminal status.
  SearchBudget budget(budgetLimit);
  SearchState state(config_, fitness_, probMap_, spec, targetLength, budget,
                    rng);
  SearchState::Status status = state.seed();
  while (status == SearchState::Status::Running) status = state.step();
  return state.finish();
}

}  // namespace netsyn::core
