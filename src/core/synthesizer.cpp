#include "core/synthesizer.hpp"

#include <stdexcept>

#include "util/stats.hpp"
#include "util/timer.hpp"

namespace netsyn::core {
namespace {

/// Cache key: the raw function bytes of a gene (exact, no hash collisions).
std::string cacheKey(const dsl::Program& p) {
  return std::string(reinterpret_cast<const char*>(p.functions().data()),
                     p.length());
}

}  // namespace

Synthesizer::Synthesizer(SynthesizerConfig config,
                         fitness::FitnessPtr fitnessFn,
                         std::shared_ptr<fitness::ProbMapProvider> probMap)
    : config_(std::move(config)),
      fitness_(std::move(fitnessFn)),
      probMap_(std::move(probMap)) {
  if (!fitness_) throw std::invalid_argument("fitness function required");
  if (config_.fpGuidedMutation && !probMap_)
    throw std::invalid_argument(
        "fpGuidedMutation requires a ProbMapProvider");
}

SynthesisResult Synthesizer::synthesize(const dsl::Spec& spec,
                                        std::size_t targetLength,
                                        std::size_t budgetLimit,
                                        util::Rng& rng) const {
  util::Timer timer;
  SynthesisResult result;
  SearchBudget budget(budgetLimit);
  SpecEvaluator evaluator(spec, budget);
  const dsl::InputSignature sig = spec.signature();
  const dsl::Generator gen(config_.generator);

  // Fitness of already-examined genes; duplicates (elites, re-bred copies)
  // are not re-executed and not re-charged against the budget.
  std::unordered_map<std::string, double> cache;

  auto finish = [&](SynthesisResult r) {
    r.candidatesSearched = budget.used();
    r.seconds = timer.seconds();
    return r;
  };

  // Grades a gene, executing + charging it only on first sight. Returns
  // nullopt on budget exhaustion; sets `result.solution` when equivalent.
  bool solved = false;
  auto grade = [&](const dsl::Program& gene) -> std::optional<double> {
    const std::string key = cacheKey(gene);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
    const auto ev = evaluator.evaluate(gene);
    if (!ev.has_value()) return std::nullopt;
    if (ev->satisfied) {
      solved = true;
      result.found = true;
      result.solution = gene;
      return fitness_->maxScore(targetLength);
    }
    const fitness::EvalContext ctx{spec, ev->runs};
    const double score = fitness_->score(gene, ctx);
    cache.emplace(key, score);
    return score;
  };

  // DFS-NS greedy scorer: grades without charging the budget (the NS itself
  // charges each examined neighbor through the evaluator).
  auto nsScorer = [&](const dsl::Program& gene) -> double {
    const std::string key = cacheKey(gene);
    if (const auto it = cache.find(key); it != cache.end()) return it->second;
    std::vector<dsl::ExecResult> runs;
    runs.reserve(spec.size());
    for (const auto& ex : spec.examples) runs.push_back(dsl::run(gene, ex.inputs));
    const fitness::EvalContext ctx{spec, runs};
    return fitness_->score(gene, ctx);
  };

  // ---- initial population (Phi_0) ----
  Population pop;
  pop.reserve(config_.ga.populationSize);
  for (std::size_t i = 0; i < config_.ga.populationSize; ++i) {
    auto prog = gen.randomProgram(targetLength, sig, rng);
    if (!prog) throw std::runtime_error("cannot seed initial population");
    const auto score = grade(*prog);
    if (solved) return finish(result);
    if (!score.has_value()) return finish(result);  // budget gone already
    pop.push_back(Individual{std::move(*prog), *score});
    result.bestFitness = std::max(result.bestFitness, pop.back().fitness);
  }

  util::SlidingWindowMean window(config_.nsWindow);

  // ---- evolutionary loop ----
  for (std::size_t genIdx = 1; genIdx <= config_.maxGenerations; ++genIdx) {
    if (budget.exhausted()) break;
    result.generations = genIdx;

    FunctionWeights weights{};
    const FunctionWeights* weightsPtr = nullptr;
    if (config_.fpGuidedMutation) {
      const auto map = probMap_->probMap(spec);
      for (std::size_t i = 0; i < map.size(); ++i) weights[i] = map[i];
      weightsPtr = &weights;
    }

    const auto offspring =
        breed(pop, config_.ga, sig, gen, rng, weightsPtr);

    Population next;
    next.reserve(offspring.size());
    double fitnessSum = 0.0;
    for (const auto& prog : offspring) {
      const auto score = grade(prog);
      if (solved) return finish(result);
      if (!score.has_value()) return finish(result);
      next.push_back(Individual{prog, *score});
      fitnessSum += *score;
      result.bestFitness = std::max(result.bestFitness, *score);
    }
    pop = std::move(next);
    window.push(fitnessSum / static_cast<double>(pop.size()));

    if (config_.recordHistory) {
      GenerationStats gs;
      gs.generation = genIdx;
      gs.meanFitness = fitnessSum / static_cast<double>(pop.size());
      for (const auto& ind : pop)
        gs.bestFitness = std::max(gs.bestFitness, ind.fitness);
      gs.budgetUsed = budget.used();
      gs.nsTriggered =
          config_.useNeighborhoodSearch && window.saturated();
      result.history.push_back(gs);
    }

    // ---- saturation-triggered neighborhood search ----
    if (config_.useNeighborhoodSearch && window.saturated()) {
      ++result.nsInvocations;
      std::vector<dsl::Program> top;
      for (std::size_t i : topIndices(pop, config_.nsTopN))
        top.push_back(pop[i].program);
      const NsResult ns =
          config_.nsKind == NsKind::BFS
              ? neighborhoodSearchBfs(top, evaluator)
              : neighborhoodSearchDfs(top, evaluator, nsScorer);
      if (ns.solution.has_value()) {
        result.found = true;
        result.foundByNs = true;
        result.solution = *ns.solution;
        return finish(result);
      }
      if (ns.budgetExhausted) break;
      window.reset();  // resume evolution with a fresh saturation window
    }
  }
  return finish(result);
}

}  // namespace netsyn::core
