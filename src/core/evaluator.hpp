// Budgeted candidate evaluation against a specification.
//
// Centralizes the two things every search method does with a candidate:
// spend one unit of search budget and test Definition 3.1 equivalence.
// The full-trace variant also returns the per-example execution results the
// neural fitness functions consume, so each gene is executed exactly once.
// The search-space metric counts *distinct* candidates: re-examining a
// program the search has already ruled out (GA duplicates, repeated
// neighborhood sweeps, beam-restart re-expansions) is charged only once.
#pragma once

#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/budget.hpp"
#include "dsl/interpreter.hpp"
#include "dsl/spec.hpp"

namespace netsyn::core {

class SpecEvaluator {
 public:
  /// `dedup` charges each distinct candidate at most once (default; matches
  /// the paper's "candidate programs searched" metric). Disable to charge
  /// every examination.
  SpecEvaluator(const dsl::Spec& spec, SearchBudget& budget,
                bool dedup = true)
      : spec_(spec), budget_(budget), dedup_(dedup) {}

  const dsl::Spec& spec() const { return spec_; }
  SearchBudget& budget() { return budget_; }

  struct Evaluation {
    bool satisfied = false;
    std::vector<dsl::ExecResult> runs;  ///< one per spec example
  };

  /// Runs the candidate on every example, keeping traces. Returns nullopt
  /// when the budget is exhausted (candidate not charged, not examined).
  std::optional<Evaluation> evaluate(const dsl::Program& candidate) {
    if (!charge(candidate)) return std::nullopt;
    Evaluation ev;
    ev.runs.reserve(spec_.size());
    ev.satisfied = true;
    for (const auto& ex : spec_.examples) {
      ev.runs.push_back(dsl::run(candidate, ex.inputs));
      if (!(ev.runs.back().output == ex.output)) ev.satisfied = false;
    }
    return ev;
  }

  /// Batched evaluate(): candidates are charged and executed in order, so
  /// budget consumption and the dedup'd "distinct candidates searched"
  /// semantics are identical to calling evaluate() in a loop that stops at
  /// the first nullopt. Entries after the first budget exhaustion — and,
  /// when `stopOnSatisfied` is set, after the first satisfying candidate —
  /// are left nullopt without being charged or executed.
  std::vector<std::optional<Evaluation>> evaluateBatch(
      const std::vector<const dsl::Program*>& candidates,
      bool stopOnSatisfied = true) {
    std::vector<std::optional<Evaluation>> out(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = evaluate(*candidates[i]);
      if (!out[i].has_value()) break;  // budget exhausted
      if (stopOnSatisfied && out[i]->satisfied) break;
    }
    return out;
  }

  /// Equivalence check only (early exit on first mismatch, no trace kept).
  /// nullopt when the budget is exhausted.
  std::optional<bool> check(const dsl::Program& candidate) {
    if (dedup_) {
      // Known non-solutions short-circuit for free: if this candidate had
      // satisfied the spec the search would already have returned it.
      const std::string key = keyOf(candidate);
      if (seen_.count(key) > 0) return false;
      if (!budget_.tryConsume()) return std::nullopt;
      seen_.insert(key);
    } else if (!budget_.tryConsume()) {
      return std::nullopt;
    }
    for (const auto& ex : spec_.examples) {
      if (!(dsl::eval(candidate, ex.inputs) == ex.output)) return false;
    }
    return true;
  }

 private:
  static std::string keyOf(const dsl::Program& p) { return p.idKey(); }

  /// Charges the candidate unless it was already examined; false only when
  /// the budget is exhausted and the candidate is new.
  bool charge(const dsl::Program& candidate) {
    if (!dedup_) return budget_.tryConsume();
    const std::string key = keyOf(candidate);
    if (seen_.count(key) > 0) return true;  // free re-examination
    if (!budget_.tryConsume()) return false;
    seen_.insert(key);
    return true;
  }

  const dsl::Spec& spec_;
  SearchBudget& budget_;
  bool dedup_;
  std::unordered_set<std::string> seen_;
};

}  // namespace netsyn::core
