// Budgeted candidate evaluation against a specification.
//
// Centralizes the two things every search method does with a candidate:
// spend one unit of search budget and test Definition 3.1 equivalence.
// The full-trace variant also returns the per-example execution results the
// neural fitness functions consume, so each gene is executed exactly once.
// The search-space metric counts *distinct* candidates: re-examining a
// program the search has already ruled out (GA duplicates, repeated
// neighborhood sweeps, beam-restart re-expansions) is charged only once.
//
// Performance: the evaluator owns a dsl::Executor, so every candidate's
// argument plan is compiled once per (program, signature) instead of once
// per example; dedup keys are 64-bit program fingerprints instead of
// heap-allocated strings; and Evaluation storage is pooled — callers hand
// finished evaluations back through recycle(), and the retained trace/list
// buffers are refilled in place by later candidates. In the GA's steady
// state (fixed program length, fixed spec), evaluation allocates nothing.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/budget.hpp"
#include "dsl/interpreter.hpp"
#include "dsl/spec.hpp"

namespace netsyn::core {

class SpecEvaluator {
 public:
  /// `dedup` charges each distinct candidate at most once (default; matches
  /// the paper's "candidate programs searched" metric). Disable to charge
  /// every examination.
  ///
  /// `sharedExec` (optional, borrowed, must outlive the evaluator) replaces
  /// the evaluator's private execution engine so its plan cache persists
  /// beyond this evaluator's lifetime — the synthesis service hands every
  /// search on a worker the worker's long-lived Executor, so repeat/similar
  /// specs hit plans compiled by earlier jobs. Purely a perf channel: plans
  /// are deterministic functions of (program, signature), so results are
  /// identical with or without sharing. The executor is single-threaded;
  /// share only within one worker thread.
  SpecEvaluator(const dsl::Spec& spec, SearchBudget& budget,
                bool dedup = true, dsl::Executor* sharedExec = nullptr)
      : spec_(spec),
        budget_(budget),
        dedup_(dedup),
        signature_(spec.signature()),
        ownedExec_(sharedExec ? nullptr : std::make_unique<dsl::Executor>()),
        exec_(sharedExec ? sharedExec : ownedExec_.get()) {
    inputSets_.reserve(spec_.size());
    for (const auto& ex : spec_.examples) {
      // Spec contract: all examples share one input signature (spec.hpp).
      // One plan per candidate is compiled from it, so a malformed spec
      // would silently miscompute — catch it here in debug builds.
      assert(dsl::signatureOf(ex.inputs) == signature_);
      inputSets_.push_back(&ex.inputs);
    }
    // The spec (borrowed, immutable) outlives this evaluator and
    // inputSets_ never changes after construction, so the lane executor
    // may ingest the example inputs once and reuse them per candidate.
    exec_->pinExampleInputs(inputSets_.data(), spec_.size());
  }

  const dsl::Spec& spec() const { return spec_; }
  SearchBudget& budget() { return budget_; }

  struct Evaluation {
    bool satisfied = false;
    std::vector<dsl::ExecResult> runs;  ///< one per spec example
  };

  /// Runs the candidate on every example, keeping traces. Returns nullopt
  /// when the budget is exhausted (candidate not charged, not examined).
  /// Storage comes from the recycle() pool when available.
  std::optional<Evaluation> evaluate(const dsl::Program& candidate) {
    if (!charge(candidate)) return std::nullopt;
    Evaluation ev = takeFromPool();
    ev.runs.resize(spec_.size());
    ev.satisfied = true;
    // One plan lookup per candidate (every example shares the signature);
    // all examples execute through the executor's configured multi-example
    // backend — SoA SIMD lanes by default, scalar statement-major when
    // disabled (see Executor::setLaneExecution). Traces are identical.
    const dsl::ExecPlan& plan = exec_->planFor(candidate, signature_);
    exec_->executeMulti(plan, inputSets_.data(), spec_.size(),
                        ev.runs.data());
    for (std::size_t j = 0; j < spec_.size(); ++j) {
      if (!(ev.runs[j].output() == spec_.examples[j].output))
        ev.satisfied = false;
    }
    return ev;
  }

  /// True when evaluateView() can serve this spec: the executor's lane
  /// backend is on and all examples fit one lane group (the view spans a
  /// single SoA block set).
  bool laneViewCapable() const {
    return exec_->laneExecution() && spec_.size() > 0 &&
           spec_.size() <= dsl::SoATrace::kMaxLanes;
  }

  /// Runs the candidate on every example through the lane executor and
  /// binds `view` over the un-scattered SoA trace — the NN grading path
  /// reads it in place, so no per-Value trace is materialized. Budget and
  /// dedup semantics are exactly evaluate()'s; returns the satisfied
  /// verdict, or nullopt when the budget is exhausted. The view is valid
  /// until the executor's next lane execution.
  std::optional<bool> evaluateView(const dsl::Program& candidate,
                                   dsl::LaneTraceView& view) {
    if (!charge(candidate)) return std::nullopt;
    const dsl::ExecPlan& plan = exec_->planFor(candidate, signature_);
    const bool ok =
        exec_->executeMultiView(plan, inputSets_.data(), spec_.size(), view);
    assert(ok && "evaluateView requires laneViewCapable()");
    (void)ok;
    for (std::size_t j = 0; j < spec_.size(); ++j) {
      if (!view.outputEquals(j, spec_.examples[j].output)) return false;
    }
    return true;
  }

  /// Batched evaluate(): candidates are charged and executed in order, so
  /// budget consumption and the dedup'd "distinct candidates searched"
  /// semantics are identical to calling evaluate() in a loop that stops at
  /// the first nullopt. Entries after the first budget exhaustion — and,
  /// when `stopOnSatisfied` is set, after the first satisfying candidate —
  /// are left nullopt without being charged or executed.
  std::vector<std::optional<Evaluation>> evaluateBatch(
      const std::vector<const dsl::Program*>& candidates,
      bool stopOnSatisfied = true) {
    std::vector<std::optional<Evaluation>> out(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      out[i] = evaluate(*candidates[i]);
      if (!out[i].has_value()) break;  // budget exhausted
      if (stopOnSatisfied && out[i]->satisfied) break;
    }
    return out;
  }

  /// Returns an Evaluation's storage to the pool so the next evaluate()
  /// reuses its trace/list buffers instead of allocating. Purely an
  /// optimization: un-recycled evaluations are simply freed.
  void recycle(Evaluation&& ev) {
    if (pool_.size() < kMaxPooled) pool_.push_back(std::move(ev));
  }
  void recycle(std::vector<std::optional<Evaluation>>&& evals) {
    for (auto& ev : evals)
      if (ev.has_value()) recycle(std::move(*ev));
    evals.clear();
  }

  /// Equivalence check only (early exit on first mismatch, no trace kept).
  /// nullopt when the budget is exhausted.
  std::optional<bool> check(const dsl::Program& candidate) {
    if (dedup_) {
      // Re-examinations are free (not charged) but still executed: with
      // fingerprint keys a collision may only mislabel a candidate as
      // "seen", so the equivalence test itself must not be short-circuited
      // — a cached-plan check costs ~2µs, cheap insurance against ever
      // discarding a true solution.
      const std::uint64_t key = keyOf(candidate);
      if (seen_.count(key) == 0) {
        if (!budget_.tryConsume()) return std::nullopt;
        seen_.insert(key);
      }
    } else if (!budget_.tryConsume()) {
      return std::nullopt;
    }
    const dsl::ExecPlan& plan = exec_->planFor(candidate, signature_);
    if (exec_->laneExecution()) {
      // Output-only lane execution: all m examples in one SoA pass with the
      // pinned ingest and no trace materialization — several times faster
      // than the per-example loop below, with identical verdicts (the
      // output-only path is fuzz-pinned against the scalar oracle).
      outScratch_.resize(spec_.size());
      exec_->executeMultiOutputs(plan, inputSets_.data(), spec_.size(),
                                 outScratch_.data());
      for (std::size_t j = 0; j < spec_.size(); ++j) {
        if (!(outScratch_[j] == spec_.examples[j].output)) return false;
      }
      return true;
    }
    for (const auto& ex : spec_.examples) {
      dsl::executePlan(plan, ex.inputs, checkScratch_);
      if (!(checkScratch_.output() == ex.output)) return false;
    }
    return true;
  }

  /// The execution engine (plan cache + pooled result storage). Exposed so
  /// callers that execute candidates outside the budget (the DFS
  /// neighborhood scorer) share the same plan cache.
  dsl::Executor& executor() { return *exec_; }

  /// The per-example input pointer array this evaluator pinned into the
  /// executor. Out-of-budget callers (the NS scorer) pass this same array to
  /// executeMulti so their runs hit the pinned-ingest fast path instead of
  /// thrashing the pin with a second identical copy.
  const std::vector<const std::vector<dsl::Value>*>& exampleInputSets() const {
    return inputSets_;
  }

  /// The dedup fingerprints charged so far. Part of a search checkpoint:
  /// without them, a resumed search would re-charge candidates the
  /// original run already examined and drift off the uninterrupted budget
  /// trajectory.
  const std::unordered_set<std::uint64_t>& seenKeys() const { return seen_; }

  /// Restores a checkpointed dedup set (checkpoint/resume counterpart of
  /// seenKeys()).
  void restoreSeenKeys(std::unordered_set<std::uint64_t> seen) {
    seen_ = std::move(seen);
  }

 private:
  /// 64-bit dedup fingerprint. Replaces the per-examination std::string
  /// key: no allocation, ~2.4e-7 expected collisions at a 3M-candidate
  /// budget. Callers are written so a collision only perturbs the
  /// "distinct candidates searched" accounting by one unit — evaluate()
  /// and check() always execute the candidate, so no result is corrupted
  /// and no solution can be missed.
  static std::uint64_t keyOf(const dsl::Program& p) { return p.hash(); }

  static constexpr std::size_t kMaxPooled = 4096;

  Evaluation takeFromPool() {
    if (pool_.empty()) return Evaluation{};
    Evaluation ev = std::move(pool_.back());
    pool_.pop_back();
    return ev;
  }

  /// Charges the candidate unless it was already examined; false only when
  /// the budget is exhausted and the candidate is new.
  bool charge(const dsl::Program& candidate) {
    if (!dedup_) return budget_.tryConsume();
    const std::uint64_t key = keyOf(candidate);
    if (seen_.count(key) > 0) return true;  // free re-examination
    if (!budget_.tryConsume()) return false;
    seen_.insert(key);
    return true;
  }

  const dsl::Spec& spec_;
  SearchBudget& budget_;
  bool dedup_;
  dsl::InputSignature signature_;  ///< shared by all examples
  std::vector<const std::vector<dsl::Value>*> inputSets_;  ///< per example
  std::unordered_set<std::uint64_t> seen_;
  std::unique_ptr<dsl::Executor> ownedExec_;  ///< null when sharing
  dsl::Executor* exec_;                       ///< owned or borrowed engine
  std::vector<Evaluation> pool_;
  dsl::ExecResult checkScratch_;        ///< reused by check() (scalar path)
  std::vector<dsl::Value> outScratch_;  ///< reused by check() (lane path)
};

}  // namespace netsyn::core
