#include "core/neighborhood.hpp"

namespace netsyn::core {

NsResult neighborhoodSearchBfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator) {
  NsResult result;
  for (const auto& gene : genes) {
    for (std::size_t i = 0; i < gene.length(); ++i) {
      const dsl::FuncId original = gene.at(i);
      dsl::Program neighbor = gene;
      for (std::size_t op = 0; op < dsl::kNumFunctions; ++op) {
        if (static_cast<dsl::FuncId>(op) == original) continue;
        neighbor.set(i, static_cast<dsl::FuncId>(op));
        const auto ok = evaluator.check(neighbor);
        if (!ok.has_value()) {
          result.budgetExhausted = true;
          return result;
        }
        ++result.candidatesChecked;
        if (*ok) {
          result.solution = neighbor;
          return result;
        }
      }
      neighbor.set(i, original);
    }
  }
  return result;
}

NsResult neighborhoodSearchDfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const NsScorer& scorer) {
  NsResult result;
  for (const auto& gene : genes) {
    dsl::Program current = gene;  // mutated greedily per depth
    for (std::size_t depth = 0; depth < current.length(); ++depth) {
      const dsl::FuncId original = current.at(depth);
      double bestScore = scorer(current);
      dsl::FuncId bestOp = original;
      dsl::Program neighbor = current;
      for (std::size_t op = 0; op < dsl::kNumFunctions; ++op) {
        if (static_cast<dsl::FuncId>(op) == original) continue;
        neighbor.set(depth, static_cast<dsl::FuncId>(op));
        const auto ok = evaluator.check(neighbor);
        if (!ok.has_value()) {
          result.budgetExhausted = true;
          return result;
        }
        ++result.candidatesChecked;
        if (*ok) {
          result.solution = neighbor;
          return result;
        }
        const double s = scorer(neighbor);
        if (s > bestScore) {
          bestScore = s;
          bestOp = static_cast<dsl::FuncId>(op);
        }
      }
      current.set(depth, bestOp);  // descend with the best gene at this level
    }
  }
  return result;
}

}  // namespace netsyn::core
