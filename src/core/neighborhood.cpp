#include "core/neighborhood.hpp"

#include "dsl/domain.hpp"

namespace netsyn::core {

NsResult neighborhoodSearchBfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const dsl::Domain* domain) {
  // Substitutions walk the vocabulary in domain order; for the list domain
  // that is FuncId order 0..kNumFunctions-1, the pre-domain sweep.
  const std::vector<dsl::FuncId>& vocab =
      dsl::resolveDomain(domain).vocabulary;
  NsResult result;
  for (const auto& gene : genes) {
    for (std::size_t i = 0; i < gene.length(); ++i) {
      const dsl::FuncId original = gene.at(i);
      dsl::Program neighbor = gene;
      for (const dsl::FuncId op : vocab) {
        if (op == original) continue;
        neighbor.set(i, op);
        const auto ok = evaluator.check(neighbor);
        if (!ok.has_value()) {
          result.budgetExhausted = true;
          return result;
        }
        ++result.candidatesChecked;
        if (*ok) {
          result.solution = neighbor;
          return result;
        }
      }
      neighbor.set(i, original);
    }
  }
  return result;
}

NsResult neighborhoodSearchDfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const NsScorer& scorer,
                               const dsl::Domain* domain) {
  return neighborhoodSearchDfs(
      genes, evaluator,
      NsBatchScorer([&scorer](const std::vector<const dsl::Program*>& batch) {
        std::vector<double> out;
        out.reserve(batch.size());
        for (const dsl::Program* p : batch) out.push_back(scorer(*p));
        return out;
      }),
      domain);
}

NsResult neighborhoodSearchDfs(const std::vector<dsl::Program>& genes,
                               SpecEvaluator& evaluator,
                               const NsBatchScorer& scorer,
                               const dsl::Domain* domain) {
  const std::vector<dsl::FuncId>& vocab =
      dsl::resolveDomain(domain).vocabulary;
  NsResult result;
  for (const auto& gene : genes) {
    dsl::Program current = gene;  // mutated greedily per depth
    for (std::size_t depth = 0; depth < current.length(); ++depth) {
      const dsl::FuncId original = current.at(depth);
      // Equivalence checks run first, in vocabulary order (budget semantics
      // match the per-neighbor variant); survivors are graded as one batch.
      std::vector<dsl::Program> level;
      level.reserve(vocab.size());
      level.push_back(current);
      dsl::Program neighbor = current;
      for (const dsl::FuncId op : vocab) {
        if (op == original) continue;
        neighbor.set(depth, op);
        const auto ok = evaluator.check(neighbor);
        if (!ok.has_value()) {
          result.budgetExhausted = true;
          return result;
        }
        ++result.candidatesChecked;
        if (*ok) {
          result.solution = neighbor;
          return result;
        }
        level.push_back(neighbor);
      }
      std::vector<const dsl::Program*> levelPtrs;
      levelPtrs.reserve(level.size());
      for (const auto& p : level) levelPtrs.push_back(&p);
      const std::vector<double> scores = scorer(levelPtrs);
      // Greedy descent with the original's op winning ties (strict >), as in
      // the per-neighbor variant.
      double bestScore = scores[0];
      dsl::FuncId bestOp = original;
      for (std::size_t i = 1; i < level.size(); ++i) {
        if (scores[i] > bestScore) {
          bestScore = scores[i];
          bestOp = level[i].at(depth);
        }
      }
      current.set(depth, bestOp);  // descend with the best gene at this level
    }
  }
  return result;
}

}  // namespace netsyn::core
