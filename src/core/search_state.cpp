#include "core/search_state.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <unordered_set>

namespace netsyn::core {
namespace {

/// Cache key: the full-width function ids of a gene — exact, no collisions.
/// A stale hit here would skip the gene's execution (and with it the
/// equivalence check), so unlike the evaluator's dedup — where every
/// candidate is executed regardless and a fingerprint collision only
/// perturbs the searched-count metric — this cache must never alias two
/// genes. idKey() fits in the small-string buffer for every realistic
/// program length, so lookups stay allocation-free.
std::string cacheKey(const dsl::Program& p) { return p.idKey(); }

}  // namespace

SearchState::SearchState(SynthesizerConfig config,
                         fitness::FitnessPtr fitness,
                         std::shared_ptr<fitness::ProbMapProvider> probMap,
                         const dsl::Spec& spec, std::size_t targetLength,
                         SearchBudget& budget, util::Rng& rng,
                         dsl::Executor* sharedExec)
    : config_(std::move(config)),
      fitness_(std::move(fitness)),
      probMap_(std::move(probMap)),
      spec_(spec),
      targetLength_(targetLength),
      budget_(budget),
      rng_(rng),
      evaluator_(spec, budget, /*dedup=*/true, sharedExec),
      sig_(spec.signature()),
      gen_(config_.generator),
      window_(config_.nsWindow) {
  if (!fitness_) throw std::invalid_argument("fitness function required");
  if (config_.fpGuidedMutation && !probMap_)
    throw std::invalid_argument("fpGuidedMutation requires a ProbMapProvider");
  // Backend selection for candidate execution; results are identical either
  // way, so reconfiguring a shared (service-worker) executor per search is
  // safe.
  evaluator_.executor().setLaneExecution(config_.simdExecutor);
}

SearchState::SearchState(const Snapshot& snap, fitness::FitnessPtr fitness,
                         std::shared_ptr<fitness::ProbMapProvider> probMap,
                         const dsl::Spec& spec, SearchBudget& budget,
                         util::Rng& rng, dsl::Executor* sharedExec)
    : SearchState(snap.config, std::move(fitness), std::move(probMap), spec,
                  snap.targetLength, budget, rng, sharedExec) {
  if (budget.limit() != snap.budgetLimit || budget.used() != snap.budgetUsed)
    throw std::invalid_argument(
        "resume budget must be SearchBudget::resumed(snapshot limit, used)");
  pop_ = snap.pop;
  result_ = snap.result;
  cache_ = snap.cache;
  evaluator_.restoreSeenKeys(snap.seen);
  window_ = snap.window;
  secondsOffset_ = snap.priorSeconds;
}

SearchState::Snapshot SearchState::snapshot() const {
  Snapshot snap;
  snap.config = config_;
  snap.targetLength = targetLength_;
  snap.pop = pop_;
  snap.result = result_;
  snap.cache = cache_;
  snap.seen = evaluator_.seenKeys();
  snap.window = window_;
  snap.budgetLimit = budget_.limit();
  snap.budgetUsed = budget_.used();
  snap.priorSeconds = secondsOffset_ + timer_.seconds();
  return snap;
}

// Grades a whole population. The distinct uncached genes are charged +
// executed in order through SpecEvaluator::evaluateBatch — the same budget
// consumption, dedup, and early-exit points as grading one gene at a time —
// and the genes that survive (not cached, not duplicates, not the solution)
// are scored in one FitnessFunction::scoreBatch call (or per-gene when
// batchedEvaluation is off; the two modes produce identical results).
//
// Returns the number of genes graded: progs.size() normally, or the index
// the walk stopped at because the budget ran out or a gene satisfied the
// spec (`solved_` set, result filled in). scores[i] is valid for every
// graded i either way.
std::size_t SearchState::gradePopulation(
    const std::vector<dsl::Program>& progs, std::vector<double>& scores) {
  scores.assign(progs.size(), 0.0);
  // Distinct uncached genes in first-seen order.
  std::vector<const dsl::Program*> pending;
  std::vector<std::string> pendingKeys;
  std::vector<std::size_t> pendingOrigin;  // pending slot -> gene index
  std::unordered_map<std::string, std::size_t> pendingIndex;
  std::vector<std::ptrdiff_t> aliasOf(progs.size(), -1);

  for (std::size_t i = 0; i < progs.size(); ++i) {
    std::string key = cacheKey(progs[i]);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      scores[i] = it->second;
      continue;
    }
    if (const auto it = pendingIndex.find(key); it != pendingIndex.end()) {
      aliasOf[i] = static_cast<std::ptrdiff_t>(it->second);
      continue;
    }
    aliasOf[i] = static_cast<std::ptrdiff_t>(pending.size());
    pendingIndex.emplace(key, pending.size());
    pending.push_back(&progs[i]);
    pendingKeys.push_back(std::move(key));
    pendingOrigin.push_back(i);
  }

  // Lane-view grading: when the batched path is on, the spec fits one lane
  // group, and the fitness can consume encoded traces, each pending gene is
  // executed through the lane executor and its trace is encoded in place —
  // no per-Value scatter, no trace copy. Budget consumption, dedup, and the
  // early-exit points below are identical to evaluateBatch (and the scores
  // are bitwise-identical, pinned by the differential fuzz suite).
  fitness::LaneTraceSink* sink =
      (config_.batchedEvaluation && evaluator_.laneViewCapable())
          ? fitness_->laneSink()
          : nullptr;

  std::vector<std::optional<SpecEvaluator::Evaluation>> evals;
  std::size_t graded = progs.size();
  std::size_t scored = pending.size();
  if (sink) {
    sink->beginCapture(spec_, pending.size());
    for (std::size_t j = 0; j < pending.size(); ++j) {
      dsl::LaneTraceView view;
      const auto verdict = evaluator_.evaluateView(*pending[j], view);
      if (!verdict.has_value()) {  // budget ran out at pending gene j
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
      if (*verdict) {
        solved_ = true;
        solvedAtUsed_ = budget_.used();
        result_.found = true;
        result_.solution = *pending[j];
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
      sink->capture(j, *pending[j], view);
    }
  } else {
    evals = evaluator_.evaluateBatch(pending);
    for (std::size_t j = 0; j < evals.size(); ++j) {
      if (!evals[j].has_value()) {  // budget ran out at pending gene j
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
      if (evals[j]->satisfied) {
        solved_ = true;
        solvedAtUsed_ = budget_.used();
        result_.found = true;
        result_.solution = *pending[j];
        graded = pendingOrigin[j];
        scored = j;
        break;
      }
    }
  }

  // Score the pending genes examined before any cutoff.
  std::vector<double> pendingScores;
  if (scored > 0) {
    std::vector<const dsl::Program*> toScore(pending.begin(),
                                             pending.begin() + scored);
    std::deque<fitness::EvalContext> contextStore;
    std::vector<const fitness::EvalContext*> contexts;
    contexts.reserve(scored);
    for (std::size_t j = 0; j < scored; ++j) {
      if (sink)
        contextStore.push_back(
            fitness::EvalContext{spec_, fitness::kNoRuns, &sink->at(j)});
      else
        contextStore.push_back(fitness::EvalContext{spec_, evals[j]->runs});
      contexts.push_back(&contextStore.back());
    }
    if (config_.batchedEvaluation) {
      pendingScores = fitness_->scoreBatch(toScore, contexts);
    } else {
      pendingScores.reserve(scored);
      for (std::size_t j = 0; j < scored; ++j)
        pendingScores.push_back(fitness_->score(*toScore[j], *contexts[j]));
    }
    for (std::size_t j = 0; j < scored; ++j)
      cache_.emplace(std::move(pendingKeys[j]), pendingScores[j]);
  }
  // Scoring is done with the runs; hand the trace storage back so the
  // next generation refills it instead of allocating.
  evaluator_.recycle(std::move(evals));
  for (std::size_t i = 0; i < graded; ++i) {
    if (aliasOf[i] >= 0)
      scores[i] = pendingScores[static_cast<std::size_t>(aliasOf[i])];
    result_.bestFitness = std::max(result_.bestFitness, scores[i]);
  }
  return graded;
}

// Batched scorer for the DFS neighborhood search's greedy descent: grades
// without charging the budget (the NS itself charges each examined neighbor
// through the evaluator) and without polluting the cache. Shares the
// evaluator's plan cache and recycles run storage across calls.
std::vector<double> SearchState::nsBatchScore(
    const std::vector<const dsl::Program*>& genes) {
  std::vector<double> out(genes.size(), 0.0);
  std::vector<const dsl::Program*> pending;
  std::vector<std::size_t> pendingAt;
  std::deque<std::vector<dsl::ExecResult>> pendingRuns;
  std::deque<fitness::EvalContext> contextStore;
  std::vector<const fitness::EvalContext*> contexts;
  // Same lane-view gate as gradePopulation; the NS descent's out-of-budget
  // runs then skip the trace scatter too. Each view is encoded before the
  // next execution overwrites the SoA blocks.
  fitness::LaneTraceSink* sink =
      (config_.batchedEvaluation && evaluator_.laneViewCapable())
          ? fitness_->laneSink()
          : nullptr;
  if (sink) sink->beginCapture(spec_, genes.size());
  for (std::size_t i = 0; i < genes.size(); ++i) {
    if (const auto it = cache_.find(cacheKey(*genes[i])); it != cache_.end()) {
      out[i] = it->second;
      continue;
    }
    const dsl::ExecPlan& plan = evaluator_.executor().planFor(*genes[i], sig_);
    if (sink) {
      const std::size_t slot = pending.size();
      dsl::LaneTraceView view;
      evaluator_.executor().executeMultiView(
          plan, evaluator_.exampleInputSets().data(), spec_.size(), view);
      sink->capture(slot, *genes[i], view);
      contextStore.push_back(
          fitness::EvalContext{spec_, fitness::kNoRuns, &sink->at(slot)});
    } else {
      std::vector<dsl::ExecResult> runs;
      if (!nsRunsPool_.empty()) {
        runs = std::move(nsRunsPool_.back());
        nsRunsPool_.pop_back();
      }
      runs.resize(spec_.size());
      // The evaluator's own (pinned) input array — not a private copy — so
      // these out-of-budget runs share the lane executor's cached ingest.
      evaluator_.executor().executeMulti(plan,
                                         evaluator_.exampleInputSets().data(),
                                         spec_.size(), runs.data());
      pendingRuns.push_back(std::move(runs));
      contextStore.push_back(fitness::EvalContext{spec_, pendingRuns.back()});
    }
    contexts.push_back(&contextStore.back());
    pending.push_back(genes[i]);
    pendingAt.push_back(i);
  }
  if (!pending.empty()) {
    std::vector<double> scores;
    if (config_.batchedEvaluation) {
      scores = fitness_->scoreBatch(pending, contexts);
    } else {
      scores.reserve(pending.size());
      for (std::size_t j = 0; j < pending.size(); ++j)
        scores.push_back(fitness_->score(*pending[j], *contexts[j]));
    }
    for (std::size_t j = 0; j < pending.size(); ++j)
      out[pendingAt[j]] = scores[j];
  }
  for (auto& runs : pendingRuns) nsRunsPool_.push_back(std::move(runs));
  return out;
}

SearchState::Status SearchState::seed() {
  // ---- initial population (Phi_0) ----
  // Programs are generated up front (the generator is the only RNG consumer
  // here, so the stream matches gene-at-a-time seeding) and graded as one
  // batch.
  std::vector<dsl::Program> seedProgs;
  seedProgs.reserve(config_.ga.populationSize);
  for (std::size_t i = 0; i < config_.ga.populationSize; ++i) {
    auto prog = gen_.randomProgram(targetLength_, sig_, rng_);
    if (!prog) throw std::runtime_error("cannot seed initial population");
    seedProgs.push_back(std::move(*prog));
  }
  const std::size_t graded = gradePopulation(seedProgs, scores_);
  if (solved_) return Status::Solved;
  if (graded < seedProgs.size()) return Status::Exhausted;

  pop_.reserve(seedProgs.size());
  for (std::size_t i = 0; i < seedProgs.size(); ++i)
    pop_.push_back(Individual{std::move(seedProgs[i]), scores_[i]});
  return Status::Running;
}

SearchState::Status SearchState::step() {
  if (budget_.exhausted()) return Status::Exhausted;
  if (result_.generations >= config_.maxGenerations)
    return Status::LimitReached;
  const std::size_t genIdx = ++result_.generations;

  // The FP probability map is already in domain-local order (the shape
  // FunctionWeights expects); providers cache it per spec.
  FunctionWeights weights;
  const FunctionWeights* weightsPtr = nullptr;
  if (config_.fpGuidedMutation) {
    weights = probMap_->probMap(spec_);
    weightsPtr = &weights;
  }

  const auto offspring = breed(pop_, config_.ga, sig_, gen_, rng_, weightsPtr);

  const std::size_t graded = gradePopulation(offspring, scores_);
  if (solved_) return Status::Solved;
  if (graded < offspring.size()) return Status::Exhausted;

  Population next;
  next.reserve(offspring.size());
  double fitnessSum = 0.0;
  for (std::size_t i = 0; i < offspring.size(); ++i) {
    next.push_back(Individual{offspring[i], scores_[i]});
    fitnessSum += scores_[i];
  }
  pop_ = std::move(next);
  window_.push(fitnessSum / static_cast<double>(pop_.size()));

  if (config_.recordHistory) {
    GenerationStats gs;
    gs.generation = genIdx;
    gs.meanFitness = fitnessSum / static_cast<double>(pop_.size());
    for (const auto& ind : pop_)
      gs.bestFitness = std::max(gs.bestFitness, ind.fitness);
    gs.budgetUsed = budget_.used();
    gs.nsTriggered = config_.useNeighborhoodSearch && window_.saturated();
    result_.history.push_back(gs);
  }

  // ---- saturation-triggered neighborhood search ----
  if (config_.useNeighborhoodSearch && window_.saturated()) {
    ++result_.nsInvocations;
    std::vector<dsl::Program> top;
    for (std::size_t i : topIndices(pop_, config_.nsTopN))
      top.push_back(pop_[i].program);
    const NsResult ns =
        config_.nsKind == NsKind::BFS
            ? neighborhoodSearchBfs(top, evaluator_, &gen_.domain())
            : neighborhoodSearchDfs(
                  top, evaluator_,
                  NsBatchScorer([this](const std::vector<const dsl::Program*>&
                                           genes) {
                    return nsBatchScore(genes);
                  }),
                  &gen_.domain());
    if (ns.solution.has_value()) {
      solved_ = true;
      solvedAtUsed_ = budget_.used();
      result_.found = true;
      result_.foundByNs = true;
      result_.solution = *ns.solution;
      return Status::Solved;
    }
    if (ns.budgetExhausted) return Status::Exhausted;
    window_.reset();  // resume evolution with a fresh saturation window
  }
  return Status::Running;
}

std::vector<SearchState::Migrant> SearchState::emigrants(
    std::size_t count) const {
  std::vector<Migrant> out;
  for (std::size_t i : topIndices(pop_, std::min(count, pop_.size())))
    out.push_back(Migrant{pop_[i].program, pop_[i].fitness});
  return out;
}

std::size_t SearchState::injectMigrants(const std::vector<Migrant>& migrants) {
  if (migrants.empty() || pop_.empty()) return 0;

  // Resident + already-arrived fingerprints, for dedup.
  std::unordered_set<std::uint64_t> present;
  for (const auto& ind : pop_) present.insert(ind.program.hash());

  // Worst-first replacement order (stable: earlier index loses ties). A
  // migrant batch larger than the population (fully-connected rings with
  // big E) must never evict the island's own elites — the exact individuals
  // (same tie-breaking) the next breed() would pass through — so those are
  // excluded from the replaceable set.
  std::vector<bool> protectedSlot(pop_.size(), false);
  for (std::size_t i : topIndices(pop_, config_.ga.eliteCount))
    protectedSlot[i] = true;
  std::vector<std::size_t> worst;
  worst.reserve(pop_.size());
  for (std::size_t i = 0; i < pop_.size(); ++i)
    if (!protectedSlot[i]) worst.push_back(i);
  std::stable_sort(worst.begin(), worst.end(),
                   [&](std::size_t a, std::size_t b) {
                     return pop_[a].fitness < pop_[b].fitness;
                   });

  std::size_t accepted = 0;
  for (const Migrant& m : migrants) {
    if (accepted >= worst.size()) break;
    if (!present.insert(m.program.hash()).second) continue;  // dup
    Individual& slot = pop_[worst[accepted]];
    slot.program = m.program;
    slot.fitness = m.fitness;
    ++accepted;
    // The migrant was examined (and charged) by its home island; seed the
    // fitness cache so copies bred here are free, like any local duplicate.
    cache_.emplace(cacheKey(m.program), m.fitness);
    result_.bestFitness = std::max(result_.bestFitness, m.fitness);
  }
  return accepted;
}

SynthesisResult SearchState::finish() {
  result_.candidatesSearched = budget_.used();
  result_.seconds = secondsOffset_ + timer_.seconds();
  return result_;
}

}  // namespace netsyn::core
