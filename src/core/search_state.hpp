// Stepping form of the NetSyn genetic search.
//
// SearchState holds everything one evolving population owns — the budgeted
// evaluator, the fitness cache, the population, the saturation window — and
// exposes the search one generation at a time. Synthesizer::synthesize
// (single population) is literally seed() + step() until a terminal status;
// the island engine (islands.cpp) drives K SearchStates in lockstep and
// splices migrants between rounds. Extracting the loop body this way is
// what pins the K=1 island search to the classic search: both run the exact
// same code on the exact same RNG stream.
//
// Not thread-safe; one SearchState per search thread.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/budget.hpp"
#include "core/evaluator.hpp"
#include "core/ga.hpp"
#include "core/synthesizer.hpp"
#include "dsl/generator.hpp"
#include "dsl/spec.hpp"
#include "fitness/fitness.hpp"
#include "fitness/neural_fitness.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace netsyn::core {

class SearchState {
 public:
  enum class Status : std::uint8_t {
    Running,       ///< keep stepping
    Solved,        ///< result().found — stop
    Exhausted,     ///< local budget ran dry mid-generation — stop
    LimitReached,  ///< maxGenerations completed — stop
  };

  /// `spec`, `budget`, and `rng` are borrowed and must outlive the state.
  /// `probMap` is required only when config.fpGuidedMutation is set.
  /// `sharedExec` (optional, borrowed) is handed through to the evaluator so
  /// the compiled-plan cache outlives this search — the synthesis service's
  /// cross-request warm path. Results are identical with or without it.
  SearchState(SynthesizerConfig config, fitness::FitnessPtr fitness,
              std::shared_ptr<fitness::ProbMapProvider> probMap,
              const dsl::Spec& spec, std::size_t targetLength,
              SearchBudget& budget, util::Rng& rng,
              dsl::Executor* sharedExec = nullptr);

  /// A paused search, frozen between generations: everything a fresh
  /// SearchState needs to continue the exact trajectory — population,
  /// accumulated result, fitness cache, the evaluator's charged-candidate
  /// dedup set, the saturation window, and the budget's usage. The borrowed
  /// collaborators are the caller's to checkpoint alongside: copy the Rng by
  /// value and rebuild the budget with SearchBudget::resumed(limit, used).
  /// A resumed run finishes with byte-identical outcome (winner, candidate
  /// counts, generations) to the uninterrupted run; tests pin this.
  struct Snapshot {
    SynthesizerConfig config;
    std::size_t targetLength = 0;
    Population pop;
    SynthesisResult result;
    std::unordered_map<std::string, double> cache;
    std::unordered_set<std::uint64_t> seen;
    util::SlidingWindowMean window{1};
    std::size_t budgetLimit = 0;
    std::size_t budgetUsed = 0;
    double priorSeconds = 0.0;  ///< wall clock accumulated before the pause
  };

  /// Freezes the current state. Valid only at a generation boundary while
  /// the last status was Running (i.e. after seed(), between step() calls).
  Snapshot snapshot() const;

  /// Rebuilds a search from a Snapshot. `budget` must be
  /// SearchBudget::resumed(snap.budgetLimit, snap.budgetUsed) (or
  /// equivalent) and `rng` the checkpointed generator copy. seed() must NOT
  /// be called on a restored state — continue with step().
  SearchState(const Snapshot& snap, fitness::FitnessPtr fitness,
              std::shared_ptr<fitness::ProbMapProvider> probMap,
              const dsl::Spec& spec, SearchBudget& budget, util::Rng& rng,
              dsl::Executor* sharedExec = nullptr);

  /// Generates and grades the initial population Phi_0. Call exactly once,
  /// before the first step().
  Status seed();

  /// One generation: breed, grade, and (on saturation) neighborhood search.
  /// Only valid while the previous status was Running.
  Status step();

  /// A graded gene travelling between islands.
  struct Migrant {
    dsl::Program program;
    double fitness = 0.0;
  };

  /// Copies of the `count` fittest individuals (descending fitness, stable
  /// on ties), for migration.
  std::vector<Migrant> emigrants(std::size_t count) const;

  /// Island-model immigration: each migrant replaces the current worst
  /// individual, skipping migrants whose Program::hash() already exists in
  /// the population (or arrived twice in this batch). At most
  /// populationSize - eliteCount slots are replaced, so an oversized batch
  /// can never evict the island's own elites. Accepted migrants keep their
  /// fitness and enter the fitness cache, so re-breeding them later is
  /// charge-free — they were already examined (and charged) by their home
  /// island. Returns the number accepted.
  std::size_t injectMigrants(const std::vector<Migrant>& migrants);

  const SynthesizerConfig& config() const { return config_; }
  const Population& population() const { return pop_; }
  std::size_t generation() const { return result_.generations; }
  double bestFitness() const { return result_.bestFitness; }
  const SearchBudget& budget() const { return budget_; }

  /// Local budget.used() immediately after the satisfying candidate was
  /// charged (0 until solved). The island ledger uses this to decide whether
  /// the solution fell inside the island's grant.
  std::size_t solvedAtUsed() const { return solvedAtUsed_; }

  /// The accumulating result; candidatesSearched/seconds are stamped by
  /// finish().
  const SynthesisResult& result() const { return result_; }

  /// Stamps candidatesSearched (local budget) and wall-clock seconds
  /// (including time accumulated before a checkpoint) and returns the
  /// result.
  SynthesisResult finish();

 private:
  std::size_t gradePopulation(const std::vector<dsl::Program>& progs,
                              std::vector<double>& scores);
  std::vector<double> nsBatchScore(
      const std::vector<const dsl::Program*>& genes);

  SynthesizerConfig config_;
  fitness::FitnessPtr fitness_;
  std::shared_ptr<fitness::ProbMapProvider> probMap_;
  const dsl::Spec& spec_;
  std::size_t targetLength_;
  SearchBudget& budget_;
  util::Rng& rng_;

  SpecEvaluator evaluator_;
  dsl::InputSignature sig_;
  dsl::Generator gen_;

  /// Fitness of already-examined genes; duplicates (elites, re-bred copies,
  /// accepted migrants) are not re-executed and not re-charged.
  std::unordered_map<std::string, double> cache_;
  std::vector<std::vector<dsl::ExecResult>> nsRunsPool_;

  Population pop_;
  std::vector<double> scores_;  ///< per-call scratch for gradePopulation
  util::SlidingWindowMean window_;
  util::Timer timer_;
  double secondsOffset_ = 0.0;  ///< wall clock carried over a resume
  SynthesisResult result_;
  bool solved_ = false;
  std::size_t solvedAtUsed_ = 0;
};

}  // namespace netsyn::core
