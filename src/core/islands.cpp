// Island-model search engine: K SearchStates evolved in deterministic
// lockstep rounds on a persistent worker gang, with periodic elite
// migration and a global BudgetLedger (budget.hpp) enforcing the paper's
// single-population candidate-budget semantics.
//
// Determinism contract (pinned by tests/test_islands.cpp): for a fixed
// (seed, K, config) the result — solution, candidate counts, per-island
// stats — is byte-identical for every thread count, because
//   - each island owns its RNG stream, evaluator, and fitness instances
//     (nothing mutable is shared inside a round),
//   - rounds are barriers: migration and ledger accounting happen on the
//     coordinator thread in fixed island order 0..K-1,
//   - and with K == 1 the engine degenerates to seed()+step() on the
//     caller's own RNG — the exact SinglePopulation search.
#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/search_state.hpp"
#include "core/synthesizer.hpp"
#include "util/timer.hpp"

namespace netsyn::core {
namespace {

/// Persistent worker gang for the lockstep rounds: run(n, fn) executes
/// fn(0..n-1) across the workers and returns when all calls finished. Task
/// claiming order is racy on purpose — islands are data-isolated, so the
/// schedule cannot influence results.
///
/// Round lifecycle: workers park on `wake_` until the epoch advances, copy
/// the round's job under the mutex, and register as running. The shared
/// claim cursor `next_` is only touched by registered workers, and run()
/// waits for the previous round's workers to deregister before resetting
/// it — a straggler from round R can therefore never claim a task of round
/// R+1 (the bug TSan catches if the cursor is reset while a late worker is
/// mid-claim). All counters are mutex-guarded; the mutex also publishes the
/// islands' state back to the coordinator at the end of each round.
class Gang {
 public:
  explicit Gang(std::size_t threads) {
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
      workers_.emplace_back([this] { workerLoop(); });
  }

  ~Gang() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
    if (tasks == 0) return;
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return running_ == 0; });  // round R-1 fully parked
    fn_ = &fn;
    tasks_ = tasks;
    next_.store(0);
    pending_ = tasks;
    ++epoch_;
    wake_.notify_all();
    done_.wait(lock, [&] { return pending_ == 0 && running_ == 0; });
    fn_ = nullptr;
    if (error_) {
      auto e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void workerLoop() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(std::size_t)>* fn = nullptr;
      std::size_t tasks = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] { return stop_ || epoch_ != seen; });
        if (stop_) return;
        seen = epoch_;
        fn = fn_;
        tasks = tasks_;
        ++running_;
      }
      while (true) {
        const std::size_t t = next_.fetch_add(1);
        if (t >= tasks) break;
        try {
          (*fn)(t);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!error_) error_ = std::current_exception();
        }
        std::lock_guard<std::mutex> lock(mutex_);
        if (--pending_ == 0) done_.notify_all();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (--running_ == 0) done_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* fn_ = nullptr;  // guarded by mutex_
  std::size_t tasks_ = 0;                                 // guarded by mutex_
  std::atomic<std::size_t> next_{0};  ///< claim cursor; see lifecycle above
  std::size_t pending_ = 0;           // guarded by mutex_
  std::size_t running_ = 0;           // guarded by mutex_
  std::uint64_t epoch_ = 0;           // guarded by mutex_
  bool stop_ = false;
  std::exception_ptr error_;
};

/// The tweak cycle in effect: explicit tweaks win; `heterogeneous` falls
/// back to a fixed operator-diversity portfolio (island 0 stays the
/// baseline configuration so the flagship stream is always present).
std::vector<IslandTweak> tweakCycle(const IslandsConfig& ic) {
  if (!ic.tweaks.empty()) return ic.tweaks;
  if (!ic.heterogeneous) return {};
  std::vector<IslandTweak> cycle(4);
  cycle[1].mutationRateScale = 1.5;              // explore harder
  cycle[2].mutationRateScale = 0.75;             // exploit + DFS descent
  cycle[2].crossoverRateScale = 1.25;
  cycle[2].nsKind = NsKind::DFS;
  cycle[3].mutationRateScale = 0.5;              // uniform-mutation island
  cycle[3].fpGuidedMutation = false;
  return cycle;
}

void applyTweak(SynthesizerConfig& cfg, const IslandTweak& tweak,
                bool hasProbMap) {
  cfg.ga.mutationRate =
      std::clamp(cfg.ga.mutationRate * tweak.mutationRateScale, 0.0, 1.0);
  cfg.ga.crossoverRate =
      std::clamp(cfg.ga.crossoverRate * tweak.crossoverRateScale, 0.0, 1.0);
  if (tweak.nsKind.has_value()) cfg.nsKind = *tweak.nsKind;
  if (tweak.fpGuidedMutation.has_value())
    cfg.fpGuidedMutation = *tweak.fpGuidedMutation && hasProbMap;
}

}  // namespace

SynthesisResult runIslandSearch(
    const SynthesizerConfig& config, const fitness::FitnessPtr& sharedFitness,
    const std::shared_ptr<fitness::ProbMapProvider>& sharedProbMap,
    const IslandFitnessFactory& factory, const dsl::Spec& spec,
    std::size_t targetLength, std::size_t budgetLimit, util::Rng& rng) {
  util::Timer timer;
  const IslandsConfig& ic = config.islands;
  const std::size_t K = std::max<std::size_t>(1, ic.count);

  // ---- per-island lanes: config (tweaked), fitness, RNG stream ----
  std::vector<IslandFitness> lanes(K);
  for (std::size_t i = 0; i < K; ++i) {
    lanes[i] = factory ? factory(i)
                       : IslandFitness{sharedFitness, sharedProbMap};
    if (!lanes[i].fitness)
      throw std::invalid_argument("island fitness factory returned null");
  }

  std::vector<SynthesizerConfig> laneCfg(K, config);
  const std::vector<IslandTweak> cycle = tweakCycle(ic);
  for (std::size_t i = 0; i < K; ++i) {
    laneCfg[i].strategy = SearchStrategy::SinglePopulation;
    if (!cycle.empty())
      applyTweak(laneCfg[i], cycle[i % cycle.size()],
                 static_cast<bool>(lanes[i].probMap));
    if (laneCfg[i].fpGuidedMutation && !lanes[i].probMap)
      throw std::invalid_argument(
          "island fitness factory must supply a ProbMapProvider for "
          "fpGuidedMutation");
  }

  // K == 1 consumes the caller's RNG directly — that is what makes the
  // one-island search bit-identical to SinglePopulation. K > 1 forks one
  // independent stream per island, in island order.
  std::vector<util::Rng> rngs;
  if (K > 1) {
    rngs.reserve(K);
    for (std::size_t i = 0; i < K; ++i) rngs.push_back(rng.fork());
  }

  BudgetLedger ledger(budgetLimit);
  std::deque<SearchBudget> budgets;  // deque: stable addresses for the states
  std::vector<std::unique_ptr<SearchState>> states;
  states.reserve(K);
  for (std::size_t i = 0; i < K; ++i) {
    budgets.emplace_back(0);  // opened per round by the ledger
    states.push_back(std::make_unique<SearchState>(
        laneCfg[i], lanes[i].fitness, lanes[i].probMap, spec, targetLength,
        budgets[i], K == 1 ? rng : rngs[i]));
  }

  // Parallel stepping needs per-island fitness isolation; without a factory
  // the islands share the caller's instances and must run on one thread
  // (results are identical either way — the point of the lockstep design).
  std::size_t threads = 1;
  if (factory && K > 1) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    threads = ic.threads == 0 ? std::min(K, hw) : std::min(ic.threads, K);
  }
  std::optional<Gang> gang;
  if (threads > 1) gang.emplace(threads);

  std::vector<SearchState::Status> status(K, SearchState::Status::Running);
  std::vector<std::size_t> usedBefore(K, 0);
  std::vector<IslandStats> stats(K);
  for (std::size_t i = 0; i < K; ++i) stats[i].island = i;
  int winner = -1;

  // One lockstep round over `active` (ascending island indices): open the
  // ledger, run seed()/step() in parallel, then commit + detect the winner
  // in island order at the barrier.
  const auto runRound = [&](const std::vector<std::size_t>& active,
                            bool seedRound) {
    for (std::size_t i : active) {
      ledger.openRound(budgets[i]);
      usedBefore[i] = budgets[i].used();
    }
    const std::function<void(std::size_t)> job = [&](std::size_t slot) {
      const std::size_t i = active[slot];
      status[i] = seedRound ? states[i]->seed() : states[i]->step();
    };
    if (gang) {
      gang->run(active.size(), job);
    } else {
      for (std::size_t slot = 0; slot < active.size(); ++slot) job(slot);
    }
    for (std::size_t i : active) {
      const std::size_t used = budgets[i].used() - usedBefore[i];
      const std::size_t grant = ledger.commit(used);
      stats[i].evals += grant;
      if (status[i] == SearchState::Status::Solved) {
        // The solution stands only if its position in the island's round
        // stream fell inside the grant (budget.hpp's ledger semantics).
        const std::size_t pos = states[i]->solvedAtUsed() - usedBefore[i];
        if (pos <= grant) {
          // In the canonical sequential interleaving (round-major, island-
          // major) the search stops here: later islands' round work is
          // never examined, so it must not be charged either — that keeps
          // candidatesSearched at single-population semantics.
          winner = static_cast<int>(i);
          break;
        }
      }
    }
  };

  // Elite exchange between the still-running islands. Emigrants are
  // collected from every sender before any injection, so this round's
  // arrivals can never be re-exported within the same migration.
  const auto migrate = [&]() {
    std::vector<std::size_t> running;
    for (std::size_t i = 0; i < K; ++i)
      if (status[i] == SearchState::Status::Running) running.push_back(i);
    if (running.size() < 2 || ic.migrationSize == 0) return;
    std::vector<std::vector<SearchState::Migrant>> out(running.size());
    for (std::size_t j = 0; j < running.size(); ++j)
      out[j] = states[running[j]]->emigrants(ic.migrationSize);
    for (std::size_t j = 0; j < running.size(); ++j)
      stats[running[j]].emigrants += out[j].size();
    if (ic.topology == Topology::Ring) {
      for (std::size_t j = 0; j < running.size(); ++j) {
        const std::size_t to = running[(j + 1) % running.size()];
        stats[to].immigrants += states[to]->injectMigrants(out[j]);
      }
    } else {  // FullyConnected: everyone receives everyone else's elites
      for (std::size_t j = 0; j < running.size(); ++j) {
        std::vector<SearchState::Migrant> incoming;
        for (std::size_t s = 0; s < running.size(); ++s) {
          if (s == j) continue;
          incoming.insert(incoming.end(), out[s].begin(), out[s].end());
        }
        stats[running[j]].immigrants +=
            states[running[j]]->injectMigrants(incoming);
      }
    }
  };

  // ---- round 0: seed every island ----
  std::vector<std::size_t> active(K);
  for (std::size_t i = 0; i < K; ++i) active[i] = i;
  runRound(active, true);

  // ---- generation rounds ----
  if (winner < 0 && !ledger.exhausted()) {
    for (std::size_t gen = 1;; ++gen) {
      active.clear();
      for (std::size_t i = 0; i < K; ++i)
        if (status[i] == SearchState::Status::Running) active.push_back(i);
      if (active.empty()) break;
      runRound(active, false);
      if (winner >= 0 || ledger.exhausted()) break;
      if (K > 1 && ic.migrationInterval > 0 && gen % ic.migrationInterval == 0)
        migrate();
    }
  }

  // ---- assemble the result ----
  SynthesisResult result;
  if (winner >= 0) {
    result = states[static_cast<std::size_t>(winner)]->finish();
    stats[static_cast<std::size_t>(winner)].solved = true;
  } else {
    // Base on island 0 (for K == 1 this is the exact SinglePopulation
    // result, history included); an invalidated solution — found beyond the
    // island's grant — is erased.
    result = states[0]->finish();
    result.found = false;
    result.foundByNs = false;
    result.solution = dsl::Program{};
  }

  std::size_t nsTotal = 0;
  std::size_t maxGenerations = 0;
  double best = 0.0;
  for (std::size_t i = 0; i < K; ++i) {
    stats[i].bestFitness = states[i]->bestFitness();
    stats[i].generations = states[i]->generation();
    stats[i].nsInvocations = states[i]->result().nsInvocations;
    nsTotal += stats[i].nsInvocations;
    best = std::max(best, stats[i].bestFitness);
    maxGenerations = std::max(maxGenerations, stats[i].generations);
  }
  result.nsInvocations = nsTotal;
  result.bestFitness = best;
  if (winner < 0) result.generations = maxGenerations;
  result.candidatesSearched = ledger.committed();
  result.seconds = timer.seconds();
  result.islandStats = std::move(stats);
  return result;
}

}  // namespace netsyn::core
