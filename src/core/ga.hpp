// Genetic-algorithm machinery: population, elitism, Roulette Wheel
// selection, crossover, mutation (uniform or FP-guided), and the
// validity-by-construction repair loop (repeat operators until the offspring
// has no dead code, paper §4.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dsl/dce.hpp"
#include "dsl/generator.hpp"
#include "dsl/program.hpp"
#include "util/rng.hpp"

namespace netsyn::dsl {
struct Domain;  // domain.hpp
}

namespace netsyn::core {

/// GA hyper-parameters (paper Appendix B defaults).
struct GaConfig {
  std::size_t populationSize = 100;  ///< gene pool size
  std::size_t eliteCount = 5;        ///< reserve genes per generation
  double crossoverRate = 0.4;
  double mutationRate = 0.3;
  std::size_t dceRetries = 25;  ///< operator retries for a fully-live child
};

/// One gene with its cached fitness.
struct Individual {
  dsl::Program program;
  double fitness = 0.0;
};

using Population = std::vector<Individual>;

/// Optional per-function weights for FP-guided mutation (Mutation_FP),
/// indexed by *domain-local* function index (the order of the domain's
/// vocabulary; equal to global FuncId for the list domain). Size must be
/// the domain's vocabSize().
using FunctionWeights = std::vector<double>;

/// Single-point crossover of two equal-length parents: child takes the
/// prefix of `a` up to a random cut and the suffix of `b`.
dsl::Program crossover(const dsl::Program& a, const dsl::Program& b,
                       util::Rng& rng);

/// Replaces one uniformly chosen position with a different function drawn
/// from the domain's vocabulary (nullptr = list domain). When `weights` is
/// provided the replacement is Roulette-Wheel drawn from it (the paper's
/// Mutation_FP); otherwise uniform over the other vocabSize()-1 functions.
dsl::Program mutate(const dsl::Program& gene, util::Rng& rng,
                    const FunctionWeights* weights = nullptr,
                    const dsl::Domain* domain = nullptr);

/// Roulette-Wheel index over the population's fitness values.
std::size_t rouletteSelect(const Population& pop, util::Rng& rng);

/// Indices of the `count` highest-fitness individuals (descending fitness).
std::vector<std::size_t> topIndices(const Population& pop, std::size_t count);

/// Breeds the next generation's *programs* from a graded population:
/// elites pass through unmodified; the rest come from crossover / mutation /
/// reproduction chosen with the configured probabilities. Every offspring is
/// fully live under `sig` (operators are retried, then a fresh random
/// program is substituted as a last resort).
std::vector<dsl::Program> breed(const Population& pop, const GaConfig& config,
                                const dsl::InputSignature& sig,
                                const dsl::Generator& gen, util::Rng& rng,
                                const FunctionWeights* mutationWeights);

}  // namespace netsyn::core
