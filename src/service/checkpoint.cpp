#include "service/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <vector>

#include "util/faultinject.hpp"
#include "util/hashing.hpp"

namespace netsyn::service {
namespace {

constexpr char kMagic[8] = {'N', 'E', 'T', 'S', 'Y', 'N', 'C', 'K'};

// ---- little-endian primitive writers/readers --------------------------------

void putU64(std::string& b, std::uint64_t v) {
  char raw[8];
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  b.append(raw, 8);
}

void putU32(std::string& b, std::uint32_t v) {
  char raw[4];
  for (int i = 0; i < 4; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  b.append(raw, 4);
}

void putDouble(std::string& b, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(b, bits);
}

void putString(std::string& b, const std::string& s) {
  putU64(b, s.size());
  b.append(s);
}

/// Bounds-checked sequential reader over the payload; any overrun throws,
/// which decodeTaskCheckpoint turns into a false return.
struct Reader {
  const char* p;
  std::size_t left;

  void need(std::size_t n) const {
    if (n > left) throw std::runtime_error("payload truncated");
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    p += 8;
    left -= 8;
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    p += 4;
    left -= 4;
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(p, n);
    p += n;
    left -= n;
    return s;
  }
  /// Count fields double as offsets into the remaining payload; a corrupted
  /// count must fail bounds-checking instead of driving a multi-gigabyte
  /// allocation, so counts are validated against a per-element floor.
  std::uint64_t count(std::uint64_t minBytesPer) {
    const std::uint64_t n = u64();
    if (minBytesPer > 0 && n > left / minBytesPer)
      throw std::runtime_error("payload count exceeds remaining bytes");
    return n;
  }
};

void putProgram(std::string& b, const dsl::Program& p) {
  const std::vector<dsl::FuncId>& fs = p.functions();
  putU64(b, fs.size());
  for (dsl::FuncId f : fs) b.push_back(static_cast<char>(f));
}

dsl::Program readProgram(Reader& r) {
  const std::uint64_t n = r.count(1);
  r.need(n);
  std::vector<dsl::FuncId> fs(n);
  for (std::uint64_t i = 0; i < n; ++i)
    fs[i] = static_cast<dsl::FuncId>(static_cast<unsigned char>(r.p[i]));
  r.p += n;
  r.left -= n;
  return dsl::Program(std::move(fs));
}

std::string encodePayload(const core::SearchState::Snapshot& snap,
                          const util::Rng& rng) {
  if (!snap.result.islandStats.empty())
    throw std::logic_error(
        "island searches are checkpoint-atomic; a snapshot with islandStats "
        "cannot be serialized");

  std::string b;
  putU64(b, snap.targetLength);

  // Rng (xoshiro256** raw state).
  for (std::uint64_t w : rng.state()) putU64(b, w);

  // Population (order-preserving: the GA trajectory depends on it).
  putU64(b, snap.pop.size());
  for (const core::Individual& ind : snap.pop) {
    putProgram(b, ind.program);
    putDouble(b, ind.fitness);
  }

  // Accumulated result.
  const core::SynthesisResult& res = snap.result;
  b.push_back(res.found ? 1 : 0);
  putProgram(b, res.solution);
  putU64(b, res.candidatesSearched);
  putU64(b, res.generations);
  putDouble(b, res.seconds);
  putU64(b, res.nsInvocations);
  b.push_back(res.foundByNs ? 1 : 0);
  putDouble(b, res.bestFitness);
  putU64(b, res.history.size());
  for (const core::GenerationStats& g : res.history) {
    putU64(b, g.generation);
    putDouble(b, g.bestFitness);
    putDouble(b, g.meanFitness);
    putU64(b, g.budgetUsed);
    b.push_back(g.nsTriggered ? 1 : 0);
  }

  // Fitness cache, key-sorted so identical snapshots encode to identical
  // bytes (unordered_map iteration order is unspecified).
  std::vector<const std::pair<const std::string, double>*> cache;
  cache.reserve(snap.cache.size());
  for (const auto& kv : snap.cache) cache.push_back(&kv);
  std::sort(cache.begin(), cache.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  putU64(b, cache.size());
  for (const auto* kv : cache) {
    putString(b, kv->first);
    putDouble(b, kv->second);
  }

  // Evaluator dedup set, sorted for the same reason.
  std::vector<std::uint64_t> seen(snap.seen.begin(), snap.seen.end());
  std::sort(seen.begin(), seen.end());
  putU64(b, seen.size());
  for (std::uint64_t k : seen) putU64(b, k);

  // Saturation window.
  putU64(b, snap.window.window());
  const std::deque<double>& recent = snap.window.recentValues();
  putU64(b, recent.size());
  for (double v : recent) putDouble(b, v);
  putDouble(b, snap.window.priorSum());
  putU64(b, snap.window.priorCount());
  putU64(b, snap.window.count());

  // Budget + carried wall clock.
  putU64(b, snap.budgetLimit);
  putU64(b, snap.budgetUsed);
  putDouble(b, snap.priorSeconds);
  return b;
}

void decodePayload(Reader& r, core::SearchState::Snapshot& snap,
                   util::Rng& rng) {
  snap.targetLength = r.u64();

  std::array<std::uint64_t, 4> s;
  for (std::uint64_t& w : s) w = r.u64();
  rng.setState(s);

  const std::uint64_t popSize = r.count(16);
  snap.pop.clear();
  snap.pop.reserve(popSize);
  for (std::uint64_t i = 0; i < popSize; ++i) {
    core::Individual ind;
    ind.program = readProgram(r);
    ind.fitness = r.f64();
    snap.pop.push_back(std::move(ind));
  }

  core::SynthesisResult& res = snap.result;
  res = core::SynthesisResult{};
  r.need(1);
  res.found = *r.p != 0;
  ++r.p;
  --r.left;
  res.solution = readProgram(r);
  res.candidatesSearched = r.u64();
  res.generations = r.u64();
  res.seconds = r.f64();
  res.nsInvocations = r.u64();
  r.need(1);
  res.foundByNs = *r.p != 0;
  ++r.p;
  --r.left;
  res.bestFitness = r.f64();
  const std::uint64_t histSize = r.count(33);
  res.history.reserve(histSize);
  for (std::uint64_t i = 0; i < histSize; ++i) {
    core::GenerationStats g;
    g.generation = r.u64();
    g.bestFitness = r.f64();
    g.meanFitness = r.f64();
    g.budgetUsed = r.u64();
    r.need(1);
    g.nsTriggered = *r.p != 0;
    ++r.p;
    --r.left;
    res.history.push_back(g);
  }

  const std::uint64_t cacheSize = r.count(16);
  snap.cache.clear();
  snap.cache.reserve(cacheSize);
  for (std::uint64_t i = 0; i < cacheSize; ++i) {
    std::string key = r.str();
    const double v = r.f64();
    snap.cache.emplace(std::move(key), v);
  }

  const std::uint64_t seenSize = r.count(8);
  snap.seen.clear();
  snap.seen.reserve(seenSize);
  for (std::uint64_t i = 0; i < seenSize; ++i) snap.seen.insert(r.u64());

  const std::uint64_t window = r.u64();
  if (window == 0) throw std::runtime_error("window size 0");
  const std::uint64_t recentSize = r.count(8);
  if (recentSize > window)
    throw std::runtime_error("window holds more values than its size");
  std::deque<double> recent;
  for (std::uint64_t i = 0; i < recentSize; ++i) recent.push_back(r.f64());
  const double priorSum = r.f64();
  const std::uint64_t priorCount = r.u64();
  const std::uint64_t total = r.u64();
  if (total != priorCount + recentSize)
    throw std::runtime_error("window counters inconsistent");
  snap.window = util::SlidingWindowMean::restored(window, std::move(recent),
                                                  priorSum, priorCount, total);

  snap.budgetLimit = r.u64();
  snap.budgetUsed = r.u64();
  if (snap.budgetUsed > snap.budgetLimit)
    throw std::runtime_error("budget used exceeds limit");
  snap.priorSeconds = r.f64();

  if (r.left != 0) throw std::runtime_error("trailing bytes after payload");
}

}  // namespace

std::uint64_t fnv1a64(const std::string& bytes) {
  return util::fnv1a64(bytes);
}

std::string encodeTaskCheckpoint(const core::SearchState::Snapshot& snap,
                                 const util::Rng& rng) {
  const std::string payload = encodePayload(snap, rng);
  std::string framed;
  framed.reserve(28 + payload.size());
  framed.append(kMagic, sizeof(kMagic));
  putU32(framed, kCheckpointVersion);
  putU64(framed, payload.size());
  putU64(framed, fnv1a64(payload));
  framed.append(payload);
  // Chaos site: flips one byte of the finished frame. The checksum above
  // was computed first, so the flip is always detectable on read — the
  // "corrupt and detect" contract.
  FAULT_CORRUPT("checkpoint.corrupt", framed);
  return framed;
}

bool decodeTaskCheckpoint(const std::string& bytes,
                          core::SearchState::Snapshot& snap, util::Rng& rng,
                          std::string& error) {
  try {
    if (bytes.size() < 28) throw std::runtime_error("file shorter than header");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
      throw std::runtime_error("bad magic");
    Reader r{bytes.data() + 8, bytes.size() - 8};
    const std::uint32_t version = r.u32();
    if (version != kCheckpointVersion)
      throw std::runtime_error("unsupported version " +
                               std::to_string(version));
    const std::uint64_t length = r.u64();
    const std::uint64_t checksum = r.u64();
    if (length != r.left)
      throw std::runtime_error("length field disagrees with file size");
    const std::string payload(r.p, r.left);
    if (fnv1a64(payload) != checksum)
      throw std::runtime_error("checksum mismatch (corrupt checkpoint)");
    decodePayload(r, snap, rng);
    return true;
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
}

bool atomicWriteFile(const std::string& path, const std::string& bytes,
                     std::string& error) {
  try {
    FAULT_POINT("checkpoint.write");
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    error = "open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  const char* data = bytes.data();
  std::size_t leftover = bytes.size();
  while (leftover > 0) {
    const ssize_t n = ::write(fd, data, leftover);
    if (n < 0) {
      if (errno == EINTR) continue;
      error = "write " + tmp + ": " + std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    data += n;
    leftover -= static_cast<std::size_t>(n);
  }
  // Flush data before the rename publishes the file: a crash after rename
  // must never leave a renamed-but-empty checkpoint.
  if (::fsync(fd) != 0) {
    error = "fsync " + tmp + ": " + std::strerror(errno);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    error = "rename " + tmp + " -> " + path + ": " + std::strerror(errno);
    ::unlink(tmp.c_str());
    return false;
  }
  // The rename only updated the directory entry in memory; until the parent
  // directory itself is fsync'd, a power loss can roll the directory back
  // and the checkpoint silently vanishes even though the rename returned
  // success. (The file's own fsync above does not cover its directory
  // entry.)
  try {
    FAULT_POINT("checkpoint.dirsync");
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) {
    error = "open " + dir + ": " + std::strerror(errno);
    return false;
  }
  if (::fsync(dfd) != 0) {
    error = "fsync " + dir + ": " + std::strerror(errno);
    ::close(dfd);
    return false;
  }
  ::close(dfd);
  return true;
}

bool readFileBytes(const std::string& path, std::string& out,
                   std::string& error) {
  try {
    FAULT_POINT("checkpoint.read");
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  out.clear();
  char buf[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      error = "read " + path + ": " + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

bool appendLogLine(const std::string& path, const std::string& line,
                   std::string& error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    error = "open " + path + ": " + std::strerror(errno);
    return false;
  }
  const std::string framed = line + "\n";
  // One write: O_APPEND makes the whole line land contiguously or (on a
  // crash) not at all — recovery tolerates a torn *last* line only.
  const ssize_t n = ::write(fd, framed.data(), framed.size());
  ::close(fd);
  if (n != static_cast<ssize_t>(framed.size())) {
    error = "append " + path + ": " + std::strerror(errno);
    return false;
  }
  return true;
}

}  // namespace netsyn::service
