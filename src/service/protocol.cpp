#include "service/protocol.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/faultinject.hpp"
#include "util/json.hpp"

namespace netsyn::service {
namespace {

std::string errorJson(const std::string& op, const std::string& message) {
  std::ostringstream os;
  os << "{\"ok\": false";
  if (!op.empty()) os << ", \"op\": \"" << util::escapeJson(op) << "\"";
  os << ", \"error\": \"" << util::escapeJson(message) << "\"}";
  return os.str();
}

/// Per-program synthesis aggregates over the completed tasks (matches
/// MethodReport::synthesizedFraction / meanSynthesisRate on a Done job).
void synthesisAggregates(const JobStatus& st, double& synthesizedFraction,
                         double& meanRate) {
  synthesizedFraction = 0.0;
  meanRate = 0.0;
  if (st.programs == 0 || st.runsPerProgram == 0) return;
  std::vector<std::size_t> foundPerProgram(st.programs, 0);
  for (const TaskRecord& t : st.tasks)
    if (t.found && t.program < st.programs) ++foundPerProgram[t.program];
  std::size_t synthesized = 0;
  double rateSum = 0.0;
  for (std::size_t f : foundPerProgram) {
    synthesized += f > 0 ? 1 : 0;
    rateSum += static_cast<double>(f) / static_cast<double>(st.runsPerProgram);
  }
  synthesizedFraction =
      static_cast<double>(synthesized) / static_cast<double>(st.programs);
  meanRate = rateSum / static_cast<double>(st.programs);
}

std::uint64_t requireJobId(const util::JsonValue& root) {
  const util::JsonValue* job = root.find("job");
  if (!job) throw std::invalid_argument("missing \"job\" id");
  return util::jsonUnsigned(*job, "job");
}

/// Shared body of the stats/metrics responses (every SessionStats counter).
void appendStatsFields(std::ostringstream& os, const SessionStats& s) {
  os << ", \"jobs_submitted\": " << s.jobsSubmitted
     << ", \"jobs_completed\": " << s.jobsCompleted
     << ", \"jobs_cancelled\": " << s.jobsCancelled
     << ", \"jobs_failed\": " << s.jobsFailed
     << ", \"tasks_executed\": " << s.tasksExecuted
     << ", \"result_cache_hits\": " << s.resultCacheHits
     << ", \"checkpoints_taken\": " << s.checkpointsTaken
     << ", \"tasks_resumed\": " << s.tasksResumed
     << ", \"plan_compiles\": " << s.planCompiles
     << ", \"plan_lookups\": " << s.planLookups
     << ", \"plan_hits\": " << (s.planLookups - s.planCompiles)
     << ", \"submits_rejected\": " << s.submitsRejected
     << ", \"attach_hits\": " << s.attachHits
     << ", \"tasks_retried\": " << s.tasksRetried
     << ", \"tasks_abandoned\": " << s.tasksAbandoned
     << ", \"jobs_deadline_failed\": " << s.jobsDeadlineFailed
     << ", \"jobs_recovered\": " << s.jobsRecovered
     << ", \"durable_checkpoints_written\": " << s.durableCheckpointsWritten
     << ", \"durable_checkpoints_loaded\": " << s.durableCheckpointsLoaded
     << ", \"checkpoints_rejected\": " << s.checkpointsRejected
     << ", \"durable_write_errors\": " << s.durableWriteErrors
     << ", \"hellos_accepted\": " << s.hellosAccepted
     << ", \"stale_tokens_rejected\": " << s.staleTokensRejected
     << ", \"tasks_adopted\": " << s.tasksAdopted
     << ", \"snapshots_adopted\": " << s.snapshotsAdopted;
}

std::string statsJson(const SessionStats& s) {
  std::ostringstream os;
  os << "{\"ok\": true, \"op\": \"stats\"";
  appendStatsFields(os, s);
  os << "}";
  return os.str();
}

std::string metricsJson(const ServiceMetrics& m) {
  std::ostringstream os;
  os << "{\"ok\": true, \"op\": \"metrics\""
     << ", \"queue_depth\": " << m.queueDepth
     << ", \"retry_waiting\": " << m.retryWaiting
     << ", \"max_queued_tasks\": " << m.maxQueuedTasks
     << ", \"jobs_tracked\": " << m.jobsTracked
     << ", \"jobs_active\": " << m.jobsActive
     << ", \"result_cache_entries\": " << m.resultCacheEntries
     << ", \"fault_hits\": " << m.faultHits
     << ", \"fault_fires\": " << m.faultFires;
  appendStatsFields(os, m.stats);
  os << "}";
  return os.str();
}

}  // namespace

std::string jobStatusJson(const JobStatus& st, const std::string& op,
                          const std::string& extraJson) {
  std::ostringstream os;
  os.precision(17);
  os << "{\"ok\": true, \"op\": \"" << util::escapeJson(op) << "\""
     << ", \"job\": " << st.id
     << ", \"state\": \"" << jobStateName(st.state) << "\""
     << ", \"method\": \"" << util::escapeJson(st.method) << "\""
     << ", \"programs\": " << st.programs
     << ", \"runs_per_program\": " << st.runsPerProgram
     << ", \"tasks_total\": " << st.tasksTotal
     << ", \"tasks_done\": " << st.tasksDone
     << ", \"from_cache\": " << (st.fromCache ? "true" : "false")
     << ", \"recovered\": " << (st.recovered ? "true" : "false")
     << ", \"retries\": " << st.retries
     << ", \"plan_compiles\": " << st.planCompiles
     << ", \"plan_lookups\": " << st.planLookups
     << ", \"plan_hits\": " << st.planHits();
  if (!st.error.empty())
    os << ", \"error\": \"" << util::escapeJson(st.error) << "\"";
  if (!st.errorKind.empty())
    os << ", \"error_kind\": \"" << util::escapeJson(st.errorKind) << "\"";
  if (isTerminal(st.state)) {
    double fraction = 0.0;
    double meanRate = 0.0;
    synthesisAggregates(st, fraction, meanRate);
    os << ", \"synthesized_fraction\": " << fraction
       << ", \"mean_synthesis_rate\": " << meanRate;
    os << ", \"tasks\": [";
    for (std::size_t i = 0; i < st.tasks.size(); ++i) {
      const TaskRecord& t = st.tasks[i];
      os << (i ? ", " : "") << "{\"program\": " << t.program
         << ", \"run\": " << t.run
         << ", \"found\": " << (t.found ? "true" : "false")
         << ", \"candidates\": " << t.candidates
         << ", \"generations\": " << t.generations
         << ", \"seconds\": " << t.seconds << "}";
    }
    os << "]";
  }
  os << extraJson << "}";
  return os.str();
}

std::string handleRequestLine(SynthService& service, const std::string& line,
                              bool& shutdownRequested) {
  std::string op;
  try {
    // Chaos hook on the request path: an armed throw fault here becomes a
    // clean ok:false response (the session survives); a crash fault kills
    // the daemon mid-request, which is exactly what the recovery tests
    // want to simulate.
    FAULT_POINT("protocol.request");
    const util::JsonValue root = util::parseJson(line);
    if (root.kind != util::JsonValue::Kind::Object)
      throw std::invalid_argument("request must be a JSON object");
    util::readString(root, "op", op);
    if (op.empty()) throw std::invalid_argument("missing \"op\"");

    if (op == "ping") return "{\"ok\": true, \"op\": \"ping\"}";

    if (op == "submit") {
      const util::JsonValue* cfg = root.find("config");
      if (!cfg) throw std::invalid_argument("missing \"config\"");
      const harness::ExperimentConfig config =
          harness::ExperimentConfig::fromJsonValue(*cfg);
      std::string method = "Edit";
      util::readString(root, "method", method);
      SubmitOptions opts;
      util::readBool(root, "use_result_cache", opts.useResultCache);
      util::readBool(root, "attach", opts.attach);
      util::readDouble(root, "deadline_seconds", opts.deadlineSeconds);
      const SubmitResult res = service.submit(config, method, opts);
      const JobStatus st = service.status(res.id);
      return jobStatusJson(
          st, op, res.attached ? ", \"attached\": true" : ", \"attached\": false");
    }

    if (op == "hello") {
      // Fleet session handshake: {"op":"hello","token":T[,"host":NAME]}.
      std::string token;
      std::string host;
      util::readString(root, "token", token);
      util::readString(root, "host", host);
      const HelloResult h = service.hello(token);
      std::ostringstream os;
      os << "{\"ok\": true, \"op\": \"hello\", \"epoch\": " << h.epoch
         << ", \"resumed\": " << (h.resumed ? "true" : "false");
      if (!host.empty())
        os << ", \"host\": \"" << util::escapeJson(host) << "\"";
      os << "}";
      return os.str();
    }

    if (op == "claim") {
      // Token-guarded submit of a task slice:
      //   {"op":"claim","token":T,"method":M,"config":{...},
      //    "tasks":[i,...][,"attach":B][,"adopt_dir":PATH]}
      // The token check runs before anything else so a zombie
      // coordinator's replay can't even parse-validate its way into a
      // submission.
      std::string token;
      util::readString(root, "token", token);
      service.requireFreshToken(token);
      const util::JsonValue* cfg = root.find("config");
      if (!cfg) throw std::invalid_argument("missing \"config\"");
      const harness::ExperimentConfig config =
          harness::ExperimentConfig::fromJsonValue(*cfg);
      std::string method = "Edit";
      util::readString(root, "method", method);
      SubmitOptions opts;
      util::readBool(root, "use_result_cache", opts.useResultCache);
      util::readBool(root, "attach", opts.attach);
      util::readDouble(root, "deadline_seconds", opts.deadlineSeconds);
      util::readString(root, "adopt_dir", opts.adoptDir);
      if (const util::JsonValue* tasks = root.find("tasks")) {
        if (tasks->kind != util::JsonValue::Kind::Array)
          throw std::invalid_argument(
              "\"tasks\" must be an array of task indices");
        for (const util::JsonValue& t : tasks->items)
          opts.taskFilter.push_back(util::jsonUnsigned(t, "tasks[]"));
      }
      const SubmitResult res = service.submit(config, method, opts);
      const JobStatus st = service.status(res.id);
      return jobStatusJson(st, op,
                           res.attached ? ", \"attached\": true"
                                        : ", \"attached\": false");
    }

    if (op == "status") return jobStatusJson(service.status(requireJobId(root)), op);
    if (op == "wait") return jobStatusJson(service.wait(requireJobId(root)), op);

    if (op == "cancel" || op == "pause" || op == "resume") {
      const std::uint64_t id = requireJobId(root);
      bool applied = false;
      if (op == "cancel") applied = service.cancel(id);
      else if (op == "pause") applied = service.pause(id);
      else applied = service.resume(id);
      std::ostringstream os;
      os << "{\"ok\": true, \"op\": \"" << op << "\", \"job\": " << id
         << ", \"applied\": " << (applied ? "true" : "false")
         << ", \"state\": \"" << jobStateName(service.status(id).state)
         << "\"}";
      return os.str();
    }

    if (op == "stats") return statsJson(service.stats());
    if (op == "metrics") return metricsJson(service.metrics());

    if (op == "shutdown") {
      shutdownRequested = true;
      return "{\"ok\": true, \"op\": \"shutdown\"}";
    }

    throw std::invalid_argument("unknown op '" + op + "'");
  } catch (const OverloadedError& e) {
    // Backpressure rejection: structurally distinguishable from a bad
    // request so clients can back off and resubmit.
    std::ostringstream os;
    os << "{\"ok\": false, \"op\": \"" << util::escapeJson(op)
       << "\", \"error\": \"" << util::escapeJson(e.what())
       << "\", \"rejected\": \"overloaded\"}";
    return os.str();
  } catch (const StaleTokenError& e) {
    // Superseded-session rejection: structurally distinguishable so a
    // coordinator can tell "I was replaced" from a malformed request.
    std::ostringstream os;
    os << "{\"ok\": false, \"op\": \"" << util::escapeJson(op)
       << "\", \"error\": \"" << util::escapeJson(e.what())
       << "\", \"rejected\": \"stale_token\"}";
    return os.str();
  } catch (const std::exception& e) {
    return errorJson(op, e.what());
  }
}

void serveLines(SynthService& service, std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    bool shutdownRequested = false;
    out << handleRequestLine(service, line, shutdownRequested) << "\n";
    out.flush();
    if (shutdownRequested) {
      service.shutdown();
      return;
    }
  }
}

}  // namespace netsyn::service
