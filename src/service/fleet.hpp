// Fleet coordinator: one job, N synthd backends, bit-identical results.
//
// The coordinator speaks the NDJSON protocol (hello / claim / status /
// metrics / shutdown) to per-host backends behind util::Transport — local
// subprocesses over pipes, remote daemons over TCP/Unix sockets, or the
// in-process loopback below. Determinism rests on two facts:
//
//   1. every (program, run) task is seeded by harness::runSeedRng(config,
//      p, k) and searched single-threadedly, so a task's outcome does not
//      depend on which host runs it (the service's own pinned contract);
//   2. tasks are partitioned by rendezvous hashing on fleetTaskKey(seed,
//      p, k) over the healthy hosts' ids, so any host count yields the
//      same task -> result mapping — the fleet report renders bit-identical
//      to a single-host run, and a host's death moves only that host's
//      tasks (every survivor keeps its slice).
//
// Lifecycle of one run():
//
//   spawn/connect hosts -> hello(token) handshake -> partition tasks ->
//   claim per host (attach:true, so reconnects are idempotent) -> poll
//   status -> merge terminal claim results -> render report.
//
// Failover: a host that stops answering (EPIPE / EOF / receive timeout)
// is declared dead; its unfinished claims are re-partitioned over the
// survivors with adopt_dir pointing at the dead host's durable claim
// directory, so survivors graft the dead host's finished-task records and
// last snapshots instead of redoing its work (shared state-dir
// filesystem; without one, adoption no-ops and the tasks deterministically
// restart from seed — same report, more compute). When the last host dies
// the coordinator respawns it and re-claims with attach, riding the
// backend's own durable recovery. Overloaded hosts ("rejected":
// "overloaded") shed their claim to the next host in the task's rendezvous
// preference order, with deterministic seeded backoff between full sweeps.
//
// Socket fleets add a cheaper failover tier *before* host death: a dropped
// connection is not a dead daemon, so with maxReconnectAttempts > 0 the
// coordinator re-dials on the seeded RetrySchedule, re-hellos with the
// same token (idempotent — same epoch back), and re-submits the stranded
// claims with attach:true, which joins the jobs still running on the
// remote daemon instead of restarting them. Only a re-dial budget spent
// ends in onHostDeath. A coordinator superseded while it was away (a new
// token hello'd in) finds its re-hello rejected stale_token and fails
// loudly — reconnect never bypasses the epoch fence.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "harness/config.hpp"
#include "service/protocol.hpp"
#include "service/service.hpp"
#include "util/transport.hpp"

namespace netsyn::service {

/// Placement key of task (program, run) for a job seeded with `seed` —
/// host-count-independent by construction.
std::uint64_t fleetTaskKey(std::uint64_t seed, std::size_t program,
                           std::size_t run);

/// Stable host id from a host name ("host-0", a hostname, ...).
std::uint64_t fleetHostId(const std::string& name);

struct FleetConfig {
  std::size_t hosts = 2;
  /// Session token sent to every backend's hello; rotate it to fence off a
  /// predecessor coordinator (its requests then fail stale_token).
  std::string token = "fleet-1";
  double pollIntervalMs = 20.0;
  /// Receive budget per backend request (0 = wait forever): a backend
  /// silent past this is declared dead. Applies to pipe transports.
  double hostTimeoutSeconds = 120.0;
  /// Deterministic backoff between full shed sweeps (every alive host
  /// rejected a claim as overloaded).
  double shedBackoffMs = 50.0;
  double shedBackoffCapMs = 2000.0;
  std::uint64_t retrySeed = 0xf1ee7c0de5eedULL;
  /// Full shed sweeps before an all-overloaded fleet is a hard error.
  std::size_t maxShedSweeps = 50;
  /// Per-host respawn budget, spent only when a host dies with no
  /// survivors to reassign to.
  std::size_t maxHostRestarts = 2;
  /// Reconnect budget per connection drop (socket fleets): a host whose
  /// transport fails is re-dialed this many times on the seeded backoff
  /// below — re-hello, then re-submit its claims with attach:true, which
  /// joins the jobs still running on the remote daemon idempotently — and
  /// only declared dead (reassignment/respawn failover) once the budget is
  /// spent. 0 (default, and the right value for subprocess transports,
  /// where the peer died with its connection) keeps the PR 9 behavior:
  /// every drop is a host death.
  std::size_t maxReconnectAttempts = 0;
  double reconnectBaseMs = 100.0;
  double reconnectCapMs = 2000.0;
  /// Chaos: SIGKILL one backend once it has mid-claim progress (>= 1 task
  /// done, not all). chaosKillHost < 0 picks the host with the largest
  /// claim. The run must still complete, with the dead host's tasks
  /// recovered on survivors — the CI fleet-smoke assertion.
  bool chaosKill = false;
  long chaosKillHost = -1;
  bool verbose = false;
};

/// Backend-spawning recipe for the local (subprocess) transport factory:
/// host i runs `synthdPath` with its own state dir `<stateDir>/host-<i>`.
/// Per-host state dirs are required: a backend recovers every job dir it
/// sees at startup, so hosts sharing one dir would each adopt all claims.
struct LocalBackendConfig {
  std::string synthdPath = "./synthd";
  std::size_t workers = 1;
  /// Fleet state root (empty disables durability — failover then replays
  /// dead hosts' tasks from seed instead of resuming their snapshots).
  std::string stateDir;
  std::size_t checkpointInterval = 5;
  std::string faults;  ///< --faults spec passed to every backend
  std::vector<std::string> extraArgs;
};

/// Aggregated fleet snapshot: coordinator-side counters plus the sums of
/// each host's last-known "metrics" response (best-effort for dead hosts:
/// their final sample is whatever the coordinator last scraped).
struct FleetMetrics {
  // ---- coordinator counters ----
  std::size_t hostsSpawned = 0;
  std::size_t hostsLost = 0;       ///< declared dead (EPIPE/EOF/timeout)
  std::size_t hostsRestarted = 0;  ///< respawned for lack of survivors
  std::size_t hostsReconnected = 0;  ///< dropped connections re-dialed OK
  std::size_t claimsSubmitted = 0;
  std::size_t claimsShed = 0;       ///< overloaded rejections rerouted
  std::size_t tasksReassigned = 0;  ///< tasks moved off dead hosts
  // ---- summed per-host counters ----
  std::size_t tasksExecuted = 0;
  std::size_t tasksAdopted = 0;
  std::size_t snapshotsAdopted = 0;
  std::size_t jobsRecovered = 0;
  std::size_t tasksRetried = 0;
  std::size_t durableCheckpointsWritten = 0;
  std::size_t durableCheckpointsLoaded = 0;
  std::size_t staleTokensRejected = 0;
  std::size_t queueDepth = 0;

  /// Work that survived a failure instead of being lost: the `recovered>0`
  /// aggregate the CI kill-one-backend and chaos-sever passes assert on.
  /// A reconnect counts — the claims a dropped connection stranded were
  /// re-attached instead of redone.
  std::size_t recovered() const {
    return tasksReassigned + tasksAdopted + snapshotsAdopted + jobsRecovered +
           hostsReconnected;
  }

  std::string toJson() const;
};

/// The merged outcome of a fleet run. render() is canonical: method,
/// config, and per-task found/candidates/generations only — no wall-clock,
/// no host attribution — so any host count (and any failure history)
/// yields the same bytes for the same config.
struct FleetReport {
  std::string method;
  std::string configJson;
  std::size_t programs = 0;
  std::size_t runsPerProgram = 0;
  std::vector<TaskRecord> tasks;  ///< index = program * runsPerProgram + run
  double synthesizedFraction = 0.0;
  double meanSynthesisRate = 0.0;

  std::string render() const;
};

/// In-process backend for tests and embedding: a Transport whose peer is a
/// SynthService driven through handleRequestLine. Requests execute
/// synchronously inside recvLine(). kill() mimics a daemon SIGKILL at a
/// request boundary: the connection drops immediately and the service shuts
/// down (durable state stays recoverable by a successor on the same state
/// dir).
class LoopbackTransport : public util::Transport {
 public:
  explicit LoopbackTransport(std::shared_ptr<SynthService> service)
      : service_(std::move(service)) {}

  void sendLine(const std::string& line) override {
    if (dead_) throw util::TransportClosed("loopback backend is gone");
    pending_.push_back(line);
  }

  std::string recvLine() override {
    if (dead_) throw util::TransportClosed("loopback backend is gone");
    if (pending_.empty())
      throw util::TransportClosed("loopback recv with no pending request");
    const std::string line = pending_.front();
    pending_.pop_front();
    bool shutdownRequested = false;
    const std::string resp =
        handleRequestLine(*service_, line, shutdownRequested);
    if (shutdownRequested) {
      dead_ = true;
      service_->shutdown();
    }
    return resp;
  }

  bool alive() const override { return !dead_; }
  void close() override { dead_ = true; }

  void kill() override {
    dead_ = true;  // before shutdown: no further requests reach the service
    service_->shutdown();
  }

 private:
  std::shared_ptr<SynthService> service_;
  std::deque<std::string> pending_;
  bool dead_ = false;
};

class FleetCoordinator {
 public:
  /// Builds transport i when (re)connecting host i. Must be re-invokable
  /// for the same index (host restart).
  using TransportFactory =
      std::function<std::unique_ptr<util::Transport>(std::size_t)>;

  /// Custom transports (tests use LoopbackTransport factories).
  /// `hostStateDirs[i]` is host i's durable state root (the backend's
  /// --state-dir); empty, or an empty vector, disables snapshot adoption on
  /// failover (reassigned tasks replay from seed — identical results).
  FleetCoordinator(FleetConfig config, TransportFactory factory,
                   std::vector<std::string> hostStateDirs = {});

  /// Local subprocess fleet: spawns `config.hosts` synthd backends per
  /// `backend`, each with its own state dir under backend.stateDir.
  FleetCoordinator(FleetConfig config, const LocalBackendConfig& backend);

  /// Remote socket fleet: one host per endpoint (config.hosts is overridden
  /// by endpoints.size()), dialed as SocketTransports with the configured
  /// receive timeout. Host identities stay "host-<i>" — placement depends
  /// on position in the list, not on the address, so a pipe fleet and a
  /// socket fleet of the same size partition identically. Set
  /// maxReconnectAttempts > 0 to ride out connection drops: the daemons
  /// outlive the connection, so a re-dial + re-hello + attach resumes
  /// their still-running claims. `hostStateDirs[i]`, when the daemons
  /// share a filesystem with the coordinator, enables adopt_dir failover
  /// exactly as in subprocess mode.
  FleetCoordinator(FleetConfig config,
                   const std::vector<util::SocketEndpoint>& endpoints,
                   std::vector<std::string> hostStateDirs = {});

  ~FleetCoordinator();
  FleetCoordinator(const FleetCoordinator&) = delete;
  FleetCoordinator& operator=(const FleetCoordinator&) = delete;

  /// Runs one job across the fleet and returns the merged report. Throws
  /// on unrecoverable failure (a claim Failed, every host dead with the
  /// restart budget spent, or an all-overloaded fleet past maxShedSweeps).
  FleetReport run(const harness::ExperimentConfig& config,
                  const std::string& method);

  /// Aggregated snapshot (coordinator counters + summed host metrics).
  FleetMetrics metrics() const;

  /// Graceful fleet teardown (shutdown op to every live backend);
  /// idempotent, also run by the destructor.
  void shutdownBackends();

 private:
  struct Host {
    std::unique_ptr<util::Transport> transport;
    bool alive = false;
    std::string name;
    std::uint64_t id = 0;
    std::string stateDir;  ///< backend's durable root ("" = none)
    std::size_t restarts = 0;
    // Last-scraped per-host metrics (survive the host's death).
    std::size_t tasksExecuted = 0;
    std::size_t tasksAdopted = 0;
    std::size_t snapshotsAdopted = 0;
    std::size_t jobsRecovered = 0;
    std::size_t tasksRetried = 0;
    std::size_t durableCheckpointsWritten = 0;
    std::size_t durableCheckpointsLoaded = 0;
    std::size_t staleTokensRejected = 0;
    std::size_t queueDepth = 0;
  };

  enum class ClaimState : std::uint8_t {
    Pending,    ///< created, not yet accepted by a backend
    Submitted,  ///< accepted; polled until terminal
    Done,       ///< terminal "done"; results merged
    Reassigned  ///< host died; superseded by Pending successor claims
  };

  struct Claim {
    std::vector<std::size_t> tasks;  ///< claimed task indices, sorted
    std::size_t host = 0;            ///< current owner (index into hosts_)
    std::uint64_t jobId = 0;
    ClaimState state = ClaimState::Pending;
    std::string adoptDir;  ///< dead predecessor's claim dir ("" = none)
    std::string dirName;   ///< jobDirName of this claim
    std::size_t tasksDone = 0;       ///< from the last status poll
    std::vector<TaskRecord> results;  ///< terminal tasks (state == Done)
  };

  void connectHost(std::size_t i);
  std::string requestHost(std::size_t i, const std::string& line);
  void onHostGone(std::size_t i);  ///< reconnect first, then onHostDeath
  void onHostDeath(std::size_t i);
  void submitPendingClaims();
  bool submitClaim(Claim& claim);  ///< false: host died mid-submit
  void pollClaim(Claim& claim);
  void scrapeHostMetrics(std::size_t i);
  void maybeFireChaosKill();
  std::vector<std::size_t> aliveHosts() const;
  std::string claimDirOf(std::size_t host, const Claim& claim) const;
  void makeClaimsFor(const std::vector<std::size_t>& tasks,
                     const std::string& adoptDir);

  FleetConfig cfg_;
  TransportFactory factory_;
  std::vector<Host> hosts_;
  std::vector<Claim> claims_;
  util::RetrySchedule shed_;

  // Per-run state (reset by run()).
  const harness::ExperimentConfig* runConfig_ = nullptr;
  std::string runMethod_;
  std::size_t totalTasks_ = 0;
  bool chaosFired_ = false;

  // Coordinator counters.
  std::size_t hostsSpawned_ = 0;
  std::size_t hostsLost_ = 0;
  std::size_t hostsRestarted_ = 0;
  std::size_t hostsReconnected_ = 0;
  std::size_t claimsSubmitted_ = 0;
  std::size_t claimsShed_ = 0;
  std::size_t tasksReassigned_ = 0;
};

}  // namespace netsyn::service
