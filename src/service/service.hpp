// Long-lived synthesis service: the daemon core behind `synthd`.
//
// One SynthService multiplexes many synthesis jobs — (ExperimentConfig,
// method) pairs, the same scenario records the bench drivers and the PR 3
// experiment runner consume — over a single persistent worker pool. What a
// one-shot CLI run rebuilds from scratch every invocation stays warm here
// across requests (the MizAR-style serving argument: amortize the engine,
// multiplex the queries):
//
//   - each worker owns a long-lived dsl::Executor, so compiled program
//     plans persist across jobs; a repeat/similar spec re-executes through
//     plans cached by earlier jobs (per-job planCompiles/planLookups deltas
//     are reported so clients can observe the warm path),
//   - each worker keeps its method kits — cloned NN fitness models,
//     probability-map providers with their Spec::fingerprint()-keyed
//     caches, the hand-crafted fitness instances — alive between jobs,
//   - trained models are loaded/trained once per (modelDir, scale) in a
//     service-wide ModelStore and cloned per worker,
//   - completed jobs are memoized by (method, config) so an identical
//     resubmission is answered instantly from the result cache.
//
// Determinism: a job expands to (program, run) tasks over the config's
// generated workload, each seeded by harness::runSeedRng(config, p, k) and
// searched single-threadedly — exactly the parallel experiment runner's
// contract — so a job's found/candidates/generations are bit-identical to
// a one-shot run of the same config, regardless of pool size, concurrent
// jobs, or cache temperature (pinned by tests/test_service.cpp).
//
// Job lifecycle: submit -> Queued -> Running -> Done, with cancel (takes
// effect at the next generation boundary of every in-flight task; queued
// tasks are dropped, other jobs are untouched) and pause/resume (in-flight
// single-population tasks checkpoint their SearchState at a generation
// boundary and later resume on any worker with the same outcome as an
// uninterrupted run; Islands-strategy tasks are pause-atomic — they finish
// their current task before the job parks).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "baselines/method.hpp"
#include "harness/config.hpp"
#include "harness/models.hpp"

namespace netsyn::service {

struct ServiceConfig {
  /// Worker threads serving tasks (0 = one per hardware thread).
  std::size_t workers = 2;
  /// Memoize completed jobs by (method, config) and answer identical
  /// resubmissions from the memo.
  bool resultCache = true;
};

enum class JobState : std::uint8_t {
  Queued,     ///< accepted, no task started yet
  Running,    ///< at least one task started
  Paused,     ///< checkpointed at generation boundaries; resume() continues
  Done,       ///< every task finished; results available
  Cancelled,  ///< cancel() or shutdown() stopped it
  Failed,     ///< a task threw; JobStatus::error holds the message
};

const char* jobStateName(JobState s);
bool isTerminal(JobState s);

/// One (program, run) outcome — the service-side RunRecord.
struct TaskRecord {
  std::size_t program = 0;  ///< index into the job's generated workload
  std::size_t run = 0;      ///< repetition k
  bool found = false;
  std::size_t candidates = 0;
  std::size_t generations = 0;
  double seconds = 0.0;
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::string method;
  std::size_t programs = 0;        ///< workload size
  std::size_t runsPerProgram = 0;  ///< K
  std::size_t tasksTotal = 0;
  std::size_t tasksDone = 0;
  bool fromCache = false;  ///< answered from the job-result memo
  /// Plan-cache traffic this job caused across the workers that ran it.
  /// planHits() on a resubmitted spec is the warm-cache signal: the second
  /// identical job recompiles (almost) nothing.
  std::size_t planCompiles = 0;
  std::size_t planLookups = 0;
  std::size_t planHits() const { return planLookups - planCompiles; }
  std::string error;  ///< set when state == Failed
  /// Completed task outcomes (every slot for Done; the finished subset for
  /// Cancelled/Failed/Paused). Order: task index = program * K + run.
  std::vector<TaskRecord> tasks;
};

/// Whole-session accounting, served by the protocol's "stats" op.
struct SessionStats {
  std::size_t jobsSubmitted = 0;
  std::size_t jobsCompleted = 0;
  std::size_t jobsCancelled = 0;
  std::size_t jobsFailed = 0;
  std::size_t tasksExecuted = 0;     ///< completed task executions
  std::size_t resultCacheHits = 0;   ///< jobs answered from the memo
  std::size_t checkpointsTaken = 0;  ///< tasks parked by pause()
  std::size_t tasksResumed = 0;      ///< checkpointed tasks continued
  std::size_t planCompiles = 0;      ///< across all workers
  std::size_t planLookups = 0;
};

/// Trained-model store shared by every worker: the NN fitness models for a
/// given (modelDir, scale) are loaded from the on-disk cache (or trained)
/// exactly once per service lifetime; workers clone from the stored
/// instances. Thread-safe.
class ModelStore {
 public:
  /// Models for `config` (loads/trains on first use — training can take a
  /// while when no disk cache exists; NetSyn_* jobs are the only users).
  harness::TrainedModels get(const harness::ExperimentConfig& config);

 private:
  std::mutex mu_;
  std::map<std::string, harness::TrainedModels> store_;
};

/// GA method names the service schedules through its steppable search path:
/// "Edit", "Oracle_CF", "Oracle_LCS", "NetSyn_CF", "NetSyn_LCS",
/// "NetSyn_FP" (registry spelling).
bool isKnownMethod(const std::string& name);

/// A one-shot method instance for `method` built through the same registry
/// transforms the service applies per job — the comparison path
/// tests/test_service.cpp and `synth_client --verify` run jobs through.
baselines::MethodPtr makeOneShotMethod(const std::string& method,
                                       const harness::ExperimentConfig& config,
                                       ModelStore& models);

class SynthService {
 public:
  explicit SynthService(ServiceConfig config = {});
  ~SynthService();  ///< shutdown()
  SynthService(const SynthService&) = delete;
  SynthService& operator=(const SynthService&) = delete;

  /// Accepts a job and enqueues its (program, run) tasks. Workload
  /// generation and method validation run on the caller's thread; throws
  /// std::invalid_argument / std::runtime_error on a bad method name or
  /// config. `useResultCache = false` opts this job out of the completed-
  /// job memo (both lookup and store) — the search still enjoys the warm
  /// plan caches.
  std::uint64_t submit(const harness::ExperimentConfig& config,
                       const std::string& method, bool useResultCache = true);

  /// Snapshot of a job (throws std::out_of_range on unknown id). The
  /// service retains a bounded history: the oldest terminal jobs are
  /// eventually evicted and their ids read as unknown again.
  JobStatus status(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state — or Paused, which
  /// returns immediately rather than deadlocking callers (like a
  /// single-threaded protocol session) that are themselves the only source
  /// of the eventual resume(). Terminal statuses carry the tasks.
  JobStatus wait(std::uint64_t id);

  /// Requests cancellation; running tasks stop at their next generation
  /// boundary, queued tasks are dropped. Returns false when the job was
  /// already terminal.
  bool cancel(std::uint64_t id);

  /// Parks a Queued/Running job: in-flight single-population tasks
  /// checkpoint at their next generation boundary. Returns false otherwise.
  bool pause(std::uint64_t id);

  /// Re-enqueues a Paused job's unfinished tasks (checkpointed ones resume
  /// their exact trajectory). Returns false when the job is not Paused.
  bool resume(std::uint64_t id);

  SessionStats stats() const;

  /// Stops the pool: outstanding jobs are cancelled, workers join. Called
  /// by the destructor; idempotent.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace netsyn::service
