// Long-lived synthesis service: the daemon core behind `synthd`.
//
// One SynthService multiplexes many synthesis jobs — (ExperimentConfig,
// method) pairs, the same scenario records the bench drivers and the PR 3
// experiment runner consume — over a single persistent worker pool. What a
// one-shot CLI run rebuilds from scratch every invocation stays warm here
// across requests (the MizAR-style serving argument: amortize the engine,
// multiplex the queries):
//
//   - each worker owns a long-lived dsl::Executor, so compiled program
//     plans persist across jobs; a repeat/similar spec re-executes through
//     plans cached by earlier jobs (per-job planCompiles/planLookups deltas
//     are reported so clients can observe the warm path),
//   - each worker keeps its method kits — cloned NN fitness models,
//     probability-map providers with their Spec::fingerprint()-keyed
//     caches, the hand-crafted fitness instances — alive between jobs,
//   - trained models are loaded/trained once per (modelDir, scale) in a
//     service-wide ModelStore and cloned per worker,
//   - completed jobs are memoized by (method, config) so an identical
//     resubmission is answered instantly from the result cache.
//
// Determinism: a job expands to (program, run) tasks over the config's
// generated workload, each seeded by harness::runSeedRng(config, p, k) and
// searched single-threadedly — exactly the parallel experiment runner's
// contract — so a job's found/candidates/generations are bit-identical to
// a one-shot run of the same config, regardless of pool size, concurrent
// jobs, or cache temperature (pinned by tests/test_service.cpp).
//
// Fault tolerance (see ARCHITECTURE.md "Fault tolerance"): a watchdog
// thread enforces per-job wall-clock deadlines, detects stalled tasks (no
// generation progress within `stallSeconds`) and aborts them at the next
// opportunity, and re-runs failed/stalled tasks with capped exponential
// backoff — from the task's last generation-boundary snapshot when one
// exists, from the task's deterministic seed otherwise, so a retried task
// finishes bit-identical to an undisturbed one either way. After
// `maxTaskRetries` failures of one task the job reports Failed with a
// structured reason (JobStatus::errorKind). With `stateDir` set, snapshots
// and completed-task records are additionally persisted (versioned +
// checksummed, written via atomic rename; service/checkpoint.hpp) and a
// restarted service recovers its job table and resumes unfinished tasks
// from their last durable checkpoint. `maxQueuedTasks` bounds the task
// queue; a submission that would exceed it is rejected with
// OverloadedError instead of growing the queue without limit.
//
// Job lifecycle: submit -> Queued -> Running -> Done, with cancel (takes
// effect at the next generation boundary of every in-flight task; queued
// tasks are dropped, other jobs are untouched) and pause/resume (in-flight
// single-population tasks checkpoint their SearchState at a generation
// boundary and later resume on any worker with the same outcome as an
// uninterrupted run; Islands-strategy tasks are pause-atomic — they finish
// their current task before the job parks).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/method.hpp"
#include "harness/config.hpp"
#include "harness/models.hpp"
#include "util/transport.hpp"

namespace netsyn::service {

struct ServiceConfig {
  /// Worker threads serving tasks (0 = one per hardware thread).
  std::size_t workers = 2;
  /// Memoize completed jobs by (method, config) and answer identical
  /// resubmissions from the memo.
  bool resultCache = true;

  // ---- fault tolerance ----

  /// Durable-state directory. Empty (default) disables durability; set, the
  /// service persists job manifests, completed-task records, and task
  /// snapshots under `<stateDir>/jobs/` and recovers them on construction.
  std::string stateDir;
  /// Default per-job wall-clock deadline in seconds (0 = none). A job past
  /// its deadline fails with errorKind "deadline". SubmitOptions can
  /// override per job.
  double defaultDeadlineSeconds = 0.0;
  /// Stall budget: a Running single-population task that makes no
  /// generation progress for this long is aborted at its next opportunity
  /// and retried (0 = stall detection off). Islands-strategy tasks are
  /// exempt (they are scheduling-atomic).
  double stallSeconds = 0.0;
  /// Times one task may fail/stall before the whole job reports Failed.
  std::size_t maxTaskRetries = 3;
  /// Retry backoff: attempt n waits min(retryBackoffMs * 2^(n-1),
  /// retryBackoffCapMs) milliseconds before re-entering the queue.
  double retryBackoffMs = 50.0;
  double retryBackoffCapMs = 2000.0;
  /// Snapshot cadence: running single-population tasks refresh their
  /// retry/durability snapshot every this many generations (0 = only on
  /// pause). Purely a recovery-cost knob — results are identical for every
  /// value, since a retry without a snapshot restarts from the task seed.
  std::size_t checkpointEveryGenerations = 0;
  /// Backpressure: maximum queued tasks across all jobs; a submission whose
  /// tasks would not fit throws OverloadedError (0 = unbounded).
  std::size_t maxQueuedTasks = 0;
};

/// submit() backpressure rejection (queue full). The protocol maps this to
/// {"ok": false, "rejected": "overloaded"}.
class OverloadedError : public std::runtime_error {
 public:
  explicit OverloadedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A fleet session token that was superseded by a newer hello (or a claim
/// attempted before any hello). The protocol maps this to {"ok": false,
/// "rejected": "stale_token"} so a zombie coordinator's replayed requests
/// are rejected loudly instead of racing the live one.
class StaleTokenError : public std::runtime_error {
 public:
  explicit StaleTokenError(const std::string& what)
      : std::runtime_error(what) {}
};

/// hello() outcome: the session epoch this token now owns, and whether the
/// backend rebuilt jobs from its durable state dir at startup (the signal
/// that a reconnecting coordinator should re-claim with attach).
struct HelloResult {
  std::uint64_t epoch = 0;
  bool resumed = false;
};

enum class JobState : std::uint8_t {
  Queued,     ///< accepted, no task started yet
  Running,    ///< at least one task started
  Paused,     ///< checkpointed at generation boundaries; resume() continues
  Done,       ///< every task finished; results available
  Cancelled,  ///< cancel() or shutdown() stopped it
  Failed,     ///< a task threw; JobStatus::error holds the message
};

const char* jobStateName(JobState s);
bool isTerminal(JobState s);

/// One (program, run) outcome — the service-side RunRecord.
struct TaskRecord {
  std::size_t program = 0;  ///< index into the job's generated workload
  std::size_t run = 0;      ///< repetition k
  bool found = false;
  std::size_t candidates = 0;
  std::size_t generations = 0;
  double seconds = 0.0;
};

struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::Queued;
  std::string method;
  std::size_t programs = 0;        ///< workload size
  std::size_t runsPerProgram = 0;  ///< K
  std::size_t tasksTotal = 0;
  std::size_t tasksDone = 0;
  bool fromCache = false;  ///< answered from the job-result memo
  bool recovered = false;  ///< restored from the durable state dir
  std::size_t retries = 0; ///< task retries spent by this job so far
  /// Plan-cache traffic this job caused across the workers that ran it.
  /// planHits() on a resubmitted spec is the warm-cache signal: the second
  /// identical job recompiles (almost) nothing.
  std::size_t planCompiles = 0;
  std::size_t planLookups = 0;
  std::size_t planHits() const { return planLookups - planCompiles; }
  std::string error;      ///< set when state == Failed
  /// Structured failure class when state == Failed: "task" (a task
  /// exhausted its retries), "stall" (the exhausting failure was a stall
  /// abort), or "deadline" (the job ran past its wall-clock deadline).
  std::string errorKind;
  /// Completed task outcomes (every slot for Done; the finished subset for
  /// Cancelled/Failed/Paused). Order: task index = program * K + run.
  std::vector<TaskRecord> tasks;
};

struct SubmitOptions {
  /// Memo participation (both lookup and store), as in the bool overload.
  bool useResultCache = true;
  /// Idempotent resubmission: when a job with the same (method, config) key
  /// is already tracked and not Cancelled/Failed, return its id (with
  /// SubmitResult::attached set) instead of starting a duplicate run. The
  /// reconnecting synth_client resubmits this way after a daemon death —
  /// safe because identical submissions are deterministic.
  bool attach = false;
  /// Per-job wall-clock deadline override (seconds; 0 = the service
  /// default).
  double deadlineSeconds = 0.0;
  /// Fleet task claim: restrict this job to the given task indices
  /// (task index = program * runsPerProgram + run); empty claims every
  /// task. The set is normalized (sorted, deduped) and is part of the job's
  /// identity — attach, the result memo, and the durable state-dir name all
  /// key on (method, config, claim) — so two hosts claiming disjoint slices
  /// of one workload never collide. Out-of-range indices throw
  /// std::invalid_argument. Unclaimed tasks are never scheduled and the job
  /// completes when every *claimed* task is done.
  std::vector<std::size_t> taskFilter;
  /// Fleet failover: path to a dead sibling claim's durable job directory
  /// (shared filesystem). At submit, completed-task records found in its
  /// tasks.ndjson become Done tasks here (re-persisted into this job's own
  /// log) and its valid task snapshots become resume checkpoints, so the
  /// reassigned claim continues where the dead host stopped instead of
  /// redoing its work. Unreadable/corrupt entries are skipped — those
  /// tasks restart from their deterministic seed with identical results.
  std::string adoptDir;
};

struct SubmitResult {
  std::uint64_t id = 0;
  bool attached = false;  ///< joined an existing job by key (opts.attach)
};

/// Whole-session accounting, served by the protocol's "stats" op.
struct SessionStats {
  std::size_t jobsSubmitted = 0;
  std::size_t jobsCompleted = 0;
  std::size_t jobsCancelled = 0;
  std::size_t jobsFailed = 0;
  std::size_t tasksExecuted = 0;     ///< completed task executions
  std::size_t resultCacheHits = 0;   ///< jobs answered from the memo
  std::size_t checkpointsTaken = 0;  ///< tasks parked by pause()
  std::size_t tasksResumed = 0;      ///< checkpointed tasks continued
  std::size_t planCompiles = 0;      ///< across all workers
  std::size_t planLookups = 0;
  // ---- fault tolerance ----
  std::size_t submitsRejected = 0;   ///< backpressure (OverloadedError)
  std::size_t attachHits = 0;        ///< submissions joined by key
  std::size_t tasksRetried = 0;      ///< failed/stalled tasks re-enqueued
  std::size_t tasksAbandoned = 0;    ///< stall-watchdog aborts
  std::size_t jobsDeadlineFailed = 0;
  std::size_t jobsRecovered = 0;     ///< rebuilt from the state dir
  std::size_t durableCheckpointsWritten = 0;
  std::size_t durableCheckpointsLoaded = 0;  ///< decoded + accepted
  std::size_t checkpointsRejected = 0;  ///< bad checksum/frame, or stale
  std::size_t durableWriteErrors = 0;   ///< persistence failures (non-fatal)
  // ---- fleet ----
  std::size_t hellosAccepted = 0;       ///< session tokens accepted/rotated
  std::size_t staleTokensRejected = 0;  ///< superseded-token replays refused
  std::size_t tasksAdopted = 0;     ///< finished tasks grafted via adoptDir
  std::size_t snapshotsAdopted = 0; ///< resume checkpoints grafted likewise
};

/// Point-in-time gauges + counters for scraping (the protocol "metrics"
/// op). Everything here is one consistent snapshot under the service lock.
struct ServiceMetrics {
  SessionStats stats;
  std::size_t queueDepth = 0;     ///< tasks waiting for a worker
  std::size_t retryWaiting = 0;   ///< tasks parked in retry backoff
  std::size_t maxQueuedTasks = 0; ///< configured cap (0 = unbounded)
  std::size_t jobsTracked = 0;    ///< jobs currently in the table
  std::size_t jobsActive = 0;     ///< tracked and not terminal
  std::size_t resultCacheEntries = 0;
  std::uint64_t faultHits = 0;    ///< armed fault-site traffic (0 disarmed)
  std::uint64_t faultFires = 0;
};

/// Trained-model store shared by every worker: the NN fitness models for a
/// given (modelDir, scale) are loaded from the on-disk cache (or trained)
/// exactly once per service lifetime; workers clone from the stored
/// instances. Thread-safe.
class ModelStore {
 public:
  /// Models for `config` (loads/trains on first use — training can take a
  /// while when no disk cache exists; NetSyn_* jobs are the only users).
  harness::TrainedModels get(const harness::ExperimentConfig& config);

 private:
  std::mutex mu_;
  std::map<std::string, harness::TrainedModels> store_;
};

/// GA method names the service schedules through its steppable search path:
/// "Edit", "Oracle_CF", "Oracle_LCS", "NetSyn_CF", "NetSyn_LCS",
/// "NetSyn_FP" (registry spelling).
bool isKnownMethod(const std::string& name);

/// A one-shot method instance for `method` built through the same registry
/// transforms the service applies per job — the comparison path
/// tests/test_service.cpp and `synth_client --verify` run jobs through.
baselines::MethodPtr makeOneShotMethod(const std::string& method,
                                       const harness::ExperimentConfig& config,
                                       ModelStore& models);

/// The directory name (under `<stateDir>/jobs/`) a job with this (method,
/// config, claim) persists to — 16 hex digits of the job key hash. Exposed
/// so a fleet coordinator can point a surviving host's claim at a dead
/// host's job directory (SubmitOptions::adoptDir) without asking the dead
/// host anything.
std::string jobDirName(const std::string& method,
                       const harness::ExperimentConfig& config,
                       const std::vector<std::size_t>& taskFilter = {});

class SynthService {
 public:
  /// Construction also runs durable recovery when config.stateDir is set:
  /// jobs found under the state dir are rebuilt before the worker pool
  /// starts — terminal ones become queryable history (Done jobs re-seed the
  /// result memo), interrupted ones re-enter the queue and resume from
  /// their last valid checkpoint.
  explicit SynthService(ServiceConfig config = {});
  ~SynthService();  ///< shutdown()
  SynthService(const SynthService&) = delete;
  SynthService& operator=(const SynthService&) = delete;

  /// Accepts a job and enqueues its (program, run) tasks. Workload
  /// generation and method validation run on the caller's thread; throws
  /// std::invalid_argument / std::runtime_error on a bad method name or
  /// config. `useResultCache = false` opts this job out of the completed-
  /// job memo (both lookup and store) — the search still enjoys the warm
  /// plan caches.
  std::uint64_t submit(const harness::ExperimentConfig& config,
                       const std::string& method, bool useResultCache = true);

  /// submit() with the full option set (attach-by-key, per-job deadline,
  /// fleet task claim + snapshot adoption). Throws OverloadedError when the
  /// task queue is at its configured cap.
  SubmitResult submit(const harness::ExperimentConfig& config,
                      const std::string& method, const SubmitOptions& opts);

  /// Fleet session handshake. A coordinator establishes (or rotates to)
  /// `token`: the same token re-hello'd is idempotent (same epoch back — a
  /// reconnect after a backend restart just re-establishes the session);
  /// a *new* token supersedes the old one, bumping the epoch and retiring
  /// the predecessor so its replayed requests fail with StaleTokenError.
  /// Empty tokens throw std::invalid_argument; retired tokens throw
  /// StaleTokenError. HelloResult::resumed tells the caller whether this
  /// backend recovered durable jobs at startup (re-claim with attach).
  HelloResult hello(const std::string& token);

  /// Validates a claim's session token: throws StaleTokenError when it is
  /// not the current one (or no hello happened yet), std::invalid_argument
  /// when empty. The protocol's "claim" op calls this before submitting.
  void requireFreshToken(const std::string& token) const;

  /// Snapshot of a job (throws std::out_of_range on unknown id). The
  /// service retains a bounded history: the oldest terminal jobs are
  /// eventually evicted and their ids read as unknown again.
  JobStatus status(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state — or Paused, which
  /// returns immediately rather than deadlocking callers (like a
  /// single-threaded protocol session) that are themselves the only source
  /// of the eventual resume(). Terminal statuses carry the tasks.
  JobStatus wait(std::uint64_t id);

  /// Requests cancellation; running tasks stop at their next generation
  /// boundary, queued tasks are dropped. Returns false when the job was
  /// already terminal.
  bool cancel(std::uint64_t id);

  /// Parks a Queued/Running job: in-flight single-population tasks
  /// checkpoint at their next generation boundary. Returns false otherwise.
  bool pause(std::uint64_t id);

  /// Re-enqueues a Paused job's unfinished tasks (checkpointed ones resume
  /// their exact trajectory). Returns false when the job is not Paused.
  bool resume(std::uint64_t id);

  SessionStats stats() const;

  /// One consistent snapshot of counters + gauges for scraping.
  ServiceMetrics metrics() const;

  /// Stops the pool: outstanding jobs are cancelled, workers join. Called
  /// by the destructor; idempotent. Durable state is deliberately NOT
  /// marked terminal — a shut-down (or killed) daemon's unfinished jobs
  /// recover on the next construction with the same stateDir.
  void shutdown();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Network front end for one SynthService: accepts TCP or Unix-domain
/// connections on a util::SocketListener and serves each as an independent
/// NDJSON protocol session on its own thread (the same handleRequestLine
/// path the stdin/stdout daemon and pipe transports speak, so every
/// session is fenced by the hello epoch tokens). A "shutdown" op from any
/// session stops the service and the server.
///
/// The accept loop polls in short finite ticks and checks a stop flag
/// between them — the documented-safe way to stop a SocketListener without
/// racing a blocked accept. Connection drops are per-session events: one
/// peer vanishing (TransportClosed) just ends that session's thread, the
/// listener and the other sessions keep going, and a reconnecting peer is
/// a fresh accept.
class SocketServer {
 public:
  /// Binds `endpoint` (TCP port 0 = ephemeral; see boundEndpoint()).
  /// `recvTimeoutSeconds` bounds each session's per-request read (0 = wait
  /// forever — sessions are request-driven, an idle peer is not an error).
  SocketServer(SynthService& service, const util::SocketEndpoint& endpoint,
               double recvTimeoutSeconds = 0.0);
  ~SocketServer();  ///< stop()
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// The bound address (ephemeral TCP port resolved) — what a client dials.
  const util::SocketEndpoint& boundEndpoint() const;

  /// Starts the accept loop on a background thread. Idempotent.
  void start();

  /// Serves on the calling thread until a shutdown op arrives (what
  /// `synthd --listen` runs as its main loop).
  void run();

  /// Stops accepting, severs every live session, joins all threads.
  /// Idempotent. Not callable from a session thread (it joins them) — a
  /// shutdown op arriving over a session instead raises the stop flag, and
  /// run()/the owner performs the join.
  void stop();

  /// Chaos hook: abruptly severs every live session (RST-close) while the
  /// listener keeps accepting — a network partition between coordinator
  /// and backend, not a backend death. Returns the number severed.
  std::size_t dropConnections();

  std::size_t sessionsServed() const;  ///< connections accepted so far
  std::size_t sessionsActive() const;  ///< sessions currently being served

 private:
  struct Session;

  void acceptLoop();
  void serveSession(Session* session);
  void reapFinishedSessions();

  SynthService& service_;
  util::SocketListener listener_;
  double recvTimeoutSeconds_ = 0.0;

  mutable std::mutex mu_;  ///< guards sessions_ and served_
  std::vector<std::unique_ptr<Session>> sessions_;
  std::size_t served_ = 0;

  std::thread acceptThread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

}  // namespace netsyn::service
