// Durable task checkpoints: versioned, checksummed serialization of
// core::SearchState::Snapshot (+ the task's Rng) to files under the
// daemon's --state-dir, plus the small POSIX file helpers the durability
// layer needs (atomic write-then-rename, whole-file read, O_APPEND line
// append).
//
// Format (all integers little-endian):
//
//   magic    8 bytes  "NETSYNCK"
//   version  u32      kCheckpointVersion
//   length   u64      payload byte count
//   checksum u64      FNV-1a 64 of the payload bytes
//   payload  ...      the serialized snapshot (below)
//
// Any mismatch — short file, wrong magic/version, length disagreeing with
// the actual byte count, checksum failure, or a payload that runs past its
// own bounds — makes decode fail loudly with a reason; the service then
// falls back to restarting that task from its seed (same deterministic
// outcome, just more work). Corruption is detectable by construction: the
// checksum is computed before the FAULT_CORRUPT site can flip a byte, so a
// chaos run's bit-flips always land on checksummed bytes.
//
// The payload deliberately does NOT serialize Snapshot::config
// (SynthesizerConfig holds a domain pointer and is a pure function of the
// job's ExperimentConfig + method, both stored in the job manifest); the
// caller rederives it with harness::methodSearchConfig and assigns it after
// decode. targetLength IS serialized and cross-checked by the service so a
// checkpoint can never silently resume against the wrong task.
//
// Byte-stability: unordered containers (fitness cache, dedup set) are
// written in sorted order, so encode(decode(encode(x))) == encode(x) —
// pinned by tests/test_checkpoint_io.cpp.
#pragma once

#include <cstdint>
#include <string>

#include "core/search_state.hpp"
#include "util/rng.hpp"

namespace netsyn::service {

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Snapshot + rng -> framed, checksummed bytes (header format above).
std::string encodeTaskCheckpoint(const core::SearchState::Snapshot& snap,
                                 const util::Rng& rng);

/// Inverse of encodeTaskCheckpoint. Fills every dynamic Snapshot field
/// (config is left untouched — see header comment) and the rng. Returns
/// false with a human-readable reason in `error` on any frame, checksum,
/// or bounds violation; `snap`/`rng` contents are unspecified on failure.
bool decodeTaskCheckpoint(const std::string& bytes,
                          core::SearchState::Snapshot& snap, util::Rng& rng,
                          std::string& error);

/// Writes `bytes` to `path` atomically: a sibling tmp file is written,
/// flushed, and renamed over `path`, so readers only ever observe the old
/// or the new complete contents, never a torn write. False + error on any
/// I/O failure (the tmp file is cleaned up).
bool atomicWriteFile(const std::string& path, const std::string& bytes,
                     std::string& error);

/// Reads the whole file into `out`. False + error when it cannot be opened
/// or read (a missing file is a normal "no checkpoint yet" miss).
bool readFileBytes(const std::string& path, std::string& out,
                   std::string& error);

/// Appends `line` + '\n' with a single O_APPEND write, so concurrent
/// appenders (and a crash mid-run) can only lose the tail line, never
/// interleave bytes. Used for the job's completed-task NDJSON log.
bool appendLogLine(const std::string& path, const std::string& line,
                   std::string& error);

/// FNV-1a 64 over a byte string (exposed for the tamper tests).
std::uint64_t fnv1a64(const std::string& bytes);

}  // namespace netsyn::service
