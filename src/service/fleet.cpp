#include "service/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "harness/workload.hpp"
#include "util/hashing.hpp"
#include "util/json.hpp"

namespace netsyn::service {

namespace {

// Distinct salt from the durability key hash so task placement and job-dir
// naming draw from unrelated streams.
constexpr std::uint64_t kTaskKeySalt = 0x5a1ad5eedbeef101ull;

void sleepMs(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

bool responseOk(const util::JsonValue& root) {
  bool ok = false;
  util::readBool(root, "ok", ok);
  return ok;
}

std::string responseError(const util::JsonValue& root) {
  std::string err = "unspecified backend error";
  util::readString(root, "error", err);
  return err;
}

}  // namespace

std::uint64_t fleetTaskKey(std::uint64_t seed, std::size_t program,
                           std::size_t run) {
  std::uint64_t h = util::mix64(seed ^ kTaskKeySalt);
  h = util::mix64(h ^ static_cast<std::uint64_t>(program));
  return util::mix64(h ^ static_cast<std::uint64_t>(run));
}

std::uint64_t fleetHostId(const std::string& name) {
  return util::fnv1a64(name);
}

std::string FleetMetrics::toJson() const {
  std::ostringstream os;
  os << "{\"hosts_spawned\": " << hostsSpawned
     << ", \"hosts_lost\": " << hostsLost
     << ", \"hosts_restarted\": " << hostsRestarted
     << ", \"hosts_reconnected\": " << hostsReconnected
     << ", \"claims_submitted\": " << claimsSubmitted
     << ", \"claims_shed\": " << claimsShed
     << ", \"tasks_reassigned\": " << tasksReassigned
     << ", \"tasks_executed\": " << tasksExecuted
     << ", \"tasks_adopted\": " << tasksAdopted
     << ", \"snapshots_adopted\": " << snapshotsAdopted
     << ", \"jobs_recovered\": " << jobsRecovered
     << ", \"tasks_retried\": " << tasksRetried
     << ", \"durable_checkpoints_written\": " << durableCheckpointsWritten
     << ", \"durable_checkpoints_loaded\": " << durableCheckpointsLoaded
     << ", \"stale_tokens_rejected\": " << staleTokensRejected
     << ", \"queue_depth\": " << queueDepth
     << ", \"recovered\": " << recovered() << "}";
  return os.str();
}

std::string FleetReport::render() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\"fleet_report\": 1"
     << ", \"method\": \"" << util::escapeJson(method) << "\""
     << ", \"programs\": " << programs
     << ", \"runs_per_program\": " << runsPerProgram
     << ", \"synthesized_fraction\": " << synthesizedFraction
     << ", \"mean_synthesis_rate\": " << meanSynthesisRate
     << ", \"config\": " << configJson << ", \"tasks\": [";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskRecord& t = tasks[i];
    os << (i ? ", " : "") << "{\"program\": " << t.program
       << ", \"run\": " << t.run
       << ", \"found\": " << (t.found ? "true" : "false")
       << ", \"candidates\": " << t.candidates
       << ", \"generations\": " << t.generations << "}";
  }
  os << "]}";
  return os.str();
}

namespace {

std::vector<std::string> localStateDirs(const FleetConfig& cfg,
                                        const LocalBackendConfig& backend) {
  std::vector<std::string> dirs;
  if (backend.stateDir.empty()) return dirs;
  dirs.reserve(cfg.hosts);
  for (std::size_t i = 0; i < cfg.hosts; ++i)
    dirs.push_back(backend.stateDir + "/host-" + std::to_string(i));
  return dirs;
}

FleetCoordinator::TransportFactory localFactory(const FleetConfig& cfg,
                                                LocalBackendConfig backend) {
  const double timeout = cfg.hostTimeoutSeconds;
  return [backend = std::move(backend),
          timeout](std::size_t i) -> std::unique_ptr<util::Transport> {
    std::vector<std::string> args;
    args.push_back("--workers=" + std::to_string(backend.workers));
    if (!backend.stateDir.empty()) {
      args.push_back("--state-dir=" + backend.stateDir + "/host-" +
                     std::to_string(i));
      args.push_back("--checkpoint-interval=" +
                     std::to_string(backend.checkpointInterval));
    }
    if (!backend.faults.empty()) args.push_back("--faults=" + backend.faults);
    for (const std::string& a : backend.extraArgs) args.push_back(a);
    return std::make_unique<util::PipeTransport>(backend.synthdPath, args,
                                                 timeout);
  };
}

}  // namespace

FleetCoordinator::FleetCoordinator(FleetConfig config, TransportFactory factory,
                                   std::vector<std::string> hostStateDirs)
    : cfg_(std::move(config)),
      factory_(std::move(factory)),
      shed_(cfg_.shedBackoffMs, cfg_.shedBackoffCapMs, cfg_.retrySeed) {
  if (cfg_.hosts == 0)
    throw std::invalid_argument("a fleet needs at least one host");
  if (!factory_) throw std::invalid_argument("fleet transport factory is null");
  hosts_.resize(cfg_.hosts);
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    hosts_[i].name = "host-" + std::to_string(i);
    hosts_[i].id = fleetHostId(hosts_[i].name);
    if (i < hostStateDirs.size()) hosts_[i].stateDir = hostStateDirs[i];
  }
}

FleetCoordinator::FleetCoordinator(FleetConfig config,
                                   const LocalBackendConfig& backend)
    : FleetCoordinator(config, localFactory(config, backend),
                       localStateDirs(config, backend)) {}

namespace {

FleetConfig withHostCount(FleetConfig config, std::size_t hosts) {
  config.hosts = hosts;
  return config;
}

FleetCoordinator::TransportFactory socketFactory(
    std::vector<util::SocketEndpoint> endpoints, double timeout) {
  return [endpoints = std::move(endpoints),
          timeout](std::size_t i) -> std::unique_ptr<util::Transport> {
    return std::make_unique<util::SocketTransport>(endpoints.at(i), timeout);
  };
}

}  // namespace

FleetCoordinator::FleetCoordinator(
    FleetConfig config, const std::vector<util::SocketEndpoint>& endpoints,
    std::vector<std::string> hostStateDirs)
    : FleetCoordinator(
          withHostCount(config, endpoints.size()),
          socketFactory(endpoints, config.hostTimeoutSeconds),
          std::move(hostStateDirs)) {}

FleetCoordinator::~FleetCoordinator() {
  try {
    shutdownBackends();
  } catch (...) {
  }
}

void FleetCoordinator::shutdownBackends() {
  for (Host& h : hosts_) {
    if (!h.transport) continue;
    if (h.alive) {
      try {
        h.transport->request("{\"op\": \"shutdown\"}");
      } catch (...) {
      }
      h.alive = false;
    }
    try {
      h.transport->close();
    } catch (...) {
    }
  }
}

std::vector<std::size_t> FleetCoordinator::aliveHosts() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < hosts_.size(); ++i)
    if (hosts_[i].alive) out.push_back(i);
  return out;
}

std::string FleetCoordinator::claimDirOf(std::size_t host,
                                         const Claim& claim) const {
  if (hosts_[host].stateDir.empty()) return std::string();
  return hosts_[host].stateDir + "/jobs/" + claim.dirName;
}

std::string FleetCoordinator::requestHost(std::size_t i,
                                          const std::string& line) {
  return hosts_[i].transport->request(line);
}

void FleetCoordinator::connectHost(std::size_t i) {
  Host& h = hosts_[i];
  h.transport = factory_(i);
  if (!h.transport)
    throw std::runtime_error("transport factory returned null for " + h.name);
  h.alive = true;
  ++hostsSpawned_;
  const std::string resp = requestHost(
      i, "{\"op\": \"hello\", \"token\": \"" + util::escapeJson(cfg_.token) +
             "\", \"host\": \"" + util::escapeJson(h.name) + "\"}");
  const util::JsonValue root = util::parseJson(resp);
  if (!responseOk(root))
    throw std::runtime_error(h.name + ": hello rejected: " +
                             responseError(root));
  bool resumed = false;
  util::readBool(root, "resumed", resumed);
  if (cfg_.verbose)
    std::fprintf(stderr, "[fleet] %s up%s\n", h.name.c_str(),
                 resumed ? " (resumed durable jobs)" : "");
}

void FleetCoordinator::makeClaimsFor(const std::vector<std::size_t>& tasks,
                                     const std::string& adoptDir) {
  const std::vector<std::size_t> alive = aliveHosts();
  if (alive.empty())
    throw std::runtime_error("cannot place a claim: no host is alive");
  std::vector<std::uint64_t> ids;
  ids.reserve(alive.size());
  for (std::size_t h : alive) ids.push_back(hosts_[h].id);
  const std::size_t runsPer =
      std::max<std::size_t>(1, runConfig_->runsPerProgram);
  // Group by rendezvous owner; tasks arrive sorted, so each group is too.
  std::vector<std::vector<std::size_t>> byHost(alive.size());
  for (std::size_t t : tasks) {
    const std::uint64_t key =
        fleetTaskKey(runConfig_->seed, t / runsPer, t % runsPer);
    byHost[util::rendezvousOwner(key, ids)].push_back(t);
  }
  for (std::size_t a = 0; a < alive.size(); ++a) {
    if (byHost[a].empty()) continue;
    Claim c;
    c.tasks = std::move(byHost[a]);
    c.host = alive[a];
    c.adoptDir = adoptDir;
    // A claim covering the whole job must use the empty filter so its dir
    // name (and attach/memo key) matches a plain full submit.
    c.dirName = jobDirName(runMethod_, *runConfig_,
                           c.tasks.size() == totalTasks_
                               ? std::vector<std::size_t>{}
                               : c.tasks);
    claims_.push_back(std::move(c));
  }
}

void FleetCoordinator::onHostGone(std::size_t i) {
  Host& h = hosts_[i];
  if (cfg_.maxReconnectAttempts == 0 || !h.alive) {
    onHostDeath(i);
    return;
  }
  // The connection failed but the daemon may well be running (socket
  // fleets): re-dial on the seeded backoff before declaring the host dead.
  if (h.transport) {
    try {
      h.transport->close();
    } catch (...) {
    }
  }
  util::RetrySchedule retry(cfg_.reconnectBaseMs, cfg_.reconnectCapMs,
                            cfg_.retrySeed ^ h.id);
  for (std::size_t attempt = 0; attempt < cfg_.maxReconnectAttempts;
       ++attempt) {
    sleepMs(retry.nextDelayMs());
    try {
      connectHost(i);  // re-dial + re-hello (same token: idempotent epoch)
    } catch (const util::TransportClosed&) {
      continue;  // still unreachable; take the next backoff step
    }
    // connectHost throws runtime_error on a rejected hello (stale_token):
    // that propagates — a superseded coordinator must fail loudly, not
    // retry its way past the epoch fence.
    ++hostsReconnected_;
    // Re-attach the stranded claims: attach:true makes the resubmission
    // join the job still running on the daemon instead of restarting it.
    for (Claim& c : claims_)
      if (c.host == i && c.state == ClaimState::Submitted)
        c.state = ClaimState::Pending;
    if (cfg_.verbose)
      std::fprintf(stderr, "[fleet] %s reconnected (attempt %zu)\n",
                   h.name.c_str(), attempt + 1);
    return;
  }
  if (cfg_.verbose)
    std::fprintf(stderr, "[fleet] %s unreachable past the re-dial budget\n",
                 h.name.c_str());
  onHostDeath(i);
}

void FleetCoordinator::onHostDeath(std::size_t i) {
  Host& h = hosts_[i];
  if (h.alive) {
    h.alive = false;
    ++hostsLost_;
    if (h.transport) {
      try {
        h.transport->close();
      } catch (...) {
      }
    }
    if (cfg_.verbose)
      std::fprintf(stderr, "[fleet] %s lost\n", h.name.c_str());
  }

  if (aliveHosts().empty()) {
    // Last host standing died: respawn it in place and re-claim with attach
    // — the backend recovers its durable jobs at startup, so resubmitted
    // claims join them instead of restarting.
    if (h.restarts >= cfg_.maxHostRestarts)
      throw std::runtime_error("fleet lost every host and " + h.name +
                               "'s restart budget is spent");
    ++h.restarts;
    ++hostsRestarted_;
    if (cfg_.verbose)
      std::fprintf(stderr, "[fleet] respawning %s (no survivors)\n",
                   h.name.c_str());
    connectHost(i);
    for (Claim& c : claims_)
      if (c.host == i && c.state == ClaimState::Submitted)
        c.state = ClaimState::Pending;
    return;
  }

  // Survivors exist: re-partition the dead host's unfinished claims among
  // them, each successor adopting from the dead claim's durable directory.
  struct Orphan {
    std::vector<std::size_t> tasks;
    std::string adopt;
  };
  std::vector<Orphan> orphans;
  for (Claim& c : claims_) {
    if (c.host != i) continue;
    if (c.state != ClaimState::Submitted && c.state != ClaimState::Pending)
      continue;
    orphans.push_back({c.tasks, claimDirOf(i, c)});
    c.state = ClaimState::Reassigned;
  }
  for (Orphan& o : orphans) {
    tasksReassigned_ += o.tasks.size();
    if (cfg_.verbose)
      std::fprintf(stderr, "[fleet] reassigning %zu tasks from %s\n",
                   o.tasks.size(), h.name.c_str());
    makeClaimsFor(o.tasks, o.adopt);
  }
}

bool FleetCoordinator::submitClaim(Claim& claim) {
  std::size_t sweeps = 0;
  for (;;) {
    const std::size_t hostIdx = claim.host;
    std::ostringstream os;
    os << "{\"op\": \"claim\", \"token\": \"" << util::escapeJson(cfg_.token)
       << "\", \"method\": \"" << util::escapeJson(runMethod_)
       << "\", \"attach\": true";
    if (!claim.adoptDir.empty())
      os << ", \"adopt_dir\": \"" << util::escapeJson(claim.adoptDir) << "\"";
    if (claim.tasks.size() != totalTasks_) {
      os << ", \"tasks\": [";
      for (std::size_t k = 0; k < claim.tasks.size(); ++k)
        os << (k ? ", " : "") << claim.tasks[k];
      os << "]";
    }
    os << ", \"config\": " << runConfig_->toJson() << "}";

    std::string resp;
    try {
      resp = requestHost(hostIdx, os.str());
    } catch (const util::TransportClosed&) {
      // onHostGone may grow claims_ (invalidating `claim`); touch nothing
      // after it. The claim was Pending on the gone host, so it is either
      // still Pending (reconnected) or reassigned/re-queued (host death).
      onHostGone(hostIdx);
      return false;
    }
    const util::JsonValue root = util::parseJson(resp);
    if (responseOk(root)) {
      std::uint64_t id = 0;
      util::readU64(root, "job", id);
      claim.jobId = id;
      claim.state = ClaimState::Submitted;
      ++claimsSubmitted_;
      if (cfg_.verbose)
        std::fprintf(stderr, "[fleet] %s accepted claim of %zu tasks (job %llu)\n",
                     hosts_[hostIdx].name.c_str(), claim.tasks.size(),
                     static_cast<unsigned long long>(id));
      return true;
    }
    std::string rejected;
    util::readString(root, "rejected", rejected);
    if (rejected != "overloaded")
      throw std::runtime_error(hosts_[hostIdx].name + ": claim failed: " +
                               responseError(root));

    // Overloaded: shed to the next host in this claim's rendezvous
    // preference order; after a full sweep of rejections, back off on the
    // deterministic schedule and sweep again.
    ++claimsShed_;
    const std::vector<std::size_t> alive = aliveHosts();
    std::vector<std::uint64_t> ids;
    ids.reserve(alive.size());
    for (std::size_t h : alive) ids.push_back(hosts_[h].id);
    const std::size_t runsPer =
        std::max<std::size_t>(1, runConfig_->runsPerProgram);
    const std::size_t t0 = claim.tasks.front();
    const std::vector<std::size_t> rank = util::rendezvousRank(
        fleetTaskKey(runConfig_->seed, t0 / runsPer, t0 % runsPer), ids);
    std::size_t pos = 0;
    for (std::size_t k = 0; k < rank.size(); ++k)
      if (alive[rank[k]] == hostIdx) {
        pos = k;
        break;
      }
    const std::size_t nextPos = (pos + 1) % rank.size();
    claim.host = alive[rank[nextPos]];
    if (cfg_.verbose)
      std::fprintf(stderr, "[fleet] %s overloaded; shedding claim to %s\n",
                   hosts_[hostIdx].name.c_str(),
                   hosts_[claim.host].name.c_str());
    if (nextPos <= pos) {  // wrapped: every alive host rejected this sweep
      if (++sweeps >= cfg_.maxShedSweeps)
        throw std::runtime_error(
            "every fleet host stayed overloaded past the shed budget");
      sleepMs(shed_.nextDelayMs());
    }
  }
}

void FleetCoordinator::submitPendingClaims() {
  // Index loop: submitClaim can append claims (host-death reassignment).
  for (std::size_t i = 0; i < claims_.size(); ++i)
    if (claims_[i].state == ClaimState::Pending) submitClaim(claims_[i]);
}

void FleetCoordinator::pollClaim(Claim& claim) {
  const std::size_t hostIdx = claim.host;
  std::string resp;
  try {
    resp = requestHost(hostIdx, "{\"op\": \"status\", \"job\": " +
                                    std::to_string(claim.jobId) + "}");
  } catch (const util::TransportClosed&) {
    onHostGone(hostIdx);  // may grow claims_; `claim` is dead after this
    return;
  }
  const util::JsonValue root = util::parseJson(resp);
  if (!responseOk(root))
    throw std::runtime_error(hosts_[hostIdx].name + ": status failed: " +
                             responseError(root));
  std::string state;
  util::readString(root, "state", state);
  util::readSize(root, "tasks_done", claim.tasksDone);
  if (state == "queued" || state == "running" || state == "paused") return;
  if (state != "done") {
    std::string kind;
    util::readString(root, "error_kind", kind);
    throw std::runtime_error(hosts_[hostIdx].name + ": claim job " + state +
                             (kind.empty() ? "" : " (" + kind + ")") + ": " +
                             responseError(root));
  }
  claim.results.clear();
  const util::JsonValue* tasks = root.find("tasks");
  if (tasks && tasks->kind == util::JsonValue::Kind::Array) {
    for (const util::JsonValue& item : tasks->items) {
      TaskRecord r;
      util::readSize(item, "program", r.program);
      util::readSize(item, "run", r.run);
      util::readBool(item, "found", r.found);
      util::readSize(item, "candidates", r.candidates);
      util::readSize(item, "generations", r.generations);
      util::readDouble(item, "seconds", r.seconds);
      claim.results.push_back(r);
    }
  }
  claim.state = ClaimState::Done;
  if (cfg_.verbose)
    std::fprintf(stderr, "[fleet] %s finished claim job %llu (%zu tasks)\n",
                 hosts_[hostIdx].name.c_str(),
                 static_cast<unsigned long long>(claim.jobId),
                 claim.results.size());
}

void FleetCoordinator::scrapeHostMetrics(std::size_t i) {
  Host& h = hosts_[i];
  std::string resp;
  try {
    resp = requestHost(i, "{\"op\": \"metrics\"}");
  } catch (const util::TransportClosed&) {
    onHostGone(i);
    return;
  }
  const util::JsonValue root = util::parseJson(resp);
  if (!responseOk(root)) return;
  util::readSize(root, "tasks_executed", h.tasksExecuted);
  util::readSize(root, "tasks_adopted", h.tasksAdopted);
  util::readSize(root, "snapshots_adopted", h.snapshotsAdopted);
  util::readSize(root, "jobs_recovered", h.jobsRecovered);
  util::readSize(root, "tasks_retried", h.tasksRetried);
  util::readSize(root, "durable_checkpoints_written",
                 h.durableCheckpointsWritten);
  util::readSize(root, "durable_checkpoints_loaded",
                 h.durableCheckpointsLoaded);
  util::readSize(root, "stale_tokens_rejected", h.staleTokensRejected);
  util::readSize(root, "queue_depth", h.queueDepth);
}

void FleetCoordinator::maybeFireChaosKill() {
  if (!cfg_.chaosKill || chaosFired_) return;
  std::size_t victim = hosts_.size();
  if (cfg_.chaosKillHost >= 0) {
    victim = static_cast<std::size_t>(cfg_.chaosKillHost);
    if (victim >= hosts_.size())
      throw std::invalid_argument("chaos kill host index out of range");
    if (!hosts_[victim].alive) {  // died on its own first; window is gone
      chaosFired_ = true;
      return;
    }
  } else {
    // Auto: the alive host holding the largest in-flight claim.
    std::size_t bestTasks = 0;
    for (const Claim& c : claims_) {
      if (c.state != ClaimState::Submitted || !hosts_[c.host].alive) continue;
      if (c.tasks.size() > bestTasks) {
        bestTasks = c.tasks.size();
        victim = c.host;
      }
    }
    if (victim == hosts_.size()) return;
  }
  // Fire only mid-claim: the victim has banked durable progress (>= 1 task
  // done) but is not finished — exactly the window where failover has
  // something to recover.
  for (const Claim& c : claims_) {
    if (c.host != victim || c.state != ClaimState::Submitted) continue;
    if (c.tasksDone >= 1 && c.tasksDone < c.tasks.size()) {
      chaosFired_ = true;
      if (cfg_.verbose)
        std::fprintf(stderr,
                     "[fleet] chaos: killing %s mid-claim (%zu/%zu done)\n",
                     hosts_[victim].name.c_str(), c.tasksDone,
                     c.tasks.size());
      hosts_[victim].transport->kill();
      return;
    }
  }
}

FleetReport FleetCoordinator::run(const harness::ExperimentConfig& config,
                                  const std::string& method) {
  if (!isKnownMethod(method))
    throw std::invalid_argument("unknown method: " + method);
  runConfig_ = &config;
  runMethod_ = method;
  claims_.clear();
  chaosFired_ = false;
  shed_.reset(cfg_.retrySeed);

  for (std::size_t i = 0; i < hosts_.size(); ++i)
    if (!hosts_[i].alive) connectHost(i);

  const std::size_t programs = harness::makeFullWorkload(config).size();
  const std::size_t runsPer = std::max<std::size_t>(1, config.runsPerProgram);
  totalTasks_ = programs * runsPer;

  FleetReport report;
  report.method = method;
  report.configJson = config.toJson();
  report.programs = programs;
  report.runsPerProgram = runsPer;
  if (totalTasks_ == 0) {
    runConfig_ = nullptr;
    return report;
  }

  std::vector<std::size_t> all(totalTasks_);
  std::iota(all.begin(), all.end(), std::size_t{0});
  makeClaimsFor(all, std::string());

  std::size_t pollRound = 0;
  for (;;) {
    submitPendingClaims();
    bool live = false;
    for (std::size_t i = 0; i < claims_.size(); ++i) {
      if (claims_[i].state == ClaimState::Submitted) pollClaim(claims_[i]);
      const ClaimState s = claims_[i].state;
      if (s == ClaimState::Submitted || s == ClaimState::Pending) live = true;
    }
    maybeFireChaosKill();
    if (pollRound % 8 == 0)
      for (std::size_t i : aliveHosts()) scrapeHostMetrics(i);
    if (!live) break;
    ++pollRound;
    sleepMs(cfg_.pollIntervalMs);
  }
  for (std::size_t i : aliveHosts()) scrapeHostMetrics(i);

  // Merge: exactly one Done claim reported each task (dead claims are
  // Reassigned, never Done, and their successors adopt the same records).
  std::vector<TaskRecord> merged(totalTasks_);
  std::vector<bool> have(totalTasks_, false);
  for (const Claim& c : claims_) {
    if (c.state != ClaimState::Done) continue;
    for (const TaskRecord& t : c.results) {
      const std::size_t idx = t.program * runsPer + t.run;
      if (idx >= totalTasks_) continue;
      merged[idx] = t;
      have[idx] = true;
    }
  }
  for (std::size_t i = 0; i < totalTasks_; ++i)
    if (!have[i])
      throw std::runtime_error("fleet run completed with task " +
                               std::to_string(i) + " unreported");
  report.tasks = std::move(merged);

  // Same aggregates a single-host terminal status derives (protocol.cpp).
  std::vector<std::size_t> foundPerProgram(programs, 0);
  for (const TaskRecord& t : report.tasks)
    if (t.found && t.program < programs) ++foundPerProgram[t.program];
  std::size_t synthesized = 0;
  double rateSum = 0.0;
  for (std::size_t f : foundPerProgram) {
    synthesized += f > 0 ? 1 : 0;
    rateSum += static_cast<double>(f) / static_cast<double>(runsPer);
  }
  report.synthesizedFraction =
      static_cast<double>(synthesized) / static_cast<double>(programs);
  report.meanSynthesisRate = rateSum / static_cast<double>(programs);

  runConfig_ = nullptr;
  return report;
}

FleetMetrics FleetCoordinator::metrics() const {
  FleetMetrics m;
  m.hostsSpawned = hostsSpawned_;
  m.hostsLost = hostsLost_;
  m.hostsRestarted = hostsRestarted_;
  m.hostsReconnected = hostsReconnected_;
  m.claimsSubmitted = claimsSubmitted_;
  m.claimsShed = claimsShed_;
  m.tasksReassigned = tasksReassigned_;
  for (const Host& h : hosts_) {
    m.tasksExecuted += h.tasksExecuted;
    m.tasksAdopted += h.tasksAdopted;
    m.snapshotsAdopted += h.snapshotsAdopted;
    m.jobsRecovered += h.jobsRecovered;
    m.tasksRetried += h.tasksRetried;
    m.durableCheckpointsWritten += h.durableCheckpointsWritten;
    m.durableCheckpointsLoaded += h.durableCheckpointsLoaded;
    m.staleTokensRejected += h.staleTokensRejected;
    m.queueDepth += h.queueDepth;
  }
  return m;
}

}  // namespace netsyn::service
