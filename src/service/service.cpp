#include "service/service.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/search_state.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "fitness/neural_fitness.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"
#include "service/checkpoint.hpp"
#include "service/protocol.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"

namespace netsyn::service {

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Paused: return "paused";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s == JobState::Done || s == JobState::Cancelled ||
         s == JobState::Failed;
}

bool isKnownMethod(const std::string& name) {
  return name == "Edit" || name == "Oracle_CF" || name == "Oracle_LCS" ||
         name == "NetSyn_CF" || name == "NetSyn_LCS" || name == "NetSyn_FP";
}

harness::TrainedModels ModelStore::get(
    const harness::ExperimentConfig& config) {
  // Model identity is keyed by the on-disk cache location (directory +
  // scale + domain tags), matching harness::modelCachePath — two configs
  // that would share cache files share store entries. Training-dimension
  // variations under one (modelDir, scale, domain) are not distinguished;
  // use distinct modelDirs for those.
  const std::string key =
      config.modelDir + "|" + config.scaleName + "|" + config.domainName;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = store_.find(key); it != store_.end()) return it->second;
  harness::TrainedModels models = loadOrTrainAll(config, /*quiet=*/true);
  store_.emplace(key, models);
  return models;
}

baselines::MethodPtr makeOneShotMethod(const std::string& method,
                                       const harness::ExperimentConfig& config,
                                       ModelStore& models) {
  if (method == "Edit") return harness::makeEdit(config);
  if (method == "Oracle_CF")
    return harness::makeOracle(config, fitness::BalanceMetric::CF);
  if (method == "Oracle_LCS")
    return harness::makeOracle(config, fitness::BalanceMetric::LCS);
  if (method == "NetSyn_CF")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::CF);
  if (method == "NetSyn_LCS")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::LCS);
  if (method == "NetSyn_FP")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::FP);
  throw std::invalid_argument("unknown method '" + method + "'");
}

namespace {

// Per-job poll signal, read by workers once per generation without taking
// the service lock.
constexpr std::uint8_t kPollContinue = 0;
constexpr std::uint8_t kPollPause = 1;
constexpr std::uint8_t kPollCancel = 2;

/// Per-task scheduling phase. Queue-entry invariant: a queue entry exists
/// for a task iff its phase is Queued (plus at most one consumed entry
/// while Running); Parked/Checkpointed tasks re-enter the queue only
/// through resume(), RetryWait tasks only through the watchdog once their
/// backoff elapses.
enum class Phase : std::uint8_t {
  Queued,        ///< waiting in (or owed to) the task queue
  Running,       ///< a worker is executing it
  Parked,        ///< popped while the job was paused; not yet restartable
  Checkpointed,  ///< paused mid-search; snapshot held
  RetryWait,     ///< failed/stalled; re-queued after its backoff delay
  Done,          ///< TaskRecord recorded
  Unclaimed,     ///< outside this job's fleet claim; never scheduled
};

struct TaskCheckpoint {
  core::SearchState::Snapshot snap;
  util::Rng rng{0};
  bool valid = false;
};

struct Job {
  std::uint64_t id = 0;
  std::string method;
  harness::ExperimentConfig config;
  core::SynthesizerConfig searchConfig;  ///< methodSearchConfig(config, method)
  /// Released once the job is terminal and idle (trimIfIdleLocked) — report
  /// fields must come from programCount/runsPer, never workload.size().
  std::vector<harness::TestProgram> workload;
  std::size_t programCount = 0;
  std::size_t runsPer = 1;
  /// Fleet claim: the sorted task indices this job owns (empty = all).
  /// Unclaimed tasks sit in Phase::Unclaimed and never schedule; the job is
  /// complete when tasksDone == claimedTotal.
  std::vector<std::size_t> claimed;
  std::size_t claimedTotal = 0;
  bool useResultCache = true;
  std::string cacheKey;
  std::uint64_t keyHash = 0;  ///< fnv1a64(cacheKey): attach + state-dir name
  double deadlineSeconds = 0.0;  ///< 0 = none
  std::chrono::steady_clock::time_point start;
  bool recovered = false;        ///< rebuilt from the durable state dir
  std::string stateDirPath;      ///< empty = this job is not persisted

  JobState state = JobState::Queued;
  std::atomic<std::uint8_t> pollSignal{kPollContinue};
  std::vector<Phase> phase;
  std::vector<TaskCheckpoint> checkpoints;
  std::vector<TaskRecord> tasks;
  std::vector<std::size_t> retryCount;  ///< per task
  std::size_t retriesTotal = 0;
  /// Per-task liveness beat (steady-clock ms of the last generation
  /// boundary; -1 = not running) and stall-abort request, both written/read
  /// off-lock. vector<atomic> is non-movable, hence the raw arrays.
  std::unique_ptr<std::atomic<std::int64_t>[]> beatMs;
  std::unique_ptr<std::atomic<bool>[]> abortFlag;
  std::size_t tasksDone = 0;
  std::size_t running = 0;  ///< tasks currently on a worker
  bool fromCache = false;
  std::size_t planCompiles = 0;
  std::size_t planLookups = 0;
  std::string error;
  std::string errorKind;
};

/// One worker's cross-request hot state: the plan-cache-bearing execution
/// engine and the per-method grading kits (NN clones and their
/// fingerprint-keyed caches included). Lives as long as the worker thread.
struct WorkerContext {
  dsl::Executor executor;

  struct MethodKit {
    fitness::FitnessPtr fitness;  ///< persistent; null for oracle methods
    std::shared_ptr<fitness::ProbMapProvider> probMap;
    bool oracle = false;
    fitness::BalanceMetric oracleMetric = fitness::BalanceMetric::CF;
  };
  std::unordered_map<std::string, MethodKit> kits;
};

enum class TaskOutcome {
  Completed,
  Checkpointed,
  Cancelled,
  Failed,     ///< the task threw (FaultInjected included)
  Abandoned,  ///< the stall watchdog aborted it at a generation boundary
};

/// Completed-job memo key. config.toJson() covers every serialized field;
/// the fields it does NOT serialize but which still steer the search — the
/// program-generator ranges (they shape the workload and every random
/// candidate) and the NN model dimensions/seed — are appended explicitly,
/// so two embedded callers whose configs differ only there never alias to
/// one memo entry. (Protocol clients can only vary serialized fields, but
/// the public submit() API has no such restriction.)
std::string resultCacheKey(const std::string& method,
                           const harness::ExperimentConfig& config,
                           const std::vector<std::size_t>& claim = {}) {
  std::ostringstream os;
  os.precision(17);
  const dsl::GeneratorConfig& g = config.synthesizer.generator;
  const fitness::NnffConfig& m = config.modelConfig;
  os << method << '\x1f' << config.toJson() << '\x1f' << g.minListLength
     << ',' << g.maxListLength << ',' << g.minValue << ',' << g.maxValue
     << ',' << g.intInputProbability << ',' << g.maxAttempts << '\x1f'
     << m.encoder.vmax << ',' << m.encoder.maxValueTokens << ','
     << m.embedDim << ',' << m.hiddenDim << ',' << m.numClasses << ','
     << m.maxExamples << ',' << static_cast<int>(m.head) << ','
     << m.useTrace << ',' << m.seed << ',' << m.multilabelDim;
  // A fleet claim is part of the job identity: two hosts claiming disjoint
  // slices of one workload must get distinct memo entries and distinct
  // durable state-dir names.
  if (!claim.empty()) {
    os << '\x1f' << "claim:";
    for (std::size_t i = 0; i < claim.size(); ++i)
      os << (i ? "," : "") << claim[i];
  }
  return os.str();
}

/// Sorted, deduped, range-checked claim set. Out-of-range indices are a
/// coordinator bug and fail loudly instead of being silently dropped.
std::vector<std::size_t> normalizeClaim(std::vector<std::size_t> claim,
                                        std::size_t total) {
  std::sort(claim.begin(), claim.end());
  claim.erase(std::unique(claim.begin(), claim.end()), claim.end());
  if (!claim.empty() && claim.back() >= total)
    throw std::invalid_argument(
        "task claim index " + std::to_string(claim.back()) +
        " out of range (job has " + std::to_string(total) + " tasks)");
  if (claim.size() == total) claim.clear();  // a full claim is no claim
  return claim;
}

std::int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// State-dir job directory name: 16 hex digits of the job key hash.
std::string key16(std::uint64_t h) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

void initTaskState(Job& job, std::size_t total) {
  job.phase.assign(total, Phase::Queued);
  job.claimed.clear();
  job.claimedTotal = total;
  job.checkpoints.clear();
  job.checkpoints.resize(total);
  job.tasks.assign(total, TaskRecord{});
  job.retryCount.assign(total, 0);
  job.beatMs = std::make_unique<std::atomic<std::int64_t>[]>(total);
  job.abortFlag = std::make_unique<std::atomic<bool>[]>(total);
  for (std::size_t i = 0; i < total; ++i) {
    job.beatMs[i].store(-1, std::memory_order_relaxed);
    job.abortFlag[i].store(false, std::memory_order_relaxed);
  }
}

/// Applies a normalized claim on top of initTaskState: unclaimed tasks park
/// in Phase::Unclaimed permanently. No-op for an empty (= full) claim.
void applyClaim(Job& job, std::vector<std::size_t> claim) {
  if (claim.empty()) return;
  for (Phase& p : job.phase) p = Phase::Unclaimed;
  for (const std::size_t idx : claim) job.phase[idx] = Phase::Queued;
  job.claimedTotal = claim.size();
  job.claimed = std::move(claim);
}

/// Single-line rendering for the done marker / error fields.
std::string oneLine(std::string s) {
  for (char& c : s)
    if (c == '\n' || c == '\r') c = ' ';
  return s;
}

}  // namespace

struct SynthService::Impl {
  explicit Impl(ServiceConfig config) : cfg(config) {
    // Recovery runs single-threaded before any worker or the watchdog
    // exists, so the *Locked helpers are safe to call bare here.
    if (!cfg.stateDir.empty()) recoverStateDir();
    std::size_t n = cfg.workers == 0
                        ? std::max(1u, std::thread::hardware_concurrency())
                        : cfg.workers;
    workers.reserve(n);
    for (std::size_t w = 0; w < n; ++w)
      workers.emplace_back([this, w] { workerLoop(w); });
    watchdog = std::thread([this] { watchdogLoop(); });
  }

  // ---- worker side ----------------------------------------------------------

  void workerLoop(std::size_t /*workerIndex*/);
  void watchdogLoop();
  WorkerContext::MethodKit& kitFor(WorkerContext& ctx, const Job& job);
  TaskOutcome runTask(WorkerContext& ctx, const Job& job, std::size_t idx,
                      TaskCheckpoint& cp, TaskRecord& out);
  void persistTaskCheckpoint(const Job& job, std::size_t idx,
                             const TaskCheckpoint& cp);

  // ---- guarded state --------------------------------------------------------

  mutable std::mutex mu;
  std::condition_variable taskCv;  ///< workers wait for queue entries
  std::condition_variable jobCv;   ///< wait() callers wait for terminal jobs
  std::condition_variable wdCv;    ///< wakes the watchdog early on shutdown
  bool stop = false;
  bool shuttingDown = false;  ///< suppresses done markers: see shutdown()

  ServiceConfig cfg;
  std::uint64_t nextId = 1;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;
  std::map<std::uint64_t, std::uint64_t> byKey;  ///< keyHash -> latest job id
  std::deque<std::pair<std::uint64_t, std::size_t>> queue;  ///< (job, task)
  struct RetryEntry {
    std::uint64_t jobId = 0;
    std::size_t idx = 0;
    std::int64_t readyAtMs = 0;
  };
  std::vector<RetryEntry> retryWait;  ///< tasks sleeping out their backoff
  std::map<std::string, std::vector<TaskRecord>> resultCache;
  std::deque<std::string> resultCacheOrder;  ///< FIFO eviction order
  std::deque<std::uint64_t> terminalOrder;   ///< terminal jobs, oldest first
  SessionStats sessionStats;

  /// Fleet session-token handshake state: the current token owns the
  /// epoch; superseded tokens are retired (bounded FIFO) so their replays
  /// fail as StaleTokenError instead of silently racing the live session.
  std::string sessionToken;
  std::uint64_t sessionEpoch = 0;
  std::set<std::string> retiredTokens;
  std::deque<std::string> retiredOrder;
  static constexpr std::size_t kMaxRetiredTokens = 64;

  /// Durable-write counters live off-lock (runTask persists snapshots while
  /// not holding mu); folded into SessionStats by statsLocked().
  std::atomic<std::size_t> durableWrites{0};
  std::atomic<std::size_t> durableErrors{0};

  ModelStore models;  ///< thread-safe on its own lock

  std::vector<std::thread> workers;
  std::thread watchdog;

  // The daemon is long-lived: without retention bounds, per-job state
  // (generated workloads, checkpoints) and the result memo would grow with
  // every request for the process lifetime. Terminal jobs keep their
  // TaskRecords (status/wait still work) but drop workload + checkpoint
  // storage; the oldest terminal jobs and memo entries are evicted outright
  // past these caps (an evicted job id then reads as unknown).
  static constexpr std::size_t kMaxTerminalJobs = 256;
  static constexpr std::size_t kMaxResultCacheEntries = 256;

  SessionStats statsLocked() const;
  JobStatus statusLocked(const Job& job) const;
  void finalizeIfComplete(Job& job);
  void failJobLocked(Job& job, const std::string& kind,
                     const std::string& message);
  void markTerminalLocked(Job& job);
  void trimIfIdleLocked(Job& job);
  void storeResultLocked(const std::string& key,
                         const std::vector<TaskRecord>& tasks);
  void claimStateDirLocked(Job& job);
  void appendTaskRecordLocked(Job& job, std::size_t idx,
                              const TaskRecord& rec);
  void writeDoneMarkerLocked(const Job& job);
  void recoverStateDir();
  void recoverJobDir(const std::string& dir);
  std::size_t loadTaskLogLocked(Job& job, const std::string& dir,
                                bool persist);
  void loadTaskSnapshotsLocked(Job& job, const std::string& dir,
                               std::size_t* accepted = nullptr);
  void adoptFromDirLocked(Job& job, const std::string& dir);
};

SessionStats SynthService::Impl::statsLocked() const {
  SessionStats s = sessionStats;
  s.durableCheckpointsWritten = durableWrites.load(std::memory_order_relaxed);
  s.durableWriteErrors = durableErrors.load(std::memory_order_relaxed);
  return s;
}

JobStatus SynthService::Impl::statusLocked(const Job& job) const {
  JobStatus st;
  st.id = job.id;
  st.state = job.state;
  st.method = job.method;
  st.programs = job.programCount;
  st.runsPerProgram = job.runsPer;
  st.tasksTotal = job.claimedTotal;
  st.tasksDone = job.tasksDone;
  st.fromCache = job.fromCache;
  st.recovered = job.recovered;
  st.retries = job.retriesTotal;
  st.planCompiles = job.planCompiles;
  st.planLookups = job.planLookups;
  st.error = job.error;
  st.errorKind = job.errorKind;
  for (std::size_t i = 0; i < job.tasks.size(); ++i)
    if (job.phase[i] == Phase::Done) st.tasks.push_back(job.tasks[i]);
  return st;
}

void SynthService::Impl::finalizeIfComplete(Job& job) {
  if (job.tasksDone != job.claimedTotal || isTerminal(job.state)) return;
  job.state = JobState::Done;
  ++sessionStats.jobsCompleted;
  if (cfg.resultCache && job.useResultCache)
    storeResultLocked(job.cacheKey, job.tasks);
  markTerminalLocked(job);
  jobCv.notify_all();
}

void SynthService::Impl::failJobLocked(Job& job, const std::string& kind,
                                       const std::string& message) {
  if (isTerminal(job.state)) return;
  job.state = JobState::Failed;
  job.error = oneLine(message);
  job.errorKind = kind;
  job.pollSignal.store(kPollCancel, std::memory_order_relaxed);
  ++sessionStats.jobsFailed;
  markTerminalLocked(job);
  jobCv.notify_all();
}

void SynthService::Impl::markTerminalLocked(Job& job) {
  // shutdown() deliberately leaves no marker: a shut-down daemon's live
  // jobs must recover (state dir intact), while user-visible terminal
  // transitions (Done / Failed / explicit cancel) are final and durable.
  if (!job.stateDirPath.empty() && !shuttingDown) writeDoneMarkerLocked(job);
  terminalOrder.push_back(job.id);
  trimIfIdleLocked(job);
  while (terminalOrder.size() > kMaxTerminalJobs) {
    const std::uint64_t oldest = terminalOrder.front();
    terminalOrder.pop_front();
    // Waiters hold the shared_ptr; erasing the map entry only forgets the
    // id. A job can never be running here: it was terminal when enqueued
    // and kMaxTerminalJobs of newer terminals have since arrived.
    jobs.erase(oldest);
  }
}

void SynthService::Impl::trimIfIdleLocked(Job& job) {
  // Workers reference job.workload by pointer off-lock, so the storage may
  // only be released once no task of this job is executing.
  if (!isTerminal(job.state) || job.running > 0) return;
  job.workload.clear();
  job.workload.shrink_to_fit();
  job.checkpoints.clear();
  job.checkpoints.shrink_to_fit();
}

void SynthService::Impl::storeResultLocked(
    const std::string& key, const std::vector<TaskRecord>& tasks) {
  if (resultCache.emplace(key, tasks).second) resultCacheOrder.push_back(key);
  while (resultCacheOrder.size() > kMaxResultCacheEntries) {
    resultCache.erase(resultCacheOrder.front());
    resultCacheOrder.pop_front();
  }
}

// ---- durable state ----------------------------------------------------------

void SynthService::Impl::claimStateDirLocked(Job& job) {
  if (cfg.stateDir.empty()) return;
  // One directory per job key. If another live job already persists under
  // this key (an identical concurrent submission), the duplicate runs
  // without durability — its results are identical anyway.
  for (const auto& [id, other] : jobs)
    if (other.get() != &job && other->keyHash == job.keyHash &&
        !isTerminal(other->state) && !other->stateDirPath.empty())
      return;
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = fs::path(cfg.stateDir) / "jobs" / key16(job.keyHash);
  // A previous terminal run of the same key left records behind; this run
  // replaces them wholesale.
  fs::remove_all(dir, ec);
  ec.clear();
  fs::create_directories(dir, ec);
  if (ec) {
    durableErrors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::ostringstream m;
  m.precision(17);
  m << "{\"method\": \"" << util::escapeJson(job.method) << "\""
    << ", \"use_result_cache\": " << (job.useResultCache ? "true" : "false")
    << ", \"deadline_seconds\": " << job.deadlineSeconds;
  if (!job.claimed.empty()) {
    // Claimed jobs must recover with the same claim, or a restarted backend
    // would schedule (and report) tasks that belong to other hosts.
    m << ", \"claim\": [";
    for (std::size_t i = 0; i < job.claimed.size(); ++i)
      m << (i ? ", " : "") << job.claimed[i];
    m << "]";
  }
  m << ", \"config\": " << job.config.toJson() << "}";
  std::string err;
  if (!atomicWriteFile((dir / "manifest.json").string(), m.str(), err)) {
    durableErrors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  job.stateDirPath = dir.string();
}

void SynthService::Impl::appendTaskRecordLocked(Job& job, std::size_t idx,
                                                const TaskRecord& rec) {
  if (job.stateDirPath.empty()) return;
  std::ostringstream os;
  os.precision(17);
  os << "{\"task\": " << idx << ", \"program\": " << rec.program
     << ", \"run\": " << rec.run
     << ", \"found\": " << (rec.found ? "true" : "false")
     << ", \"candidates\": " << rec.candidates
     << ", \"generations\": " << rec.generations
     << ", \"seconds\": " << rec.seconds << "}";
  std::string err;
  if (!appendLogLine(job.stateDirPath + "/tasks.ndjson", os.str(), err))
    durableErrors.fetch_add(1, std::memory_order_relaxed);
  // The completed task's snapshot can never be resumed again.
  ::unlink((job.stateDirPath + "/task-" + std::to_string(idx) + ".ckpt")
               .c_str());
}

void SynthService::Impl::writeDoneMarkerLocked(const Job& job) {
  std::string err;
  if (!atomicWriteFile(job.stateDirPath + "/done",
                       std::string(jobStateName(job.state)) + "\n" +
                           oneLine(job.errorKind) + "\n" + oneLine(job.error) +
                           "\n",
                       err))
    durableErrors.fetch_add(1, std::memory_order_relaxed);
}

void SynthService::Impl::persistTaskCheckpoint(const Job& job,
                                               std::size_t idx,
                                               const TaskCheckpoint& cp) {
  if (job.stateDirPath.empty()) return;
  try {
    const std::string bytes = encodeTaskCheckpoint(cp.snap, cp.rng);
    std::string err;
    if (atomicWriteFile(
            job.stateDirPath + "/task-" + std::to_string(idx) + ".ckpt",
            bytes, err))
      durableWrites.fetch_add(1, std::memory_order_relaxed);
    else
      durableErrors.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    // A failed snapshot write never fails the search — the task just has a
    // staler (or no) resume point.
    durableErrors.fetch_add(1, std::memory_order_relaxed);
  }
}

/// Replays a completed-task NDJSON log from `dir` into `job`: every fully
/// recorded line whose task is still schedulable here (claimed, Queued)
/// becomes Done. A torn tail line (crash mid-append) invalidates only
/// itself. With `persist`, adopted records are re-appended to the job's own
/// log so they survive the *next* failover too. Returns the tasks marked.
std::size_t SynthService::Impl::loadTaskLogLocked(Job& job,
                                                  const std::string& dir,
                                                  bool persist) {
  std::string bytes;
  std::string err;
  std::size_t marked = 0;
  const std::size_t total = job.tasks.size();
  if (!readFileBytes(dir + "/tasks.ndjson", bytes, err)) return 0;
  std::istringstream lines(bytes);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    try {
      const util::JsonValue t = util::parseJson(line);
      std::size_t idx = total;
      util::readSize(t, "task", idx);
      if (idx >= total || job.phase[idx] != Phase::Queued) continue;
      TaskRecord rec;
      util::readSize(t, "program", rec.program);
      util::readSize(t, "run", rec.run);
      util::readBool(t, "found", rec.found);
      util::readSize(t, "candidates", rec.candidates);
      util::readSize(t, "generations", rec.generations);
      util::readDouble(t, "seconds", rec.seconds);
      job.tasks[idx] = rec;
      job.phase[idx] = Phase::Done;
      ++job.tasksDone;
      ++marked;
      if (persist) appendTaskRecordLocked(job, idx, rec);
    } catch (...) {
      break;
    }
  }
  return marked;
}

/// Loads per-task snapshot files from `dir` for every still-Queued task:
/// a decodable, target-matched snapshot becomes the task's resume
/// checkpoint; anything corrupt/truncated/stale is rejected loudly by the
/// checksum layer and the task restarts from its deterministic seed.
void SynthService::Impl::loadTaskSnapshotsLocked(Job& job,
                                                 const std::string& dir,
                                                 std::size_t* accepted) {
  std::string ck;
  std::string err;
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    if (job.phase[i] != Phase::Queued) continue;
    if (!readFileBytes(dir + "/task-" + std::to_string(i) + ".ckpt", ck, err))
      continue;  // no snapshot: the task restarts from its seed
    TaskCheckpoint cp;
    std::string why;
    if (decodeTaskCheckpoint(ck, cp.snap, cp.rng, why) &&
        cp.snap.targetLength == job.workload[i / job.runsPer].length) {
      cp.snap.config = job.searchConfig;
      cp.valid = true;
      job.checkpoints[i] = std::move(cp);
      ++sessionStats.durableCheckpointsLoaded;
      if (accepted) ++*accepted;
    } else {
      ++sessionStats.checkpointsRejected;
    }
  }
}

/// Fleet failover adoption (SubmitOptions::adoptDir): graft a dead sibling
/// claim's durable progress — its finished-task records and last task
/// snapshots — into this job before it runs, so the reassigned claim
/// resumes where the dead host stopped. Reads only; the sibling's
/// directory is never modified.
void SynthService::Impl::adoptFromDirLocked(Job& job, const std::string& dir) {
  const std::size_t adoptedTasks = loadTaskLogLocked(job, dir, /*persist=*/true);
  sessionStats.tasksAdopted += adoptedTasks;
  std::size_t adoptedSnaps = 0;
  loadTaskSnapshotsLocked(job, dir, &adoptedSnaps);
  sessionStats.snapshotsAdopted += adoptedSnaps;
}

void SynthService::Impl::recoverStateDir() {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path root = fs::path(cfg.stateDir) / "jobs";
  fs::create_directories(root, ec);
  if (ec) return;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    try {
      recoverJobDir(entry.path().string());
    } catch (...) {
      // One unreadable job dir (corrupt manifest, stale schema) must not
      // stop the daemon from serving; the dir is simply skipped.
      ++sessionStats.checkpointsRejected;
    }
  }
}

void SynthService::Impl::recoverJobDir(const std::string& dir) {
  std::string bytes;
  std::string err;
  if (!readFileBytes(dir + "/manifest.json", bytes, err)) return;
  const util::JsonValue root = util::parseJson(bytes);
  std::string method;
  util::readString(root, "method", method);
  if (!isKnownMethod(method)) return;
  const util::JsonValue* cfgJson = root.find("config");
  if (!cfgJson) return;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::fromJsonValue(*cfgJson);
  bool useCache = true;
  util::readBool(root, "use_result_cache", useCache);
  double deadline = 0.0;
  util::readDouble(root, "deadline_seconds", deadline);
  std::vector<std::size_t> claim;
  if (const util::JsonValue* c = root.find("claim");
      c && c->kind == util::JsonValue::Kind::Array)
    for (const util::JsonValue& v : c->items)
      claim.push_back(util::jsonUnsigned(v, "claim[]"));

  auto job = std::make_shared<Job>();
  job->method = method;
  job->config = config;
  job->searchConfig = harness::methodSearchConfig(config, method);
  job->workload = harness::makeFullWorkload(config);
  job->programCount = job->workload.size();
  job->runsPer = std::max<std::size_t>(1, config.runsPerProgram);
  claim = normalizeClaim(std::move(claim),
                         job->workload.size() *
                             std::max<std::size_t>(1, config.runsPerProgram));
  job->useResultCache = useCache;
  job->cacheKey = resultCacheKey(method, config, claim);
  job->keyHash = fnv1a64(job->cacheKey);
  job->deadlineSeconds = deadline;
  job->recovered = true;
  job->stateDirPath = dir;
  // The deadline clock restarts: wall time spent dead doesn't count
  // against the job.
  job->start = std::chrono::steady_clock::now();
  const std::size_t total = job->programCount * job->runsPer;
  if (total == 0) return;
  initTaskState(*job, total);
  applyClaim(*job, std::move(claim));

  // Completed-task log: every fully recorded line is a finished task the
  // restarted daemon never re-runs.
  loadTaskLogLocked(*job, dir, /*persist=*/false);

  job->id = nextId++;
  byKey[job->keyHash] = job->id;

  if (readFileBytes(dir + "/done", bytes, err)) {
    // Terminal marker: the job finished in a previous life; restore it as
    // queryable history (and re-seed the result memo from a Done job).
    std::istringstream ms(bytes);
    std::string stateName;
    std::getline(ms, stateName);
    std::getline(ms, job->errorKind);
    std::getline(ms, job->error);
    if (stateName == "done") job->state = JobState::Done;
    else if (stateName == "failed") job->state = JobState::Failed;
    else if (stateName == "cancelled") job->state = JobState::Cancelled;
    else throw std::runtime_error("unreadable done marker");
    jobs.emplace(job->id, job);
    terminalOrder.push_back(job->id);
    trimIfIdleLocked(*job);
    if (job->state == JobState::Done && job->tasksDone == job->claimedTotal &&
        cfg.resultCache && useCache)
      storeResultLocked(job->cacheKey, job->tasks);
    ++sessionStats.jobsRecovered;
    return;
  }

  // Interrupted job: load what snapshots survived, re-enqueue the rest.
  loadTaskSnapshotsLocked(*job, dir);
  jobs.emplace(job->id, job);
  ++sessionStats.jobsRecovered;
  if (job->tasksDone == job->claimedTotal) {
    finalizeIfComplete(*job);
    return;
  }
  for (std::size_t i = 0; i < total; ++i)
    if (job->phase[i] == Phase::Queued) queue.emplace_back(job->id, i);
}

// ---- task execution ---------------------------------------------------------

WorkerContext::MethodKit& SynthService::Impl::kitFor(WorkerContext& ctx,
                                                     const Job& job) {
  const std::string key = job.method + "|" + job.config.modelDir + "|" +
                          job.config.scaleName + "|" + job.config.domainName;
  if (const auto it = ctx.kits.find(key); it != ctx.kits.end())
    return it->second;

  WorkerContext::MethodKit kit;
  if (job.method == "Edit") {
    kit.fitness = std::make_shared<fitness::EditDistanceFitness>(
        job.config.synthesizer.generator.domain);
  } else if (job.method == "Oracle_CF" || job.method == "Oracle_LCS") {
    kit.oracle = true;
    kit.oracleMetric = job.method == "Oracle_CF" ? fitness::BalanceMetric::CF
                                                 : fitness::BalanceMetric::LCS;
  } else {
    // NetSyn_{CF,LCS,FP}: clone from the shared store once per worker; the
    // clones (and the prob-map's spec-fingerprint-keyed cache) then serve
    // every job of this method on this worker.
    const harness::TrainedModels shared = models.get(job.config);
    auto fp = std::make_shared<fitness::ProbMapFitness>(shared.fp->clone());
    kit.probMap = fp;
    if (job.method == "NetSyn_CF")
      kit.fitness = std::make_shared<fitness::NeuralFitness>(
          shared.cf->clone(), "NN_CF");
    else if (job.method == "NetSyn_LCS")
      kit.fitness = std::make_shared<fitness::NeuralFitness>(
          shared.lcs->clone(), "NN_LCS");
    else
      kit.fitness = fp;
  }
  return ctx.kits.emplace(key, std::move(kit)).first->second;
}

TaskOutcome SynthService::Impl::runTask(WorkerContext& ctx, const Job& job,
                                        std::size_t idx, TaskCheckpoint& cp,
                                        TaskRecord& out) {
  FAULT_POINT("service.task.start");
  const std::size_t p = idx / job.runsPer;
  const std::size_t k = idx % job.runsPer;
  const harness::TestProgram& tp = job.workload[p];

  WorkerContext::MethodKit& kit = kitFor(ctx, job);
  fitness::FitnessPtr fit = kit.fitness;
  if (kit.oracle) {
    // Oracle fitness is target-specific and cheap: one fresh instance per
    // task, like the registry's per-island oracle instances.
    if (kit.oracleMetric == fitness::BalanceMetric::CF)
      fit = std::make_shared<fitness::OracleCF>(tp.target);
    else
      fit = std::make_shared<fitness::OracleLCS>(tp.target);
  }

  out = TaskRecord{};
  out.program = p;
  out.run = k;

  if (job.searchConfig.strategy == core::SearchStrategy::Islands) {
    // Island searches run through the engine's own coordinator (factory
    // omitted: islands step sequentially inside this one task, which is the
    // right parallelism split when the service pool is already fanned out).
    // They are cancel/pause/stall-atomic: signals take effect between
    // tasks, and the stall watchdog skips them.
    if (job.pollSignal.load(std::memory_order_relaxed) == kPollCancel)
      return TaskOutcome::Cancelled;
    util::Rng rng = harness::runSeedRng(job.config, p, k);
    const core::SynthesisResult result = core::runIslandSearch(
        job.searchConfig, fit, kit.probMap, nullptr, tp.spec, tp.length,
        job.config.searchBudget, rng);
    out.found = result.found;
    out.candidates = result.candidatesSearched;
    out.generations = result.generations;
    out.seconds = result.seconds;
    return TaskOutcome::Completed;
  }

  // Single population: stepped one generation at a time so cancel/pause/
  // stall-abort land at generation boundaries, through the worker's
  // persistent executor so the plan cache carries over between jobs.
  util::Rng rng = cp.valid ? cp.rng : harness::runSeedRng(job.config, p, k);
  core::SearchBudget budget =
      cp.valid ? core::SearchBudget::resumed(cp.snap.budgetLimit,
                                             cp.snap.budgetUsed)
               : core::SearchBudget(job.config.searchBudget);
  std::optional<core::SearchState> state;
  if (cp.valid)
    state.emplace(cp.snap, fit, kit.probMap, tp.spec, budget, rng,
                  &ctx.executor);
  else
    state.emplace(job.searchConfig, fit, kit.probMap, tp.spec, tp.length,
                  budget, rng, &ctx.executor);
  core::SearchState::Status status = cp.valid
                                         ? core::SearchState::Status::Running
                                         : state->seed();
  cp.valid = false;
  std::size_t sinceSnap = 0;
  while (status == core::SearchState::Status::Running) {
    if (job.abortFlag[idx].load(std::memory_order_relaxed)) {
      // Stall abort: freeze at this generation boundary so the retry
      // continues the exact trajectory instead of redoing the whole task.
      cp.snap = state->snapshot();
      cp.rng = rng;
      cp.valid = true;
      return TaskOutcome::Abandoned;
    }
    FAULT_POINT("service.task.generation");
    const std::uint8_t sig = job.pollSignal.load(std::memory_order_relaxed);
    if (sig == kPollCancel) return TaskOutcome::Cancelled;
    if (sig == kPollPause) {
      cp.snap = state->snapshot();
      cp.rng = rng;
      cp.valid = true;
      return TaskOutcome::Checkpointed;
    }
    status = state->step();
    job.beatMs[idx].store(nowMs(), std::memory_order_relaxed);
    if (cfg.checkpointEveryGenerations > 0 &&
        ++sinceSnap >= cfg.checkpointEveryGenerations &&
        status == core::SearchState::Status::Running) {
      sinceSnap = 0;
      cp.snap = state->snapshot();
      cp.rng = rng;
      cp.valid = true;
      persistTaskCheckpoint(job, idx, cp);
    }
  }
  const core::SynthesisResult result = state->finish();
  out.found = result.found;
  out.candidates = result.candidatesSearched;
  out.generations = result.generations;
  out.seconds = result.seconds;
  return TaskOutcome::Completed;
}

void SynthService::Impl::workerLoop(std::size_t /*workerIndex*/) {
  WorkerContext ctx;
  std::unique_lock<std::mutex> lock(mu);
  while (true) {
    taskCv.wait(lock, [&] { return stop || !queue.empty(); });
    if (stop) return;
    const auto [jobId, idx] = queue.front();
    queue.pop_front();

    const auto it = jobs.find(jobId);
    if (it == jobs.end()) continue;
    const std::shared_ptr<Job> job = it->second;
    if (isTerminal(job->state)) continue;
    if (job->state == JobState::Paused) {
      // Popped while parked: owed back to the queue by resume().
      job->phase[idx] = Phase::Parked;
      continue;
    }
    if (job->state == JobState::Queued) job->state = JobState::Running;
    job->phase[idx] = Phase::Running;
    ++job->running;
    job->abortFlag[idx].store(false, std::memory_order_relaxed);
    job->beatMs[idx].store(nowMs(), std::memory_order_relaxed);
    TaskCheckpoint cp = std::move(job->checkpoints[idx]);
    job->checkpoints[idx] = TaskCheckpoint{};
    const bool resumed = cp.valid;

    lock.unlock();
    // Per-task counter window: zero the executor's counters at task start
    // and read them raw afterwards. Unlike the before/after snapshot this
    // replaced, the delta cannot go stale when something reconfigures the
    // executor mid-stream (e.g. a search switching the execution backend):
    // whatever runs inside the window is attributed to this task, nothing
    // else. The plan cache itself is untouched — warm-cache behavior across
    // jobs is exactly as before (pinned by test_service).
    ctx.executor.resetCounters();
    TaskRecord record;
    TaskOutcome outcome = TaskOutcome::Failed;
    std::string error;
    try {
      outcome = runTask(ctx, *job, idx, cp, record);
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown task error";
    }
    const std::size_t compilesDelta = ctx.executor.planCompiles();
    const std::size_t lookupsDelta = ctx.executor.planLookups();
    lock.lock();

    --job->running;
    job->beatMs[idx].store(-1, std::memory_order_relaxed);
    job->planCompiles += compilesDelta;
    job->planLookups += lookupsDelta;
    sessionStats.planCompiles += compilesDelta;
    sessionStats.planLookups += lookupsDelta;
    if (resumed && outcome != TaskOutcome::Failed)
      ++sessionStats.tasksResumed;
    switch (outcome) {
      case TaskOutcome::Completed:
        job->tasks[idx] = record;
        job->phase[idx] = Phase::Done;
        ++job->tasksDone;
        ++sessionStats.tasksExecuted;
        appendTaskRecordLocked(*job, idx, record);
        finalizeIfComplete(*job);
        break;
      case TaskOutcome::Checkpointed:
        job->checkpoints[idx] = std::move(cp);
        ++sessionStats.checkpointsTaken;
        if (job->state == JobState::Paused) {
          job->phase[idx] = Phase::Checkpointed;
        } else if (!isTerminal(job->state)) {
          // resume() already ran while this worker was mid-snapshot and
          // found the task still Running, so nobody else will re-enqueue
          // it: requeue here or the job never completes.
          job->phase[idx] = Phase::Queued;
          queue.emplace_back(job->id, idx);
          taskCv.notify_one();
        }
        break;
      case TaskOutcome::Cancelled:
        // Job state already Cancelled; leave the task unfinished.
        break;
      case TaskOutcome::Abandoned:
      case TaskOutcome::Failed: {
        const bool stalled = outcome == TaskOutcome::Abandoned;
        if (stalled) ++sessionStats.tasksAbandoned;
        if (isTerminal(job->state)) break;
        if (job->retryCount[idx] < cfg.maxTaskRetries) {
          // Retry with capped exponential backoff, from the freshest
          // snapshot when one exists (in-memory from this attempt, or the
          // durable one loaded at recovery) — otherwise from the task's
          // deterministic seed. Either way the eventual record is
          // bit-identical to an undisturbed run.
          ++job->retryCount[idx];
          ++job->retriesTotal;
          ++sessionStats.tasksRetried;
          if (cp.valid) job->checkpoints[idx] = std::move(cp);
          job->phase[idx] = Phase::RetryWait;
          job->abortFlag[idx].store(false, std::memory_order_relaxed);
          const double factor = static_cast<double>(
              1ull << std::min<std::size_t>(job->retryCount[idx] - 1, 20));
          const double delay =
              std::min(cfg.retryBackoffMs * factor, cfg.retryBackoffCapMs);
          retryWait.push_back(
              {job->id, idx,
               nowMs() + static_cast<std::int64_t>(delay)});
        } else {
          const std::size_t p = idx / job->runsPer;
          const std::size_t k = idx % job->runsPer;
          failJobLocked(
              *job, stalled ? "stall" : "task",
              "task (program " + std::to_string(p) + ", run " +
                  std::to_string(k) + ") " +
                  (stalled ? "stalled" : "failed") + " after " +
                  std::to_string(job->retryCount[idx]) + " retries" +
                  (error.empty() ? std::string()
                                 : std::string(": ") + error));
        }
        break;
      }
    }
    // The last in-flight task of a job that went terminal mid-run releases
    // its retained storage.
    trimIfIdleLocked(*job);
  }
}

void SynthService::Impl::watchdogLoop() {
  std::unique_lock<std::mutex> lock(mu);
  while (!stop) {
    wdCv.wait_for(lock, std::chrono::milliseconds(20));
    if (stop) return;
    const std::int64_t now = nowMs();

    // Promote retry-backoff tasks whose delay has elapsed.
    bool wake = false;
    for (std::size_t i = 0; i < retryWait.size();) {
      if (retryWait[i].readyAtMs > now) {
        ++i;
        continue;
      }
      const RetryEntry e = retryWait[i];
      retryWait[i] = retryWait.back();
      retryWait.pop_back();
      const auto it = jobs.find(e.jobId);
      if (it != jobs.end() && !isTerminal(it->second->state) &&
          it->second->phase[e.idx] == Phase::RetryWait) {
        it->second->phase[e.idx] = Phase::Queued;
        queue.emplace_back(e.jobId, e.idx);
        wake = true;
      }
    }
    if (wake) taskCv.notify_all();

    // Deadlines + stall detection. Deadline failures are collected first:
    // failJobLocked -> markTerminalLocked can evict map entries, which
    // would invalidate the iterator mid-loop.
    std::vector<std::shared_ptr<Job>> deadlined;
    for (const auto& [id, job] : jobs) {
      if (isTerminal(job->state) || job->state == JobState::Paused) continue;
      if (job->deadlineSeconds > 0) {
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          job->start)
                .count();
        if (elapsed > job->deadlineSeconds) {
          deadlined.push_back(job);
          continue;
        }
      }
      if (cfg.stallSeconds > 0 &&
          job->searchConfig.strategy != core::SearchStrategy::Islands) {
        const auto stallMs =
            static_cast<std::int64_t>(cfg.stallSeconds * 1000.0);
        for (std::size_t i = 0; i < job->phase.size(); ++i) {
          if (job->phase[i] != Phase::Running) continue;
          const std::int64_t beat =
              job->beatMs[i].load(std::memory_order_relaxed);
          if (beat >= 0 && now - beat > stallMs)
            job->abortFlag[i].store(true, std::memory_order_relaxed);
        }
      }
    }
    for (const auto& job : deadlined) {
      if (isTerminal(job->state)) continue;
      ++sessionStats.jobsDeadlineFailed;
      std::ostringstream os;
      os << "deadline exceeded (" << job->deadlineSeconds << "s)";
      failJobLocked(*job, "deadline", os.str());
    }
  }
}

// ---- public API -------------------------------------------------------------

std::string jobDirName(const std::string& method,
                       const harness::ExperimentConfig& config,
                       const std::vector<std::size_t>& taskFilter) {
  // Sort/dedup like submit's normalization, but without the range check (no
  // workload here) and without full-claim collapsing — callers pass the
  // exact claim they submitted, and a coordinator never claims every task
  // of a multi-host job on one host anyway.
  std::vector<std::size_t> claim = taskFilter;
  std::sort(claim.begin(), claim.end());
  claim.erase(std::unique(claim.begin(), claim.end()), claim.end());
  return key16(fnv1a64(resultCacheKey(method, config, claim)));
}

SynthService::SynthService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

SynthService::~SynthService() { shutdown(); }

std::uint64_t SynthService::submit(const harness::ExperimentConfig& config,
                                   const std::string& method,
                                   bool useResultCache) {
  SubmitOptions opts;
  opts.useResultCache = useResultCache;
  return submit(config, method, opts).id;
}

SubmitResult SynthService::submit(const harness::ExperimentConfig& config,
                                  const std::string& method,
                                  const SubmitOptions& opts) {
  if (!isKnownMethod(method))
    throw std::invalid_argument("unknown method '" + method +
                                "' (service methods: Edit, Oracle_CF, "
                                "Oracle_LCS, NetSyn_CF, NetSyn_LCS, "
                                "NetSyn_FP)");

  // Off-lock preparation: validation, search-config derivation, workload
  // generation (deterministic from the config, same as the one-shot
  // harness).
  auto job = std::make_shared<Job>();
  job->method = method;
  job->config = config;
  job->searchConfig = harness::methodSearchConfig(config, method);
  job->workload = harness::makeFullWorkload(config);
  job->programCount = job->workload.size();
  job->runsPer = std::max<std::size_t>(1, config.runsPerProgram);
  const std::size_t total = job->workload.size() * job->runsPer;
  std::vector<std::size_t> claim = normalizeClaim(opts.taskFilter, total);
  job->useResultCache = opts.useResultCache;
  job->cacheKey = resultCacheKey(method, config, claim);
  job->keyHash = fnv1a64(job->cacheKey);
  job->deadlineSeconds = opts.deadlineSeconds > 0
                             ? opts.deadlineSeconds
                             : impl_->cfg.defaultDeadlineSeconds;
  job->start = std::chrono::steady_clock::now();
  initTaskState(*job, total);
  applyClaim(*job, std::move(claim));

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->stop) throw std::runtime_error("service is shut down");

  if (opts.attach) {
    // Idempotent resubmission: join the newest job with this key unless it
    // ended badly (a Cancelled/Failed predecessor should be re-run).
    if (const auto bit = impl_->byKey.find(job->keyHash);
        bit != impl_->byKey.end()) {
      if (const auto jit = impl_->jobs.find(bit->second);
          jit != impl_->jobs.end()) {
        const JobState st = jit->second->state;
        if (st != JobState::Cancelled && st != JobState::Failed) {
          ++impl_->sessionStats.attachHits;
          return {jit->second->id, true};
        }
      }
    }
  }

  job->id = impl_->nextId++;

  if (impl_->cfg.resultCache && opts.useResultCache) {
    if (const auto it = impl_->resultCache.find(job->cacheKey);
        it != impl_->resultCache.end()) {
      ++impl_->sessionStats.jobsSubmitted;
      job->tasks = it->second;
      job->tasksDone = job->claimedTotal;
      if (job->claimed.empty())
        job->phase.assign(total, Phase::Done);
      else
        for (const std::size_t idx : job->claimed)
          job->phase[idx] = Phase::Done;
      job->state = JobState::Done;
      job->fromCache = true;
      ++impl_->sessionStats.resultCacheHits;
      ++impl_->sessionStats.jobsCompleted;
      impl_->jobs.emplace(job->id, job);
      impl_->byKey[job->keyHash] = job->id;
      impl_->markTerminalLocked(*job);
      impl_->jobCv.notify_all();
      return {job->id, false};
    }
  }

  // Backpressure: reject before any state is registered, so an overloaded
  // daemon stays exactly as loaded as it was.
  if (impl_->cfg.maxQueuedTasks > 0 &&
      impl_->queue.size() + job->claimedTotal > impl_->cfg.maxQueuedTasks) {
    ++impl_->sessionStats.submitsRejected;
    throw OverloadedError(
        "task queue overloaded: " + std::to_string(impl_->queue.size()) +
        " queued + " + std::to_string(job->claimedTotal) +
        " requested > cap " + std::to_string(impl_->cfg.maxQueuedTasks));
  }

  ++impl_->sessionStats.jobsSubmitted;
  impl_->jobs.emplace(job->id, job);
  impl_->byKey[job->keyHash] = job->id;
  impl_->claimStateDirLocked(*job);
  // Failover adoption runs after the state dir claim so grafted records
  // land in this job's own durable log too.
  if (!opts.adoptDir.empty()) impl_->adoptFromDirLocked(*job, opts.adoptDir);
  for (std::size_t i = 0; i < total; ++i)
    if (job->phase[i] == Phase::Queued)
      impl_->queue.emplace_back(job->id, i);
  impl_->finalizeIfComplete(*job);  // adoption may have finished everything
  impl_->taskCv.notify_all();
  return {job->id, false};
}

JobStatus SynthService::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  return impl_->statusLocked(*it->second);
}

JobStatus SynthService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  const std::shared_ptr<Job> job = it->second;
  // Paused also unblocks: a single-threaded protocol session that waits on
  // a job it paused earlier must get the status back — the resume that
  // would make the job terminal can only arrive over that same session.
  impl_->jobCv.wait(lock, [&] {
    return isTerminal(job->state) || job->state == JobState::Paused;
  });
  return impl_->statusLocked(*job);
}

bool SynthService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (isTerminal(job.state)) return false;
  job.state = JobState::Cancelled;
  job.pollSignal.store(kPollCancel, std::memory_order_relaxed);
  ++impl_->sessionStats.jobsCancelled;
  impl_->markTerminalLocked(job);
  impl_->jobCv.notify_all();
  return true;
}

bool SynthService::pause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (job.state != JobState::Queued && job.state != JobState::Running)
    return false;
  job.state = JobState::Paused;
  job.pollSignal.store(kPollPause, std::memory_order_relaxed);
  impl_->jobCv.notify_all();  // wait() callers observe Paused
  return true;
}

bool SynthService::resume(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (job.state != JobState::Paused) return false;
  job.state = JobState::Running;
  job.pollSignal.store(kPollContinue, std::memory_order_relaxed);
  for (std::size_t i = 0; i < job.phase.size(); ++i) {
    if (job.phase[i] == Phase::Parked || job.phase[i] == Phase::Checkpointed) {
      job.phase[i] = Phase::Queued;
      impl_->queue.emplace_back(job.id, i);
    }
  }
  // Every task may have finished before the pause landed; completes as Done.
  impl_->finalizeIfComplete(job);
  impl_->taskCv.notify_all();
  return true;
}

HelloResult SynthService::hello(const std::string& token) {
  if (token.empty())
    throw std::invalid_argument("hello requires a non-empty session token");
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->stop) throw std::runtime_error("service is shut down");
  HelloResult res;
  res.resumed = impl_->sessionStats.jobsRecovered > 0;
  if (token == impl_->sessionToken) {
    // Idempotent re-hello: a coordinator reconnecting to a live backend
    // keeps its epoch.
    res.epoch = impl_->sessionEpoch;
    return res;
  }
  if (impl_->retiredTokens.count(token)) {
    ++impl_->sessionStats.staleTokensRejected;
    throw StaleTokenError("session token was superseded at epoch " +
                          std::to_string(impl_->sessionEpoch) +
                          "; a retired token cannot be re-established");
  }
  if (!impl_->sessionToken.empty()) {
    if (impl_->retiredTokens.insert(impl_->sessionToken).second)
      impl_->retiredOrder.push_back(impl_->sessionToken);
    while (impl_->retiredOrder.size() > Impl::kMaxRetiredTokens) {
      impl_->retiredTokens.erase(impl_->retiredOrder.front());
      impl_->retiredOrder.pop_front();
    }
  }
  impl_->sessionToken = token;
  ++impl_->sessionEpoch;
  ++impl_->sessionStats.hellosAccepted;
  res.epoch = impl_->sessionEpoch;
  return res;
}

void SynthService::requireFreshToken(const std::string& token) const {
  if (token.empty())
    throw std::invalid_argument(
        "claim requires a session token (send hello first)");
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->sessionToken.empty()) {
    ++impl_->sessionStats.staleTokensRejected;
    throw StaleTokenError("no fleet session established: hello before claim");
  }
  if (token != impl_->sessionToken) {
    ++impl_->sessionStats.staleTokensRejected;
    throw StaleTokenError("stale session token rejected (current epoch " +
                          std::to_string(impl_->sessionEpoch) + ")");
  }
}

SessionStats SynthService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->statsLocked();
}

ServiceMetrics SynthService::metrics() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ServiceMetrics m;
  m.stats = impl_->statsLocked();
  m.queueDepth = impl_->queue.size();
  m.retryWaiting = impl_->retryWait.size();
  m.maxQueuedTasks = impl_->cfg.maxQueuedTasks;
  m.jobsTracked = impl_->jobs.size();
  for (const auto& [id, job] : impl_->jobs)
    if (!isTerminal(job->state)) ++m.jobsActive;
  m.resultCacheEntries = impl_->resultCache.size();
  if (util::FaultRegistry::armed()) {
    m.faultHits = util::FaultRegistry::instance().totalHits();
    m.faultFires = util::FaultRegistry::instance().totalFires();
  }
  return m;
}

void SynthService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop) return;
    impl_->stop = true;
    impl_->shuttingDown = true;
    impl_->queue.clear();
    impl_->retryWait.clear();
    // markTerminalLocked may evict old terminal entries from the map, so
    // iterate over a snapshot of the live jobs.
    std::vector<std::shared_ptr<Job>> live;
    for (auto& [id, job] : impl_->jobs)
      if (!isTerminal(job->state)) live.push_back(job);
    for (const auto& job : live) {
      job->state = JobState::Cancelled;
      job->pollSignal.store(kPollCancel, std::memory_order_relaxed);
      ++impl_->sessionStats.jobsCancelled;
      impl_->markTerminalLocked(*job);
    }
    impl_->taskCv.notify_all();
    impl_->jobCv.notify_all();
    impl_->wdCv.notify_all();
  }
  for (auto& w : impl_->workers) w.join();
  impl_->workers.clear();
  if (impl_->watchdog.joinable()) impl_->watchdog.join();
}

// ------------------------------------------------------------ SocketServer

struct SocketServer::Session {
  std::unique_ptr<util::SocketTransport> transport;
  std::thread thread;
  std::atomic<bool> done{false};
};

SocketServer::SocketServer(SynthService& service,
                           const util::SocketEndpoint& endpoint,
                           double recvTimeoutSeconds)
    : service_(service),
      listener_(endpoint),
      recvTimeoutSeconds_(recvTimeoutSeconds) {}

SocketServer::~SocketServer() { stop(); }

const util::SocketEndpoint& SocketServer::boundEndpoint() const {
  return listener_.boundEndpoint();
}

void SocketServer::start() {
  if (started_.exchange(true)) return;
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

void SocketServer::run() {
  start();
  if (acceptThread_.joinable()) acceptThread_.join();
  stop();
}

void SocketServer::acceptLoop() {
  // Finite poll ticks so stop() never races a blocked accept (the
  // SocketListener::close contract).
  while (!stopping_.load(std::memory_order_relaxed)) {
    std::unique_ptr<util::SocketTransport> conn;
    try {
      conn = listener_.accept(/*timeoutSeconds=*/0.1, recvTimeoutSeconds_);
    } catch (const util::TransportClosed&) {
      // A fault-severed or failed accept drops that one connection attempt;
      // the listener itself is still bound.
      continue;
    }
    reapFinishedSessions();
    if (!conn) continue;
    auto session = std::make_unique<Session>();
    session->transport = std::move(conn);
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_relaxed)) return;
      sessions_.push_back(std::move(session));
      ++served_;
    }
    raw->thread = std::thread([this, raw] { serveSession(raw); });
  }
}

void SocketServer::serveSession(Session* session) {
  // `session` outlives this thread: stop() and reapFinishedSessions() both
  // join the thread before destroying the Session object.
  bool shutdownRequested = false;
  try {
    while (!stopping_.load(std::memory_order_relaxed)) {
      const std::string line = session->transport->recvLine();
      if (line.empty()) continue;
      const std::string response =
          handleRequestLine(service_, line, shutdownRequested);
      session->transport->sendLine(response);
      if (shutdownRequested) break;
    }
  } catch (const util::TransportClosed&) {
    // Peer gone (or dropConnections() severed us): just end this session.
  }
  session->transport->close();
  session->done.store(true, std::memory_order_release);
  if (shutdownRequested) {
    // Stop the accept loop but don't join from our own thread — run()/stop()
    // on the owner's thread does the joining.
    stopping_.store(true, std::memory_order_relaxed);
  }
}

void SocketServer::reapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& s : finished)
    if (s->thread.joinable()) s->thread.join();
}

void SocketServer::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  if (acceptThread_.joinable() &&
      acceptThread_.get_id() != std::this_thread::get_id())
    acceptThread_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& s : sessions) {
    s->transport->sever();  // wakes a session blocked in recvLine
    if (s->thread.joinable()) s->thread.join();
  }
  listener_.close();
}

std::size_t SocketServer::dropConnections() {
  std::size_t severed = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& s : sessions_) {
    if (!s->done.load(std::memory_order_acquire) && s->transport->alive()) {
      s->transport->sever();
      ++severed;
    }
  }
  return severed;
}

std::size_t SocketServer::sessionsServed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return served_;
}

std::size_t SocketServer::sessionsActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t active = 0;
  for (const auto& s : sessions_)
    if (s && !s->done.load(std::memory_order_acquire)) ++active;
  return active;
}

}  // namespace netsyn::service
