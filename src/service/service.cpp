#include "service/service.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/search_state.hpp"
#include "dsl/interpreter.hpp"
#include "fitness/edit.hpp"
#include "fitness/metrics.hpp"
#include "fitness/neural_fitness.hpp"
#include "harness/registry.hpp"
#include "harness/runner.hpp"
#include "harness/workload.hpp"

namespace netsyn::service {

const char* jobStateName(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Paused: return "paused";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "?";
}

bool isTerminal(JobState s) {
  return s == JobState::Done || s == JobState::Cancelled ||
         s == JobState::Failed;
}

bool isKnownMethod(const std::string& name) {
  return name == "Edit" || name == "Oracle_CF" || name == "Oracle_LCS" ||
         name == "NetSyn_CF" || name == "NetSyn_LCS" || name == "NetSyn_FP";
}

harness::TrainedModels ModelStore::get(
    const harness::ExperimentConfig& config) {
  // Model identity is keyed by the on-disk cache location (directory +
  // scale + domain tags), matching harness::modelCachePath — two configs
  // that would share cache files share store entries. Training-dimension
  // variations under one (modelDir, scale, domain) are not distinguished;
  // use distinct modelDirs for those.
  const std::string key =
      config.modelDir + "|" + config.scaleName + "|" + config.domainName;
  std::lock_guard<std::mutex> lock(mu_);
  if (const auto it = store_.find(key); it != store_.end()) return it->second;
  harness::TrainedModels models = loadOrTrainAll(config, /*quiet=*/true);
  store_.emplace(key, models);
  return models;
}

baselines::MethodPtr makeOneShotMethod(const std::string& method,
                                       const harness::ExperimentConfig& config,
                                       ModelStore& models) {
  if (method == "Edit") return harness::makeEdit(config);
  if (method == "Oracle_CF")
    return harness::makeOracle(config, fitness::BalanceMetric::CF);
  if (method == "Oracle_LCS")
    return harness::makeOracle(config, fitness::BalanceMetric::LCS);
  if (method == "NetSyn_CF")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::CF);
  if (method == "NetSyn_LCS")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::LCS);
  if (method == "NetSyn_FP")
    return harness::makeNetSyn(config, models.get(config),
                               harness::NetSynVariant::FP);
  throw std::invalid_argument("unknown method '" + method + "'");
}

namespace {

// Per-job poll signal, read by workers once per generation without taking
// the service lock.
constexpr std::uint8_t kPollContinue = 0;
constexpr std::uint8_t kPollPause = 1;
constexpr std::uint8_t kPollCancel = 2;

/// Per-task scheduling phase. Queue-entry invariant: a queue entry exists
/// for a task iff its phase is Queued (plus at most one consumed entry
/// while Running); Parked/Checkpointed tasks re-enter the queue only
/// through resume().
enum class Phase : std::uint8_t {
  Queued,        ///< waiting in (or owed to) the task queue
  Running,       ///< a worker is executing it
  Parked,        ///< popped while the job was paused; not yet restartable
  Checkpointed,  ///< paused mid-search; snapshot held
  Done,          ///< TaskRecord recorded
};

struct TaskCheckpoint {
  core::SearchState::Snapshot snap;
  util::Rng rng{0};
  bool valid = false;
};

struct Job {
  std::uint64_t id = 0;
  std::string method;
  harness::ExperimentConfig config;
  core::SynthesizerConfig searchConfig;  ///< methodSearchConfig(config, method)
  /// Released once the job is terminal and idle (trimIfIdleLocked) — report
  /// fields must come from programCount/runsPer, never workload.size().
  std::vector<harness::TestProgram> workload;
  std::size_t programCount = 0;
  std::size_t runsPer = 1;
  bool useResultCache = true;
  std::string cacheKey;

  JobState state = JobState::Queued;
  std::atomic<std::uint8_t> pollSignal{kPollContinue};
  std::vector<Phase> phase;
  std::vector<TaskCheckpoint> checkpoints;
  std::vector<TaskRecord> tasks;
  std::size_t tasksDone = 0;
  std::size_t running = 0;  ///< tasks currently on a worker
  bool fromCache = false;
  std::size_t planCompiles = 0;
  std::size_t planLookups = 0;
  std::string error;
};

/// One worker's cross-request hot state: the plan-cache-bearing execution
/// engine and the per-method grading kits (NN clones and their
/// fingerprint-keyed caches included). Lives as long as the worker thread.
struct WorkerContext {
  dsl::Executor executor;

  struct MethodKit {
    fitness::FitnessPtr fitness;  ///< persistent; null for oracle methods
    std::shared_ptr<fitness::ProbMapProvider> probMap;
    bool oracle = false;
    fitness::BalanceMetric oracleMetric = fitness::BalanceMetric::CF;
  };
  std::unordered_map<std::string, MethodKit> kits;
};

enum class TaskOutcome { Completed, Checkpointed, Cancelled, Failed };

/// Completed-job memo key. config.toJson() covers every serialized field;
/// the fields it does NOT serialize but which still steer the search — the
/// program-generator ranges (they shape the workload and every random
/// candidate) and the NN model dimensions/seed — are appended explicitly,
/// so two embedded callers whose configs differ only there never alias to
/// one memo entry. (Protocol clients can only vary serialized fields, but
/// the public submit() API has no such restriction.)
std::string resultCacheKey(const std::string& method,
                           const harness::ExperimentConfig& config) {
  std::ostringstream os;
  os.precision(17);
  const dsl::GeneratorConfig& g = config.synthesizer.generator;
  const fitness::NnffConfig& m = config.modelConfig;
  os << method << '\x1f' << config.toJson() << '\x1f' << g.minListLength
     << ',' << g.maxListLength << ',' << g.minValue << ',' << g.maxValue
     << ',' << g.intInputProbability << ',' << g.maxAttempts << '\x1f'
     << m.encoder.vmax << ',' << m.encoder.maxValueTokens << ','
     << m.embedDim << ',' << m.hiddenDim << ',' << m.numClasses << ','
     << m.maxExamples << ',' << static_cast<int>(m.head) << ','
     << m.useTrace << ',' << m.seed << ',' << m.multilabelDim;
  return os.str();
}

}  // namespace

struct SynthService::Impl {
  explicit Impl(ServiceConfig config) : cfg(config) {
    std::size_t n = cfg.workers == 0
                        ? std::max(1u, std::thread::hardware_concurrency())
                        : cfg.workers;
    workers.reserve(n);
    for (std::size_t w = 0; w < n; ++w)
      workers.emplace_back([this, w] { workerLoop(w); });
  }

  // ---- worker side ----------------------------------------------------------

  void workerLoop(std::size_t /*workerIndex*/);
  WorkerContext::MethodKit& kitFor(WorkerContext& ctx, const Job& job);
  TaskOutcome runTask(WorkerContext& ctx, const Job& job, std::size_t idx,
                      TaskCheckpoint& cp, TaskRecord& out);

  // ---- guarded state --------------------------------------------------------

  mutable std::mutex mu;
  std::condition_variable taskCv;  ///< workers wait for queue entries
  std::condition_variable jobCv;   ///< wait() callers wait for terminal jobs
  bool stop = false;

  ServiceConfig cfg;
  std::uint64_t nextId = 1;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs;
  std::deque<std::pair<std::uint64_t, std::size_t>> queue;  ///< (job, task)
  std::map<std::string, std::vector<TaskRecord>> resultCache;
  std::deque<std::string> resultCacheOrder;  ///< FIFO eviction order
  std::deque<std::uint64_t> terminalOrder;   ///< terminal jobs, oldest first
  SessionStats sessionStats;

  ModelStore models;  ///< thread-safe on its own lock

  std::vector<std::thread> workers;

  // The daemon is long-lived: without retention bounds, per-job state
  // (generated workloads, checkpoints) and the result memo would grow with
  // every request for the process lifetime. Terminal jobs keep their
  // TaskRecords (status/wait still work) but drop workload + checkpoint
  // storage; the oldest terminal jobs and memo entries are evicted outright
  // past these caps (an evicted job id then reads as unknown).
  static constexpr std::size_t kMaxTerminalJobs = 256;
  static constexpr std::size_t kMaxResultCacheEntries = 256;

  JobStatus statusLocked(const Job& job) const;
  void finalizeIfComplete(Job& job);
  void markTerminalLocked(Job& job);
  void trimIfIdleLocked(Job& job);
  void storeResultLocked(const std::string& key,
                         const std::vector<TaskRecord>& tasks);
};

JobStatus SynthService::Impl::statusLocked(const Job& job) const {
  JobStatus st;
  st.id = job.id;
  st.state = job.state;
  st.method = job.method;
  st.programs = job.programCount;
  st.runsPerProgram = job.runsPer;
  st.tasksTotal = job.tasks.size();
  st.tasksDone = job.tasksDone;
  st.fromCache = job.fromCache;
  st.planCompiles = job.planCompiles;
  st.planLookups = job.planLookups;
  st.error = job.error;
  for (std::size_t i = 0; i < job.tasks.size(); ++i)
    if (job.phase[i] == Phase::Done) st.tasks.push_back(job.tasks[i]);
  return st;
}

void SynthService::Impl::finalizeIfComplete(Job& job) {
  if (job.tasksDone != job.tasks.size() || isTerminal(job.state)) return;
  job.state = JobState::Done;
  ++sessionStats.jobsCompleted;
  if (cfg.resultCache && job.useResultCache)
    storeResultLocked(job.cacheKey, job.tasks);
  markTerminalLocked(job);
  jobCv.notify_all();
}

void SynthService::Impl::markTerminalLocked(Job& job) {
  terminalOrder.push_back(job.id);
  trimIfIdleLocked(job);
  while (terminalOrder.size() > kMaxTerminalJobs) {
    const std::uint64_t oldest = terminalOrder.front();
    terminalOrder.pop_front();
    // Waiters hold the shared_ptr; erasing the map entry only forgets the
    // id. A job can never be running here: it was terminal when enqueued
    // and kMaxTerminalJobs of newer terminals have since arrived.
    jobs.erase(oldest);
  }
}

void SynthService::Impl::trimIfIdleLocked(Job& job) {
  // Workers reference job.workload by pointer off-lock, so the storage may
  // only be released once no task of this job is executing.
  if (!isTerminal(job.state) || job.running > 0) return;
  job.workload.clear();
  job.workload.shrink_to_fit();
  job.checkpoints.clear();
  job.checkpoints.shrink_to_fit();
}

void SynthService::Impl::storeResultLocked(
    const std::string& key, const std::vector<TaskRecord>& tasks) {
  if (resultCache.emplace(key, tasks).second) resultCacheOrder.push_back(key);
  while (resultCacheOrder.size() > kMaxResultCacheEntries) {
    resultCache.erase(resultCacheOrder.front());
    resultCacheOrder.pop_front();
  }
}

WorkerContext::MethodKit& SynthService::Impl::kitFor(WorkerContext& ctx,
                                                     const Job& job) {
  const std::string key = job.method + "|" + job.config.modelDir + "|" +
                          job.config.scaleName + "|" + job.config.domainName;
  if (const auto it = ctx.kits.find(key); it != ctx.kits.end())
    return it->second;

  WorkerContext::MethodKit kit;
  if (job.method == "Edit") {
    kit.fitness = std::make_shared<fitness::EditDistanceFitness>(
        job.config.synthesizer.generator.domain);
  } else if (job.method == "Oracle_CF" || job.method == "Oracle_LCS") {
    kit.oracle = true;
    kit.oracleMetric = job.method == "Oracle_CF" ? fitness::BalanceMetric::CF
                                                 : fitness::BalanceMetric::LCS;
  } else {
    // NetSyn_{CF,LCS,FP}: clone from the shared store once per worker; the
    // clones (and the prob-map's spec-fingerprint-keyed cache) then serve
    // every job of this method on this worker.
    const harness::TrainedModels shared = models.get(job.config);
    auto fp = std::make_shared<fitness::ProbMapFitness>(shared.fp->clone());
    kit.probMap = fp;
    if (job.method == "NetSyn_CF")
      kit.fitness = std::make_shared<fitness::NeuralFitness>(
          shared.cf->clone(), "NN_CF");
    else if (job.method == "NetSyn_LCS")
      kit.fitness = std::make_shared<fitness::NeuralFitness>(
          shared.lcs->clone(), "NN_LCS");
    else
      kit.fitness = fp;
  }
  return ctx.kits.emplace(key, std::move(kit)).first->second;
}

TaskOutcome SynthService::Impl::runTask(WorkerContext& ctx, const Job& job,
                                        std::size_t idx, TaskCheckpoint& cp,
                                        TaskRecord& out) {
  const std::size_t p = idx / job.runsPer;
  const std::size_t k = idx % job.runsPer;
  const harness::TestProgram& tp = job.workload[p];

  WorkerContext::MethodKit& kit = kitFor(ctx, job);
  fitness::FitnessPtr fit = kit.fitness;
  if (kit.oracle) {
    // Oracle fitness is target-specific and cheap: one fresh instance per
    // task, like the registry's per-island oracle instances.
    if (kit.oracleMetric == fitness::BalanceMetric::CF)
      fit = std::make_shared<fitness::OracleCF>(tp.target);
    else
      fit = std::make_shared<fitness::OracleLCS>(tp.target);
  }

  out = TaskRecord{};
  out.program = p;
  out.run = k;

  if (job.searchConfig.strategy == core::SearchStrategy::Islands) {
    // Island searches run through the engine's own coordinator (factory
    // omitted: islands step sequentially inside this one task, which is the
    // right parallelism split when the service pool is already fanned out).
    // They are cancel/pause-atomic: signals take effect between tasks.
    if (job.pollSignal.load(std::memory_order_relaxed) == kPollCancel)
      return TaskOutcome::Cancelled;
    util::Rng rng = harness::runSeedRng(job.config, p, k);
    const core::SynthesisResult result = core::runIslandSearch(
        job.searchConfig, fit, kit.probMap, nullptr, tp.spec, tp.length,
        job.config.searchBudget, rng);
    out.found = result.found;
    out.candidates = result.candidatesSearched;
    out.generations = result.generations;
    out.seconds = result.seconds;
    return TaskOutcome::Completed;
  }

  // Single population: stepped one generation at a time so cancel/pause
  // land at generation boundaries, through the worker's persistent executor
  // so the plan cache carries over between jobs.
  util::Rng rng = cp.valid ? cp.rng : harness::runSeedRng(job.config, p, k);
  core::SearchBudget budget =
      cp.valid ? core::SearchBudget::resumed(cp.snap.budgetLimit,
                                             cp.snap.budgetUsed)
               : core::SearchBudget(job.config.searchBudget);
  std::optional<core::SearchState> state;
  if (cp.valid)
    state.emplace(cp.snap, fit, kit.probMap, tp.spec, budget, rng,
                  &ctx.executor);
  else
    state.emplace(job.searchConfig, fit, kit.probMap, tp.spec, tp.length,
                  budget, rng, &ctx.executor);
  core::SearchState::Status status = cp.valid
                                         ? core::SearchState::Status::Running
                                         : state->seed();
  cp.valid = false;
  while (status == core::SearchState::Status::Running) {
    const std::uint8_t sig = job.pollSignal.load(std::memory_order_relaxed);
    if (sig == kPollCancel) return TaskOutcome::Cancelled;
    if (sig == kPollPause) {
      cp.snap = state->snapshot();
      cp.rng = rng;
      cp.valid = true;
      return TaskOutcome::Checkpointed;
    }
    status = state->step();
  }
  const core::SynthesisResult result = state->finish();
  out.found = result.found;
  out.candidates = result.candidatesSearched;
  out.generations = result.generations;
  out.seconds = result.seconds;
  return TaskOutcome::Completed;
}

void SynthService::Impl::workerLoop(std::size_t /*workerIndex*/) {
  WorkerContext ctx;
  std::unique_lock<std::mutex> lock(mu);
  while (true) {
    taskCv.wait(lock, [&] { return stop || !queue.empty(); });
    if (stop) return;
    const auto [jobId, idx] = queue.front();
    queue.pop_front();

    const auto it = jobs.find(jobId);
    if (it == jobs.end()) continue;
    const std::shared_ptr<Job> job = it->second;
    if (isTerminal(job->state)) continue;
    if (job->state == JobState::Paused) {
      // Popped while parked: owed back to the queue by resume().
      job->phase[idx] = Phase::Parked;
      continue;
    }
    if (job->state == JobState::Queued) job->state = JobState::Running;
    job->phase[idx] = Phase::Running;
    ++job->running;
    TaskCheckpoint cp = std::move(job->checkpoints[idx]);
    job->checkpoints[idx] = TaskCheckpoint{};
    const bool resumed = cp.valid;

    lock.unlock();
    // Per-task counter window: zero the executor's counters at task start
    // and read them raw afterwards. Unlike the before/after snapshot this
    // replaced, the delta cannot go stale when something reconfigures the
    // executor mid-stream (e.g. a search switching the execution backend):
    // whatever runs inside the window is attributed to this task, nothing
    // else. The plan cache itself is untouched — warm-cache behavior across
    // jobs is exactly as before (pinned by test_service).
    ctx.executor.resetCounters();
    TaskRecord record;
    TaskOutcome outcome = TaskOutcome::Failed;
    std::string error;
    try {
      outcome = runTask(ctx, *job, idx, cp, record);
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "unknown task error";
    }
    const std::size_t compilesDelta = ctx.executor.planCompiles();
    const std::size_t lookupsDelta = ctx.executor.planLookups();
    lock.lock();

    --job->running;
    job->planCompiles += compilesDelta;
    job->planLookups += lookupsDelta;
    sessionStats.planCompiles += compilesDelta;
    sessionStats.planLookups += lookupsDelta;
    if (resumed && outcome != TaskOutcome::Failed)
      ++sessionStats.tasksResumed;
    switch (outcome) {
      case TaskOutcome::Completed:
        job->tasks[idx] = record;
        job->phase[idx] = Phase::Done;
        ++job->tasksDone;
        ++sessionStats.tasksExecuted;
        finalizeIfComplete(*job);
        break;
      case TaskOutcome::Checkpointed:
        job->checkpoints[idx] = std::move(cp);
        ++sessionStats.checkpointsTaken;
        if (job->state == JobState::Paused) {
          job->phase[idx] = Phase::Checkpointed;
        } else if (!isTerminal(job->state)) {
          // resume() already ran while this worker was mid-snapshot and
          // found the task still Running, so nobody else will re-enqueue
          // it: requeue here or the job never completes.
          job->phase[idx] = Phase::Queued;
          queue.emplace_back(job->id, idx);
          taskCv.notify_one();
        }
        break;
      case TaskOutcome::Cancelled:
        // Job state already Cancelled; leave the task unfinished.
        break;
      case TaskOutcome::Failed:
        if (!isTerminal(job->state)) {
          job->state = JobState::Failed;
          job->error = error;
          job->pollSignal.store(kPollCancel, std::memory_order_relaxed);
          ++sessionStats.jobsFailed;
          markTerminalLocked(*job);
          jobCv.notify_all();
        }
        break;
    }
    // The last in-flight task of a job that went terminal mid-run releases
    // its retained storage.
    trimIfIdleLocked(*job);
  }
}

SynthService::SynthService(ServiceConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

SynthService::~SynthService() { shutdown(); }

std::uint64_t SynthService::submit(const harness::ExperimentConfig& config,
                                   const std::string& method,
                                   bool useResultCache) {
  if (!isKnownMethod(method))
    throw std::invalid_argument("unknown method '" + method +
                                "' (service methods: Edit, Oracle_CF, "
                                "Oracle_LCS, NetSyn_CF, NetSyn_LCS, "
                                "NetSyn_FP)");

  // Off-lock preparation: validation, search-config derivation, workload
  // generation (deterministic from the config, same as the one-shot
  // harness).
  auto job = std::make_shared<Job>();
  job->method = method;
  job->config = config;
  job->searchConfig = harness::methodSearchConfig(config, method);
  job->workload = harness::makeFullWorkload(config);
  job->programCount = job->workload.size();
  job->runsPer = std::max<std::size_t>(1, config.runsPerProgram);
  job->useResultCache = useResultCache;
  job->cacheKey = resultCacheKey(method, config);
  const std::size_t total = job->workload.size() * job->runsPer;
  job->phase.assign(total, Phase::Queued);
  job->checkpoints.resize(total);
  job->tasks.assign(total, TaskRecord{});

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->stop) throw std::runtime_error("service is shut down");
  job->id = impl_->nextId++;
  ++impl_->sessionStats.jobsSubmitted;

  if (impl_->cfg.resultCache && useResultCache) {
    if (const auto it = impl_->resultCache.find(job->cacheKey);
        it != impl_->resultCache.end()) {
      job->tasks = it->second;
      job->tasksDone = total;
      job->phase.assign(total, Phase::Done);
      job->state = JobState::Done;
      job->fromCache = true;
      ++impl_->sessionStats.resultCacheHits;
      ++impl_->sessionStats.jobsCompleted;
      impl_->jobs.emplace(job->id, job);
      impl_->markTerminalLocked(*job);
      impl_->jobCv.notify_all();
      return job->id;
    }
  }

  impl_->jobs.emplace(job->id, job);
  for (std::size_t i = 0; i < total; ++i)
    impl_->queue.emplace_back(job->id, i);
  impl_->taskCv.notify_all();
  return job->id;
}

JobStatus SynthService::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  return impl_->statusLocked(*it->second);
}

JobStatus SynthService::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  const std::shared_ptr<Job> job = it->second;
  // Paused also unblocks: a single-threaded protocol session that waits on
  // a job it paused earlier must get the status back — the resume that
  // would make the job terminal can only arrive over that same session.
  impl_->jobCv.wait(lock, [&] {
    return isTerminal(job->state) || job->state == JobState::Paused;
  });
  return impl_->statusLocked(*job);
}

bool SynthService::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (isTerminal(job.state)) return false;
  job.state = JobState::Cancelled;
  job.pollSignal.store(kPollCancel, std::memory_order_relaxed);
  ++impl_->sessionStats.jobsCancelled;
  impl_->markTerminalLocked(job);
  impl_->jobCv.notify_all();
  return true;
}

bool SynthService::pause(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (job.state != JobState::Queued && job.state != JobState::Running)
    return false;
  job.state = JobState::Paused;
  job.pollSignal.store(kPollPause, std::memory_order_relaxed);
  impl_->jobCv.notify_all();  // wait() callers observe Paused
  return true;
}

bool SynthService::resume(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->jobs.find(id);
  if (it == impl_->jobs.end())
    throw std::out_of_range("unknown job " + std::to_string(id));
  Job& job = *it->second;
  if (job.state != JobState::Paused) return false;
  job.state = JobState::Running;
  job.pollSignal.store(kPollContinue, std::memory_order_relaxed);
  for (std::size_t i = 0; i < job.phase.size(); ++i) {
    if (job.phase[i] == Phase::Parked || job.phase[i] == Phase::Checkpointed) {
      job.phase[i] = Phase::Queued;
      impl_->queue.emplace_back(job.id, i);
    }
  }
  // Every task may have finished before the pause landed; completes as Done.
  impl_->finalizeIfComplete(job);
  impl_->taskCv.notify_all();
  return true;
}

SessionStats SynthService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sessionStats;
}

void SynthService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stop) return;
    impl_->stop = true;
    impl_->queue.clear();
    // markTerminalLocked may evict old terminal entries from the map, so
    // iterate over a snapshot of the live jobs.
    std::vector<std::shared_ptr<Job>> live;
    for (auto& [id, job] : impl_->jobs)
      if (!isTerminal(job->state)) live.push_back(job);
    for (const auto& job : live) {
      job->state = JobState::Cancelled;
      job->pollSignal.store(kPollCancel, std::memory_order_relaxed);
      ++impl_->sessionStats.jobsCancelled;
      impl_->markTerminalLocked(*job);
    }
    impl_->taskCv.notify_all();
    impl_->jobCv.notify_all();
  }
  for (auto& w : impl_->workers) w.join();
  impl_->workers.clear();
}

}  // namespace netsyn::service
