// Line-delimited JSON protocol for the synthesis service.
//
// One request object per line in, one response object per line out (flushed
// per response, so a pipe peer can read synchronously). Requests:
//
//   {"op": "ping"}
//   {"op": "submit", "method": "Edit", "config": { ...ExperimentConfig
//       JSON (the toJson()/fromJson schema)... }, "use_result_cache": true,
//       "attach": false, "deadline_seconds": 0}
//   {"op": "status", "job": 1}
//   {"op": "wait",   "job": 1}   // blocks until terminal (or paused:
//                                // a paused job returns immediately, since
//                                // only this session could resume it)
//   {"op": "cancel", "job": 1}
//   {"op": "pause",  "job": 1}
//   {"op": "resume", "job": 1}
//   {"op": "stats"}
//   {"op": "metrics"}
//   {"op": "shutdown"}
//   {"op": "hello", "token": "fleet-1"}          // fleet session handshake
//   {"op": "claim", "token": "fleet-1", "method": "Edit",
//       "config": {...}, "tasks": [0, 3, 5], "attach": true,
//       "adopt_dir": "/path/to/dead/hosts/job/dir"}
//
// Every response carries "ok" plus the echoed "op". Job responses carry
// id/state/progress and the plan-cache counters; terminal states include
// the per-(program, run) "tasks" array and the derived synthesized_fraction
// / mean_synthesis_rate. Failures of any kind come back as
// {"ok": false, "op": ..., "error": "..."} — a malformed line never kills
// the session.
//
// Fault-tolerance surface: "submit" takes "attach" (idempotent
// resubmission by (method, config) key; the response's "attached" says
// whether an existing job was joined) and "deadline_seconds" (per-job
// wall-clock deadline override). A submission rejected by backpressure
// answers {"ok": false, "rejected": "overloaded", ...} so clients can
// distinguish an overloaded daemon from a bad request. Failed jobs carry
// "error_kind" ("task" / "stall" / "deadline"), recovered jobs
// "recovered": true, and "retries" counts watchdog retries. "metrics"
// returns the ServiceMetrics gauges + counters (queue depth, retry
// backlog, fault-injection traffic, durable-checkpoint accounting).
//
// Fleet surface: "hello" establishes (or rotates) the session token — the
// same token is idempotent, a new token supersedes and retires the old one,
// and a retired token answers {"ok": false, "rejected": "stale_token"}.
// "claim" is a token-guarded submit of a task slice: "tasks" lists the
// claimed task indices (index = program * runsPerProgram + run; omitted =
// all), and "adopt_dir" grafts a dead sibling claim's durable records and
// snapshots before the claim runs (fleet failover). Claims attach, memoize,
// and persist under the (method, config, claim) key.
#pragma once

#include <iosfwd>
#include <string>

#include "service/service.hpp"

namespace netsyn::service {

/// Handles one request line and returns the response line (no trailing
/// newline). Sets `shutdownRequested` when the request was a shutdown op
/// (the response still has to be delivered). Never throws for bad input —
/// errors become ok:false responses.
std::string handleRequestLine(SynthService& service, const std::string& line,
                              bool& shutdownRequested);

/// Serves NDJSON requests from `in` until EOF or a shutdown op. Blank
/// lines are ignored. Responses are flushed per line.
void serveLines(SynthService& service, std::istream& in, std::ostream& out);

/// Renders a JobStatus as the protocol's response object (exposed for the
/// daemon/tests; `op` is echoed into the response). `extraJson`, when
/// non-empty, is spliced verbatim before the closing brace and must start
/// with ", " (used for submit's "attached" flag).
std::string jobStatusJson(const JobStatus& st, const std::string& op,
                          const std::string& extraJson = std::string());

}  // namespace netsyn::service
