#include "nn/optim.hpp"

#include <cmath>

namespace netsyn::nn {

Sgd::Sgd(ParamStore& store, float lr, float momentum)
    : store_(store), lr_(lr), momentum_(momentum) {
  for (const auto& p : store_.params())
    velocity_.emplace_back(p->value().rows(), p->value().cols(), 0.0f);
}

void Sgd::step() {
  const auto& params = store_.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Matrix& vel = velocity_[k];
    Node& p = *params[k];
    for (std::size_t i = 0; i < p.value().size(); ++i) {
      vel.at(i) = momentum_ * vel.at(i) + p.grad().at(i);
      p.value().at(i) -= lr_ * vel.at(i);
    }
  }
}

Adam::Adam(ParamStore& store, float lr, float beta1, float beta2, float eps)
    : store_(store), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  for (const auto& p : store_.params()) {
    m_.emplace_back(p->value().rows(), p->value().cols(), 0.0f);
    v_.emplace_back(p->value().rows(), p->value().cols(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  const auto& params = store_.params();
  for (std::size_t k = 0; k < params.size(); ++k) {
    Node& p = *params[k];
    Matrix& m = m_[k];
    Matrix& v = v_[k];
    for (std::size_t i = 0; i < p.value().size(); ++i) {
      const float g = p.grad().at(i);
      m.at(i) = beta1_ * m.at(i) + (1.0f - beta1_) * g;
      v.at(i) = beta2_ * v.at(i) + (1.0f - beta2_) * g * g;
      const float mhat = m.at(i) / bc1;
      const float vhat = v.at(i) / bc2;
      p.value().at(i) -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace netsyn::nn
