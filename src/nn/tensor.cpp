#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace netsyn::nn {

Matrix matmulValue(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols(), 0.0f);
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * k;
    float* crow = c.data() + i * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

void addATransposeB(Matrix& c, const Matrix& a, const Matrix& b) {
  // c (k x m) += a^T (k x n) * b (n x m), a is n x k.
  assert(c.rows() == a.cols() && c.cols() == b.cols() &&
         a.rows() == b.rows());
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * k;
    const float* brow = b.data() + i * m;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      if (av == 0.0f) continue;
      float* crow = c.data() + kk * m;
      for (std::size_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

void addABTranspose(Matrix& c, const Matrix& a, const Matrix& b) {
  // c (n x k) += a (n x m) * b^T (m x k), b is k x m.
  assert(c.rows() == a.rows() && c.cols() == b.rows() &&
         a.cols() == b.cols());
  const std::size_t n = a.rows(), m = a.cols(), k = b.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * m;
    float* crow = c.data() + i * k;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* brow = b.data() + kk * m;
      float acc = 0.0f;
      for (std::size_t j = 0; j < m; ++j) acc += arow[j] * brow[j];
      crow[kk] += acc;
    }
  }
}

Matrix softmaxValue(const Matrix& logits) {
  assert(logits.rows() == 1);
  Matrix out(1, logits.cols());
  const float mx =
      *std::max_element(logits.vec().begin(), logits.vec().end());
  float sum = 0.0f;
  for (std::size_t j = 0; j < logits.cols(); ++j) {
    out.at(j) = std::exp(logits.at(j) - mx);
    sum += out.at(j);
  }
  for (std::size_t j = 0; j < logits.cols(); ++j) out.at(j) /= sum;
  return out;
}

}  // namespace netsyn::nn
