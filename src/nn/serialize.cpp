#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace netsyn::nn {
namespace {

constexpr char kMagic[4] = {'N', 'S', 'Y', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void writePod(std::ofstream& f, T v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T readPod(std::ifstream& f) {
  T v{};
  f.read(reinterpret_cast<char*>(&v), sizeof(T));
  return v;
}

}  // namespace

void saveParams(const ParamStore& store, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("saveParams: cannot open " + path);
  f.write(kMagic, 4);
  writePod<std::uint32_t>(f, kVersion);
  writePod<std::uint64_t>(f, store.params().size());
  for (const auto& p : store.params()) {
    writePod<std::uint64_t>(f, p->value().rows());
    writePod<std::uint64_t>(f, p->value().cols());
    f.write(reinterpret_cast<const char*>(p->value().data()),
            static_cast<std::streamsize>(p->value().size() * sizeof(float)));
  }
  if (!f) throw std::runtime_error("saveParams: write failed for " + path);
}

void loadParams(ParamStore& store, const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("loadParams: cannot open " + path);
  char magic[4];
  f.read(magic, 4);
  if (!f || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("loadParams: bad magic in " + path);
  const auto version = readPod<std::uint32_t>(f);
  if (version != kVersion)
    throw std::runtime_error("loadParams: unsupported version in " + path);
  const auto count = readPod<std::uint64_t>(f);
  if (count != store.params().size())
    throw std::runtime_error("loadParams: parameter count mismatch in " +
                             path);
  for (const auto& p : store.params()) {
    const auto rows = readPod<std::uint64_t>(f);
    const auto cols = readPod<std::uint64_t>(f);
    if (rows != p->value().rows() || cols != p->value().cols())
      throw std::runtime_error("loadParams: shape mismatch in " + path);
    f.read(reinterpret_cast<char*>(p->value().data()),
           static_cast<std::streamsize>(p->value().size() * sizeof(float)));
    if (!f) throw std::runtime_error("loadParams: truncated file " + path);
  }
}

}  // namespace netsyn::nn
